#!/usr/bin/env bash
# Run the deterministic bench suite and merge the per-bench reports into one
# BENCH_RESULTS.json (schema diesel.bench.suite/v1).
#
# Usage: scripts/run_bench_suite.sh [-B build_dir] [-o out_dir] [bench ...]
#
#   -B build_dir   CMake build tree holding bench/ and src/tools/dlcmd
#                  (default: build)
#   -o out_dir     where per-bench *.report.json / *.metrics.json and the
#                  merged BENCH_RESULTS.json land (default: bench_out)
#   bench ...      bench binary names to run (default: every bench_* in
#                  <build_dir>/bench)
#
# Every bench is virtual-time deterministic, so two runs of this script on
# any machine produce byte-identical reports (bench_micro_core's wall-clock
# numbers are carried as non-gated info metrics only).
set -euo pipefail

BUILD_DIR=build
OUT_DIR=bench_out
while getopts "B:o:h" opt; do
  case "$opt" in
    B) BUILD_DIR=$OPTARG ;;
    o) OUT_DIR=$OPTARG ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

BENCH_DIR="$BUILD_DIR/bench"
DLCMD="$BUILD_DIR/src/tools/dlcmd"
[ -x "$DLCMD" ] || { echo "error: $DLCMD not built" >&2; exit 1; }

if [ $# -gt 0 ]; then
  BENCHES=("$@")
else
  BENCHES=()
  for b in "$BENCH_DIR"/bench_*; do
    [ -x "$b" ] && BENCHES+=("$(basename "$b")")
  done
fi
[ ${#BENCHES[@]} -gt 0 ] || { echo "error: no benches found in $BENCH_DIR" >&2; exit 1; }

mkdir -p "$OUT_DIR"
export DIESEL_BENCH_DIR=$OUT_DIR
export DIESEL_METRICS_DIR=$OUT_DIR

for b in "${BENCHES[@]}"; do
  echo "=== $b ==="
  SECONDS=0
  "$BENCH_DIR/$b" > "$OUT_DIR/$b.log"
  echo "    done in ${SECONDS}s"
done

"$DLCMD" perf merge "$OUT_DIR" -o "$OUT_DIR/BENCH_RESULTS.json"
echo "merged suite report: $OUT_DIR/BENCH_RESULTS.json"
