#!/usr/bin/env bash
# Regenerate the committed perf baseline (bench/baseline.json) from a full
# deterministic suite run. Run this when a change intentionally moves a
# gated metric, commit the refreshed baseline with the change, and mention
# the delta in the commit message.
#
# Usage: scripts/update_baseline.sh [-B build_dir]
set -euo pipefail

BUILD_DIR=build
while getopts "B:h" opt; do
  case "$opt" in
    B) BUILD_DIR=$OPTARG ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done

ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT_DIR=$(mktemp -d)
trap 'rm -rf "$OUT_DIR"' EXIT

"$ROOT/scripts/run_bench_suite.sh" -B "$BUILD_DIR" -o "$OUT_DIR"
# The committed baseline strips the registry snapshots: the gate judges
# metrics, and the full registries would bloat the diff of every refresh.
"$BUILD_DIR/src/tools/dlcmd" perf merge "$OUT_DIR" --strip-registry \
    -o "$ROOT/bench/baseline.json"
echo "wrote $ROOT/bench/baseline.json"
