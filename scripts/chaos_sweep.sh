#!/usr/bin/env bash
# Nightly chaos sweep: replay every seeded chaos/churn schedule under many
# seeds. The chaos tests read DIESEL_CHAOS_SEED and re-derive their whole
# fault/churn timelines from it, so each iteration is a genuinely different
# deterministic run — same invariants, fresh schedule.
#
# Usage: scripts/chaos_sweep.sh [-B build_dir] [-n seeds] [-s first_seed]
#                               [-o out_dir] [-t "test1 test2 ..."]
#
# Logs are kept only for failing seeds (they become the CI artifact);
# exit status is non-zero iff any seed failed.
set -u

BUILD=build
SEEDS=32
FIRST=1
OUT=chaos-sweep-out
TESTS="integration_chaos_equivalence_test membership_churn_test integration_rescale_test integration_telemetry_determinism_test tenant_chaos_test"

while getopts "B:n:s:o:t:h" opt; do
  case "$opt" in
    B) BUILD="$OPTARG" ;;
    n) SEEDS="$OPTARG" ;;
    s) FIRST="$OPTARG" ;;
    o) OUT="$OPTARG" ;;
    t) TESTS="$OPTARG" ;;
    *) echo "usage: $0 [-B build_dir] [-n seeds] [-s first_seed]" \
            "[-o out_dir] [-t tests]" >&2
       exit 2 ;;
  esac
done

for t in $TESTS; do
  if [ ! -x "$BUILD/tests/$t" ]; then
    echo "error: $BUILD/tests/$t not built" >&2
    exit 2
  fi
done

mkdir -p "$OUT"
failed_seeds=""
for ((i = 0; i < SEEDS; i++)); do
  seed=$((FIRST + i))
  seed_ok=1
  # Failing tests auto-dump the flight recorder here (see
  # tests/testutil/flightrec_listener.h); empty dirs are pruned below so
  # only failures leave black boxes in the artifact.
  flightdir="$OUT/seed${seed}_flightrec"
  mkdir -p "$flightdir"
  for t in $TESTS; do
    log="$OUT/seed${seed}_${t}.log"
    if DIESEL_CHAOS_SEED=$seed DIESEL_FLIGHTREC_DIR="$flightdir" \
        "$BUILD/tests/$t" >"$log" 2>&1; then
      rm -f "$log"
    else
      seed_ok=0
      echo "FAIL seed=$seed $t (log kept: $log)"
    fi
  done
  rmdir "$flightdir" 2>/dev/null || true
  if [ "$seed_ok" -eq 1 ]; then
    echo "seed $seed OK"
  else
    failed_seeds="$failed_seeds $seed"
  fi
done

if [ -n "$failed_seeds" ]; then
  echo "failed seeds:$failed_seeds" | tee "$OUT/FAILED_SEEDS.txt"
  echo "re-run one locally with: DIESEL_CHAOS_SEED=<seed> $BUILD/tests/<test>"
  exit 1
fi
echo "all $SEEDS seeds passed"
