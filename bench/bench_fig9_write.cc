// Figure 9: write throughput for 4KB and 128KB files on 4 nodes x 16
// processes (64 writers): DIESEL vs Memcached cluster vs Lustre.
//
// DIESEL clients aggregate files into >=4MB chunks and flush in batches;
// Memcached pays one RPC per item (libMemcached has no batch write);
// Lustre pays an MDS create transaction per file.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "lustre/lustre.h"
#include "memcache/memcache.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kProcsPerNode = 16;
constexpr size_t kWriters = kNodes * kProcsPerNode;

double DieselWrite(uint64_t file_size, size_t files_per_writer) {
  core::DeploymentOptions opts;
  opts.num_client_nodes = kNodes;
  // Several DIESEL servers spread the ingest traffic (as in the paper's
  // deployment, cf. the 1/3/5-server scaling of Fig. 10a).
  opts.num_servers = 4;
  core::Deployment dep(opts);
  std::vector<std::unique_ptr<core::DieselClient>> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.push_back(dep.MakeClient(w % kNodes,
                                     static_cast<uint32_t>(w / kNodes),
                                     "fig9"));
  }
  Bytes content(file_size, 0x42);
  // Closed loop scheduled by the clients' own clocks (the client owns its
  // virtual clock, unlike the raw-backend benches below).
  std::vector<size_t> done(kWriters, 0);
  size_t remaining = kWriters * files_per_writer;
  while (remaining > 0) {
    size_t next = kWriters;
    for (size_t w = 0; w < kWriters; ++w) {
      if (done[w] >= files_per_writer) continue;
      if (next == kWriters ||
          writers[w]->clock().now() < writers[next]->clock().now()) {
        next = w;
      }
    }
    Status st = writers[next]->Put("/fig9/w" + std::to_string(next) + "/f" +
                                       std::to_string(done[next]),
                                   content);
    if (!st.ok()) std::abort();
    ++done[next];
    --remaining;
  }
  // Flush the partial chunks; the write completes when every chunk is
  // durable server-side (write-behind), so the makespan is the latest
  // durability time across writers.
  Nanos end = 0;
  for (auto& w : writers) {
    if (!w->Flush().ok()) std::abort();
    end = std::max(end, w->stats().last_ingest_durable_ns);
    end = std::max(end, w->clock().now());
  }
  return static_cast<double>(kWriters * files_per_writer) / ToSeconds(end);
}

double MemcachedWrite(uint64_t file_size, size_t files_per_writer) {
  sim::Cluster cluster(kNodes + 10);
  net::Fabric fabric(cluster);
  memcache::MemcacheOptions opts;
  for (sim::NodeId n = kNodes; n < kNodes + 10; ++n) opts.nodes.push_back(n);
  memcache::MemcachedCluster mc(fabric, opts);
  std::string content(file_size, 'x');
  std::vector<size_t> seq(kWriters, 0);
  Nanos makespan = bench::DriveClosedLoop(
      kWriters, files_per_writer, [&](size_t w, sim::VirtualClock& clock) {
        Status st = mc.Set(clock, static_cast<sim::NodeId>(w % kNodes),
                           "w" + std::to_string(w) + "/" +
                               std::to_string(seq[w]++),
                           content);
        if (!st.ok()) std::abort();
      });
  return static_cast<double>(kWriters * files_per_writer) /
         ToSeconds(makespan);
}

double LustreWrite(uint64_t file_size, size_t files_per_writer) {
  sim::Cluster cluster(kNodes + 2);
  net::Fabric fabric(cluster);
  lustre::LustreFs fs(fabric, {.mds_node = kNodes, .oss_node = kNodes + 1});
  std::vector<size_t> seq(kWriters, 0);
  Nanos makespan = bench::DriveClosedLoop(
      kWriters, files_per_writer, [&](size_t w, sim::VirtualClock& clock) {
        Status st = fs.CreateSized(clock, static_cast<sim::NodeId>(w % kNodes),
                                   "/fig9/w" + std::to_string(w) + "/f" +
                                       std::to_string(seq[w]++),
                                   file_size);
        if (!st.ok()) std::abort();
      });
  return static_cast<double>(kWriters * files_per_writer) /
         ToSeconds(makespan);
}

void Run() {
  bench::Banner("Figure 9: file write throughput, 64 writers on 4 nodes");
  bench::Table table({"File size", "DIESEL (files/s)", "Memcached (files/s)",
                      "Lustre (files/s)", "DIESEL/Lustre", "DIESEL/Memcached"});
  struct Config {
    const char* label;
    uint64_t size;
    size_t diesel_files;
    size_t other_files;
  };
  // Writer counts scaled per system so runs stay fast; throughput is
  // steady-state so counts do not change the rates.
  const Config configs[] = {{"4KB", 4 * 1024, 4000, 400},
                            {"128KB", 128 * 1024, 800, 200}};
  for (const Config& c : configs) {
    double diesel = DieselWrite(c.size, c.diesel_files);
    double mc = MemcachedWrite(c.size, c.other_files);
    double lustre = LustreWrite(c.size, c.other_files);
    table.AddRow({c.label, bench::FmtCount(diesel), bench::FmtCount(mc),
                  bench::FmtCount(lustre), bench::Fmt("%.1fx", diesel / lustre),
                  bench::Fmt("%.1fx", diesel / mc)});
    std::string tag = c.label;
    bench::Metric("diesel_files_per_sec." + tag, "files/s", diesel,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("memcached_files_per_sec." + tag, "files/s", mc,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("lustre_files_per_sec." + tag, "files/s", lustre,
                  obs::Direction::kHigherIsBetter);
  }
  table.Print();
  std::printf("\nPaper: 4KB DIESEL >2M files/s, 1.79x over Memcached, 366.7x "
              "over Lustre; 128KB: 17.3x over Memcached, 127.3x over Lustre.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig9_write", 0);
  diesel::bench::Param("writers", 64.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
