// Ablation: multi-tenant cache fabric. N training jobs run over the same
// simulated cluster with the cluster-wide shared cache tier attached, and
// the arms isolate what tenancy buys:
//
//   shared    N jobs over ONE dataset — the fabric dedups residency, so the
//             aggregate backend load is ~1x the dataset, not Nx.
//   disjoint  N jobs over N private datasets — the no-sharing control; its
//             aggregate backend load is the Nx the shared arm avoids.
//   warm      a job tears down through the demote path and a successor
//             adopts everything — zero backend reads on restart.
//   fairness  a small warm-started tenant reads under a large cold tenant's
//             backend pressure (faults on); its p99 read latency must stay
//             within tolerance of the same job running solo, because its
//             reads ride the shared tier instead of the contended backend.
//
// Every figure is virtual-time deterministic. Besides the aggregate report,
// each shared-arm job writes its own <bench>.job<k>.report.json (info-only)
// so fairness tooling can inspect per-tenant artifacts from one run.
#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "common/rng.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"
#include "tenant/fabric.h"

namespace diesel {
namespace {

constexpr size_t kJobs = 3;
constexpr size_t kClientsPerJob = 2;
constexpr uint64_t kSeed = 42;

dlt::DatasetSpec SmallSpec(const std::string& name) {
  dlt::DatasetSpec spec;
  spec.name = name;
  spec.num_classes = 4;
  spec.files_per_class = 40;
  spec.mean_file_bytes = 4 * 1024;
  spec.fixed_size = true;
  return spec;
}

dlt::DatasetSpec LargeSpec(const std::string& name) {
  dlt::DatasetSpec spec = SmallSpec(name);
  spec.num_classes = 10;
  spec.files_per_class = 80;
  return spec;
}

void Ingest(core::Deployment& dep, const dlt::DatasetSpec& spec) {
  // Small chunks so even the bench-scale dataset spans many shared-tier
  // entries (the dedup/fairness arms are about chunk-grained accounting).
  auto writer = dep.MakeClient(0, 99, spec.name, 16 * 1024);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
}

/// One tenant job: its own clients, registry, task cache and fabric binding,
/// driven closed-loop against the other jobs by virtual clock.
struct Job {
  std::string name;
  tenant::TenantBinding* binding = nullptr;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  std::unique_ptr<cache::TaskRegistry> registry;
  std::unique_ptr<cache::TaskCache> cache;
  const core::MetadataSnapshot* snap = nullptr;
  std::vector<uint32_t> order;
  size_t cursor = 0;
  std::vector<sim::VirtualClock> clocks;
  std::vector<double> lat_ms;
  bool ok = true;

  bool done() const { return cursor >= order.size(); }
  double makespan_s() const {
    Nanos end = 0;
    for (const auto& c : clocks) end = std::max(end, c.now());
    return ToSeconds(end);
  }
};

std::unique_ptr<Job> MakeJob(core::Deployment& dep, tenant::CacheFabric& shared,
                             const dlt::DatasetSpec& spec, size_t node,
                             const std::string& name, uint64_t shuffle_seed,
                             tenant::TenantOptions topts = {}) {
  auto job = std::make_unique<Job>();
  job->name = name;
  topts.name = name;
  job->binding = shared.RegisterTenant(spec.name, std::move(topts));
  job->registry = std::make_unique<cache::TaskRegistry>();
  for (size_t c = 0; c < kClientsPerJob; ++c) {
    job->clients.push_back(
        dep.MakeClient(node, static_cast<uint32_t>(10 + c), spec.name));
    job->registry->Register(job->clients.back()->endpoint());
  }
  if (!job->clients[0]->FetchSnapshot().ok()) std::abort();
  job->snap = job->clients[0]->snapshot();

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  copts.retry.max_attempts = 10;
  copts.retry.initial_backoff = Micros(100);
  copts.breaker.cooldown = Millis(1);
  job->cache = std::make_unique<cache::TaskCache>(
      dep.fabric(), dep.server(0), *job->snap, *job->registry, copts);
  job->cache->AttachSharedTier(job->binding);

  job->order.resize(job->snap->num_files());
  for (uint32_t i = 0; i < job->order.size(); ++i) job->order[i] = i;
  Rng rng(shuffle_seed);
  rng.Shuffle(job->order);
  job->clocks.assign(kClientsPerJob, sim::VirtualClock());
  return job;
}

/// Drive every job one epoch, interleaved by global virtual time — the
/// multi-tenant analogue of the closed-loop single-task benches.
void DriveJobs(std::vector<std::unique_ptr<Job>>& jobs) {
  for (;;) {
    Job* next_job = nullptr;
    size_t next_client = 0;
    for (auto& job : jobs) {
      if (job->done()) continue;
      for (size_t c = 0; c < job->clocks.size(); ++c) {
        if (next_job == nullptr ||
            job->clocks[c].now() < next_job->clocks[next_client].now()) {
          next_job = job.get();
          next_client = c;
        }
      }
    }
    if (next_job == nullptr) return;
    sim::VirtualClock& clock = next_job->clocks[next_client];
    const core::FileMeta& fm =
        next_job->snap->files()[next_job->order[next_job->cursor++]];
    Nanos start = clock.now();
    auto r = next_job->cache->GetFile(
        clock, next_job->clients[next_client]->endpoint(), fm);
    if (!r.ok()) next_job->ok = false;
    next_job->lat_ms.push_back(ToSeconds(clock.now() - start) * 1e3);
  }
}

double P99Ms(std::vector<double> ms) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  return ms[static_cast<size_t>(0.99 * static_cast<double>(ms.size() - 1))];
}

struct ArmResult {
  uint64_t backend_loads = 0;
  uint64_t adopted = 0;
  uint64_t demoted = 0;
  double makespan_s = 0;
  bool ok = true;
  std::vector<cache::TaskCacheStats> per_job;
  std::vector<double> per_job_p99_ms;
};

/// shared=true: every job reads the one shared dataset; false: each job its
/// own private copy (the control arm paying Nx backend reads).
ArmResult RunFleet(bool shared_dataset) {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kJobs + 1;
  core::Deployment dep(dopts);
  std::vector<dlt::DatasetSpec> specs;
  for (size_t j = 0; j < kJobs; ++j) {
    std::string ds = shared_dataset ? "tshared" : "tpriv" + std::to_string(j);
    if (!shared_dataset || j == 0) {
      specs.push_back(SmallSpec(ds));
      Ingest(dep, specs.back());
    } else {
      specs.push_back(specs[0]);
    }
  }
  dep.ResetDevices();

  tenant::CacheFabric shared(dep.fabric(), {});
  std::vector<std::unique_ptr<Job>> jobs;
  for (size_t j = 0; j < kJobs; ++j) {
    jobs.push_back(MakeJob(dep, shared, specs[j], j,
                           "job" + std::to_string(j), kSeed + j));
  }
  DriveJobs(jobs);

  ArmResult res;
  for (auto& job : jobs) {
    cache::TaskCacheStats cs = job->cache->stats();
    res.backend_loads += cs.chunk_loads;
    res.adopted += cs.adopted_chunks;
    res.ok = res.ok && job->ok;
    res.makespan_s = std::max(res.makespan_s, job->makespan_s());
    res.per_job_p99_ms.push_back(P99Ms(job->lat_ms));
    job->cache->Teardown(job->clocks[0].now());
    res.per_job.push_back(job->cache->stats());
    res.demoted += job->cache->stats().demoted_chunks;
    shared.DeregisterTenant(job->binding);
  }
  return res;
}

/// Warm start: job A cold-loads and tears down through the demote path;
/// job B then adopts the full residency without touching the backend.
ArmResult RunWarmStart() {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 2;
  core::Deployment dep(dopts);
  dlt::DatasetSpec spec = SmallSpec("twarm");
  Ingest(dep, spec);
  dep.ResetDevices();

  tenant::CacheFabric shared(dep.fabric(), {});
  ArmResult res;
  {
    std::vector<std::unique_ptr<Job>> seed;
    seed.push_back(MakeJob(dep, shared, spec, 0, "epochal", kSeed));
    DriveJobs(seed);
    res.ok = seed[0]->ok;
    seed[0]->cache->Teardown(seed[0]->clocks[0].now());
    res.demoted = seed[0]->cache->stats().demoted_chunks;
    shared.DeregisterTenant(seed[0]->binding);
  }
  {
    std::vector<std::unique_ptr<Job>> succ;
    succ.push_back(MakeJob(dep, shared, spec, 1, "restart", kSeed + 1));
    DriveJobs(succ);
    cache::TaskCacheStats cs = succ[0]->cache->stats();
    res.backend_loads = cs.chunk_loads;
    res.adopted = cs.adopted_chunks;
    res.ok = res.ok && succ[0]->ok;
    res.makespan_s = succ[0]->makespan_s();
    succ[0]->cache->Teardown(succ[0]->clocks[0].now());
    shared.DeregisterTenant(succ[0]->binding);
  }
  return res;
}

/// Small-tenant p99 with and without a large cold tenant hammering the
/// backend next to it. The small tenant is warm-started off the shared tier
/// in both arms; injected RPC faults run in both arms too.
double RunFairness(double* solo_p99_ms, double* pressured_p99_ms,
                   uint64_t* small_evicted_by_other, bool* ok) {
  auto run_arm = [&](bool with_pressure) -> std::pair<double, uint64_t> {
    core::DeploymentOptions dopts;
    dopts.num_client_nodes = kJobs + 1;
    core::Deployment dep(dopts);
    dlt::DatasetSpec small = SmallSpec("tsmall");
    dlt::DatasetSpec large = LargeSpec("tlarge");
    Ingest(dep, small);
    if (with_pressure) Ingest(dep, large);
    dep.ResetDevices();

    tenant::CacheFabric shared(dep.fabric(), {});
    // Seed the shared tier with the small dataset (a prior run of the same
    // job demoted its residency), identically in both arms.
    {
      std::vector<std::unique_ptr<Job>> seed;
      seed.push_back(MakeJob(dep, shared, small, 0, "seed", kSeed));
      DriveJobs(seed);
      *ok = *ok && seed[0]->ok;
      seed[0]->cache->Teardown(seed[0]->clocks[0].now());
      shared.DeregisterTenant(seed[0]->binding);
    }
    dep.ResetDevices();

    net::FaultPlan plan;
    plan.seed = kSeed;
    plan.rpc_drop_prob = 0.005;
    plan.fault_detect_timeout = Micros(200);
    net::FaultInjector inj(plan);
    dep.fabric().set_fault_injector(&inj);

    std::vector<std::unique_ptr<Job>> jobs;
    jobs.push_back(MakeJob(dep, shared, small, 0, "small", kSeed + 7,
                           {.weight = 1.0}));
    if (with_pressure) {
      jobs.push_back(MakeJob(dep, shared, large, 1, "large", kSeed + 8,
                             {.weight = 4.0}));
    }
    DriveJobs(jobs);
    for (auto& job : jobs) *ok = *ok && job->ok;
    double p99 = P99Ms(jobs[0]->lat_ms);
    uint64_t evicted_by_other = 0;
    for (const tenant::TenantStats& t : shared.Stats()) {
      if (t.name == "small") evicted_by_other = t.evicted_by_other;
    }
    dep.fabric().set_fault_injector(nullptr);
    return {p99, evicted_by_other};
  };

  auto [solo, solo_ev] = run_arm(false);
  auto [pressured, press_ev] = run_arm(true);
  (void)solo_ev;
  *solo_p99_ms = solo;
  *pressured_p99_ms = pressured;
  *small_evicted_by_other = press_ev;
  return solo > 0 ? pressured / solo : 0.0;
}

int Run() {
  bench::Banner("Ablation: multi-tenant cache fabric (shared tier)");

  ArmResult shared = RunFleet(/*shared_dataset=*/true);
  ArmResult disjoint = RunFleet(/*shared_dataset=*/false);
  ArmResult warm = RunWarmStart();
  double solo_p99 = 0, pressured_p99 = 0;
  uint64_t small_evicted = 0;
  bool fair_ok = true;
  double ratio =
      RunFairness(&solo_p99, &pressured_p99, &small_evicted, &fair_ok);

  bench::Table table({"arm", "backend loads", "adopted", "demoted",
                      "makespan (s)", "ok"});
  auto row = [&](const char* arm, const ArmResult& r) {
    table.AddRow({arm, std::to_string(r.backend_loads),
                  std::to_string(r.adopted), std::to_string(r.demoted),
                  bench::Fmt("%.4f", r.makespan_s), r.ok ? "yes" : "NO"});
  };
  row("shared x3", shared);
  row("disjoint x3", disjoint);
  row("warm restart", warm);
  table.Print();
  std::printf("\nfairness: small-tenant p99 %.3f ms solo vs %.3f ms under "
              "large-tenant pressure (ratio %.3f, evicted_by_other %llu)\n",
              solo_p99, pressured_p99, ratio,
              static_cast<unsigned long long>(small_evicted));
  std::printf("3 jobs sharing one dataset cost %llu backend chunk loads "
              "(disjoint control: %llu — %.2fx); a warm restart re-read "
              "%llu chunks from the backend.\n",
              static_cast<unsigned long long>(shared.backend_loads),
              static_cast<unsigned long long>(disjoint.backend_loads),
              shared.backend_loads
                  ? static_cast<double>(disjoint.backend_loads) /
                        static_cast<double>(shared.backend_loads)
                  : 0.0,
              static_cast<unsigned long long>(warm.backend_loads));

  // Gated: the dedup contract. Shared-arm aggregate loads are exactly one
  // dataset's worth; the disjoint control pays the Nx.
  bench::Metric("backend_loads.shared", "chunks",
                static_cast<double>(shared.backend_loads),
                obs::Direction::kLowerIsBetter, 0.0);
  bench::Metric("backend_load_ratio", "x",
                shared.backend_loads
                    ? static_cast<double>(disjoint.backend_loads) /
                          static_cast<double>(shared.backend_loads)
                    : 0.0,
                obs::Direction::kHigherIsBetter, 0.05);
  bench::Metric("warm.backend_loads", "chunks",
                static_cast<double>(warm.backend_loads),
                obs::Direction::kLowerIsBetter, 0.0);
  bench::Metric("warm.adopted_chunks", "chunks",
                static_cast<double>(warm.adopted),
                obs::Direction::kHigherIsBetter);
  bench::Metric("fairness.small_p99_ratio", "x", ratio,
                obs::Direction::kLowerIsBetter, 0.25);
  bench::Metric("all_reads_ok", "bool",
                (shared.ok && disjoint.ok && warm.ok && fair_ok) ? 1.0 : 0.0,
                obs::Direction::kHigherIsBetter, 0.0);
  bench::Info("shared.adopted_chunks", "chunks",
              static_cast<double>(shared.adopted));
  bench::Info("shared.demoted_chunks", "chunks",
              static_cast<double>(shared.demoted));
  bench::Info("disjoint.backend_loads", "chunks",
              static_cast<double>(disjoint.backend_loads));
  bench::Info("fairness.solo_p99_ms", "ms", solo_p99);
  bench::Info("fairness.pressured_p99_ms", "ms", pressured_p99);
  bench::Info("fairness.small_evicted_by_other", "chunks",
              static_cast<double>(small_evicted));
  bench::AddVirtualTime(static_cast<Nanos>(
      (shared.makespan_s + disjoint.makespan_s + warm.makespan_s) * 1e9));

  // Per-job artifacts (info-only, never gate) for the shared arm.
  int rc = bench::CloseReport();
  for (size_t j = 0; j < shared.per_job.size(); ++j) {
    bench::OpenReport("ablation_tenancy", kSeed, static_cast<uint32_t>(j));
    bench::Param("tenant", "job" + std::to_string(j));
    const cache::TaskCacheStats& cs = shared.per_job[j];
    bench::Info("backend_loads", "chunks", static_cast<double>(cs.chunk_loads));
    bench::Info("adopted_chunks", "chunks",
                static_cast<double>(cs.adopted_chunks));
    bench::Info("demoted_chunks", "chunks",
                static_cast<double>(cs.demoted_chunks));
    bench::Info("p99_ms", "ms", shared.per_job_p99_ms[j]);
    rc |= bench::CloseReport();
  }
  return rc;
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_tenancy", diesel::kSeed);
  diesel::bench::Param("jobs", static_cast<double>(diesel::kJobs));
  diesel::bench::Param("clients_per_job",
                       static_cast<double>(diesel::kClientsPerJob));
  return diesel::Run();
}
