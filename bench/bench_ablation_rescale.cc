// Ablation: elastic task membership under planned rescale and crashes.
//
// Arm 1 (scale sweep): a task at 16 / 128 / 512 nodes joins one node,
// crashes one and drains one, reporting the recovery-time objective of each
// transition (virtual time from the membership change until the last moved
// chunk is readable at its new owner) and the fraction of chunks a join
// moves — which consistent hashing pins near 1/(N+1) instead of the
// round-robin near-total reshuffle.
//
// Arm 2 (mid-epoch rescale): an 8-node cached read workload loses one node
// 40% into the epoch, either by planned drain (announce -> migrate ->
// depart) or by crash. The crash is not clairvoyant: the node flaps in the
// FaultInjector first, so reads to it burn detection timeouts and degrade
// to the backend until the membership layer learns of the loss and re-owns
// the partition. Reads are bucketed into virtual-time windows; the dip
// depth and duration of each arm quantify graceful degradation. Gates: the
// planned rescale completes with zero failed reads and its dip duration is
// strictly shorter than the crash's.
#include <algorithm>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "membership/membership.h"
#include "net/fault_injector.h"

namespace diesel {
namespace {

constexpr uint64_t kChunkBytes = 64 * 1024;

// ---------------------------------------------------------------- arm 1 --

struct ScalePoint {
  size_t nodes = 0;
  size_t chunks = 0;
  double preload_s = 0;
  double join_s = 0;    // RTO of a join (migration makespan)
  double crash_s = 0;   // RTO of a crash (re-own makespan)
  double drain_s = 0;   // RTO of a planned drain
  double moved_frac = 0;  // fraction of chunks the join moved
  double ideal_frac = 0;  // 1/(N+1)
  uint64_t reown = 0;
  Nanos virtual_ns = 0;
};

ScalePoint RunScale(size_t n) {
  dlt::DatasetSpec spec;
  spec.name = "rescale";
  spec.num_classes = 8;
  spec.files_per_class = std::max<size_t>(1024, 8 * n) / 8;
  spec.mean_file_bytes = 16 * 1024;
  spec.fixed_size = true;

  core::DeploymentOptions opts;
  opts.num_client_nodes = n + 1;  // one spare for the join
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name, kChunkBytes);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  dep.ResetDevices();
  if (!writer->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *writer->snapshot();

  cache::TaskRegistry registry;
  registry.Register(writer->endpoint());
  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry, copts);

  membership::MembershipTable table;
  std::vector<sim::NodeId> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = dep.client_node(i);
  table.Bootstrap(members, 0);
  cache.AttachMembership(table);

  ScalePoint p;
  p.nodes = n;
  p.chunks = snap.chunks().size();
  auto preload_end = cache.Preload(0);
  if (!preload_end.ok()) std::abort();
  p.preload_s = ToSeconds(preload_end.value());

  // Join the spare: resident chunks stream from their old owners.
  Nanos t0 = preload_end.value() + Millis(1);
  table.Join(dep.client_node(n), t0);
  p.join_s = ToSeconds(cache.last_transition_end() - t0);
  p.moved_frac =
      static_cast<double>(cache.stats().migrated_chunks) / p.chunks;
  p.ideal_frac = 1.0 / static_cast<double>(n + 1);

  // Crash one node: its share is lost and re-owned from the backend.
  Nanos t1 = cache.last_transition_end() + Millis(1);
  uint64_t reown_before = cache.stats().reown_chunks;
  table.Crash(dep.client_node(0), t1);
  p.crash_s = ToSeconds(cache.last_transition_end() - t1);
  p.reown = cache.stats().reown_chunks - reown_before;

  // Drain another: announce, stream, depart — backend never touched.
  Nanos t2 = cache.last_transition_end() + Millis(1);
  table.StartDrain(dep.client_node(1), t2);
  Nanos migrated_by = cache.last_transition_end();
  table.CompleteDrain(dep.client_node(1), migrated_by + Millis(1));
  p.drain_s = ToSeconds(migrated_by - t2);

  p.virtual_ns = cache.last_transition_end();
  return p;
}

// ---------------------------------------------------------------- arm 2 --

enum class ChurnKind { kNone, kDrain, kCrash };

struct EpochRun {
  Nanos epoch_end = 0;
  uint64_t failed_reads = 0;
  std::vector<uint64_t> windows;  // reads completed per window
};

struct DipShape {
  double baseline = 0;    // reads per window before the event
  double depth = 0;       // min post-event window / baseline
  double duration_s = 0;  // event -> last window below 75% of baseline
};

/// Closed-loop cached read epoch over `kNodes` masters; fires the requested
/// membership change once the workload's frontier passes `event_at`. A
/// crash goes down in the FaultInjector at `event_at` but reaches the
/// membership table only `detect` later — the unplanned-loss detection
/// window a planned drain never pays.
/// When `view_out` is non-null it receives the epoch's cluster utilization
/// view (deltaed against the registry state at epoch start). Sections also
/// refresh the derived cluster.*.util gauges once per virtual millisecond so
/// the timeline buckets carry per-node utilization curves across the churn
/// event.
EpochRun RunEpoch(ChurnKind kind, Nanos event_at, Nanos drain_grace,
                  Nanos detect, Nanos window, const dlt::DatasetSpec& spec,
                  const std::string& section = "",
                  obs::ClusterView* view_out = nullptr) {
  constexpr size_t kNodes = 8;
  constexpr size_t kClientsPerNode = 2;

  core::DeploymentOptions opts;
  opts.num_client_nodes = kNodes;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name, kChunkBytes);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  dep.ResetDevices();

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (size_t c = 0; c < kNodes * kClientsPerNode; ++c) {
    clients.push_back(dep.MakeClient(c % kNodes,
                                     static_cast<uint32_t>(c / kNodes),
                                     spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  copts.retry.max_attempts = 10;
  copts.retry.initial_backoff = Micros(100);
  copts.breaker.cooldown = Millis(1);
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry, copts);
  cache.EstablishConnections();

  membership::MembershipTable table;
  std::vector<sim::NodeId> members(kNodes);
  for (size_t i = 0; i < kNodes; ++i) members[i] = dep.client_node(i);
  table.Bootstrap(members, 0);
  cache.AttachMembership(table);
  if (!cache.Preload(0).ok()) std::abort();

  // Membership events the read loop fires as its frontier advances — the
  // same shape ChurnDriver::AdvanceTo has, inlined so each arm stays a
  // two-line schedule.
  const sim::NodeId victim = dep.client_node(3);
  struct Event {
    Nanos at;
    std::function<void()> fire;
  };
  std::vector<Event> events;
  net::FaultPlan plan;
  plan.seed = 42;
  plan.fault_detect_timeout = Micros(200);
  if (kind == ChurnKind::kDrain) {
    events.push_back({event_at, [&] { table.StartDrain(victim, event_at); }});
    events.push_back({event_at + drain_grace, [&] {
                        table.CompleteDrain(victim, event_at + drain_grace);
                      }});
  } else if (kind == ChurnKind::kCrash) {
    // The node dies at event_at (injector: RPCs to it time out and reads
    // degrade); membership learns of the loss `detect` later and re-owns.
    plan.node_flaps.push_back(
        {.node = victim, .down_at = event_at, .up_at = ~Nanos{0}});
    Nanos crash_seen = event_at + detect;
    events.push_back({crash_seen, [&table, victim, crash_seen] {
                        table.Crash(victim, crash_seen);
                      }});
  }
  net::FaultInjector inj(plan);
  dep.fabric().set_fault_injector(&inj);
  size_t next_event = 0;

  if (!section.empty()) {
    bench::OpenTimeline(0, Millis(1));
    if (kind == ChurnKind::kDrain) {
      bench::TimelineNote(event_at, "drain start: n3");
      bench::TimelineNote(event_at + drain_grace, "drain complete: n3");
    } else if (kind == ChurnKind::kCrash) {
      bench::TimelineNote(event_at, "crash: n3 down");
      bench::TimelineNote(event_at + detect, "crash detected");
    }
  }

  obs::MetricsSnapshot util_base = obs::Metrics().Snapshot();
  Nanos next_util = section.empty() ? ~Nanos{0} : Millis(1);

  EpochRun run;
  Rng rng(5);
  std::vector<uint32_t> order(snap.num_files());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<sim::VirtualClock> clocks(clients.size(), sim::VirtualClock(0));
  // A crash kills the victim's own dataloader workers with it; the
  // survivors drain the shared work queue (a planned drain keeps every
  // worker: the node serves until it departs).
  std::vector<bool> alive(clients.size(), true);
  size_t cursor = 0;
  while (cursor < order.size()) {
    size_t next = clocks.size();
    for (size_t c = 0; c < clocks.size(); ++c) {
      if (!alive[c]) continue;
      if (next == clocks.size() || clocks[c].now() < clocks[next].now())
        next = c;
    }
    if (kind == ChurnKind::kCrash && next % kNodes == 3 &&
        clocks[next].now() >= event_at) {
      alive[next] = false;
      continue;
    }
    while (next_event < events.size() &&
           events[next_event].at <= clocks[next].now()) {
      events[next_event++].fire();
    }
    const core::FileMeta& fm = snap.files()[order[cursor++]];
    auto r = cache.GetFile(clocks[next], clients[next]->endpoint(), fm);
    if (clocks[next].now() >= next_util) {
      bench::ExportClusterUtil(clocks[next].now(), &util_base);
      next_util = clocks[next].now() + Millis(1);
    }
    if (!section.empty()) bench::TimelineTick(clocks[next].now());
    if (!r.ok()) {
      ++run.failed_reads;
      continue;
    }
    size_t w = static_cast<size_t>(clocks[next].now() / window);
    if (run.windows.size() <= w) run.windows.resize(w + 1, 0);
    ++run.windows[w];
  }
  while (next_event < events.size()) events[next_event++].fire();
  for (const auto& c : clocks) run.epoch_end = std::max(run.epoch_end, c.now());
  if (view_out != nullptr) {
    *view_out = bench::ExportClusterUtil(run.epoch_end, &util_base);
  } else if (!section.empty()) {
    bench::ExportClusterUtil(run.epoch_end, &util_base);
  }
  if (!section.empty()) bench::CloseTimeline(section, run.epoch_end);
  dep.fabric().set_fault_injector(nullptr);
  return run;
}

DipShape AnalyzeDip(const EpochRun& run, Nanos event_at, Nanos window) {
  DipShape d;
  size_t ev = static_cast<size_t>(event_at / window);
  // The window containing epoch_end is partial (ramp-down): exclude it.
  size_t last = std::min(run.windows.size(),
                         static_cast<size_t>(run.epoch_end / window));
  if (ev == 0 || ev >= last) return d;
  uint64_t sum = 0;
  for (size_t w = 0; w < ev; ++w) sum += run.windows[w];
  d.baseline = static_cast<double>(sum) / ev;
  if (d.baseline <= 0) return d;
  d.depth = 1.0;
  size_t last_below = 0;
  bool any_below = false;
  for (size_t w = ev; w < last; ++w) {
    double frac = static_cast<double>(run.windows[w]) / d.baseline;
    d.depth = std::min(d.depth, frac);
    if (frac < 0.75) {
      last_below = w;
      any_below = true;
    }
  }
  if (any_below) {
    d.duration_s =
        ToSeconds(static_cast<Nanos>(last_below + 1) * window - event_at);
  }
  return d;
}

void Run() {
  bench::Banner("Ablation: elastic membership — rescale RTOs and mid-epoch "
                "churn dips");

  // Arm 1: recovery-time objectives across task sizes.
  bench::Table scale({"nodes", "chunks", "preload (s)", "join RTO (s)",
                      "moved frac", "ideal 1/(N+1)", "crash RTO (s)",
                      "re-owned", "drain RTO (s)"});
  for (size_t n : {16u, 128u, 512u}) {
    ScalePoint p = RunScale(n);
    scale.AddRow({std::to_string(p.nodes), std::to_string(p.chunks),
                  bench::Fmt("%.4f", p.preload_s),
                  bench::Fmt("%.4f", p.join_s),
                  bench::Fmt("%.4f", p.moved_frac),
                  bench::Fmt("%.4f", p.ideal_frac),
                  bench::Fmt("%.4f", p.crash_s), std::to_string(p.reown),
                  bench::Fmt("%.4f", p.drain_s)});
    std::string tag = "n" + std::to_string(n);
    bench::Metric("join_rto_s." + tag, "s", p.join_s,
                  obs::Direction::kLowerIsBetter);
    bench::Metric("crash_rto_s." + tag, "s", p.crash_s,
                  obs::Direction::kLowerIsBetter);
    bench::Metric("drain_rto_s." + tag, "s", p.drain_s,
                  obs::Direction::kLowerIsBetter);
    // Consistent hashing property: a join moves chunks, but only O(1/N) of
    // them — a blown ring would reshuffle everything (tolerance 0).
    bool near_ideal = p.moved_frac > 0 && p.moved_frac <= 4.0 * p.ideal_frac;
    bench::Metric("join_moves_near_ideal." + tag, "bool",
                  near_ideal ? 1.0 : 0.0, obs::Direction::kHigherIsBetter,
                  0.0);
    bench::Info("moved_frac." + tag, "frac", p.moved_frac);
    bench::Info("ideal_frac." + tag, "frac", p.ideal_frac);
    bench::AddVirtualTime(p.virtual_ns);
  }
  scale.Print();

  // Arm 2: mid-epoch rescale — planned drain vs crash.
  dlt::DatasetSpec spec;
  spec.name = "midepoch";
  spec.num_classes = 10;
  spec.files_per_class = 200;
  spec.mean_file_bytes = 16 * 1024;
  spec.fixed_size = true;

  // Calibrate the clean epoch, then fire each churn kind 40% in.
  EpochRun clean = RunEpoch(ChurnKind::kNone, 0, 0, 0, Millis(1), spec);
  Nanos window = std::max<Nanos>(Micros(50), clean.epoch_end / 64);
  Nanos event_at = static_cast<Nanos>(clean.epoch_end * 2 / 5);
  Nanos grace = std::max<Nanos>(Millis(1), clean.epoch_end / 20);
  Nanos detect = std::max<Nanos>(Millis(1), clean.epoch_end / 10);
  obs::ClusterView clean_view;
  obs::ClusterView crash_view;
  clean = RunEpoch(ChurnKind::kNone, 0, 0, 0, window, spec, "clean",
                   &clean_view);
  EpochRun drain =
      RunEpoch(ChurnKind::kDrain, event_at, grace, 0, window, spec, "drain");
  EpochRun crash =
      RunEpoch(ChurnKind::kCrash, event_at, grace, detect, window, spec,
               "crash", &crash_view);
  DipShape ddip = AnalyzeDip(drain, event_at, window);
  DipShape cdip = AnalyzeDip(crash, event_at, window);

  bench::Table mid({"arm", "epoch (s)", "failed reads", "baseline r/w",
                    "dip depth", "dip duration (s)"});
  mid.AddRow({"clean", bench::Fmt("%.4f", ToSeconds(clean.epoch_end)), "0",
              "-", "-", "-"});
  mid.AddRow({"planned drain", bench::Fmt("%.4f", ToSeconds(drain.epoch_end)),
              std::to_string(drain.failed_reads),
              bench::Fmt("%.1f", ddip.baseline),
              bench::Fmt("%.2f", ddip.depth),
              bench::Fmt("%.4f", ddip.duration_s)});
  mid.AddRow({"crash", bench::Fmt("%.4f", ToSeconds(crash.epoch_end)),
              std::to_string(crash.failed_reads),
              bench::Fmt("%.1f", cdip.baseline),
              bench::Fmt("%.2f", cdip.depth),
              bench::Fmt("%.4f", cdip.duration_s)});
  mid.Print();

  bench::Metric("epoch_clean_s", "s", ToSeconds(clean.epoch_end),
                obs::Direction::kLowerIsBetter);
  bench::Metric("epoch_drain_s", "s", ToSeconds(drain.epoch_end),
                obs::Direction::kLowerIsBetter);
  bench::Metric("epoch_crash_s", "s", ToSeconds(crash.epoch_end),
                obs::Direction::kLowerIsBetter);
  // Acceptance gates (tolerance 0): a planned rescale never fails a read,
  // and its throughput dip is strictly shorter than the crash's.
  bench::Metric("planned_zero_failed_reads", "bool",
                drain.failed_reads == 0 ? 1.0 : 0.0,
                obs::Direction::kHigherIsBetter, 0.0);
  bench::Metric("planned_dip_lt_crash", "bool",
                ddip.duration_s < cdip.duration_s ? 1.0 : 0.0,
                obs::Direction::kHigherIsBetter, 0.0);
  bench::Info("crash_failed_reads", "count",
              static_cast<double>(crash.failed_reads));
  bench::Info("drain_dip_duration_s", "s", ddip.duration_s);
  bench::Info("crash_dip_duration_s", "s", cdip.duration_s);
  bench::Info("drain_dip_depth", "frac", ddip.depth);
  bench::Info("crash_dip_depth", "frac", cdip.depth);
  // Per-node utilization skew: the clean epoch sets the balanced reference;
  // the crash epoch shows how far the re-own traffic tilts the survivors.
  bench::MetricImbalance("cluster.imbalance.clean", clean_view);
  bench::MetricImbalance("cluster.imbalance.crash", crash_view);
  std::printf("\nClean-epoch cluster utilization:\n%s",
              clean_view.Render(6).c_str());
  std::printf("\nCrash-epoch cluster utilization:\n%s",
              crash_view.Render(6).c_str());
  bench::AddVirtualTime(clean.epoch_end + drain.epoch_end + crash.epoch_end);

  std::printf("\nA join moves ~1/(N+1) of the chunks (consistent hashing); "
              "its RTO shrinks with N because the per-node share does. A "
              "planned drain streams peer-to-peer while the leaving node "
              "keeps serving, so the mid-epoch dip is brief; a crash pays "
              "backend re-own latency and reads stall until the moved "
              "chunks land.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_rescale", 42);
  diesel::bench::Param("chunk_bytes", static_cast<double>(diesel::kChunkBytes));
  diesel::Run();
  return diesel::bench::CloseReport();
}
