// Ablation: failure containment (§4.2's core architectural claim).
//
// Two DLT tasks run concurrently. With a GLOBAL cache (Memcached cluster
// shared by both), killing one instance degrades BOTH tasks. With
// TASK-GRAINED caches, killing a node of task A leaves task B completely
// unaffected — the blast radius is one task.
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "lustre/lustre.h"
#include "memcache/memcache.h"

namespace diesel {
namespace {

constexpr size_t kFilesPerTask = 4000;
constexpr uint64_t kFileSize = 8 * 1024;
constexpr size_t kReadsPerPhase = 4000;

dlt::DatasetSpec TaskSpec(const char* name) {
  dlt::DatasetSpec spec;
  spec.name = name;
  spec.num_classes = 8;
  spec.files_per_class = kFilesPerTask / 8;
  spec.mean_file_bytes = kFileSize;
  spec.fixed_size = true;
  return spec;
}

// --- global cache arm --------------------------------------------------------

struct GlobalArm {
  sim::Cluster cluster{14};
  net::Fabric fabric{cluster};
  std::unique_ptr<memcache::MemcachedCluster> mc;
  std::unique_ptr<lustre::LustreFs> lustre;

  GlobalArm() {
    memcache::MemcacheOptions opts;
    for (sim::NodeId n = 0; n < 8; ++n) opts.nodes.push_back(n);
    mc = std::make_unique<memcache::MemcachedCluster>(fabric, opts);
    lustre = std::make_unique<lustre::LustreFs>(
        fabric, lustre::LustreOptions{.mds_node = 12, .oss_node = 13});
    sim::VirtualClock setup;
    for (const char* task : {"A", "B"}) {
      dlt::DatasetSpec spec = TaskSpec(task);
      for (size_t i = 0; i < spec.total_files(); ++i) {
        std::string path = dlt::FilePath(spec, i);
        if (!mc->Set(setup, 0, path, std::string(kFileSize, 'x')).ok())
          std::abort();
        if (!lustre->CreateSized(setup, 0, path, kFileSize).ok()) std::abort();
      }
    }
  }

  /// files/s for one task's readers (nodes 8..11 shared by both tasks).
  double Measure(const char* task) {
    dlt::DatasetSpec spec = TaskSpec(task);
    Rng rng(Fnv1a64(task));
    Nanos end = bench::DriveClosedLoop(
        16, kReadsPerPhase / 16, [&](size_t c, sim::VirtualClock& clock) {
          std::string path =
              dlt::FilePath(spec, rng.Uniform(spec.total_files()));
          auto v = mc->Get(clock, static_cast<sim::NodeId>(8 + c % 4), path);
          if (!v.ok()) {
            auto data = lustre->Read(
                clock, static_cast<sim::NodeId>(8 + c % 4), path);
            if (!data.ok()) std::abort();
          }
        });
    return static_cast<double>(kReadsPerPhase) / ToSeconds(end);
  }
};

// --- task-grained arm ---------------------------------------------------------

struct TaskArm {
  core::Deployment dep;
  dlt::DatasetSpec spec;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  std::unique_ptr<cache::TaskCache> cache;

  TaskArm(core::DeploymentOptions opts, const char* name, size_t first_node)
      : dep(opts), spec(TaskSpec(name)) {
    auto writer = dep.MakeClient(0, 99, spec.name);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    for (size_t n = 0; n < 4; ++n) {
      for (uint32_t w = 0; w < 4; ++w) {
        clients.push_back(dep.MakeClient(first_node + n, w, spec.name));
        registry.Register(clients.back()->endpoint());
      }
    }
    if (!clients[0]->FetchSnapshot().ok()) std::abort();
    cache = std::make_unique<cache::TaskCache>(
        dep.fabric(), dep.server(0), *clients[0]->snapshot(), registry,
        cache::TaskCacheOptions{.policy = cache::CachePolicy::kOneshot});
    if (!cache->Preload(0).ok()) std::abort();
  }

  /// files/s; failed fetches (dead peer) are counted but charge their cost.
  double Measure() {
    dep.ResetDevices();  // independent measurement window
    Rng rng(Fnv1a64(spec.name));
    size_t failures = 0;
    Nanos end = bench::DriveClosedLoop(
        16, kReadsPerPhase / 16, [&](size_t c, sim::VirtualClock& clock) {
          const core::FileMeta* fm = clients[0]->snapshot()->Lookup(
              dlt::FilePath(spec, rng.Uniform(spec.total_files())));
          auto v = cache->GetFile(clock, clients[c]->endpoint(), *fm);
          if (!v.ok()) {
            ++failures;
            clock.Advance(Millis(1));  // task-level error handling
          }
        });
    if (failures > 0) {
      std::printf("      (task %s saw %zu failed fetches — it must restart)\n",
                  spec.name.c_str(), failures);
    }
    return static_cast<double>(kReadsPerPhase) / ToSeconds(end);
  }
};

void Run() {
  bench::Banner("Ablation: failure containment — global cache vs "
                "task-grained caches (two concurrent DLT tasks)");

  std::printf("\n--- global in-memory cache shared by tasks A and B ---\n");
  {
    GlobalArm arm;
    double a0 = arm.Measure("A");
    double b0 = arm.Measure("B");
    arm.mc->DisableInstance(2);  // one cache node dies
    double a1 = arm.Measure("A");
    double b1 = arm.Measure("B");
    bench::Table t({"task", "before (files/s)", "after (files/s)", "impact"});
    t.AddRow({"A", bench::FmtCount(a0), bench::FmtCount(a1),
              bench::Fmt("%.0f%%", 100 * (1 - a1 / a0))});
    t.AddRow({"B", bench::FmtCount(b0), bench::FmtCount(b1),
              bench::Fmt("%.0f%%", 100 * (1 - b1 / b0))});
    t.Print();
    bench::Metric("global.task_a_impact_pct", "%", 100 * (1 - a1 / a0),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("global.task_b_impact_pct", "%", 100 * (1 - b1 / b0),
                  obs::Direction::kLowerIsBetter);
    bench::Info("global.task_a_files_per_sec", "files/s", a0);
    bench::Info("global.task_b_files_per_sec", "files/s", b0);
  }

  std::printf("\n--- task-grained caches (task A on nodes 0-3, task B on "
              "nodes 4-7) ---\n");
  {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 8;
    TaskArm task_a(opts, "A", 0);
    core::DeploymentOptions opts_b;
    opts_b.num_client_nodes = 8;
    TaskArm task_b(opts_b, "B", 4);
    double a0 = task_a.Measure();
    double b0 = task_b.Measure();
    // A node of task A dies: its partition is gone.
    task_a.cache->DropNode(1);
    task_a.dep.cluster().FailNode(1);
    double b1 = task_b.Measure();
    bench::Table t({"task", "before (files/s)", "after A-node-1 dies",
                    "impact"});
    t.AddRow({"A", bench::FmtCount(a0), "task restarts (contained)", "-"});
    t.AddRow({"B", bench::FmtCount(b0), bench::FmtCount(b1),
              bench::Fmt("%.0f%%", 100 * (1 - b1 / b0))});
    t.Print();
    // Containment claim: task B is untouched by A's node death (impact 0).
    bench::Metric("task_grained.task_b_impact_pct", "%",
                  100 * (1 - b1 / b0), obs::Direction::kLowerIsBetter);
    bench::Metric("task_grained.task_b_files_per_sec", "files/s", b1,
                  obs::Direction::kHigherIsBetter);
    bench::Info("task_grained.task_a_files_per_sec", "files/s", a0);
  }
  std::printf("\nWith the global cache, one node failure degrades EVERY task "
              "(Fig. 6). With task-grained caches, only the owning task is "
              "affected; it restarts and reloads chunk-wise (Fig. 11b) while "
              "every other task runs at full speed.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_containment", 0);
  diesel::bench::Param("files_per_task", 4000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
