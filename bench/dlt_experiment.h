// Shared harness for the real-DLT-task experiments (Figs. 14 and 15):
// trains the four paper models' I/O+compute pipelines over an
// ImageNet-1K-like dataset, once reading from Lustre (conventional dataset
// shuffle, per-file random reads) and once through DIESEL-FUSE (chunk-wise
// shuffle, group-window chunk reads + FUSE crossing costs).
#pragma once

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/pipeline.h"
#include "lustre/lustre.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"
#include "sim/calibration.h"

namespace diesel::bench {

struct DltConfig {
  size_t num_files = 4096;
  uint64_t file_bytes = 110 * 1024;  // ImageNet-1K mean
  size_t minibatch = 64;             // per-node share of the global batch
  size_t io_workers = 4;
  size_t epochs = 10;
  size_t shuffle_group = 8;   // chunks per group
};

struct ModelTrace {
  const char* model;
  // data_time_s[epoch][iteration]
  std::vector<std::vector<double>> lustre_data_time;
  std::vector<std::vector<double>> diesel_data_time;
  // Per-epoch stall attribution (Fig. 15 decomposition); phases sum to the
  // epoch's virtual duration.
  std::vector<dlt::PhaseBreakdown> lustre_phases;
  std::vector<dlt::PhaseBreakdown> diesel_phases;
  double lustre_total_s = 0;
  double diesel_total_s = 0;
  double lustre_io_wait_s = 0;
  double diesel_io_wait_s = 0;
};

inline dlt::DatasetSpec DltSpec(const DltConfig& cfg) {
  dlt::DatasetSpec spec;
  spec.name = "dlt";
  spec.num_classes = 64;
  spec.files_per_class = cfg.num_files / 64;
  spec.mean_file_bytes = cfg.file_bytes;
  spec.fixed_size = true;
  return spec;
}

/// Run one model's training on both backends; deterministic.
inline ModelTrace RunModel(const sim::ModelCompute& model,
                           const DltConfig& cfg) {
  ModelTrace trace;
  trace.model = model.name;
  dlt::DatasetSpec spec = DltSpec(cfg);
  const size_t iterations = spec.total_files() / cfg.minibatch;

  // ---- Lustre arm -----------------------------------------------------------
  {
    sim::Cluster cluster(3);
    net::Fabric fabric(cluster);
    lustre::LustreFs fs(fabric, {.mds_node = 1, .oss_node = 2});
    {
      sim::VirtualClock setup;
      for (size_t i = 0; i < spec.total_files(); ++i) {
        if (!fs.CreateSized(setup, 0, dlt::FilePath(spec, i), cfg.file_bytes)
                 .ok()) {
          std::abort();
        }
      }
    }
    dlt::TrainingPipeline pipeline({.io_workers = cfg.io_workers,
                                    .model = model, .overlap = false});
    Rng rng(555);
    Nanos start = 0;
    OpenTimeline(0, Millis(100));
    for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      std::vector<uint32_t> order(spec.total_files());
      for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(order);
      // Shuffle-stage cost: generating + distributing the file list.
      Nanos shuffle_cost = Millis(120);
      auto result = pipeline.RunEpoch(
          start, iterations, shuffle_cost,
          [&](size_t iter, sim::VirtualClock& w) {
            for (size_t b = 0; b < cfg.minibatch; ++b) {
              size_t idx = order[(iter * cfg.minibatch + b) % order.size()];
              auto r = fs.Read(w, 0, dlt::FilePath(spec, idx));
              if (!r.ok()) return r.status();
              // Shared production cluster + per-image CPU preprocessing.
              w.Advance(sim::kBusyLustrePerFileExtra +
                        sim::kImagePreprocessCost);
            }
            TimelineTick(w.now());
            return Status::Ok();
          });
      if (!result.ok()) std::abort();
      trace.lustre_data_time.push_back(result->data_time_s);
      trace.lustre_phases.push_back(result->phases);
      trace.lustre_io_wait_s += result->total_data_wait_s;
      start = result->epoch_end;
      TimelineNote(start, "epoch " + std::to_string(epoch + 1) + " done");
    }
    CloseTimeline(std::string(model.name) + "/lustre", start);
    trace.lustre_total_s = ToSeconds(start);
  }

  // ---- DIESEL-FUSE arm --------------------------------------------------------
  {
    core::DeploymentOptions opts;
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, spec.name);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, spec.name);
    if (!snap.ok()) std::abort();

    dlt::TrainingPipeline pipeline({.io_workers = cfg.io_workers,
                                    .model = model, .overlap = false});
    Rng rng(777);
    // One group reader per I/O worker (workers consume disjoint group sets).
    std::vector<std::unique_ptr<shuffle::GroupWindowReader>> readers;
    for (size_t w = 0; w < cfg.io_workers; ++w) {
      readers.push_back(std::make_unique<shuffle::GroupWindowReader>(
          dep.server(0), snap.value(), 0));
    }
    Nanos start = 0;
    OpenTimeline(0, Millis(100));
    for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      shuffle::ShufflePlan plan = shuffle::ChunkWiseShuffle(
          *snap, {.group_size = cfg.shuffle_group}, rng);
      for (size_t w = 0; w < cfg.io_workers; ++w) {
        readers[w]->StartEpoch(
            shuffle::PartitionPlan(plan, w, cfg.io_workers));
      }
      // Chunk-wise list generation is cheap (shuffles chunk ids + per-group
      // files); still nonzero.
      Nanos shuffle_cost = Millis(40);
      auto result = pipeline.RunEpoch(
          start, iterations, shuffle_cost,
          [&](size_t iter, sim::VirtualClock& w) {
            shuffle::GroupWindowReader& reader =
                *readers[iter % cfg.io_workers];
            for (size_t b = 0; b < cfg.minibatch && !reader.Done(); ++b) {
              auto r = reader.Next(w);
              if (!r.ok()) return r.status();
              // FUSE crossings (open + close; reads ride the window) and the
              // same per-image CPU preprocessing as the Lustre arm.
              w.Advance(2 * sim::kFuseCrossingCost +
                        sim::kImagePreprocessCost);
            }
            TimelineTick(w.now());
            return Status::Ok();
          });
      if (!result.ok()) std::abort();
      trace.diesel_data_time.push_back(result->data_time_s);
      trace.diesel_phases.push_back(result->phases);
      trace.diesel_io_wait_s += result->total_data_wait_s;
      start = result->epoch_end;
      TimelineNote(start, "epoch " + std::to_string(epoch + 1) + " done");
    }
    CloseTimeline(std::string(model.name) + "/diesel", start);
    trace.diesel_total_s = ToSeconds(start);
  }
  return trace;
}

inline const sim::ModelCompute kPaperModels[] = {
    sim::kAlexNet, sim::kVgg11, sim::kResNet18, sim::kResNet50};

/// Record both arms' per-epoch stall-attribution timelines into the open
/// bench report, labelled "<model>/lustre" and "<model>/diesel".
inline void ReportTracePhases(const ModelTrace& trace) {
  auto record = [&](const char* arm,
                    const std::vector<dlt::PhaseBreakdown>& phases) {
    std::string label = std::string(trace.model) + "/" + arm;
    for (size_t e = 0; e < phases.size(); ++e) {
      const dlt::PhaseBreakdown& p = phases[e];
      AddEpochPhases(label, static_cast<int64_t>(e),
                     static_cast<int64_t>(p.fetch),
                     static_cast<int64_t>(p.shuffle),
                     static_cast<int64_t>(p.train),
                     static_cast<int64_t>(p.other));
      AddVirtualTime(p.Total());
    }
  };
  record("lustre", trace.lustre_phases);
  record("diesel", trace.diesel_phases);
}

}  // namespace diesel::bench
