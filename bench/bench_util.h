// Shared helpers for the experiment harness.
//
// Each bench binary reproduces one table/figure of the paper and prints the
// same rows/series the paper reports. Measurements are virtual-time: logical
// workers advance deterministic clocks through shared queueing devices, so
// every run prints identical numbers.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sim/clock.h"

namespace diesel::bench {

/// Deterministic closed-loop driver: repeatedly advances the worker with the
/// smallest virtual clock by one operation until every worker has executed
/// `ops_per_worker` operations. This matches virtual-time causality (the
/// earliest-clock worker is the next to arrive anywhere), so shared-device
/// queueing behaves as in a real concurrent run while staying reproducible.
///
/// `op(worker, clock)` performs one operation and charges the clock.
/// Returns the makespan (max clock over workers).
inline Nanos DriveClosedLoop(
    size_t num_workers, size_t ops_per_worker,
    const std::function<void(size_t, sim::VirtualClock&)>& op) {
  std::vector<sim::VirtualClock> clocks(num_workers);
  std::vector<size_t> done(num_workers, 0);
  size_t remaining = num_workers * ops_per_worker;
  while (remaining > 0) {
    size_t next = 0;
    for (size_t w = 1; w < num_workers; ++w) {
      bool w_ok = done[w] < ops_per_worker;
      bool n_ok = done[next] < ops_per_worker;
      if (w_ok && (!n_ok || clocks[w].now() < clocks[next].now())) next = w;
    }
    op(next, clocks[next]);
    ++done[next];
    --remaining;
  }
  Nanos end = 0;
  for (const auto& c : clocks) end = std::max(end, c.now());
  return end;
}

/// Same, but workers start at `start` and the driver also reports each
/// worker's final clock through `final` (optional).
inline Nanos DriveClosedLoopFrom(
    Nanos start, size_t num_workers, size_t ops_per_worker,
    const std::function<void(size_t, sim::VirtualClock&)>& op) {
  std::vector<sim::VirtualClock> clocks(num_workers, sim::VirtualClock(start));
  std::vector<size_t> done(num_workers, 0);
  size_t remaining = num_workers * ops_per_worker;
  while (remaining > 0) {
    size_t next = num_workers;
    for (size_t w = 0; w < num_workers; ++w) {
      if (done[w] >= ops_per_worker) continue;
      if (next == num_workers || clocks[w].now() < clocks[next].now()) next = w;
    }
    op(next, clocks[next]);
    ++done[next];
    --remaining;
  }
  Nanos end = start;
  for (const auto& c : clocks) end = std::max(end, c.now());
  return end;
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    PrintRow(headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, width);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    std::string line;
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < width.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtCount(double v) {
  if (v >= 1e6) return Fmt("%.2fM", v / 1e6);
  if (v >= 1e3) return Fmt("%.1fk", v / 1e3);
  return Fmt("%.0f", v);
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Dump the process-wide metrics registry as JSON next to the bench output:
/// `$DIESEL_METRICS_DIR/<bench_name>.metrics.json` (cwd when the variable is
/// unset). Call once at the end of main; returns the path written, or ""
/// on I/O failure (the bench result itself is unaffected).
inline std::string DumpMetricsJson(const std::string& bench_name) {
  const char* dir = std::getenv("DIESEL_METRICS_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/" + bench_name + ".metrics.json"
                         : bench_name + ".metrics.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write metrics to %s\n", path.c_str());
    return "";
  }
  out << obs::Metrics().Json() << "\n";
  out.close();
  std::printf("metrics: %s\n", path.c_str());
  return path;
}

}  // namespace diesel::bench
