// Shared helpers for the experiment harness.
//
// Each bench binary reproduces one table/figure of the paper and prints the
// same rows/series the paper reports. Measurements are virtual-time: logical
// workers advance deterministic clocks through shared queueing devices, so
// every run prints identical numbers.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "obs/cluster_view.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "sim/clock.h"

namespace diesel::bench {

/// Deterministic closed-loop driver: repeatedly advances the worker with the
/// smallest virtual clock by one operation until every worker has executed
/// `ops_per_worker` operations. This matches virtual-time causality (the
/// earliest-clock worker is the next to arrive anywhere), so shared-device
/// queueing behaves as in a real concurrent run while staying reproducible.
///
/// `op(worker, clock)` performs one operation and charges the clock.
/// Returns the makespan (max clock over workers).
inline Nanos DriveClosedLoop(
    size_t num_workers, size_t ops_per_worker,
    const std::function<void(size_t, sim::VirtualClock&)>& op) {
  std::vector<sim::VirtualClock> clocks(num_workers);
  std::vector<size_t> done(num_workers, 0);
  size_t remaining = num_workers * ops_per_worker;
  while (remaining > 0) {
    size_t next = 0;
    for (size_t w = 1; w < num_workers; ++w) {
      bool w_ok = done[w] < ops_per_worker;
      bool n_ok = done[next] < ops_per_worker;
      if (w_ok && (!n_ok || clocks[w].now() < clocks[next].now())) next = w;
    }
    op(next, clocks[next]);
    ++done[next];
    --remaining;
  }
  Nanos end = 0;
  for (const auto& c : clocks) end = std::max(end, c.now());
  return end;
}

/// Same, but workers start at `start` and the driver also reports each
/// worker's final clock through `final` (optional).
inline Nanos DriveClosedLoopFrom(
    Nanos start, size_t num_workers, size_t ops_per_worker,
    const std::function<void(size_t, sim::VirtualClock&)>& op) {
  std::vector<sim::VirtualClock> clocks(num_workers, sim::VirtualClock(start));
  std::vector<size_t> done(num_workers, 0);
  size_t remaining = num_workers * ops_per_worker;
  while (remaining > 0) {
    size_t next = num_workers;
    for (size_t w = 0; w < num_workers; ++w) {
      if (done[w] >= ops_per_worker) continue;
      if (next == num_workers || clocks[w].now() < clocks[next].now()) next = w;
    }
    op(next, clocks[next]);
    ++done[next];
    --remaining;
  }
  Nanos end = start;
  for (const auto& c : clocks) end = std::max(end, c.now());
  return end;
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    PrintRow(headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, width);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    std::string line;
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < width.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtCount(double v) {
  if (v >= 1e6) return Fmt("%.2fM", v / 1e6);
  if (v >= 1e3) return Fmt("%.1fk", v / 1e3);
  return Fmt("%.0f", v);
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Resolve `<bench_name><suffix>` inside the directory named by `env_var`
/// (cwd when unset), creating the directory if missing. Returns "" and
/// prints to stderr when the directory cannot be created.
inline std::string ResolveDumpPath(const std::string& bench_name,
                                   const char* env_var, const char* suffix) {
  const char* dir = std::getenv(env_var);
  if (dir == nullptr || *dir == '\0') return bench_name + suffix;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s=%s: %s\n", env_var, dir,
                 ec.message().c_str());
    return "";
  }
  return std::string(dir) + "/" + bench_name + suffix;
}

/// Dump the process-wide metrics registry as JSON next to the bench output:
/// `$DIESEL_METRICS_DIR/<bench_name>.metrics.json` (cwd when the variable is
/// unset; the directory is created if missing). Call once at the end of
/// main; returns the path written, or "" on I/O failure (reported on
/// stderr — the bench result itself is unaffected).
inline std::string DumpMetricsJson(const std::string& bench_name) {
  std::string path =
      ResolveDumpPath(bench_name, "DIESEL_METRICS_DIR", ".metrics.json");
  if (path.empty()) return "";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return "";
  }
  out << obs::Metrics().Json() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: write to %s failed\n", path.c_str());
    return "";
  }
  std::printf("metrics: %s\n", path.c_str());
  return path;
}

// ---------------------------------------------------------------------------
// Perf-trajectory report harness.
//
// Every bench main wraps its run in OpenReport/CloseReport and records the
// figures it prints as direction-aware metrics. CloseReport writes
// `$DIESEL_BENCH_DIR/<bench>.report.json` (plus the legacy metrics dump)
// and its return value is the bench's exit code, so lost artifacts fail
// loudly instead of silently producing an empty suite.
// ---------------------------------------------------------------------------

namespace detail {
inline obs::BenchReport g_report;   // NOLINT(misc-definitions-in-headers)
inline bool g_report_open = false;  // NOLINT(misc-definitions-in-headers)
inline obs::Timeline g_timeline;    // NOLINT(misc-definitions-in-headers)
// NOLINTNEXTLINE(misc-definitions-in-headers)
inline std::vector<std::string> g_timeline_sections;
}  // namespace detail

/// Begin the report for this bench run. `seed` is the master seed the run's
/// results are a pure function of.
inline void OpenReport(std::string bench_name, uint64_t seed) {
  detail::g_report = obs::BenchReport{};
  detail::g_report.bench = std::move(bench_name);
  detail::g_report.seed = seed;
  detail::g_report_open = true;
}

/// Per-job variant for multi-tenant benches: each tenant's figures land in
/// their own `<bench>.job<id>.report.json` next to the aggregate document,
/// so one run yields per-job artifacts the fairness gates can inspect
/// without re-running.
inline void OpenReport(const std::string& bench_name, uint64_t seed,
                       uint32_t job_id) {
  OpenReport(bench_name + ".job" + std::to_string(job_id), seed);
}

/// Record a configuration parameter that shaped the run.
inline void Param(std::string key, std::string value) {
  detail::g_report.params.emplace_back(std::move(key), std::move(value));
}
inline void Param(std::string key, double value) {
  detail::g_report.params.emplace_back(std::move(key),
                                       JsonNumberToString(value));
}

/// Record a gated, direction-aware result metric.
inline void Metric(std::string name, std::string unit, double value,
                   obs::Direction direction, double tolerance = 0.01) {
  obs::BenchMetric m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.value = value;
  m.direction = direction;
  m.tolerance = tolerance;
  detail::g_report.metrics.push_back(std::move(m));
}

/// Record an informational metric (never gates the perf diff) — use for
/// wall-clock timings and raw counts.
inline void Info(std::string name, std::string unit, double value) {
  Metric(std::move(name), std::move(unit), value, obs::Direction::kInfo, 0.0);
}

/// Record one epoch's stall-attribution timeline row (Fig. 15
/// decomposition). Values are virtual nanoseconds; they must sum to the
/// epoch's virtual duration.
inline void AddEpochPhases(std::string label, int64_t epoch, int64_t fetch_ns,
                           int64_t shuffle_ns, int64_t train_ns,
                           int64_t other_ns = 0) {
  obs::EpochPhases e;
  e.label = std::move(label);
  e.epoch = epoch;
  e.fetch_ns = fetch_ns;
  e.shuffle_ns = shuffle_ns;
  e.train_ns = train_ns;
  e.other_ns = other_ns;
  detail::g_report.epochs.push_back(std::move(e));
}

/// Accumulate simulated virtual time covered by the bench (informational).
inline void AddVirtualTime(Nanos ns) { detail::g_report.virtual_ns += ns; }

/// Derive the cluster utilization view from the current registry (deltaed
/// against `base` when non-null) over `window_ns` of virtual time, and
/// publish the derived gauges (sim.device.util / net.link.util /
/// cluster.node.util / cluster.imbalance.*) so they land in the report's
/// embedded registry for `dlcmd util` / `dlcmd hotspots` and the SLO gate.
inline obs::ClusterView ExportClusterUtil(Nanos window_ns,
                                          const obs::MetricsSnapshot* base =
                                              nullptr) {
  obs::ClusterView view =
      obs::ClusterView::Compute(obs::Metrics().Snapshot(), base, window_ns);
  view.ExportGauges();
  return view;
}

/// Record the standard gated skew rows from a computed view under
/// `prefix` (e.g. "cluster.imbalance"). Ratios are gated tightly — the
/// virtual-time workload is deterministic, so drift means a real change in
/// load distribution — while max utilization gates downward-is-better.
inline void MetricImbalance(const std::string& prefix,
                            const obs::ClusterView& view,
                            double tolerance = 0.02) {
  const obs::ImbalanceStats& s = view.imbalance();
  Metric(prefix + ".max_util", "util", s.max_util,
         obs::Direction::kLowerIsBetter, tolerance);
  Metric(prefix + ".max_over_median", "x", s.max_over_median,
         obs::Direction::kLowerIsBetter, tolerance);
  Metric(prefix + ".cv", "ratio", s.cv, obs::Direction::kLowerIsBetter,
         tolerance);
}

// ---------------------------------------------------------------------------
// Timeline sections.
//
// Scenario loops that want time-resolved curves bracket each scenario with
// OpenTimeline / CloseTimeline and call TimelineTick(now) once per operation.
// Each scenario becomes a labeled section; CloseReport writes them all as one
// `$DIESEL_BENCH_DIR/<bench>.timeline.json` (diesel.timeline/v1) next to the
// report. Benches that never open a timeline emit no timeline artifact.
// ---------------------------------------------------------------------------

/// Begin a timeline section at virtual time `at` with the given bucket
/// width. Restarts sampling; the previous section must be closed first.
inline void OpenTimeline(Nanos at, Nanos bucket_ns = 1'000'000) {
  obs::Timeline::Options opt;
  opt.bucket_ns = bucket_ns;
  detail::g_timeline = obs::Timeline(opt);
  detail::g_timeline.Start(at);
}

/// Sample the registry if `now` crossed a bucket boundary (cheap otherwise).
inline void TimelineTick(Nanos now) { detail::g_timeline.AdvanceTo(now); }

/// Attach a labeled marker (fault window edge, membership change) to the
/// open section.
inline void TimelineNote(Nanos at, std::string text) {
  detail::g_timeline.Note(at, std::move(text));
}

/// Close the open section as `label` and queue it for the document dump.
inline void CloseTimeline(const std::string& label, Nanos now) {
  if (!detail::g_timeline.started()) return;
  detail::g_timeline.Finish(now);
  detail::g_timeline_sections.push_back(detail::g_timeline.SectionJson(label));
}

namespace detail {
// NOLINTNEXTLINE(misc-definitions-in-headers)
inline int DumpTimelineDocument() {
  if (g_timeline_sections.empty()) return 0;
  std::string path =
      ResolveDumpPath(g_report.bench, "DIESEL_BENCH_DIR", ".timeline.json");
  std::vector<std::string> sections = std::move(g_timeline_sections);
  g_timeline_sections.clear();
  if (path.empty()) return 1;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << obs::TimelineDocumentJson(g_report.bench, sections) << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("timeline: %s\n", path.c_str());
  return 0;
}
}  // namespace detail

/// Finish the report: embed the final registry snapshot, write
/// `$DIESEL_BENCH_DIR/<bench>.report.json` and the legacy metrics dump.
/// Returns the bench's exit code: 0 on success, 1 when an artifact could
/// not be written.
inline int CloseReport() {
  if (!detail::g_report_open) return 0;
  detail::g_report_open = false;
  bool ok = !DumpMetricsJson(detail::g_report.bench).empty();
  ok = detail::DumpTimelineDocument() == 0 && ok;
  auto registry = JsonValue::Parse(obs::Metrics().Json());
  if (registry.ok()) detail::g_report.registry = std::move(registry).value();
  std::string path = ResolveDumpPath(detail::g_report.bench, "DIESEL_BENCH_DIR",
                                     ".report.json");
  if (path.empty()) return 1;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << detail::g_report.Json();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("report: %s\n", path.c_str());
  return ok ? 0 : 1;
}

}  // namespace diesel::bench
