// Figure 15: normalized total training time (Lustre = 1.0) for the four
// paper models, plus the I/O-time reduction that produces it. The paper
// reports DIESEL-FUSE cutting I/O time by 51-58% and total time by 15-27%.
#include "bench/bench_util.h"
#include "bench/dlt_experiment.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Figure 15: normalized total training time (Lustre = 1.0)");
  bench::DltConfig cfg;

  bench::Table table({"model", "Lustre total (s)", "DIESEL-FUSE total (s)",
                      "normalized", "IO-wait reduction", "total reduction"});
  for (const sim::ModelCompute& model : bench::kPaperModels) {
    bench::ModelTrace t = bench::RunModel(model, cfg);
    double norm = t.diesel_total_s / t.lustre_total_s;
    double io_red = t.lustre_io_wait_s > 0
                        ? 1.0 - t.diesel_io_wait_s / t.lustre_io_wait_s
                        : 0.0;
    table.AddRow({model.name, bench::Fmt("%.1f", t.lustre_total_s),
                  bench::Fmt("%.1f", t.diesel_total_s),
                  bench::Fmt("%.3f", norm),
                  bench::Fmt("%.0f%%", io_red * 100),
                  bench::Fmt("%.0f%%", (1.0 - norm) * 100)});
    std::string tag = model.name;
    bench::Metric(tag + ".lustre_total_s", "s", t.lustre_total_s,
                  obs::Direction::kLowerIsBetter);
    bench::Metric(tag + ".diesel_total_s", "s", t.diesel_total_s,
                  obs::Direction::kLowerIsBetter);
    bench::Metric(tag + ".normalized", "frac", norm,
                  obs::Direction::kLowerIsBetter);
    bench::Metric(tag + ".io_reduction", "frac", io_red,
                  obs::Direction::kHigherIsBetter);
    bench::ReportTracePhases(t);

    // Print the stall attribution the report carries: where each arm's
    // epoch time goes (aggregated across epochs).
    auto decompose = [&](const char* arm,
                         const std::vector<dlt::PhaseBreakdown>& phases) {
      dlt::PhaseBreakdown sum;
      for (const dlt::PhaseBreakdown& p : phases) {
        sum.fetch += p.fetch;
        sum.shuffle += p.shuffle;
        sum.train += p.train;
        sum.other += p.other;
      }
      double total = static_cast<double>(sum.Total());
      if (total <= 0) return;
      std::printf("  %s/%s phases: fetch %.1f%%, shuffle %.1f%%, "
                  "train %.1f%%, other %.1f%%\n",
                  model.name, arm, 100.0 * static_cast<double>(sum.fetch) / total,
                  100.0 * static_cast<double>(sum.shuffle) / total,
                  100.0 * static_cast<double>(sum.train) / total,
                  100.0 * static_cast<double>(sum.other) / total);
    };
    decompose("lustre", t.lustre_phases);
    decompose("diesel", t.diesel_phases);
  }
  table.Print();
  std::printf("\nPaper: DIESEL-FUSE reduces IO time by 51-58%% and total "
              "training time by 15-27%% across AlexNet/VGG-11/ResNet-18/"
              "ResNet-50.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig15_training_time", 555);
  diesel::bench::Param("epochs", 10.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
