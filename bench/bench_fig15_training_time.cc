// Figure 15: normalized total training time (Lustre = 1.0) for the four
// paper models, plus the I/O-time reduction that produces it. The paper
// reports DIESEL-FUSE cutting I/O time by 51-58% and total time by 15-27%.
#include "bench/bench_util.h"
#include "bench/dlt_experiment.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Figure 15: normalized total training time (Lustre = 1.0)");
  bench::DltConfig cfg;

  bench::Table table({"model", "Lustre total (s)", "DIESEL-FUSE total (s)",
                      "normalized", "IO-wait reduction", "total reduction"});
  for (const sim::ModelCompute& model : bench::kPaperModels) {
    bench::ModelTrace t = bench::RunModel(model, cfg);
    double norm = t.diesel_total_s / t.lustre_total_s;
    double io_red = t.lustre_io_wait_s > 0
                        ? 1.0 - t.diesel_io_wait_s / t.lustre_io_wait_s
                        : 0.0;
    table.AddRow({model.name, bench::Fmt("%.1f", t.lustre_total_s),
                  bench::Fmt("%.1f", t.diesel_total_s),
                  bench::Fmt("%.3f", norm),
                  bench::Fmt("%.0f%%", io_red * 100),
                  bench::Fmt("%.0f%%", (1.0 - norm) * 100)});
  }
  table.Print();
  std::printf("\nPaper: DIESEL-FUSE reduces IO time by 51-58%% and total "
              "training time by 15-27%% across AlexNet/VGG-11/ResNet-18/"
              "ResNet-50.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::Run();
  return 0;
}
