// Ablation: chunk target size. The paper fixes chunks at >=4MB; this sweep
// shows why: write throughput and chunk-wise read bandwidth versus chunk
// target, including the metadata load (keys per chunk) trade-off.
#include <memory>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

constexpr size_t kFiles = 8000;
constexpr uint64_t kFileSize = 16 * 1024;

void Run() {
  bench::Banner("Ablation: chunk size sweep (8k files x 16KB)");
  bench::Table table({"chunk target", "chunks", "write files/s",
                      "epoch read MB/s", "KV keys", "snapshot KB"});

  for (uint64_t chunk_kb : {64u, 256u, 1024u, 4096u, 16384u}) {
    dlt::DatasetSpec spec;
    spec.name = "abl";
    spec.num_classes = 10;
    spec.files_per_class = kFiles / 10;
    spec.mean_file_bytes = kFileSize;
    spec.fixed_size = true;

    core::DeploymentOptions opts;
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, spec.name, chunk_kb * 1024);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    Nanos write_end = std::max(writer->clock().now(),
                               writer->stats().last_ingest_durable_ns);
    double write_rate =
        static_cast<double>(spec.total_files()) / ToSeconds(write_end);

    auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, spec.name);
    if (!snap.ok()) std::abort();

    // One chunk-wise epoch, single reader.
    Rng rng(3);
    shuffle::GroupWindowReader reader(dep.server(0), *snap, 0);
    size_t group = std::max<size_t>(1, (4096 / chunk_kb) * 8);
    reader.StartEpoch(
        shuffle::ChunkWiseShuffle(*snap, {.group_size = group}, rng));
    sim::VirtualClock clock;
    uint64_t bytes = 0;
    while (!reader.Done()) {
      auto r = reader.Next(clock);
      if (!r.ok()) std::abort();
      bytes += r->size();
    }
    double read_mb = static_cast<double>(bytes) / 1e6 / ToSeconds(clock.now());

    table.AddRow({std::to_string(chunk_kb) + "KB",
                  std::to_string(snap->chunks().size()),
                  bench::FmtCount(write_rate), bench::Fmt("%.1f", read_mb),
                  bench::FmtCount(static_cast<double>(dep.kv().TotalKeys())),
                  bench::FmtCount(
                      static_cast<double>(snap->Serialize().size()) / 1024)});
    std::string tag = std::to_string(chunk_kb) + "kb";
    bench::Metric("write_files_per_sec." + tag, "files/s", write_rate,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("read_mb_per_sec." + tag, "MB/s", read_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Info("kv_keys." + tag, "keys",
                static_cast<double>(dep.kv().TotalKeys()));
    bench::Info("snapshot_kb." + tag, "KB",
                static_cast<double>(snap->Serialize().size()) / 1024);
    bench::AddVirtualTime(write_end + clock.now());
  }
  table.Print();
  std::printf("\nExpected: throughput rises steeply until ~4MB chunks, then "
              "flattens (Table 2's bandwidth knee); tiny chunks also inflate "
              "chunk-count-proportional metadata.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_chunksize", 3);
  diesel::bench::Param("files", 8000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
