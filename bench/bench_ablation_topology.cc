// Ablation: master-client topology (§4.2). Compares the paper's p x (n-1)
// master-mediated design against a full mesh where every client partitions
// the dataset (n x (n-1) connections), reporting connection counts and the
// read throughput each achieves.
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kClientsPerNode = 8;
constexpr size_t kOps = 200;

void Run() {
  bench::Banner("Ablation: cache topology — masters (p x (n-1)) vs full "
                "mesh (n x (n-1))");
  dlt::DatasetSpec spec;
  spec.name = "topo";
  spec.num_classes = 8;
  spec.files_per_class = 400;
  spec.mean_file_bytes = 4096;
  spec.fixed_size = true;

  core::DeploymentOptions opts;
  opts.num_client_nodes = kNodes;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (size_t n = 0; n < kNodes; ++n) {
    for (size_t i = 0; i < kClientsPerNode; ++i) {
      clients.push_back(dep.MakeClient(n, static_cast<uint32_t>(i), spec.name));
      registry.Register(clients.back()->endpoint());
    }
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  const size_t n = clients.size();
  const size_t p = kNodes;
  std::printf("\nConnection counts (n=%zu clients on p=%zu nodes):\n", n, p);
  std::printf("  master topology: p x (n-1)        = %zu\n", p * (n - 1));
  std::printf("  full mesh:       n x (n-1)        = %zu\n", n * (n - 1));
  std::printf("  reduction:                          %.1fx\n",
              static_cast<double>(n * (n - 1)) /
                  static_cast<double>(p * (n - 1)));

  // Throughput with the master topology (the implemented design).
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry,
                         {.policy = cache::CachePolicy::kOneshot});
  cache.EstablishConnections();
  if (!cache.Preload(0).ok()) std::abort();
  std::vector<std::unique_ptr<core::DatasetCacheInterface>> handles;
  for (auto& c : clients) {
    handles.push_back(cache.HandleFor(c->endpoint()));
    c->AttachCache(handles.back().get());
    c->clock().Reset(0);
  }
  Rng rng(77);
  std::vector<size_t> done(n, 0);
  size_t remaining = n * kOps;
  Nanos end = 0;
  while (remaining > 0) {
    size_t next = n;
    for (size_t c = 0; c < n; ++c) {
      if (done[c] >= kOps) continue;
      if (next == n ||
          clients[c]->clock().now() < clients[next]->clock().now()) {
        next = c;
      }
    }
    auto r = clients[next]->Get(
        dlt::FilePath(spec, rng.Uniform(spec.total_files())));
    if (!r.ok()) std::abort();
    ++done[next];
    --remaining;
    end = std::max(end, clients[next]->clock().now());
  }
  double master_qps = static_cast<double>(n * kOps) / ToSeconds(end);
  std::printf("\nmaster-topology cached read QPS: %s\n",
              bench::FmtCount(master_qps).c_str());
  bench::Metric("master_qps", "ops/s", master_qps,
                obs::Direction::kHigherIsBetter);
  bench::Info("master_connections", "conns",
              static_cast<double>(p * (n - 1)));
  bench::Info("mesh_connections", "conns", static_cast<double>(n * (n - 1)));
  bench::AddVirtualTime(end);
  std::printf("(one-hop access preserved: every chunk reachable through "
              "exactly one master; the full mesh buys no extra hops, only "
              "%zu more connections and their memory/teardown cost)\n",
              n * (n - 1) - p * (n - 1));
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_topology", 77);
  diesel::bench::Param("client_nodes", 4.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
