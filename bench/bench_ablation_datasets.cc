// Ablation: dataset shape. The paper motivates DIESEL with ImageNet-1K
// (1.28M x ~110KB) and Open Images (~9M x ~60KB). This sweep ingests scaled
// versions of the three presets and reports what changes across shapes:
// chunks, metadata keys, snapshot size, ingest rate, and one chunk-wise
// epoch's read bandwidth.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Ablation: dataset shapes (scaled presets)");
  bench::Table table({"dataset", "files", "mean size", "chunks", "KV keys",
                      "snapshot KB", "ingest files/s", "epoch MB/s"});

  struct Preset {
    const char* label;
    dlt::DatasetSpec spec;
  };
  const Preset presets[] = {
      {"imagenet-1k/160", dlt::ImageNetLike(8000)},
      {"cifar-10/6", dlt::CifarLike(8000)},
      {"open-images/1125", dlt::OpenImagesLike(8000)},
  };

  for (const Preset& p : presets) {
    core::DeploymentOptions opts;
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, p.spec.name);
    if (!dlt::ForEachFile(p.spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    Nanos ingest_end = std::max(writer->clock().now(),
                                writer->stats().last_ingest_durable_ns);
    double ingest_rate =
        static_cast<double>(p.spec.total_files()) / ToSeconds(ingest_end);

    sim::VirtualClock clock;
    auto snap = dep.server(0).BuildSnapshot(clock, 0, p.spec.name);
    if (!snap.ok()) std::abort();
    dep.ResetDevices();

    Rng rng(1);
    shuffle::GroupWindowReader reader(dep.server(0), *snap, 0, 8);
    reader.StartEpoch(shuffle::ChunkWiseShuffle(*snap, {.group_size = 2},
                                                rng));
    sim::VirtualClock epoch;
    while (!reader.Done()) {
      if (!reader.Next(epoch).ok()) std::abort();
    }
    double epoch_mb = static_cast<double>(reader.stats().bytes_read) / 1e6 /
                      ToSeconds(epoch.now());

    table.AddRow({p.label, std::to_string(p.spec.total_files()),
                  bench::FmtCount(static_cast<double>(p.spec.mean_file_bytes)) + "B",
                  std::to_string(snap->chunks().size()),
                  bench::FmtCount(static_cast<double>(dep.kv().TotalKeys())),
                  bench::Fmt("%.0f", static_cast<double>(
                                         snap->Serialize().size()) / 1024),
                  bench::FmtCount(ingest_rate),
                  bench::Fmt("%.0f", epoch_mb)});
    std::string tag = p.spec.name;
    bench::Metric("ingest_files_per_sec." + tag, "files/s", ingest_rate,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("epoch_mb_per_sec." + tag, "MB/s", epoch_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Info("snapshot_kb." + tag, "KB",
                static_cast<double>(snap->Serialize().size()) / 1024);
    bench::AddVirtualTime(ingest_end + epoch.now());
  }
  table.Print();
  std::printf("\nSmaller files (Open Images) mean more metadata per byte; "
              "chunking makes the storage traffic shape identical across "
              "presets while the snapshot grows only with file count.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_datasets", 1);
  diesel::bench::Param("files_per_preset", 8000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
