// Ablation: metadata recovery strategies (§4.1.2). Compares
//  (1) header-only scans (read 12 bytes -> header length -> header) versus a
//      hypothetical full-chunk scan, and
//  (2) watermark recovery (scenario a: only chunks newer than the watermark)
//      versus a full rebuild (scenario b),
// as dataset size grows.
#include <memory>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Ablation: metadata recovery — header-only vs full scan, "
                "watermark vs full rebuild");
  bench::Table table({"files", "chunks", "header-only (s)", "bytes read",
                      "full-chunk scan (s)", "speedup",
                      "watermark 50% (s)"});

  for (size_t files : {2000u, 8000u, 32000u}) {
    dlt::DatasetSpec spec;
    spec.name = "rec";
    spec.num_classes = 10;
    spec.files_per_class = files / 10;
    spec.mean_file_bytes = 32 * 1024;

    core::DeploymentOptions opts;
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, spec.name);
    // Spread chunk timestamps so a watermark can split them: advance the
    // writer's clock midway through the ingest.
    size_t i = 0;
    uint32_t midpoint_ts = 0;
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          if (i++ == spec.total_files() / 2) {
            if (!writer->Flush().ok()) return Status::Internal("flush");
            writer->clock().Advance(Seconds(100.0));
            midpoint_ts =
                static_cast<uint32_t>(writer->clock().now() / 1000000000ULL);
          }
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }

    auto wipe = [&] {
      for (uint32_t s = 0; s < dep.kv().NumShards(); ++s) {
        dep.kv().FailShard(s);
        dep.kv().RestartShard(s);
      }
      dep.ResetDevices();
    };

    // (a) header-only scan (the implemented strategy).
    wipe();
    sim::VirtualClock header_clock;
    auto header_stats =
        dep.server(0).RecoverMetadata(header_clock, spec.name, 0);
    if (!header_stats.ok()) std::abort();

    // (b) hypothetical full-chunk scan: read every blob end to end. The
    // metadata work is identical, so we time the raw reads on top of the
    // header scan's KV cost by replaying full-object reads.
    wipe();
    sim::VirtualClock full_clock;
    {
      auto keys = dep.store().List(full_clock, dep.server_node(0),
                                   core::ChunkObjectPrefix(spec.name));
      if (!keys.ok()) std::abort();
      for (const auto& key : keys.value()) {
        auto blob = dep.store().Get(full_clock, dep.server_node(0), key);
        if (!blob.ok()) std::abort();
      }
      auto stats = dep.server(0).RecoverMetadata(full_clock, spec.name, 0);
      if (!stats.ok()) std::abort();
      // Subtract the double-counted header reads? They are part of both
      // strategies; the comparison keeps them in both arms.
    }

    // (c) watermark recovery: only the newer half is scanned.
    wipe();
    // First restore everything (the "old" half was never lost in scenario
    // a); then wipe only... in the sim we model scenario (a) by recovering
    // from the midpoint watermark over an empty KV: half the chunks scanned.
    sim::VirtualClock wm_clock;
    auto wm_stats =
        dep.server(0).RecoverMetadata(wm_clock, spec.name, midpoint_ts);
    if (!wm_stats.ok()) std::abort();

    table.AddRow(
        {std::to_string(files), std::to_string(header_stats->chunks_scanned),
         bench::Fmt("%.3f", ToSeconds(header_clock.now())),
         bench::FmtCount(static_cast<double>(header_stats->header_bytes_read)),
         bench::Fmt("%.3f", ToSeconds(full_clock.now())),
         bench::Fmt("%.1fx", ToSeconds(full_clock.now()) /
                                 ToSeconds(header_clock.now())),
         bench::Fmt("%.3f", ToSeconds(wm_clock.now()))});
    std::string tag = "f" + std::to_string(files);
    bench::Metric("header_only_s." + tag, "s", ToSeconds(header_clock.now()),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("watermark_s." + tag, "s", ToSeconds(wm_clock.now()),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("full_scan_speedup." + tag, "x",
                  ToSeconds(full_clock.now()) / ToSeconds(header_clock.now()),
                  obs::Direction::kHigherIsBetter);
    bench::Info("header_bytes_read." + tag, "bytes",
                static_cast<double>(header_stats->header_bytes_read));
    bench::AddVirtualTime(header_clock.now() + full_clock.now() +
                          wm_clock.now());
  }
  table.Print();
  std::printf("\nSelf-contained chunk headers let recovery read a few KB per "
              "chunk instead of the whole blob; the timestamp-sortable chunk "
              "IDs let scenario-(a) recovery skip everything older than the "
              "watermark.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_recovery", 0);
  diesel::bench::Param("file_bytes", 32768.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
