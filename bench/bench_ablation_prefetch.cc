// Ablation: clairvoyant prefetch + Belady eviction for the task cache.
//
// The chunk-wise shuffle plan (§4.3) fixes the whole epoch's access
// sequence when it is drawn, so the prefetch scheduler can fill chunks
// ahead of the training cursor and the cache can evict the chunk with the
// farthest next access (Belady's MIN) instead of FIFO. Three arms, all
// on-demand policy, under a capacity sweep that makes the cache hold only a
// fraction of each node's partition:
//
//   ondemand    — no scheduler, FIFO eviction (the seed behavior);
//   nextgroup   — scheduler with a one-group lookahead, FIFO eviction
//                 (the GroupWindowReader-style heuristic);
//   clairvoyant — whole-epoch lookahead, Belady eviction.
//
// Reported per capacity point: summed dlt.phase.fetch for epochs >= 2
// (steady state; epoch 1 is the cold pull everywhere) and the clairvoyant
// reduction vs. ondemand, which the perf gate expects to stay >= 25% in the
// capacity-bound configs.
#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/pipeline.h"
#include "prefetch/scheduler.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kClientsPerNode = 2;
constexpr uint64_t kChunkBytes = 256 * 1024;
constexpr size_t kGroupSize = 4;     // chunks per shuffle group
constexpr size_t kBatch = 16;        // files per iteration
constexpr size_t kEpochs = 4;
constexpr uint64_t kSeed = 7;

enum class Arm { kOnDemand, kNextGroup, kClairvoyant };

const char* ArmName(Arm a) {
  switch (a) {
    case Arm::kOnDemand: return "ondemand";
    case Arm::kNextGroup: return "nextgroup";
    case Arm::kClairvoyant: return "clairvoyant";
  }
  return "?";
}

struct ArmResult {
  double fetch_epoch1_s = 0;  // cold epoch
  double fetch_rest_s = 0;    // summed dlt.phase.fetch, epochs >= 2
  double total_s = 0;         // virtual end-to-end time
  cache::TaskCacheStats cache_stats;
  prefetch::PrefetchSchedulerStats sched_stats;
};

ArmResult RunArm(Arm arm, double cap_frac, const dlt::DatasetSpec& spec) {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kNodes;
  core::Deployment dep(dopts);
  auto writer = dep.MakeClient(0, 99, spec.name, kChunkBytes);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  dep.ResetDevices();

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (size_t c = 0; c < kNodes * kClientsPerNode; ++c) {
    clients.push_back(dep.MakeClient(c % kNodes,
                                     static_cast<uint32_t>(c / kNodes),
                                     spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  uint64_t payload = 0;
  for (const auto& fm : snap.files()) payload += fm.length;
  cache::TaskCacheOptions copts;
  copts.per_node_capacity_bytes =
      static_cast<uint64_t>(static_cast<double>(payload) / kNodes * cap_frac);
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry, copts);
  cache.EstablishConnections();

  // Same seed in every arm: identical plans, so arms differ only in the
  // prefetch/eviction strategy.
  Rng rng(kSeed);
  std::vector<shuffle::ShufflePlan> plans;
  plans.reserve(kEpochs);
  for (size_t e = 0; e < kEpochs; ++e) {
    plans.push_back(
        shuffle::ChunkWiseShuffle(snap, {.group_size = kGroupSize}, rng));
  }

  std::unique_ptr<prefetch::PrefetchScheduler> sched;
  if (arm != Arm::kOnDemand) {
    prefetch::PrefetchOptions popts;
    popts.belady_eviction = arm == Arm::kClairvoyant;
    popts.lookahead_files =
        arm == Arm::kClairvoyant
            ? static_cast<size_t>(-1)
            : std::max<size_t>(1, plans[0].file_order.size() /
                                      plans[0].num_groups());
    sched = std::make_unique<prefetch::PrefetchScheduler>(
        cache, dep.fabric(), snap, popts);
  }

  ArmResult out;
  Nanos t = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    const shuffle::ShufflePlan& plan = plans[e];
    dlt::PipelineOptions popts;
    popts.overlap = false;
    if (sched) {
      popts.epoch_start_hook = [&](Nanos workers_start) {
        sched->StartEpoch(plan, workers_start);
        return Status::Ok();
      };
    }
    dlt::TrainingPipeline pipe(popts);
    const size_t iters = (plan.file_order.size() + kBatch - 1) / kBatch;
    auto read_batch = [&](size_t iter, sim::VirtualClock& w) -> Status {
      if (sched) sched->Advance(iter * kBatch, w.now());
      size_t end = std::min((iter + 1) * kBatch, plan.file_order.size());
      // The whole mini-batch goes through the coalesced multi-get: misses
      // grouped per owner ride one batched RPC instead of kBatch singles.
      std::vector<core::FileMeta> metas;
      metas.reserve(end - iter * kBatch);
      for (size_t i = iter * kBatch; i < end; ++i) {
        metas.push_back(snap.files()[plan.file_order[i]]);
      }
      auto r = cache.GetFiles(w, clients[0]->endpoint(), metas);
      if (!r.ok()) return r.status();
      return Status::Ok();
    };
    auto res = pipe.RunEpoch(t, iters, Millis(10), read_batch);
    if (!res.ok()) std::abort();
    (e == 0 ? out.fetch_epoch1_s : out.fetch_rest_s) +=
        ToSeconds(res->phases.fetch);
    t = res->epoch_end;
    if (sched) sched->FinishEpoch();
  }
  out.total_s = ToSeconds(t);
  out.cache_stats = cache.stats();
  if (sched) out.sched_stats = sched->stats();
  return out;
}

void Run() {
  bench::Banner(
      "Ablation: clairvoyant prefetch + Belady eviction vs on-demand FIFO");
  dlt::DatasetSpec spec;
  spec.name = "pf";
  spec.num_classes = 8;
  spec.files_per_class = 160;  // 1280 files x 16KB = 80 chunks of 256KB
  spec.mean_file_bytes = 16 * 1024;
  spec.fixed_size = true;

  bench::Table table({"capacity", "arm", "fetch e1 (s)", "fetch e2+ (s)",
                      "total (s)", "evictions", "pf hit/late/wasted"});
  for (double cap_frac : {0.25, 0.5, 1.0}) {
    double ondemand_rest = 0;
    for (Arm arm :
         {Arm::kOnDemand, Arm::kNextGroup, Arm::kClairvoyant}) {
      ArmResult r = RunArm(arm, cap_frac, spec);
      if (arm == Arm::kOnDemand) ondemand_rest = r.fetch_rest_s;
      table.AddRow(
          {bench::Fmt("%.0f%%", cap_frac * 100), ArmName(arm),
           bench::Fmt("%.3f", r.fetch_epoch1_s),
           bench::Fmt("%.3f", r.fetch_rest_s), bench::Fmt("%.3f", r.total_s),
           bench::FmtCount(static_cast<double>(r.cache_stats.evictions)),
           bench::Fmt("%.0f", static_cast<double>(r.cache_stats.prefetch_hits)) +
               "/" +
               bench::Fmt("%.0f",
                          static_cast<double>(r.cache_stats.prefetch_late)) +
               "/" +
               bench::Fmt("%.0f",
                          static_cast<double>(r.cache_stats.prefetch_wasted))});
      std::string tag = std::string(ArmName(arm)) + ".cap" +
                        bench::Fmt("%.0f", cap_frac * 100);
      bench::Metric("fetch_s." + tag, "s", r.fetch_rest_s,
                    obs::Direction::kLowerIsBetter);
      bench::Info("fetch_epoch1_s." + tag, "s", r.fetch_epoch1_s);
      bench::Info("prefetch_issued." + tag, "count",
                  static_cast<double>(r.sched_stats.issued));
      bench::Info("prefetch_cancelled." + tag, "count",
                  static_cast<double>(r.sched_stats.cancelled));
      bench::AddVirtualTime(Seconds(r.total_s));
      if (arm == Arm::kClairvoyant && cap_frac < 1.0) {
        // The acceptance gate: clairvoyant+Belady must cut steady-state
        // fetch stall by >= 25% vs on-demand FIFO when capacity-bound.
        double reduction =
            ondemand_rest > 0
                ? (ondemand_rest - r.fetch_rest_s) / ondemand_rest * 100
                : 0;
        bench::Metric("fetch_reduction_pct.cap" +
                          bench::Fmt("%.0f", cap_frac * 100),
                      "%", reduction, obs::Direction::kHigherIsBetter);
      }
    }
  }
  table.Print();
  std::printf(
      "\nThe shuffle plan fixes the epoch's access sequence at draw time, so "
      "prefetch is clairvoyant (Dryden et al.): fills run ahead of the "
      "cursor on background streams and Belady eviction keeps the chunks "
      "with the nearest reuse. Steady-state fetch stall collapses while "
      "on-demand FIFO re-pulls evicted chunks on the critical path.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_prefetch", 7);
  diesel::bench::Param("client_nodes", 4.0);
  diesel::bench::Param("epochs", 4.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
