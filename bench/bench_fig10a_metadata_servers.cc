// Figure 10a: metadata QPS (file-size lookups through DIESEL servers) as
// client nodes grow from 1 to 10, for 1 / 3 / 5 DIESEL servers. With few
// servers the server service loop saturates early; with more servers the
// curve climbs until the KV tier's ~1M QPS ceiling.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "obs/hotspot.h"

namespace diesel {
namespace {

constexpr size_t kThreadsPerNode = 16;
constexpr size_t kOpsPerThread = 150;
constexpr size_t kMaxNodes = 10;

double MeasureQps(size_t num_servers, size_t client_nodes,
                  const dlt::DatasetSpec& spec, Nanos* end_out = nullptr) {
  core::DeploymentOptions opts;
  opts.num_client_nodes = kMaxNodes;
  opts.num_servers = num_servers;
  core::Deployment dep(opts);

  // Ingest once (metadata only matters; tiny files).
  auto writer = dep.MakeClient(0, 99, spec.name, 64 * 1024);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }

  size_t num_clients = client_nodes * kThreadsPerNode;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.push_back(dep.MakeClient(c % client_nodes,
                                     static_cast<uint32_t>(c / client_nodes),
                                     spec.name));
  }

  Rng rng(17);
  std::vector<size_t> done(num_clients, 0);
  size_t remaining = num_clients * kOpsPerThread;
  Nanos end = 0;
  while (remaining > 0) {
    size_t next = num_clients;
    for (size_t c = 0; c < num_clients; ++c) {
      if (done[c] >= kOpsPerThread) continue;
      if (next == num_clients ||
          clients[c]->clock().now() < clients[next]->clock().now()) {
        next = c;
      }
    }
    size_t file = rng.Uniform(spec.total_files());
    auto meta = clients[next]->Stat(dlt::FilePath(spec, file));
    if (!meta.ok()) std::abort();
    ++done[next];
    --remaining;
    end = std::max(end, clients[next]->clock().now());
  }
  if (end_out != nullptr) *end_out = end;
  return static_cast<double>(num_clients * kOpsPerThread) / ToSeconds(end);
}

void Run() {
  bench::Banner(
      "Figure 10a: metadata QPS vs client nodes for 1/3/5 DIESEL servers");
  dlt::DatasetSpec spec;
  spec.name = "f10a";
  spec.num_classes = 10;
  spec.files_per_class = 200;
  spec.mean_file_bytes = 256;

  bench::Table table({"client nodes", "1 server", "3 servers", "5 servers"});
  for (size_t nodes = 1; nodes <= kMaxNodes; ++nodes) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (size_t servers : {1u, 3u, 5u}) {
      double qps = MeasureQps(servers, nodes, spec);
      row.push_back(bench::FmtCount(qps));
      bench::Metric("qps.s" + std::to_string(servers) + ".n" +
                        std::to_string(nodes),
                    "qps", qps, obs::Direction::kHigherIsBetter);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: 1 server flattens from ~2 client nodes; 3 servers from "
      "~7 nodes; 5 servers approach the KV ceiling (~0.97M QPS).\n");

  // Dedicated hotspot profile, run last on a clean registry so the report's
  // embedded telemetry reflects exactly this pass: 1 server under the full
  // client fleet is well past the saturation knee, and `dlcmd hotspots` on
  // the report must rank the metadata-server service device top. The sweep
  // above accumulated counters across 30 deployments whose virtual clocks
  // all restarted at zero; without the reset those overlapping busy windows
  // make the derived utilizations meaningless.
  obs::Metrics().ResetAll();
  Nanos window = 0;
  double qps = MeasureQps(1, kMaxNodes, spec, &window);
  bench::Info("hotspot.profile.qps", "qps", qps);
  obs::ClusterView view = bench::ExportClusterUtil(window);
  bench::MetricImbalance("cluster.imbalance", view);
  obs::HotspotReport hotspots =
      obs::HotspotReport::Build(view, obs::Metrics().Snapshot());
  std::printf("\nHotspot profile (1 server, %zu client nodes, past knee):\n%s",
              kMaxNodes, hotspots.Render(8).c_str());
  // Past the knee the metadata server must be the top hotspot: its NIC and
  // service loop trade places depending on calibration, but the charged
  // node is the server's either way.
  core::DeploymentOptions layout;
  layout.num_client_nodes = kMaxNodes;
  std::string server_node =
      "n" + std::to_string(kMaxNodes + 1 + layout.num_kv_nodes);
  if (hotspots.entries().empty()) std::abort();
  const obs::HotspotEntry& top = hotspots.entries().front();
  if (top.resource.node != server_node) {
    std::fprintf(stderr,
                 "FAIL: expected a metadata-server (%s) device as top "
                 "hotspot, got '%s' on %s\n",
                 server_node.c_str(), top.resource.name.c_str(),
                 top.resource.node.c_str());
    std::abort();
  }
  if (view.imbalance().max_node != server_node) {
    std::fprintf(stderr, "FAIL: hottest node %s is not the server %s\n",
                 view.imbalance().max_node.c_str(), server_node.c_str());
    std::abort();
  }
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig10a_metadata_servers", 17);
  diesel::bench::Param("threads_per_node", 16.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
