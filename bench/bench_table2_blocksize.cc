// Table 2: read bandwidth and IOPS with file size varied on the SSD-class
// storage cluster. 16 closed-loop readers issue random whole-object reads of
// each size; the table reports aggregate bandwidth, files/second and
// 4K-IOPS-equivalent, next to the paper's measured values.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "ostore/mem_store.h"
#include "ostore/modeled_store.h"
#include "sim/calibration.h"

namespace diesel {
namespace {

struct PaperRow {
  uint64_t size_kb;
  double bw_mb;
  double files_per_sec;
};

// Paper Table 2 values for reference columns.
const PaperRow kPaper[] = {
    {1, 33.54, 34353.45},      {4, 128.28, 32841.47},
    {16, 464.44, 29724.48},    {64, 1317.04, 21072.64},
    {256, 2725.93, 10903.72},  {1024, 3104.26, 3104.26},
    {4096, 3197.68, 799.42},
};

void Run() {
  bench::Banner("Table 2: SSD cluster read bandwidth/IOPS vs file size");
  bench::Table table({"File Size(KB)", "Bandwidth(MB/s)", "Files/Second",
                      "4K-IOPS", "paper BW(MB/s)", "paper Files/s"});

  for (const PaperRow& row : kPaper) {
    sim::Cluster cluster(2);
    net::Fabric fabric(cluster);
    ostore::MemStore backing;
    ostore::ModeledStore store(fabric, 1, sim::SsdClusterSpec(), &backing);

    const uint64_t size = row.size_kb * 1024;
    // Bound resident bytes and per-run copies.
    const size_t num_objects = std::max<size_t>(8, (64 << 20) / size);
    sim::VirtualClock setup;
    Bytes blob(size, 0x5A);
    for (size_t i = 0; i < num_objects; ++i) {
      (void)backing.Put(setup, 0, "o" + std::to_string(i), blob);
    }

    const size_t kWorkers = 16;
    const size_t ops = std::max<size_t>(64, (256 << 20) / size / kWorkers);
    Rng rng(1234);
    std::vector<uint64_t> picks(kWorkers * ops);
    for (auto& p : picks) p = rng.Uniform(num_objects);

    size_t issued = 0;
    Nanos makespan = bench::DriveClosedLoop(
        kWorkers, ops, [&](size_t, sim::VirtualClock& clock) {
          uint64_t obj = picks[issued++ % picks.size()];
          auto r = store.Get(clock, 0, "o" + std::to_string(obj));
          if (!r.ok()) std::abort();
        });

    double secs = ToSeconds(makespan);
    double total_ops = static_cast<double>(kWorkers * ops);
    double files_per_sec = total_ops / secs;
    double bw_mb = files_per_sec * static_cast<double>(size) / 1e6;
    double iops4k = bw_mb * 1e6 / 4096.0;

    table.AddRow({std::to_string(row.size_kb), bench::Fmt("%.2f", bw_mb),
                  bench::Fmt("%.2f", files_per_sec),
                  bench::Fmt("%.2f", iops4k), bench::Fmt("%.2f", row.bw_mb),
                  bench::Fmt("%.2f", row.files_per_sec)});

    std::string tag = std::to_string(row.size_kb) + "kb";
    bench::Metric("bw_mb." + tag, "MB/s", bw_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("files_per_sec." + tag, "files/s", files_per_sec,
                  obs::Direction::kHigherIsBetter);
    bench::AddVirtualTime(makespan);
  }
  table.Print();
  std::printf("\nShape check: files/s flat for small sizes (per-op bound), "
              "bandwidth saturating near 3.2GB/s for 4MB reads.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("table2_blocksize", 1234);
  diesel::bench::Param("workers", 16.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
