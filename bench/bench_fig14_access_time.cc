// Figure 14: per-iteration data access time over the first 10 epochs for the
// four paper models (AlexNet, VGG-11, ResNet-18, ResNet-50) on the
// ImageNet-1K-like dataset: Lustre (top curve) vs DIESEL-FUSE (bottom).
// The shuffle stage spikes the first iteration of every epoch.
#include "bench/bench_util.h"
#include "bench/dlt_experiment.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Figure 14: average data access time per iteration "
                "(10 epochs)");
  bench::DltConfig cfg;

  for (const sim::ModelCompute& model : bench::kPaperModels) {
    bench::ModelTrace trace = bench::RunModel(model, cfg);
    std::printf("\n-- %s --\n", model.name);
    bench::Table table({"epoch", "Lustre mean (ms)", "Lustre iter0 (ms)",
                        "DIESEL-FUSE mean (ms)", "DIESEL-FUSE iter0 (ms)",
                        "ratio"});
    double lustre_mean_sum = 0, diesel_mean_sum = 0;
    for (size_t e = 0; e < trace.lustre_data_time.size(); ++e) {
      auto mean = [](const std::vector<double>& v) {
        double s = 0;
        for (double x : v) s += x;
        return v.empty() ? 0.0 : s / static_cast<double>(v.size());
      };
      double lm = mean(trace.lustre_data_time[e]) * 1e3;
      double dm = mean(trace.diesel_data_time[e]) * 1e3;
      lustre_mean_sum += lm;
      diesel_mean_sum += dm;
      table.AddRow({std::to_string(e + 1), bench::Fmt("%.1f", lm),
                    bench::Fmt("%.1f", trace.lustre_data_time[e][0] * 1e3),
                    bench::Fmt("%.1f", dm),
                    bench::Fmt("%.1f", trace.diesel_data_time[e][0] * 1e3),
                    dm > 0 ? bench::Fmt("%.2f", dm / lm) : "~0"});
    }
    table.Print();
    size_t epochs = trace.lustre_data_time.size();
    double lmean = lustre_mean_sum / static_cast<double>(epochs);
    double dmean = diesel_mean_sum / static_cast<double>(epochs);
    bench::Metric(std::string(model.name) + ".lustre_data_ms", "ms", lmean,
                  obs::Direction::kLowerIsBetter);
    bench::Metric(std::string(model.name) + ".diesel_data_ms", "ms", dmean,
                  obs::Direction::kLowerIsBetter);
    bench::Metric(std::string(model.name) + ".speedup", "x",
                  dmean > 0 ? lmean / dmean : 0.0,
                  obs::Direction::kHigherIsBetter);
    bench::ReportTracePhases(trace);
  }
  std::printf("\nPaper shape: DIESEL-FUSE data access time is about half of "
              "Lustre's on all four models, with a spike at the first "
              "iteration of every epoch (shuffle stage).\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig14_access_time", 555);
  diesel::bench::Param("epochs", 10.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
