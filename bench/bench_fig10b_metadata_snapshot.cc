// Figure 10b: metadata QPS with the snapshot enabled. Every lookup is served
// from the client-local in-memory hash map, so QPS grows linearly with
// client count (paper: 8.83M QPS on 1 node, 88.77M on 10; ~1300x the Lustre
// MDS's ~68k).
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "sim/calibration.h"

namespace diesel {
namespace {

constexpr size_t kThreadsPerNode = 16;
constexpr size_t kOpsPerThread = 400;

void Run() {
  bench::Banner("Figure 10b: snapshot-enabled metadata QPS vs client nodes");
  dlt::DatasetSpec spec;
  spec.name = "f10b";
  spec.num_classes = 10;
  spec.files_per_class = 200;
  spec.mean_file_bytes = 256;

  core::DeploymentOptions opts;
  opts.num_client_nodes = 10;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name, 64 * 1024);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }

  bench::Table table(
      {"client nodes", "clients", "QPS", "QPS/client", "vs Lustre MDS (68k)"});
  for (size_t nodes = 1; nodes <= 10; ++nodes) {
    size_t num_clients = nodes * kThreadsPerNode;
    std::vector<std::unique_ptr<core::DieselClient>> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.push_back(dep.MakeClient(c % nodes,
                                       static_cast<uint32_t>(100 + c), spec.name));
      if (!clients.back()->FetchSnapshot().ok()) std::abort();
      clients.back()->clock().Reset(0);
    }
    Rng rng(23);
    Nanos end = 0;
    for (auto& client : clients) {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        auto meta = client->Stat(dlt::FilePath(spec, rng.Uniform(spec.total_files())));
        if (!meta.ok()) std::abort();
      }
      end = std::max(end, client->clock().now());
    }
    double qps =
        static_cast<double>(num_clients * kOpsPerThread) / ToSeconds(end);
    table.AddRow({std::to_string(nodes), std::to_string(num_clients),
                  bench::FmtCount(qps),
                  bench::FmtCount(qps / static_cast<double>(num_clients)),
                  bench::Fmt("%.0fx", qps / 68000.0)});
    bench::Metric("qps.n" + std::to_string(nodes), "qps", qps,
                  obs::Direction::kHigherIsBetter);
    bench::AddVirtualTime(end);
  }
  table.Print();
  std::printf("\nPaper: ~8.83M QPS at 1 node, ~88.77M at 10 nodes (linear), "
              "~1300x the Lustre MDS at 10 nodes.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig10b_metadata_snapshot", 23);
  diesel::bench::Param("threads_per_node", 16.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
