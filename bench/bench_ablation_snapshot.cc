// Ablation: metadata snapshot size, build time and load time versus dataset
// size (§4.1.3 keeps the snapshot "simple to reduce the download time and
// the snapshot size"). Also reports bytes/file and lookup cost after load.
#include <chrono>
#include <memory>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Ablation: snapshot size/build/load vs dataset size");
  bench::Table table({"files", "chunks", "snapshot KB", "bytes/file",
                      "serialize (ms)", "load (ms)", "1M lookups (ms)"});

  for (size_t files : {1000u, 10000u, 50000u, 200000u}) {
    dlt::DatasetSpec spec;
    spec.name = "snap";
    spec.num_classes = 100;
    spec.files_per_class = files / 100;
    spec.mean_file_bytes = 64;

    core::DeploymentOptions opts;
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, spec.name, 256 * 1024);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, spec.name);
    if (!snap.ok()) std::abort();

    // Real wall-clock costs of the client-side hot paths.
    auto t0 = std::chrono::steady_clock::now();
    Bytes blob = snap->Serialize();
    auto t1 = std::chrono::steady_clock::now();
    auto loaded = core::MetadataSnapshot::Deserialize(blob);
    auto t2 = std::chrono::steady_clock::now();
    if (!loaded.ok()) std::abort();

    Rng rng(9);
    std::vector<std::string> probes;
    probes.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      probes.push_back(dlt::FilePath(spec, rng.Uniform(spec.total_files())));
    }
    auto t3 = std::chrono::steady_clock::now();
    size_t hits = 0;
    for (int rep = 0; rep < 1000000 / 1024; ++rep) {
      for (const auto& p : probes) {
        if (loaded->Lookup(p) != nullptr) ++hits;
      }
    }
    auto t4 = std::chrono::steady_clock::now();
    if (hits == 0) std::abort();

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    table.AddRow(
        {std::to_string(files), std::to_string(snap->chunks().size()),
         bench::Fmt("%.1f", static_cast<double>(blob.size()) / 1024),
         bench::Fmt("%.1f", static_cast<double>(blob.size()) /
                                static_cast<double>(files)),
         bench::Fmt("%.2f", ms(t0, t1)), bench::Fmt("%.2f", ms(t1, t2)),
         bench::Fmt("%.1f", ms(t3, t4))});
    // Snapshot size is deterministic and gated; the serialize/load/lookup
    // timings are real wall-clock, so they are info-only (never gated).
    std::string tag = "f" + std::to_string(files);
    bench::Metric("snapshot_kb." + tag, "KB",
                  static_cast<double>(blob.size()) / 1024,
                  obs::Direction::kLowerIsBetter);
    bench::Metric("bytes_per_file." + tag, "bytes",
                  static_cast<double>(blob.size()) /
                      static_cast<double>(files),
                  obs::Direction::kLowerIsBetter);
    bench::Info("serialize_ms." + tag, "ms", ms(t0, t1));
    bench::Info("load_ms." + tag, "ms", ms(t1, t2));
    bench::Info("lookup_1m_ms." + tag, "ms", ms(t3, t4));
  }
  table.Print();
  std::printf("\nExpected: size linear in file count at <80 bytes/file "
              "(ImageNet-1K => ~90MB snapshot), sub-second load, O(1) "
              "lookups.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_snapshot", 9);
  diesel::bench::Param("classes", 100.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
