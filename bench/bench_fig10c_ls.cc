// Figure 10c: elapsed time of `ls -R` (readdir only) and `ls -lR`
// (readdir + stat-with-size) over an ImageNet-1K-like namespace on Lustre,
// local XFS, and DIESEL-FUSE with the metadata snapshot loaded. Single
// threaded, like the command-line tools in §6.3.
//
// Namespace is scaled to 128k files (1/10 of ImageNet-1K); virtual elapsed
// times scale linearly with entry count, so multiply by 10 to compare with
// the paper's 30-170s figures.
#include <memory>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "fusefs/fusefs.h"
#include "fusefs/localfs.h"
#include "fusefs/lustre_adapter.h"
#include "lustre/lustre.h"

namespace diesel {
namespace {

constexpr size_t kFiles = 128000;   // ImageNet-1K / 10
constexpr size_t kClasses = 100;    // 1000 / 10

void Run() {
  bench::Banner("Figure 10c: ls -R / ls -lR elapsed (128k files = 1/10 of "
                "ImageNet-1K; x10 to compare with the paper)");

  dlt::DatasetSpec spec;
  spec.name = "inetls";
  spec.num_classes = kClasses;
  spec.files_per_class = kFiles / kClasses;
  spec.mean_file_bytes = 64;  // metadata-only walk: content size irrelevant

  // --- Lustre ---------------------------------------------------------------
  sim::Cluster lcluster(3);
  net::Fabric lfabric(lcluster);
  lustre::LustreFs lfs(lfabric, {.mds_node = 1, .oss_node = 2});
  {
    sim::VirtualClock setup;
    for (size_t i = 0; i < spec.total_files(); ++i) {
      if (!lfs.CreateSized(setup, 0, dlt::FilePath(spec, i), 110 * 1024).ok())
        std::abort();
    }
  }
  fusefs::LustreAdapter lustre_fs(lfs, 0);

  // --- XFS -------------------------------------------------------------------
  fusefs::XfsFs xfs;
  for (size_t i = 0; i < spec.total_files(); ++i) {
    xfs.AddFile(dlt::FilePath(spec, i), 110 * 1024);
  }

  // --- DIESEL-FUSE -----------------------------------------------------------
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 1;
  core::Deployment dep(dopts);
  auto writer = dep.MakeClient(0, 0, spec.name, 4 * 1024 * 1024);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  auto client = dep.MakeClient(0, 1, spec.name);
  if (!client->FetchSnapshot().ok()) std::abort();
  core::DieselClient* raw = client.get();
  fusefs::FuseMount mount({raw});

  std::string root = "/" + spec.name;
  bench::Table table({"system", "ls -R (s)", "ls -lR (s)",
                      "x10 -> paper scale (s)"});
  struct Sys {
    const char* name;
    fusefs::PosixLike* fs;
  };
  for (const Sys& sys : {Sys{"Lustre", &lustre_fs}, Sys{"XFS", &xfs},
                         Sys{"DIESEL-FUSE", &mount}}) {
    sim::VirtualClock plain, sized;
    if (sys.fs == &mount) raw->clock().Reset(0);
    auto w1 = fusefs::LsRecursive(*sys.fs, plain, root, false);
    if (!w1.ok()) std::abort();
    if (sys.fs == &mount) {
      // Reset the daemon clock between walks so both start cold.
      raw->clock().Reset(0);
    }
    auto w2 = fusefs::LsRecursive(*sys.fs, sized, root, true);
    if (!w2.ok()) std::abort();
    table.AddRow({sys.name, bench::Fmt("%.2f", ToSeconds(plain.now())),
                  bench::Fmt("%.2f", ToSeconds(sized.now())),
                  bench::Fmt("%.1f", ToSeconds(plain.now()) * 10) + " / " +
                      bench::Fmt("%.1f", ToSeconds(sized.now()) * 10)});
    std::string tag = sys.name;
    bench::Metric("ls_r_s." + tag, "s", ToSeconds(plain.now()),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("ls_lr_s." + tag, "s", ToSeconds(sized.now()),
                  obs::Direction::kLowerIsBetter);
    bench::AddVirtualTime(plain.now() + sized.now());
  }
  table.Print();
  std::printf("\nPaper: Lustre and DIESEL-FUSE ~30-40s for ls -R; Lustre "
              "~170s for ls -lR (size lives on the OSS); DIESEL-FUSE "
              "unchanged (O(1) snapshot lookups).\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig10c_ls", 0);
  diesel::bench::Param("files", 128000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
