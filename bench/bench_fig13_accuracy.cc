// Figure 13: model accuracy/convergence with chunk-wise shuffle vs the
// conventional shuffle-over-dataset. Real SGD (softmax classifier) on a
// synthetic labelled dataset stored as files in DIESEL: each epoch the
// sample files are read back in the order the shuffle strategy dictates and
// the model trains on them. The paper's claim: chunk-wise shuffle affects
// neither accuracy nor convergence speed for reasonable group sizes.
//
// Scaled substitution for ImageNet-1K/ResNet-50 and CIFAR-10/ResNet-18
// (documented in DESIGN.md): two synthetic mixtures of different sizes; the
// group sizes are scaled to keep the paper's group/dataset chunk ratios.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/trainer.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

struct Arm {
  std::string label;
  std::vector<double> top1;  // per epoch
  std::vector<double> top5;
};

struct Experiment {
  const char* title;
  const char* tag;  // short metric prefix
  size_t train_samples;
  size_t eval_samples;
  size_t classes;
  size_t dims;
  double separation;
  double learning_rate;
  size_t epochs;
  std::vector<size_t> group_sizes;  // chunk-wise arms
};

Arm TrainArm(const Experiment& exp, const std::string& label,
             core::Deployment& dep, const core::MetadataSnapshot& snap,
             const std::vector<dlt::LabelledSample>& eval, size_t group_size,
             bool dataset_shuffle, uint64_t seed) {
  Arm arm;
  arm.label = label;
  dlt::TrainerOptions topts;
  topts.num_classes = exp.classes;
  topts.dims = exp.dims;
  topts.learning_rate = exp.learning_rate;
  dlt::SoftmaxTrainer trainer(topts);
  Rng rng(seed);
  shuffle::GroupWindowReader reader(dep.server(0), snap, 0);
  sim::VirtualClock clock;

  for (size_t epoch = 0; epoch < exp.epochs; ++epoch) {
    std::vector<dlt::LabelledSample> ordered;
    ordered.reserve(exp.train_samples);
    if (dataset_shuffle) {
      // Conventional: random permutation of all files, read individually.
      std::vector<uint32_t> order = shuffle::ShuffleDataset(snap, rng);
      for (uint32_t idx : order) {
        const core::FileMeta& fm = snap.files()[idx];
        auto content = dep.server(0).ReadFile(clock, 0, snap.dataset(),
                                              fm.full_name);
        if (!content.ok()) std::abort();
        auto sample = dlt::SoftmaxTrainer::Decode(content.value());
        if (!sample.ok()) std::abort();
        ordered.push_back(std::move(sample).value());
      }
    } else {
      shuffle::ShufflePlan plan = shuffle::ChunkWiseShuffle(
          snap, {.group_size = group_size}, rng);
      reader.StartEpoch(std::move(plan));
      while (!reader.Done()) {
        auto content = reader.Next(clock);
        if (!content.ok()) std::abort();
        auto sample = dlt::SoftmaxTrainer::Decode(content.value());
        if (!sample.ok()) std::abort();
        ordered.push_back(std::move(sample).value());
      }
    }
    trainer.TrainEpoch(ordered);
    arm.top1.push_back(trainer.TopKAccuracy(eval, 1));
    arm.top5.push_back(trainer.TopKAccuracy(eval, 5));
  }
  return arm;
}

void RunExperiment(const Experiment& exp) {
  bench::Banner(exp.title);

  dlt::SampleSpec sample_spec;
  sample_spec.num_classes = exp.classes;
  sample_spec.dims = exp.dims;
  sample_spec.separation = exp.separation;

  // Store the training set in DIESEL, class-sorted (worst case for
  // chunk locality, like ImageNet's directory order): file i = sample whose
  // index groups same-class samples into consecutive chunks.
  core::DeploymentOptions dopts;
  core::Deployment dep(dopts);
  std::string dataset = "fig13";
  auto writer = dep.MakeClient(0, 0, dataset, /*chunk=*/8 * 1024);
  for (size_t c = 0; c < exp.classes; ++c) {
    for (size_t i = c; i < exp.train_samples; i += exp.classes) {
      Bytes sample = dlt::MakeSample(sample_spec, i);
      char name[64];
      std::snprintf(name, sizeof(name), "/fig13/cls%03zu/s%06zu.bin", c, i);
      if (!writer->Put(name, sample).ok()) std::abort();
    }
  }
  if (!writer->Flush().ok()) std::abort();
  auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, dataset);
  if (!snap.ok()) std::abort();

  std::vector<dlt::LabelledSample> eval;
  for (size_t i = 0; i < exp.eval_samples; ++i) {
    auto s = dlt::SoftmaxTrainer::Decode(
        dlt::MakeSample(sample_spec, exp.train_samples + i));
    if (!s.ok()) std::abort();
    eval.push_back(std::move(s).value());
  }

  std::vector<Arm> arms;
  arms.push_back(
      TrainArm(exp, "shuffle dataset", dep, *snap, eval, 0, true, 1001));
  for (size_t g : exp.group_sizes) {
    arms.push_back(TrainArm(exp, "chunk-wise G=" + std::to_string(g), dep,
                            *snap, eval, g, false, 2000 + g));
  }

  std::vector<std::string> headers{"epoch"};
  for (const Arm& arm : arms) {
    headers.push_back(arm.label + " top1");
    headers.push_back(arm.label + " top5");
  }
  bench::Table table(headers);
  for (size_t e = 0; e < exp.epochs; ++e) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (const Arm& arm : arms) {
      row.push_back(bench::Fmt("%.3f", arm.top1[e]));
      row.push_back(bench::Fmt("%.3f", arm.top5[e]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Convergence-equivalence check: final accuracy of every chunk-wise arm
  // within a small margin of the dataset-shuffle baseline.
  double base = arms[0].top1.back();
  // Accuracy is deterministic but sensitive to FP reduction order, so the
  // gate uses a wider tolerance than throughput metrics.
  bench::Metric(std::string(exp.tag) + ".final_top1.dataset_shuffle", "frac",
                base, obs::Direction::kHigherIsBetter, 0.05);
  for (size_t a = 1; a < arms.size(); ++a) {
    double delta = arms[a].top1.back() - base;
    std::printf("%s final top-1 delta vs dataset shuffle: %+.4f\n",
                arms[a].label.c_str(), delta);
    bench::Metric(std::string(exp.tag) + ".final_top1.arm" + std::to_string(a),
                  "frac", arms[a].top1.back(),
                  obs::Direction::kHigherIsBetter, 0.05);
  }
}

void Run() {
  // "ImageNet-like": larger, more classes (top-5 meaningful), group sizes
  // scaled to the paper's 100/500-of-~37k-chunks ratio.
  RunExperiment({.title = "Figure 13 (a,b): ImageNet-1K-like mixture, "
                          "softmax classifier",
                 .tag = "imagenet",
                 .train_samples = 12000,
                 .eval_samples = 2000,
                 .classes = 20,
                 .dims = 48,
                 .separation = 0.40,   // calibrated: top-1 climbs ~0.6 -> 0.77
                 .learning_rate = 0.002,
                 .epochs = 10,
                 .group_sizes = {10, 50}});
  // "CIFAR-10-like": small dataset, small groups (paper: 15/30).
  RunExperiment({.title = "Figure 13 (c,d): CIFAR-10-like mixture, softmax "
                          "classifier",
                 .tag = "cifar",
                 .train_samples = 4000,
                 .eval_samples = 1000,
                 .classes = 10,
                 .dims = 32,
                 .separation = 0.45,
                 .learning_rate = 0.003,
                 .epochs = 10,
                 .group_sizes = {15, 30}});
  std::printf("\nPaper shape: accuracy and convergence curves of chunk-wise "
              "shuffle coincide with shuffle-over-dataset for all group "
              "sizes tested.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig13_accuracy", 1001);
  diesel::bench::Param("epochs", 10.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
