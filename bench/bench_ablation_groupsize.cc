// Ablation: chunk-wise shuffle group size. Larger groups randomize better
// (lower adjacent-same-chunk fraction) and amortize nothing extra; smaller
// groups shrink the memory window. The paper reports ~88% of fully-cached
// speed with a ~2GB window on a 150GB dataset; this sweep shows speed and
// window size versus G, plus the fully-cached reference.
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

constexpr size_t kFiles = 20000;
constexpr uint64_t kFileSize = 8 * 1024;

void Run() {
  bench::Banner("Ablation: shuffle group size (20k files x 8KB, 1MB chunks)");
  dlt::DatasetSpec spec;
  spec.name = "grp";
  spec.num_classes = 10;
  spec.files_per_class = kFiles / 10;
  spec.mean_file_bytes = kFileSize;
  spec.fixed_size = true;

  core::DeploymentOptions opts;
  opts.num_client_nodes = 4;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 0, spec.name, 256 * 1024);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, spec.name);
  if (!snap.ok()) std::abort();

  // Fully-cached reference: the task-grained distributed cache across 4
  // nodes (what the paper compares against in "the fully cached scenario"),
  // so peer fetches over the network dominate, not local memcpys.
  const size_t kThreads = 16;
  double cached_files_per_sec;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  {
    cache::TaskRegistry registry;
    for (size_t t = 0; t < kThreads; ++t) {
      clients.push_back(dep.MakeClient(t % 4, static_cast<uint32_t>(t / 4),
                                       spec.name));
      registry.Register(clients.back()->endpoint());
    }
    cache::TaskCache cache(dep.fabric(), dep.server(0), *snap, registry,
                           {.policy = cache::CachePolicy::kOneshot});
    cache.EstablishConnections();
    if (!cache.Preload(0).ok()) std::abort();
    Rng rng(5);
    const size_t kOps = 2000;  // per thread
    Nanos end = bench::DriveClosedLoop(
        kThreads, kOps, [&](size_t t, sim::VirtualClock& clock) {
          const core::FileMeta* fm = snap->Lookup(
              dlt::FilePath(spec, rng.Uniform(spec.total_files())));
          auto r = cache.GetFile(clock, clients[t]->endpoint(), *fm);
          if (!r.ok()) std::abort();
        });
    cached_files_per_sec =
        static_cast<double>(kThreads * kOps) / ToSeconds(end);
  }

  bench::Table table({"group size", "files/s (16 rdrs)", "% of fully cached",
                      "peak window/rdr", "adjacent-same-chunk"});
  for (size_t g : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Rng rng(6);
    shuffle::ShufflePlan plan =
        shuffle::ChunkWiseShuffle(*snap, {.group_size = g}, rng);
    double locality = shuffle::AdjacentSameChunkFraction(*snap,
                                                         plan.file_order);
    // 16 concurrent readers on 4 nodes, each owning a slice of groups.
    std::vector<std::unique_ptr<shuffle::GroupWindowReader>> readers;
    std::vector<sim::VirtualClock> clocks(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      readers.push_back(std::make_unique<shuffle::GroupWindowReader>(
          dep.server(0), *snap, static_cast<sim::NodeId>(t % 4)));
      readers.back()->StartEpoch(shuffle::PartitionPlan(plan, t, kThreads));
    }
    uint64_t files = 0, window = 0;
    for (;;) {
      size_t next = kThreads;
      for (size_t t = 0; t < kThreads; ++t) {
        if (readers[t]->Done()) continue;
        if (next == kThreads || clocks[t].now() < clocks[next].now()) next = t;
      }
      if (next == kThreads) break;
      auto r = readers[next]->Next(clocks[next]);
      if (!r.ok()) std::abort();
      ++files;
    }
    Nanos end = 0;
    for (size_t t = 0; t < kThreads; ++t) {
      end = std::max(end, clocks[t].now());
      window = std::max(window, readers[t]->stats().peak_window_bytes);
    }
    double rate = static_cast<double>(files) / ToSeconds(end);
    table.AddRow(
        {std::to_string(g), bench::FmtCount(rate),
         bench::Fmt("%.1f%%", 100.0 * rate / cached_files_per_sec),
         bench::FmtCount(static_cast<double>(window) / 1024) + "KB",
         bench::Fmt("%.4f", locality)});
    std::string tag = "g" + std::to_string(g);
    bench::Metric("files_per_sec." + tag, "files/s", rate,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("pct_of_cached." + tag, "%",
                  100.0 * rate / cached_files_per_sec,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("peak_window_kb." + tag, "KB",
                  static_cast<double>(window) / 1024,
                  obs::Direction::kLowerIsBetter);
    bench::Metric("adjacent_same_chunk." + tag, "frac", locality,
                  obs::Direction::kLowerIsBetter);
    bench::AddVirtualTime(end);
  }
  bench::Metric("cached_files_per_sec", "files/s", cached_files_per_sec,
                obs::Direction::kHigherIsBetter);
  table.Print();
  std::printf("\nfully-cached reference: %s files/s. Paper: chunk-wise "
              "shuffle reaches >=88%% of fully-cached speed with a window "
              "~1.3%% of the dataset.\n",
              bench::FmtCount(cached_files_per_sec).c_str());
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_groupsize", 6);
  diesel::bench::Param("files", 20000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
