// Figure 6: reading speed of a global in-memory caching system (Memcached
// cluster) as instances fail. Clients read random file batches each
// iteration; at iteration 30 one instance is disabled and at iteration 70 a
// second. Misses redirect to the underlying Lustre filesystem, and a small
// miss fraction collapses throughput (paper: 5% misses cost ~90% of speed).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "lustre/lustre.h"
#include "memcache/memcache.h"

namespace diesel {
namespace {

constexpr size_t kMcNodes = 20;
constexpr size_t kClientNodes = 20;     // clients co-located, as in the paper
constexpr size_t kClientsPerNode = 16;  // as in the paper
constexpr size_t kFilesPerIteration = 32;   // scaled from 128 (iterations only set reporting granularity)
constexpr size_t kIterations = 100;
constexpr size_t kNumFiles = 40000;
constexpr uint64_t kFileSize = 4096;

void Run() {
  bench::Banner("Figure 6: Memcached-cluster reading speed under node "
                "failures (instances disabled at iterations 30 and 70)");

  sim::Cluster cluster(kMcNodes + 2);
  net::Fabric fabric(cluster);
  memcache::MemcacheOptions mc_opts;
  for (sim::NodeId n = 0; n < kMcNodes; ++n) mc_opts.nodes.push_back(n);
  memcache::MemcachedCluster mc(fabric, mc_opts);
  lustre::LustreFs lustre(fabric,
                          {.mds_node = kMcNodes, .oss_node = kMcNodes + 1});

  // Populate the dataset in both the cache (hot) and Lustre (backing).
  std::string payload(kFileSize, 'd');
  {
    sim::VirtualClock setup;
    for (size_t f = 0; f < kNumFiles; ++f) {
      std::string name = "/ds/f" + std::to_string(f);
      if (!mc.Set(setup, 0, name, payload).ok()) std::abort();
      if (!lustre.CreateSized(setup, 0, name, kFileSize).ok()) std::abort();
    }
  }

  const size_t kClients = kClientNodes * kClientsPerNode;
  Rng rng(31);
  bench::Table table({"iteration", "files/s", "hit ratio", "misses/iter"});

  Nanos epoch_start = 0;
  for (size_t iter = 0; iter < kIterations; ++iter) {
    if (iter == 30) mc.DisableInstance(3);
    if (iter == 70) mc.DisableInstance(11);

    size_t hits = 0, misses = 0;
    // Each client reads a random batch; all clients run concurrently.
    Nanos iter_end = bench::DriveClosedLoopFrom(
        epoch_start, kClients, kFilesPerIteration,
        [&](size_t c, sim::VirtualClock& clock) {
          std::string name =
              "/ds/f" + std::to_string(rng.Uniform(kNumFiles));
          auto v = mc.Get(clock, static_cast<sim::NodeId>(c % kClientNodes),
                          name);
          if (v.ok()) {
            ++hits;
          } else {
            ++misses;
            // Miss: fall back to the shared filesystem.
            auto data = lustre.Read(
                clock, static_cast<sim::NodeId>(c % kClientNodes), name);
            if (!data.ok()) std::abort();
          }
        });

    double secs = ToSeconds(iter_end - epoch_start);
    double speed = static_cast<double>(kClients * kFilesPerIteration) / secs;
    double hit_ratio =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
    if (iter % 10 == 0 || iter == 29 || iter == 31 || iter == 69 ||
        iter == 71) {
      table.AddRow({std::to_string(iter), bench::FmtCount(speed),
                    bench::Fmt("%.3f", hit_ratio),
                    bench::Fmt("%.1f", static_cast<double>(misses) / kClients)});
    }
    // The three plateaus of the figure: full-hit, one instance down, two.
    if (iter == 29 || iter == 69 || iter == 99) {
      bench::Metric("files_per_sec.iter" + std::to_string(iter), "files/s",
                    speed, obs::Direction::kHigherIsBetter);
      bench::Info("hit_ratio.iter" + std::to_string(iter), "frac", hit_ratio);
    }
    epoch_start = iter_end;
  }
  bench::AddVirtualTime(epoch_start);
  table.Print();
  std::printf("\nPaper shape: full-hit speed collapses by ~90%% once ~5%% of "
              "lookups miss (one instance of twenty disabled), and drops "
              "further after the second failure.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig6_memcached_failure", 31);
  diesel::bench::Param("mc_nodes", 20.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
