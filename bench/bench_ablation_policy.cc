// Ablation: cache policies (§4.2) — oneshot (pull the dataset right after
// registration, overlapping with model/checkpoint loading) versus on-demand
// (pull chunks on first miss). Reports first-epoch and steady-state epoch
// times, plus the benefit of overlapping the oneshot load with a checkpoint
// load of varying length.
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kClientsPerNode = 4;

struct EpochTimes {
  double first_epoch_s = 0;
  double second_epoch_s = 0;
};

EpochTimes RunPolicy(cache::CachePolicy policy, Nanos checkpoint_load,
                     const dlt::DatasetSpec& spec) {
  core::DeploymentOptions opts;
  opts.num_client_nodes = kNodes;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  dep.ResetDevices();

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (size_t c = 0; c < kNodes * kClientsPerNode; ++c) {
    clients.push_back(dep.MakeClient(c % kNodes,
                                     static_cast<uint32_t>(c / kNodes),
                                     spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry,
                         {.policy = policy});
  cache.EstablishConnections();

  // Oneshot pulls in the background while the checkpoint loads; training
  // starts at max(checkpoint loaded, nothing else) and may still miss if
  // the pull is unfinished — here the pull is fully in the background, so
  // training starts right after the checkpoint and hits whatever is loaded.
  Nanos train_start = checkpoint_load;
  if (policy == cache::CachePolicy::kOneshot) {
    auto end = cache.Preload(0);
    if (!end.ok()) std::abort();
    // Chunks are resident from max(preload end, checkpoint) on; the cache
    // state is already final, so only the start time shifts.
    train_start = std::max(train_start, std::min(end.value(), checkpoint_load));
  }

  EpochTimes times;
  Rng rng(5);
  for (int epoch = 0; epoch < 2; ++epoch) {
    std::vector<uint32_t> order(snap.num_files());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    std::vector<sim::VirtualClock> clocks(clients.size(),
                                          sim::VirtualClock(train_start));
    size_t cursor = 0;
    while (cursor < order.size()) {
      size_t next = 0;
      for (size_t c = 1; c < clocks.size(); ++c) {
        if (clocks[c].now() < clocks[next].now()) next = c;
      }
      const core::FileMeta& fm = snap.files()[order[cursor++]];
      auto r = cache.GetFile(clocks[next], clients[next]->endpoint(), fm);
      if (!r.ok()) std::abort();
    }
    Nanos end = train_start;
    for (const auto& c : clocks) end = std::max(end, c.now());
    (epoch == 0 ? times.first_epoch_s : times.second_epoch_s) =
        ToSeconds(end - train_start);
    train_start = end;
  }
  return times;
}

void Run() {
  bench::Banner("Ablation: oneshot vs on-demand cache policy (§4.2)");
  dlt::DatasetSpec spec;
  spec.name = "pol";
  spec.num_classes = 10;
  spec.files_per_class = 800;
  spec.mean_file_bytes = 16 * 1024;
  spec.fixed_size = true;

  bench::Table table({"policy", "checkpoint load", "epoch 1 (s)",
                      "epoch 2 (s)", "epoch1/epoch2"});
  for (Nanos ckpt : {Nanos{0}, Seconds(2.0)}) {
    for (auto policy :
         {cache::CachePolicy::kOnDemand, cache::CachePolicy::kOneshot}) {
      EpochTimes t = RunPolicy(policy, ckpt, spec);
      table.AddRow(
          {policy == cache::CachePolicy::kOneshot ? "oneshot" : "on-demand",
           bench::Fmt("%.0fs", ToSeconds(ckpt)),
           bench::Fmt("%.3f", t.first_epoch_s),
           bench::Fmt("%.3f", t.second_epoch_s),
           bench::Fmt("%.2fx", t.first_epoch_s / t.second_epoch_s)});
      std::string tag =
          std::string(policy == cache::CachePolicy::kOneshot ? "oneshot"
                                                             : "ondemand") +
          ".ckpt" + bench::Fmt("%.0f", ToSeconds(ckpt)) + "s";
      bench::Metric("epoch1_s." + tag, "s", t.first_epoch_s,
                    obs::Direction::kLowerIsBetter);
      bench::Metric("epoch2_s." + tag, "s", t.second_epoch_s,
                    obs::Direction::kLowerIsBetter);
      bench::AddVirtualTime(
          static_cast<Nanos>((t.first_epoch_s + t.second_epoch_s) * 1e9));
    }
  }
  table.Print();
  std::printf("\nPaper: oneshot removes the first-epoch read-latency penalty "
              "by pulling the dataset while the checkpoint/pretrained model "
              "loads; on-demand pays it in epoch 1 and matches from epoch 2.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_policy", 5);
  diesel::bench::Param("client_nodes", 4.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
