// Figure 11b: cache loading/recovery time on an ImageNet-1K-like dataset.
//
// DIESEL reloads whole >=4MB chunks with parallel fetch streams per task
// node (0% -> 100% hit ratio). The Memcached cluster starts at 80% (a cold
// start "will be excessively long", §6.4) and refills ON DEMAND: the
// training clients keep reading random files, each miss loads one file from
// Lustre — so completing the refill is a coupon-collector process over the
// missing 20% and takes far longer than the miss count alone suggests.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "lustre/lustre.h"
#include "memcache/memcache.h"

namespace diesel {
namespace {

// Scaled ImageNet-1K: 16k files x ~56KB ~= 0.9GB (1/80 of the real dataset).
constexpr size_t kFiles = 16000;
constexpr uint64_t kMeanSize = 56 * 1024;

void Run() {
  bench::Banner("Figure 11b: cache load/recovery time (scaled ImageNet-1K: "
                "16k files, ~0.9GB)");
  dlt::DatasetSpec spec;
  spec.name = "f11b";
  spec.num_classes = 100;
  spec.files_per_class = kFiles / 100;
  spec.mean_file_bytes = kMeanSize;

  // ---- DIESEL: chunk-granular parallel reload over 4 task nodes ------------
  core::DeploymentOptions opts;
  opts.num_client_nodes = 4;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (uint32_t n = 0; n < 4; ++n) {
    clients.push_back(dep.MakeClient(n, 0, spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry,
                         {.policy = cache::CachePolicy::kOneshot,
                          .preload_streams = 8});
  auto load_end = cache.Preload(0);
  if (!load_end.ok()) std::abort();
  std::printf("\nDIESEL task-grained cache: full dataset (%zu chunks) loaded "
              "in %.2fs virtual; hit ratio 1.00\n", snap.chunks().size(),
              ToSeconds(load_end.value()));

  // ---- Memcached: on-demand refill through random training reads ----------
  std::printf("\nMemcached cluster: on-demand refill of the lost 20%% while "
              "64 clients keep reading random files\n");
  sim::Cluster mcluster(12);
  net::Fabric mfabric(mcluster);
  memcache::MemcacheOptions mc_opts;
  for (sim::NodeId n = 0; n < 10; ++n) mc_opts.nodes.push_back(n);
  memcache::MemcachedCluster mc(mfabric, mc_opts);
  lustre::LustreFs lustre(mfabric, {.mds_node = 10, .oss_node = 11});
  std::vector<bool> cached(kFiles, false);
  {
    sim::VirtualClock setup;
    for (size_t i = 0; i < kFiles; ++i) {
      std::string path = dlt::FilePath(spec, i);
      if (!lustre.CreateSized(setup, 0, path, kMeanSize).ok()) std::abort();
      if (i % 5 != 0) {  // 80% already cached
        if (!mc.Set(setup, 0, path, std::string(kMeanSize, 'x')).ok())
          std::abort();
        cached[i] = true;
      }
    }
  }

  bench::Table mc_table({"elapsed (s)", "hit ratio", "reads issued"});
  {
    const size_t kClients = 64;
    size_t missing = kFiles / 5;
    size_t reads = 0;
    Rng rng(19);
    std::vector<sim::VirtualClock> clocks(kClients);
    size_t next_report_pct = 82;
    Nanos end = 0;
    while (missing > 0) {
      // Earliest-clock client issues the next random read.
      size_t c = 0;
      for (size_t k = 1; k < kClients; ++k) {
        if (clocks[k].now() < clocks[c].now()) c = k;
      }
      size_t f = rng.Uniform(kFiles);
      std::string path = dlt::FilePath(spec, f);
      ++reads;
      auto v = mc.Get(clocks[c], static_cast<sim::NodeId>(c % 10), path);
      if (!v.ok()) {
        auto data =
            lustre.Read(clocks[c], static_cast<sim::NodeId>(c % 10), path);
        if (!data.ok()) std::abort();
        if (!cached[f]) {
          if (!mc.Set(clocks[c], static_cast<sim::NodeId>(c % 10), path,
                      std::string(kMeanSize, 'x')).ok()) {
            std::abort();
          }
          cached[f] = true;
          --missing;
        }
      }
      end = std::max(end, clocks[c].now());
      double ratio = 1.0 - static_cast<double>(missing) /
                               static_cast<double>(kFiles);
      if (ratio * 100 >= static_cast<double>(next_report_pct)) {
        mc_table.AddRow({bench::Fmt("%.2f", ToSeconds(end)),
                         bench::Fmt("%.3f", ratio), bench::FmtCount(reads)});
        next_report_pct += 2;
      }
    }
    mc_table.Print();
    std::printf("Memcached reached 100%% after %.2fs and %s random reads "
                "(coupon-collector tail: the last missing files are only "
                "refilled when randomly touched)\n",
                ToSeconds(end), bench::FmtCount(reads).c_str());
    std::printf("\nRecovery-time ratio (full DIESEL load vs 20%% memcached "
                "refill): %.1fx in favour of DIESEL despite loading 5x the "
                "data. At paper scale (1.28M files) the collector factor "
                "grows with N ln N, giving the >10x gap of Fig. 11b.\n",
                ToSeconds(end) / ToSeconds(load_end.value()));
    bench::Metric("diesel_load_s", "s", ToSeconds(load_end.value()),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("memcached_refill_s", "s", ToSeconds(end),
                  obs::Direction::kLowerIsBetter);
    bench::Metric("refill_ratio", "x",
                  ToSeconds(end) / ToSeconds(load_end.value()),
                  obs::Direction::kHigherIsBetter);
    bench::Info("memcached_refill_reads", "reads",
                static_cast<double>(reads));
    bench::AddVirtualTime(load_end.value() + end);
  }
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig11b_recovery", 19);
  diesel::bench::Param("files", 16000.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
