// Figure 11a: random 4KB file read QPS versus client count for
// DIESEL-API (task-grained cache), DIESEL-FUSE, the Memcached cluster, and
// Lustre. All caches pre-warmed; 16 threads per client node, 1-10 nodes.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "fusefs/fusefs.h"
#include "lustre/lustre.h"
#include "memcache/memcache.h"

namespace diesel {
namespace {

constexpr size_t kMaxNodes = 10;
constexpr size_t kThreadsPerNode = 16;
constexpr size_t kOps = 120;  // per thread
constexpr uint64_t kFileSize = 4096;

dlt::DatasetSpec Spec() {
  dlt::DatasetSpec spec;
  spec.name = "f11a";
  spec.num_classes = 10;
  spec.files_per_class = 2000;
  spec.mean_file_bytes = kFileSize;
  spec.fixed_size = true;
  return spec;
}

// DIESEL deployment with dataset ingested and snapshot built once.
struct DieselRig {
  explicit DieselRig(const dlt::DatasetSpec& spec) {
    core::DeploymentOptions opts;
    opts.num_client_nodes = kMaxNodes;
    dep = std::make_unique<core::Deployment>(opts);
    auto writer = dep->MakeClient(0, 99, spec.name);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
  }
  std::unique_ptr<core::Deployment> dep;
};

double DieselQps(DieselRig& rig, const dlt::DatasetSpec& spec, size_t nodes,
                 bool fuse) {
  // Fresh virtual-time state for this sweep point (same dataset, no reingest).
  rig.dep->ResetDevices();
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  size_t num_clients = nodes * kThreadsPerNode;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.push_back(rig.dep->MakeClient(
        c % nodes, static_cast<uint32_t>(1000 + c / nodes), spec.name));
    registry.Register(clients.back()->endpoint());
    if (!clients.back()->FetchSnapshot().ok()) std::abort();
    clients.back()->clock().Reset(0);
  }
  cache::TaskCache cache(rig.dep->fabric(), rig.dep->server(0),
                         *clients[0]->snapshot(), registry,
                         {.policy = cache::CachePolicy::kOneshot});
  cache.EstablishConnections();
  if (!cache.Preload(0).ok()) std::abort();
  std::vector<std::unique_ptr<core::DatasetCacheInterface>> handles;
  for (auto& c : clients) {
    handles.push_back(cache.HandleFor(c->endpoint()));
    c->AttachCache(handles.back().get());
    c->clock().Reset(0);
  }

  std::vector<std::unique_ptr<fusefs::FuseMount>> mounts;
  if (fuse) {
    // One mount per node over that node's daemon clients.
    for (size_t n = 0; n < nodes; ++n) {
      std::vector<core::DieselClient*> daemon;
      for (size_t c = 0; c < num_clients; ++c) {
        if (c % nodes == n) daemon.push_back(clients[c].get());
      }
      mounts.push_back(std::make_unique<fusefs::FuseMount>(daemon));
    }
  }

  Rng rng(7);
  std::vector<uint64_t> picks(num_clients * kOps);
  for (auto& p : picks) p = rng.Uniform(spec.total_files());
  size_t issued = 0;

  if (fuse) {
    Nanos end = bench::DriveClosedLoop(
        num_clients, kOps, [&](size_t c, sim::VirtualClock& clock) {
          auto r = mounts[c % nodes]->ReadFile(
              clock, dlt::FilePath(spec, picks[issued++]));
          if (!r.ok()) std::abort();
        });
    return static_cast<double>(num_clients * kOps) / ToSeconds(end);
  }

  // DIESEL-API: drive by the clients' own clocks.
  std::vector<size_t> done(num_clients, 0);
  size_t remaining = num_clients * kOps;
  Nanos end = 0;
  while (remaining > 0) {
    size_t next = num_clients;
    for (size_t c = 0; c < num_clients; ++c) {
      if (done[c] >= kOps) continue;
      if (next == num_clients ||
          clients[c]->clock().now() < clients[next]->clock().now()) {
        next = c;
      }
    }
    auto r = clients[next]->Get(dlt::FilePath(spec, picks[issued++]));
    if (!r.ok()) std::abort();
    ++done[next];
    --remaining;
    end = std::max(end, clients[next]->clock().now());
  }
  return static_cast<double>(num_clients * kOps) / ToSeconds(end);
}

double MemcachedQps(const dlt::DatasetSpec& spec, size_t nodes) {
  sim::Cluster cluster(kMaxNodes);
  net::Fabric fabric(cluster);
  memcache::MemcacheOptions opts;
  for (sim::NodeId n = 0; n < kMaxNodes; ++n) opts.nodes.push_back(n);
  memcache::MemcachedCluster mc(fabric, opts);
  {
    sim::VirtualClock setup;
    std::string payload(kFileSize, 'x');
    for (size_t i = 0; i < spec.total_files(); ++i) {
      if (!mc.Set(setup, 0, dlt::FilePath(spec, i), payload).ok()) std::abort();
    }
  }
  size_t num_clients = nodes * kThreadsPerNode;
  Rng rng(9);
  Nanos end = bench::DriveClosedLoop(
      num_clients, kOps, [&](size_t c, sim::VirtualClock& clock) {
        auto r = mc.Get(clock, static_cast<sim::NodeId>(c % nodes),
                        dlt::FilePath(spec, rng.Uniform(spec.total_files())));
        if (!r.ok()) std::abort();
      });
  return static_cast<double>(num_clients * kOps) / ToSeconds(end);
}

double LustreQps(const dlt::DatasetSpec& spec, size_t nodes) {
  sim::Cluster cluster(kMaxNodes + 2);
  net::Fabric fabric(cluster);
  lustre::LustreFs fs(fabric,
                      {.mds_node = kMaxNodes, .oss_node = kMaxNodes + 1});
  {
    sim::VirtualClock setup;
    for (size_t i = 0; i < spec.total_files(); ++i) {
      if (!fs.CreateSized(setup, 0, dlt::FilePath(spec, i), kFileSize).ok())
        std::abort();
    }
  }
  size_t num_clients = nodes * kThreadsPerNode;
  Rng rng(11);
  Nanos end = bench::DriveClosedLoop(
      num_clients, kOps, [&](size_t c, sim::VirtualClock& clock) {
        auto r = fs.Read(clock, static_cast<sim::NodeId>(c % nodes),
                         dlt::FilePath(spec, rng.Uniform(spec.total_files())));
        if (!r.ok()) std::abort();
      });
  return static_cast<double>(num_clients * kOps) / ToSeconds(end);
}

void Run() {
  bench::Banner("Figure 11a: 4KB random-read QPS vs client nodes "
                "(16 threads/node)");
  dlt::DatasetSpec spec = Spec();
  DieselRig rig(spec);

  bench::Table table({"nodes", "DIESEL-API", "DIESEL-FUSE", "Memcached",
                      "Lustre"});
  for (size_t nodes : {1u, 2u, 4u, 6u, 8u, 10u}) {
    double api = DieselQps(rig, spec, nodes, false);
    double fuse = DieselQps(rig, spec, nodes, true);
    double mc = MemcachedQps(spec, nodes);
    double lustre = LustreQps(spec, nodes);
    table.AddRow({std::to_string(nodes), bench::FmtCount(api),
                  bench::FmtCount(fuse), bench::FmtCount(mc),
                  bench::FmtCount(lustre)});
    std::string tag = ".n" + std::to_string(nodes);
    bench::Metric("qps.api" + tag, "qps", api,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("qps.fuse" + tag, "qps", fuse,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("qps.memcached" + tag, "qps", mc,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("qps.lustre" + tag, "qps", lustre,
                  obs::Direction::kHigherIsBetter);
  }
  table.Print();
  std::printf("\nPaper at 10 nodes: DIESEL-API >1.2M QPS, DIESEL-FUSE ~800k "
              "(>60%% of API), Memcached ~560k, Lustre ~40k.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig11a_read4k", 7);
  diesel::bench::Param("threads_per_node", 16.0);
  diesel::bench::Param("file_size", 4096.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
