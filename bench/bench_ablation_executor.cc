// Ablation: the DIESEL server's request executor (§4: "sorts and merges
// small file requests to chunk-wise operations"). Sweeps the merge-gap
// threshold and the batch size, reporting storage ops per file and batch
// latency — including merge_gap=0 (sort-only) as the no-merge baseline.
#include <memory>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

void Run() {
  bench::Banner("Ablation: request-executor merge gap and batch size");
  dlt::DatasetSpec spec;
  spec.name = "exec";
  spec.num_classes = 10;
  spec.files_per_class = 1000;
  spec.mean_file_bytes = 8 * 1024;
  spec.fixed_size = true;

  bench::Table table({"merge gap", "batch", "storage ops/batch",
                      "batch latency (ms)", "vs no-merge"});
  for (uint64_t gap : {uint64_t{0}, uint64_t{16 << 10}, uint64_t{64 << 10},
                       uint64_t{512 << 10}}) {
    for (size_t batch_size : {32u, 256u}) {
      core::DeploymentOptions opts;
      core::Deployment dep(opts);
      auto writer = dep.MakeClient(0, 0, spec.name);
      if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
            return writer->Put(f.path, f.content);
          }).ok() ||
          !writer->Flush().ok()) {
        std::abort();
      }
      dep.ResetDevices();
      // Rebuild the server with the merge gap under test.
      core::ServerOptions so;
      so.node = dep.server_node(0);
      so.merge_gap_bytes = gap;
      core::DieselServer server(dep.fabric(), dep.kv(), dep.store(), so);

      Rng rng(9);
      sim::VirtualClock clock;
      uint64_t ops_before = dep.ssd_store().device().ops_served();
      const int kBatches = 20;
      for (int b = 0; b < kBatches; ++b) {
        std::vector<std::string> paths;
        for (size_t i = 0; i < batch_size; ++i) {
          paths.push_back(
              dlt::FilePath(spec, rng.Uniform(spec.total_files())));
        }
        auto r = server.ReadFiles(clock, 0, spec.name, paths);
        if (!r.ok()) std::abort();
      }
      double ops_per_batch =
          static_cast<double>(dep.ssd_store().device().ops_served() -
                              ops_before) /
          kBatches;
      double latency_ms = ToMillis(clock.now()) / kBatches;
      static double no_merge_ref = 0;
      if (gap == 0 && batch_size == 256) no_merge_ref = latency_ms;
      table.AddRow({gap == 0 ? "0 (sort only)"
                             : bench::FmtCount(static_cast<double>(gap)),
                    std::to_string(batch_size),
                    bench::Fmt("%.1f", ops_per_batch),
                    bench::Fmt("%.2f", latency_ms),
                    (no_merge_ref > 0 && batch_size == 256)
                        ? bench::Fmt("%.2fx", no_merge_ref / latency_ms)
                        : "-"});
      std::string tag =
          "g" + std::to_string(gap >> 10) + "kb.b" + std::to_string(batch_size);
      bench::Metric("ops_per_batch." + tag, "ops", ops_per_batch,
                    obs::Direction::kLowerIsBetter);
      bench::Metric("batch_latency_ms." + tag, "ms", latency_ms,
                    obs::Direction::kLowerIsBetter);
      bench::AddVirtualTime(clock.now());
    }
  }
  table.Print();
  std::printf("\nSorting by (chunk, offset) plus gap merging turns dozens of "
              "random small reads into a handful of chunk-range reads; past "
              "a point, widening the gap trades wasted bytes for fewer "
              "ops.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_executor", 9);
  diesel::bench::Param("batches", 20.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
