// Ablation: fault-injection overhead. The same 2-epoch cached read
// workload runs under increasingly hostile seeded fault schedules — RPC
// drop probability swept from 0 to 5%, then a mid-epoch node flap on top —
// and reports the epoch makespan next to the injector/recovery counters.
// The contract under test: faults shift the tail (detection timeouts,
// backoff, degraded reads) but every byte read stays correct.
#include <memory>

#include "bench/bench_util.h"
#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kClientsPerNode = 4;
constexpr int kEpochs = 2;

struct FaultRun {
  double epoch1_s = 0;
  double epoch2_s = 0;
  uint64_t rpc_drops = 0;
  uint64_t rejections = 0;
  uint64_t failovers = 0;
  uint64_t breaker_opens = 0;
  bool all_reads_ok = true;
  double hit_rate = 0;        // hand-computed from TaskCacheStats
  double reg_hit_rate = 0;    // same quantity, from the metrics registry
  bool registry_consistent = true;
};

FaultRun RunSchedule(double drop_prob, bool with_flap,
                     const dlt::DatasetSpec& spec,
                     const std::string& section) {
  core::DeploymentOptions opts;
  opts.num_client_nodes = kNodes;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 99, spec.name);
  if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
        return writer->Put(f.path, f.content);
      }).ok() ||
      !writer->Flush().ok()) {
    std::abort();
  }
  dep.ResetDevices();

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (size_t c = 0; c < kNodes * kClientsPerNode; ++c) {
    clients.push_back(dep.MakeClient(c % kNodes,
                                     static_cast<uint32_t>(c / kNodes),
                                     spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) std::abort();
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  // Enough retry headroom that a node riding out its own flap (local reads
  // can't fail over) outlasts the longest scheduled outage.
  copts.retry.max_attempts = 10;
  copts.retry.initial_backoff = Micros(100);
  copts.breaker.cooldown = Millis(1);
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry, copts);
  cache.EstablishConnections();
  if (!cache.Preload(0).ok()) std::abort();

  // Faults cover the read phase only: ingest and preload run clean, like a
  // task that starts healthy and degrades mid-training.
  net::FaultPlan plan;
  plan.seed = 42;
  plan.rpc_drop_prob = drop_prob;
  plan.fault_detect_timeout = Micros(200);
  if (with_flap) {
    // Dropped mid-epoch-1, back before epoch 2: long enough to trip the
    // per-node breaker and force degraded reads.
    plan.node_flaps.push_back(
        {.node = 1, .down_at = Millis(2), .up_at = Millis(12)});
  }
  net::FaultInjector inj(plan);
  dep.fabric().set_fault_injector(&inj);

  // Snapshot the registry at read-phase start; the delta after the run must
  // agree with the hand-kept TaskCacheStats / injector counters.
  obs::MetricsSnapshot before = obs::Metrics().Snapshot();

  FaultRun run;
  Rng rng(5);
  Nanos train_start = 0;
  bench::OpenTimeline(0, Millis(1));
  if (with_flap) {
    bench::TimelineNote(Millis(2), "flap: n1 down");
    bench::TimelineNote(Millis(12), "flap: n1 up");
  }
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<uint32_t> order(snap.num_files());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    std::vector<sim::VirtualClock> clocks(clients.size(),
                                          sim::VirtualClock(train_start));
    size_t cursor = 0;
    while (cursor < order.size()) {
      size_t next = 0;
      for (size_t c = 1; c < clocks.size(); ++c) {
        if (clocks[c].now() < clocks[next].now()) next = c;
      }
      const core::FileMeta& fm = snap.files()[order[cursor++]];
      auto r = cache.GetFile(clocks[next], clients[next]->endpoint(), fm);
      if (!r.ok()) run.all_reads_ok = false;
      bench::TimelineTick(clocks[next].now());
    }
    Nanos end = train_start;
    for (const auto& c : clocks) end = std::max(end, c.now());
    bench::TimelineNote(end, "epoch " + std::to_string(epoch + 1) + " done");
    (epoch == 0 ? run.epoch1_s : run.epoch2_s) = ToSeconds(end - train_start);
    train_start = end;
  }
  bench::CloseTimeline(section, train_start);

  auto fstats = inj.stats();
  run.rpc_drops = fstats.rpc_drops;
  run.rejections = fstats.down_node_rejections;
  run.failovers = cache.stats().failovers;
  run.breaker_opens = cache.stats().breaker_opens;

  auto cstats = cache.stats();
  uint64_t reads = kEpochs * static_cast<uint64_t>(snap.num_files());
  uint64_t hits = cstats.local_hits + cstats.peer_hits;
  run.hit_rate = reads == 0 ? 0 : static_cast<double>(hits) / reads;

  obs::MetricsSnapshot delta = obs::Metrics().Snapshot().DeltaSince(before);
  uint64_t reg_hits = delta.SumCounters("cache.local_hits") +
                      delta.SumCounters("cache.peer_hits");
  run.reg_hit_rate = reads == 0 ? 0 : static_cast<double>(reg_hits) / reads;
  run.registry_consistent =
      reg_hits == hits &&
      delta.SumCounters("cache.failovers") == cstats.failovers &&
      delta.SumCounters("cache.breaker_opens") == cstats.breaker_opens &&
      delta.SumCounters("net.rpc.drops") == fstats.rpc_drops &&
      delta.SumCounters("net.rpc.flap_rejects") == fstats.down_node_rejections;

  dep.fabric().set_fault_injector(nullptr);
  return run;
}

void Run() {
  bench::Banner("Ablation: fault-injection overhead on cached reads");
  dlt::DatasetSpec spec;
  spec.name = "faults";
  spec.num_classes = 10;
  spec.files_per_class = 200;
  spec.mean_file_bytes = 16 * 1024;
  spec.fixed_size = true;

  bench::Table table({"drop prob", "flap", "epoch 1 (s)", "epoch 2 (s)",
                      "drops", "rejects", "failovers", "breaker", "hit rate",
                      "reg hit rate", "reg ok", "ok"});
  for (double drop : {0.0, 0.001, 0.01, 0.05}) {
    for (bool flap : {false, true}) {
      std::string section = "d" + bench::Fmt("%g", drop * 100) + "pct" +
                            (flap ? ".flap" : "");
      FaultRun r = RunSchedule(drop, flap, spec, section);
      table.AddRow({bench::Fmt("%.1f%%", drop * 100), flap ? "yes" : "no",
                    bench::Fmt("%.3f", r.epoch1_s),
                    bench::Fmt("%.3f", r.epoch2_s),
                    std::to_string(r.rpc_drops),
                    std::to_string(r.rejections),
                    std::to_string(r.failovers),
                    std::to_string(r.breaker_opens),
                    bench::Fmt("%.3f", r.hit_rate),
                    bench::Fmt("%.3f", r.reg_hit_rate),
                    r.registry_consistent ? "yes" : "NO",
                    r.all_reads_ok ? "yes" : "NO"});
      const std::string& tag = section;
      bench::Metric("epoch1_s." + tag, "s", r.epoch1_s,
                    obs::Direction::kLowerIsBetter);
      bench::Metric("epoch2_s." + tag, "s", r.epoch2_s,
                    obs::Direction::kLowerIsBetter);
      // Correctness gates: any drift from 1.0 is a regression (tolerance 0).
      bench::Metric("all_reads_ok." + tag, "bool", r.all_reads_ok ? 1.0 : 0.0,
                    obs::Direction::kHigherIsBetter, 0.0);
      bench::Metric("registry_consistent." + tag, "bool",
                    r.registry_consistent ? 1.0 : 0.0,
                    obs::Direction::kHigherIsBetter, 0.0);
      bench::Info("rpc_drops." + tag, "count",
                  static_cast<double>(r.rpc_drops));
      bench::Info("failovers." + tag, "count",
                  static_cast<double>(r.failovers));
      bench::Info("hit_rate." + tag, "frac", r.hit_rate);
      bench::AddVirtualTime(
          static_cast<Nanos>((r.epoch1_s + r.epoch2_s) * 1e9));
    }
  }
  table.Print();
  std::printf("\nEvery row must read correct bytes; faults only move time. "
              "Drops charge the detection timeout and retry; a flapped node "
              "trips its circuit breaker and reads degrade to the server "
              "until recovery re-owns the partition. The 'reg' columns are "
              "recomputed from the process-wide metrics registry and must "
              "match the hand-kept stats exactly.\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("ablation_faults", 42);
  diesel::bench::Param("epochs", 2.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
