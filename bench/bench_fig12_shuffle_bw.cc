// Figure 12: read bandwidth on 10 nodes (160 threads) for 4KB and 128KB
// files, with DIESEL's chunk-wise shuffle versus Lustre's random file reads.
// DIESEL-API reads through the group-window reader (whole-chunk fetches);
// DIESEL-FUSE adds the kernel-crossing costs; Lustre serves each file
// individually in random order.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "lustre/lustre.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"
#include "sim/calibration.h"

namespace diesel {
namespace {

constexpr size_t kNodes = 10;
constexpr size_t kThreadsPerNode = 16;

struct Row {
  double diesel_api_mb = 0, diesel_api_files = 0;
  double diesel_fuse_mb = 0, diesel_fuse_files = 0;
  double lustre_mb = 0, lustre_files = 0;
};

/// When non-null, `api_view` receives the per-node utilization view of the
/// DIESEL-API variant (deltaed against the registry state at its start, so
/// earlier configurations don't bleed in).
Row Measure(uint64_t file_size, size_t num_files,
            obs::ClusterView* api_view = nullptr) {
  Row row;
  dlt::DatasetSpec spec;
  spec.name = "f12";
  spec.num_classes = 10;
  spec.files_per_class = num_files / 10;
  spec.mean_file_bytes = file_size;
  spec.fixed_size = true;

  // ---- DIESEL (API and FUSE variants) --------------------------------------
  {
    core::DeploymentOptions opts;
    opts.num_client_nodes = kNodes;
    opts.num_servers = 4;  // spread chunk traffic over several server NICs
    core::Deployment dep(opts);
    auto writer = dep.MakeClient(0, 99, spec.name);
    if (!dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
          return writer->Put(f.path, f.content);
        }).ok() ||
        !writer->Flush().ok()) {
      std::abort();
    }
    auto snap = dep.server(0).BuildSnapshot(writer->clock(), 0, spec.name);
    if (!snap.ok()) std::abort();

    for (bool fuse : {false, true}) {
      dep.ResetDevices();  // independent virtual-time run per variant
      obs::MetricsSnapshot base = obs::Metrics().Snapshot();
      Rng rng(41);
      // Single-chunk groups: with a scaled-down dataset this keeps enough
      // groups that all 160 reader threads have work.
      shuffle::ShufflePlan plan =
          shuffle::ChunkWiseShuffle(*snap, {.group_size = 1}, rng);
      // One group-window reader per thread, each owning a slice of groups.
      const size_t kThreads = kNodes * kThreadsPerNode;
      std::vector<std::unique_ptr<shuffle::GroupWindowReader>> readers;
      for (size_t t = 0; t < kThreads; ++t) {
        readers.push_back(std::make_unique<shuffle::GroupWindowReader>(
            dep.server(t % dep.num_servers()), snap.value(),
            static_cast<sim::NodeId>(t % kNodes)));
        readers.back()->StartEpoch(shuffle::PartitionPlan(plan, t, kThreads));
      }
      std::vector<sim::VirtualClock> clocks(kThreads);
      uint64_t bytes = 0, files = 0;
      bool work_left = true;
      while (work_left) {
        work_left = false;
        // Advance the earliest-clock thread that still has files.
        size_t next = kThreads;
        for (size_t t = 0; t < kThreads; ++t) {
          if (readers[t]->Done()) continue;
          if (next == kThreads || clocks[t].now() < clocks[next].now()) {
            next = t;
          }
        }
        if (next == kThreads) break;
        work_left = true;
        auto content = readers[next]->Next(clocks[next]);
        if (!content.ok()) std::abort();
        if (fuse) clocks[next].Advance(2 * sim::kFuseCrossingCost);
        bytes += content->size();
        ++files;
      }
      Nanos end = 0;
      for (auto& c : clocks) end = std::max(end, c.now());
      double secs = ToSeconds(end);
      if (!fuse && api_view != nullptr) {
        *api_view = bench::ExportClusterUtil(end, &base);
      }
      if (fuse) {
        row.diesel_fuse_mb = static_cast<double>(bytes) / 1e6 / secs;
        row.diesel_fuse_files = static_cast<double>(files) / secs;
      } else {
        row.diesel_api_mb = static_cast<double>(bytes) / 1e6 / secs;
        row.diesel_api_files = static_cast<double>(files) / secs;
      }
    }
  }

  // ---- Lustre random reads ---------------------------------------------------
  {
    sim::Cluster cluster(kNodes + 2);
    net::Fabric fabric(cluster);
    lustre::LustreFs fs(fabric, {.mds_node = kNodes, .oss_node = kNodes + 1});
    sim::VirtualClock setup;
    for (size_t i = 0; i < spec.total_files(); ++i) {
      if (!fs.CreateSized(setup, 0, dlt::FilePath(spec, i), file_size).ok())
        std::abort();
    }
    const size_t kThreads = kNodes * kThreadsPerNode;
    Rng rng(43);
    std::vector<uint32_t> order(spec.total_files());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
    rng.Shuffle(order);
    size_t cursor = 0;
    Nanos end = bench::DriveClosedLoop(
        kThreads, spec.total_files() / kThreads,
        [&](size_t t, sim::VirtualClock& clock) {
          auto r = fs.Read(clock, static_cast<sim::NodeId>(t % kNodes),
                           dlt::FilePath(spec, order[cursor++ % order.size()]));
          if (!r.ok()) std::abort();
        });
    double secs = ToSeconds(end);
    double files = static_cast<double>(
        kThreads * (spec.total_files() / kThreads));
    row.lustre_files = files / secs;
    row.lustre_mb = files * static_cast<double>(file_size) / 1e6 / secs;
  }
  return row;
}

void Run() {
  bench::Banner("Figure 12: read bandwidth with chunk-wise shuffle, "
                "10 nodes x 16 threads");
  bench::Table table({"file size", "system", "MB/s", "files/s",
                      "vs Lustre"});
  struct Cfg {
    const char* label;
    uint64_t size;
    size_t files;
  };
  for (const Cfg& cfg : {Cfg{"4KB", 4096, 160000},
                         Cfg{"128KB", 128 * 1024, 8000}}) {
    obs::ClusterView api_view;
    Row row = Measure(cfg.size, cfg.files, &api_view);
    table.AddRow({cfg.label, "DIESEL-API", bench::Fmt("%.1f", row.diesel_api_mb),
                  bench::FmtCount(row.diesel_api_files),
                  bench::Fmt("%.1fx", row.diesel_api_mb / row.lustre_mb)});
    table.AddRow({cfg.label, "DIESEL-FUSE",
                  bench::Fmt("%.1f", row.diesel_fuse_mb),
                  bench::FmtCount(row.diesel_fuse_files),
                  bench::Fmt("%.1fx", row.diesel_fuse_mb / row.lustre_mb)});
    table.AddRow({cfg.label, "Lustre", bench::Fmt("%.1f", row.lustre_mb),
                  bench::FmtCount(row.lustre_files), "1.0x"});
    std::string tag = cfg.label;
    bench::Metric("mb_per_s.api." + tag, "MB/s", row.diesel_api_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("mb_per_s.fuse." + tag, "MB/s", row.diesel_fuse_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("mb_per_s.lustre." + tag, "MB/s", row.lustre_mb,
                  obs::Direction::kHigherIsBetter);
    bench::Metric("files_per_s.api." + tag, "files/s", row.diesel_api_files,
                  obs::Direction::kHigherIsBetter);
    bench::MetricImbalance("cluster.imbalance.api." + tag, api_view);
    std::printf("\nDIESEL-API %s cluster utilization:\n%s", cfg.label,
                api_view.Render(6).c_str());
  }
  table.Print();
  std::printf("\nPaper: 4KB -> Lustre 60.2MB/s vs DIESEL-API 4317MB/s (71.7x)"
              " and DIESEL-FUSE 3483.7MB/s (57.8x); 128KB -> Lustre "
              "2001.8MB/s vs DIESEL-API 10095.3MB/s (5.0x) and DIESEL-FUSE "
              "8712.5MB/s (4.4x).\n");
}

}  // namespace
}  // namespace diesel

int main() {
  diesel::bench::OpenReport("fig12_shuffle_bw", 41);
  diesel::bench::Param("nodes", 10.0);
  diesel::bench::Param("threads_per_node", 16.0);
  diesel::Run();
  return diesel::bench::CloseReport();
}
