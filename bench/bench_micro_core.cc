// Real wall-clock microbenchmarks (google-benchmark) of the client hot
// paths: chunk build/parse, snapshot lookup (FlatHashMap vs unordered_map —
// the parallel-hashmap substitution in §5), CRC32C, and base64lex.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "bench/bench_util.h"
#include "common/base64lex.h"
#include "common/crc32.h"
#include "common/flat_hash_map.h"
#include "common/rng.h"
#include "core/chunk_format.h"
#include "core/snapshot.h"

namespace diesel {
namespace {

void BM_ChunkBuild(benchmark::State& state) {
  const size_t file_size = static_cast<size_t>(state.range(0));
  const size_t num_files = (4 << 20) / file_size;
  Rng rng(1);
  Bytes content(file_size);
  for (auto& b : content) b = static_cast<uint8_t>(rng.Next());
  core::ChunkId id = core::ChunkId::Make(1, 2, 3, 4);
  for (auto _ : state) {
    core::ChunkBuilder builder(4 << 20);
    for (size_t i = 0; i < num_files; ++i) {
      builder.Add("/bench/f" + std::to_string(i), content);
    }
    Bytes chunk = builder.Finish(id, 1);
    benchmark::DoNotOptimize(chunk.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_files * file_size));
}
BENCHMARK(BM_ChunkBuild)->Arg(4 << 10)->Arg(128 << 10);

void BM_ChunkParse(benchmark::State& state) {
  core::ChunkBuilder builder(0);
  Rng rng(2);
  Bytes content(8 << 10);
  for (auto& b : content) b = static_cast<uint8_t>(rng.Next());
  for (size_t i = 0; i < 512; ++i) {
    builder.Add("/bench/f" + std::to_string(i), content);
  }
  Bytes chunk = builder.Finish(core::ChunkId::Make(1, 2, 3, 4), 1);
  for (auto _ : state) {
    auto view = core::ChunkView::Parse(chunk);
    benchmark::DoNotOptimize(view.ok());
  }
}
BENCHMARK(BM_ChunkParse);

core::MetadataSnapshot MakeSnapshot(size_t files) {
  std::vector<core::ChunkId> chunks;
  std::vector<core::FileMeta> metas;
  size_t per_chunk = 512;
  for (size_t i = 0; i < files; ++i) {
    if (i % per_chunk == 0) {
      chunks.push_back(core::ChunkId::Make(
          static_cast<uint32_t>(i / per_chunk), 1, 1,
          static_cast<uint32_t>(i / per_chunk)));
    }
    core::FileMeta m;
    m.chunk = chunks.back();
    m.offset = (i % per_chunk) * 100;
    m.length = 100;
    m.index_in_chunk = static_cast<uint32_t>(i % per_chunk);
    m.full_name = "/ds/train/cls" + std::to_string(i % 100) + "/img" +
                  std::to_string(i) + ".jpg";
    metas.push_back(std::move(m));
  }
  return core::MetadataSnapshot::Create("ds", 1, std::move(chunks),
                                        std::move(metas));
}

void BM_SnapshotLookup(benchmark::State& state) {
  auto snap = MakeSnapshot(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  std::vector<std::string> probes;
  for (int i = 0; i < 1024; ++i) {
    size_t f = rng.Uniform(static_cast<uint64_t>(state.range(0)));
    probes.push_back("/ds/train/cls" + std::to_string(f % 100) + "/img" +
                     std::to_string(f) + ".jpg");
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.Lookup(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_SnapshotLookup)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SnapshotLoad(benchmark::State& state) {
  auto snap = MakeSnapshot(static_cast<size_t>(state.range(0)));
  Bytes blob = snap.Serialize();
  for (auto _ : state) {
    auto loaded = core::MetadataSnapshot::Deserialize(blob);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SnapshotLoad)->Arg(10000)->Arg(100000);

void BM_FlatHashMapLookup(benchmark::State& state) {
  FlatHashMap<uint64_t, uint64_t> map;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) map.InsertOrAssign(rng.Next(), i);
  Rng probe_rng(4);
  std::vector<uint64_t> probes;
  for (int i = 0; i < state.range(0); ++i) probes.push_back(probe_rng.Next());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_FlatHashMapLookup)->Arg(100000);

void BM_StdUnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<uint64_t, uint64_t> map;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) map[rng.Next()] = i;
  Rng probe_rng(4);
  std::vector<uint64_t> probes;
  for (int i = 0; i < state.range(0); ++i) probes.push_back(probe_rng.Next());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_StdUnorderedMapLookup)->Arg(100000);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4 << 10)->Arg(4 << 20);

void BM_Base64LexEncode(benchmark::State& state) {
  Bytes data(16);  // chunk-id sized
  Rng rng(6);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Base64LexEncode(data));
  }
}
BENCHMARK(BM_Base64LexEncode);

}  // namespace
}  // namespace diesel

// Custom main instead of BENCHMARK_MAIN(): these timings are real
// wall-clock, so the report carries them as non-gated info only — the
// regression gate never judges machine-dependent numbers.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  diesel::bench::OpenReport("micro_core", 0);
  diesel::bench::Param("timing", "wall-clock");
  diesel::bench::Info("wall_clock_only", "bool", 1.0);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return diesel::bench::CloseReport();
}
