// Real wall-clock microbenchmarks (google-benchmark) of the client hot
// paths: chunk build/parse, snapshot lookup (FlatHashMap vs unordered_map —
// the parallel-hashmap substitution in §5), CRC32C, and base64lex.
#include <benchmark/benchmark.h>

#include <chrono>
#include <unordered_map>

#include "bench/bench_util.h"
#include "common/base64lex.h"
#include "common/crc32.h"
#include "common/flat_hash_map.h"
#include "common/rng.h"
#include "core/chunk_buffer.h"
#include "core/chunk_format.h"
#include "core/snapshot.h"
#include "net/fabric.h"
#include "sim/node.h"

namespace diesel {
namespace {

/// A finished chunk with `num_files` files of `file_size` random bytes.
Bytes MakeChunk(size_t num_files, size_t file_size, uint64_t seed = 7) {
  core::ChunkBuilder builder(0);
  Rng rng(seed);
  Bytes content(file_size);
  for (auto& b : content) b = static_cast<uint8_t>(rng.Next());
  for (size_t i = 0; i < num_files; ++i) {
    builder.Add("/bench/cls" + std::to_string(i % 10) + "/f" +
                    std::to_string(i),
                content);
  }
  return builder.Finish(core::ChunkId::Make(1, 2, 3, 4), 1);
}

void BM_ChunkBuild(benchmark::State& state) {
  const size_t file_size = static_cast<size_t>(state.range(0));
  const size_t num_files = (4 << 20) / file_size;
  Rng rng(1);
  Bytes content(file_size);
  for (auto& b : content) b = static_cast<uint8_t>(rng.Next());
  core::ChunkId id = core::ChunkId::Make(1, 2, 3, 4);
  for (auto _ : state) {
    core::ChunkBuilder builder(4 << 20);
    for (size_t i = 0; i < num_files; ++i) {
      builder.Add("/bench/f" + std::to_string(i), content);
    }
    Bytes chunk = builder.Finish(id, 1);
    benchmark::DoNotOptimize(chunk.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_files * file_size));
}
BENCHMARK(BM_ChunkBuild)->Arg(4 << 10)->Arg(128 << 10);

void BM_ChunkParse(benchmark::State& state) {
  core::ChunkBuilder builder(0);
  Rng rng(2);
  Bytes content(8 << 10);
  for (auto& b : content) b = static_cast<uint8_t>(rng.Next());
  for (size_t i = 0; i < 512; ++i) {
    builder.Add("/bench/f" + std::to_string(i), content);
  }
  Bytes chunk = builder.Finish(core::ChunkId::Make(1, 2, 3, 4), 1);
  for (auto _ : state) {
    auto view = core::ChunkView::Parse(chunk);
    benchmark::DoNotOptimize(view.ok());
  }
}
BENCHMARK(BM_ChunkParse);

void BM_ChunkParseHeaderOnly(benchmark::State& state) {
  // Metadata recovery parses thousands of headers without payloads; this is
  // the header-decode throughput in file entries per second.
  const size_t num_files = static_cast<size_t>(state.range(0));
  Bytes chunk = MakeChunk(num_files, 64);
  auto peek = core::ChunkView::PeekHeaderLen({chunk.data(), 12});
  BytesView header(chunk.data(), peek.value());
  for (auto _ : state) {
    auto view = core::ChunkView::ParseHeaderOnly(header);
    benchmark::DoNotOptimize(view.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_files));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(header.size()));
}
BENCHMARK(BM_ChunkParseHeaderOnly)->Arg(512)->Arg(4096);

void BM_FindEntryLinear(benchmark::State& state) {
  // Baseline: the pre-index linear scan over the file table.
  const size_t num_files = static_cast<size_t>(state.range(0));
  Bytes chunk = MakeChunk(num_files, 64);
  core::ChunkView view = core::ChunkView::Parse(chunk).value();
  Rng rng(8);
  std::vector<std::string> probes;
  for (int i = 0; i < 256; ++i) {
    size_t f = rng.Uniform(num_files);
    probes.push_back("/bench/cls" + std::to_string(f % 10) + "/f" +
                     std::to_string(f));
  }
  size_t i = 0;
  for (auto _ : state) {
    const std::string& name = probes[i++ & 255];
    const core::ChunkFileEntry* hit = nullptr;
    for (const auto& e : view.entries()) {
      if (e.name == name) {
        hit = &e;
        break;
      }
    }
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_FindEntryLinear)->Arg(512)->Arg(4096);

void BM_FindEntryIndexed(benchmark::State& state) {
  // FindEntry's lazily built name-sorted index: O(log n) per probe.
  const size_t num_files = static_cast<size_t>(state.range(0));
  Bytes chunk = MakeChunk(num_files, 64);
  core::ChunkView view = core::ChunkView::Parse(chunk).value();
  Rng rng(8);
  std::vector<std::string> probes;
  for (int i = 0; i < 256; ++i) {
    size_t f = rng.Uniform(num_files);
    probes.push_back("/bench/cls" + std::to_string(f % 10) + "/f" +
                     std::to_string(f));
  }
  benchmark::DoNotOptimize(view.FindEntry(probes[0]));  // build the index
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.FindEntry(probes[i++ & 255]));
  }
}
BENCHMARK(BM_FindEntryIndexed)->Arg(512)->Arg(4096);

void BM_FileSliceView(benchmark::State& state) {
  // Zero-copy read: materialize a FileSlice over a cached chunk blob (one
  // shared_ptr refcount bump) and touch the view.
  const size_t file_size = static_cast<size_t>(state.range(0));
  Bytes chunk = MakeChunk(8, file_size);
  core::ChunkView view = core::ChunkView::Parse(chunk).value();
  const uint32_t header_len = view.header_len();
  const uint64_t offset = view.entries()[3].offset;
  core::ChunkBuffer buffer =
      core::ChunkBuffer::Wrap(std::move(chunk), header_len);
  for (auto _ : state) {
    core::FileSlice slice =
        core::FileSlice::FromBuffer(buffer, header_len + offset, file_size);
    benchmark::DoNotOptimize(slice.view().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(file_size));
}
BENCHMARK(BM_FileSliceView)->Arg(4 << 10)->Arg(128 << 10);

void BM_FileSliceCopy(benchmark::State& state) {
  // Copying read: the pre-slice hot path materialized every file as a fresh
  // Bytes vector (allocate + memcpy per read).
  const size_t file_size = static_cast<size_t>(state.range(0));
  Bytes chunk = MakeChunk(8, file_size);
  core::ChunkView view = core::ChunkView::Parse(chunk).value();
  const uint32_t header_len = view.header_len();
  const uint64_t offset = view.entries()[3].offset;
  core::ChunkBuffer buffer =
      core::ChunkBuffer::Wrap(std::move(chunk), header_len);
  for (auto _ : state) {
    core::FileSlice slice =
        core::FileSlice::FromBuffer(buffer, header_len + offset, file_size);
    Bytes copy = slice.ToBytes();
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(file_size));
}
BENCHMARK(BM_FileSliceCopy)->Arg(4 << 10)->Arg(128 << 10);

void BM_CrcEveryRead(benchmark::State& state) {
  // Pre-memo behavior: every read of a cached file re-verified its CRC.
  const size_t file_size = static_cast<size_t>(state.range(0));
  constexpr size_t kReads = 64;  // reads per residency (multi-epoch reuse)
  Bytes data(file_size);
  Rng rng(9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    for (size_t r = 0; r < kReads; ++r) {
      benchmark::DoNotOptimize(Crc32c(data));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kReads * file_size));
}
BENCHMARK(BM_CrcEveryRead)->Arg(128 << 10);

void BM_CrcOncePerResidency(benchmark::State& state) {
  // Memoized verification: CRC on first access, a bit test on the rest.
  const size_t file_size = static_cast<size_t>(state.range(0));
  constexpr size_t kReads = 64;
  Bytes data(file_size);
  Rng rng(9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    bool verified = false;
    for (size_t r = 0; r < kReads; ++r) {
      if (!verified) {
        benchmark::DoNotOptimize(Crc32c(data));
        verified = true;
      }
      benchmark::DoNotOptimize(verified);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kReads * file_size));
}
BENCHMARK(BM_CrcOncePerResidency)->Arg(128 << 10);

core::MetadataSnapshot MakeSnapshot(size_t files) {
  std::vector<core::ChunkId> chunks;
  std::vector<core::FileMeta> metas;
  size_t per_chunk = 512;
  for (size_t i = 0; i < files; ++i) {
    if (i % per_chunk == 0) {
      chunks.push_back(core::ChunkId::Make(
          static_cast<uint32_t>(i / per_chunk), 1, 1,
          static_cast<uint32_t>(i / per_chunk)));
    }
    core::FileMeta m;
    m.chunk = chunks.back();
    m.offset = (i % per_chunk) * 100;
    m.length = 100;
    m.index_in_chunk = static_cast<uint32_t>(i % per_chunk);
    m.full_name = "/ds/train/cls" + std::to_string(i % 100) + "/img" +
                  std::to_string(i) + ".jpg";
    metas.push_back(std::move(m));
  }
  return core::MetadataSnapshot::Create("ds", 1, std::move(chunks),
                                        std::move(metas));
}

void BM_SnapshotLookup(benchmark::State& state) {
  auto snap = MakeSnapshot(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  std::vector<std::string> probes;
  for (int i = 0; i < 1024; ++i) {
    size_t f = rng.Uniform(static_cast<uint64_t>(state.range(0)));
    probes.push_back("/ds/train/cls" + std::to_string(f % 100) + "/img" +
                     std::to_string(f) + ".jpg");
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.Lookup(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_SnapshotLookup)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SnapshotLoad(benchmark::State& state) {
  auto snap = MakeSnapshot(static_cast<size_t>(state.range(0)));
  Bytes blob = snap.Serialize();
  for (auto _ : state) {
    auto loaded = core::MetadataSnapshot::Deserialize(blob);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SnapshotLoad)->Arg(10000)->Arg(100000);

void BM_FlatHashMapLookup(benchmark::State& state) {
  FlatHashMap<uint64_t, uint64_t> map;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) map.InsertOrAssign(rng.Next(), i);
  Rng probe_rng(4);
  std::vector<uint64_t> probes;
  for (int i = 0; i < state.range(0); ++i) probes.push_back(probe_rng.Next());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_FlatHashMapLookup)->Arg(100000);

void BM_StdUnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<uint64_t, uint64_t> map;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) map[rng.Next()] = i;
  Rng probe_rng(4);
  std::vector<uint64_t> probes;
  for (int i = 0; i < state.range(0); ++i) probes.push_back(probe_rng.Next());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_StdUnorderedMapLookup)->Arg(100000);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4 << 10)->Arg(4 << 20);

void BM_Base64LexEncode(benchmark::State& state) {
  Bytes data(16);  // chunk-id sized
  Rng rng(6);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Base64LexEncode(data));
  }
}
BENCHMARK(BM_Base64LexEncode);

}  // namespace

/// Deterministic virtual-time kernel: N peer fetches of 64 KB each, issued
/// either as N singles or as N/k k-way batches. Pure simulation — the
/// resulting metrics are machine-independent and therefore gateable.
void ReportRpcBatchKernel() {
  constexpr size_t kFilesTotal = 256;
  constexpr size_t kBatchK = 16;
  constexpr uint64_t kReqBytes = 96;
  constexpr uint64_t kRespBytes = 64 << 10;
  auto run = [&](size_t k) {
    sim::Cluster cluster(2);
    net::Fabric fabric(cluster);
    sim::VirtualClock clock;
    for (size_t i = 0; i < kFilesTotal; i += k) {
      Status st = fabric.CallBatch(clock, 0, 1, k, kReqBytes * k,
                                   kRespBytes * k,
                                   [](Nanos arrival) { return arrival; });
      if (!st.ok()) std::abort();
    }
    return std::pair<double, double>{static_cast<double>(clock.now()),
                                     static_cast<double>(fabric.rpcs_issued())};
  };
  auto [single_ns, single_rpcs] = run(1);
  auto [batch_ns, batch_rpcs] = run(kBatchK);
  bench::Metric("rpc.unbatched.virtual_us", "us", single_ns / 1e3,
                obs::Direction::kLowerIsBetter);
  bench::Metric("rpc.batch16.virtual_us", "us", batch_ns / 1e3,
                obs::Direction::kLowerIsBetter);
  bench::Metric("rpc.batch16.per_file_latency_ns", "ns",
                batch_ns / kFilesTotal, obs::Direction::kLowerIsBetter);
  bench::Metric("rpc.batch16.speedup_x", "x", single_ns / batch_ns,
                obs::Direction::kHigherIsBetter);
  bench::Metric("rpc.batch16.rpc_reduction_x", "x", single_rpcs / batch_rpcs,
                obs::Direction::kHigherIsBetter);
}

/// Wall-clock slice-view vs copy ratio over a 128 KB file. The ratio is
/// reported as info (machine-dependent), but it is the acceptance evidence
/// that slicing beats copying by >= 2x on the read hot path.
void ReportSliceSpeedRatio() {
  constexpr size_t kFileSize = 128 << 10;
  constexpr size_t kIters = 20000;
  Bytes chunk = MakeChunk(8, kFileSize);
  core::ChunkView view = core::ChunkView::Parse(chunk).value();
  const uint32_t header_len = view.header_len();
  const uint64_t offset = view.entries()[3].offset;
  core::ChunkBuffer buffer =
      core::ChunkBuffer::Wrap(std::move(chunk), header_len);
  auto time_ns = [&](auto&& body) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kIters; ++i) body();
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  };
  double view_ns = time_ns([&] {
    core::FileSlice s =
        core::FileSlice::FromBuffer(buffer, header_len + offset, kFileSize);
    benchmark::DoNotOptimize(s.view().data());
  });
  double copy_ns = time_ns([&] {
    core::FileSlice s =
        core::FileSlice::FromBuffer(buffer, header_len + offset, kFileSize);
    Bytes copy = s.ToBytes();
    benchmark::DoNotOptimize(copy.data());
  });
  bench::Info("slice.view_vs_copy_speedup_x", "x",
              copy_ns / std::max(view_ns, 1.0));
}

}  // namespace diesel

// Custom main instead of BENCHMARK_MAIN(): the google-benchmark timings are
// real wall-clock, so the report carries them as non-gated info only — the
// regression gate never judges machine-dependent numbers. The RPC batching
// kernel below runs in virtual time and IS gated.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  diesel::bench::OpenReport("micro_core", 0);
  diesel::bench::Param("timing", "wall-clock + virtual rpc kernel");
  diesel::bench::Info("wall_clock_only", "bool", 0.0);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  diesel::ReportRpcBatchKernel();
  diesel::ReportSliceSpeedRatio();
  return diesel::bench::CloseReport();
}
