// Dataset management example: the DLCMD-style admin workflow against a
// directory-backed chunk store that persists across process runs —
// put a tree of files, list/stat them, delete + purge (hole compaction),
// save the metadata snapshot to disk, then simulate a cold start where the
// in-memory metadata tier is rebuilt from the self-contained chunks.
//
// Run: ./dataset_management [workdir]
#include <cstdio>
#include <filesystem>

#include "core/client.h"
#include "core/housekeeping.h"
#include "core/server.h"
#include "kv/cluster.h"
#include "net/fabric.h"
#include "ostore/dir_store.h"

using namespace diesel;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? fs::path(argv[1])
                           : fs::temp_directory_path() / "diesel_example";
  fs::remove_all(root);
  std::printf("chunk store: %s\n", root.string().c_str());

  sim::Cluster cluster(2);
  net::Fabric fabric(cluster);
  kv::KvCluster kv(fabric, {.nodes = {1}, .shards_per_node = 4});
  ostore::DirStore store(root);  // real files on disk
  core::DieselServer server(fabric, kv, store, {.node = 1});
  sim::VirtualClock admin;

  // --- put a tree of files ----------------------------------------------------
  {
    core::ClientOptions copts;
    copts.dataset = "demo";
    core::DieselClient client(fabric, {&server}, copts);
    for (int cls = 0; cls < 3; ++cls) {
      for (int i = 0; i < 40; ++i) {
        std::string path = "/demo/cls" + std::to_string(cls) + "/f" +
                           std::to_string(i) + ".bin";
        std::string payload(512 + i, static_cast<char>('a' + cls));
        if (!client.Put(path, AsBytesView(payload)).ok()) return 1;
      }
    }
    if (!client.Flush().ok()) return 1;
    std::printf("ingested 120 files into %llu chunk objects on disk\n",
                static_cast<unsigned long long>(
                    client.stats().chunks_flushed));
  }

  // --- ls / stat ---------------------------------------------------------------
  {
    core::ClientOptions copts;
    copts.dataset = "demo";
    core::DieselClient client(fabric, {&server}, copts);
    auto ls = client.List("/demo");
    if (!ls.ok()) return 1;
    std::printf("ls /demo:");
    for (const auto& e : ls.value()) std::printf(" %s/", e.name.c_str());
    std::printf("\n");
    auto meta = client.Stat("/demo/cls1/f5.bin");
    if (!meta.ok()) return 1;
    std::printf("stat /demo/cls1/f5.bin: %llu bytes in chunk %s\n",
                static_cast<unsigned long long>(meta->length),
                meta->chunk.Encoded().c_str());

    // --- delete + purge --------------------------------------------------------
    for (int i = 0; i < 10; ++i) {
      if (!client.Delete("/demo/cls2/f" + std::to_string(i) + ".bin").ok())
        return 1;
    }
    auto purged = core::PurgeDataset(admin, server, "demo");
    if (!purged.ok()) return 1;
    std::printf("purge after deleting 10 files: %zu chunks compacted, %llu "
                "bytes reclaimed on disk\n", purged->chunks_compacted,
                static_cast<unsigned long long>(purged->bytes_reclaimed));

    // --- snapshot to disk ------------------------------------------------------
    if (!client.FetchSnapshot().ok()) return 1;
    ostore::DirStore meta_dir(root / "_meta");
    if (!client.SaveMeta(meta_dir, "demo.snapshot").ok()) return 1;
    std::printf("metadata snapshot saved (%zu files)\n",
                client.snapshot()->num_files());
  }

  // --- cold start: fresh KV tier, rebuild from chunks -------------------------
  {
    kv::KvCluster fresh_kv(fabric, {.nodes = {1}, .shards_per_node = 4});
    core::DieselServer fresh_server(fabric, fresh_kv, store, {.node = 1});
    sim::VirtualClock clock;
    auto stats = fresh_server.RecoverMetadata(clock, "demo", 0);
    if (!stats.ok()) return 1;
    std::printf("cold start: rebuilt metadata for %zu files from %zu chunk "
                "headers (self-contained chunks, §4.1.2)\n",
                stats->files_recovered, stats->chunks_scanned);

    core::ClientOptions copts;
    copts.dataset = "demo";
    core::DieselClient client(fabric, {&fresh_server}, copts);
    auto content = client.Get("/demo/cls0/f3.bin");
    if (!content.ok()) return 1;
    std::printf("read-after-recovery OK (%zu bytes)\n", content->size());
  }
  std::printf("dataset_management OK\n");
  return 0;
}
