// Quickstart: stand up a simulated DIESEL deployment, write a small dataset
// through libDIESEL (DL_put/DL_flush), download the metadata snapshot, and
// read files back — first through the server, then through the task-grained
// distributed cache.
//
// Run: ./quickstart
#include <cstdio>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"

using namespace diesel;

int main() {
  // A deployment bundles the simulated cluster: client nodes, a storage
  // gateway, the Redis-like metadata tier, and DIESEL servers.
  core::DeploymentOptions options;
  options.num_client_nodes = 2;
  options.num_servers = 1;
  core::Deployment deployment(options);

  // --- write phase (DL_connect + DL_put + DL_flush) -------------------------
  auto writer = deployment.MakeClient(/*node=*/0, /*index=*/0, "quickstart",
                                      /*chunk_bytes=*/64 * 1024);
  for (int i = 0; i < 500; ++i) {
    std::string path = "/quickstart/class" + std::to_string(i % 5) + "/img" +
                       std::to_string(i) + ".bin";
    std::string payload = "image payload #" + std::to_string(i);
    if (!writer->Put(path, AsBytesView(payload)).ok()) return 1;
  }
  if (!writer->Flush().ok()) return 1;
  std::printf("wrote 500 files as %llu chunks\n",
              static_cast<unsigned long long>(writer->stats().chunks_flushed));

  // --- metadata snapshot (DL_save_meta / DL_load_meta path) -----------------
  auto reader = deployment.MakeClient(/*node=*/1, /*index=*/0, "quickstart");
  if (!reader->FetchSnapshot().ok()) return 1;
  auto listing = reader->List("/quickstart");
  if (!listing.ok()) return 1;
  std::printf("snapshot loaded: %zu files, 'ls /quickstart' -> %zu class "
              "directories (served locally, no metadata server involved)\n",
              reader->snapshot()->num_files(), listing->size());

  // --- read through the server (DL_get) -------------------------------------
  auto content = reader->Get("/quickstart/class2/img7.bin");
  if (!content.ok()) return 1;
  std::printf("server read: '%s'\n", ToString(content.value()).c_str());

  // --- task-grained distributed cache ---------------------------------------
  cache::TaskRegistry registry;
  registry.Register(writer->endpoint());
  registry.Register(reader->endpoint());
  cache::TaskCache cache(deployment.fabric(), deployment.server(0),
                         *reader->snapshot(), registry,
                         {.policy = cache::CachePolicy::kOneshot});
  cache.EstablishConnections();
  if (!cache.Preload(0).ok()) return 1;
  auto handle = cache.HandleFor(reader->endpoint());
  reader->AttachCache(handle.get());

  content = reader->Get("/quickstart/class3/img13.bin");
  if (!content.ok()) return 1;
  auto stats = cache.stats();
  std::printf("cached read: '%s' (cache: %llu local hits, %llu peer hits, "
              "hit ratio %.0f%%)\n",
              ToString(content.value()).c_str(),
              static_cast<unsigned long long>(stats.local_hits),
              static_cast<unsigned long long>(stats.peer_hits),
              cache.HitRatio() * 100);
  std::printf("quickstart OK\n");
  return 0;
}
