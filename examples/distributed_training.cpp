// Distributed training example: the full production path.
//
// Servers are discovered through the ETCD-like config service (Fig. 2), the
// dataset is mounted via the FUSE mount manager (§5), and a
// DistributedTrainingTask drives a 4-node job: task registration, master
// election, task-grained cache, chunk-wise shuffle per epoch, and a real
// softmax model training on the delivered batches.
//
// Run: ./distributed_training
#include <cstdio>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/distributed_task.h"
#include "dlt/trainer.h"
#include "fusefs/mount_manager.h"

using namespace diesel;

int main() {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 4;
  dopts.num_servers = 2;
  core::Deployment deployment(dopts);

  // --- ingest a labelled dataset --------------------------------------------
  dlt::SampleSpec samples;
  samples.num_classes = 10;
  samples.dims = 32;
  samples.separation = 0.5;
  const size_t kTrain = 4000;
  {
    auto writer = deployment.MakeClient(0, 0, "imagenet", 16 * 1024);
    for (size_t i = 0; i < kTrain; ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "/imagenet/train/cls%02u/s%05zu.bin",
                    dlt::SampleLabel(samples, i), i);
      if (!writer->Put(name, dlt::MakeSample(samples, i)).ok()) return 1;
    }
    if (!writer->Flush().ok()) return 1;
  }

  // --- server discovery through the config service --------------------------
  sim::VirtualClock connect_clock;
  auto probe = deployment.MakeClientViaDiscovery(connect_clock, 0, 50,
                                                 "imagenet");
  if (!probe.ok()) return 1;
  std::printf("discovered %zu DIESEL servers via etcd in %.0fus virtual\n",
              deployment.config().NumKeys(),
              static_cast<double>(connect_clock.now()) / 1000.0);

  // --- mount the dataset (the POSIX view most scientists use) ---------------
  fusefs::MountManager mounts;
  std::vector<std::unique_ptr<core::DieselClient>> daemon;
  std::vector<core::DieselClient*> daemon_raw;
  for (uint32_t i = 0; i < 2; ++i) {
    daemon.push_back(deployment.MakeClient(0, 60 + i, "imagenet"));
    if (!daemon.back()->FetchSnapshot().ok()) return 1;
    daemon_raw.push_back(daemon.back().get());
  }
  if (!mounts.Mount("/mnt/imagenet", daemon_raw, "/imagenet").ok()) return 1;
  sim::VirtualClock ls_clock;
  auto listing = mounts.ReadDir(ls_clock, "/mnt/imagenet/train");
  if (!listing.ok()) return 1;
  std::printf("mounted /mnt/imagenet: train/ has %zu class directories\n",
              listing->size());

  // --- the distributed training task ----------------------------------------
  dlt::DistributedTaskOptions topts;
  topts.num_nodes = 4;
  topts.io_workers_per_node = 4;
  topts.minibatch = 32;
  topts.shuffle.group_size = 4;
  topts.cache.policy = cache::CachePolicy::kOneshot;
  dlt::DistributedTrainingTask task(deployment, "imagenet", topts);
  if (!task.Setup().ok()) return 1;
  std::printf("task cache preloaded: %zu chunks across 4 nodes "
              "(p x (n-1) = %zu connections)\n",
              task.snapshot().chunks().size(),
              task.cache()->connections_opened());

  dlt::TrainerOptions tropts;
  tropts.num_classes = samples.num_classes;
  tropts.dims = samples.dims;
  dlt::SoftmaxTrainer trainer(tropts);
  std::vector<dlt::LabelledSample> eval;
  for (size_t i = 0; i < 800; ++i) {
    auto s = dlt::SoftmaxTrainer::Decode(dlt::MakeSample(samples, kTrain + i));
    if (!s.ok()) return 1;
    eval.push_back(std::move(s).value());
  }

  std::printf("%-6s %-8s %-8s %-12s\n", "epoch", "top-1", "top-5",
              "epoch time");
  for (int epoch = 0; epoch < 5; ++epoch) {
    auto report = task.RunEpoch([&](std::span<const Bytes> batch) {
      std::vector<dlt::LabelledSample> decoded;
      decoded.reserve(batch.size());
      for (const Bytes& file : batch) {
        auto s = dlt::SoftmaxTrainer::Decode(file);
        if (!s.ok()) return s.status();
        decoded.push_back(std::move(s).value());
      }
      trainer.TrainBatch(decoded);
      return Status::Ok();
    });
    if (!report.ok()) return 1;
    std::printf("%-6zu %-8.3f %-8.3f %.3fs virtual\n", report->epoch,
                trainer.TopKAccuracy(eval, 1), trainer.TopKAccuracy(eval, 5),
                report->epoch_seconds);
  }
  std::printf("distributed_training OK\n");
  return 0;
}
