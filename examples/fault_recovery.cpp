// Fault-recovery walkthrough: the two §4.1.2 failure scenarios plus
// task-grained cache recovery.
//
//  (a) one metadata shard dies and restarts empty -> watermark recovery
//      rebuilds it by scanning chunk headers written since the watermark;
//  (b) the whole in-memory KV tier is lost -> full ordered chunk scan
//      rebuilds everything (chunks are self-contained);
//  (c) a task node dies -> only this task's cache partition is lost, and the
//      chunk-granular reload restores it quickly.
//
// Run: ./fault_recovery
#include <cstdio>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

using namespace diesel;

int main() {
  core::DeploymentOptions options;
  options.num_client_nodes = 4;
  core::Deployment deployment(options);

  dlt::DatasetSpec spec;
  spec.name = "recover";
  spec.num_classes = 4;
  spec.files_per_class = 100;
  spec.mean_file_bytes = 4096;

  auto writer = deployment.MakeClient(0, 0, spec.name, 64 * 1024);
  auto status = dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
    return writer->Put(f.path, f.content);
  });
  if (!status.ok() || !writer->Flush().ok()) return 1;
  std::printf("ingested %zu files, KV holds %zu keys\n", spec.total_files(),
              deployment.kv().TotalKeys());

  // --- scenario (a): one shard lost ----------------------------------------
  size_t keys_before = deployment.kv().TotalKeys();
  deployment.kv().FailShard(2);
  deployment.kv().RestartShard(2);
  std::printf("\n(a) shard 2 crashed and restarted empty: %zu keys lost\n",
              keys_before - deployment.kv().TotalKeys());
  sim::VirtualClock admin;
  auto stats = deployment.server(0).RecoverMetadata(admin, spec.name,
                                                    /*from_ts_sec=*/0);
  if (!stats.ok()) return 1;
  std::printf("    recovered %zu files from %zu chunk headers (%llu header "
              "bytes read) in %.3fs virtual\n",
              stats->files_recovered, stats->chunks_scanned,
              static_cast<unsigned long long>(stats->header_bytes_read),
              ToSeconds(admin.now()));
  std::printf("    KV restored to %zu keys\n", deployment.kv().TotalKeys());

  // --- scenario (b): total KV loss ------------------------------------------
  for (uint32_t s = 0; s < deployment.kv().NumShards(); ++s) {
    deployment.kv().FailShard(s);
    deployment.kv().RestartShard(s);
  }
  std::printf("\n(b) datacenter power loss: KV tier empty (%zu keys)\n",
              deployment.kv().TotalKeys());
  admin.Reset();
  stats = deployment.server(0).RecoverMetadata(admin, spec.name, 0);
  if (!stats.ok()) return 1;
  std::printf("    full scan rebuilt %zu keys in %.3fs virtual; reads work:",
              deployment.kv().TotalKeys(), ToSeconds(admin.now()));
  auto probe = deployment.MakeClient(1, 0, spec.name);
  auto content = probe->Get(dlt::FilePath(spec, 42));
  if (!content.ok() || !dlt::VerifyContent(spec, 42, content.value()))
    return 1;
  std::printf(" file 42 verified\n");

  // --- scenario (c): task cache node failure --------------------------------
  cache::TaskRegistry registry;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  for (uint32_t n = 0; n < 4; ++n) {
    clients.push_back(deployment.MakeClient(n, 1, spec.name));
    registry.Register(clients.back()->endpoint());
  }
  if (!clients[0]->FetchSnapshot().ok()) return 1;
  cache::TaskCache cache(deployment.fabric(), deployment.server(0),
                         *clients[0]->snapshot(), registry,
                         {.policy = cache::CachePolicy::kOneshot});
  auto load_end = cache.Preload(0);
  if (!load_end.ok()) return 1;
  std::printf("\n(c) task cache preloaded in %.3fs virtual (hit ratio "
              "%.0f%%)\n", ToSeconds(load_end.value()),
              cache.HitRatio() * 100);
  cache.DropNode(2);
  std::printf("    node 2 failed: hit ratio now %.0f%% — other tasks in the "
              "cluster are unaffected (task-grained containment)\n",
              cache.HitRatio() * 100);
  auto reload_end = cache.Reload(load_end.value());
  if (!reload_end.ok()) return 1;
  std::printf("    chunk-granular reload back to %.0f%% in %.3fs virtual\n",
              cache.HitRatio() * 100,
              ToSeconds(reload_end.value() - load_end.value()));
  std::printf("\nfault_recovery OK\n");
  return 0;
}
