// Training pipeline example: a complete DLT task over DIESEL.
//
// A synthetic labelled dataset is ingested through libDIESEL, then a real
// softmax classifier trains for several epochs reading the samples back in
// chunk-wise-shuffle order through the group-window reader (DL_shuffle).
// Per-epoch accuracy and the I/O profile (chunk fetches, window memory) are
// printed, demonstrating the paper's central claim: random training order
// with chunk-sized storage reads and a tiny memory footprint.
//
// Run: ./training_pipeline
#include <cstdio>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/trainer.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

using namespace diesel;

int main() {
  constexpr size_t kTrainSamples = 6000;
  constexpr size_t kEvalSamples = 1000;
  constexpr size_t kEpochs = 6;

  dlt::SampleSpec sample_spec;
  sample_spec.num_classes = 10;
  sample_spec.dims = 32;
  sample_spec.separation = 1.6;

  // Ingest the training set (class-sorted, like ImageNet's directory order).
  core::Deployment deployment({});
  auto writer = deployment.MakeClient(0, 0, "train", /*chunk=*/16 * 1024);
  for (size_t i = 0; i < kTrainSamples; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "/train/cls%02u/s%05zu.bin",
                  dlt::SampleLabel(sample_spec, i), i);
    if (!writer->Put(name, dlt::MakeSample(sample_spec, i)).ok()) return 1;
  }
  if (!writer->Flush().ok()) return 1;

  auto snapshot = deployment.server(0).BuildSnapshot(writer->clock(), 0,
                                                     "train");
  if (!snapshot.ok()) return 1;
  std::printf("dataset: %zu samples in %zu chunks\n", snapshot->num_files(),
              snapshot->chunks().size());

  // Held-out evaluation set (never stored; generated directly).
  std::vector<dlt::LabelledSample> eval;
  for (size_t i = 0; i < kEvalSamples; ++i) {
    auto s = dlt::SoftmaxTrainer::Decode(
        dlt::MakeSample(sample_spec, kTrainSamples + i));
    if (!s.ok()) return 1;
    eval.push_back(std::move(s).value());
  }

  dlt::TrainerOptions topts;
  topts.num_classes = sample_spec.num_classes;
  topts.dims = sample_spec.dims;
  dlt::SoftmaxTrainer trainer(topts);

  shuffle::GroupWindowReader reader(deployment.server(0), *snapshot, 0);
  Rng rng(2024);
  sim::VirtualClock io_clock;

  std::printf("%-6s %-8s %-8s %-14s %-14s\n", "epoch", "top-1", "top-5",
              "chunk fetches", "window peak");
  for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
    // DL_shuffle: generate this epoch's chunk-wise order.
    reader.StartEpoch(
        shuffle::ChunkWiseShuffle(*snapshot, {.group_size = 8}, rng));
    std::vector<dlt::LabelledSample> batch;
    while (!reader.Done()) {
      auto content = reader.Next(io_clock);
      if (!content.ok()) return 1;
      auto sample = dlt::SoftmaxTrainer::Decode(content.value());
      if (!sample.ok()) return 1;
      batch.push_back(std::move(sample).value());
      if (batch.size() == 32 || reader.Done()) {
        trainer.TrainBatch(batch);
        batch.clear();
      }
    }
    std::printf("%-6zu %-8.3f %-8.3f %-14llu %-14llu\n", epoch + 1,
                trainer.TopKAccuracy(eval, 1), trainer.TopKAccuracy(eval, 5),
                static_cast<unsigned long long>(reader.stats().chunk_fetches),
                static_cast<unsigned long long>(
                    reader.stats().peak_window_bytes));
  }
  std::printf("virtual I/O time for %zu epochs: %.2fs\n", kEpochs,
              ToSeconds(io_clock.now()));
  return 0;
}
