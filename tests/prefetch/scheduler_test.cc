#include "prefetch/scheduler.h"

#include <gtest/gtest.h>

#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "membership/membership.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"
#include "shuffle/shuffle.h"

namespace diesel::prefetch {
namespace {

constexpr size_t kNodes = 4;

struct RunOutcome {
  Nanos end = 0;
  uint64_t content_hash = 0;
  prefetch::PrefetchSchedulerStats sched;
  cache::TaskCacheStats cache;
};

uint64_t Fnv1a(uint64_t h, BytesView data) {
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Build a fresh deployment, ingest the dataset and drive two epochs of
/// plan-order reads through a capacity-bound cache, with or without a
/// prefetch scheduler and with an optional fault plan attached. Fully
/// self-contained so two invocations are independent and comparable.
/// `with_rescale` attaches a membership table and churns it mid-epoch:
/// a spare node joins halfway through epoch 0, and node 1 drains (start at
/// 1/4, depart at 3/4) during epoch 1 — the scheduler must retarget pending
/// fills and keep its accounting exact through all of it.
RunOutcome RunWorkload(uint64_t seed, bool with_scheduler,
                       const net::FaultPlan* faults = nullptr,
                       bool with_rescale = false) {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kNodes + (with_rescale ? 1 : 0);
  core::Deployment dep(dopts);
  dlt::DatasetSpec spec;
  spec.name = "pfs";
  spec.num_classes = 2;
  spec.files_per_class = 64;
  spec.mean_file_bytes = 2048;
  spec.fixed_size = true;
  auto writer = dep.MakeClient(0, 9, spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());
  dep.ResetDevices();

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (uint32_t n = 0; n < kNodes; ++n) {
    for (uint32_t i = 0; i < 2; ++i) {
      clients.push_back(dep.MakeClient(n, i, spec.name));
      registry.Register(clients.back()->endpoint());
    }
  }
  EXPECT_TRUE(clients[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  std::unique_ptr<net::FaultInjector> injector;
  if (faults) {
    injector = std::make_unique<net::FaultInjector>(*faults);
    dep.fabric().set_fault_injector(injector.get());
  }

  uint64_t payload = 0;
  for (const auto& fm : snap.files()) payload += fm.length;
  cache::TaskCacheOptions copts;
  // Capacity-bound: each node owns ~4 chunks of its partition but can hold
  // only ~3 blobs (payload + chunk-header overhead), so eviction is live
  // while leaving headroom for one pinned fill beside the working set.
  copts.per_node_capacity_bytes = payload / kNodes * 3 / 4 + 4096;
  cache::TaskCache cache(dep.fabric(), dep.server(0), snap, registry, copts);
  cache.EstablishConnections();

  membership::MembershipTable table;
  if (with_rescale) {
    std::vector<sim::NodeId> initial(kNodes);
    for (size_t n = 0; n < kNodes; ++n) initial[n] = dep.client_node(n);
    table.Bootstrap(initial, 0);
    cache.AttachMembership(table);  // cache first: migration precedes retarget
  }

  std::unique_ptr<PrefetchScheduler> sched;
  if (with_scheduler) {
    sched = std::make_unique<PrefetchScheduler>(cache, dep.fabric(), snap,
                                                PrefetchOptions{});
    if (with_rescale) sched->AttachMembership(table);
  }

  RunOutcome out;
  out.content_hash = 14695981039346656037ULL;
  Rng rng(seed);
  sim::VirtualClock w;
  for (int epoch = 0; epoch < 2; ++epoch) {
    shuffle::ShufflePlan plan =
        shuffle::ChunkWiseShuffle(snap, {.group_size = 3}, rng);
    if (sched) sched->StartEpoch(plan, w.now());
    for (size_t pos = 0; pos < plan.file_order.size(); ++pos) {
      if (with_rescale && epoch == 0 && pos == plan.file_order.size() / 2) {
        table.Join(dep.client_node(kNodes), w.now());
      }
      if (with_rescale && epoch == 1) {
        if (pos == plan.file_order.size() / 4) table.StartDrain(1, w.now());
        if (pos == plan.file_order.size() * 3 / 4) {
          table.CompleteDrain(1, w.now());
        }
      }
      if (sched) sched->Advance(pos, w.now());
      const core::FileMeta& fm = snap.files()[plan.file_order[pos]];
      auto r = cache.GetFile(w, clients[0]->endpoint(), fm);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) return out;
      out.content_hash = Fnv1a(out.content_hash, r.value());
      w.Advance(Micros(400));  // per-file compute, gives fills lead time
    }
    if (sched) sched->FinishEpoch();
  }
  out.end = w.now();
  if (sched) out.sched = sched->stats();
  out.cache = cache.stats();
  if (faults) dep.fabric().set_fault_injector(nullptr);
  return out;
}

TEST(PrefetchSchedulerTest, FillsRunAheadAndReduceForegroundTime) {
  RunOutcome off = RunWorkload(3, /*with_scheduler=*/false);
  RunOutcome on = RunWorkload(3, /*with_scheduler=*/true);
  // Same plans, same bytes delivered.
  EXPECT_EQ(off.content_hash, on.content_hash);
  // The scheduler actually worked and the foreground got cheaper.
  EXPECT_GT(on.sched.issued, 0u);
  EXPECT_GT(on.cache.prefetch_hits, 0u);
  EXPECT_LT(on.end, off.end);
}

TEST(PrefetchSchedulerTest, IssuedEqualsCompletedPlusCancelled) {
  RunOutcome on = RunWorkload(4, /*with_scheduler=*/true);
  EXPECT_EQ(on.sched.issued, on.sched.completed + on.sched.cancelled);
  // FinishEpoch released every pin.
  EXPECT_EQ(on.cache.pinned_chunks, 0u);
}

TEST(PrefetchSchedulerTest, DeterministicAcrossRuns) {
  RunOutcome a = RunWorkload(5, /*with_scheduler=*/true);
  RunOutcome b = RunWorkload(5, /*with_scheduler=*/true);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.sched.issued, b.sched.issued);
  EXPECT_EQ(a.sched.completed, b.sched.completed);
  EXPECT_EQ(a.sched.cancelled, b.sched.cancelled);
  EXPECT_EQ(a.sched.skipped_resident, b.sched.skipped_resident);
  EXPECT_EQ(a.sched.skipped_down, b.sched.skipped_down);
  EXPECT_EQ(a.cache.prefetch_hits, b.cache.prefetch_hits);
  EXPECT_EQ(a.cache.prefetch_late, b.cache.prefetch_late);
  EXPECT_EQ(a.cache.evicted_bytes, b.cache.evicted_bytes);
}

TEST(PrefetchSchedulerTest, NodeFlapsAndCorruptionDegradeGracefully) {
  net::FaultPlan plan;
  plan.seed = 21;
  plan.rpc_drop_prob = 0.02;
  // Two owner nodes flap mid-epoch; the scheduler must skip them and the
  // foreground's failover path must keep the task alive.
  plan.node_flaps.push_back({1, Millis(1), Millis(30)});
  plan.node_flaps.push_back({2, Millis(40), Millis(70)});
  // One prefetch fill returns a corrupted payload: CRC catches it and the
  // fetch retries.
  plan.corrupt_chunk_fetches = {0, 1};

  // Registry deltas bracket the run so the global counters can be checked
  // against the scheduler's own accounting.
  auto& m = obs::Metrics();
  uint64_t issued0 = m.GetCounter("prefetch.issued").value();
  uint64_t completed0 = m.GetCounter("prefetch.completed").value();
  uint64_t cancelled0 = m.GetCounter("prefetch.cancelled").value();

  RunOutcome chaos = RunWorkload(6, /*with_scheduler=*/true, &plan);
  // Every read was served (EXPECT inside RunWorkload) with CRC-verified
  // bytes; compare against a fault-free run for byte identity.
  RunOutcome clean = RunWorkload(6, /*with_scheduler=*/true);
  EXPECT_EQ(chaos.content_hash, clean.content_hash);

  // Aborted fills are fully accounted: issued == completed + cancelled both
  // in the scheduler stats and in the metrics registry.
  EXPECT_EQ(chaos.sched.issued,
            chaos.sched.completed + chaos.sched.cancelled);
  EXPECT_EQ(m.GetCounter("prefetch.issued").value() - issued0,
            (m.GetCounter("prefetch.completed").value() - completed0) +
                (m.GetCounter("prefetch.cancelled").value() - cancelled0));
  // No stuck pins after the run.
  EXPECT_EQ(chaos.cache.pinned_chunks, 0u);
  // The flapped owners were skipped at issue time at least once.
  EXPECT_GT(chaos.sched.skipped_down, 0u);
}

TEST(PrefetchSchedulerTest, MidEpochRescaleKeepsInvariantsAndBytes) {
  RunOutcome churn =
      RunWorkload(8, /*with_scheduler=*/true, nullptr, /*with_rescale=*/true);
  RunOutcome clean = RunWorkload(8, /*with_scheduler=*/true);
  // Join + drain-start + drain-complete moved chunks under the scheduler's
  // feet, yet every read returned the same bytes as the static run.
  EXPECT_EQ(churn.content_hash, clean.content_hash);
  // The accounting identity holds across rescales, and no pin leaked.
  EXPECT_EQ(churn.sched.issued,
            churn.sched.completed + churn.sched.cancelled);
  EXPECT_EQ(churn.cache.pinned_chunks, 0u);
  // All three mid-epoch membership changes reached the scheduler, and at
  // least one pending fill was re-bucketed to its new owner.
  EXPECT_GE(churn.sched.rescales, 3u);
  EXPECT_GT(churn.sched.retargeted, 0u);
  EXPECT_GT(churn.cache.migrated_chunks, 0u);
}

TEST(PrefetchSchedulerTest, RescaleRunsAreDeterministic) {
  RunOutcome a =
      RunWorkload(9, /*with_scheduler=*/true, nullptr, /*with_rescale=*/true);
  RunOutcome b =
      RunWorkload(9, /*with_scheduler=*/true, nullptr, /*with_rescale=*/true);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.sched.issued, b.sched.issued);
  EXPECT_EQ(a.sched.cancelled, b.sched.cancelled);
  EXPECT_EQ(a.sched.retargeted, b.sched.retargeted);
  EXPECT_EQ(a.cache.migrated_chunks, b.cache.migrated_chunks);
  EXPECT_EQ(a.cache.migrated_bytes, b.cache.migrated_bytes);
}

}  // namespace
}  // namespace diesel::prefetch
