#include "prefetch/access_schedule.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/shuffle.h"

namespace diesel::prefetch {
namespace {

class AccessScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);
    spec_.name = "as";
    spec_.num_classes = 2;
    spec_.files_per_class = 48;
    spec_.mean_file_bytes = 2048;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    client_ = deployment_->MakeClient(0, 1, spec_.name);
    ASSERT_TRUE(client_->FetchSnapshot().ok());
    snapshot_ = client_->snapshot();
  }

  shuffle::ShufflePlan DrawPlan(uint64_t seed, size_t group_size = 3) {
    Rng rng(seed);
    return shuffle::ChunkWiseShuffle(*snapshot_, {.group_size = group_size},
                                     rng);
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::unique_ptr<core::DieselClient> client_;
  const core::MetadataSnapshot* snapshot_ = nullptr;
};

TEST_F(AccessScheduleTest, EveryPlanPositionIsCovered) {
  shuffle::ShufflePlan plan = DrawPlan(11);
  AccessSchedule s = AccessSchedule::Build(plan, *snapshot_);
  EXPECT_EQ(s.num_positions(), plan.file_order.size());
  EXPECT_EQ(s.num_chunks(), snapshot_->chunks().size());
  for (size_t pos = 0; pos < plan.file_order.size(); ++pos) {
    const core::FileMeta& m = snapshot_->files()[plan.file_order[pos]];
    size_t ci = snapshot_->ChunkIndex(m.chunk);
    ASSERT_NE(ci, static_cast<size_t>(-1));
    const auto& a = s.AccessesOf(ci);
    EXPECT_TRUE(std::find(a.begin(), a.end(), pos) != a.end())
        << "position " << pos << " missing from chunk " << ci;
  }
}

TEST_F(AccessScheduleTest, AccessListsAreSortedAndBounded) {
  shuffle::ShufflePlan plan = DrawPlan(12);
  AccessSchedule s = AccessSchedule::Build(plan, *snapshot_);
  size_t total = 0;
  for (size_t ci = 0; ci < s.num_chunks(); ++ci) {
    const auto& a = s.AccessesOf(ci);
    total += a.size();
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    if (a.empty()) {
      EXPECT_EQ(s.FirstAccess(ci), AccessSchedule::kNever);
      EXPECT_EQ(s.LastAccess(ci), AccessSchedule::kNever);
    } else {
      EXPECT_EQ(s.FirstAccess(ci), a.front());
      EXPECT_EQ(s.LastAccess(ci), a.back());
      EXPECT_LT(a.back(), s.num_positions());
    }
  }
  // A full (unpartitioned) plan touches every file exactly once.
  EXPECT_EQ(total, plan.file_order.size());
}

TEST_F(AccessScheduleTest, NextAccessAfterIsLowerBound) {
  shuffle::ShufflePlan plan = DrawPlan(13);
  AccessSchedule s = AccessSchedule::Build(plan, *snapshot_);
  for (size_t ci = 0; ci < s.num_chunks(); ++ci) {
    const auto& a = s.AccessesOf(ci);
    if (a.empty()) {
      EXPECT_EQ(s.NextAccessAfter(ci, 0), AccessSchedule::kNever);
      continue;
    }
    EXPECT_EQ(s.NextAccessAfter(ci, 0), a.front());
    EXPECT_EQ(s.NextAccessAfter(ci, a.front()), a.front());  // inclusive
    EXPECT_EQ(s.NextAccessAfter(ci, a.back() + 1), AccessSchedule::kNever);
    for (size_t k = 1; k < a.size(); ++k) {
      EXPECT_EQ(s.NextAccessAfter(ci, a[k - 1] + 1), a[k]);
    }
  }
}

TEST_F(AccessScheduleTest, FillOrderSortedByFirstAccess) {
  shuffle::ShufflePlan plan = DrawPlan(14);
  AccessSchedule s = AccessSchedule::Build(plan, *snapshot_);
  const auto& order = s.chunks_by_first_access();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(s.FirstAccess(order[i - 1]), s.FirstAccess(order[i]));
  }
  // Exactly the chunks with at least one access appear.
  size_t with_access = 0;
  for (size_t ci = 0; ci < s.num_chunks(); ++ci) {
    if (!s.AccessesOf(ci).empty()) ++with_access;
  }
  EXPECT_EQ(order.size(), with_access);
}

TEST_F(AccessScheduleTest, PartitionedPlanLeavesForeignChunksUnused) {
  shuffle::ShufflePlan plan = DrawPlan(15);
  shuffle::ShufflePlan part = shuffle::PartitionPlan(plan, 0, 2);
  ASSERT_LT(part.file_order.size(), plan.file_order.size());
  AccessSchedule s = AccessSchedule::Build(part, *snapshot_);
  size_t unused = 0;
  for (size_t ci = 0; ci < s.num_chunks(); ++ci) {
    if (s.AccessesOf(ci).empty()) ++unused;
  }
  EXPECT_GT(unused, 0u);  // the other partition's chunks are dead here
  EXPECT_EQ(s.num_positions(), part.file_order.size());
}

}  // namespace
}  // namespace diesel::prefetch
