#include "cache/registry.h"

#include <gtest/gtest.h>

namespace diesel::cache {
namespace {

TEST(TaskRegistryTest, RanksAssignedInOrder) {
  TaskRegistry reg;
  EXPECT_EQ(reg.Register({0, 0}), 0u);
  EXPECT_EQ(reg.Register({0, 1}), 1u);
  EXPECT_EQ(reg.Register({1, 0}), 2u);
  EXPECT_EQ(reg.NumClients(), 3u);
}

TEST(TaskRegistryTest, SmallestRankOnNodeIsMaster) {
  TaskRegistry reg;
  reg.Register({0, 3});   // rank 0, node 0 -> master despite index 3
  reg.Register({0, 0});   // rank 1
  reg.Register({1, 5});   // rank 2, node 1 -> master
  reg.Register({1, 1});   // rank 3

  auto m0 = reg.MasterOf(0);
  ASSERT_TRUE(m0.ok());
  EXPECT_EQ(m0->index, 3u);
  auto m1 = reg.MasterOf(1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->index, 5u);

  EXPECT_TRUE(reg.IsMaster({0, 3}));
  EXPECT_FALSE(reg.IsMaster({0, 0}));
  EXPECT_TRUE(reg.IsMaster({1, 5}));
}

TEST(TaskRegistryTest, MasterOfUnknownNodeFails) {
  TaskRegistry reg;
  reg.Register({0, 0});
  EXPECT_TRUE(reg.MasterOf(9).status().IsNotFound());
}

TEST(TaskRegistryTest, NodesAreDistinctInRegistrationOrder) {
  TaskRegistry reg;
  reg.Register({2, 0});
  reg.Register({0, 0});
  reg.Register({2, 1});
  reg.Register({1, 0});
  EXPECT_EQ(reg.Nodes(), (std::vector<sim::NodeId>{2, 0, 1}));
}

TEST(TaskRegistryTest, MastersOnePerNode) {
  TaskRegistry reg;
  for (uint32_t n = 0; n < 4; ++n) {
    for (uint32_t i = 0; i < 4; ++i) reg.Register({n, i});
  }
  auto masters = reg.Masters();
  EXPECT_EQ(masters.size(), 4u);
  for (const auto& m : masters) {
    EXPECT_EQ(m.index, 0u);  // first registrant per node
  }
}

}  // namespace
}  // namespace diesel::cache
