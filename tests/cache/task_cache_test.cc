#include "cache/task_cache.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::cache {
namespace {

class TaskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);

    spec_.name = "tc";
    spec_.num_classes = 2;
    spec_.files_per_class = 40;
    spec_.mean_file_bytes = 2048;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());

    // 4 nodes x 4 I/O workers.
    for (uint32_t n = 0; n < 4; ++n) {
      for (uint32_t i = 0; i < 4; ++i) {
        clients_.push_back(deployment_->MakeClient(n, i, spec_.name));
        registry_.Register(clients_.back()->endpoint());
      }
    }
    ASSERT_TRUE(clients_[0]->FetchSnapshot().ok());
    snapshot_ = clients_[0]->snapshot();
  }

  static TaskCacheOptions Oneshot() {
    TaskCacheOptions opts;
    opts.policy = CachePolicy::kOneshot;
    return opts;
  }

  TaskCache MakeCache(TaskCacheOptions opts = {}) {
    return TaskCache(deployment_->fabric(), deployment_->server(0),
                     *snapshot_, registry_, opts);
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  TaskRegistry registry_;
  const core::MetadataSnapshot* snapshot_ = nullptr;
};

TEST_F(TaskCacheTest, ConnectionTopologyIsPTimesNMinus1) {
  TaskCache cache = MakeCache();
  size_t before = deployment_->fabric().connections().TotalConnections();
  cache.EstablishConnections();
  size_t added =
      deployment_->fabric().connections().TotalConnections() - before;
  // p=4 nodes, n=16 clients: p x (n-1) = 60 directed opens (paper §4.2),
  // versus the full mesh's n x (n-1) = 240. As undirected edges the 6
  // master<->master pairs collapse: 60 - C(4,2) = 54.
  EXPECT_EQ(cache.connections_opened(), 4u * (16u - 1u));
  EXPECT_EQ(added, 4u * (16u - 1u) - 6u);
}

TEST_F(TaskCacheTest, ChunkOwnersCoverAllNodes) {
  TaskCache cache = MakeCache();
  std::set<sim::NodeId> owners;
  for (size_t ci = 0; ci < snapshot_->chunks().size(); ++ci) {
    auto owner = cache.OwnerNodeOfChunk(ci);
    ASSERT_TRUE(owner.ok());
    owners.insert(owner.value());
  }
  EXPECT_EQ(owners.size(), 4u);
}

TEST_F(TaskCacheTest, PreloadPopulatesEverything) {
  TaskCache cache = MakeCache(Oneshot());
  auto end = cache.Preload(0);
  ASSERT_TRUE(end.ok());
  EXPECT_GT(end.value(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
  EXPECT_EQ(cache.stats().chunk_loads, snapshot_->chunks().size());
}

TEST_F(TaskCacheTest, OnDemandLoadsLazily) {
  TaskCache cache = MakeCache();
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  sim::VirtualClock clock;
  const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, 0));
  ASSERT_NE(meta, nullptr);
  auto content = cache.GetFile(clock, clients_[0]->endpoint(), *meta);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 0, content.value()));
  EXPECT_GT(cache.HitRatio(), 0.0);
  EXPECT_LT(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, SecondReadIsCachedAndCheaper) {
  TaskCache cache = MakeCache();
  const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, 3));
  ASSERT_NE(meta, nullptr);
  sim::VirtualClock first, second;
  ASSERT_TRUE(cache.GetFile(first, clients_[0]->endpoint(), *meta).ok());
  ASSERT_TRUE(cache.GetFile(second, clients_[0]->endpoint(), *meta).ok());
  EXPECT_LT(second.now(), first.now());
  EXPECT_EQ(cache.stats().chunk_loads, 1u);
}

TEST_F(TaskCacheTest, AllClientsReadAllFilesCorrectly) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  sim::VirtualClock clock;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, i));
    ASSERT_NE(meta, nullptr);
    auto& client = clients_[i % clients_.size()];
    auto content = cache.GetFile(clock, client->endpoint(), *meta);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << i;
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.local_hits, 0u);
  EXPECT_GT(stats.peer_hits, stats.local_hits);  // 3/4 of chunks are remote
}

TEST_F(TaskCacheTest, PeerFetchCostsMoreThanLocal) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  // Find one local and one remote file for client 0 (node 0).
  const core::FileMeta *local = nullptr, *remote = nullptr;
  for (size_t i = 0; i < spec_.total_files() && (!local || !remote); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    size_t ci = snapshot_->ChunkIndex(m->chunk);
    sim::NodeId owner = cache.OwnerNodeOfChunk(ci).value();
    if (owner == 0 && !local) local = m;
    if (owner != 0 && !remote) remote = m;
  }
  ASSERT_NE(local, nullptr);
  ASSERT_NE(remote, nullptr);
  sim::VirtualClock lc, rc;
  ASSERT_TRUE(cache.GetFile(lc, clients_[0]->endpoint(), *local).ok());
  ASSERT_TRUE(cache.GetFile(rc, clients_[0]->endpoint(), *remote).ok());
  EXPECT_LT(lc.now(), rc.now());
}

TEST_F(TaskCacheTest, DropNodeLosesOnlyItsPartition) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  cache.DropNode(2);
  double ratio = cache.HitRatio();
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.5);
}

TEST_F(TaskCacheTest, ReloadRestoresFullCache) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  cache.DropAll();
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  auto end = cache.Reload(Seconds(10.0));
  ASSERT_TRUE(end.ok());
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, CapacityBoundEvicts) {
  // Partition capacity below the per-node share forces evictions.
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = 40 * 1024;
  TaskCache cache = MakeCache(opts);
  sim::VirtualClock clock;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, i));
    auto content = cache.GetFile(clock, clients_[0]->endpoint(), *meta);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value()));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LT(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, DownOwnerNodeFailsOverToServer) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  deployment_->cluster().FailNode(1);
  // A file owned by node 1, requested from node 0: the peer path fails, the
  // owner's breaker eventually opens, and the read degrades to a direct
  // server fetch instead of failing the task.
  const core::FileMeta* victim = nullptr;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(m->chunk)).value() == 1) {
      victim = m;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  sim::VirtualClock clock;
  auto content = cache.GetFile(clock, clients_[0]->endpoint(), *victim);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_GT(cache.stats().failovers, 0u);
  // Degraded reads are opt-out: with them disabled the old containment
  // behavior (visible, immediate failure) is preserved.
  TaskCacheOptions strict;
  strict.policy = CachePolicy::kOneshot;
  strict.degraded_reads = false;
  TaskCache contained = MakeCache(strict);
  sim::VirtualClock clock2;
  EXPECT_TRUE(contained.GetFile(clock2, clients_[0]->endpoint(), *victim)
                  .status().IsUnavailable());
}

TEST_F(TaskCacheTest, RepeatedPeerFailuresOpenBreaker) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  deployment_->cluster().FailNode(1);
  sim::VirtualClock clock;
  size_t reads = 0;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(m->chunk)).value() != 1)
      continue;
    auto content = cache.GetFile(clock, clients_[0]->endpoint(), *m);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value()));
    if (++reads >= 8) break;
  }
  ASSERT_GE(reads, 4u);
  auto stats = cache.stats();
  EXPECT_GE(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.failovers, reads);
  // Once open, reads skip the RPC timeout entirely: the fast-failing read
  // must be much cheaper than the first (which burned retries + timeouts).
  sim::VirtualClock probe;
  const core::FileMeta* m = nullptr;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* c = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(c->chunk)).value() == 1) {
      m = c;
      break;
    }
  }
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(cache.GetFile(probe, clients_[0]->endpoint(), *m).ok());
  EXPECT_LT(probe.now(), Millis(5));  // no fault-detect timeout paid
}

}  // namespace
}  // namespace diesel::cache
