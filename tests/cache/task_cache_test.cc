#include "cache/task_cache.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::cache {
namespace {

class TaskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);

    spec_.name = "tc";
    spec_.num_classes = 2;
    spec_.files_per_class = 40;
    spec_.mean_file_bytes = 2048;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());

    // 4 nodes x 4 I/O workers.
    for (uint32_t n = 0; n < 4; ++n) {
      for (uint32_t i = 0; i < 4; ++i) {
        clients_.push_back(deployment_->MakeClient(n, i, spec_.name));
        registry_.Register(clients_.back()->endpoint());
      }
    }
    ASSERT_TRUE(clients_[0]->FetchSnapshot().ok());
    snapshot_ = clients_[0]->snapshot();
  }

  static TaskCacheOptions Oneshot() {
    TaskCacheOptions opts;
    opts.policy = CachePolicy::kOneshot;
    return opts;
  }

  TaskCache MakeCache(TaskCacheOptions opts = {}) {
    return TaskCache(deployment_->fabric(), deployment_->server(0),
                     *snapshot_, registry_, opts);
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  TaskRegistry registry_;
  const core::MetadataSnapshot* snapshot_ = nullptr;
};

TEST_F(TaskCacheTest, ConnectionTopologyIsPTimesNMinus1) {
  TaskCache cache = MakeCache();
  size_t before = deployment_->fabric().connections().TotalConnections();
  cache.EstablishConnections();
  size_t added =
      deployment_->fabric().connections().TotalConnections() - before;
  // p=4 nodes, n=16 clients: p x (n-1) = 60 directed opens (paper §4.2),
  // versus the full mesh's n x (n-1) = 240. As undirected edges the 6
  // master<->master pairs collapse: 60 - C(4,2) = 54.
  EXPECT_EQ(cache.connections_opened(), 4u * (16u - 1u));
  EXPECT_EQ(added, 4u * (16u - 1u) - 6u);
}

TEST_F(TaskCacheTest, ChunkOwnersCoverAllNodes) {
  TaskCache cache = MakeCache();
  std::set<sim::NodeId> owners;
  for (size_t ci = 0; ci < snapshot_->chunks().size(); ++ci) {
    auto owner = cache.OwnerNodeOfChunk(ci);
    ASSERT_TRUE(owner.ok());
    owners.insert(owner.value());
  }
  EXPECT_EQ(owners.size(), 4u);
}

TEST_F(TaskCacheTest, PreloadPopulatesEverything) {
  TaskCache cache = MakeCache(Oneshot());
  auto end = cache.Preload(0);
  ASSERT_TRUE(end.ok());
  EXPECT_GT(end.value(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
  EXPECT_EQ(cache.stats().chunk_loads, snapshot_->chunks().size());
}

TEST_F(TaskCacheTest, OnDemandLoadsLazily) {
  TaskCache cache = MakeCache();
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  sim::VirtualClock clock;
  const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, 0));
  ASSERT_NE(meta, nullptr);
  auto content = cache.GetFile(clock, clients_[0]->endpoint(), *meta);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 0, content.value()));
  EXPECT_GT(cache.HitRatio(), 0.0);
  EXPECT_LT(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, SecondReadIsCachedAndCheaper) {
  TaskCache cache = MakeCache();
  const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, 3));
  ASSERT_NE(meta, nullptr);
  sim::VirtualClock first, second;
  ASSERT_TRUE(cache.GetFile(first, clients_[0]->endpoint(), *meta).ok());
  ASSERT_TRUE(cache.GetFile(second, clients_[0]->endpoint(), *meta).ok());
  EXPECT_LT(second.now(), first.now());
  EXPECT_EQ(cache.stats().chunk_loads, 1u);
}

TEST_F(TaskCacheTest, AllClientsReadAllFilesCorrectly) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  sim::VirtualClock clock;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, i));
    ASSERT_NE(meta, nullptr);
    auto& client = clients_[i % clients_.size()];
    auto content = cache.GetFile(clock, client->endpoint(), *meta);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << i;
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.local_hits, 0u);
  EXPECT_GT(stats.peer_hits, stats.local_hits);  // 3/4 of chunks are remote
}

TEST_F(TaskCacheTest, PeerFetchCostsMoreThanLocal) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  // Find one local and one remote file for client 0 (node 0).
  const core::FileMeta *local = nullptr, *remote = nullptr;
  for (size_t i = 0; i < spec_.total_files() && (!local || !remote); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    size_t ci = snapshot_->ChunkIndex(m->chunk);
    sim::NodeId owner = cache.OwnerNodeOfChunk(ci).value();
    if (owner == 0 && !local) local = m;
    if (owner != 0 && !remote) remote = m;
  }
  ASSERT_NE(local, nullptr);
  ASSERT_NE(remote, nullptr);
  sim::VirtualClock lc, rc;
  ASSERT_TRUE(cache.GetFile(lc, clients_[0]->endpoint(), *local).ok());
  ASSERT_TRUE(cache.GetFile(rc, clients_[0]->endpoint(), *remote).ok());
  EXPECT_LT(lc.now(), rc.now());
}

TEST_F(TaskCacheTest, DropNodeLosesOnlyItsPartition) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  cache.DropNode(2);
  double ratio = cache.HitRatio();
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.5);
}

TEST_F(TaskCacheTest, ReloadRestoresFullCache) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  cache.DropAll();
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  auto end = cache.Reload(Seconds(10.0));
  ASSERT_TRUE(end.ok());
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, CapacityBoundEvicts) {
  // Partition capacity below the per-node share forces evictions.
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = 40 * 1024;
  TaskCache cache = MakeCache(opts);
  sim::VirtualClock clock;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, i));
    auto content = cache.GetFile(clock, clients_[0]->endpoint(), *meta);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value()));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LT(cache.HitRatio(), 1.0);
}

TEST_F(TaskCacheTest, DownOwnerNodeFailsOverToServer) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  deployment_->cluster().FailNode(1);
  // A file owned by node 1, requested from node 0: the peer path fails, the
  // owner's breaker eventually opens, and the read degrades to a direct
  // server fetch instead of failing the task.
  const core::FileMeta* victim = nullptr;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(m->chunk)).value() == 1) {
      victim = m;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  sim::VirtualClock clock;
  auto content = cache.GetFile(clock, clients_[0]->endpoint(), *victim);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_GT(cache.stats().failovers, 0u);
  // Degraded reads are opt-out: with them disabled the old containment
  // behavior (visible, immediate failure) is preserved.
  TaskCacheOptions strict;
  strict.policy = CachePolicy::kOneshot;
  strict.degraded_reads = false;
  TaskCache contained = MakeCache(strict);
  sim::VirtualClock clock2;
  EXPECT_TRUE(contained.GetFile(clock2, clients_[0]->endpoint(), *victim)
                  .status().IsUnavailable());
}

TEST_F(TaskCacheTest, RepeatedPeerFailuresOpenBreaker) {
  TaskCache cache = MakeCache(Oneshot());
  ASSERT_TRUE(cache.Preload(0).ok());
  deployment_->cluster().FailNode(1);
  sim::VirtualClock clock;
  size_t reads = 0;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(m->chunk)).value() != 1)
      continue;
    auto content = cache.GetFile(clock, clients_[0]->endpoint(), *m);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value()));
    if (++reads >= 8) break;
  }
  ASSERT_GE(reads, 4u);
  auto stats = cache.stats();
  EXPECT_GE(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.failovers, reads);
  // Once open, reads skip the RPC timeout entirely: the fast-failing read
  // must be much cheaper than the first (which burned retries + timeouts).
  sim::VirtualClock probe;
  const core::FileMeta* m = nullptr;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* c = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (cache.OwnerNodeOfChunk(snapshot_->ChunkIndex(c->chunk)).value() == 1) {
      m = c;
      break;
    }
  }
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(cache.GetFile(probe, clients_[0]->endpoint(), *m).ok());
  EXPECT_LT(probe.now(), Millis(5));  // no fault-detect timeout paid
}

TEST_F(TaskCacheTest, EvictedBytesTracksCapacityEvictions) {
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = 40 * 1024;
  TaskCache cache = MakeCache(opts);
  sim::VirtualClock clock;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    const core::FileMeta* meta = snapshot_->Lookup(dlt::FilePath(spec_, i));
    ASSERT_TRUE(cache.GetFile(clock, clients_[0]->endpoint(), *meta).ok());
  }
  auto stats = cache.stats();
  ASSERT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.evicted_bytes, 0u);
  // Every eviction removed at least one chunk blob; the totals must be
  // consistent with per-partition capacity (4 nodes).
  EXPECT_GE(stats.evicted_bytes, stats.evictions);  // blobs are > 1 byte
  EXPECT_LE(stats.bytes_cached, 4 * opts.per_node_capacity_bytes);
}

// Chunk indices owned by `node`, in index order.
std::vector<size_t> OwnedChunks(TaskCache& cache,
                                const core::MetadataSnapshot& snap,
                                sim::NodeId node) {
  std::vector<size_t> out;
  for (size_t ci = 0; ci < snap.chunks().size(); ++ci) {
    if (cache.OwnerNodeOfChunk(ci).value() == node) out.push_back(ci);
  }
  return out;
}

TEST_F(TaskCacheTest, PinBlocksEvictionUntilUnpinned) {
  // Capacity sized from an unbounded dry run: room for two of node 0's
  // chunks but not three.
  std::vector<size_t> owned;
  uint64_t two_chunks = 0, three_chunks = 0;
  {
    TaskCache probe = MakeCache();
    owned = OwnedChunks(probe, *snapshot_, 0);
    ASSERT_GE(owned.size(), 3u);
    sim::VirtualClock clock;
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(probe.PrefetchChunk(clock, owned[i]).ok());
      if (i == 1) two_chunks = probe.stats().bytes_cached;
    }
    three_chunks = probe.stats().bytes_cached;
  }
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = (two_chunks + three_chunks) / 2;
  TaskCache cache = MakeCache(opts);
  sim::VirtualClock clock;
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[0]).ok());
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[1]).ok());
  cache.Pin(owned[0]);
  EXPECT_EQ(cache.stats().pinned_chunks, 1u);
  // FIFO would evict owned[0]; the pin diverts eviction to owned[1].
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[2]).ok());
  EXPECT_TRUE(cache.ChunkResident(owned[0]));
  EXPECT_FALSE(cache.ChunkResident(owned[1]));
  EXPECT_TRUE(cache.ChunkResident(owned[2]));
  cache.Unpin(owned[0]);
  EXPECT_EQ(cache.stats().pinned_chunks, 0u);
  // Unpinned, owned[0] is the FIFO victim again.
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[1]).ok());
  EXPECT_FALSE(cache.ChunkResident(owned[0]));
}

TEST_F(TaskCacheTest, DemandInsertOutranksPrefetchPins) {
  // Capacity holds exactly one of node 0's chunk blobs.
  std::vector<size_t> owned;
  uint64_t one_chunk = 0, two_chunks = 0;
  {
    TaskCache probe = MakeCache();
    owned = OwnedChunks(probe, *snapshot_, 0);
    ASSERT_GE(owned.size(), 2u);
    sim::VirtualClock clock;
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(probe.PrefetchChunk(clock, owned[i]).ok());
      if (i == 0) one_chunk = probe.stats().bytes_cached;
    }
    two_chunks = probe.stats().bytes_cached;
  }
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = (one_chunk + two_chunks) / 2;
  TaskCache cache = MakeCache(opts);
  sim::VirtualClock stream;
  ASSERT_TRUE(cache.PrefetchChunk(stream, owned[0]).ok());
  cache.Pin(owned[0]);
  // Background fills respect pins: with the only slot pinned, a further
  // prefetch is denied.
  auto denied = cache.PrefetchChunk(stream, owned[1]);
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->inserted);
  EXPECT_TRUE(cache.ChunkResident(owned[0]));
  // A foreground miss must still get cached: the pinned fill is evicted
  // rather than sending every later read of this chunk to the backend.
  const core::FileMeta* fm = nullptr;
  for (size_t i = 0; i < spec_.total_files() && !fm; ++i) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
    if (snapshot_->ChunkIndex(m->chunk) == owned[1]) fm = m;
  }
  ASSERT_NE(fm, nullptr);
  sim::VirtualClock w;
  ASSERT_TRUE(cache.GetFile(w, clients_[0]->endpoint(), *fm).ok());
  EXPECT_TRUE(cache.ChunkResident(owned[1]));
  EXPECT_FALSE(cache.ChunkResident(owned[0]));
  // The evicted fill never served a read: counted as wasted.
  EXPECT_EQ(cache.stats().prefetch_wasted, 1u);
  cache.Unpin(owned[0]);
  EXPECT_EQ(cache.stats().pinned_chunks, 0u);
}

/// Scripted oracle: next access = fixed per-chunk position, kNever else.
class MapOracle : public EvictionOracle {
 public:
  void Set(size_t chunk, uint64_t pos) { next_[chunk] = pos; }
  uint64_t NextAccessAfter(size_t chunk, uint64_t cursor) const override {
    auto it = next_.find(chunk);
    return it == next_.end() || it->second < cursor ? kNever : it->second;
  }

 private:
  std::map<size_t, uint64_t> next_;
};

TEST_F(TaskCacheTest, BeladyOracleEvictsFarthestNextAccess) {
  std::vector<size_t> owned;
  uint64_t two_chunks = 0, three_chunks = 0;
  {
    TaskCache probe = MakeCache();
    owned = OwnedChunks(probe, *snapshot_, 0);
    ASSERT_GE(owned.size(), 3u);
    sim::VirtualClock clock;
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(probe.PrefetchChunk(clock, owned[i]).ok());
      if (i == 1) two_chunks = probe.stats().bytes_cached;
    }
    three_chunks = probe.stats().bytes_cached;
  }
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = (two_chunks + three_chunks) / 2;
  TaskCache cache = MakeCache(opts);
  MapOracle oracle;
  oracle.Set(owned[0], 10);   // reused soon — keep
  oracle.Set(owned[1], 500);  // farthest reuse — Belady victim
  oracle.Set(owned[2], 20);
  cache.InstallEvictionOracle(&oracle);
  cache.SetEpochCursor(0);
  sim::VirtualClock clock;
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[0]).ok());
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[1]).ok());
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[2]).ok());
  EXPECT_TRUE(cache.ChunkResident(owned[0]));   // FIFO would have evicted it
  EXPECT_FALSE(cache.ChunkResident(owned[1]));
  EXPECT_TRUE(cache.ChunkResident(owned[2]));
  // Cursor passes owned[0]'s reuse: it is now dead (kNever) and becomes the
  // victim even though owned[2]'s access is still ahead.
  cache.SetEpochCursor(15);
  ASSERT_TRUE(cache.PrefetchChunk(clock, owned[1]).ok());
  EXPECT_FALSE(cache.ChunkResident(owned[0]));
  EXPECT_TRUE(cache.ChunkResident(owned[2]));
  cache.InstallEvictionOracle(nullptr);
}

TEST_F(TaskCacheTest, PrefetchHitAndLateAccounting) {
  TaskCache cache = MakeCache();
  // Two files in two different chunks owned by node 0.
  std::vector<size_t> owned;
  {
    owned = OwnedChunks(cache, *snapshot_, 0);
    ASSERT_GE(owned.size(), 2u);
  }
  auto file_in_chunk = [&](size_t ci) -> const core::FileMeta* {
    for (size_t i = 0; i < spec_.total_files(); ++i) {
      const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, i));
      if (snapshot_->ChunkIndex(m->chunk) == ci) return m;
    }
    return nullptr;
  };
  const core::FileMeta* early = file_in_chunk(owned[0]);
  const core::FileMeta* late = file_in_chunk(owned[1]);
  ASSERT_NE(early, nullptr);
  ASSERT_NE(late, nullptr);

  sim::VirtualClock stream;
  auto out0 = cache.PrefetchChunk(stream, owned[0]);
  ASSERT_TRUE(out0.ok());
  EXPECT_TRUE(out0->inserted);
  EXPECT_GT(out0->bytes, 0u);
  EXPECT_GT(out0->ready_at, 0u);
  auto out1 = cache.PrefetchChunk(stream, owned[1]);
  ASSERT_TRUE(out1.ok());
  // Re-prefetching a resident chunk is a no-op.
  sim::VirtualClock stream2;
  auto again = cache.PrefetchChunk(stream2, owned[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->already_resident);
  EXPECT_EQ(stream2.now(), 0u);

  // Reader arriving after the fill completed: clean hit, no added wait.
  sim::VirtualClock hit_clock(out0->ready_at + Millis(1));
  ASSERT_TRUE(cache.GetFile(hit_clock, clients_[0]->endpoint(), *early).ok());
  // Reader arriving before the second fill finishes: waits out the
  // remainder (late), clock lands at or beyond ready_at.
  sim::VirtualClock late_clock;
  ASSERT_TRUE(cache.GetFile(late_clock, clients_[0]->endpoint(), *late).ok());
  EXPECT_GE(late_clock.now(), out1->ready_at);

  auto stats = cache.stats();
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.prefetch_late, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 0u);
  // Both reads were served from cache, no extra backend loads.
  EXPECT_EQ(stats.chunk_loads, 2u);
}

}  // namespace
}  // namespace diesel::cache
