// FileSlice lifetime: slices returned by the zero-copy read path hold a
// reference on the chunk blob, so they must stay byte-stable after the
// cache evicts, drops, or migrates the chunk they view. Run under
// ASan/TSan this is the use-after-free proof for the shared-buffer design.
#include <gtest/gtest.h>

#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "membership/membership.h"

namespace diesel::cache {
namespace {

class SliceLifetimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions dopts;
    dopts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(dopts);
    spec_.name = "sl";
    spec_.num_classes = 2;
    spec_.files_per_class = 40;
    spec_.mean_file_bytes = 2048;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    for (uint32_t n = 0; n < 4; ++n) {
      clients_.push_back(deployment_->MakeClient(n, 1, spec_.name));
      registry_.Register(clients_.back()->endpoint());
    }
    ASSERT_TRUE(clients_[0]->FetchSnapshot().ok());
    snapshot_ = clients_[0]->snapshot();
  }

  const core::FileMeta& File(size_t index) {
    const core::FileMeta* m = snapshot_->Lookup(dlt::FilePath(spec_, index));
    EXPECT_NE(m, nullptr);
    return *m;
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  TaskRegistry registry_;
  const core::MetadataSnapshot* snapshot_ = nullptr;
};

TEST_F(SliceLifetimeTest, SlicesSurviveCapacityEviction) {
  TaskCacheOptions opts;
  opts.per_node_capacity_bytes = 40 * 1024;  // forces eviction churn
  TaskCache cache(deployment_->fabric(), deployment_->server(0), *snapshot_,
                  registry_, opts);
  sim::VirtualClock clock;
  // Hold slices of the first 16 files while the rest of the epoch churns
  // the cache past its capacity many times over.
  std::vector<core::FileSlice> held;
  for (size_t i = 0; i < 16; ++i) {
    auto s = cache.GetFileSlice(clock, clients_[0]->endpoint(), File(i));
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    held.push_back(std::move(s.value()));
  }
  for (size_t i = 16; i < spec_.total_files(); ++i) {
    ASSERT_TRUE(
        cache.GetFile(clock, clients_[0]->endpoint(), File(i)).ok());
  }
  ASSERT_GT(cache.stats().evictions, 0u);
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, held[i].ToBytes()))
        << "file " << i;
  }
}

TEST_F(SliceLifetimeTest, SlicesSurviveDropAllAndNodeDrop) {
  TaskCache cache(deployment_->fabric(), deployment_->server(0), *snapshot_,
                  registry_, {});
  sim::VirtualClock clock;
  std::vector<core::FileSlice> held;
  for (size_t i = 0; i < 24; ++i) {
    auto s = cache.GetFileSlice(clock, clients_[0]->endpoint(), File(i));
    ASSERT_TRUE(s.ok());
    held.push_back(std::move(s.value()));
  }
  cache.DropNode(deployment_->client_node(1));
  cache.DropAll();
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, held[i].ToBytes()))
        << "file " << i;
  }
}

TEST_F(SliceLifetimeTest, SlicesSurviveMigration) {
  // Preload over 2 member nodes, take slices, then have 2 more nodes join:
  // consistent hashing migrates a share of resident chunks to the joiners
  // and finalizes away the source copies — held slices must not notice.
  std::vector<std::unique_ptr<core::DieselClient>> members;
  TaskRegistry reg;
  for (uint32_t n = 0; n < 2; ++n) {
    members.push_back(deployment_->MakeClient(n, 2, spec_.name));
    reg.Register(members.back()->endpoint());
  }
  ASSERT_TRUE(members[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *members[0]->snapshot();
  TaskCacheOptions copts;
  copts.policy = CachePolicy::kOneshot;
  TaskCache cache(deployment_->fabric(), deployment_->server(0), snap, reg,
                  copts);
  membership::MembershipTable table;
  std::vector<sim::NodeId> initial{deployment_->client_node(0),
                                   deployment_->client_node(1)};
  table.Bootstrap(initial, 0);
  cache.AttachMembership(table);
  ASSERT_TRUE(cache.Preload(0).ok());

  sim::VirtualClock clock;
  std::vector<core::FileSlice> held;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    auto s = cache.GetFileSlice(clock, members[0]->endpoint(), File(i));
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    held.push_back(std::move(s.value()));
  }

  table.Join(deployment_->client_node(2), clock.now());
  table.Join(deployment_->client_node(3), clock.now());
  ASSERT_GT(cache.stats().migrated_chunks, 0u);

  // Read everything again past the transition so every in-flight move is
  // finalized (source copies erased) while the slices are still alive.
  sim::VirtualClock sweep(cache.last_transition_end() + Millis(1));
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    auto r = cache.GetFile(sweep, members[0]->endpoint(), File(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(cache.migrations_in_flight(), 0u);

  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, held[i].ToBytes()))
        << "file " << i;
  }
}

}  // namespace
}  // namespace diesel::cache
