// Property test for the coalesced read path: for any seed, a batched run
// (TaskCache::GetFiles, groups of 16) and an unbatched run (GetFile per
// file) over the same shuffled read order must produce byte-identical file
// contents and identical hit/load/corruption accounting — batching may only
// change virtual time and RPC counts, never what was read or how the cache
// behaved. Runs include fault injection (drops, latency spikes, payload
// corruption) with a generous retry budget so every read still succeeds
// through the peer path.
#include <gtest/gtest.h>

#include "cache/task_cache.h"
#include "common/rng.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"

namespace diesel::cache {
namespace {

struct RunOutput {
  std::vector<Bytes> contents;
  TaskCacheStats stats;
  uint64_t rpcs = 0;
  Nanos end = 0;
};

constexpr size_t kGroup = 16;  // files per read batch (a mini-batch)

RunOutput RunReads(uint64_t seed, bool batched) {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 4;
  core::Deployment dep(dopts);

  dlt::DatasetSpec spec;
  spec.name = "eq";
  spec.num_classes = 2;
  spec.files_per_class = 48;
  spec.mean_file_bytes = 2048;
  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  TaskRegistry registry;
  for (uint32_t n = 0; n < 4; ++n) {
    for (uint32_t i = 0; i < 2; ++i) {
      clients.push_back(dep.MakeClient(n, i, spec.name));
      registry.Register(clients.back()->endpoint());
    }
  }
  EXPECT_TRUE(clients[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot* snap = clients[0]->snapshot();

  TaskCacheOptions copts;
  // Generous retry: every dropped RPC is retried until it lands, so both
  // runs serve every remote read through the peer path (no breaker opens,
  // no degraded fallbacks — those would legitimately diverge).
  copts.retry.max_attempts = 64;
  copts.retry.deadline_budget = 0;
  copts.breaker.failure_threshold = 1000;
  TaskCache cache(dep.fabric(), dep.server(0), *snap, registry, copts);

  // Faults attach after the write phase so the dataset itself is clean.
  net::FaultPlan plan;
  plan.seed = seed;
  plan.rpc_drop_prob = 0.05;
  plan.latency_spikes.push_back({Millis(1), Millis(3), Micros(50)});
  plan.corrupt_chunk_fetches = {0, 2, 5};
  net::FaultInjector injector(plan);
  dep.fabric().set_fault_injector(&injector);

  // Seeded shuffled read order, identical for both runs.
  std::vector<size_t> order(spec.total_files());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  for (size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }

  RunOutput out;
  sim::VirtualClock clock;
  for (size_t g = 0; g < order.size(); g += kGroup) {
    size_t end = std::min(g + kGroup, order.size());
    std::vector<core::FileMeta> metas;
    for (size_t i = g; i < end; ++i) {
      const core::FileMeta* m =
          snap->Lookup(dlt::FilePath(spec, order[i]));
      EXPECT_NE(m, nullptr);
      metas.push_back(*m);
    }
    net::EndpointId requester = clients[0]->endpoint();
    if (batched) {
      auto slices = cache.GetFiles(clock, requester, metas);
      EXPECT_TRUE(slices.ok()) << slices.status().ToString();
      for (core::FileSlice& s : slices.value()) {
        out.contents.push_back(s.ToBytes());
      }
    } else {
      for (const core::FileMeta& m : metas) {
        auto content = cache.GetFile(clock, requester, m);
        EXPECT_TRUE(content.ok()) << content.status().ToString();
        out.contents.push_back(std::move(content.value()));
      }
    }
  }
  out.stats = cache.stats();
  out.rpcs = dep.fabric().rpcs_issued();
  out.end = clock.now();
  dep.fabric().set_fault_injector(nullptr);
  return out;
}

class BatchedReadEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BatchedReadEquivalenceTest, BatchedMatchesUnbatchedUnderFaults) {
  const uint64_t seed = GetParam();
  RunOutput unbatched = RunReads(seed, /*batched=*/false);
  RunOutput batched = RunReads(seed, /*batched=*/true);

  // Byte-identical contents, in the same order.
  ASSERT_EQ(batched.contents.size(), unbatched.contents.size());
  for (size_t i = 0; i < batched.contents.size(); ++i) {
    ASSERT_EQ(batched.contents[i], unbatched.contents[i]) << "file " << i;
  }

  // Identical cache behavior: same hits, same backend loads, same detected
  // corruptions. (Virtual time and RPC counts are allowed — required,
  // even — to differ; that is the point of batching.)
  EXPECT_EQ(batched.stats.local_hits, unbatched.stats.local_hits);
  EXPECT_EQ(batched.stats.peer_hits, unbatched.stats.peer_hits);
  EXPECT_EQ(batched.stats.chunk_loads, unbatched.stats.chunk_loads);
  EXPECT_EQ(batched.stats.corruptions_detected,
            unbatched.stats.corruptions_detected);
  EXPECT_EQ(batched.stats.failovers, 0u);
  EXPECT_EQ(unbatched.stats.failovers, 0u);
  // Injected corruptions were actually exercised.
  EXPECT_EQ(batched.stats.corruptions_detected, 3u);

  // Coalescing must cut the RPC count.
  EXPECT_LT(batched.rpcs, unbatched.rpcs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedReadEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 11u, 13u,
                                           42u));

}  // namespace
}  // namespace diesel::cache
