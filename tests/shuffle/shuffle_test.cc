#include "shuffle/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace diesel::shuffle {
namespace {

core::MetadataSnapshot MakeSnapshot(size_t num_chunks, size_t files_per_chunk) {
  std::vector<core::ChunkId> chunks;
  std::vector<core::FileMeta> files;
  for (size_t c = 0; c < num_chunks; ++c) {
    core::ChunkId id = core::ChunkId::Make(10 + static_cast<uint32_t>(c), 1, 1,
                                           static_cast<uint32_t>(c));
    chunks.push_back(id);
    for (size_t f = 0; f < files_per_chunk; ++f) {
      core::FileMeta m;
      m.chunk = id;
      m.offset = f * 64;
      m.length = 64;
      m.index_in_chunk = static_cast<uint32_t>(f);
      m.full_name =
          "/s/c" + std::to_string(c) + "/f" + std::to_string(f);
      files.push_back(std::move(m));
    }
  }
  return core::MetadataSnapshot::Create("s", 1, std::move(chunks),
                                        std::move(files));
}

bool IsPermutation(const std::vector<uint32_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (uint32_t idx : order) {
    if (idx >= n || seen[idx]) return false;
    seen[idx] = true;
  }
  return true;
}

TEST(ShuffleDatasetTest, ProducesPermutation) {
  auto snap = MakeSnapshot(10, 20);
  Rng rng(1);
  auto order = ShuffleDataset(snap, rng);
  EXPECT_TRUE(IsPermutation(order, 200));
}

TEST(ShuffleDatasetTest, DifferentEpochsDiffer) {
  auto snap = MakeSnapshot(10, 20);
  Rng rng(1);
  auto e1 = ShuffleDataset(snap, rng);
  auto e2 = ShuffleDataset(snap, rng);
  EXPECT_NE(e1, e2);
}

TEST(ChunkWiseShuffleTest, PlanCoversEveryFileExactlyOnce) {
  auto snap = MakeSnapshot(17, 13);
  Rng rng(2);
  for (size_t group_size : {1u, 3u, 5u, 17u, 100u}) {
    ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = group_size}, rng);
    EXPECT_TRUE(IsPermutation(plan.file_order, 17 * 13))
        << "group_size=" << group_size;
  }
}

TEST(ChunkWiseShuffleTest, GroupStructureIsConsistent) {
  auto snap = MakeSnapshot(10, 7);
  Rng rng(3);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 4}, rng);
  // 10 chunks / group_size 4 = 3 groups (4, 4, 2 chunks).
  EXPECT_EQ(plan.num_groups(), 3u);
  EXPECT_EQ(plan.group_chunks[0].size(), 4u);
  EXPECT_EQ(plan.group_chunks[2].size(), 2u);
  EXPECT_EQ(plan.group_begin.front(), 0u);
  EXPECT_EQ(plan.group_begin.back(), plan.file_order.size());
  // Group g's files all come from group g's chunks.
  for (size_t g = 0; g < plan.num_groups(); ++g) {
    std::set<uint32_t> allowed(plan.group_chunks[g].begin(),
                               plan.group_chunks[g].end());
    for (size_t pos = plan.group_begin[g]; pos < plan.group_begin[g + 1];
         ++pos) {
      const core::FileMeta& fm = snap.files()[plan.file_order[pos]];
      size_t ci = snap.ChunkIndex(fm.chunk);
      EXPECT_TRUE(allowed.count(static_cast<uint32_t>(ci)) > 0)
          << "group " << g << " pos " << pos;
      EXPECT_EQ(plan.GroupOf(pos), g);
    }
  }
}

TEST(ChunkWiseShuffleTest, EveryChunkInExactlyOneGroup) {
  auto snap = MakeSnapshot(23, 3);
  Rng rng(4);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 7}, rng);
  std::set<uint32_t> seen;
  for (const auto& group : plan.group_chunks) {
    for (uint32_t ci : group) {
      EXPECT_TRUE(seen.insert(ci).second) << "chunk " << ci << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 23u);
}

TEST(ChunkWiseShuffleTest, OrderIsRandomizedWithinGroups) {
  auto snap = MakeSnapshot(4, 100);
  Rng rng(5);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 2}, rng);
  // Files inside a group must not appear in per-chunk sequential order.
  size_t sorted_runs = 0;
  for (size_t pos = plan.group_begin[0] + 1; pos < plan.group_begin[1]; ++pos) {
    if (plan.file_order[pos] == plan.file_order[pos - 1] + 1) ++sorted_runs;
  }
  size_t group_len = plan.group_begin[1] - plan.group_begin[0];
  EXPECT_LT(sorted_runs, group_len / 4);
}

TEST(ChunkWiseShuffleTest, EpochsProduceDifferentPlans) {
  auto snap = MakeSnapshot(10, 10);
  Rng rng(6);
  auto p1 = ChunkWiseShuffle(snap, {.group_size = 3}, rng);
  auto p2 = ChunkWiseShuffle(snap, {.group_size = 3}, rng);
  EXPECT_NE(p1.file_order, p2.file_order);
}

TEST(ChunkWiseShuffleTest, LocalityMuchHigherThanDatasetShuffle) {
  auto snap = MakeSnapshot(100, 20);
  Rng rng(7);
  auto chunkwise = ChunkWiseShuffle(snap, {.group_size = 5}, rng);
  auto dataset = ShuffleDataset(snap, rng);
  double cw = AdjacentSameChunkFraction(snap, chunkwise.file_order);
  double ds = AdjacentSameChunkFraction(snap, dataset);
  // Within a 5-chunk group, ~1/5 of neighbours share a chunk; in a
  // 100-chunk dataset shuffle, ~1/100.
  EXPECT_GT(cw, 5 * ds);
}

TEST(PartitionPlanTest, PartsAreDisjointAndComplete) {
  auto snap = MakeSnapshot(12, 10);
  Rng rng(8);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 2}, rng);
  std::set<uint32_t> all;
  size_t total = 0;
  for (size_t part = 0; part < 4; ++part) {
    ShufflePlan sub = PartitionPlan(plan, part, 4);
    total += sub.file_order.size();
    for (uint32_t f : sub.file_order) {
      EXPECT_TRUE(all.insert(f).second) << "file " << f << " in two parts";
    }
    // Sub-plan structure stays self-consistent.
    EXPECT_EQ(sub.group_begin.back(), sub.file_order.size());
    EXPECT_EQ(sub.num_groups(), sub.group_chunks.size());
  }
  EXPECT_EQ(total, plan.file_order.size());
}

TEST(PartitionPlanTest, SinglePartIsIdentity) {
  auto snap = MakeSnapshot(5, 4);
  Rng rng(9);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 2}, rng);
  ShufflePlan sub = PartitionPlan(plan, 0, 1);
  EXPECT_EQ(sub.file_order, plan.file_order);
  EXPECT_EQ(sub.group_begin, plan.group_begin);
}

TEST(ChunkWiseShuffleTest, HandlesEmptyDataset) {
  auto snap = core::MetadataSnapshot::Create("empty", 1, {}, {});
  Rng rng(10);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = 10}, rng);
  EXPECT_EQ(plan.num_groups(), 0u);
  EXPECT_TRUE(plan.file_order.empty());
}

}  // namespace
}  // namespace diesel::shuffle
