#include "shuffle/group_reader.h"

#include <gtest/gtest.h>

#include <set>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::shuffle {
namespace {

class GroupReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    deployment_ = std::make_unique<core::Deployment>(opts);

    spec_.name = "gr";
    spec_.num_classes = 2;
    spec_.files_per_class = 60;
    spec_.mean_file_bytes = 1024;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());

    auto snap = deployment_->server(0).BuildSnapshot(clock_, 0, spec_.name);
    ASSERT_TRUE(snap.ok());
    snapshot_ = std::move(snap).value();
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  core::MetadataSnapshot snapshot_;
  sim::VirtualClock clock_;
};

TEST_F(GroupReaderTest, ReadsEveryFileWithCorrectContent) {
  Rng rng(1);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  std::vector<bool> seen(spec_.total_files(), false);
  while (!reader.Done()) {
    uint32_t idx = reader.PeekIndex().value();
    auto content = reader.Next(clock_);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    const core::FileMeta& fm = snapshot_.files()[idx];
    // Recover the generated-file index from its path for verification.
    for (size_t i = 0; i < spec_.total_files(); ++i) {
      if (dlt::FilePath(spec_, i) == fm.full_name) {
        EXPECT_TRUE(dlt::VerifyContent(spec_, i, content.value()));
        seen[i] = true;
        break;
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_EQ(reader.stats().files_read, spec_.total_files());
}

TEST_F(GroupReaderTest, FetchesEachChunkExactlyOncePerEpoch) {
  Rng rng(2);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 3}, rng));
  while (!reader.Done()) {
    ASSERT_TRUE(reader.Next(clock_).ok());
  }
  EXPECT_EQ(reader.stats().chunk_fetches, snapshot_.chunks().size());
}

TEST_F(GroupReaderTest, WindowMemoryBoundedByGroupSize) {
  Rng rng(3);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  const size_t G = 2;
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = G}, rng));
  while (!reader.Done()) {
    ASSERT_TRUE(reader.Next(clock_).ok());
  }
  // Chunks are ~8KB target + header slack; window holds at most G of them.
  EXPECT_LE(reader.stats().peak_window_bytes, G * 24 * 1024);
  // And far below the whole dataset.
  EXPECT_LT(reader.stats().peak_window_bytes,
            reader.stats().chunk_bytes_fetched / 3);
}

TEST_F(GroupReaderTest, ExhaustedEpochReturnsOutOfRange) {
  Rng rng(4);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 100}, rng));
  while (!reader.Done()) {
    ASSERT_TRUE(reader.Next(clock_).ok());
  }
  EXPECT_EQ(reader.Next(clock_).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader.PeekIndex().status().code(), StatusCode::kOutOfRange);
}

TEST_F(GroupReaderTest, NewEpochRewinds) {
  Rng rng(5);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  while (!reader.Done()) ASSERT_TRUE(reader.Next(clock_).ok());
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  EXPECT_FALSE(reader.Done());
  EXPECT_EQ(reader.position(), 0u);
  size_t count = 0;
  while (!reader.Done()) {
    ASSERT_TRUE(reader.Next(clock_).ok());
    ++count;
  }
  EXPECT_EQ(count, spec_.total_files());
}

TEST_F(GroupReaderTest, PartitionedPlansReadDisjointFiles) {
  Rng rng(6);
  ShufflePlan plan = ChunkWiseShuffle(snapshot_, {.group_size = 2}, rng);
  std::set<uint32_t> seen;
  for (size_t part = 0; part < 3; ++part) {
    GroupWindowReader reader(deployment_->server(0), snapshot_,
                             static_cast<sim::NodeId>(part));
    reader.StartEpoch(PartitionPlan(plan, part, 3));
    while (!reader.Done()) {
      uint32_t idx = reader.PeekIndex().value();
      ASSERT_TRUE(reader.Next(clock_).ok());
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), spec_.total_files());
}

TEST_F(GroupReaderTest, PrefetchHidesGroupBoundaryStalls) {
  Rng rng_a(8), rng_b(8);
  // Same plan for both readers (same seed).
  GroupWindowReader plain(deployment_->server(0), snapshot_, 0);
  GroupWindowReader prefetching(deployment_->server(0), snapshot_, 0);
  prefetching.set_prefetch_next_group(true);
  plain.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 3}, rng_a));
  prefetching.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 3},
                                          rng_b));

  // Consumer "computes" on every file, giving the background fetch time to
  // run ahead; the prefetching reader's epoch must finish sooner.
  constexpr Nanos kComputePerFile = Micros(500);
  sim::VirtualClock plain_clock, prefetch_clock;
  while (!plain.Done()) {
    ASSERT_TRUE(plain.Next(plain_clock).ok());
    plain_clock.Advance(kComputePerFile);
  }
  size_t files = 0;
  while (!prefetching.Done()) {
    ASSERT_TRUE(prefetching.Next(prefetch_clock).ok());
    prefetch_clock.Advance(kComputePerFile);
    ++files;
  }
  EXPECT_EQ(files, spec_.total_files());
  EXPECT_LT(prefetch_clock.now(), plain_clock.now());
  // Same total I/O, double the resident window.
  EXPECT_EQ(prefetching.stats().chunk_fetches, plain.stats().chunk_fetches);
  EXPECT_GT(prefetching.stats().peak_window_bytes,
            plain.stats().peak_window_bytes);
}

TEST_F(GroupReaderTest, PrefetchedEpochStillCoversEveryFileOnce) {
  Rng rng(9);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.set_prefetch_next_group(true);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  std::set<uint32_t> seen;
  sim::VirtualClock clock;
  while (!reader.Done()) {
    uint32_t idx = reader.PeekIndex().value();
    ASSERT_TRUE(reader.Next(clock).ok());
    EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), spec_.total_files());
  // New epoch resets prefetch state cleanly.
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  size_t count = 0;
  while (!reader.Done()) {
    ASSERT_TRUE(reader.Next(clock).ok());
    ++count;
  }
  EXPECT_EQ(count, spec_.total_files());
}

TEST_F(GroupReaderTest, ChunkReadsChargeVirtualTime) {
  Rng rng(7);
  GroupWindowReader reader(deployment_->server(0), snapshot_, 0);
  reader.StartEpoch(ChunkWiseShuffle(snapshot_, {.group_size = 4}, rng));
  Nanos t0 = clock_.now();
  ASSERT_TRUE(reader.Next(clock_).ok());
  EXPECT_GT(clock_.now(), t0);  // group load charged
  Nanos t1 = clock_.now();
  ASSERT_TRUE(reader.Next(clock_).ok());
  EXPECT_EQ(clock_.now(), t1);  // window hit: no further storage time
}

}  // namespace
}  // namespace diesel::shuffle
