// gtest listener that dumps the process-wide flight recorder when a test
// fails, so CI and chaos sweeps keep the black box next to the failure log.
// Opt-in via the environment: set DIESEL_FLIGHTREC_DIR to a writable
// directory and every failing test writes
//   $DIESEL_FLIGHTREC_DIR/<Suite>.<Name>.flightrec.json
// With the variable unset the listener is inert, so local runs stay clean.
//
// Include this header from a test's .cc file to register the listener; the
// registration is idempotent per process.
#pragma once

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"

namespace diesel::testutil {

class FlightRecorderOnFailure : public ::testing::EmptyTestEventListener {
 public:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    const char* dir = std::getenv("DIESEL_FLIGHTREC_DIR");
    if (dir == nullptr || *dir == '\0') return;
    std::string name =
        std::string(info.test_suite_name()) + "." + info.name();
    obs::Flight().Record(obs::FlightEventKind::kChaos, 0,
                         "test failure: " + name);
    // Best-effort: a failed dump must not obscure the test failure itself.
    (void)obs::Flight().DumpToFile(std::string(dir) + "/" + name +
                                   ".flightrec.json");
  }
};

inline bool RegisterFlightRecorderOnFailure() {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightRecorderOnFailure);
  return true;
}

// One registration per process, performed at static-init time of the first
// translation unit that includes this header.
inline const bool kFlightRecorderListenerRegistered =
    RegisterFlightRecorderOnFailure();

}  // namespace diesel::testutil
