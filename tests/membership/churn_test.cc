#include "membership/churn.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "tests/testutil/flightrec_listener.h"

namespace diesel::membership {
namespace {

using Kind = ChurnEvent::Kind;

/// The nightly chaos sweep exports DIESEL_CHAOS_SEED so the determinism
/// properties below are exercised across many seeds, not one golden value.
uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("DIESEL_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

std::vector<sim::NodeId> Nodes(size_t n, sim::NodeId first = 0) {
  std::vector<sim::NodeId> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = first + static_cast<sim::NodeId>(i);
  return out;
}

ChurnScheduleOptions Opts(uint64_t seed, size_t events = 8) {
  ChurnScheduleOptions o;
  o.seed = seed;
  o.events = events;
  o.min_active = 2;
  return o;
}

bool SameEvents(const std::vector<ChurnEvent>& a,
                const std::vector<ChurnEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].node != b[i].node ||
        a[i].at != b[i].at) {
      return false;
    }
  }
  return true;
}

TEST(ChurnScheduleTest, SameSeedExpandsBitIdentically) {
  uint64_t seed = ChaosSeed(7);
  ChurnSchedule a = ChurnSchedule::Generate(Opts(seed), Nodes(8), Nodes(4, 100));
  ChurnSchedule b = ChurnSchedule::Generate(Opts(seed), Nodes(8), Nodes(4, 100));
  EXPECT_FALSE(a.events().empty());
  EXPECT_TRUE(SameEvents(a.events(), b.events()));

  ChurnSchedule c =
      ChurnSchedule::Generate(Opts(seed + 1), Nodes(8), Nodes(4, 100));
  EXPECT_FALSE(SameEvents(a.events(), c.events()));
}

TEST(ChurnScheduleTest, EventsAreSortedAndExpanded) {
  uint64_t seed = ChaosSeed(11);
  ChurnScheduleOptions o = Opts(seed, 16);
  ChurnSchedule s = ChurnSchedule::Generate(o, Nodes(8), Nodes(8, 100));
  Nanos prev = 0;
  for (const ChurnEvent& e : s.events()) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
    EXPECT_NE(e.node, sim::kInvalidNode);
  }
  // Every drain announcement has its completion exactly drain_grace later,
  // and every crash (outage > 0) its recovery.
  for (size_t i = 0; i < s.events().size(); ++i) {
    const ChurnEvent& e = s.events()[i];
    if (e.kind == Kind::kDrainStart) {
      bool completed = false;
      for (const ChurnEvent& f : s.events()) {
        if (f.kind == Kind::kDrainComplete && f.node == e.node &&
            f.at == e.at + o.drain_grace) {
          completed = true;
        }
      }
      EXPECT_TRUE(completed) << "drain of n" << e.node << " never departs";
    }
    if (e.kind == Kind::kCrash) {
      bool recovered = false;
      for (const ChurnEvent& f : s.events()) {
        if (f.kind == Kind::kRecover && f.node == e.node &&
            f.at == e.at + o.crash_outage) {
          recovered = true;
        }
      }
      EXPECT_TRUE(recovered) << "crash of n" << e.node << " never recovers";
    }
  }
}

TEST(ChurnScheduleTest, ToFaultPlanMirrorsCrashWindows) {
  ChurnScheduleOptions o = Opts(ChaosSeed(3), 16);
  o.join_weight = 0;
  o.drain_weight = 0;  // crashes only
  ChurnSchedule s = ChurnSchedule::Generate(o, Nodes(8), {});
  size_t crashes = 0;
  for (const ChurnEvent& e : s.events()) {
    crashes += e.kind == Kind::kCrash ? 1 : 0;
  }
  ASSERT_GT(crashes, 0u);

  net::FaultPlan base;
  base.seed = 99;
  base.fault_detect_timeout = Micros(50);
  net::FaultPlan plan = s.ToFaultPlan(base);
  EXPECT_EQ(plan.seed, 99u);  // base fields ride through
  ASSERT_EQ(plan.node_flaps.size(), crashes);
  for (const net::NodeFlap& f : plan.node_flaps) {
    // Each flap window is exactly the crash -> recover interval.
    bool matched = false;
    for (const ChurnEvent& e : s.events()) {
      if (e.kind == Kind::kCrash && e.node == f.node && e.at == f.down_at) {
        EXPECT_EQ(f.up_at, e.at + o.crash_outage);
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(ChurnScheduleTest, ZeroOutageCrashesNeverRecover) {
  ChurnScheduleOptions o = Opts(ChaosSeed(5), 12);
  o.join_weight = 0;
  o.drain_weight = 0;
  o.crash_outage = 0;
  ChurnSchedule s = ChurnSchedule::Generate(o, Nodes(8), {});
  for (const ChurnEvent& e : s.events()) {
    EXPECT_EQ(e.kind, Kind::kCrash);
  }
  net::FaultPlan plan = s.ToFaultPlan();
  for (const net::NodeFlap& f : plan.node_flaps) {
    EXPECT_EQ(f.up_at, ~Nanos{0});  // down for good
  }
}

TEST(ChurnScheduleTest, RespectsMinActiveDuringGeneration) {
  // Crash-heavy schedule over a tiny pool: the generator must stop taking
  // nodes once the simulated active set reaches min_active.
  ChurnScheduleOptions o = Opts(ChaosSeed(13), 32);
  o.join_weight = 0;
  o.drain_weight = 1;
  o.crash_weight = 4;
  o.crash_outage = 0;  // crashes are permanent: the set only shrinks
  o.min_active = 2;
  ChurnSchedule s = ChurnSchedule::Generate(o, Nodes(4), {});
  size_t removed = 0;
  for (const ChurnEvent& e : s.events()) {
    if (e.kind == Kind::kCrash || e.kind == Kind::kDrainStart) ++removed;
  }
  EXPECT_LE(removed, 4u - o.min_active);
}

TEST(ChurnDriverTest, AppliesDueEventsInOrder) {
  ChurnScheduleOptions o = Opts(ChaosSeed(21), 8);
  ChurnSchedule s = ChurnSchedule::Generate(o, Nodes(8), Nodes(4, 100));
  ASSERT_FALSE(s.events().empty());

  MembershipTable table;
  table.Bootstrap(Nodes(8), 0);
  ChurnDriver driver(table, s);

  // Advance halfway: exactly the events with at <= midpoint have fired.
  Nanos mid = o.horizon / 2;
  size_t due = 0;
  for (const ChurnEvent& e : s.events()) due += e.at <= mid ? 1 : 0;
  EXPECT_EQ(driver.AdvanceTo(mid), due);
  EXPECT_EQ(driver.fired(), due);
  EXPECT_EQ(driver.AdvanceTo(mid), 0u);  // idempotent at the same time

  // Advancing past the horizon drains the schedule; the table saw one epoch
  // bump per applied (non-no-op) event and never dropped below min_active.
  driver.AdvanceTo(o.horizon + o.drain_grace + o.crash_outage);
  EXPECT_TRUE(driver.Done());
  EXPECT_EQ(driver.fired(), s.events().size());
  EXPECT_GE(table.NumActive(), o.min_active);
  EXPECT_GE(table.epoch(), 1u);
  uint64_t prev = 0;
  for (const MembershipChange& c : table.Log()) {
    EXPECT_GT(c.epoch, prev);
    prev = c.epoch;
  }
}

TEST(ChurnDriverTest, ReplayIsDeterministicAcrossTables) {
  uint64_t seed = ChaosSeed(42);
  ChurnSchedule s =
      ChurnSchedule::Generate(Opts(seed, 12), Nodes(8), Nodes(4, 100));
  MembershipTable a, b;
  a.Bootstrap(Nodes(8), 0);
  b.Bootstrap(Nodes(8), 0);
  ChurnDriver da(a, s), db(b, s);
  da.AdvanceTo(~Nanos{0});
  db.AdvanceTo(~Nanos{0});
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.ActiveNodes(), b.ActiveNodes());
  for (size_t ci = 0; ci < 512; ++ci) {
    EXPECT_EQ(a.OwnerOfChunk(ci).value(), b.OwnerOfChunk(ci).value());
  }
}

}  // namespace
}  // namespace diesel::membership
