#include "membership/membership.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace diesel::membership {
namespace {

std::vector<sim::NodeId> Nodes(size_t n, sim::NodeId first = 0) {
  std::vector<sim::NodeId> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = first + static_cast<sim::NodeId>(i);
  return out;
}

TEST(MembershipTableTest, BootstrapInstallsEpochOne) {
  MembershipTable table;
  table.Bootstrap(Nodes(4), Millis(1));
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.NumActive(), 4u);
  EXPECT_EQ(table.StateOf(2), NodeState::kActive);
  EXPECT_EQ(table.StateOf(99), NodeState::kDown);
  ASSERT_EQ(table.Log().size(), 1u);
  EXPECT_EQ(table.Log()[0].kind, ChangeKind::kBootstrap);
  EXPECT_EQ(table.Log()[0].at, Millis(1));
}

TEST(MembershipTableTest, EveryMutationBumpsEpochExactlyOnce) {
  MembershipTable table;
  table.Bootstrap(Nodes(3), 0);
  uint64_t e = table.epoch();
  EXPECT_EQ(table.Join(10, Millis(1)), e + 1);
  EXPECT_EQ(table.StartDrain(0, Millis(2)), e + 2);
  EXPECT_EQ(table.CompleteDrain(0, Millis(3)), e + 3);
  EXPECT_EQ(table.Crash(1, Millis(4)), e + 4);
  EXPECT_EQ(table.Recover(1, Millis(5)), e + 5);
  // The log is the epoch sequence, strictly increasing.
  uint64_t prev = 0;
  for (const MembershipChange& c : table.Log()) {
    EXPECT_GT(c.epoch, prev);
    prev = c.epoch;
  }
}

TEST(MembershipTableTest, InvalidTransitionsAreNoOps) {
  MembershipTable table;
  table.Bootstrap(Nodes(2), 0);
  uint64_t e = table.epoch();
  EXPECT_EQ(table.Join(0, Millis(1)), e);           // already a member
  EXPECT_EQ(table.StartDrain(50, Millis(1)), e);    // never seen
  EXPECT_EQ(table.CompleteDrain(1, Millis(1)), e);  // not draining
  EXPECT_EQ(table.Recover(1, Millis(1)), e);        // not down
  EXPECT_EQ(table.NumActive(), 2u);
}

TEST(MembershipTableTest, NeverRemovesTheLastActiveNode) {
  MembershipTable table;
  table.Bootstrap(Nodes(2), 0);
  table.Crash(0, Millis(1));
  uint64_t e = table.epoch();
  EXPECT_EQ(table.Crash(1, Millis(2)), e);       // last member stays
  EXPECT_EQ(table.StartDrain(1, Millis(2)), e);  // same for drains
  EXPECT_EQ(table.NumActive(), 1u);
  EXPECT_TRUE(table.OwnerOfChunk(7).ok());
}

TEST(MembershipTableTest, DrainingNodeStopsOwningButStaysDraining) {
  MembershipTable table;
  table.Bootstrap(Nodes(4), 0);
  table.StartDrain(2, Millis(1));
  EXPECT_EQ(table.StateOf(2), NodeState::kDraining);
  EXPECT_EQ(table.NumActive(), 3u);
  for (size_t ci = 0; ci < 500; ++ci) {
    auto owner = table.OwnerOfChunk(ci);
    ASSERT_TRUE(owner.ok());
    EXPECT_NE(owner.value(), 2u);
  }
  EXPECT_DOUBLE_EQ(table.OwnedFraction(2), 0.0);
  table.CompleteDrain(2, Millis(2));
  EXPECT_EQ(table.StateOf(2), NodeState::kDown);
}

TEST(MembershipTableTest, CrashAndRecoverRestoreOwnership) {
  MembershipTable table;
  table.Bootstrap(Nodes(4), 0);
  std::vector<sim::NodeId> before(300);
  for (size_t ci = 0; ci < before.size(); ++ci) {
    before[ci] = table.OwnerOfChunk(ci).value();
  }
  table.Crash(1, Millis(1));
  for (size_t ci = 0; ci < before.size(); ++ci) {
    EXPECT_NE(table.OwnerOfChunk(ci).value(), 1u);
  }
  table.Recover(1, Millis(2));
  // Consistent hashing: recovery restores the exact pre-crash ownership.
  for (size_t ci = 0; ci < before.size(); ++ci) {
    EXPECT_EQ(table.OwnerOfChunk(ci).value(), before[ci]);
  }
}

TEST(MembershipTableTest, JoinMovesAboutOneNthOfChunks) {
  constexpr size_t kChunks = 4096;
  for (size_t n : {8u, 32u}) {
    MembershipTable table;
    table.Bootstrap(Nodes(n), 0);
    std::vector<sim::NodeId> before(kChunks);
    for (size_t ci = 0; ci < kChunks; ++ci) {
      before[ci] = table.OwnerOfChunk(ci).value();
    }
    table.Join(static_cast<sim::NodeId>(n), Millis(1));
    size_t moved = 0;
    for (size_t ci = 0; ci < kChunks; ++ci) {
      sim::NodeId now = table.OwnerOfChunk(ci).value();
      if (now != before[ci]) {
        // Every move lands on the joiner — nothing shuffles between
        // incumbents, the defining consistent-hashing property.
        EXPECT_EQ(now, n);
        ++moved;
      }
    }
    double frac = static_cast<double>(moved) / kChunks;
    double ideal = 1.0 / static_cast<double>(n + 1);
    EXPECT_GT(frac, ideal / 4) << "n=" << n;
    EXPECT_LT(frac, ideal * 4) << "n=" << n;
  }
}

TEST(MembershipTableTest, ListenersNotifiedInSubscriptionOrder) {
  struct Recorder : MembershipListener {
    std::vector<std::pair<int, MembershipChange>>* sink = nullptr;
    int id = 0;
    void OnMembershipChange(const MembershipChange& change) override {
      sink->push_back({id, change});
    }
  };
  std::vector<std::pair<int, MembershipChange>> seen;
  Recorder a, b;
  a.sink = &seen;
  a.id = 1;
  b.sink = &seen;
  b.id = 2;
  MembershipTable table;
  table.Subscribe(&a);
  table.Subscribe(&b);
  table.Bootstrap(Nodes(2), 0);
  table.Join(5, Millis(3));
  ASSERT_EQ(seen.size(), 4u);  // (bootstrap, join) x 2 listeners
  EXPECT_EQ(seen[0].first, 1);
  EXPECT_EQ(seen[1].first, 2);
  EXPECT_EQ(seen[2].second.kind, ChangeKind::kJoin);
  EXPECT_EQ(seen[2].second.node, 5u);
  EXPECT_EQ(seen[2].second.at, Millis(3));
  // Listeners may read the table during the callback: the change is already
  // applied (checked via the join's epoch being visible).
  EXPECT_EQ(seen[3].second.epoch, table.epoch());
}

TEST(MembershipTableTest, OwnershipIsDeterministicAcrossInstances) {
  MembershipTable a, b;
  a.Bootstrap(Nodes(6), 0);
  b.Bootstrap(Nodes(6), Seconds(99.0));  // wall time plays no role
  for (size_t ci = 0; ci < 1000; ++ci) {
    EXPECT_EQ(a.OwnerOfChunk(ci).value(), b.OwnerOfChunk(ci).value());
  }
}

}  // namespace
}  // namespace diesel::membership
