// The experiment harness itself is load-bearing: every figure's numbers
// flow through DriveClosedLoop and the table printer. Pin their semantics.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "sim/device.h"

namespace diesel::bench {
namespace {

TEST(DriveClosedLoopTest, RunsExactlyOpsPerWorker) {
  std::vector<size_t> counts(5, 0);
  Nanos end = DriveClosedLoop(5, 100, [&](size_t w, sim::VirtualClock& c) {
    ++counts[w];
    c.Advance(10);
  });
  for (size_t w = 0; w < 5; ++w) EXPECT_EQ(counts[w], 100u);
  EXPECT_EQ(end, 1000u);  // each worker independently reaches 100 * 10
}

TEST(DriveClosedLoopTest, SchedulesEarliestClockFirst) {
  // One slow worker, one fast worker: the driver must interleave so that
  // the fast worker gets proportionally more turns early on — equivalently,
  // arrival times at a shared device are globally nondecreasing.
  sim::Device device({.name = "d", .channels = 1, .latency = 1,
                      .bytes_per_sec = 0});
  Nanos last_arrival = 0;
  bool monotonic = true;
  DriveClosedLoop(2, 200, [&](size_t w, sim::VirtualClock& c) {
    if (c.now() < last_arrival) monotonic = false;
    last_arrival = c.now();
    device.Serve(c.now(), 0);
    c.Advance(w == 0 ? 5 : 50);  // worker 0 is 10x faster
  });
  EXPECT_TRUE(monotonic);
}

TEST(DriveClosedLoopTest, MakespanIsSlowestWorker) {
  Nanos end = DriveClosedLoop(3, 10, [&](size_t w, sim::VirtualClock& c) {
    c.Advance((w + 1) * 100);
  });
  EXPECT_EQ(end, 10u * 300u);
}

TEST(DriveClosedLoopFromTest, StartsAllWorkersAtOffset) {
  Nanos end = DriveClosedLoopFrom(5000, 2, 3,
                                  [&](size_t, sim::VirtualClock& c) {
                                    EXPECT_GE(c.now(), 5000u);
                                    c.Advance(100);
                                  });
  EXPECT_EQ(end, 5300u);
}

TEST(DriveClosedLoopTest, ZeroWorkIsZeroTime) {
  EXPECT_EQ(DriveClosedLoop(4, 0, [](size_t, sim::VirtualClock&) {
              FAIL() << "no ops expected";
            }),
            0u);
}

TEST(FmtTest, CountFormatting) {
  EXPECT_EQ(FmtCount(999), "999");
  EXPECT_EQ(FmtCount(1500), "1.5k");
  EXPECT_EQ(FmtCount(2500000), "2.50M");
}

TEST(TableTest, PrintsAlignedWithoutCrashing) {
  Table t({"col a", "b"});
  t.AddRow({"1", "long cell value"});
  t.AddRow({"22"});  // short row tolerated
  t.Print();         // smoke: alignment logic handles ragged rows
}

}  // namespace
}  // namespace diesel::bench
