#include "dlt/distributed_task.h"

#include <gtest/gtest.h>

#include "dlt/dataset_gen.h"

namespace diesel::dlt {
namespace {

class DistributedTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);
    spec_.name = "dtask";
    spec_.num_classes = 4;
    spec_.files_per_class = 50;
    spec_.mean_file_bytes = 1024;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  std::unique_ptr<core::Deployment> deployment_;
  DatasetSpec spec_;
};

TEST_F(DistributedTaskTest, EpochDeliversEveryFileOnceViaCache) {
  DistributedTaskOptions opts;
  opts.num_nodes = 4;
  opts.io_workers_per_node = 2;
  opts.minibatch = 16;
  opts.cache.policy = cache::CachePolicy::kOneshot;
  opts.shuffle.group_size = 2;
  DistributedTrainingTask task(*deployment_, spec_.name, opts);
  ASSERT_TRUE(task.Setup().ok());

  size_t delivered = 0, batches = 0;
  auto report = task.RunEpoch([&](std::span<const Bytes> batch) {
    delivered += batch.size();
    ++batches;
    EXPECT_LE(batch.size(), opts.minibatch);
    for (const Bytes& b : batch) EXPECT_FALSE(b.empty());
    return Status::Ok();
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(delivered, spec_.total_files());
  EXPECT_EQ(report->files_read, spec_.total_files());
  EXPECT_GT(report->epoch_seconds, 0.0);
  EXPECT_GE(report->slowest_node_seconds, report->fastest_node_seconds);
  EXPECT_GT(batches, spec_.total_files() / opts.minibatch / 2);
}

TEST_F(DistributedTaskTest, MemoryConstrainedModeUsesGroupWindows) {
  DistributedTaskOptions opts;
  opts.num_nodes = 2;
  opts.io_workers_per_node = 2;
  opts.minibatch = 8;
  opts.use_task_cache = false;
  opts.shuffle.group_size = 3;
  DistributedTrainingTask task(*deployment_, spec_.name, opts);
  ASSERT_TRUE(task.Setup().ok());
  EXPECT_EQ(task.cache(), nullptr);

  size_t delivered = 0;
  auto report = task.RunEpoch([&](std::span<const Bytes> batch) {
    delivered += batch.size();
    return Status::Ok();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(delivered, spec_.total_files());
}

TEST_F(DistributedTaskTest, EpochsAdvanceTaskTimeMonotonically) {
  DistributedTaskOptions opts;
  opts.num_nodes = 2;
  opts.io_workers_per_node = 1;
  DistributedTrainingTask task(*deployment_, spec_.name, opts);
  ASSERT_TRUE(task.Setup().ok());
  auto e1 = task.RunEpoch([](std::span<const Bytes>) { return Status::Ok(); });
  auto e2 = task.RunEpoch([](std::span<const Bytes>) { return Status::Ok(); });
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->epoch, 1u);
  EXPECT_EQ(e2->epoch, 2u);
  // Second epoch is fully cached -> at least as fast as the first.
  EXPECT_LE(e2->epoch_seconds, e1->epoch_seconds * 1.05);
  EXPECT_EQ(task.epochs_run(), 2u);
}

TEST_F(DistributedTaskTest, BatchCallbackErrorAbortsEpoch) {
  DistributedTaskOptions opts;
  opts.num_nodes = 1;
  opts.io_workers_per_node = 1;
  DistributedTrainingTask task(*deployment_, spec_.name, opts);
  ASSERT_TRUE(task.Setup().ok());
  auto report = task.RunEpoch([](std::span<const Bytes>) {
    return Status::IoError("trainer crashed");
  });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError);
}

TEST_F(DistributedTaskTest, SetupValidatesShape) {
  DistributedTaskOptions opts;
  opts.num_nodes = 99;  // more than the deployment has
  DistributedTrainingTask task(*deployment_, spec_.name, opts);
  EXPECT_EQ(task.Setup().code(), StatusCode::kInvalidArgument);

  DistributedTaskOptions zero;
  zero.minibatch = 0;
  DistributedTrainingTask task2(*deployment_, spec_.name, zero);
  EXPECT_EQ(task2.Setup().code(), StatusCode::kInvalidArgument);

  DistributedTrainingTask unready(*deployment_, spec_.name, {});
  auto r = unready.RunEpoch([](std::span<const Bytes>) { return Status::Ok(); });
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace diesel::dlt
