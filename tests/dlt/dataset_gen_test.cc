#include "dlt/dataset_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace diesel::dlt {
namespace {

TEST(DatasetSpecTest, PresetsAreShapedRight) {
  DatasetSpec in = ImageNetLike(10000);
  EXPECT_EQ(in.total_files(), 10000u);
  EXPECT_EQ(in.num_classes, 100u);
  EXPECT_FALSE(in.fixed_size);

  DatasetSpec cf = CifarLike(1000);
  EXPECT_EQ(cf.num_classes, 10u);
  EXPECT_TRUE(cf.fixed_size);

  DatasetSpec oi = OpenImagesLike(60000);
  EXPECT_EQ(oi.num_classes, 600u);
  EXPECT_EQ(oi.total_files(), 60000u);
  EXPECT_EQ(oi.mean_file_bytes, 60u * 1024);
  EXPECT_FALSE(oi.fixed_size);
  // Tiny scale never rounds to zero files per class.
  EXPECT_GE(OpenImagesLike(10).files_per_class, 1u);
}

TEST(MakeFileTest, DeterministicAndVerifiable) {
  DatasetSpec spec;
  spec.files_per_class = 10;
  GeneratedFile a = MakeFile(spec, 7);
  GeneratedFile b = MakeFile(spec, 7);
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.content, b.content);
  EXPECT_TRUE(VerifyContent(spec, 7, a.content));
  EXPECT_FALSE(VerifyContent(spec, 8, a.content));
  Bytes mutated = a.content;
  mutated[0] ^= 1;
  EXPECT_FALSE(VerifyContent(spec, 7, mutated));
}

TEST(MakeFileTest, PathsAreUniqueAndClassStructured) {
  DatasetSpec spec;
  spec.num_classes = 4;
  spec.files_per_class = 25;
  std::set<std::string> paths;
  for (size_t i = 0; i < spec.total_files(); ++i) {
    std::string p = FilePath(spec, i);
    EXPECT_TRUE(paths.insert(p).second) << p;
    EXPECT_NE(p.find("/synth/train/cls"), std::string::npos);
  }
}

TEST(MakeFileTest, SizeJitterWithinBounds) {
  DatasetSpec spec;
  spec.mean_file_bytes = 10000;
  spec.files_per_class = 100;
  bool varied = false;
  size_t first = MakeFile(spec, 0).content.size();
  for (size_t i = 0; i < 50; ++i) {
    size_t n = MakeFile(spec, i).content.size();
    EXPECT_GE(n, 7500u);
    EXPECT_LE(n, 12500u);
    if (n != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(MakeFileTest, FixedSizeHasNoJitter) {
  DatasetSpec spec = CifarLike(100);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(MakeFile(spec, i).content.size(), spec.mean_file_bytes);
  }
}

TEST(ForEachFileTest, VisitsAllAndStopsOnError) {
  DatasetSpec spec;
  spec.num_classes = 2;
  spec.files_per_class = 5;
  size_t count = 0;
  ASSERT_TRUE(ForEachFile(spec, [&](const GeneratedFile&) {
                ++count;
                return Status::Ok();
              }).ok());
  EXPECT_EQ(count, 10u);

  count = 0;
  Status st = ForEachFile(spec, [&](const GeneratedFile&) {
    return ++count == 3 ? Status::IoError("stop") : Status::Ok();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(count, 3u);
}

TEST(SampleTest, EncodeDecodeRoundTrip) {
  std::vector<float> x{1.5f, -2.25f, 0.0f};
  Bytes data = EncodeSample(3, x);
  uint32_t label;
  std::vector<float> back;
  ASSERT_TRUE(DecodeSample(data, label, back).ok());
  EXPECT_EQ(label, 3u);
  EXPECT_EQ(back, x);
  EXPECT_FALSE(DecodeSample({data.data(), 5}, label, back).ok());
}

TEST(SampleTest, MakeSampleDeterministicWithCorrectLabel) {
  SampleSpec spec;
  for (size_t i = 0; i < 30; ++i) {
    Bytes a = MakeSample(spec, i);
    Bytes b = MakeSample(spec, i);
    EXPECT_EQ(a, b);
    uint32_t label;
    std::vector<float> x;
    ASSERT_TRUE(DecodeSample(a, label, x).ok());
    EXPECT_EQ(label, SampleLabel(spec, i));
    EXPECT_EQ(x.size(), spec.dims);
  }
}

TEST(SampleTest, ClassesAreSeparated) {
  // Mean pairwise distance between different-class samples should exceed
  // same-class distance (the mixture is learnable).
  SampleSpec spec;
  spec.separation = 4.0;
  auto decode = [&](size_t i) {
    uint32_t label;
    std::vector<float> x;
    EXPECT_TRUE(DecodeSample(MakeSample(spec, i), label, x).ok());
    return x;
  };
  auto dist = [](const std::vector<float>& a, const std::vector<float>& b) {
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      d += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return d;
  };
  // Samples i and i+10k share class (10 classes); i and i+1 differ.
  double same = 0, diff = 0;
  int n = 0;
  for (size_t i = 0; i < 50; ++i, ++n) {
    same += dist(decode(i), decode(i + 100));   // same class (100 % 10 == 0)
    diff += dist(decode(i), decode(i + 101));   // different class
  }
  EXPECT_LT(same / n, diff / n);
}

}  // namespace
}  // namespace diesel::dlt
