#include "dlt/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dlt/dataset_gen.h"

namespace diesel::dlt {
namespace {

std::vector<LabelledSample> MakeSet(const SampleSpec& spec, size_t n,
                                    size_t offset = 0) {
  std::vector<LabelledSample> out;
  for (size_t i = 0; i < n; ++i) {
    auto s = SoftmaxTrainer::Decode(MakeSample(spec, offset + i));
    EXPECT_TRUE(s.ok());
    out.push_back(std::move(s).value());
  }
  return out;
}

TEST(MlpTrainerTest, UntrainedIsNearChance) {
  SampleSpec spec;
  MlpTrainer mlp({});
  auto eval = MakeSet(spec, 500);
  EXPECT_LT(mlp.TopKAccuracy(eval, 1), 0.35);
  EXPECT_EQ(mlp.TopKAccuracy(eval, 10), 1.0);
}

TEST(MlpTrainerTest, LossDecreasesAndLearns) {
  SampleSpec spec;
  spec.separation = 2.0;
  MlpTrainer mlp({});
  auto train = MakeSet(spec, 2000);
  auto eval = MakeSet(spec, 500, 2000);
  Rng rng(1);
  double first_loss = mlp.TrainEpoch(train);
  double last_loss = first_loss;
  for (int e = 0; e < 8; ++e) {
    auto shuffled = train;
    rng.Shuffle(shuffled);
    last_loss = mlp.TrainEpoch(shuffled);
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_GT(mlp.TopKAccuracy(eval, 1), 0.85);
}

TEST(MlpTrainerTest, SolvesANonLinearProblemALinearModelCannot) {
  // XOR-style labels over two features: linear softmax is stuck near
  // chance; the MLP separates it.
  auto make_xor = [](size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<LabelledSample> out;
    for (size_t i = 0; i < n; ++i) {
      LabelledSample s;
      double x = rng.NextDouble() * 2 - 1;
      double y = rng.NextDouble() * 2 - 1;
      s.features = {static_cast<float>(x), static_cast<float>(y)};
      s.label = (x > 0) != (y > 0) ? 1 : 0;
      out.push_back(std::move(s));
    }
    return out;
  };
  auto train = make_xor(4000, 1);
  auto eval = make_xor(1000, 2);

  TrainerOptions lopts;
  lopts.num_classes = 2;
  lopts.dims = 2;
  lopts.learning_rate = 0.1;
  SoftmaxTrainer linear(lopts);

  MlpOptions mopts;
  mopts.num_classes = 2;
  mopts.dims = 2;
  mopts.hidden = 16;
  mopts.learning_rate = 0.1;
  MlpTrainer mlp(mopts);

  Rng rng(3);
  for (int e = 0; e < 30; ++e) {
    auto shuffled = train;
    rng.Shuffle(shuffled);
    linear.TrainEpoch(shuffled);
    mlp.TrainEpoch(shuffled);
  }
  EXPECT_LT(linear.TopKAccuracy(eval, 1), 0.65);
  EXPECT_GT(mlp.TopKAccuracy(eval, 1), 0.9);
}

TEST(MlpTrainerTest, DeterministicGivenSameData) {
  SampleSpec spec;
  auto train = MakeSet(spec, 300);
  MlpTrainer a({}), b({});
  a.TrainEpoch(train);
  b.TrainEpoch(train);
  auto eval = MakeSet(spec, 100, 300);
  EXPECT_DOUBLE_EQ(a.TopKAccuracy(eval, 1), b.TopKAccuracy(eval, 1));
}

TEST(MlpTrainerTest, BatchLossFiniteAndEmptyBatchIsZero) {
  SampleSpec spec;
  MlpTrainer mlp({});
  auto batch = MakeSet(spec, 32);
  double loss = mlp.TrainBatch(batch);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(mlp.TrainBatch({}), 0.0);
}

TEST(MlpTrainerTest, ChunkWiseOrderEquivalenceHoldsForNonLinearModel) {
  // The Fig. 13 property on the second model family: training on a
  // grouped-shuffle order matches a full shuffle within tolerance.
  SampleSpec spec;
  spec.separation = 1.0;
  auto train = MakeSet(spec, 3000);
  auto eval = MakeSet(spec, 600, 3000);

  Rng rng(11);
  MlpTrainer full({}), grouped({});
  for (int e = 0; e < 6; ++e) {
    // Full shuffle.
    auto a = train;
    rng.Shuffle(a);
    full.TrainEpoch(a);
    // Grouped shuffle: shuffle blocks of 128, then shuffle within blocks —
    // the structure chunk-wise shuffle produces.
    std::vector<size_t> block_order(train.size() / 128);
    for (size_t i = 0; i < block_order.size(); ++i) block_order[i] = i;
    rng.Shuffle(block_order);
    std::vector<LabelledSample> b;
    for (size_t blk : block_order) {
      std::vector<LabelledSample> window(
          train.begin() + static_cast<ptrdiff_t>(blk * 128),
          train.begin() + static_cast<ptrdiff_t>((blk + 1) * 128));
      rng.Shuffle(window);
      for (auto& s : window) b.push_back(std::move(s));
    }
    grouped.TrainEpoch(b);
  }
  EXPECT_NEAR(full.TopKAccuracy(eval, 1), grouped.TopKAccuracy(eval, 1),
              0.05);
}

}  // namespace
}  // namespace diesel::dlt
