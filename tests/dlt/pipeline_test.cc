#include "dlt/pipeline.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace diesel::dlt {
namespace {

// Batch reader that costs a fixed `io_ns` per batch.
BatchReadFn FixedCostReader(Nanos io_ns) {
  return [io_ns](size_t, sim::VirtualClock& w) {
    w.Advance(io_ns);
    return Status::Ok();
  };
}

TEST(TrainingPipelineTest, ComputeBoundHidesIoCompletely) {
  // 4 workers x 10ms compute, 20ms I/O per batch: steady-state I/O per
  // compute slot = 20/4 = 5ms < 10ms, so waits vanish after warmup.
  TrainingPipeline pipe({.io_workers = 4, .model = {"m", Millis(10)}});
  auto r = pipe.RunEpoch(0, 100, 0, FixedCostReader(Millis(20)));
  ASSERT_TRUE(r.ok());
  double tail_wait = 0;
  for (size_t i = 50; i < 100; ++i) tail_wait += r->data_time_s[i];
  EXPECT_NEAR(tail_wait, 0.0, 1e-9);
  // Epoch time ~ 100 x compute.
  EXPECT_NEAR(ToSeconds(r->epoch_end), 1.0, 0.15);
}

TEST(TrainingPipelineTest, IoBoundEpochTimeTracksIo) {
  // 1 worker, I/O 30ms > compute 10ms: every iteration waits ~20ms.
  TrainingPipeline pipe({.io_workers = 1, .model = {"m", Millis(10)}});
  auto r = pipe.RunEpoch(0, 50, 0, FixedCostReader(Millis(30)));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(ToSeconds(r->epoch_end), 50 * 0.030 + 0.010, 0.01);
  EXPECT_GT(r->total_data_wait_s, 50 * 0.015);
}

TEST(TrainingPipelineTest, ShuffleCostSpikesFirstIteration) {
  TrainingPipeline pipe({.io_workers = 4, .model = {"m", Millis(10)}});
  auto r = pipe.RunEpoch(0, 20, /*shuffle=*/Millis(500),
                         FixedCostReader(Millis(1)));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->data_time_s[0], 0.5);
  for (size_t i = 5; i < 20; ++i) {
    EXPECT_LT(r->data_time_s[i], r->data_time_s[0] / 10);
  }
}

TEST(TrainingPipelineTest, MoreWorkersReduceWaits) {
  auto run = [&](size_t workers) {
    TrainingPipeline pipe({.io_workers = workers, .model = {"m", Millis(10)}});
    auto r = pipe.RunEpoch(0, 100, 0, FixedCostReader(Millis(40)));
    EXPECT_TRUE(r.ok());
    return r->total_data_wait_s;
  };
  double w1 = run(1), w2 = run(2), w8 = run(8);
  EXPECT_GT(w1, w2);
  EXPECT_GT(w2, w8);
}

TEST(TrainingPipelineTest, ReadErrorPropagates) {
  TrainingPipeline pipe({.io_workers = 2, .model = {"m", Millis(1)}});
  auto r = pipe.RunEpoch(0, 10, 0, [](size_t iter, sim::VirtualClock&) {
    return iter == 5 ? Status::IoError("boom") : Status::Ok();
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TrainingPipelineTest, ComputeTimeAccounted) {
  TrainingPipeline pipe({.io_workers = 2, .model = {"m", Millis(7)}});
  auto r = pipe.RunEpoch(0, 10, 0, FixedCostReader(0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->compute_s, 0.07, 1e-9);
  EXPECT_EQ(r->data_time_s.size(), 10u);
}

TEST(TrainingPipelineTest, PhasesSumToEpochDurationOverlapMode) {
  TrainingPipeline pipe({.io_workers = 2, .model = {"m", Millis(10)},
                         .overlap = true});
  for (Nanos start : {Nanos{0}, Seconds(3.0)}) {
    auto r = pipe.RunEpoch(start, 40, Millis(120), FixedCostReader(Millis(25)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->phases.Total(), r->epoch_end - start)
        << "every virtual ns must be charged to exactly one phase";
    EXPECT_EQ(r->phases.train, 40 * Millis(10));
    EXPECT_EQ(r->phases.shuffle, Millis(120));
    EXPECT_EQ(r->phases.other, 0u);
  }
}

TEST(TrainingPipelineTest, PhasesSumToEpochDurationSerializedMode) {
  TrainingPipeline pipe({.io_workers = 4, .model = {"m", Millis(10)},
                         .overlap = false});
  auto r = pipe.RunEpoch(Seconds(1.0), 30, Millis(40),
                         FixedCostReader(Millis(8)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->phases.Total(), r->epoch_end - Seconds(1.0));
  EXPECT_EQ(r->phases.train, 30 * Millis(10));
  EXPECT_EQ(r->phases.shuffle, Millis(40));
  EXPECT_GT(r->phases.fetch, 0u);
}

TEST(TrainingPipelineTest, ComputeBoundEpochChargesAlmostAllToTrain) {
  // When I/O hides behind compute, fetch time collapses to the warmup tail.
  TrainingPipeline pipe({.io_workers = 8, .model = {"m", Millis(10)},
                         .overlap = true});
  auto r = pipe.RunEpoch(0, 100, 0, FixedCostReader(Millis(5)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->phases.Total(), r->epoch_end);
  EXPECT_GT(static_cast<double>(r->phases.train),
            0.9 * static_cast<double>(r->phases.Total()));
}

TEST(TrainingPipelineTest, PhasesPublishToMetricsRegistry) {
  obs::MetricsSnapshot before = obs::Metrics().Snapshot();
  TrainingPipeline pipe({.io_workers = 2, .model = {"m", Millis(5)}});
  auto r = pipe.RunEpoch(0, 10, Millis(1), FixedCostReader(Millis(2)));
  ASSERT_TRUE(r.ok());
  obs::MetricsSnapshot delta = obs::Metrics().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.SumCounters("dlt.epochs"), 1u);
}

TEST(TrainingPipelineTest, StartOffsetShiftsEpochEnd) {
  TrainingPipeline pipe({.io_workers = 2, .model = {"m", Millis(5)}});
  auto a = pipe.RunEpoch(0, 10, 0, FixedCostReader(Millis(1)));
  auto b = pipe.RunEpoch(Seconds(1.0), 10, 0, FixedCostReader(Millis(1)));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(ToSeconds(b->epoch_end - a->epoch_end), 1.0, 1e-6);
}

}  // namespace
}  // namespace diesel::dlt
