#include "dlt/trainer.h"

#include <gtest/gtest.h>
#include <cmath>

#include "common/rng.h"
#include "dlt/dataset_gen.h"

namespace diesel::dlt {
namespace {

std::vector<LabelledSample> MakeTrainSet(const SampleSpec& spec, size_t n,
                                         size_t offset = 0) {
  std::vector<LabelledSample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = SoftmaxTrainer::Decode(MakeSample(spec, offset + i));
    EXPECT_TRUE(s.ok());
    out.push_back(std::move(s).value());
  }
  return out;
}

TEST(SoftmaxTrainerTest, UntrainedAccuracyNearChance) {
  SampleSpec spec;
  TrainerOptions opts;
  SoftmaxTrainer trainer(opts);
  auto eval = MakeTrainSet(spec, 500);
  double top1 = trainer.TopKAccuracy(eval, 1);
  EXPECT_LT(top1, 0.35);  // 10 classes, chance = 0.1
  double top5 = trainer.TopKAccuracy(eval, 5);
  EXPECT_GE(top5, top1);
  EXPECT_EQ(trainer.TopKAccuracy(eval, 10), 1.0);  // top-C is always a hit
}

TEST(SoftmaxTrainerTest, LossDecreasesOverEpochs) {
  SampleSpec spec;
  SoftmaxTrainer trainer({});
  auto train = MakeTrainSet(spec, 1000);
  Rng rng(1);
  double first = trainer.TrainEpoch(train);
  double last = first;
  for (int e = 0; e < 4; ++e) {
    std::vector<LabelledSample> shuffled = train;
    rng.Shuffle(shuffled);
    last = trainer.TrainEpoch(shuffled);
  }
  EXPECT_LT(last, first);
}

TEST(SoftmaxTrainerTest, LearnsSeparableMixture) {
  SampleSpec spec;
  spec.separation = 4.0;
  SoftmaxTrainer trainer({});
  auto train = MakeTrainSet(spec, 2000);
  auto held_out = MakeTrainSet(spec, 500, /*offset=*/2000);
  Rng rng(2);
  for (int e = 0; e < 6; ++e) {
    std::vector<LabelledSample> shuffled = train;
    rng.Shuffle(shuffled);
    trainer.TrainEpoch(shuffled);
  }
  EXPECT_GT(trainer.TopKAccuracy(held_out, 1), 0.9);
  EXPECT_GT(trainer.TopKAccuracy(held_out, 5), 0.99);
}

TEST(SoftmaxTrainerTest, DeterministicGivenSameData) {
  SampleSpec spec;
  auto train = MakeTrainSet(spec, 200);
  SoftmaxTrainer a({}), b({});
  a.TrainEpoch(train);
  b.TrainEpoch(train);
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(SoftmaxTrainerTest, OrderAffectsWeightsButNotQuality) {
  SampleSpec spec;
  auto train = MakeTrainSet(spec, 2000);
  auto eval = MakeTrainSet(spec, 400, 2000);
  SoftmaxTrainer fwd({}), rev({});
  std::vector<LabelledSample> reversed(train.rbegin(), train.rend());
  for (int e = 0; e < 4; ++e) {
    fwd.TrainEpoch(train);
    rev.TrainEpoch(reversed);
  }
  EXPECT_NE(fwd.weights(), rev.weights());
  EXPECT_NEAR(fwd.TopKAccuracy(eval, 1), rev.TopKAccuracy(eval, 1), 0.05);
}

TEST(SoftmaxTrainerTest, DecodeRejectsGarbage) {
  Bytes junk{1, 2, 3};
  EXPECT_FALSE(SoftmaxTrainer::Decode(junk).ok());
}

TEST(SoftmaxTrainerTest, TrainBatchReturnsFiniteLoss) {
  SampleSpec spec;
  SoftmaxTrainer trainer({});
  auto batch = MakeTrainSet(spec, 32);
  double loss = trainer.TrainBatch(batch);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(trainer.TrainBatch({}), 0.0);
}

}  // namespace
}  // namespace diesel::dlt
