// Watch-based server discovery: a client keeps its server list fresh by
// polling WatchSince on the /diesel/servers/ prefix — membership changes
// (new server, decommissioned server) arrive as ordered events.
#include <gtest/gtest.h>

#include "etcd/config_store.h"

namespace diesel::etcd {
namespace {

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : cluster_(6), fabric_(cluster_), config_(fabric_, 5) {}

  sim::Cluster cluster_;
  net::Fabric fabric_;
  ConfigStore config_;
  sim::VirtualClock clock_;
};

TEST_F(DiscoveryTest, ClientTracksMembershipThroughWatch) {
  // Bootstrap: two servers registered.
  ASSERT_TRUE(config_.Put(clock_, 1, ServerKey(0), ServerValue(1, "s")).ok());
  ASSERT_TRUE(config_.Put(clock_, 2, ServerKey(1), ServerValue(2, "s")).ok());

  // Client lists once and remembers the revision.
  auto initial = config_.List(clock_, 0, "/diesel/servers/");
  ASSERT_TRUE(initial.ok());
  ASSERT_EQ(initial->size(), 2u);
  uint64_t seen = config_.Revision();

  std::set<sim::NodeId> members;
  for (const auto& e : initial.value()) {
    members.insert(ParseServerNode(e.value).value());
  }
  EXPECT_EQ(members, (std::set<sim::NodeId>{1, 2}));

  // Quiet poll: no events.
  auto quiet = config_.WatchSince(clock_, 0, "/diesel/servers/", seen);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->empty());

  // A third server joins; one leaves; unrelated keys churn.
  ASSERT_TRUE(config_.Put(clock_, 3, ServerKey(2), ServerValue(3, "s")).ok());
  ASSERT_TRUE(config_.Put(clock_, 0, "/diesel/datasets/x", "meta").ok());
  ASSERT_TRUE(config_.Delete(clock_, 1, ServerKey(0)).ok());

  auto events = config_.WatchSince(clock_, 0, "/diesel/servers/", seen);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  for (const ConfigEvent& ev : events.value()) {
    if (ev.type == ConfigEvent::Type::kPut) {
      members.insert(ParseServerNode(ev.entry.value).value());
    } else {
      members.erase(ParseServerNode(ev.entry.value).value());
    }
    seen = ev.entry.mod_revision;
  }
  EXPECT_EQ(members, (std::set<sim::NodeId>{2, 3}));

  // Resuming from the last applied revision sees nothing new.
  auto resumed = config_.WatchSince(clock_, 0, "/diesel/servers/", seen);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->empty());
}

TEST_F(DiscoveryTest, CasElectsExactlyOneHousekeeper) {
  // Two servers race to own housekeeping for a dataset; CAS picks one.
  auto a = config_.CompareAndSwap(clock_, 1, "/diesel/housekeeper/ds",
                                  "server-1", 0);
  auto b = config_.CompareAndSwap(clock_, 2, "/diesel/housekeeper/ds",
                                  "server-2", 0);
  EXPECT_NE(a.ok(), b.ok());
  auto owner = config_.Get(clock_, 0, "/diesel/housekeeper/ds");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(owner->value, a.ok() ? "server-1" : "server-2");
}

}  // namespace
}  // namespace diesel::etcd
