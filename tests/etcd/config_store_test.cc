#include "etcd/config_store.h"

#include <gtest/gtest.h>

namespace diesel::etcd {
namespace {

class ConfigStoreTest : public ::testing::Test {
 protected:
  ConfigStoreTest() : cluster_(3), fabric_(cluster_), store_(fabric_, 2) {}
  sim::Cluster cluster_;
  net::Fabric fabric_;
  ConfigStore store_;
  sim::VirtualClock clock_;
};

TEST_F(ConfigStoreTest, PutGetDelete) {
  auto rev = store_.Put(clock_, 0, "/cfg/a", "1");
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(*rev, 1u);
  auto entry = store_.Get(clock_, 0, "/cfg/a");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->value, "1");
  EXPECT_EQ(entry->create_revision, 1u);
  EXPECT_EQ(entry->mod_revision, 1u);
  auto del = store_.Delete(clock_, 0, "/cfg/a");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*del, 2u);
  EXPECT_TRUE(store_.Get(clock_, 0, "/cfg/a").status().IsNotFound());
  EXPECT_TRUE(store_.Delete(clock_, 0, "/cfg/a").status().IsNotFound());
}

TEST_F(ConfigStoreTest, RevisionsMonotonicAndModTracked) {
  ASSERT_TRUE(store_.Put(clock_, 0, "/k", "v1").ok());
  ASSERT_TRUE(store_.Put(clock_, 0, "/k", "v2").ok());
  auto entry = store_.Get(clock_, 0, "/k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->create_revision, 1u);
  EXPECT_EQ(entry->mod_revision, 2u);
  EXPECT_EQ(store_.Revision(), 2u);
}

TEST_F(ConfigStoreTest, ListByPrefixIsSorted) {
  ASSERT_TRUE(store_.Put(clock_, 0, "/s/2", "b").ok());
  ASSERT_TRUE(store_.Put(clock_, 0, "/s/1", "a").ok());
  ASSERT_TRUE(store_.Put(clock_, 0, "/t/9", "x").ok());
  auto entries = store_.List(clock_, 0, "/s/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].key, "/s/1");
  EXPECT_EQ((*entries)[1].key, "/s/2");
}

TEST_F(ConfigStoreTest, CompareAndSwapEnforcesRevision) {
  // CAS create (expected 0).
  auto r1 = store_.CompareAndSwap(clock_, 0, "/lock", "me", 0);
  ASSERT_TRUE(r1.ok());
  // Second create attempt loses.
  auto r2 = store_.CompareAndSwap(clock_, 1, "/lock", "you", 0);
  EXPECT_EQ(r2.status().code(), StatusCode::kFailedPrecondition);
  // Update with the right revision wins.
  auto r3 = store_.CompareAndSwap(clock_, 0, "/lock", "me2", *r1);
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(*r3, *r1);
  EXPECT_EQ(store_.Get(clock_, 0, "/lock")->value, "me2");
}

TEST_F(ConfigStoreTest, WatchSinceReturnsOrderedEvents) {
  ASSERT_TRUE(store_.Put(clock_, 0, "/w/a", "1").ok());
  uint64_t mark = store_.Revision();
  ASSERT_TRUE(store_.Put(clock_, 0, "/w/b", "2").ok());
  ASSERT_TRUE(store_.Delete(clock_, 0, "/w/a").ok());
  ASSERT_TRUE(store_.Put(clock_, 0, "/other", "x").ok());

  auto events = store_.WatchSince(clock_, 1, "/w/", mark);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].type, ConfigEvent::Type::kPut);
  EXPECT_EQ((*events)[0].entry.key, "/w/b");
  EXPECT_EQ((*events)[1].type, ConfigEvent::Type::kDelete);
  EXPECT_EQ((*events)[1].entry.key, "/w/a");
  EXPECT_LT((*events)[0].entry.mod_revision, (*events)[1].entry.mod_revision);
}

TEST_F(ConfigStoreTest, CompactedWatchIsOutOfRange) {
  ASSERT_TRUE(store_.Put(clock_, 0, "/c/1", "a").ok());
  ASSERT_TRUE(store_.Put(clock_, 0, "/c/2", "b").ok());
  store_.Compact(2);
  EXPECT_EQ(store_.WatchSince(clock_, 0, "/c/", 1).status().code(),
            StatusCode::kOutOfRange);
  // Watching from the compaction floor onward still works.
  ASSERT_TRUE(store_.Put(clock_, 0, "/c/3", "c").ok());
  auto events = store_.WatchSince(clock_, 0, "/c/", 2);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 1u);
}

TEST_F(ConfigStoreTest, OpsChargeVirtualTime) {
  Nanos before = clock_.now();
  ASSERT_TRUE(store_.Put(clock_, 0, "/t", "v").ok());
  EXPECT_GT(clock_.now(), before);
}

TEST_F(ConfigStoreTest, DownNodeMakesStoreUnavailable) {
  cluster_.FailNode(2);
  EXPECT_TRUE(store_.Put(clock_, 0, "/x", "v").status().IsUnavailable());
}

TEST(ServerAdvertisementTest, RoundTrip) {
  std::string value = ServerValue(17, "diesel-server");
  auto node = ParseServerNode(value);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 17u);
  EXPECT_FALSE(ParseServerNode("garbage").ok());
  EXPECT_FALSE(ParseServerNode("x;info").ok());
}

TEST(ServerAdvertisementTest, KeysAreSortable) {
  EXPECT_LT(ServerKey(1), ServerKey(2));
  EXPECT_LT(ServerKey(9), ServerKey(10));  // zero-padded
}

}  // namespace
}  // namespace diesel::etcd
