#include "kv/cluster.h"

#include <gtest/gtest.h>

#include "sim/node.h"

namespace diesel::kv {
namespace {

class KvClusterTest : public ::testing::Test {
 protected:
  KvClusterTest() : cluster_(6), fabric_(cluster_) {
    KvClusterOptions opts;
    opts.nodes = {2, 3, 4, 5};
    opts.shards_per_node = 4;
    kv_ = std::make_unique<KvCluster>(fabric_, opts);
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<KvCluster> kv_;
  sim::VirtualClock clock_;
};

TEST_F(KvClusterTest, ShardLayoutMatchesOptions) {
  EXPECT_EQ(kv_->NumShards(), 16u);
  EXPECT_EQ(kv_->ShardNode(0), 2u);
  EXPECT_EQ(kv_->ShardNode(15), 5u);
}

TEST_F(KvClusterTest, PutGetDeleteRoundTrip) {
  ASSERT_TRUE(kv_->Put(clock_, 0, "alpha", "1").ok());
  auto v = kv_->Get(clock_, 0, "alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  ASSERT_TRUE(kv_->Delete(clock_, 0, "alpha").ok());
  EXPECT_TRUE(kv_->Get(clock_, 0, "alpha").status().IsNotFound());
  EXPECT_TRUE(kv_->Delete(clock_, 0, "alpha").IsNotFound());
}

TEST_F(KvClusterTest, GetMissingIsNotFound) {
  EXPECT_TRUE(kv_->Get(clock_, 0, "ghost").status().IsNotFound());
}

TEST_F(KvClusterTest, PutOverwrites) {
  ASSERT_TRUE(kv_->Put(clock_, 0, "k", "old").ok());
  ASSERT_TRUE(kv_->Put(clock_, 0, "k", "new").ok());
  EXPECT_EQ(kv_->Get(clock_, 0, "k").value(), "new");
  EXPECT_EQ(kv_->TotalKeys(), 1u);
}

TEST_F(KvClusterTest, BatchPutStoresEverything) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 200; ++i) {
    batch.emplace_back("key" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(kv_->BatchPut(clock_, 0, batch).ok());
  EXPECT_EQ(kv_->TotalKeys(), 200u);
  EXPECT_EQ(kv_->Get(clock_, 0, "key123").value(), "v123");
}

TEST_F(KvClusterTest, BatchPutIsFasterThanSingles) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 100; ++i) {
    batch.emplace_back("b" + std::to_string(i), "v");
  }
  sim::VirtualClock batched, single;
  ASSERT_TRUE(kv_->BatchPut(batched, 0, batch).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv_->Put(single, 1, "s" + std::to_string(i), "v").ok());
  }
  EXPECT_LT(batched.now(), single.now());
}

TEST_F(KvClusterTest, PScanReturnsSortedPrefixMatches) {
  ASSERT_TRUE(kv_->Put(clock_, 0, "p/c", "3").ok());
  ASSERT_TRUE(kv_->Put(clock_, 0, "p/a", "1").ok());
  ASSERT_TRUE(kv_->Put(clock_, 0, "p/b", "2").ok());
  ASSERT_TRUE(kv_->Put(clock_, 0, "q/x", "9").ok());
  auto scan = kv_->PScan(clock_, 0, "p/");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);
  EXPECT_EQ((*scan)[0].key, "p/a");
  EXPECT_EQ((*scan)[1].key, "p/b");
  EXPECT_EQ((*scan)[2].key, "p/c");
}

TEST_F(KvClusterTest, PScanHonoursLimit) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kv_->Put(clock_, 0, "lim/" + std::to_string(i), "v").ok());
  }
  auto scan = kv_->PScan(clock_, 0, "lim/", 10);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 10u);
}

TEST_F(KvClusterTest, FailedShardReturnsUnavailable) {
  // Find a key owned by shard 5 deterministically.
  std::string key;
  for (int i = 0;; ++i) {
    key = "probe" + std::to_string(i);
    if (kv_->OwnerShard(key) == 5) break;
  }
  ASSERT_TRUE(kv_->Put(clock_, 0, key, "v").ok());
  kv_->FailShard(5);
  EXPECT_TRUE(kv_->Get(clock_, 0, key).status().IsUnavailable());
  EXPECT_TRUE(kv_->Put(clock_, 0, key, "v2").IsUnavailable());
  // Restart: shard is empty (in-memory store).
  kv_->RestartShard(5);
  EXPECT_TRUE(kv_->Get(clock_, 0, key).status().IsNotFound());
}

TEST_F(KvClusterTest, FailShardsOnNodeKillsOnlyThatNodesShards) {
  kv_->FailShardsOnNode(2);
  size_t down = 0;
  for (uint32_t s = 0; s < kv_->NumShards(); ++s) {
    if (!kv_->shard(s).up()) {
      ++down;
      EXPECT_EQ(kv_->ShardNode(s), 2u);
    }
  }
  EXPECT_EQ(down, 4u);
}

TEST_F(KvClusterTest, PScanFailsWhenAnyShardDown) {
  kv_->FailShard(0);
  EXPECT_TRUE(kv_->PScan(clock_, 0, "x").status().IsUnavailable());
}

TEST_F(KvClusterTest, OperationsChargeVirtualTime) {
  Nanos before = clock_.now();
  ASSERT_TRUE(kv_->Put(clock_, 0, "timed", "v").ok());
  EXPECT_GT(clock_.now(), before);
}

TEST_F(KvClusterTest, KeysSpreadAcrossShards) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(kv_->Put(clock_, 0, "spread" + std::to_string(i), "v").ok());
  }
  size_t nonempty = 0;
  for (uint32_t s = 0; s < kv_->NumShards(); ++s) {
    if (kv_->shard(s).NumKeys() > 0) ++nonempty;
  }
  EXPECT_GE(nonempty, 12u);  // near-uniform over 16 shards
}

}  // namespace
}  // namespace diesel::kv
