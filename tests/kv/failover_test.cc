// KV-tier fault tolerance: node-level shard failure + recovery, and the
// per-op retry policy riding out transient flaps of a KV machine.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "kv/cluster.h"
#include "net/fault_injector.h"

namespace diesel::kv {
namespace {

class KvFailoverTest : public ::testing::Test {
 protected:
  KvFailoverTest() : cluster_(6), fabric_(cluster_) {
    KvClusterOptions opts;
    opts.nodes = {2, 3, 4, 5};
    opts.shards_per_node = 4;
    kv_ = std::make_unique<KvCluster>(fabric_, opts);
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<KvCluster> kv_;
  sim::VirtualClock clock_;
};

TEST_F(KvFailoverTest, RestartShardsOnNodeBringsShardsBackEmpty) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv_->Put(clock_, 0, "k" + std::to_string(i), "v").ok());
  }
  size_t before = kv_->TotalKeys();
  ASSERT_EQ(before, 100u);

  kv_->FailShardsOnNode(3);
  size_t down = 0;
  for (uint32_t s = 0; s < kv_->NumShards(); ++s) {
    if (!kv_->shard(s).up()) ++down;
  }
  ASSERT_EQ(down, 4u);

  kv_->RestartShardsOnNode(3);
  for (uint32_t s = 0; s < kv_->NumShards(); ++s) {
    EXPECT_TRUE(kv_->shard(s).up());
  }
  // Restarted shards come back empty: only the other 12 shards kept keys.
  EXPECT_LT(kv_->TotalKeys(), before);
  // All ops work again (NotFound for lost keys is a semantic answer).
  for (int i = 0; i < 100; ++i) {
    auto v = kv_->Get(clock_, 0, "k" + std::to_string(i));
    EXPECT_TRUE(v.ok() || v.status().IsNotFound());
  }
}

TEST_F(KvFailoverTest, RetryRidesOutKvNodeFlap) {
  ASSERT_TRUE(kv_->Put(clock_, 0, "stable", "v").ok());

  // Flap KV node 2 for 2ms; the default retry budget is far larger.
  net::FaultPlan plan;
  plan.node_flaps.push_back(
      {.node = 2, .down_at = clock_.now(), .up_at = clock_.now() + Millis(2)});
  plan.fault_detect_timeout = Micros(200);
  net::FaultInjector inj(plan);
  fabric_.set_fault_injector(&inj);

  // Every op eventually lands even though early attempts are rejected.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kv_->Put(clock_, 0, "flap" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto v = kv_->Get(clock_, 0, "flap" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
  }
  EXPECT_GT(inj.stats().down_node_rejections, 0u);
  fabric_.set_fault_injector(nullptr);
}

TEST_F(KvFailoverTest, RetryRidesOutRpcDrops) {
  net::FaultPlan plan;
  plan.seed = 7;
  plan.rpc_drop_prob = 0.2;  // every 5th RPC lost, on average
  plan.fault_detect_timeout = Micros(100);
  net::FaultInjector inj(plan);
  fabric_.set_fault_injector(&inj);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv_->Put(clock_, 0, "drop" + std::to_string(i),
                         "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto v = kv_->Get(clock_, 0, "drop" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  EXPECT_GT(inj.stats().rpc_drops, 0u);
  fabric_.set_fault_injector(nullptr);
}

TEST_F(KvFailoverTest, BatchPutSurvivesDropsWithFullPayload) {
  net::FaultPlan plan;
  plan.seed = 11;
  plan.rpc_drop_prob = 0.3;
  plan.fault_detect_timeout = Micros(100);
  net::FaultInjector inj(plan);
  fabric_.set_fault_injector(&inj);

  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 200; ++i) {
    batch.emplace_back("batch" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(kv_->BatchPut(clock_, 0, batch).ok());
  fabric_.set_fault_injector(nullptr);
  // A dropped-then-retried shard RPC must re-send real data, not
  // moved-from empty strings.
  EXPECT_EQ(kv_->TotalKeys(), 200u);
  EXPECT_EQ(kv_->Get(clock_, 0, "batch150").value(), "v150");
}

TEST_F(KvFailoverTest, PermanentShardFailureStillSurfacesUnavailable) {
  std::string key;
  for (int i = 0;; ++i) {
    key = "probe" + std::to_string(i);
    if (kv_->OwnerShard(key) == 5) break;
  }
  kv_->FailShard(5);
  Nanos before = clock_.now();
  EXPECT_TRUE(kv_->Get(clock_, 0, key).status().IsUnavailable());
  // The retry policy charged backoff time before giving up.
  EXPECT_GT(clock_.now(), before);
}

// Full-stack recovery: lose a KV node's shards mid-lifecycle, restart them
// empty, redrive the server's metadata recovery from chunk headers, and
// verify clients read everything as before.
TEST(KvNodeRecoveryTest, ServerRecoversMetadataAfterKvNodeLoss) {
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 2;
  core::Deployment dep(dopts);

  dlt::DatasetSpec spec;
  spec.name = "kvloss";
  spec.num_classes = 2;
  spec.files_per_class = 30;
  spec.mean_file_bytes = 1024;

  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());

  auto reader = dep.MakeClient(1, 0, spec.name);
  auto pre = reader->Get(dlt::FilePath(spec, 0));
  ASSERT_TRUE(pre.ok());

  // Machine crash on the first KV node: its shards lose everything.
  sim::NodeId victim = dep.kv_node(0);
  dep.kv().FailShardsOnNode(victim);
  dep.kv().RestartShardsOnNode(victim);

  // Some keys are gone until the server redrives recovery from the chunks.
  sim::VirtualClock sclock;
  auto stats = dep.server(0).RecoverMetadata(sclock, spec.name, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->chunks_scanned, 0u);

  for (size_t i = 0; i < spec.total_files(); ++i) {
    auto content = reader->Get(dlt::FilePath(spec, i));
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec, i, content.value())) << i;
  }
}

}  // namespace
}  // namespace diesel::kv
