#include <gtest/gtest.h>

#include "kv/cluster.h"
#include "sim/node.h"

namespace diesel::kv {
namespace {

class MGetTest : public ::testing::Test {
 protected:
  MGetTest() : cluster_(5), fabric_(cluster_) {
    KvClusterOptions opts;
    opts.nodes = {1, 2, 3, 4};
    kv_ = std::make_unique<KvCluster>(fabric_, opts);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(kv_->Put(clock_, 0, "k" + std::to_string(i),
                           "v" + std::to_string(i)).ok());
    }
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<KvCluster> kv_;
  sim::VirtualClock clock_;
};

TEST_F(MGetTest, ResultsAlignWithKeys) {
  std::vector<std::string> keys{"k5", "k99", "missing", "k0", "k5"};
  auto values = kv_->MGet(clock_, 0, keys);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), keys.size());
  EXPECT_EQ((*values)[0], "v5");
  EXPECT_EQ((*values)[1], "v99");
  EXPECT_FALSE((*values)[2].has_value());
  EXPECT_EQ((*values)[3], "v0");
  EXPECT_EQ((*values)[4], "v5");  // duplicates allowed
}

TEST_F(MGetTest, EmptyKeyListIsNoop) {
  Nanos before = clock_.now();
  auto values = kv_->MGet(clock_, 0, {});
  ASSERT_TRUE(values.ok());
  EXPECT_TRUE(values->empty());
  EXPECT_EQ(clock_.now(), before);  // no RPCs issued
}

TEST_F(MGetTest, BatchedGetIsFasterThanSingles) {
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  sim::VirtualClock batched, single;
  ASSERT_TRUE(kv_->MGet(batched, 0, keys).ok());
  for (const auto& k : keys) {
    ASSERT_TRUE(kv_->Get(single, 0, k).ok());
  }
  EXPECT_LT(batched.now(), single.now() / 2);
}

TEST_F(MGetTest, DownShardFailsOnlyBatchesTouchingIt) {
  // Find one key on the shard we will kill and one elsewhere. With 16
  // shards and a balanced ring, both exist among a few hundred probes.
  std::string victim, live;
  for (int i = 0; i < 1000 && (victim.empty() || live.empty()); ++i) {
    std::string key = "probe" + std::to_string(i);
    if (kv_->OwnerShard(key) == 7) {
      if (victim.empty()) victim = key;
    } else if (live.empty()) {
      live = key;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_FALSE(live.empty());
  ASSERT_TRUE(kv_->Put(clock_, 0, live, "alive").ok());

  kv_->FailShard(7);
  EXPECT_TRUE(kv_->MGet(clock_, 0, {live, victim}).status().IsUnavailable());
  auto good = kv_->MGet(clock_, 0, {live});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ((*good)[0], "alive");
}

}  // namespace
}  // namespace diesel::kv
