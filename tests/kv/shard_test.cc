#include "kv/shard.h"

#include <gtest/gtest.h>

#include "sim/calibration.h"

namespace diesel::kv {
namespace {

Shard MakeShard() { return Shard(0, sim::RedisShardSpec("t")); }

TEST(ShardTest, PutGetDelete) {
  Shard s = MakeShard();
  EXPECT_TRUE(s.Put("k", "v").ok());
  EXPECT_EQ(s.Get("k").value(), "v");
  EXPECT_TRUE(s.Delete("k").ok());
  EXPECT_TRUE(s.Get("k").status().IsNotFound());
}

TEST(ShardTest, ScanPrefixOrderedAndBounded) {
  Shard s = MakeShard();
  ASSERT_TRUE(s.Put("a/2", "2").ok());
  ASSERT_TRUE(s.Put("a/1", "1").ok());
  ASSERT_TRUE(s.Put("a/3", "3").ok());
  ASSERT_TRUE(s.Put("b/1", "x").ok());
  auto scan = s.Scan("a/");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);
  EXPECT_EQ((*scan)[0].key, "a/1");
  EXPECT_EQ((*scan)[2].key, "a/3");

  auto limited = s.Scan("a/", 2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 2u);
}

TEST(ShardTest, ScanEmptyPrefixReturnsAll) {
  Shard s = MakeShard();
  ASSERT_TRUE(s.Put("x", "1").ok());
  ASSERT_TRUE(s.Put("y", "2").ok());
  auto scan = s.Scan("");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 2u);
}

TEST(ShardTest, FailClearsDataAndBlocksOps) {
  Shard s = MakeShard();
  ASSERT_TRUE(s.Put("k", "v").ok());
  s.Fail();
  EXPECT_FALSE(s.up());
  EXPECT_TRUE(s.Get("k").status().IsUnavailable());
  EXPECT_TRUE(s.Put("k", "v").IsUnavailable());
  EXPECT_TRUE(s.Scan("").status().IsUnavailable());
  s.Restart();
  EXPECT_TRUE(s.up());
  EXPECT_EQ(s.NumKeys(), 0u);  // in-memory store: contents lost
  EXPECT_TRUE(s.Get("k").status().IsNotFound());
}

TEST(ShardTest, NumKeysTracksMutations) {
  Shard s = MakeShard();
  EXPECT_EQ(s.NumKeys(), 0u);
  ASSERT_TRUE(s.Put("a", "1").ok());
  ASSERT_TRUE(s.Put("a", "2").ok());
  ASSERT_TRUE(s.Put("b", "1").ok());
  EXPECT_EQ(s.NumKeys(), 2u);
  ASSERT_TRUE(s.Delete("a").ok());
  EXPECT_EQ(s.NumKeys(), 1u);
}

}  // namespace
}  // namespace diesel::kv
