#include "kv/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace diesel::kv {
namespace {

TEST(HashRingTest, AddRemoveMembers) {
  HashRing ring;
  ring.AddMember(0);
  ring.AddMember(1);
  EXPECT_EQ(ring.NumMembers(), 2u);
  ring.AddMember(1);  // idempotent
  EXPECT_EQ(ring.NumMembers(), 2u);
  ring.RemoveMember(0);
  EXPECT_EQ(ring.NumMembers(), 1u);
  EXPECT_FALSE(ring.HasMember(0));
  EXPECT_TRUE(ring.HasMember(1));
}

TEST(HashRingTest, SingleMemberOwnsEverything) {
  HashRing ring;
  ring.AddMember(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.Owner("key" + std::to_string(i)), 3u);
  }
  EXPECT_NEAR(ring.OwnedFraction(3), 1.0, 1e-9);
}

TEST(HashRingTest, OwnershipIsDeterministic) {
  HashRing a, b;
  for (uint32_t m = 0; m < 8; ++m) {
    a.AddMember(m);
    b.AddMember(m);
  }
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.Owner(key), b.Owner(key));
  }
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  HashRing ring(128);
  const uint32_t kMembers = 10;
  for (uint32_t m = 0; m < kMembers; ++m) ring.AddMember(m);
  std::map<uint32_t, int> counts;
  const int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.Owner("object-" + std::to_string(i))];
  }
  for (uint32_t m = 0; m < kMembers; ++m) {
    double share = static_cast<double>(counts[m]) / kKeys;
    EXPECT_GT(share, 0.05) << "member " << m;
    EXPECT_LT(share, 0.20) << "member " << m;
  }
}

TEST(HashRingTest, OwnedFractionsSumToOne) {
  HashRing ring(64);
  for (uint32_t m = 0; m < 5; ++m) ring.AddMember(m);
  double total = 0;
  for (uint32_t m = 0; m < 5; ++m) total += ring.OwnedFraction(m);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

// The consistent-hashing property: removing one member only remaps the keys
// it owned; every other key keeps its owner.
TEST(HashRingTest, PropertyRemovalOnlyRemapsVictimKeys) {
  HashRing ring(64);
  for (uint32_t m = 0; m < 8; ++m) ring.AddMember(m);
  std::map<std::string, uint32_t> before;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "file" + std::to_string(i);
    before[key] = ring.Owner(key);
  }
  const uint32_t kVictim = 3;
  ring.RemoveMember(kVictim);
  for (const auto& [key, owner] : before) {
    uint32_t now = ring.Owner(key);
    if (owner == kVictim) {
      EXPECT_NE(now, kVictim);
    } else {
      EXPECT_EQ(now, owner) << key;
    }
  }
}

TEST(HashRingTest, ReAddingMemberRestoresOwnership) {
  HashRing ring(64);
  for (uint32_t m = 0; m < 4; ++m) ring.AddMember(m);
  std::map<std::string, uint32_t> before;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k" + std::to_string(i);
    before[key] = ring.Owner(key);
  }
  ring.RemoveMember(2);
  ring.AddMember(2);
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.Owner(key), owner) << key;
  }
}

}  // namespace
}  // namespace diesel::kv
