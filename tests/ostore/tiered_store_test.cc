#include "ostore/tiered_store.h"

#include <gtest/gtest.h>

#include "ostore/mem_store.h"

namespace diesel::ostore {
namespace {

class TieredStoreTest : public ::testing::Test {
 protected:
  TieredStoreTest() : tiered_(&fast_, &slow_, /*capacity=*/0) {}
  MemStore fast_;
  MemStore slow_;
  TieredStore tiered_;
  sim::VirtualClock clock_;
};

TEST_F(TieredStoreTest, WritesGoToSlowTierOnly) {
  ASSERT_TRUE(tiered_.Put(clock_, 0, "k", Bytes(10, 1)).ok());
  EXPECT_TRUE(slow_.Contains("k"));
  EXPECT_FALSE(fast_.Contains("k"));
}

TEST_F(TieredStoreTest, FirstReadMissesThenPromotes) {
  ASSERT_TRUE(tiered_.Put(clock_, 0, "k", Bytes(10, 1)).ok());
  ASSERT_TRUE(tiered_.Get(clock_, 0, "k").ok());
  auto stats = tiered_.stats();
  EXPECT_EQ(stats.slow_hits, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_TRUE(fast_.Contains("k"));

  ASSERT_TRUE(tiered_.Get(clock_, 0, "k").ok());
  EXPECT_EQ(tiered_.stats().fast_hits, 1u);
}

TEST_F(TieredStoreTest, RangeMissPromotesWholeObject) {
  Bytes data(100);
  for (int i = 0; i < 100; ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(tiered_.Put(clock_, 0, "k", data).ok());
  auto r = tiered_.GetRange(clock_, 0, "k", 10, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Bytes({10, 11, 12, 13, 14}));
  // Chunk-granular server cache: whole object promoted on a range miss.
  EXPECT_TRUE(fast_.Contains("k"));
  EXPECT_EQ(fast_.Size(clock_, 0, "k").value(), 100u);
}

TEST_F(TieredStoreTest, CapacityBoundEvictsFifo) {
  TieredStore small(&fast_, &slow_, /*capacity=*/250);
  ASSERT_TRUE(small.Put(clock_, 0, "a", Bytes(100, 1)).ok());
  ASSERT_TRUE(small.Put(clock_, 0, "b", Bytes(100, 2)).ok());
  ASSERT_TRUE(small.Put(clock_, 0, "c", Bytes(100, 3)).ok());
  ASSERT_TRUE(small.Get(clock_, 0, "a").ok());
  ASSERT_TRUE(small.Get(clock_, 0, "b").ok());
  EXPECT_TRUE(fast_.Contains("a"));
  EXPECT_TRUE(fast_.Contains("b"));
  // Third promotion evicts the first-in object ("a").
  ASSERT_TRUE(small.Get(clock_, 0, "c").ok());
  EXPECT_FALSE(fast_.Contains("a"));
  EXPECT_TRUE(fast_.Contains("b"));
  EXPECT_TRUE(fast_.Contains("c"));
  EXPECT_EQ(small.stats().evictions, 1u);
}

TEST_F(TieredStoreTest, OversizedObjectIsNotPromoted) {
  TieredStore small(&fast_, &slow_, /*capacity=*/50);
  ASSERT_TRUE(small.Put(clock_, 0, "big", Bytes(100, 1)).ok());
  ASSERT_TRUE(small.Get(clock_, 0, "big").ok());
  EXPECT_FALSE(fast_.Contains("big"));
}

TEST_F(TieredStoreTest, DeleteDropsBothTiers) {
  ASSERT_TRUE(tiered_.Put(clock_, 0, "k", Bytes(10, 1)).ok());
  ASSERT_TRUE(tiered_.Get(clock_, 0, "k").ok());  // promote
  ASSERT_TRUE(tiered_.Delete(clock_, 0, "k").ok());
  EXPECT_FALSE(fast_.Contains("k"));
  EXPECT_FALSE(slow_.Contains("k"));
}

TEST_F(TieredStoreTest, ListAndSizeComeFromSlowTier) {
  ASSERT_TRUE(tiered_.Put(clock_, 0, "x/1", Bytes(5, 1)).ok());
  ASSERT_TRUE(tiered_.Put(clock_, 0, "x/2", Bytes(6, 1)).ok());
  auto keys = tiered_.List(clock_, 0, "x/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);
  EXPECT_EQ(tiered_.Size(clock_, 0, "x/2").value(), 6u);
  EXPECT_EQ(tiered_.NumObjects(), 2u);
}

TEST_F(TieredStoreTest, MissOnMissingKeyStaysNotFound) {
  EXPECT_TRUE(tiered_.Get(clock_, 0, "ghost").status().IsNotFound());
  EXPECT_EQ(tiered_.stats().promotions, 0u);
}

}  // namespace
}  // namespace diesel::ostore
