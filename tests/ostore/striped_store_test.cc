#include "ostore/striped_store.h"

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "ostore/mem_store.h"
#include "ostore/modeled_store.h"
#include "sim/calibration.h"

namespace diesel::ostore {
namespace {

class StripedStoreTest : public ::testing::Test {
 protected:
  StripedStoreTest() {
    for (int i = 0; i < 4; ++i) {
      backings_.push_back(std::make_unique<MemStore>());
      raw_.push_back(backings_.back().get());
    }
    striped_ = std::make_unique<StripedStore>(raw_);
  }

  std::vector<std::unique_ptr<MemStore>> backings_;
  std::vector<ObjectStore*> raw_;
  std::unique_ptr<StripedStore> striped_;
  sim::VirtualClock clock_;
};

TEST_F(StripedStoreTest, RoundTripAndPlacementStable) {
  for (int i = 0; i < 100; ++i) {
    std::string key = "obj" + std::to_string(i);
    ASSERT_TRUE(striped_->Put(clock_, 0, key, Bytes(10, uint8_t(i))).ok());
    EXPECT_EQ(striped_->OwnerOf(key), striped_->OwnerOf(key));
    auto got = striped_->Get(clock_, 0, key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->front(), uint8_t(i));
  }
  EXPECT_EQ(striped_->NumObjects(), 100u);
  EXPECT_EQ(striped_->TotalBytes(), 1000u);
}

TEST_F(StripedStoreTest, ObjectsSpreadAcrossGateways) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(striped_->Put(clock_, 0, "k" + std::to_string(i),
                              Bytes(1, 0)).ok());
  }
  size_t nonempty = 0;
  for (auto& b : backings_) {
    if (b->NumObjects() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4u);
}

TEST_F(StripedStoreTest, ListMergesSortedAcrossGateways) {
  for (int i = 0; i < 50; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "p/%03d", i);
    ASSERT_TRUE(striped_->Put(clock_, 0, buf, Bytes(1, 0)).ok());
  }
  ASSERT_TRUE(striped_->Put(clock_, 0, "q/x", Bytes(1, 0)).ok());
  auto keys = striped_->List(clock_, 0, "p/");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 50u);
  EXPECT_TRUE(std::is_sorted(keys->begin(), keys->end()));
}

TEST_F(StripedStoreTest, DeleteAndRangeRouteToOwner) {
  Bytes data(100);
  for (int i = 0; i < 100; ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(striped_->Put(clock_, 0, "r", data).ok());
  auto range = striped_->GetRange(clock_, 0, "r", 50, 10);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->front(), 50);
  EXPECT_EQ(striped_->Size(clock_, 0, "r").value(), 100u);
  ASSERT_TRUE(striped_->Delete(clock_, 0, "r").ok());
  EXPECT_FALSE(striped_->Contains("r"));
}

TEST(StripedModeledTest, AggregateBandwidthScalesWithGateways) {
  // Two deployments: 1 gateway vs 4 gateways; 64 closed-loop readers of 4MB
  // objects saturate a single gateway's 16 channels, so striping must lift
  // aggregate throughput substantially.
  auto measure = [](size_t gateways) {
    // 4 client nodes so the client-side NIC is not the bottleneck.
    sim::Cluster cluster(4 + gateways);
    net::Fabric fabric(cluster);
    std::vector<std::unique_ptr<MemStore>> backings;
    std::vector<std::unique_ptr<ModeledStore>> modeled;
    std::vector<ObjectStore*> raw;
    for (size_t g = 0; g < gateways; ++g) {
      backings.push_back(std::make_unique<MemStore>());
      modeled.push_back(std::make_unique<ModeledStore>(
          fabric, static_cast<sim::NodeId>(4 + g), sim::SsdClusterSpec(),
          backings.back().get()));
      raw.push_back(modeled.back().get());
    }
    StripedStore striped(raw);
    sim::VirtualClock setup;
    Bytes blob(4 << 20, 1);
    for (int i = 0; i < 32; ++i) {
      // Write to backing directly (placement via striped) at zero virtual
      // cost is unnecessary; timing reset below.
      if (!striped.Put(setup, 0, "o" + std::to_string(i), blob).ok()) abort();
    }
    for (auto& m : modeled) {
      m->device().Reset();
      m->write_device().Reset();
    }
    cluster.ResetDevices();
    std::vector<sim::VirtualClock> clocks(64);
    for (int round = 0; round < 2; ++round) {
      for (auto& c : clocks) {
        size_t idx = static_cast<size_t>(&c - clocks.data());
        size_t pick = (round * 7 + idx) % 32;
        auto r = striped.Get(c, static_cast<sim::NodeId>(idx % 4),
                             "o" + std::to_string(pick));
        if (!r.ok()) abort();
      }
    }
    Nanos end = 0;
    for (auto& c : clocks) end = std::max(end, c.now());
    return 64 * 2 * (4.0 * (1 << 20)) / ToSeconds(end);
  };
  double one = measure(1);
  double four = measure(4);
  EXPECT_GT(four, 2.0 * one);
}

}  // namespace
}  // namespace diesel::ostore
