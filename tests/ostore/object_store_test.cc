// Conformance suite run against every ObjectStore implementation
// (typed tests), plus implementation-specific checks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>

#include "ostore/dir_store.h"
#include "ostore/mem_store.h"
#include "ostore/modeled_store.h"
#include "sim/calibration.h"

namespace diesel::ostore {
namespace {

Bytes Blob(std::initializer_list<uint8_t> v) { return Bytes(v); }

// ---- shared conformance fixture -------------------------------------------

struct MemFactory {
  static std::unique_ptr<ObjectStore> Make() {
    return std::make_unique<MemStore>();
  }
};

struct DirFactory {
  static std::unique_ptr<ObjectStore> Make() {
    // ctest runs each test in its own process, often in parallel; the
    // directory name must be unique across processes, not just within one.
    static int counter = 0;
    auto dir = std::filesystem::temp_directory_path() /
               ("diesel_dirstore_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
    std::filesystem::remove_all(dir);
    return std::make_unique<DirStore>(dir);
  }
};

template <typename Factory>
class ObjectStoreConformance : public ::testing::Test {
 protected:
  ObjectStoreConformance() : store_(Factory::Make()) {}
  std::unique_ptr<ObjectStore> store_;
  sim::VirtualClock clock_;
};

using Factories = ::testing::Types<MemFactory, DirFactory>;
TYPED_TEST_SUITE(ObjectStoreConformance, Factories);

TYPED_TEST(ObjectStoreConformance, PutGetRoundTrip) {
  Bytes data = Blob({1, 2, 3, 4, 5});
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "a/b", data).ok());
  auto got = this->store_->Get(this->clock_, 0, "a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data);
  EXPECT_TRUE(this->store_->Contains("a/b"));
  EXPECT_EQ(this->store_->NumObjects(), 1u);
}

TYPED_TEST(ObjectStoreConformance, GetMissingIsNotFound) {
  EXPECT_TRUE(this->store_->Get(this->clock_, 0, "nope").status().IsNotFound());
  EXPECT_FALSE(this->store_->Contains("nope"));
}

TYPED_TEST(ObjectStoreConformance, PutOverwrites) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "k", Blob({1, 2})).ok());
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "k", Blob({9})).ok());
  EXPECT_EQ(this->store_->Get(this->clock_, 0, "k").value(), Blob({9}));
  EXPECT_EQ(this->store_->NumObjects(), 1u);
}

TYPED_TEST(ObjectStoreConformance, GetRangeSlices) {
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<uint8_t>(i));
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "r", data).ok());
  auto mid = this->store_->GetRange(this->clock_, 0, "r", 10, 5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value(), Blob({10, 11, 12, 13, 14}));
  auto whole = this->store_->GetRange(this->clock_, 0, "r", 0, 100);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->size(), 100u);
}

TYPED_TEST(ObjectStoreConformance, GetRangePastEndIsOutOfRange) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "r", Blob({1, 2, 3})).ok());
  auto r = this->store_->GetRange(this->clock_, 0, "r", 2, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TYPED_TEST(ObjectStoreConformance, DeleteRemoves) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "d", Blob({7})).ok());
  ASSERT_TRUE(this->store_->Delete(this->clock_, 0, "d").ok());
  EXPECT_TRUE(this->store_->Delete(this->clock_, 0, "d").IsNotFound());
  EXPECT_EQ(this->store_->NumObjects(), 0u);
}

TYPED_TEST(ObjectStoreConformance, ListSortedWithPrefix) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "p/3", Blob({3})).ok());
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "p/1", Blob({1})).ok());
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "p/2", Blob({2})).ok());
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "q/9", Blob({9})).ok());
  auto keys = this->store_->List(this->clock_, 0, "p/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"p/1", "p/2", "p/3"}));
}

TYPED_TEST(ObjectStoreConformance, SizeReportsLength) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "s", Bytes(1234, 0)).ok());
  EXPECT_EQ(this->store_->Size(this->clock_, 0, "s").value(), 1234u);
  EXPECT_TRUE(this->store_->Size(this->clock_, 0, "zz").status().IsNotFound());
}

TYPED_TEST(ObjectStoreConformance, TotalBytesTracksContent) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "a", Bytes(100, 0)).ok());
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "b", Bytes(50, 0)).ok());
  EXPECT_EQ(this->store_->TotalBytes(), 150u);
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "a", Bytes(10, 0)).ok());
  EXPECT_EQ(this->store_->TotalBytes(), 60u);
}

TYPED_TEST(ObjectStoreConformance, EmptyBlobAllowed) {
  ASSERT_TRUE(this->store_->Put(this->clock_, 0, "empty", {}).ok());
  auto got = this->store_->Get(this->clock_, 0, "empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

// ---- ModeledStore timing ----------------------------------------------------

class ModeledStoreTest : public ::testing::Test {
 protected:
  ModeledStoreTest()
      : cluster_(3), fabric_(cluster_),
        modeled_(fabric_, 2, sim::SsdClusterSpec(), &backing_) {}
  sim::Cluster cluster_;
  net::Fabric fabric_;
  MemStore backing_;
  ModeledStore modeled_;
};

TEST_F(ModeledStoreTest, ChargesDeviceAndNetworkTime) {
  sim::VirtualClock clock;
  ASSERT_TRUE(modeled_.Put(clock, 0, "x", Bytes(1 << 20, 1)).ok());
  EXPECT_GT(clock.now(), sim::SsdClusterSpec().latency);
  // Writes go to the (possibly distinct) write device; reads to the read one.
  EXPECT_EQ(modeled_.write_device().ops_served(), 1u);
  EXPECT_EQ(modeled_.device().ops_served(), 0u);
  ASSERT_TRUE(modeled_.Get(clock, 0, "x").ok());
  EXPECT_EQ(modeled_.device().ops_served(), 1u);
}

TEST_F(ModeledStoreTest, LargerReadsTakeLonger) {
  sim::VirtualClock w;
  ASSERT_TRUE(modeled_.Put(w, 0, "small", Bytes(4 << 10, 1)).ok());
  ASSERT_TRUE(modeled_.Put(w, 0, "large", Bytes(4 << 20, 1)).ok());
  sim::VirtualClock s, l;
  ASSERT_TRUE(modeled_.Get(s, 0, "small").ok());
  ASSERT_TRUE(modeled_.Get(l, 1, "large").ok());
  EXPECT_GT(l.now(), s.now());
}

TEST_F(ModeledStoreTest, RangeReadChargesOnlyRangeBytes) {
  sim::VirtualClock w;
  ASSERT_TRUE(modeled_.Put(w, 0, "big", Bytes(8 << 20, 1)).ok());
  sim::VirtualClock whole, range;
  ASSERT_TRUE(modeled_.Get(whole, 0, "big").ok());
  ASSERT_TRUE(modeled_.GetRange(range, 1, "big", 0, 4 << 10).ok());
  EXPECT_LT(range.now(), whole.now());
}

TEST_F(ModeledStoreTest, FailedGatewayNodeMakesStoreUnavailable) {
  sim::VirtualClock clock;
  ASSERT_TRUE(modeled_.Put(clock, 0, "x", Bytes(10, 1)).ok());
  cluster_.FailNode(2);
  EXPECT_TRUE(modeled_.Get(clock, 0, "x").status().IsUnavailable());
}

}  // namespace
}  // namespace diesel::ostore
