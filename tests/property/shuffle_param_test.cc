// Parameterized properties of the shuffle strategies over many dataset
// shapes and group sizes: permutation-ness, group containment, partition
// disjointness, epoch divergence, and randomness quality bounds.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "shuffle/shuffle.h"

namespace diesel::shuffle {
namespace {

struct Param {
  size_t num_chunks;
  size_t files_per_chunk;
  size_t group_size;
};

core::MetadataSnapshot MakeSnapshot(size_t num_chunks, size_t files_per_chunk) {
  std::vector<core::ChunkId> chunks;
  std::vector<core::FileMeta> files;
  for (size_t c = 0; c < num_chunks; ++c) {
    core::ChunkId id = core::ChunkId::Make(1 + static_cast<uint32_t>(c), 1, 1,
                                           static_cast<uint32_t>(c));
    chunks.push_back(id);
    for (size_t f = 0; f < files_per_chunk; ++f) {
      core::FileMeta m;
      m.chunk = id;
      m.offset = f * 10;
      m.length = 10;
      m.index_in_chunk = static_cast<uint32_t>(f);
      m.full_name = "/p/c" + std::to_string(c) + "/f" + std::to_string(f);
      files.push_back(std::move(m));
    }
  }
  return core::MetadataSnapshot::Create("p", 1, std::move(chunks),
                                        std::move(files));
}

class ShuffleParamTest : public ::testing::TestWithParam<Param> {};

TEST_P(ShuffleParamTest, PlanIsValidPermutationWithGroupContainment) {
  const Param& p = GetParam();
  auto snap = MakeSnapshot(p.num_chunks, p.files_per_chunk);
  Rng rng(p.num_chunks * 131 + p.group_size);

  for (int epoch = 0; epoch < 3; ++epoch) {
    ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = p.group_size},
                                        rng);
    const size_t total = p.num_chunks * p.files_per_chunk;
    // Permutation.
    ASSERT_EQ(plan.file_order.size(), total);
    std::vector<bool> seen(total, false);
    for (uint32_t idx : plan.file_order) {
      ASSERT_LT(idx, total);
      ASSERT_FALSE(seen[idx]);
      seen[idx] = true;
    }
    // Group count and boundaries.
    size_t expected_groups =
        (p.num_chunks + p.group_size - 1) / p.group_size;
    EXPECT_EQ(plan.num_groups(), expected_groups);
    EXPECT_EQ(plan.group_begin.front(), 0u);
    EXPECT_EQ(plan.group_begin.back(), total);
    for (size_t g = 1; g < plan.group_begin.size(); ++g) {
      EXPECT_LE(plan.group_begin[g - 1], plan.group_begin[g]);
    }
    // Containment: group files come only from group chunks; chunk partition.
    std::set<uint32_t> all_chunks;
    for (size_t g = 0; g < plan.num_groups(); ++g) {
      std::set<uint32_t> members(plan.group_chunks[g].begin(),
                                 plan.group_chunks[g].end());
      for (uint32_t ci : members) {
        EXPECT_TRUE(all_chunks.insert(ci).second);
      }
      for (size_t pos = plan.group_begin[g]; pos < plan.group_begin[g + 1];
           ++pos) {
        size_t ci = snap.ChunkIndex(snap.files()[plan.file_order[pos]].chunk);
        EXPECT_TRUE(members.count(static_cast<uint32_t>(ci)) > 0);
      }
    }
    EXPECT_EQ(all_chunks.size(), p.num_chunks);
  }
}

TEST_P(ShuffleParamTest, PartitionsAreDisjointAndCompleteForAnyPartCount) {
  const Param& p = GetParam();
  auto snap = MakeSnapshot(p.num_chunks, p.files_per_chunk);
  Rng rng(7);
  ShufflePlan plan = ChunkWiseShuffle(snap, {.group_size = p.group_size}, rng);
  for (size_t parts : {1u, 2u, 3u, 7u}) {
    std::set<uint32_t> all;
    for (size_t part = 0; part < parts; ++part) {
      ShufflePlan sub = PartitionPlan(plan, part, parts);
      EXPECT_EQ(sub.group_begin.back(), sub.file_order.size());
      for (uint32_t f : sub.file_order) {
        EXPECT_TRUE(all.insert(f).second) << "parts=" << parts;
      }
    }
    EXPECT_EQ(all.size(), plan.file_order.size()) << "parts=" << parts;
  }
}

TEST_P(ShuffleParamTest, ConsecutiveEpochsDifferWhenNontrivial) {
  const Param& p = GetParam();
  if (p.num_chunks * p.files_per_chunk < 8) return;  // trivially stable
  auto snap = MakeSnapshot(p.num_chunks, p.files_per_chunk);
  Rng rng(9);
  auto a = ChunkWiseShuffle(snap, {.group_size = p.group_size}, rng);
  auto b = ChunkWiseShuffle(snap, {.group_size = p.group_size}, rng);
  EXPECT_NE(a.file_order, b.file_order);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShuffleParamTest,
    ::testing::Values(Param{1, 1, 1}, Param{1, 50, 3}, Param{7, 1, 2},
                      Param{10, 10, 1}, Param{10, 10, 4}, Param{10, 10, 10},
                      Param{10, 10, 25},   // group > chunks
                      Param{33, 7, 5}, Param{100, 3, 16}, Param{64, 16, 8}),
    [](const auto& info) {
      const Param& p = info.param;
      return "c" + std::to_string(p.num_chunks) + "_f" +
             std::to_string(p.files_per_chunk) + "_g" +
             std::to_string(p.group_size);
    });

}  // namespace
}  // namespace diesel::shuffle
