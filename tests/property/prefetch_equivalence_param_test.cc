// Property: the GroupWindowReader's next-group prefetch is an overlap-only
// optimization — for any seed and group size it must return byte-identical
// file sequences with prefetch on and off, and the overlapped epoch can
// never take longer (in virtual time) than the serialized one.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel::shuffle {
namespace {

struct Case {
  uint64_t seed;
  size_t group_size;
};

class PrefetchEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(PrefetchEquivalenceTest, PrefetchOnOffByteIdenticalAndNoSlower) {
  const Case c = GetParam();
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 2;
  core::Deployment dep(dopts);
  dlt::DatasetSpec spec;
  spec.name = "pfe";
  spec.num_classes = 2;
  spec.files_per_class = 36;
  spec.mean_file_bytes = 3072;
  auto writer = dep.MakeClient(0, 0, spec.name, 12 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());
  auto client = dep.MakeClient(0, 1, spec.name);
  ASSERT_TRUE(client->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *client->snapshot();

  // Same plan for both arms.
  Rng rng(c.seed);
  ShufflePlan plan =
      ChunkWiseShuffle(snap, {.group_size = c.group_size}, rng);

  auto run = [&](bool prefetch) {
    dep.ResetDevices();  // identical device state for both arms
    GroupWindowReader reader(dep.server(0), snap, 0);
    reader.set_prefetch_next_group(prefetch);
    reader.StartEpoch(plan);
    sim::VirtualClock clock;
    std::vector<Bytes> files;
    while (!reader.Done()) {
      auto data = reader.Next(clock);
      EXPECT_TRUE(data.ok()) << data.status().ToString();
      files.push_back(std::move(data.value()));
    }
    return std::make_pair(std::move(files), clock.now());
  };

  auto [serial_files, serial_end] = run(false);
  auto [overlap_files, overlap_end] = run(true);

  ASSERT_EQ(serial_files.size(), overlap_files.size());
  ASSERT_EQ(serial_files.size(), plan.file_order.size());
  for (size_t i = 0; i < serial_files.size(); ++i) {
    EXPECT_EQ(serial_files[i], overlap_files[i]) << "file " << i;
  }
  // Overlap hides chunk-fetch latency behind consumption; it can never
  // serialize extra work onto the epoch.
  EXPECT_LE(overlap_end, serial_end);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PrefetchEquivalenceTest,
    ::testing::Values(Case{1, 2}, Case{1, 4}, Case{7, 2}, Case{7, 8},
                      Case{42, 4}, Case{42, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed) + "_group" +
             std::to_string(info.param.group_size);
    });

}  // namespace
}  // namespace diesel::shuffle
