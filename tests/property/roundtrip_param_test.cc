// Parameterized end-to-end property: for any (file count, size profile,
// chunk target), every file written through libDIESEL reads back bit-exact
// through every read path (server executor, task cache, chunk-wise reader),
// and global invariants hold (dataset accounting, snapshot completeness,
// chunk ordering).
#include <gtest/gtest.h>

#include <tuple>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

struct Param {
  size_t num_files;
  uint64_t mean_bytes;
  bool fixed_size;
  uint64_t chunk_target;
};

class RoundTripParamTest : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTripParamTest, EveryPathReturnsExactContent) {
  const Param& p = GetParam();
  dlt::DatasetSpec spec;
  spec.name = "prop";
  spec.num_classes = 5;
  spec.files_per_class = p.num_files / 5;
  spec.mean_file_bytes = p.mean_bytes;
  spec.fixed_size = p.fixed_size;

  core::DeploymentOptions opts;
  opts.num_client_nodes = 2;
  core::Deployment dep(opts);
  auto writer = dep.MakeClient(0, 0, spec.name, p.chunk_target);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());

  // Invariant: dataset record accounts for every file.
  sim::VirtualClock clock;
  auto dm = dep.server(0).GetDatasetMeta(clock, 0, spec.name);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->num_files, spec.total_files());
  EXPECT_EQ(dm->num_chunks, writer->stats().chunks_flushed);

  // Invariant: snapshot covers everything; chunks in write order.
  auto snap = dep.server(0).BuildSnapshot(clock, 0, spec.name);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), spec.total_files());
  for (size_t i = 1; i < snap->chunks().size(); ++i) {
    EXPECT_LT(snap->chunks()[i - 1], snap->chunks()[i]);
  }

  // Path 1: server request executor (batched).
  std::vector<std::string> paths;
  for (size_t i = 0; i < spec.total_files(); ++i) {
    paths.push_back(dlt::FilePath(spec, i));
  }
  auto batch = dep.server(0).ReadFiles(clock, 1, spec.name, paths);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(dlt::VerifyContent(spec, i, (*batch)[i]))
        << "executor path, file " << i;
  }

  // Path 2: task-grained cache.
  cache::TaskRegistry registry;
  auto c0 = dep.MakeClient(0, 1, spec.name);
  auto c1 = dep.MakeClient(1, 1, spec.name);
  registry.Register(c0->endpoint());
  registry.Register(c1->endpoint());
  cache::TaskCache cache(dep.fabric(), dep.server(0), *snap, registry, {});
  for (size_t i = 0; i < spec.total_files(); ++i) {
    const core::FileMeta* fm = snap->Lookup(paths[i]);
    ASSERT_NE(fm, nullptr);
    auto content = cache.GetFile(clock, (i % 2 ? c0 : c1)->endpoint(), *fm);
    ASSERT_TRUE(content.ok());
    ASSERT_TRUE(dlt::VerifyContent(spec, i, content.value()))
        << "cache path, file " << i;
  }

  // Path 3: chunk-wise shuffled group reader covers each file exactly once.
  Rng rng(p.num_files ^ p.chunk_target);
  shuffle::GroupWindowReader reader(dep.server(0), *snap, 1);
  reader.StartEpoch(shuffle::ChunkWiseShuffle(*snap, {.group_size = 3}, rng));
  std::vector<int> seen(spec.total_files(), 0);
  while (!reader.Done()) {
    uint32_t idx = reader.PeekIndex().value();
    auto content = reader.Next(clock);
    ASSERT_TRUE(content.ok());
    const core::FileMeta& fm = snap->files()[idx];
    // Map back to generator index via path.
    for (size_t i = 0; i < paths.size(); ++i) {
      if (paths[i] == fm.full_name) {
        ASSERT_TRUE(dlt::VerifyContent(spec, i, content.value()));
        ++seen[i];
        break;
      }
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "file " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTripParamTest,
    ::testing::Values(
        Param{10, 100, true, 4096},          // tiny files, tiny chunks
        Param{50, 1000, false, 8 * 1024},    // jittered sizes
        Param{200, 500, false, 16 * 1024},   // many files
        Param{25, 40000, true, 64 * 1024},   // files ~ chunk-size
        Param{15, 100000, false, 32 * 1024}, // files LARGER than chunks
        Param{60, 3000, true, 1 << 20}),     // all files in one chunk
    [](const auto& info) {
      const Param& p = info.param;
      return "files" + std::to_string(p.num_files) + "_mean" +
             std::to_string(p.mean_bytes) + "_chunk" +
             std::to_string(p.chunk_target);
    });

}  // namespace
}  // namespace diesel
