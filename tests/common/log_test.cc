#include "common/log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace diesel {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LogTest, MacroCompilesForAllSeverities) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress output below Error
  DIESEL_LOG(Debug) << "debug " << 1;
  DIESEL_LOG(Info) << "info " << 2.5;
  DIESEL_LOG(Warn) << "warn " << "text";
  // Streaming into a disabled message must not evaluate visibly or crash.
  int evaluations = 0;
  auto count = [&] { return ++evaluations; };
  DIESEL_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 1);  // args ARE evaluated (documented cost)
}

TEST(LogTest, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        DIESEL_LOG(Warn) << "thread " << t << " iter " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace diesel
