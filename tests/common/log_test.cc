#include "common/log.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace diesel {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LogTest, MacroCompilesForAllSeverities) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress output below Error
  DIESEL_LOG(Debug) << "debug " << 1;
  DIESEL_LOG(Info) << "info " << 2.5;
  DIESEL_LOG(Warn) << "warn " << "text";
  // Streaming into a disabled message must not evaluate visibly or crash.
  int evaluations = 0;
  auto count = [&] { return ++evaluations; };
  DIESEL_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 1);  // args ARE evaluated (documented cost)
}

TEST(LogTest, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        DIESEL_LOG(Warn) << "thread " << t << " iter " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(LogTest, EnvVarSetsLevelByNameAndNumber) {
  LogLevelGuard guard;
  ::setenv("DIESEL_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  ::setenv("DIESEL_LOG_LEVEL", "ERROR", 1);  // case-insensitive
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ::setenv("DIESEL_LOG_LEVEL", "1", 1);  // numeric form
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  ::unsetenv("DIESEL_LOG_LEVEL");
}

TEST(LogTest, InvalidEnvValueLeavesLevelUnchanged) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  ::setenv("DIESEL_LOG_LEVEL", "verbose", 1);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);

  ::setenv("DIESEL_LOG_LEVEL", "9", 1);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);

  ::unsetenv("DIESEL_LOG_LEVEL");
  EXPECT_FALSE(InitLogLevelFromEnv());
}

TEST(LogTest, SinkCapturesLinesAndTimeSourceStampsVirtualTime) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  SetLogSink([&lines](const std::string& line) { lines.push_back(line); });

  DIESEL_LOG(Info) << "plain line";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("plain line"), std::string::npos);
  EXPECT_EQ(lines[0].find("@"), std::string::npos);  // no clock registered

  SetLogTimeSource([] { return Nanos{12345}; });
  DIESEL_LOG(Warn) << "stamped line";
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("@12345ns"), std::string::npos);
  EXPECT_NE(lines[1].find("stamped line"), std::string::npos);
  EXPECT_NE(lines[1].find("[W"), std::string::npos);

  // Detach both hooks; later lines go back to stderr, not our vector.
  SetLogTimeSource(nullptr);
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kError);
  DIESEL_LOG(Warn) << "suppressed";
  EXPECT_EQ(lines.size(), 2u);
}

}  // namespace
}  // namespace diesel
