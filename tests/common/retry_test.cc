#include "common/retry.h"

#include <gtest/gtest.h>

namespace diesel {
namespace {

TEST(RetryPolicyTest, SucceedsFirstTryWithoutWaiting) {
  RetryPolicy p;
  sim::VirtualClock clock;
  int calls = 0;
  Status st = p.Run(clock, [&] {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RetryPolicyTest, RetriesOnlyUnavailable) {
  RetryPolicy p;
  sim::VirtualClock clock;
  int calls = 0;
  Status st = p.Run(clock, [&] {
    ++calls;
    return Status::NotFound("gone");
  });
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(calls, 1);  // semantic answer, not a transient fault
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RetryPolicyTest, ExhaustsAttemptsAndChargesVirtualTime) {
  RetryPolicy p;
  p.max_attempts = 3;
  sim::VirtualClock clock;
  int calls = 0;
  Status st = p.Run(clock, [&] {
    ++calls;
    return Status::Unavailable("flap");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 3);
  // Two backoffs were charged to the caller's virtual clock.
  EXPECT_GE(clock.now(), p.BackoffBefore(1) + p.BackoffBefore(2));
}

TEST(RetryPolicyTest, EventualSuccessAfterTransientFailures) {
  RetryPolicy p;
  sim::VirtualClock clock;
  int calls = 0;
  Result<int> r = p.RunResult<int>(clock, [&]() -> Result<int> {
    if (++calls < 3) return Status::Unavailable("flap");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_GT(clock.now(), 0u);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff = Micros(100);
  p.backoff_multiplier = 2.0;
  p.max_backoff = Micros(350);
  p.jitter_frac = 0.0;  // exact values
  EXPECT_EQ(p.BackoffBefore(1), Micros(100));
  EXPECT_EQ(p.BackoffBefore(2), Micros(200));
  EXPECT_EQ(p.BackoffBefore(3), Micros(350));  // capped, not 400
  EXPECT_EQ(p.BackoffBefore(4), Micros(350));
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy a, b;
  a.jitter_frac = b.jitter_frac = 0.25;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    Nanos wa = a.BackoffBefore(attempt);
    EXPECT_EQ(wa, b.BackoffBefore(attempt));  // same seed, same wait
    RetryPolicy plain = a;
    plain.jitter_frac = 0.0;
    Nanos base = plain.BackoffBefore(attempt);
    EXPECT_GE(wa, static_cast<Nanos>(static_cast<double>(base) * 0.75) - 1);
    EXPECT_LE(wa, static_cast<Nanos>(static_cast<double>(base) * 1.25) + 1);
  }
  RetryPolicy other;
  other.jitter_seed = 1234567;
  bool any_different = false;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    if (other.BackoffBefore(attempt) != a.BackoffBefore(attempt))
      any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicyTest, DeadlineBudgetStopsRetrying) {
  RetryPolicy p;
  p.max_attempts = 100;
  p.initial_backoff = Millis(1);
  p.backoff_multiplier = 1.0;
  p.jitter_frac = 0.0;
  p.deadline_budget = Millis(3);
  sim::VirtualClock clock;
  int calls = 0;
  Status st = p.Run(clock, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(st.IsUnavailable());
  // 1ms backoffs against a 3ms budget: attempts at t=0,1,2,3 then stop.
  EXPECT_EQ(calls, 4);
  EXPECT_LE(clock.now(), Millis(3));
}

TEST(RetryPolicyTest, SingleAttemptDisablesRetry) {
  RetryPolicy p;
  p.max_attempts = 1;
  sim::VirtualClock clock;
  int calls = 0;
  Status st = p.Run(clock, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.now(), 0u);
}

}  // namespace
}  // namespace diesel
