#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace diesel {
namespace {

TEST(Fnv1a64Test, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, SeedChaining) {
  // Hash("ab") == Hash("b", seed=Hash("a")): streaming property.
  EXPECT_EQ(Fnv1a64("ab"), Fnv1a64("b", Fnv1a64("a")));
}

TEST(Fnv1a64Test, IsConstexpr) {
  constexpr uint64_t h = Fnv1a64("compile-time");
  static_assert(h != 0);
  EXPECT_NE(h, 0u);
}

TEST(Mix64Test, AvalancheOnSingleBitFlips) {
  // Flipping any input bit must flip a substantial fraction of output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    uint64_t a = Mix64(0x123456789ABCDEFULL);
    uint64_t b = Mix64(0x123456789ABCDEFULL ^ (1ULL << bit));
    int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

TEST(Mix64Test, SequentialInputsSpread) {
  // Consecutive integers map to well-separated outputs (used for shard and
  // ring placement of structured ids).
  std::set<uint64_t> high_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(Mix64(i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 150u);  // ~256 * (1 - 1/e) for uniform
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 0), 0u);
}

TEST(PathHashTest, DistinctDirectoriesDistinctPrefixes) {
  std::set<uint64_t> hashes;
  for (int c = 0; c < 1000; ++c) {
    hashes.insert(PathHash("/train/cls" + std::to_string(c)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions across ImageNet-scale dirs
}

}  // namespace
}  // namespace diesel
