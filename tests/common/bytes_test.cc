#include "common/bytes.h"

#include <gtest/gtest.h>

namespace diesel {
namespace {

TEST(BinaryRoundTripTest, FixedWidthValues) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.25);

  BinaryReader r({w.data().data(), w.size()});
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTripTest, StringsAndRaw) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutBytes(AsBytesView(std::string("\x00\x01\x02", 3)));

  BinaryReader r({w.data().data(), w.size()});
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
  auto raw = r.ReadBytes();
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 3u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTripTest, Varints) {
  BinaryWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 32, ~0ULL};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r({w.data().data(), w.size()});
  for (uint64_t v : values) {
    EXPECT_EQ(r.ReadVarint().value(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryReaderTest, TruncatedFixedReadIsCorruption) {
  Bytes data = {1, 2, 3};
  BinaryReader r(data);
  auto v = r.ReadU64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(BinaryReaderTest, TruncatedStringIsCorruption) {
  BinaryWriter w;
  w.PutU32(100);  // claims 100 bytes follow
  w.PutRaw("abc", 3);
  BinaryReader r({w.data().data(), w.size()});
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BinaryReaderTest, SkipPastEndFails) {
  Bytes data(4, 0);
  BinaryReader r(data);
  EXPECT_TRUE(r.Skip(4).ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(BinaryReaderTest, OverlongVarintIsCorruption) {
  Bytes data(11, 0xFF);  // continuation bit forever
  BinaryReader r(data);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(BinaryWriterTest, PatchU32Overwrites) {
  BinaryWriter w;
  w.PutU32(0);
  w.PutU32(7);
  w.PatchU32(0, 0xCAFEBABE);
  BinaryReader r({w.data().data(), w.size()});
  EXPECT_EQ(r.ReadU32().value(), 0xCAFEBABEu);
  EXPECT_EQ(r.ReadU32().value(), 7u);
}

TEST(BytesViewTest, StringConversions) {
  std::string s = "byte soup";
  BytesView v = AsBytesView(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(ToString(v), s);
}

}  // namespace
}  // namespace diesel
