#include "common/base64lex.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"

namespace diesel {
namespace {

TEST(Base64LexTest, EmptyInput) {
  EXPECT_EQ(Base64LexEncode({}), "");
  auto decoded = Base64LexDecode("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(Base64LexTest, RoundTripAllLengths) {
  Rng rng(1);
  for (size_t len = 0; len <= 64; ++len) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    std::string enc = Base64LexEncode(data);
    auto dec = Base64LexDecode(enc);
    ASSERT_TRUE(dec.ok()) << "len=" << len;
    EXPECT_EQ(dec.value(), data) << "len=" << len;
  }
}

TEST(Base64LexTest, EncodedLengthFormula) {
  for (size_t len : {1u, 2u, 3u, 4u, 15u, 16u, 17u}) {
    Bytes data(len, 0x5A);
    EXPECT_EQ(Base64LexEncode(data).size(), (len * 4 + 2) / 3);
  }
}

TEST(Base64LexTest, RejectsInvalidCharacters) {
  EXPECT_FALSE(Base64LexDecode("ab=d").ok());   // '=' not in alphabet
  EXPECT_FALSE(Base64LexDecode("ab d").ok());
  EXPECT_FALSE(Base64LexDecode("ab+d").ok());   // std base64 char, not ours
}

TEST(Base64LexTest, RejectsImpossibleLength) {
  EXPECT_FALSE(Base64LexDecode("a").ok());      // 1 mod 4
  EXPECT_FALSE(Base64LexDecode("abcde").ok());  // 5 mod 4
}

// The property the chunk-ID design depends on: for equal-length inputs,
// encoded order equals byte order.
TEST(Base64LexTest, PropertyOrderPreservingForEqualLengths) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = 1 + rng.Uniform(24);
    Bytes a(len), b(len);
    for (auto& x : a) x = static_cast<uint8_t>(rng.Next());
    for (auto& x : b) x = static_cast<uint8_t>(rng.Next());
    bool raw_less = std::lexicographical_compare(a.begin(), a.end(),
                                                 b.begin(), b.end());
    bool enc_less = Base64LexEncode(a) < Base64LexEncode(b);
    bool raw_eq = a == b;
    if (raw_eq) {
      EXPECT_EQ(Base64LexEncode(a), Base64LexEncode(b));
    } else {
      EXPECT_EQ(raw_less, enc_less)
          << "ordering broken at trial " << trial;
    }
  }
}

TEST(Base64LexTest, AlphabetIsAsciiSorted) {
  // Encode single bytes 0..255 stepping 3 (each maps to 2 chars); the
  // first char sequence must be non-decreasing.
  std::string prev;
  for (int v = 0; v < 256; ++v) {
    Bytes one{static_cast<uint8_t>(v)};
    std::string enc = Base64LexEncode(one);
    if (!prev.empty()) {
      EXPECT_LE(prev, enc) << "v=" << v;
    }
    prev = enc;
  }
}

}  // namespace
}  // namespace diesel
