#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace diesel {
namespace {

TEST(HistogramTest, EmptyIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Median(), 42.0, 42.0 * 0.07);
}

TEST(HistogramTest, MeanMinMaxExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, QuantilesApproximateUniform) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble() * 1000.0);
  EXPECT_NEAR(h.Median(), 500.0, 50.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 70.0);
  EXPECT_NEAR(h.P99(), 990.0, 80.0);
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  Histogram a, b, all;
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble() * 100.0 + 1.0;
    ((i % 2 == 0) ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), all.sum() * 1e-12);  // summation order differs
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.Median(), all.Median(), 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SubUnitValuesLandInBucketZero) {
  Histogram h;
  h.Add(0.25);
  h.Add(0.75);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Median(), 1.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace diesel
