#include "common/histogram.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace diesel {
namespace {

TEST(HistogramTest, EmptyIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Median(), 42.0, 42.0 * 0.07);
}

TEST(HistogramTest, MeanMinMaxExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, QuantilesApproximateUniform) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble() * 1000.0);
  EXPECT_NEAR(h.Median(), 500.0, 50.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 70.0);
  EXPECT_NEAR(h.P99(), 990.0, 80.0);
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  Histogram a, b, all;
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble() * 100.0 + 1.0;
    ((i % 2 == 0) ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), all.sum() * 1e-12);  // summation order differs
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.Median(), all.Median(), 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SubUnitValuesLandInBucketZero) {
  Histogram h;
  h.Add(0.25);
  h.Add(0.75);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Median(), 1.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("count=2"), std::string::npos);
}

TEST(HistogramTest, QuantileClampsOutOfRangeArguments) {
  Histogram h;
  for (double v : {10.0, 20.0, 30.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), h.Quantile(1.0));
  // NaN counts as 0, never indexes out of range.
  EXPECT_DOUBLE_EQ(h.Quantile(std::numeric_limits<double>::quiet_NaN()),
                   h.Quantile(0.0));
}

TEST(HistogramTest, SummaryJsonIsWellFormedAndDeterministic) {
  Histogram h;
  h.Add(100.0);
  h.Add(300.0);
  std::string json = h.SummaryJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 400"), std::string::npos);
  EXPECT_NE(json.find("\"min\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 300"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 200"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json, h.SummaryJson());

  Histogram empty;
  std::string ejson = empty.SummaryJson();
  EXPECT_NE(ejson.find("\"count\": 0"), std::string::npos);
}

TEST(HistogramTest, MergeDisjointBucketRanges) {
  Histogram low, high;
  for (double v : {1.0, 2.0, 3.0}) low.Add(v);
  for (double v : {1e6, 2e6, 3e6}) high.Add(v);
  low.Merge(high);
  EXPECT_EQ(low.count(), 6u);
  EXPECT_DOUBLE_EQ(low.min(), 1.0);
  EXPECT_DOUBLE_EQ(low.max(), 3e6);
  EXPECT_DOUBLE_EQ(low.sum(), 6.0 + 6e6);
  // Median sits between the two populations.
  EXPECT_GT(low.Quantile(0.9), 1e5);
  EXPECT_LT(low.Quantile(0.1), 10.0);
}

TEST(HistogramTest, ResetAfterMergeClearsEverything) {
  Histogram a, b;
  a.Add(5.0);
  b.Add(7e9);
  a.Merge(b);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  // Re-usable after the reset: new values define fresh extremes.
  a.Add(2.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(HistogramTest, DeltaSinceSubtractsPrefix) {
  Histogram h;
  h.Add(10.0);
  h.Add(20.0);
  Histogram earlier = h;  // checkpoint
  h.Add(40.0);
  h.Add(80.0);
  Histogram delta = h.DeltaSince(earlier);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_DOUBLE_EQ(delta.sum(), 120.0);
  // Interval extremes are bucket-approximate but bounded by the lifetime.
  EXPECT_GE(delta.min(), h.min());
  EXPECT_LE(delta.max(), h.max());

  // Empty checkpoint: delta is the whole stream.
  Histogram none;
  Histogram all = h.DeltaSince(none);
  EXPECT_EQ(all.count(), h.count());
  // No growth since checkpoint: empty interval.
  Histogram zero = h.DeltaSince(h);
  EXPECT_EQ(zero.count(), 0u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // Values spread inside ONE bucket (1000 and 1020 both land in [992,1024))
  // must not snap every quantile to the same edge: quantiles interpolate
  // across the observed [min, max] range, strictly increasing with q.
  Histogram h;
  for (int i = 0; i < 500; ++i) {
    h.Add(1000.0);
    h.Add(1020.0);
  }
  double q10 = h.Quantile(0.1);
  double q50 = h.Quantile(0.5);
  double q90 = h.Quantile(0.9);
  EXPECT_LT(q10, q50);
  EXPECT_LT(q50, q90);
  EXPECT_GE(q10, 1000.0);
  EXPECT_LE(q90, 1020.0);

  // A true point mass collapses the bucket to the exact value: the
  // interpolation range is clamped to the observed extremes.
  Histogram point;
  for (int i = 0; i < 1000; ++i) point.Add(1000.0);
  EXPECT_DOUBLE_EQ(point.Quantile(0.1), 1000.0);
  EXPECT_DOUBLE_EQ(point.Quantile(0.9), 1000.0);
}

TEST(HistogramTest, QuantileGeometricMidpointMatchesLogBuckets) {
  // Geometric interpolation: the mid-range quantile is the geometric (not
  // arithmetic) mean of the interpolation endpoints. Three same-bucket
  // values put the median exactly halfway along the log-space path.
  Histogram h;
  h.Add(1000.0);
  h.Add(1010.0);
  h.Add(1020.0);
  double q50 = h.Quantile(0.5);
  EXPECT_NEAR(q50, 1000.0 * std::sqrt(1020.0 / 1000.0), 1e-6);
  EXPECT_LT(q50, 1010.0);  // geometric mean sits below the arithmetic one
}

TEST(HistogramTest, ExemplarRequiresTraceId) {
  Histogram h;
  h.AddWithExemplar(100.0, 0, 5.0);  // no active span: plain Add
  EXPECT_EQ(h.count(), 1u);
  EXPECT_TRUE(h.exemplars().empty());
}

TEST(HistogramTest, ExemplarCapturesTailObservations) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(100.0);
  // Far above p99: captured with its span id.
  h.AddWithExemplar(10000.0, 7, 1.5);
  ASSERT_EQ(h.exemplars().size(), 1u);
  EXPECT_DOUBLE_EQ(h.exemplars()[0].value, 10000.0);
  EXPECT_EQ(h.exemplars()[0].trace_id, 7u);
  EXPECT_DOUBLE_EQ(h.exemplars()[0].at, 1.5);
  // Below the threshold quantile: traced but not retained.
  h.AddWithExemplar(1.0, 8, 2.0);
  EXPECT_EQ(h.exemplars().size(), 1u);
  EXPECT_EQ(h.count(), 1002u);
}

TEST(HistogramTest, ExemplarsOrderedAndBounded) {
  Histogram h;
  h.SetExemplarQuantile(0.0);  // retain every traced observation
  for (uint64_t i = 1; i <= 2 * Histogram::kMaxExemplars; ++i) {
    h.AddWithExemplar(static_cast<double>(i * 1000), i,
                      static_cast<double>(i));
  }
  ASSERT_EQ(h.exemplars().size(), Histogram::kMaxExemplars);
  // Largest value first, and only the largest half survived.
  for (size_t i = 0; i + 1 < h.exemplars().size(); ++i) {
    EXPECT_GT(h.exemplars()[i].value, h.exemplars()[i + 1].value);
  }
  EXPECT_DOUBLE_EQ(h.exemplars().front().value, 16000.0);
  EXPECT_DOUBLE_EQ(h.exemplars().back().value, 9000.0);
}

TEST(HistogramTest, ExemplarsSurviveMergeAndDelta) {
  Histogram a, b;
  a.SetExemplarQuantile(0.0);
  b.SetExemplarQuantile(0.0);
  a.AddWithExemplar(500.0, 1, 1.0);
  b.AddWithExemplar(900.0, 2, 2.0);
  a.Merge(b);
  ASSERT_EQ(a.exemplars().size(), 2u);
  EXPECT_EQ(a.exemplars()[0].trace_id, 2u);  // larger value first

  Histogram earlier = a;
  a.AddWithExemplar(700.0, 3, 3.0);
  Histogram delta = a.DeltaSince(earlier);
  ASSERT_EQ(delta.exemplars().size(), 1u);  // only the new exemplar
  EXPECT_EQ(delta.exemplars()[0].trace_id, 3u);
}

TEST(HistogramTest, SummaryJsonEmitsExemplarsOnlyWhenPresent) {
  Histogram plain;
  plain.Add(10.0);
  EXPECT_EQ(plain.SummaryJson().find("exemplars"), std::string::npos);

  Histogram traced;
  traced.AddWithExemplar(10.0, 42, 1.0);
  std::string json = traced.SummaryJson();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\": 42"), std::string::npos);
}

}  // namespace
}  // namespace diesel
