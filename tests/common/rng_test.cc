#include "common/rng.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

namespace diesel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(5, 8));
  EXPECT_EQ(seen, (std::set<uint64_t>{5, 6, 7, 8}));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(500);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleVisitsManyPermutations) {
  // Property: over many shuffles of [0,1,2], all 6 permutations appear.
  Rng rng(12);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 200; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.Shuffle(v);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace diesel
