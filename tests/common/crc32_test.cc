#include "common/crc32.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace diesel {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes -> 0x8A9136AA.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 x 0xFF -> 0x62A8AB43.
  Bytes ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  // "123456789" -> 0xE3069283.
  std::string digits = "123456789";
  EXPECT_EQ(Crc32c(AsBytesView(digits)), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c({}), 0u); }

TEST(Crc32cTest, StreamingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(AsBytesView(data));
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = Crc32c(AsBytesView(data.substr(0, split)));
    part = Crc32c(AsBytesView(data.substr(split)), part);
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  Bytes data(64, 0x55);
  uint32_t base = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    Bytes mutated = data;
    mutated[byte] ^= 1;
    EXPECT_NE(Crc32c(mutated), base) << "byte=" << byte;
  }
}

}  // namespace
}  // namespace diesel
