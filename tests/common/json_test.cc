#include "common/json.h"

#include <gtest/gtest.h>

namespace diesel {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_EQ(JsonValue::Parse("null")->type(), JsonValue::Type::kNull);
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1.5e3")->number_value(), -1500.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\\n\"")->string_value(), "hi\n");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(Json, ObjectAndArrayAccess) {
  auto v = JsonValue::Parse(R"({"a": [1, 2, 3], "b": {"c": "x"}})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number_value(), 2.0);
  EXPECT_DOUBLE_EQ(v->GetNumber("missing", -7.0), -7.0);
  EXPECT_EQ(v->Find("b")->GetString("c", ""), "x");
}

TEST(Json, RoundTripIsByteStable) {
  // Dump -> Parse -> Dump must be byte-identical, including float formats.
  const char* src = R"({
  "name": "suite",
  "pi": 3.141592653589793,
  "small": 1e-09,
  "neg": -0.25,
  "big": 9007199254740993,
  "list": [
    1,
    2.5,
    "s"
  ]
})";
  auto v1 = JsonValue::Parse(src);
  ASSERT_TRUE(v1.ok());
  std::string d1 = v1->Dump();
  auto v2 = JsonValue::Parse(d1);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(d1, v2->Dump());
}

TEST(Json, NumbersSurviveRoundTrip) {
  for (double x : {0.01, 1.0 / 3.0, 147328.23582241393, 1e300, -4.9e-324}) {
    JsonValue v(x);
    auto back = JsonValue::Parse(JsonNumberToString(x));
    ASSERT_TRUE(back.ok());
    EXPECT_DOUBLE_EQ(back->number_value(), x);
    (void)v;
  }
}

TEST(Json, IntegerConstructorsKeepExactText) {
  EXPECT_EQ(JsonValue(uint64_t{18446744073709551615ull}).Dump(),
            "18446744073709551615\n");
  EXPECT_EQ(JsonValue(int64_t{-9007199254740993ll}).Dump(),
            "-9007199254740993\n");
}

TEST(Json, StringEscaping) {
  JsonValue v(std::string("a\"b\\c\nd\x01"));
  auto back = JsonValue::Parse(v.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->string_value(), "a\"b\\c\nd\x01");
}

TEST(Json, UnicodeEscapes) {
  auto v = JsonValue::Parse(R"("é中")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(Json, BuildersProduceSortableCanonicalForm) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("z", JsonValue(1.0));
  obj.Set("a", JsonValue("x"));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(true));
  obj.Set("list", std::move(arr));
  // Insertion order is preserved (callers emit sorted keys themselves).
  EXPECT_EQ(obj.Dump(),
            "{\n  \"z\": 1,\n  \"a\": \"x\",\n  \"list\": [\n    true\n  ]\n}\n");
}

TEST(Json, DepthLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

}  // namespace
}  // namespace diesel
