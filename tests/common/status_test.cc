#include "common/status.h"

#include <gtest/gtest.h>

namespace diesel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Stale("x").IsStale());
  EXPECT_FALSE(Status::Stale("x").IsNotFound());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  DIESEL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DIESEL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(MacrosTest, AssignOrReturnBindsAndPropagates) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace diesel
