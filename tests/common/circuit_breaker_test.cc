#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace diesel {
namespace {

using State = CircuitBreaker::State;
using Transition = CircuitBreaker::Transition;

TEST(CircuitBreakerTest, StartsClosedAndAllowsRequests) {
  CircuitBreaker br;
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_TRUE(br.AllowRequest(0));
  EXPECT_TRUE(br.AllowRequest(Millis(1)));
}

TEST(CircuitBreakerTest, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker br({.failure_threshold = 3, .cooldown = Millis(10)});
  EXPECT_EQ(br.OnFailure(0), Transition::kNone);
  EXPECT_EQ(br.OnFailure(0), Transition::kNone);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_EQ(br.OnFailure(0), Transition::kOpened);
  EXPECT_EQ(br.state(), State::kOpen);
  EXPECT_EQ(br.times_opened(), 1u);
  EXPECT_FALSE(br.AllowRequest(Millis(5)));  // cooldown not elapsed
}

TEST(CircuitBreakerTest, SuccessResetsFailureCount) {
  CircuitBreaker br({.failure_threshold = 3, .cooldown = Millis(10)});
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.OnSuccess(0), Transition::kNone);
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.state(), State::kClosed);  // never reached 3 in a row
}

TEST(CircuitBreakerTest, HalfOpenAllowsSingleProbeAfterCooldown) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  EXPECT_EQ(br.OnFailure(0), Transition::kOpened);
  EXPECT_FALSE(br.AllowRequest(Millis(9)));
  EXPECT_TRUE(br.AllowRequest(Millis(10)));   // the probe slot
  EXPECT_EQ(br.state(), State::kHalfOpen);
  EXPECT_FALSE(br.AllowRequest(Millis(10)));  // second caller is refused
  EXPECT_FALSE(br.AllowRequest(Millis(11)));
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndReportsRecovery) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  br.OnFailure(0);
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnSuccess(Millis(11)), Transition::kRecovered);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_TRUE(br.AllowRequest(Millis(11)));
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  br.OnFailure(0);
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnFailure(Millis(10)), Transition::kNone);  // still down
  EXPECT_EQ(br.state(), State::kOpen);
  EXPECT_FALSE(br.AllowRequest(Millis(19)));
  EXPECT_TRUE(br.AllowRequest(Millis(20)));  // next probe window
}

// The half-open probe slot under OS-thread contention: many callers arrive
// at the same virtual instant after the cooldown, and exactly one of them
// may win the probe regardless of interleaving.
TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneConcurrentProbe) {
  constexpr int kThreads = 16;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
    ASSERT_EQ(br.OnFailure(0), CircuitBreaker::Transition::kOpened);
    std::atomic<int> admitted{0};
    std::atomic<int> start_gate{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        start_gate.fetch_add(1);
        while (start_gate.load() < kThreads) {
        }  // spin: maximize overlap
        if (br.AllowRequest(Millis(10))) admitted.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(admitted.load(), 1);
    EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
    // The slot stays held until the winner reports an outcome.
    EXPECT_FALSE(br.AllowRequest(Millis(11)));
  }
}

// A failed probe re-opens the breaker with the FULL cooldown measured from
// the failure, and concurrent stragglers racing the failed probe must not
// sneak a second probe into the re-opened window.
TEST(CircuitBreakerTest, ConcurrentProbeFailureReopensWithFullBackoff) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  ASSERT_EQ(br.OnFailure(0), CircuitBreaker::Transition::kOpened);
  ASSERT_TRUE(br.AllowRequest(Millis(10)));  // win the probe slot
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  // Stragglers hammer AllowRequest while the probe's failure is reported.
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (br.AllowRequest(Millis(10))) admitted.fetch_add(1);
      }
    });
  }
  EXPECT_EQ(br.OnFailure(Millis(12)), CircuitBreaker::Transition::kNone);
  for (auto& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 0);  // nobody else ever held the slot
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  // Full backoff from the probe failure: closed to requests until
  // failure_time + cooldown, not until the original open's deadline.
  EXPECT_FALSE(br.AllowRequest(Millis(12)));
  EXPECT_FALSE(br.AllowRequest(Millis(21)));
  EXPECT_TRUE(br.AllowRequest(Millis(22)));
  // A reopen caused by a probe is the same outage, not a new one.
  EXPECT_EQ(br.times_opened(), 1u);
}

TEST(CircuitBreakerTest, RecoveryAfterReopenCycle) {
  CircuitBreaker br({.failure_threshold = 2, .cooldown = Millis(5)});
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.state(), State::kOpen);
  ASSERT_TRUE(br.AllowRequest(Millis(5)));
  br.OnFailure(Millis(5));  // probe fails -> reopen
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnSuccess(Millis(10)), Transition::kRecovered);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_EQ(br.times_opened(), 1u);  // reopen of a probe is not a new open
}

}  // namespace
}  // namespace diesel
