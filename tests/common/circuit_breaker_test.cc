#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

namespace diesel {
namespace {

using State = CircuitBreaker::State;
using Transition = CircuitBreaker::Transition;

TEST(CircuitBreakerTest, StartsClosedAndAllowsRequests) {
  CircuitBreaker br;
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_TRUE(br.AllowRequest(0));
  EXPECT_TRUE(br.AllowRequest(Millis(1)));
}

TEST(CircuitBreakerTest, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker br({.failure_threshold = 3, .cooldown = Millis(10)});
  EXPECT_EQ(br.OnFailure(0), Transition::kNone);
  EXPECT_EQ(br.OnFailure(0), Transition::kNone);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_EQ(br.OnFailure(0), Transition::kOpened);
  EXPECT_EQ(br.state(), State::kOpen);
  EXPECT_EQ(br.times_opened(), 1u);
  EXPECT_FALSE(br.AllowRequest(Millis(5)));  // cooldown not elapsed
}

TEST(CircuitBreakerTest, SuccessResetsFailureCount) {
  CircuitBreaker br({.failure_threshold = 3, .cooldown = Millis(10)});
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.OnSuccess(0), Transition::kNone);
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.state(), State::kClosed);  // never reached 3 in a row
}

TEST(CircuitBreakerTest, HalfOpenAllowsSingleProbeAfterCooldown) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  EXPECT_EQ(br.OnFailure(0), Transition::kOpened);
  EXPECT_FALSE(br.AllowRequest(Millis(9)));
  EXPECT_TRUE(br.AllowRequest(Millis(10)));   // the probe slot
  EXPECT_EQ(br.state(), State::kHalfOpen);
  EXPECT_FALSE(br.AllowRequest(Millis(10)));  // second caller is refused
  EXPECT_FALSE(br.AllowRequest(Millis(11)));
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndReportsRecovery) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  br.OnFailure(0);
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnSuccess(Millis(11)), Transition::kRecovered);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_TRUE(br.AllowRequest(Millis(11)));
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker br({.failure_threshold = 1, .cooldown = Millis(10)});
  br.OnFailure(0);
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnFailure(Millis(10)), Transition::kNone);  // still down
  EXPECT_EQ(br.state(), State::kOpen);
  EXPECT_FALSE(br.AllowRequest(Millis(19)));
  EXPECT_TRUE(br.AllowRequest(Millis(20)));  // next probe window
}

TEST(CircuitBreakerTest, RecoveryAfterReopenCycle) {
  CircuitBreaker br({.failure_threshold = 2, .cooldown = Millis(5)});
  br.OnFailure(0);
  br.OnFailure(0);
  EXPECT_EQ(br.state(), State::kOpen);
  ASSERT_TRUE(br.AllowRequest(Millis(5)));
  br.OnFailure(Millis(5));  // probe fails -> reopen
  ASSERT_TRUE(br.AllowRequest(Millis(10)));
  EXPECT_EQ(br.OnSuccess(Millis(10)), Transition::kRecovered);
  EXPECT_EQ(br.state(), State::kClosed);
  EXPECT_EQ(br.times_opened(), 1u);  // reopen of a probe is not a new open
}

}  // namespace
}  // namespace diesel
