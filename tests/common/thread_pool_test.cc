#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace diesel {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { count.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWorkBeforeWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.Submit([&] {
    count.fetch_add(1);
    pool.Submit([&] { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace diesel
