#include "common/flat_hash_map.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace diesel {
namespace {

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<std::string, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.InsertOrAssign("a", 1));
  EXPECT_TRUE(map.InsertOrAssign("b", 2));
  EXPECT_FALSE(map.InsertOrAssign("a", 3));  // overwrite
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find("a"), nullptr);
  EXPECT_EQ(*map.Find("a"), 3);
  EXPECT_EQ(map.Find("zzz"), nullptr);
  EXPECT_TRUE(map.Erase("a"));
  EXPECT_FALSE(map.Erase("a"));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.Contains("a"));
  EXPECT_TRUE(map.Contains("b"));
}

TEST(FlatHashMapTest, GrowsPastInitialCapacity) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 10000; ++i) map.InsertOrAssign(i, i * 2);
  EXPECT_EQ(map.size(), 10000u);
  for (int i = 0; i < 10000; i += 97) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(*map.Find(i), i * 2);
  }
}

TEST(FlatHashMapTest, ForEachVisitsAll) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map.InsertOrAssign(i, 1);
  int sum = 0;
  map.ForEach([&](const int&, int& v) { sum += v; });
  EXPECT_EQ(sum, 100);
}

TEST(FlatHashMapTest, ClearEmpties) {
  FlatHashMap<int, int> map;
  map.InsertOrAssign(1, 1);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
}

// Property test: behave identically to std::unordered_map under a random
// operation sequence (the backward-shift deletion is the risky part).
TEST(FlatHashMapTest, PropertyMatchesReferenceUnderRandomOps) {
  Rng rng(42);
  FlatHashMap<uint64_t, uint64_t> subject;
  std::unordered_map<uint64_t, uint64_t> reference;
  // Small key space forces collisions and delete-reinsert churn.
  constexpr uint64_t kKeySpace = 257;

  for (int op = 0; op < 50000; ++op) {
    uint64_t key = rng.Uniform(kKeySpace);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // insert/overwrite
        uint64_t value = rng.Next();
        bool fresh = subject.InsertOrAssign(key, value);
        bool ref_fresh = reference.insert_or_assign(key, value).second;
        ASSERT_EQ(fresh, ref_fresh) << "op " << op;
        break;
      }
      case 2: {  // erase
        bool erased = subject.Erase(key);
        bool ref_erased = reference.erase(key) > 0;
        ASSERT_EQ(erased, ref_erased) << "op " << op;
        break;
      }
      case 3: {  // lookup
        const uint64_t* v = subject.Find(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          ASSERT_EQ(v, nullptr) << "op " << op;
        } else {
          ASSERT_NE(v, nullptr) << "op " << op;
          ASSERT_EQ(*v, it->second) << "op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(subject.size(), reference.size()) << "op " << op;
  }
  // Final full sweep.
  size_t visited = 0;
  subject.ForEach([&](const uint64_t& k, uint64_t& v) {
    auto it = reference.find(k);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

}  // namespace
}  // namespace diesel
