// Telemetry determinism: for a fixed seed, the observability plane itself is
// part of the reproducible output. The virtual-time timeline export and the
// flight-recorder dump must be byte-identical across two same-seed chaos
// runs, and histogram tail exemplars captured under faults must resolve —
// via the recorded span id — to a connected, phase-annotated span tree.
// The chaos seed is sweepable via DIESEL_CHAOS_SEED like the other
// integration chaos suites.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "tests/testutil/flightrec_listener.h"

namespace diesel {
namespace {

constexpr int kEpochs = 2;
constexpr uint32_t kClientNodes = 2;

uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("DIESEL_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

dlt::DatasetSpec MakeSpec() {
  dlt::DatasetSpec spec;
  spec.name = "telemetry";
  spec.num_classes = 2;
  spec.files_per_class = 30;
  spec.mean_file_bytes = 2048;
  return spec;
}

struct TelemetryRun {
  std::string timeline_json;
  std::string flightrec_json;
  std::vector<Nanos> epoch_end;
  obs::MetricsSnapshot delta;
  // Traced runs only: the worst captured read.path.total_ns exemplar.
  size_t exemplar_count = 0;
  uint64_t exemplar_trace = 0;
  std::string exemplar_tree;
};

/// Ingest, preload a oneshot cache over 2 nodes, then read every file for
/// kEpochs epochs while a Timeline samples the registry each read. `plan`
/// attaches the fault injector for the read phase; `trace` attaches a
/// tracer (which makes tail observations carry exemplars — exemplar capture
/// depends on cumulative histogram state, so the byte-stability runs stay
/// tracerless).
TelemetryRun RunWorkload(const net::FaultPlan* plan, bool trace) {
  TelemetryRun out;
  // Each run models a fresh process invocation of a bench binary: zero the
  // cumulative registry so interval extremes and exemplar thresholds do not
  // leak across runs, and rewind the flight-recorder rings.
  obs::Metrics().ResetAll();
  obs::MetricsSnapshot before = obs::Metrics().Snapshot();
  obs::Flight().Clear();  // fresh rings, sequence numbers rewound
  dlt::DatasetSpec spec = MakeSpec();

  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kClientNodes;
  core::Deployment dep(dopts);

  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (uint32_t n = 0; n < kClientNodes; ++n) {
    clients.push_back(dep.MakeClient(n, 0, spec.name));
    registry.Register(clients.back()->endpoint());
  }
  for (auto& c : clients) EXPECT_TRUE(c->FetchSnapshot().ok());

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff = Micros(100);
  copts.breaker.cooldown = Micros(500);
  cache::TaskCache cache(dep.fabric(), dep.server(0),
                         *clients[0]->snapshot(), registry, copts);
  cache.EstablishConnections();
  EXPECT_TRUE(cache.Preload(0).ok());

  std::vector<std::unique_ptr<core::DatasetCacheInterface>> handles;
  for (auto& c : clients) {
    handles.push_back(cache.HandleFor(c->endpoint()));
    c->AttachCache(handles.back().get());
  }

  std::unique_ptr<net::FaultInjector> inj;
  obs::Tracer tracer;
  if (plan != nullptr) {
    inj = std::make_unique<net::FaultInjector>(*plan);
    dep.fabric().set_fault_injector(inj.get());
  }
  if (trace) dep.fabric().set_tracer(&tracer);

  obs::Timeline::Options topt;
  topt.bucket_ns = Millis(1);
  obs::Timeline timeline(topt);
  timeline.Start(0);

  const size_t n = spec.total_files();
  Nanos end = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (size_t k = 0; k < n; ++k) {
      size_t file = (k + static_cast<size_t>(epoch) * 13) % n;
      auto& client = clients[k % clients.size()];
      auto content = client->Get(dlt::FilePath(spec, file));
      EXPECT_TRUE(content.ok())
          << "epoch " << epoch << " file " << file << ": "
          << content.status().ToString();
      timeline.AdvanceTo(client->clock().now());
    }
    end = 0;
    for (auto& c : clients) end = std::max(end, c->clock().now());
    out.epoch_end.push_back(end);
    timeline.Note(end, "epoch " + std::to_string(epoch + 1) + " done");
  }
  timeline.Finish(end);

  out.timeline_json = timeline.SectionJson("chaos");
  out.flightrec_json = obs::Flight().Json();
  out.delta = obs::Metrics().Snapshot().DeltaSince(before);
  if (trace) {
    auto it = out.delta.histograms.find("read.path.total_ns");
    if (it != out.delta.histograms.end() && !it->second.exemplars().empty()) {
      out.exemplar_count = it->second.exemplars().size();
      out.exemplar_trace = it->second.exemplars().front().trace_id;
      out.exemplar_tree = tracer.TreeDump(out.exemplar_trace);
    }
  }
  dep.fabric().set_fault_injector(nullptr);
  dep.fabric().set_tracer(nullptr);
  return out;
}

net::FaultPlan MakePlan(const TelemetryRun& baseline) {
  Nanos e1 = baseline.epoch_end[0];
  Nanos e2 = baseline.epoch_end[1];
  net::FaultPlan plan;
  plan.seed = ChaosSeed(20260808);
  plan.rpc_drop_prob = 0.02;
  plan.fault_detect_timeout = Micros(200);
  // Flap a client node inside epoch 1; spike latency in epoch 2. The chaos
  // run is slower than the baseline, so the windows land earlier in its
  // epochs — reads span them either way.
  plan.node_flaps.push_back({.node = 1, .down_at = e1 / 2, .up_at = e1});
  plan.latency_spikes.push_back(
      {.start = e1, .end = e1 + (e2 - e1) / 2, .extra = Micros(25)});
  return plan;
}

TEST(TelemetryDeterminismTest, TimelineAndFlightRecorderAreByteStable) {
  TelemetryRun baseline = RunWorkload(nullptr, /*trace=*/false);
  ASSERT_EQ(baseline.epoch_end.size(), static_cast<size_t>(kEpochs));
  net::FaultPlan plan = MakePlan(baseline);

  TelemetryRun a = RunWorkload(&plan, /*trace=*/false);
  TelemetryRun b = RunWorkload(&plan, /*trace=*/false);

  // Same seed, same bytes: the exported section and the black box both
  // reproduce exactly, including every fault event and note.
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.flightrec_json, b.flightrec_json);
  EXPECT_EQ(a.epoch_end, b.epoch_end);

  // The telemetry carries real evidence, not just empty buckets: the
  // timeline saw the hot read path and both epoch markers, the flight
  // recorder retained the injected faults.
  EXPECT_NE(a.timeline_json.find("read.path.total_ns"), std::string::npos);
  EXPECT_NE(a.timeline_json.find("epoch 1 done"), std::string::npos);
  EXPECT_NE(a.timeline_json.find("epoch 2 done"), std::string::npos);
  EXPECT_NE(a.flightrec_json.find("\"kind\": \"fault\""), std::string::npos);
  // The flap window rejects RPCs on the flapped node at deterministic
  // virtual times, so this holds for every sweep seed; random drops
  // (p=0.02) may add to it but some seeds legitimately roll zero.
  EXPECT_GT(a.delta.SumCounters("net.rpc.flap_rejects") +
                a.delta.SumCounters("net.rpc.drops"),
            0u);

  // A different fault schedule diverges the telemetry — the byte-equality
  // above is not vacuous. Doubling the detect timeout is guaranteed to
  // diverge for every sweep seed: run c replays run a exactly up to the
  // first flap reject / drop (which the assertion above proves exists),
  // then pays a different timeout there. Reseeding p=0.02 drops would not
  // be: two seeds can both roll zero drops.
  net::FaultPlan other = plan;
  other.fault_detect_timeout *= 2;
  TelemetryRun c = RunWorkload(&other, /*trace=*/false);
  EXPECT_NE(c.timeline_json, a.timeline_json);
}

TEST(TelemetryDeterminismTest, TailExemplarsResolveToSpanTreesUnderFaults) {
  TelemetryRun baseline = RunWorkload(nullptr, /*trace=*/false);
  net::FaultPlan plan = MakePlan(baseline);

  TelemetryRun traced = RunWorkload(&plan, /*trace=*/true);
  // Fault-slowed reads are far above the tail threshold, so the worst ones
  // were captured with their span ids.
  ASSERT_GT(traced.exemplar_count, 0u);
  ASSERT_NE(traced.exemplar_trace, obs::kNoSpan);
  // The span id resolves to a connected tree rooted at the read, with the
  // critical-path phases annotated inline.
  ASSERT_FALSE(traced.exemplar_tree.empty());
  EXPECT_NE(traced.exemplar_tree.find("cache.get_file"), std::string::npos);
  EXPECT_NE(traced.exemplar_tree.find("phase."), std::string::npos);
}

}  // namespace
}  // namespace diesel
