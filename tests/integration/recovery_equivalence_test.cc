// Property: metadata recovery from self-contained chunks reconstructs the
// KV tier exactly — every key/value pair the original ingest produced is
// present and identical after a total wipe + RecoverMetadata (§4.1.2).
#include <gtest/gtest.h>

#include <map>

#include "core/deployment.h"
#include "core/housekeeping.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

std::map<std::string, std::string> DumpKv(kv::KvCluster& kv) {
  std::map<std::string, std::string> out;
  for (uint32_t s = 0; s < kv.NumShards(); ++s) {
    auto entries = kv.shard(s).Scan("");
    EXPECT_TRUE(entries.ok());
    for (auto& e : entries.value()) {
      EXPECT_TRUE(out.emplace(e.key, e.value).second) << "dup " << e.key;
    }
  }
  return out;
}

class RecoveryEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RecoveryEquivalenceTest, RebuiltKvMatchesOriginalExactly) {
  dlt::DatasetSpec spec;
  spec.name = "eq";
  spec.num_classes = 4;
  spec.files_per_class = GetParam() / 4;
  spec.mean_file_bytes = 700;

  core::Deployment dep({});
  auto writer = dep.MakeClient(0, 0, spec.name, 8 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());

  std::map<std::string, std::string> original = DumpKv(dep.kv());
  ASSERT_FALSE(original.empty());

  for (uint32_t s = 0; s < dep.kv().NumShards(); ++s) {
    dep.kv().FailShard(s);
    dep.kv().RestartShard(s);
  }
  ASSERT_EQ(dep.kv().TotalKeys(), 0u);

  sim::VirtualClock admin;
  auto stats = dep.server(0).RecoverMetadata(admin, spec.name, 0);
  ASSERT_TRUE(stats.ok());

  std::map<std::string, std::string> rebuilt = DumpKv(dep.kv());
  // The dataset record's update timestamp is recomputed from chunk create
  // times, which the ingest path also used, so even it must match — compare
  // everything byte for byte.
  ASSERT_EQ(rebuilt.size(), original.size());
  for (const auto& [key, value] : original) {
    auto it = rebuilt.find(key);
    ASSERT_NE(it, rebuilt.end()) << "missing key " << key;
    EXPECT_EQ(it->second, value) << "value mismatch for " << key;
  }
}

TEST_P(RecoveryEquivalenceTest, RecoveryAfterDeletionsPreservesTombstones) {
  dlt::DatasetSpec spec;
  spec.name = "eqdel";
  spec.num_classes = 4;
  spec.files_per_class = GetParam() / 4;
  spec.mean_file_bytes = 700;

  core::Deployment dep({});
  auto writer = dep.MakeClient(0, 0, spec.name, 8 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());

  sim::VirtualClock clock;
  // Delete a few files, then purge so the chunks themselves carry the
  // compacted truth (the deletion bitmap lives only in KV until purge).
  for (size_t v : {size_t{1}, size_t{3}}) {
    ASSERT_TRUE(dep.server(0).DeleteFile(clock, 0, spec.name,
                                         dlt::FilePath(spec, v)).ok());
  }
  ASSERT_TRUE(core::PurgeDataset(clock, dep.server(0), spec.name).ok());

  for (uint32_t s = 0; s < dep.kv().NumShards(); ++s) {
    dep.kv().FailShard(s);
    dep.kv().RestartShard(s);
  }
  auto stats = dep.server(0).RecoverMetadata(clock, spec.name, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files_recovered, spec.total_files() - 2);
  // Deleted files stay deleted; survivors verify.
  EXPECT_TRUE(dep.server(0).ReadFile(clock, 0, spec.name,
                                     dlt::FilePath(spec, 1))
                  .status().IsNotFound());
  auto content = dep.server(0).ReadFile(clock, 0, spec.name,
                                        dlt::FilePath(spec, 2));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec, 2, content.value()));
}

INSTANTIATE_TEST_SUITE_P(DatasetSizes, RecoveryEquivalenceTest,
                         ::testing::Values(8u, 40u, 200u),
                         [](const auto& info) {
                           return "files" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace diesel
