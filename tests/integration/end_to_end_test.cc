// End-to-end integration: write a dataset through libDIESEL, snapshot it,
// read it back through the task-grained cache, chunk-wise shuffle, the FUSE
// facade, and after simulated metadata loss + recovery.
#include <gtest/gtest.h>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "fusefs/fusefs.h"
#include "ostore/mem_store.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 2;
    opts.num_servers = 1;
    deployment_ = std::make_unique<core::Deployment>(opts);

    spec_ = dlt::DatasetSpec{};
    spec_.name = "e2e";
    spec_.num_classes = 4;
    spec_.files_per_class = 50;
    spec_.mean_file_bytes = 4096;

    writer_ = deployment_->MakeClient(0, 0, spec_.name,
                                      /*chunk_bytes=*/64 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer_->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer_->Flush().ok());
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::unique_ptr<core::DieselClient> writer_;
};

TEST_F(EndToEndTest, WriteCreatesChunksAndMetadata) {
  EXPECT_GT(writer_->stats().chunks_flushed, 1u);
  auto dm = deployment_->server(0).GetDatasetMeta(writer_->clock(), 0,
                                                  spec_.name);
  ASSERT_TRUE(dm.ok()) << dm.status().ToString();
  EXPECT_EQ(dm->num_files, spec_.total_files());
  EXPECT_EQ(dm->num_chunks, writer_->stats().chunks_flushed);
}

TEST_F(EndToEndTest, ReadBackThroughServerVerifiesContent) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  for (size_t i : {size_t{0}, size_t{7}, size_t{123}, spec_.total_files() - 1}) {
    auto content = reader->Get(dlt::FilePath(spec_, i));
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << "file " << i;
  }
}

TEST_F(EndToEndTest, SnapshotServesMetadataLocally) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  ASSERT_TRUE(reader->FetchSnapshot().ok());
  uint64_t before = reader->stats().server_metadata_ops;
  auto meta = reader->Stat(dlt::FilePath(spec_, 3));
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(reader->stats().server_metadata_ops, before);
  EXPECT_GT(reader->stats().local_metadata_hits, 0u);

  auto ls = reader->List("/" + spec_.name + "/train");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->size(), spec_.num_classes);
}

TEST_F(EndToEndTest, TaskCacheServesAllFilesOneHop) {
  auto c0 = deployment_->MakeClient(0, 0, spec_.name);
  auto c1 = deployment_->MakeClient(1, 0, spec_.name);
  ASSERT_TRUE(c0->FetchSnapshot().ok());

  cache::TaskRegistry registry;
  registry.Register(c0->endpoint());
  registry.Register(c1->endpoint());
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0),
                         *c0->snapshot(), registry, {});
  cache.EstablishConnections();
  auto h0 = cache.HandleFor(c0->endpoint());
  auto h1 = cache.HandleFor(c1->endpoint());
  c0->AttachCache(h0.get());
  c1->AttachCache(h1.get());
  ASSERT_TRUE(c1->FetchSnapshot().ok());

  for (size_t i = 0; i < spec_.total_files(); ++i) {
    auto* client = (i % 2 == 0) ? c0.get() : c1.get();
    auto content = client->Get(dlt::FilePath(spec_, i));
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    ASSERT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << "file " << i;
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.local_hits, 0u);
  EXPECT_GT(stats.peer_hits, 0u);
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
}

TEST_F(EndToEndTest, ChunkWiseShuffleReadsEveryFileOnce) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  ASSERT_TRUE(reader->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *reader->snapshot();

  Rng rng(99);
  shuffle::ShufflePlan plan =
      shuffle::ChunkWiseShuffle(snap, {.group_size = 3}, rng);
  ASSERT_EQ(plan.file_order.size(), spec_.total_files());

  shuffle::GroupWindowReader gr(deployment_->server(0), snap,
                                deployment_->client_node(1));
  gr.StartEpoch(plan);
  std::vector<bool> seen(spec_.total_files(), false);
  sim::VirtualClock clock;
  while (!gr.Done()) {
    auto idx = gr.PeekIndex();
    ASSERT_TRUE(idx.ok());
    auto content = gr.Next(clock);
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    const core::FileMeta& fm = snap.files()[idx.value()];
    EXPECT_FALSE(fm.full_name.empty());
    ASSERT_FALSE(seen[idx.value()]);
    seen[idx.value()] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  // Memory bound: the window never exceeded the group's chunks.
  EXPECT_LE(gr.stats().peak_window_bytes, 3u * (64 * 1024 + 16 * 1024));
}

TEST_F(EndToEndTest, FuseMountReadsAndWalks) {
  auto c = deployment_->MakeClient(1, 0, spec_.name);
  ASSERT_TRUE(c->FetchSnapshot().ok());
  fusefs::FuseMount mount({c.get()});
  sim::VirtualClock app;

  auto content = mount.ReadFile(app, dlt::FilePath(spec_, 10));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 10, content.value()));

  auto walk = fusefs::LsRecursive(mount, app, "/" + spec_.name, true);
  ASSERT_TRUE(walk.ok()) << walk.status().ToString();
  EXPECT_EQ(walk->stats_issued, spec_.total_files());
}

TEST_F(EndToEndTest, MetadataRecoveryAfterTotalKvLoss) {
  // Wipe every KV shard (scenario b), then rebuild from chunk headers.
  for (uint32_t s = 0; s < deployment_->kv().NumShards(); ++s) {
    deployment_->kv().FailShard(s);
    deployment_->kv().RestartShard(s);
  }
  EXPECT_EQ(deployment_->kv().TotalKeys(), 0u);

  sim::VirtualClock admin;
  auto stats = deployment_->server(0).RecoverMetadata(admin, spec_.name, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->files_recovered, spec_.total_files());
  EXPECT_EQ(stats->chunks_scanned, writer_->stats().chunks_flushed);

  // Reads work again, contents intact.
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  auto content = reader->Get(dlt::FilePath(spec_, 42));
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_TRUE(dlt::VerifyContent(spec_, 42, content.value()));
}

}  // namespace
}  // namespace diesel
