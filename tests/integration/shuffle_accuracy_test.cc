// Regression form of the Fig. 13 claim: training with chunk-wise shuffle
// must reach the same accuracy as shuffle-over-dataset (within a small
// tolerance), end-to-end through DIESEL storage.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "dlt/distributed_task.h"
#include "dlt/trainer.h"
#include "shuffle/shuffle.h"

namespace diesel {
namespace {

constexpr size_t kTrain = 3000;
constexpr size_t kEval = 600;
constexpr size_t kEpochs = 5;

struct Rig {
  dlt::SampleSpec samples;
  std::unique_ptr<core::Deployment> dep;
  std::vector<dlt::LabelledSample> eval;

  Rig() {
    samples.num_classes = 10;
    samples.dims = 32;
    samples.separation = 0.45;
    core::DeploymentOptions opts;
    opts.num_client_nodes = 2;
    dep = std::make_unique<core::Deployment>(opts);
    auto writer = dep->MakeClient(0, 0, "acc", 8 * 1024);
    // Class-sorted write order: worst case for chunk-local class diversity.
    for (size_t c = 0; c < samples.num_classes; ++c) {
      for (size_t i = c; i < kTrain; i += samples.num_classes) {
        char name[64];
        std::snprintf(name, sizeof(name), "/acc/cls%02zu/s%05zu.bin", c, i);
        EXPECT_TRUE(writer->Put(name, dlt::MakeSample(samples, i)).ok());
      }
    }
    EXPECT_TRUE(writer->Flush().ok());
    for (size_t i = 0; i < kEval; ++i) {
      auto s = dlt::SoftmaxTrainer::Decode(
          dlt::MakeSample(samples, kTrain + i));
      EXPECT_TRUE(s.ok());
      eval.push_back(std::move(s).value());
    }
  }

  dlt::SoftmaxTrainer MakeTrainer() const {
    dlt::TrainerOptions topts;
    topts.num_classes = samples.num_classes;
    topts.dims = samples.dims;
    topts.learning_rate = 0.004;
    return dlt::SoftmaxTrainer(topts);
  }
};

TEST(ShuffleAccuracyTest, ChunkWiseMatchesDatasetShuffle) {
  Rig rig;

  // Arm A: conventional dataset shuffle, reading through the server.
  dlt::SoftmaxTrainer baseline = rig.MakeTrainer();
  {
    sim::VirtualClock snap_clock;
    auto snap = rig.dep->server(0).BuildSnapshot(snap_clock, 0, "acc");
    ASSERT_TRUE(snap.ok());
    Rng rng(404);
    sim::VirtualClock clock;
    for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<uint32_t> order = shuffle::ShuffleDataset(*snap, rng);
      std::vector<dlt::LabelledSample> ordered;
      ordered.reserve(order.size());
      for (uint32_t idx : order) {
        auto content = rig.dep->server(0).ReadFile(
            clock, 0, "acc", snap->files()[idx].full_name);
        ASSERT_TRUE(content.ok());
        auto s = dlt::SoftmaxTrainer::Decode(content.value());
        ASSERT_TRUE(s.ok());
        ordered.push_back(std::move(s).value());
      }
      baseline.TrainEpoch(ordered);
    }
  }

  // Arm B: chunk-wise shuffle through the DistributedTrainingTask.
  dlt::SoftmaxTrainer chunkwise = rig.MakeTrainer();
  {
    dlt::DistributedTaskOptions topts;
    topts.num_nodes = 2;
    topts.io_workers_per_node = 2;
    topts.minibatch = 32;
    topts.shuffle.group_size = 4;
    topts.use_task_cache = false;  // memory-constrained group windows
    dlt::DistributedTrainingTask task(*rig.dep, "acc", topts);
    ASSERT_TRUE(task.Setup().ok());
    for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
      auto report = task.RunEpoch([&](std::span<const Bytes> batch) {
        std::vector<dlt::LabelledSample> decoded;
        for (const Bytes& b : batch) {
          auto s = dlt::SoftmaxTrainer::Decode(b);
          if (!s.ok()) return s.status();
          decoded.push_back(std::move(s).value());
        }
        chunkwise.TrainBatch(decoded);
        return Status::Ok();
      });
      ASSERT_TRUE(report.ok());
    }
  }

  double base_top1 = baseline.TopKAccuracy(rig.eval, 1);
  double chunk_top1 = chunkwise.TopKAccuracy(rig.eval, 1);
  // Both must have learned something and agree within tolerance (Fig. 13).
  EXPECT_GT(base_top1, 0.5);
  EXPECT_GT(chunk_top1, 0.5);
  EXPECT_NEAR(chunk_top1, base_top1, 0.05);
  EXPECT_NEAR(chunkwise.TopKAccuracy(rig.eval, 5),
              baseline.TopKAccuracy(rig.eval, 5), 0.03);
}

}  // namespace
}  // namespace diesel
