// Elastic membership integration: planned mid-epoch rescale, drain
// semantics, crash re-own. The headline property: an 8 -> 12 planned
// rescale in the middle of a read epoch completes with ZERO failed reads
// and byte-correct contents, and moves only the consistent-hashing share
// of the chunks — never a stall-the-world rebuild.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "cache/task_cache.h"
#include "common/rng.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "membership/membership.h"
#include "obs/metrics.h"
#include "tests/testutil/flightrec_listener.h"

namespace diesel {
namespace {

struct Harness {
  dlt::DatasetSpec spec;
  std::unique_ptr<core::Deployment> dep;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  std::unique_ptr<cache::TaskCache> cache;
  membership::MembershipTable table;

  const core::MetadataSnapshot& snap() const { return *clients[0]->snapshot(); }

  const core::FileMeta& File(size_t index) const {
    const core::FileMeta* meta = snap().Lookup(dlt::FilePath(spec, index));
    EXPECT_NE(meta, nullptr) << "file " << index;
    return *meta;
  }
};

/// Deployment with `total_nodes` client nodes; dataset ingested; a oneshot
/// cache preloaded over the first `members` nodes (2 clients per member
/// node) with the membership table attached.
std::unique_ptr<Harness> MakeHarness(size_t members, size_t total_nodes,
                                     size_t files = 600) {
  auto h = std::make_unique<Harness>();
  h->spec.name = "rescale";
  h->spec.num_classes = 10;
  h->spec.files_per_class = files / 10;
  h->spec.mean_file_bytes = 2048;
  h->spec.fixed_size = true;

  core::DeploymentOptions dopts;
  dopts.num_client_nodes = total_nodes;
  h->dep = std::make_unique<core::Deployment>(dopts);
  auto writer = h->dep->MakeClient(0, 99, h->spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(h->spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());
  h->dep->ResetDevices();

  for (size_t n = 0; n < members; ++n) {
    for (uint32_t i = 0; i < 2; ++i) {
      h->clients.push_back(h->dep->MakeClient(n, i, h->spec.name));
      h->registry.Register(h->clients.back()->endpoint());
    }
  }
  EXPECT_TRUE(h->clients[0]->FetchSnapshot().ok());

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  h->cache = std::make_unique<cache::TaskCache>(
      h->dep->fabric(), h->dep->server(0), h->snap(), h->registry, copts);
  h->cache->EstablishConnections();

  std::vector<sim::NodeId> initial(members);
  for (size_t i = 0; i < members; ++i) initial[i] = h->dep->client_node(i);
  h->table.Bootstrap(initial, 0);
  h->cache->AttachMembership(h->table);
  EXPECT_TRUE(h->cache->Preload(0).ok());
  return h;
}

TEST(RescaleTest, MidEpochPlannedRescale8To12HasZeroFailedReads) {
  auto h = MakeHarness(/*members=*/8, /*total_nodes=*/12, /*files=*/1200);
  const size_t total_chunks = h->snap().chunks().size();
  ASSERT_GT(total_chunks, 50u);

  obs::MetricsSnapshot before = obs::Metrics().Snapshot();

  // Closed-loop epoch over 16 clients; 40% in, four nodes join — the
  // planned 8 -> 12 rescale — while reads keep flowing.
  Rng rng(17);
  std::vector<uint32_t> order(h->snap().num_files());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<sim::VirtualClock> clocks(h->clients.size(),
                                        sim::VirtualClock(0));
  const size_t rescale_at = order.size() * 2 / 5;
  size_t failed = 0;
  for (size_t cursor = 0; cursor < order.size(); ++cursor) {
    size_t next = 0;
    for (size_t c = 1; c < clocks.size(); ++c) {
      if (clocks[c].now() < clocks[next].now()) next = c;
    }
    if (cursor == rescale_at) {
      for (size_t n = 8; n < 12; ++n) {
        h->table.Join(h->dep->client_node(n), clocks[next].now());
      }
      EXPECT_EQ(h->table.NumActive(), 12u);
    }
    auto r = h->cache->GetFile(clocks[next], h->clients[next]->endpoint(),
                               h->File(order[cursor]));
    if (!r.ok()) {
      ++failed;
      continue;
    }
    EXPECT_TRUE(dlt::VerifyContent(h->spec, order[cursor], r.value()))
        << "file " << order[cursor];
  }
  EXPECT_EQ(failed, 0u);  // the acceptance bar: zero failed reads

  // Only the consistent-hashing share moved: the four joiners own ~1/3 of
  // the space, so migrations stay well clear of a full reshuffle.
  auto stats = h->cache->stats();
  double moved = static_cast<double>(stats.migrated_chunks) /
                 static_cast<double>(total_chunks);
  EXPECT_GT(moved, 0.10);
  EXPECT_LT(moved, 0.60);
  EXPECT_GT(stats.migrated_bytes, 0u);
  EXPECT_EQ(stats.reown_chunks, 0u);  // planned: the backend is never re-hit

  // Every new owner answers for its chunks after the dust settles.
  sim::VirtualClock sweep(h->cache->last_transition_end());
  for (size_t i = 0; i < h->snap().num_files(); ++i) {
    auto r = h->cache->GetFile(sweep, h->clients[0]->endpoint(), h->File(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(dlt::VerifyContent(h->spec, i, r.value()));
  }
  EXPECT_EQ(h->cache->migrations_in_flight(), 0u);

  // Registry mirror agrees with the hand-kept stats.
  obs::MetricsSnapshot d = obs::Metrics().Snapshot().DeltaSince(before);
  EXPECT_EQ(d.SumCounters("membership.migrated_chunks"),
            stats.migrated_chunks);
  EXPECT_EQ(d.SumCounters("membership.migrated_bytes"), stats.migrated_bytes);
  EXPECT_EQ(d.SumCounters("membership.joins"), 4u);
}

TEST(RescaleTest, SingleJoinMovesAboutOneNthOfBytes) {
  auto h = MakeHarness(/*members=*/8, /*total_nodes=*/9);
  const size_t total_chunks = h->snap().chunks().size();
  uint64_t resident = h->cache->stats().bytes_cached;
  ASSERT_GT(resident, 0u);

  h->table.Join(h->dep->client_node(8), Millis(1));

  auto stats = h->cache->stats();
  double moved_chunks = static_cast<double>(stats.migrated_chunks) /
                        static_cast<double>(total_chunks);
  double moved_bytes = static_cast<double>(stats.migrated_bytes) /
                       static_cast<double>(resident);
  double ideal = 1.0 / 9.0;
  EXPECT_GT(moved_chunks, ideal / 4);
  EXPECT_LT(moved_chunks, ideal * 4);
  EXPECT_GT(moved_bytes, ideal / 4);
  EXPECT_LT(moved_bytes, ideal * 4);

  // Let every migration land, then total resident bytes are conserved:
  // chunks moved, they were not duplicated or dropped.
  sim::VirtualClock sweep(h->cache->last_transition_end());
  for (size_t i = 0; i < h->snap().num_files(); ++i) {
    auto r = h->cache->GetFile(sweep, h->clients[0]->endpoint(), h->File(i));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(h->cache->migrations_in_flight(), 0u);
  EXPECT_EQ(h->cache->stats().bytes_cached, resident);
  EXPECT_EQ(h->cache->stats().chunk_loads,
            static_cast<uint64_t>(total_chunks));  // preload only
}

TEST(RescaleTest, DrainServesReadsUntilMovesLandThenDeparts) {
  auto h = MakeHarness(/*members=*/4, /*total_nodes=*/4);
  const auto& snap = h->snap();
  const sim::NodeId victim = h->dep->client_node(1);

  // Chunks the victim owns before the drain.
  std::unordered_set<size_t> victims_chunks;
  for (size_t ci = 0; ci < snap.chunks().size(); ++ci) {
    if (h->cache->OwnerNodeOfChunk(ci).value() == victim) {
      victims_chunks.insert(ci);
    }
  }
  ASSERT_FALSE(victims_chunks.empty());
  uint64_t resident = h->cache->stats().bytes_cached;

  // Announce the drain, then immediately read files on the moved chunks:
  // the migrations have not landed yet (their arrival is in the future),
  // so the draining node itself serves them — no stall, no failure.
  Nanos drain_at = Millis(1);
  h->table.StartDrain(victim, drain_at);
  EXPECT_GT(h->cache->migrations_in_flight(), 0u);
  sim::VirtualClock early(drain_at);
  size_t reads_during_drain = 0;
  for (size_t i = 0; i < snap.num_files() && reads_during_drain < 20; ++i) {
    const core::FileMeta& fm = h->File(i);
    if (victims_chunks.count(snap.ChunkIndex(fm.chunk)) == 0) continue;
    auto r = h->cache->GetFile(early, h->clients[0]->endpoint(), fm);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(dlt::VerifyContent(h->spec, i, r.value()));
    ++reads_during_drain;
  }
  EXPECT_GT(reads_during_drain, 0u);

  // Depart. All in-flight moves finalize, the drained partition drops, and
  // nothing the task reads is lost: bytes are conserved and the backend is
  // never re-hit.
  h->table.CompleteDrain(victim, h->cache->last_transition_end() + Millis(1));
  EXPECT_EQ(h->cache->migrations_in_flight(), 0u);
  EXPECT_EQ(h->cache->stats().bytes_cached, resident);
  sim::VirtualClock late(h->cache->last_transition_end() + Millis(1));
  for (size_t i = 0; i < snap.num_files(); ++i) {
    auto r = h->cache->GetFile(late, h->clients[0]->endpoint(), h->File(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(dlt::VerifyContent(h->spec, i, r.value()));
  }
  EXPECT_EQ(h->cache->stats().reown_chunks, 0u);
  for (size_t ci : victims_chunks) {
    EXPECT_NE(h->cache->OwnerNodeOfChunk(ci).value(), victim);
  }
}

/// Oracle marking every odd chunk dead for the rest of the epoch.
class OddChunksDead : public cache::EvictionOracle {
 public:
  uint64_t NextAccessAfter(size_t chunk_index, uint64_t cursor) const override {
    return chunk_index % 2 == 0 ? cursor + 1 : kNever;
  }
};

TEST(RescaleTest, CrashReownSkipsOracleDeadChunks) {
  auto h = MakeHarness(/*members=*/4, /*total_nodes=*/4);
  const auto& snap = h->snap();
  const sim::NodeId victim = h->dep->client_node(2);

  std::vector<size_t> victims_chunks;
  for (size_t ci = 0; ci < snap.chunks().size(); ++ci) {
    if (h->cache->OwnerNodeOfChunk(ci).value() == victim) {
      victims_chunks.push_back(ci);
    }
  }
  size_t dead = 0, live = 0;
  for (size_t ci : victims_chunks) (ci % 2 == 0 ? live : dead) += 1;
  ASSERT_GT(dead, 0u);
  ASSERT_GT(live, 0u);

  OddChunksDead oracle;
  h->cache->InstallEvictionOracle(&oracle);
  h->cache->SetEpochCursor(0);

  h->table.Crash(victim, Millis(5));

  // The lost partition re-owned only what the epoch will still touch; the
  // dead half was skipped and counted.
  auto stats = h->cache->stats();
  EXPECT_EQ(stats.reown_chunks, live);
  EXPECT_EQ(stats.reown_skipped, dead);
  EXPECT_EQ(stats.migrated_chunks, 0u);  // crash: nothing streams peer-to-peer
  for (size_t ci : victims_chunks) {
    EXPECT_EQ(h->cache->ChunkResident(ci), ci % 2 == 0) << "chunk " << ci;
  }

  // A dead chunk is still readable on demand (miss -> backend load).
  h->cache->InstallEvictionOracle(nullptr);
  sim::VirtualClock clock(h->cache->last_transition_end());
  for (size_t i = 0; i < snap.num_files(); ++i) {
    auto r = h->cache->GetFile(clock, h->clients[0]->endpoint(), h->File(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(dlt::VerifyContent(h->spec, i, r.value()));
  }
}

TEST(RescaleTest, RecoverAfterCrashRestoresOwnershipAndBytes) {
  auto h = MakeHarness(/*members=*/4, /*total_nodes=*/4);
  const auto& snap = h->snap();
  const sim::NodeId victim = h->dep->client_node(0);
  std::vector<sim::NodeId> before(snap.chunks().size());
  for (size_t ci = 0; ci < before.size(); ++ci) {
    before[ci] = h->cache->OwnerNodeOfChunk(ci).value();
  }

  h->table.Crash(victim, Millis(1));
  Nanos recover_at = h->cache->last_transition_end() + Millis(1);
  h->table.Recover(victim, recover_at);

  // Consistent hashing sends exactly the old chunks home again; recovery is
  // a planned change, so they stream from the peers that re-owned them.
  sim::VirtualClock sweep(h->cache->last_transition_end());
  size_t moved_home = 0;
  for (size_t ci = 0; ci < before.size(); ++ci) {
    EXPECT_EQ(h->cache->OwnerNodeOfChunk(ci).value(), before[ci]);
    moved_home += before[ci] == victim ? 1 : 0;
  }
  EXPECT_GT(moved_home, 0u);
  EXPECT_GE(h->cache->stats().migrated_chunks, moved_home);
  for (size_t i = 0; i < snap.num_files(); ++i) {
    auto r = h->cache->GetFile(sweep, h->clients[0]->endpoint(), h->File(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(dlt::VerifyContent(h->spec, i, r.value()));
  }
  EXPECT_EQ(h->cache->migrations_in_flight(), 0u);
}

TEST(RescaleTest, ChurnTimelineIsDeterministic) {
  auto run = [] {
    auto h = MakeHarness(/*members=*/4, /*total_nodes=*/6);
    h->table.Join(h->dep->client_node(4), Millis(1));
    h->table.Crash(h->dep->client_node(1), Millis(2));
    h->table.StartDrain(h->dep->client_node(2), Millis(3));
    h->table.CompleteDrain(h->dep->client_node(2), Millis(6));
    h->table.Recover(h->dep->client_node(1), Millis(8));
    auto stats = h->cache->stats();
    return std::tuple<Nanos, uint64_t, uint64_t, uint64_t>(
        h->cache->last_transition_end(), stats.migrated_chunks,
        stats.migrated_bytes, stats.reown_chunks);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace diesel
