// Cross-restart persistence: chunks live in a real on-disk DirStore; the
// in-memory KV tier dies with the process. A "restart" builds a fresh KV +
// server over the same directory and recovers metadata from the
// self-contained chunks — the dlcmd tool's operating model.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/client.h"
#include "core/housekeeping.h"
#include "core/server.h"
#include "kv/cluster.h"
#include "net/fabric.h"
#include "ostore/dir_store.h"

namespace diesel {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("diesel_persist_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  struct Instance {
    sim::Cluster cluster{2};
    net::Fabric fabric{cluster};
    kv::KvCluster kv;
    ostore::DirStore store;
    core::DieselServer server;
    sim::VirtualClock clock;

    explicit Instance(const fs::path& root)
        : kv(fabric, {.nodes = {1}, .shards_per_node = 2}),
          store(root),
          server(fabric, kv, store, {.node = 1}) {}

    core::DieselClient Client(const std::string& dataset) {
      core::ClientOptions copts;
      copts.dataset = dataset;
      return core::DieselClient(fabric, {&server}, copts);
    }
  };

  fs::path root_;
};

TEST_F(PersistenceTest, DataSurvivesProcessRestart) {
  {
    Instance first(root_);
    core::DieselClient writer = first.Client("persist");
    for (int i = 0; i < 60; ++i) {
      std::string payload = "payload-" + std::to_string(i);
      ASSERT_TRUE(writer.Put("/persist/f" + std::to_string(i),
                             AsBytesView(payload)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
  }  // process "exits": KV contents are gone with it

  Instance second(root_);
  EXPECT_EQ(second.kv.TotalKeys(), 0u);
  auto stats = second.server.RecoverMetadata(second.clock, "persist", 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->files_recovered, 60u);

  core::DieselClient reader = second.Client("persist");
  auto content = reader.Get("/persist/f42");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(content.value()), "payload-42");
}

TEST_F(PersistenceTest, AppendAcrossRestartsKeepsWriteOrder) {
  {
    Instance first(root_);
    core::DieselClient writer = first.Client("ds");
    ASSERT_TRUE(writer.Put("/ds/gen1", AsBytesView(std::string("one"))).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    Instance second(root_);
    ASSERT_TRUE(second.server.RecoverMetadata(second.clock, "ds", 0).ok());
    core::DieselClient writer = second.Client("ds");
    // Later wall-time: chunk IDs must sort after generation 1.
    writer.clock().Advance(Seconds(5.0));
    ASSERT_TRUE(writer.Put("/ds/gen2", AsBytesView(std::string("two"))).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  Instance third(root_);
  ASSERT_TRUE(third.server.RecoverMetadata(third.clock, "ds", 0).ok());
  auto chunks = third.server.metadata().ListChunks(third.clock, "ds");
  ASSERT_TRUE(chunks.ok());
  ASSERT_EQ(chunks->size(), 2u);
  EXPECT_LT((*chunks)[0].timestamp_sec(), (*chunks)[1].timestamp_sec());
  core::DieselClient reader = third.Client("ds");
  EXPECT_EQ(ToString(reader.Get("/ds/gen1").value()), "one");
  EXPECT_EQ(ToString(reader.Get("/ds/gen2").value()), "two");
}

TEST_F(PersistenceTest, PurgeCompactsOnDisk) {
  uint64_t before, after;
  {
    Instance first(root_);
    core::DieselClient writer = first.Client("p");
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(writer.Put("/p/f" + std::to_string(i),
                             AsBytesView(std::string(500, 'x'))).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
    before = first.store.TotalBytes();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(first.server.DeleteFile(first.clock, 0, "p",
                                          "/p/f" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(core::PurgeDataset(first.clock, first.server, "p").ok());
    after = first.store.TotalBytes();
  }
  EXPECT_LT(after, before);
  // Restart sees the compacted dataset.
  Instance second(root_);
  auto stats = second.server.RecoverMetadata(second.clock, "p", 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files_recovered, 30u);
}

}  // namespace
}  // namespace diesel
