// Chaos equivalence: a 3-epoch distributed read under a seeded fault
// schedule — a task-node flap, a KV-node loss + recovery, random RPC drops,
// a latency spike and a corrupted chunk fetch — must deliver byte-identical
// file contents in the same per-epoch read order as the fault-free run.
// Faults may only cost time, never correctness. The same seed must also
// reproduce the chaos run bit-for-bit (deterministic injection).
// The chaos seed is sweepable: DIESEL_CHAOS_SEED=<n> reruns the whole
// schedule under a different seed (the nightly chaos sweep runs 32 of
// them); unset, the pinned default keeps local runs reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cache/task_cache.h"
#include "common/crc32.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/testutil/flightrec_listener.h"

namespace diesel {
namespace {

constexpr int kEpochs = 3;
constexpr uint32_t kClientNodes = 2;
constexpr uint32_t kClientsPerNode = 2;
constexpr sim::NodeId kFlappedNode = 1;  // a task master node

/// Sweep hook: the nightly chaos job exports DIESEL_CHAOS_SEED to replay
/// every seeded schedule in this file under a fresh seed.
uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("DIESEL_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

dlt::DatasetSpec MakeSpec() {
  dlt::DatasetSpec spec;
  spec.name = "chaos";
  spec.num_classes = 3;
  spec.files_per_class = 40;
  spec.mean_file_bytes = 2048;
  return spec;
}

struct RunOutput {
  /// Per epoch, the CRC32C of every file content in read order.
  std::vector<std::vector<uint32_t>> crcs;
  /// Slowest client clock after each epoch.
  std::vector<Nanos> epoch_end;
  cache::TaskCacheStats cache_stats;
  net::FaultInjectorStats fault_stats;
  /// Span-tree dump of the traced read phase (fault runs only).
  std::string trace_dump;
  /// Registry delta across the whole run (this run's metrics only).
  obs::MetricsSnapshot metrics_delta;
};

/// Ingest the dataset, preload a oneshot task cache over 2 nodes x 2
/// clients, then read every file for kEpochs epochs in a deterministic
/// epoch-rotated order. `plan` (optional) is attached to the fabric for the
/// read phase only; `kv_outage` kills + recovers one KV node between epochs
/// 1 and 2.
RunOutput RunWorkload(const net::FaultPlan* plan, bool kv_outage) {
  RunOutput out;
  // The registry is process-global and accumulates across runs; this run's
  // contribution is the delta from here.
  obs::MetricsSnapshot reg_before = obs::Metrics().Snapshot();
  dlt::DatasetSpec spec = MakeSpec();

  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kClientNodes;
  core::Deployment dep(dopts);

  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());

  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (uint32_t n = 0; n < kClientNodes; ++n) {
    for (uint32_t i = 0; i < kClientsPerNode; ++i) {
      clients.push_back(dep.MakeClient(n, i, spec.name));
      registry.Register(clients.back()->endpoint());
    }
  }
  for (auto& c : clients) EXPECT_TRUE(c->FetchSnapshot().ok());

  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  // Sized for the chaos schedule: small backoffs so consecutive failures
  // land inside the flap window (tripping the breaker) while enough
  // attempts remain to ride the flap out, and a short breaker cooldown so
  // recovery is observed within the run.
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff = Micros(100);
  copts.breaker.cooldown = Micros(500);
  cache::TaskCache cache(dep.fabric(), dep.server(0),
                         *clients[0]->snapshot(), registry, copts);
  cache.EstablishConnections();
  EXPECT_TRUE(cache.Preload(0).ok());

  std::vector<std::unique_ptr<core::DatasetCacheInterface>> handles;
  for (auto& c : clients) {
    handles.push_back(cache.HandleFor(c->endpoint()));
    c->AttachCache(handles.back().get());
  }

  // Faults start with the read phase (ingest + preload ran clean). The
  // tracer rides along so every injected fault lands as a span annotation.
  std::unique_ptr<net::FaultInjector> inj;
  obs::Tracer tracer;
  if (plan != nullptr) {
    inj = std::make_unique<net::FaultInjector>(*plan);
    dep.fabric().set_fault_injector(inj.get());
    dep.fabric().set_tracer(&tracer);
  }

  const size_t n = spec.total_files();
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (kv_outage && epoch == 1) {
      // Machine crash on the first KV node between epochs: shards restart
      // empty and the server redrives metadata recovery from chunk headers.
      dep.kv().FailShardsOnNode(dep.kv_node(0));
      dep.kv().RestartShardsOnNode(dep.kv_node(0));
      sim::VirtualClock admin;
      auto recovered = dep.server(0).RecoverMetadata(admin, spec.name, 0);
      EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    }
    std::vector<uint32_t> crcs;
    crcs.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      size_t file = (k + static_cast<size_t>(epoch) * 17) % n;
      auto& client = clients[k % clients.size()];
      auto content = client->Get(dlt::FilePath(spec, file));
      EXPECT_TRUE(content.ok())
          << "epoch " << epoch << " file " << file << ": "
          << content.status().ToString();
      crcs.push_back(content.ok() ? Crc32c(content.value()) : 0);
    }
    out.crcs.push_back(std::move(crcs));
    Nanos end = 0;
    for (auto& c : clients) end = std::max(end, c->clock().now());
    out.epoch_end.push_back(end);
  }

  // Final sweep: after all scheduled faults have fired and recovered, every
  // file must verify against the generator (catches a corrupted chunk that
  // was re-owned during recovery).
  for (size_t i = 0; i < n; ++i) {
    auto content = clients[i % clients.size()]->Get(dlt::FilePath(spec, i));
    EXPECT_TRUE(content.ok()) << content.status().ToString();
    if (content.ok()) {
      EXPECT_TRUE(dlt::VerifyContent(spec, i, content.value())) << i;
    }
  }

  out.cache_stats = cache.stats();
  if (inj != nullptr) {
    out.fault_stats = inj->stats();
    out.trace_dump = tracer.TextDump();
    dep.fabric().set_fault_injector(nullptr);
    dep.fabric().set_tracer(nullptr);
  }
  out.metrics_delta = obs::Metrics().Snapshot().DeltaSince(reg_before);
  return out;
}

net::FaultPlan MakeChaosPlan(const RunOutput& baseline) {
  // Position the flap inside epoch 2 of the fault-free timeline and the
  // latency spike inside epoch 3; absolute timing in the chaos run shifts,
  // but reads span the same virtual window so the schedule still lands.
  Nanos e1 = baseline.epoch_end[0];
  Nanos e2 = baseline.epoch_end[1];
  Nanos e3 = baseline.epoch_end[2];
  net::FaultPlan plan;
  plan.seed = ChaosSeed(20260806);
  plan.rpc_drop_prob = 0.01;
  plan.fault_detect_timeout = Micros(200);
  // Long enough that per-read retry backoff cannot simply jump over it:
  // the breaker must trip, reads fail over, and recovery fires after
  // up_at. (The chaos run itself is slower than the baseline, so the
  // window lands earlier in its epochs — that is fine, reads span it
  // either way.)
  plan.node_flaps.push_back(
      {.node = kFlappedNode, .down_at = e1 / 2, .up_at = e2});
  plan.latency_spikes.push_back(
      {.start = e2, .end = e2 + (e3 - e2) / 2, .extra = Micros(25)});
  // One chunk owned by the flapped node (odd index -> node 1 of 2): its
  // re-fetch during recovery comes back corrupted.
  plan.corrupt_chunk_fetches = {1};
  return plan;
}

TEST(ChaosEquivalenceTest, FaultScheduleNeverChangesWhatIsRead) {
  RunOutput baseline = RunWorkload(nullptr, /*kv_outage=*/false);
  ASSERT_EQ(baseline.crcs.size(), static_cast<size_t>(kEpochs));
  ASSERT_EQ(baseline.epoch_end.size(), static_cast<size_t>(kEpochs));
  EXPECT_EQ(baseline.cache_stats.failovers, 0u);
  EXPECT_EQ(baseline.cache_stats.corruptions_detected, 0u);

  net::FaultPlan plan = MakeChaosPlan(baseline);
  RunOutput chaos = RunWorkload(&plan, /*kv_outage=*/true);

  // Correctness: same contents in the same per-epoch read order.
  ASSERT_EQ(chaos.crcs.size(), baseline.crcs.size());
  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(chaos.crcs[e], baseline.crcs[e]) << "epoch " << e;
  }

  // The schedule actually fired: every fault category is visible. Random
  // drops are probabilistic — a sweep seed can legitimately roll zero —
  // so like corruption detection below they are only required under the
  // pinned default seed; schedule-driven categories hold for every seed.
  EXPECT_EQ(chaos.fault_stats.flaps_fired, 1u);
  if (std::getenv("DIESEL_CHAOS_SEED") == nullptr) {
    EXPECT_GT(chaos.fault_stats.rpc_drops, 0u);
  }
  EXPECT_GT(chaos.fault_stats.down_node_rejections, 0u);
  EXPECT_GT(chaos.fault_stats.latency_spike_hits, 0u);
  EXPECT_EQ(chaos.fault_stats.corruptions_injected, 1u);

  // And the recovery machinery reacted: degraded reads while the owner was
  // down, a breaker open and a recovery.
  EXPECT_GT(chaos.cache_stats.failovers, 0u);
  EXPECT_GE(chaos.cache_stats.breaker_opens, 1u);
  EXPECT_GE(chaos.cache_stats.node_recoveries, 1u);
  // Detection needs the corrupted copy to survive until a read touches the
  // flipped file; under some sweep seeds a second breaker trip discards it
  // first and the refetch is clean (injection is one-shot). The pinned
  // default seed is known to detect, so regressions in the CRC path still
  // fail here; sweep seeds only require detection never to exceed injection.
  if (std::getenv("DIESEL_CHAOS_SEED") == nullptr) {
    EXPECT_GE(chaos.cache_stats.corruptions_detected, 1u);
  }
  EXPECT_LE(chaos.cache_stats.corruptions_detected,
            chaos.fault_stats.corruptions_injected + 1);

  // Faults cost virtual time, never correctness.
  EXPECT_GT(chaos.epoch_end.back(), baseline.epoch_end.back());

  // Every injected fault category is visible in the span tree (drops only
  // under the pinned seed, for the reason above).
  EXPECT_FALSE(chaos.trace_dump.empty());
  if (std::getenv("DIESEL_CHAOS_SEED") == nullptr) {
    EXPECT_NE(chaos.trace_dump.find("fault.drop"), std::string::npos);
  }
  EXPECT_NE(chaos.trace_dump.find("fault.flap"), std::string::npos);
  EXPECT_NE(chaos.trace_dump.find("fault.latency_spike"), std::string::npos);
  EXPECT_NE(chaos.trace_dump.find("fault.corrupt"), std::string::npos);

  // The registry's process-wide counters agree with the hand-kept stats.
  const obs::MetricsSnapshot& d = chaos.metrics_delta;
  EXPECT_EQ(d.SumCounters("cache.local_hits"),
            chaos.cache_stats.local_hits);
  EXPECT_EQ(d.SumCounters("cache.peer_hits"), chaos.cache_stats.peer_hits);
  EXPECT_EQ(d.SumCounters("cache.failovers"), chaos.cache_stats.failovers);
  EXPECT_EQ(d.SumCounters("cache.breaker_opens"),
            chaos.cache_stats.breaker_opens);
  EXPECT_EQ(d.SumCounters("cache.node_recoveries"),
            chaos.cache_stats.node_recoveries);
  EXPECT_EQ(d.SumCounters("cache.corruptions_detected"),
            chaos.cache_stats.corruptions_detected);
  EXPECT_EQ(d.SumCounters("cache.chunk_loads"),
            chaos.cache_stats.chunk_loads);
  EXPECT_EQ(d.SumCounters("cache.evicted_bytes"),
            chaos.cache_stats.evicted_bytes);
  // No pins are taken in this workload (no prefetch scheduler attached),
  // and none may appear as a side effect of chaos recovery.
  EXPECT_EQ(chaos.cache_stats.pinned_chunks, 0u);
  EXPECT_EQ(d.SumCounters("net.rpc.drops"), chaos.fault_stats.rpc_drops);
  EXPECT_EQ(d.SumCounters("net.rpc.flap_rejects"),
            chaos.fault_stats.down_node_rejections);
  // The flapped node's re-own shows up as labeled progress.
  EXPECT_GT(d.SumCounters("cache.reown_chunks"), 0u);
  EXPECT_GT(d.SumCounters("kv.ops"), 0u);
}

TEST(ChaosEquivalenceTest, SameSeedReproducesChaosRunExactly) {
  RunOutput baseline = RunWorkload(nullptr, /*kv_outage=*/false);
  net::FaultPlan plan = MakeChaosPlan(baseline);

  RunOutput a = RunWorkload(&plan, /*kv_outage=*/true);
  RunOutput b = RunWorkload(&plan, /*kv_outage=*/true);

  EXPECT_EQ(a.crcs, b.crcs);
  EXPECT_EQ(a.epoch_end, b.epoch_end);  // identical virtual timelines
  EXPECT_EQ(a.fault_stats.rpc_drops, b.fault_stats.rpc_drops);
  EXPECT_EQ(a.fault_stats.down_node_rejections,
            b.fault_stats.down_node_rejections);
  EXPECT_EQ(a.fault_stats.latency_spike_hits,
            b.fault_stats.latency_spike_hits);
  EXPECT_EQ(a.fault_stats.corruptions_injected,
            b.fault_stats.corruptions_injected);
  EXPECT_EQ(a.fault_stats.flaps_fired, b.fault_stats.flaps_fired);
  EXPECT_EQ(a.cache_stats.failovers, b.cache_stats.failovers);
  EXPECT_EQ(a.cache_stats.breaker_opens, b.cache_stats.breaker_opens);
  EXPECT_EQ(a.cache_stats.node_recoveries, b.cache_stats.node_recoveries);
  EXPECT_EQ(a.cache_stats.corruptions_detected,
            b.cache_stats.corruptions_detected);

  // Same seed, same bytes: the traced span tree (timestamps, nesting and
  // fault annotations included) reproduces exactly, and so do the interval
  // metrics — including the KV retry counters the drops provoked.
  EXPECT_FALSE(a.trace_dump.empty());
  EXPECT_EQ(a.trace_dump, b.trace_dump);
  EXPECT_EQ(a.metrics_delta.SumCounters("kv.retries"),
            b.metrics_delta.SumCounters("kv.retries"));
  EXPECT_EQ(a.metrics_delta.counters, b.metrics_delta.counters);

  // A different seed rolls different drops (the schedule is seed-driven,
  // not incidental). Derived from the active seed so the sweep can never
  // collide the two.
  net::FaultPlan other = plan;
  other.seed = plan.seed + 1;
  RunOutput c = RunWorkload(&other, /*kv_outage=*/true);
  EXPECT_EQ(c.crcs, a.crcs);  // correctness is seed-independent
  EXPECT_NE(c.trace_dump, a.trace_dump);
}

}  // namespace
}  // namespace diesel
