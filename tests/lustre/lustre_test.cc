#include "lustre/lustre.h"

#include <gtest/gtest.h>

namespace diesel::lustre {
namespace {

class LustreTest : public ::testing::Test {
 protected:
  LustreTest() : cluster_(4), fabric_(cluster_) {
    LustreOptions opts;
    opts.mds_node = 2;
    opts.oss_node = 3;
    fs_ = std::make_unique<LustreFs>(fabric_, opts);
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<LustreFs> fs_;
  sim::VirtualClock clock_;
};

TEST_F(LustreTest, CreateAndReadBackContent) {
  std::string payload = "lustre file content";
  ASSERT_TRUE(fs_->Create(clock_, 0, "/d/f.txt", AsBytesView(payload)).ok());
  auto data = fs_->Read(clock_, 0, "/d/f.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(data.value()), payload);
}

TEST_F(LustreTest, CreateSizedReadsZerosButChargesTime) {
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/d/s.bin", 1 << 20).ok());
  sim::VirtualClock small_clock, big_clock;
  ASSERT_TRUE(fs_->CreateSized(small_clock, 0, "/d/tiny.bin", 128).ok());
  auto big = fs_->Read(big_clock, 0, "/d/s.bin");
  auto small = fs_->Read(small_clock, 0, "/d/tiny.bin");
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(big->size(), 1u << 20);
  EXPECT_GT(big_clock.now(), small_clock.now());
}

TEST_F(LustreTest, ReadMissingFails) {
  EXPECT_TRUE(fs_->Read(clock_, 0, "/ghost").status().IsNotFound());
}

TEST_F(LustreTest, StatReturnsSizeAndDirBit) {
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/a/b/c.bin", 777).ok());
  auto st = fs_->Stat(clock_, 0, "/a/b/c.bin", true);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 777u);
  EXPECT_FALSE(st->is_dir);
  auto dir = fs_->Stat(clock_, 0, "/a/b", false);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->is_dir);
}

TEST_F(LustreTest, StatWithSizeCostsMoreThanWithout) {
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/x/f", 10).ok());
  sim::VirtualClock plain, sized;
  ASSERT_TRUE(fs_->Stat(plain, 0, "/x/f", false).ok());
  ASSERT_TRUE(fs_->Stat(sized, 1, "/x/f", true).ok());
  // The OSS glimpse makes ls -lR slower than ls -R (Fig. 10c).
  EXPECT_GT(sized.now(), plain.now());
}

TEST_F(LustreTest, ReadDirListsChildren) {
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/root/sub/f1", 1).ok());
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/root/f2", 1).ok());
  auto entries = fs_->ReadDir(clock_, 0, "/root");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // "sub" and "f2"
  auto sub = fs_->ReadDir(clock_, 0, "/root/sub");
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value(), std::vector<std::string>{"f1"});
}

TEST_F(LustreTest, ReadDirMissingDirFails) {
  EXPECT_TRUE(fs_->ReadDir(clock_, 0, "/nowhere").status().IsNotFound());
}

TEST_F(LustreTest, UnlinkRemovesFileAndDirEntry) {
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/u/f", 1).ok());
  ASSERT_TRUE(fs_->Unlink(clock_, 0, "/u/f").ok());
  EXPECT_TRUE(fs_->Read(clock_, 0, "/u/f").status().IsNotFound());
  auto entries = fs_->ReadDir(clock_, 0, "/u");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  EXPECT_TRUE(fs_->Unlink(clock_, 0, "/u/f").IsNotFound());
}

TEST_F(LustreTest, SmallFileCreatesAreMdsBound) {
  // 64 sequential creates of tiny files serialize around the MDS: total time
  // must be at least 64 x the MDS create cost.
  sim::VirtualClock w;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs_->CreateSized(w, 0, "/mds/f" + std::to_string(i), 128).ok());
  }
  EXPECT_GT(w.now(), 64 * sim::kLustreCreateCost);
}

TEST_F(LustreTest, MdsDeviceAccountsOps) {
  uint64_t before = fs_->mds().ops_served();
  ASSERT_TRUE(fs_->CreateSized(clock_, 0, "/ops/f", 1).ok());
  ASSERT_TRUE(fs_->Stat(clock_, 0, "/ops/f", false).ok());
  EXPECT_GE(fs_->mds().ops_served(), before + 2);
}

}  // namespace
}  // namespace diesel::lustre
