#include "fusefs/mount_manager.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::fusefs {
namespace {

class MountManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<core::Deployment>(core::DeploymentOptions{});
    spec_.name = "mm";
    spec_.num_classes = 2;
    spec_.files_per_class = 10;
    spec_.mean_file_bytes = 512;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    for (uint32_t i = 0; i < 2; ++i) {
      clients_.push_back(deployment_->MakeClient(0, 1 + i, spec_.name));
      ASSERT_TRUE(clients_.back()->FetchSnapshot().ok());
      daemon_.push_back(clients_.back().get());
    }
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  std::vector<core::DieselClient*> daemon_;
  MountManager manager_;
};

TEST_F(MountManagerTest, MountResolveReadUnmount) {
  auto mount = manager_.Mount("/mnt/data", daemon_, "/" + spec_.name);
  ASSERT_TRUE(mount.ok()) << mount.status().ToString();
  EXPECT_EQ(manager_.NumMounts(), 1u);

  // "/mnt/data/train/..." resolves to "/mm/train/...".
  sim::VirtualClock app;
  std::string inner = dlt::FilePath(spec_, 3);  // "/mm/train/clsX/..."
  std::string outer = "/mnt/data" + inner.substr(spec_.name.size() + 1);
  auto content = manager_.ReadFile(app, outer);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_TRUE(dlt::VerifyContent(spec_, 3, content.value()));

  auto ls = manager_.ReadDir(app, "/mnt/data/train");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->size(), spec_.num_classes);

  ASSERT_TRUE(manager_.Unmount("/mnt/data").ok());
  EXPECT_TRUE(manager_.ReadFile(app, outer).status().IsNotFound());
  EXPECT_TRUE(manager_.Unmount("/mnt/data").IsNotFound());
}

TEST_F(MountManagerTest, RejectsBadMountpoints) {
  EXPECT_FALSE(manager_.Mount("relative", daemon_).ok());
  EXPECT_FALSE(manager_.Mount("/trailing/", daemon_).ok());
  EXPECT_FALSE(manager_.Mount("/dou//ble", daemon_).ok());
  EXPECT_FALSE(manager_.Mount("/ok", {}).ok());  // no daemon clients
}

TEST_F(MountManagerTest, DoubleMountIsAlreadyExists) {
  ASSERT_TRUE(manager_.Mount("/a", daemon_).ok());
  EXPECT_EQ(manager_.Mount("/a", daemon_).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MountManagerTest, LongestPrefixWins) {
  ASSERT_TRUE(manager_.Mount("/mnt", daemon_, "/" + spec_.name).ok());
  ASSERT_TRUE(manager_.Mount("/mnt/inner", daemon_, "/" + spec_.name).ok());
  auto outer = manager_.Resolve("/mnt/somefile");
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->second, "/" + spec_.name + "/somefile");
  auto inner = manager_.Resolve("/mnt/inner/x");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->second, "/" + spec_.name + "/x");
  // Prefix match must respect path boundaries.
  EXPECT_TRUE(manager_.Resolve("/mnt2/x").status().IsNotFound());
}

TEST_F(MountManagerTest, MountpointsListed) {
  ASSERT_TRUE(manager_.Mount("/b", daemon_).ok());
  ASSERT_TRUE(manager_.Mount("/a", daemon_).ok());
  EXPECT_EQ(manager_.Mountpoints(),
            (std::vector<std::string>{"/a", "/b"}));
}

}  // namespace
}  // namespace diesel::fusefs
