// FUSE write path and the §5 shuffle-list helper file.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "fusefs/fusefs.h"

namespace diesel::fusefs {
namespace {

class FuseWriteShuffleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<core::Deployment>(core::DeploymentOptions{});
    spec_.name = "fws";
    spec_.num_classes = 3;
    spec_.files_per_class = 20;
    spec_.mean_file_bytes = 2048;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    for (uint32_t i = 0; i < 2; ++i) {
      clients_.push_back(deployment_->MakeClient(1, i, spec_.name));
      ASSERT_TRUE(clients_.back()->FetchSnapshot().ok());
      daemon_.push_back(clients_.back().get());
    }
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  std::vector<core::DieselClient*> daemon_;
};

TEST_F(FuseWriteShuffleTest, WriteFlushReadRoundTrip) {
  FuseMount mount(daemon_);
  sim::VirtualClock app;
  // Writers on node 1 need unique chunk-id timestamps vs the ingest writer.
  for (auto* c : daemon_) c->clock().Advance(Seconds(2.0));
  std::string payload(5000, 'W');
  ASSERT_TRUE(mount.WriteFile(app, "/fws/new/file.bin",
                              AsBytesView(payload)).ok());
  ASSERT_TRUE(mount.Flush(app).ok());

  // Visible through a fresh client (no snapshot: server path).
  auto reader = deployment_->MakeClient(0, 9, spec_.name);
  auto content = reader->Get("/fws/new/file.bin");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(ToString(content.value()), payload);
}

TEST_F(FuseWriteShuffleTest, LargeWritePaysMoreCrossings) {
  FuseMount mount(daemon_);
  sim::VirtualClock small_clock, big_clock;
  uint64_t before = mount.stats().requests;
  ASSERT_TRUE(mount.WriteFile(small_clock, "/fws/s.bin",
                              AsBytesView(std::string(1024, 'a'))).ok());
  uint64_t small_reqs = mount.stats().requests - before;
  before = mount.stats().requests;
  ASSERT_TRUE(mount.WriteFile(big_clock, "/fws/b.bin",
                              AsBytesView(std::string(600 * 1024, 'b'))).ok());
  uint64_t big_reqs = mount.stats().requests - before;
  EXPECT_GT(big_reqs, small_reqs);
}

TEST_F(FuseWriteShuffleTest, ShuffleListCoversDatasetExactlyOnce) {
  FuseMount mount(daemon_);
  sim::VirtualClock app;
  auto list = mount.ReadShuffleList(app, /*group_size=*/2, /*seed=*/7);
  ASSERT_TRUE(list.ok()) << list.status().ToString();

  std::set<std::string> seen;
  std::istringstream in(list.value());
  std::string line;
  size_t count = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(seen.insert(line).second) << "duplicate " << line;
    ++count;
  }
  EXPECT_EQ(count, spec_.total_files());
  // Every listed path is readable through the same mount.
  auto content = mount.ReadFile(app, *seen.begin());
  EXPECT_TRUE(content.ok());
}

TEST_F(FuseWriteShuffleTest, ShuffleListVariesWithSeed) {
  FuseMount mount(daemon_);
  sim::VirtualClock app;
  auto a = mount.ReadShuffleList(app, 2, 1);
  auto b = mount.ReadShuffleList(app, 2, 2);
  auto a2 = mount.ReadShuffleList(app, 2, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_NE(a.value(), b.value());   // epochs differ
  EXPECT_EQ(a.value(), a2.value());  // deterministic per seed
}

TEST_F(FuseWriteShuffleTest, ShuffleListNeedsSnapshot) {
  auto bare = deployment_->MakeClient(1, 8, spec_.name);  // no snapshot
  FuseMount mount({bare.get()});
  sim::VirtualClock app;
  EXPECT_EQ(mount.ReadShuffleList(app, 2, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace diesel::fusefs
