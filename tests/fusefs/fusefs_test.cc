#include "fusefs/fusefs.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "fusefs/localfs.h"
#include "fusefs/lustre_adapter.h"
#include "lustre/lustre.h"
#include "sim/calibration.h"

namespace diesel::fusefs {
namespace {

class FuseMountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    deployment_ = std::make_unique<core::Deployment>(opts);

    spec_.name = "fuse";
    spec_.num_classes = 3;
    spec_.files_per_class = 10;
    spec_.mean_file_bytes = 4096;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 32 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());

    for (uint32_t i = 0; i < 4; ++i) {
      clients_.push_back(deployment_->MakeClient(1, i, spec_.name));
      ASSERT_TRUE(clients_.back()->FetchSnapshot().ok());
      client_ptrs_.push_back(clients_.back().get());
    }
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  std::vector<core::DieselClient*> client_ptrs_;
};

TEST_F(FuseMountTest, ReadFileMatchesContent) {
  FuseMount mount(client_ptrs_);
  sim::VirtualClock app;
  auto content = mount.ReadFile(app, dlt::FilePath(spec_, 4));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 4, content.value()));
  EXPECT_GT(mount.stats().bytes_read, 0u);
}

TEST_F(FuseMountTest, MissingFileNotFound) {
  FuseMount mount(client_ptrs_);
  sim::VirtualClock app;
  EXPECT_TRUE(mount.ReadFile(app, "/fuse/nope").status().IsNotFound());
}

TEST_F(FuseMountTest, CrossingCostChargedPerRequest) {
  FuseMount mount(client_ptrs_);
  sim::VirtualClock app;
  uint64_t before = mount.stats().requests;
  ASSERT_TRUE(mount.ReadFile(app, dlt::FilePath(spec_, 0)).ok());
  // A ~4KB file: open + (1 read riding along) + close = 2+ crossings.
  EXPECT_GE(mount.stats().requests - before, 2u);
  EXPECT_GT(app.now(), 2 * sim::kFuseCrossingCost);
}

TEST_F(FuseMountTest, LargeFilesSplitIntoMoreRequests) {
  // Write one big file (600KB) -> ceil(600/128) slices.
  auto writer = deployment_->MakeClient(0, 9, spec_.name);
  writer->clock().Advance(Seconds(2.0));
  Bytes big(600 * 1024, 0x7);
  ASSERT_TRUE(writer->Put("/fuse/big.bin", big).ok());
  ASSERT_TRUE(writer->Flush().ok());
  auto reader = deployment_->MakeClient(1, 8, spec_.name);
  FuseMount mount({reader.get()});
  sim::VirtualClock app;
  uint64_t before = mount.stats().requests;
  auto content = mount.ReadFile(app, "/fuse/big.bin");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), big.size());
  // open + 4 extra read slices + close = 6 crossings.
  EXPECT_EQ(mount.stats().requests - before, 6u);
}

TEST_F(FuseMountTest, StatAndReadDirAndWalk) {
  FuseMount mount(client_ptrs_);
  sim::VirtualClock app;
  auto st = mount.Stat(app, dlt::FilePath(spec_, 2), true);
  ASSERT_TRUE(st.ok());
  EXPECT_GT(st->size, 0u);
  EXPECT_FALSE(st->is_dir);

  auto dir = mount.Stat(app, "/fuse/train", false);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->is_dir);

  auto ls = mount.ReadDir(app, "/fuse/train");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->size(), spec_.num_classes);

  auto walk = LsRecursive(mount, app, "/fuse", false);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->entries_listed,
            1 + spec_.num_classes + spec_.total_files());  // train + dirs + files
  // ls --color stats every file even without -l.
  EXPECT_EQ(walk->stats_issued, spec_.total_files());
}

TEST_F(FuseMountTest, RequestsSpreadAcrossDaemonClients) {
  FuseMount mount(client_ptrs_);
  sim::VirtualClock app;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mount.ReadFile(app, dlt::FilePath(spec_, i)).ok());
  }
  size_t active = 0;
  for (auto& c : clients_) {
    if (c->stats().files_read > 0) ++active;
  }
  EXPECT_EQ(active, clients_.size());
}

TEST(XfsFsTest, StructureAndWalk) {
  XfsFs fs;
  for (int c = 0; c < 3; ++c) {
    for (int f = 0; f < 5; ++f) {
      fs.AddFile("/data/cls" + std::to_string(c) + "/f" + std::to_string(f),
                 100);
    }
  }
  EXPECT_EQ(fs.NumFiles(), 15u);
  sim::VirtualClock clock;
  auto ls = fs.ReadDir(clock, "/data");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->size(), 3u);
  EXPECT_TRUE((*ls)[0].is_dir);

  auto st = fs.Stat(clock, "/data/cls0/f0", true);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 100u);

  auto walk = LsRecursive(fs, clock, "/data", true);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->stats_issued, 15u);
  EXPECT_GT(clock.now(), 0u);
}

TEST(XfsFsTest, MissingPathsFail) {
  XfsFs fs;
  sim::VirtualClock clock;
  EXPECT_TRUE(fs.ReadDir(clock, "/nope").status().IsNotFound());
  EXPECT_TRUE(fs.Stat(clock, "/nope", false).status().IsNotFound());
}

TEST(LustreAdapterTest, WalkCountsMatch) {
  sim::Cluster cluster(3);
  net::Fabric fabric(cluster);
  lustre::LustreFs lfs(fabric, {.mds_node = 1, .oss_node = 2});
  sim::VirtualClock clock;
  for (int c = 0; c < 2; ++c) {
    for (int f = 0; f < 4; ++f) {
      ASSERT_TRUE(lfs.CreateSized(clock, 0,
                                  "/ds/c" + std::to_string(c) + "/f" +
                                      std::to_string(f),
                                  64).ok());
    }
  }
  LustreAdapter adapter(lfs, 0);
  sim::VirtualClock plain, sized;
  auto walk = LsRecursive(adapter, plain, "/ds", false);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->entries_listed, 2u + 8u);
  auto walk_l = LsRecursive(adapter, sized, "/ds", true);
  ASSERT_TRUE(walk_l.ok());
  EXPECT_EQ(walk_l->stats_issued, 8u);
  // ls -lR pays the size-on-OSS penalty (Fig. 10c).
  EXPECT_GT(sized.now(), plain.now());
}

}  // namespace
}  // namespace diesel::fusefs
