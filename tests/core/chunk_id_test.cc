#include "core/chunk_id.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace diesel::core {
namespace {

TEST(ChunkIdTest, FieldRoundTrip) {
  ChunkId id = ChunkId::Make(0x12345678, 0xAABBCCDDEEFFULL, 0x00ABCDEF,
                             0x00123456);
  EXPECT_EQ(id.timestamp_sec(), 0x12345678u);
  EXPECT_EQ(id.machine(), 0xAABBCCDDEEFFULL);
  EXPECT_EQ(id.process_id(), 0x00ABCDEFu);
  EXPECT_EQ(id.counter(), 0x00123456u);
}

TEST(ChunkIdTest, FieldsMaskedToDeclaredWidths) {
  // machine keeps 48 bits, pid/counter keep 24 bits (Table 1 layout).
  ChunkId id = ChunkId::Make(1, ~0ULL, ~0u, ~0u);
  EXPECT_EQ(id.machine(), 0xFFFFFFFFFFFFULL);
  EXPECT_EQ(id.process_id(), 0xFFFFFFu);
  EXPECT_EQ(id.counter(), 0xFFFFFFu);
}

TEST(ChunkIdTest, EncodedLengthAndRoundTrip) {
  ChunkId id = ChunkId::Make(1234567, 42, 7, 99);
  std::string enc = id.Encoded();
  EXPECT_EQ(enc.size(), ChunkId::kEncodedSize);
  auto back = ChunkId::FromEncoded(enc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), id);
}

TEST(ChunkIdTest, FromEncodedRejectsBadInput) {
  EXPECT_FALSE(ChunkId::FromEncoded("short").ok());
  EXPECT_FALSE(ChunkId::FromEncoded(std::string(22, '=')).ok());
  EXPECT_FALSE(ChunkId::FromEncoded(std::string(23, 'A')).ok());
}

TEST(ChunkIdTest, IsZero) {
  EXPECT_TRUE(ChunkId().IsZero());
  EXPECT_FALSE(ChunkId::Make(0, 0, 0, 1).IsZero());
}

// The §4.1.2 property: encoded order == binary order == write order.
TEST(ChunkIdTest, PropertyEncodedOrderMatchesWriteOrder) {
  Rng rng(3);
  std::vector<ChunkId> ids;
  uint32_t ts = 1000;
  ChunkIdGenerator gen_a(/*machine=*/1, /*pid=*/10);
  ChunkIdGenerator gen_b(/*machine=*/2, /*pid=*/20);
  for (int i = 0; i < 500; ++i) {
    ts += static_cast<uint32_t>(rng.Uniform(3));  // time moves forward
    ids.push_back((i % 2 == 0 ? gen_a : gen_b).Next(ts));
  }
  // Binary order sorts primarily by timestamp.
  std::vector<ChunkId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].timestamp_sec(), sorted[i].timestamp_sec());
  }
  // Encoded order must equal binary order.
  std::vector<std::string> encoded;
  for (const ChunkId& id : ids) encoded.push_back(id.Encoded());
  std::sort(encoded.begin(), encoded.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(encoded[i], sorted[i].Encoded()) << "position " << i;
  }
}

TEST(ChunkIdGeneratorTest, CounterIncrementsAndIdsUnique) {
  ChunkIdGenerator gen(5, 6);
  std::set<ChunkId> seen;
  for (int i = 0; i < 1000; ++i) {
    ChunkId id = gen.Next(42);
    EXPECT_EQ(id.counter(), static_cast<uint32_t>(i));
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(ChunkIdGeneratorTest, DistinctProcessesNeverCollide) {
  ChunkIdGenerator a(1, 1), b(1, 2), c(2, 1);
  std::set<ChunkId> seen;
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(seen.insert(a.Next(7)).second);
    EXPECT_TRUE(seen.insert(b.Next(7)).second);
    EXPECT_TRUE(seen.insert(c.Next(7)).second);
  }
}

TEST(ChunkIdGeneratorTest, CounterWrapsAt24Bits) {
  ChunkIdGenerator gen(1, 1);
  // Directly exercise Make's masking at the wrap boundary.
  ChunkId just_below = ChunkId::Make(1, 1, 1, 0xFFFFFF);
  ChunkId wrapped = ChunkId::Make(1, 1, 1, 0x1000000);
  EXPECT_EQ(just_below.counter(), 0xFFFFFFu);
  EXPECT_EQ(wrapped.counter(), 0u);
}

}  // namespace
}  // namespace diesel::core
