#include "core/client.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "ostore/mem_store.h"

namespace diesel::core {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentOptions opts;
    opts.num_client_nodes = 2;
    opts.num_servers = 2;
    deployment_ = std::make_unique<Deployment>(opts);

    spec_.name = "cli";
    spec_.num_classes = 2;
    spec_.files_per_class = 20;
    spec_.mean_file_bytes = 1024;

    writer_ = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer_->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer_->Flush().ok());
  }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  std::unique_ptr<DieselClient> writer_;
};

TEST_F(ClientTest, PutAutoFlushesAtChunkTarget) {
  // 40 files x ~1KB with an 8KB target => several chunks, not one per file.
  EXPECT_GT(writer_->stats().chunks_flushed, 2u);
  EXPECT_LT(writer_->stats().chunks_flushed, spec_.total_files());
}

TEST_F(ClientTest, FlushOnEmptyBuilderIsNoop) {
  uint64_t before = writer_->stats().chunks_flushed;
  ASSERT_TRUE(writer_->Flush().ok());
  EXPECT_EQ(writer_->stats().chunks_flushed, before);
}

TEST_F(ClientTest, GetWithoutSnapshotUsesServer) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  auto content = reader->Get(dlt::FilePath(spec_, 1));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 1, content.value()));
  EXPECT_EQ(reader->stats().files_read, 1u);
}

TEST_F(ClientTest, GetBatchReturnsInputOrder) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  std::vector<std::string> paths{dlt::FilePath(spec_, 9),
                                 dlt::FilePath(spec_, 0),
                                 dlt::FilePath(spec_, 17)};
  auto batch = reader->GetBatch(paths);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_TRUE(dlt::VerifyContent(spec_, 9, (*batch)[0]));
  EXPECT_TRUE(dlt::VerifyContent(spec_, 0, (*batch)[1]));
  EXPECT_TRUE(dlt::VerifyContent(spec_, 17, (*batch)[2]));
}

TEST_F(ClientTest, RequestsRoundRobinAcrossServers) {
  auto reader = deployment_->MakeClient(1, 0, spec_.name);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reader->Stat(dlt::FilePath(spec_, 0)).ok());
  }
  EXPECT_GT(deployment_->server(0).service().ops_served(), 0u);
  EXPECT_GT(deployment_->server(1).service().ops_served(), 0u);
}

TEST_F(ClientTest, SaveAndLoadMetaRoundTrip) {
  ostore::MemStore disk;
  auto c1 = deployment_->MakeClient(0, 1, spec_.name);
  ASSERT_TRUE(c1->FetchSnapshot().ok());
  ASSERT_TRUE(c1->SaveMeta(disk, "snapshots/cli.meta").ok());

  auto c2 = deployment_->MakeClient(1, 1, spec_.name);
  ASSERT_TRUE(c2->LoadMeta(disk, "snapshots/cli.meta").ok());
  ASSERT_NE(c2->snapshot(), nullptr);
  EXPECT_EQ(c2->snapshot()->num_files(), spec_.total_files());
}

TEST_F(ClientTest, SaveMetaWithoutSnapshotFails) {
  ostore::MemStore disk;
  auto c = deployment_->MakeClient(0, 1, spec_.name);
  EXPECT_EQ(c->SaveMeta(disk, "x").code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClientTest, LoadMetaRejectsWrongDataset) {
  ostore::MemStore disk;
  auto c1 = deployment_->MakeClient(0, 1, spec_.name);
  ASSERT_TRUE(c1->FetchSnapshot().ok());
  ASSERT_TRUE(c1->SaveMeta(disk, "m").ok());
  auto other = deployment_->MakeClient(1, 1, "different-dataset");
  EXPECT_EQ(other->LoadMeta(disk, "m").code(), StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, LoadMetaDetectsStaleSnapshot) {
  ostore::MemStore disk;
  auto c1 = deployment_->MakeClient(0, 1, spec_.name);
  ASSERT_TRUE(c1->FetchSnapshot().ok());
  ASSERT_TRUE(c1->SaveMeta(disk, "m").ok());

  // Mutate the dataset: write one more file -> dataset timestamp moves.
  auto w = deployment_->MakeClient(0, 2, spec_.name);
  w->clock().Advance(Seconds(2.0));  // chunk ids are second-granular
  dlt::GeneratedFile extra = dlt::MakeFile(spec_, spec_.total_files());
  ASSERT_TRUE(w->Put(extra.path, extra.content).ok());
  ASSERT_TRUE(w->Flush().ok());

  auto c2 = deployment_->MakeClient(1, 1, spec_.name);
  Status st = c2->LoadMeta(disk, "m");
  EXPECT_TRUE(st.IsStale()) << st.ToString();
  EXPECT_EQ(c2->snapshot(), nullptr);
}

TEST_F(ClientTest, DeleteInvalidatesLoadedSnapshot) {
  auto c = deployment_->MakeClient(0, 1, spec_.name);
  ASSERT_TRUE(c->FetchSnapshot().ok());
  ASSERT_TRUE(c->Delete(dlt::FilePath(spec_, 2)).ok());
  EXPECT_EQ(c->snapshot(), nullptr);
}

TEST_F(ClientTest, StatMissingFileNotFoundBothPaths) {
  auto c = deployment_->MakeClient(0, 1, spec_.name);
  EXPECT_TRUE(c->Stat("/cli/ghost").status().IsNotFound());
  ASSERT_TRUE(c->FetchSnapshot().ok());
  EXPECT_TRUE(c->Stat("/cli/ghost").status().IsNotFound());
}

TEST_F(ClientTest, CloseDropsConnectionsAndSnapshot) {
  auto c = deployment_->MakeClient(0, 1, spec_.name);
  ASSERT_TRUE(c->FetchSnapshot().ok());
  net::EndpointId ep = c->endpoint();
  EXPECT_GT(deployment_->fabric().connections().ConnectionsOf(ep), 0u);
  c->Close();
  EXPECT_EQ(deployment_->fabric().connections().ConnectionsOf(ep), 0u);
  EXPECT_EQ(c->snapshot(), nullptr);
}

TEST_F(ClientTest, SnapshotListMatchesServerList) {
  auto c = deployment_->MakeClient(0, 1, spec_.name);
  auto server_ls = c->List("/cli/train");
  ASSERT_TRUE(server_ls.ok());
  ASSERT_TRUE(c->FetchSnapshot().ok());
  auto local_ls = c->List("/cli/train");
  ASSERT_TRUE(local_ls.ok());
  ASSERT_EQ(server_ls->size(), local_ls->size());
}

}  // namespace
}  // namespace diesel::core
