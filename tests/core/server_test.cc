#include "core/server.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::core {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentOptions opts;
    opts.num_client_nodes = 2;
    deployment_ = std::make_unique<Deployment>(opts);

    spec_.name = "srv";
    spec_.num_classes = 2;
    spec_.files_per_class = 30;
    spec_.mean_file_bytes = 2048;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    chunks_flushed_ = writer->stats().chunks_flushed;
  }

  DieselServer& server() { return deployment_->server(0); }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  uint64_t chunks_flushed_ = 0;
  sim::VirtualClock clock_;
};

TEST_F(ServerTest, IngestRejectsCorruptChunk) {
  Bytes junk(100, 0xAB);
  Status st = server().IngestChunk(clock_, 0, "bad", junk);
  EXPECT_TRUE(st.IsCorruption());
}

TEST_F(ServerTest, ReadFileReturnsExactContent) {
  auto content = server().ReadFile(clock_, 0, spec_.name,
                                   dlt::FilePath(spec_, 5));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 5, content.value()));
}

TEST_F(ServerTest, ReadMissingFileIsNotFound) {
  EXPECT_TRUE(server().ReadFile(clock_, 0, spec_.name, "/srv/nope")
                  .status().IsNotFound());
}

TEST_F(ServerTest, RequestExecutorMergesBatchIntoFewRangeReads) {
  // Batch read of many files must issue fewer storage ops than files
  // (the executor sorts by (chunk, offset) and merges adjacent ranges).
  std::vector<std::string> paths;
  for (size_t i = 0; i < 40; ++i) paths.push_back(dlt::FilePath(spec_, i));

  uint64_t ops_before = deployment_->ssd_store().device().ops_served();
  auto contents = server().ReadFiles(clock_, 0, spec_.name, paths);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  uint64_t storage_ops =
      deployment_->ssd_store().device().ops_served() - ops_before;

  ASSERT_EQ(contents->size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, (*contents)[i])) << i;
  }
  EXPECT_LT(storage_ops, paths.size() / 2);
}

TEST_F(ServerTest, BatchedReadIsFasterThanSingles) {
  std::vector<std::string> paths;
  for (size_t i = 0; i < 30; ++i) paths.push_back(dlt::FilePath(spec_, i));
  sim::VirtualClock batched, single;
  ASSERT_TRUE(server().ReadFiles(batched, 0, spec_.name, paths).ok());
  for (const auto& p : paths) {
    ASSERT_TRUE(server().ReadFile(single, 1, spec_.name, p).ok());
  }
  EXPECT_LT(batched.now(), single.now());
}

TEST_F(ServerTest, ReadChunkReturnsParsableChunk) {
  auto chunks = server().metadata().ListChunks(clock_, spec_.name);
  ASSERT_TRUE(chunks.ok());
  ASSERT_FALSE(chunks->empty());
  auto blob = server().ReadChunk(clock_, 0, spec_.name, (*chunks)[0]);
  ASSERT_TRUE(blob.ok());
  auto view = ChunkView::Parse(blob.value());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->id(), (*chunks)[0]);
}

TEST_F(ServerTest, StatAndListDir) {
  auto fm = server().StatFile(clock_, 0, spec_.name, dlt::FilePath(spec_, 0));
  ASSERT_TRUE(fm.ok());
  EXPECT_GT(fm->length, 0u);

  auto ls = server().ListDir(clock_, 0, spec_.name, "/srv/train");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls->size(), spec_.num_classes);
}

TEST_F(ServerTest, BuildSnapshotMatchesDataset) {
  auto snap = server().BuildSnapshot(clock_, 0, spec_.name);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), spec_.total_files());
  EXPECT_EQ(snap->chunks().size(), chunks_flushed_);
  EXPECT_NE(snap->Lookup(dlt::FilePath(spec_, 3)), nullptr);
}

TEST_F(ServerTest, DeleteFileThenReadFails) {
  std::string victim = dlt::FilePath(spec_, 7);
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name, victim).ok());
  EXPECT_TRUE(server().ReadFile(clock_, 0, spec_.name, victim)
                  .status().IsNotFound());
  // Others unaffected.
  EXPECT_TRUE(server().ReadFile(clock_, 0, spec_.name,
                                dlt::FilePath(spec_, 8)).ok());
}

TEST_F(ServerTest, DeleteDatasetRemovesBlobsAndKeys) {
  ASSERT_TRUE(server().DeleteDataset(clock_, 0, spec_.name).ok());
  EXPECT_EQ(deployment_->kv().TotalKeys(), 0u);
  EXPECT_EQ(deployment_->store().NumObjects(), 0u);
  EXPECT_TRUE(server().GetDatasetMeta(clock_, 0, spec_.name)
                  .status().IsNotFound());
}

TEST_F(ServerTest, PartialRecoveryAfterSingleShardLoss) {
  // Scenario (a): one KV shard dies and restarts empty -> some keys lost.
  size_t keys_before = deployment_->kv().TotalKeys();
  deployment_->kv().FailShard(3);
  deployment_->kv().RestartShard(3);
  ASSERT_LT(deployment_->kv().TotalKeys(), keys_before);

  // Recover from timestamp 0 watermark (all chunks re-scanned; puts are
  // idempotent, lost keys restored).
  auto stats = server().RecoverMetadata(clock_, spec_.name, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(deployment_->kv().TotalKeys(), keys_before);
  EXPECT_TRUE(server().ReadFile(clock_, 0, spec_.name,
                                dlt::FilePath(spec_, 11)).ok());
}

TEST_F(ServerTest, WatermarkRecoverySkipsOldChunks) {
  // All chunks were written at virtual second ~0; a watermark in the future
  // scans nothing.
  auto stats = server().RecoverMetadata(clock_, spec_.name,
                                        /*from_ts_sec=*/1000000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->chunks_scanned, 0u);
}

TEST_F(ServerTest, RecoveryReadsHeadersNotPayloads) {
  auto dm = server().GetDatasetMeta(clock_, 0, spec_.name);
  ASSERT_TRUE(dm.ok());
  auto stats = server().RecoverMetadata(clock_, spec_.name, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->header_bytes_read, 0u);
  EXPECT_LT(stats->header_bytes_read, dm->total_bytes / 2)
      << "recovery should not read full chunk payloads";
}

}  // namespace
}  // namespace diesel::core
