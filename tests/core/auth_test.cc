#include "core/auth.h"

#include <gtest/gtest.h>

#include "net/fabric.h"

namespace diesel::core {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  AuthTest()
      : cluster_(3), fabric_(cluster_), config_(fabric_, 2),
        auth_(config_, 0) {}

  sim::Cluster cluster_;
  net::Fabric fabric_;
  etcd::ConfigStore config_;
  AuthRegistry auth_;
  sim::VirtualClock clock_;
};

TEST_F(AuthTest, CreateGrantAuthenticate) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "alice", "s3cret").ok());
  ASSERT_TRUE(auth_.GrantDataset(clock_, "alice", "imagenet").ok());
  EXPECT_TRUE(auth_.Authenticate(clock_, 1, "alice", "s3cret", "imagenet")
                  .ok());
}

TEST_F(AuthTest, WrongKeyRejected) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "alice", "s3cret").ok());
  ASSERT_TRUE(auth_.GrantDataset(clock_, "alice", "ds").ok());
  EXPECT_EQ(auth_.Authenticate(clock_, 1, "alice", "wrong", "ds").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(AuthTest, UnknownUserIsNotFound) {
  EXPECT_TRUE(auth_.Authenticate(clock_, 1, "mallory", "x", "ds")
                  .IsNotFound());
}

TEST_F(AuthTest, MissingGrantRejected) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "bob", "pw").ok());
  EXPECT_EQ(auth_.Authenticate(clock_, 1, "bob", "pw", "private").code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(auth_.GrantDataset(clock_, "bob", "private").ok());
  EXPECT_TRUE(auth_.Authenticate(clock_, 1, "bob", "pw", "private").ok());
}

TEST_F(AuthTest, RevokeRemovesAccess) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "carol", "pw").ok());
  ASSERT_TRUE(auth_.GrantDataset(clock_, "carol", "ds").ok());
  ASSERT_TRUE(auth_.RevokeDataset(clock_, "carol", "ds").ok());
  EXPECT_FALSE(auth_.Authenticate(clock_, 1, "carol", "pw", "ds").ok());
}

TEST_F(AuthTest, DuplicateUserRejected) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "dave", "pw1").ok());
  EXPECT_EQ(auth_.CreateUser(clock_, "dave", "pw2").code(),
            StatusCode::kAlreadyExists);
  // Original credentials still valid.
  ASSERT_TRUE(auth_.GrantDataset(clock_, "dave", "ds").ok());
  EXPECT_TRUE(auth_.Authenticate(clock_, 1, "dave", "pw1", "ds").ok());
  EXPECT_FALSE(auth_.Authenticate(clock_, 1, "dave", "pw2", "ds").ok());
}

TEST_F(AuthTest, GrantsAreIsolatedPerDataset) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "erin", "pw").ok());
  ASSERT_TRUE(auth_.GrantDataset(clock_, "erin", "a").ok());
  EXPECT_TRUE(auth_.Authenticate(clock_, 1, "erin", "pw", "a").ok());
  EXPECT_FALSE(auth_.Authenticate(clock_, 1, "erin", "pw", "b").ok());
}

TEST_F(AuthTest, GrantForUnknownUserFails) {
  EXPECT_TRUE(auth_.GrantDataset(clock_, "nobody", "ds").IsNotFound());
}

TEST_F(AuthTest, SecretsAreNotStoredRaw) {
  ASSERT_TRUE(auth_.CreateUser(clock_, "frank", "hunter2").ok());
  auto entry = config_.Get(clock_, 0, "/diesel/users/frank");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->value.find("hunter2"), std::string::npos);
  EXPECT_EQ(entry->value.size(), 16u);  // hex digest
}

TEST_F(AuthTest, EmptyCredentialsRejected) {
  EXPECT_EQ(auth_.CreateUser(clock_, "", "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(auth_.CreateUser(clock_, "x", "").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace diesel::core
