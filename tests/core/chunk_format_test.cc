#include "core/chunk_format.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace diesel::core {
namespace {

Bytes RandomContent(Rng& rng, size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

ChunkId TestId() { return ChunkId::Make(100, 1, 2, 3); }

TEST(ChunkBuilderTest, TracksFullness) {
  ChunkBuilder b(/*target=*/100);
  EXPECT_TRUE(b.Empty());
  EXPECT_FALSE(b.Full());
  Rng rng(1);
  b.Add("/f1", RandomContent(rng, 60));
  EXPECT_FALSE(b.Full());
  b.Add("/f2", RandomContent(rng, 60));
  EXPECT_TRUE(b.Full());
  EXPECT_EQ(b.num_files(), 2u);
  EXPECT_EQ(b.payload_bytes(), 120u);
}

TEST(ChunkBuilderTest, FinishResetsBuilder) {
  ChunkBuilder b(100);
  Rng rng(2);
  b.Add("/f", RandomContent(rng, 10));
  Bytes chunk = b.Finish(TestId(), 999);
  EXPECT_FALSE(chunk.empty());
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.payload_bytes(), 0u);
}

TEST(ChunkFormatTest, RoundTripPreservesFilesAndMetadata) {
  ChunkBuilder b(0);
  Rng rng(3);
  std::vector<Bytes> contents;
  for (int i = 0; i < 10; ++i) {
    contents.push_back(RandomContent(rng, 100 + static_cast<size_t>(i) * 37));
    b.Add("/dir/file" + std::to_string(i), contents.back());
  }
  Bytes chunk = b.Finish(TestId(), 12345);

  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->id(), TestId());
  EXPECT_EQ(view->create_ts_ns(), 12345u);
  ASSERT_EQ(view->entries().size(), 10u);
  EXPECT_EQ(view->num_deleted(), 0u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(view->entries()[i].name, "/dir/file" + std::to_string(i));
    EXPECT_FALSE(view->IsDeleted(i));
    auto content = view->ExtractFile(i);
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(content.value(), contents[i]);
  }
}

TEST(ChunkFormatTest, OffsetsAreContiguous) {
  ChunkBuilder b(0);
  Rng rng(4);
  b.Add("/a", RandomContent(rng, 11));
  b.Add("/b", RandomContent(rng, 13));
  b.Add("/c", RandomContent(rng, 17));
  Bytes chunk = b.Finish(TestId(), 0);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->entries()[0].offset, 0u);
  EXPECT_EQ(view->entries()[1].offset, 11u);
  EXPECT_EQ(view->entries()[2].offset, 24u);
}

TEST(ChunkFormatTest, FindEntryByName) {
  ChunkBuilder b(0);
  Rng rng(5);
  b.Add("/x/one", RandomContent(rng, 8));
  b.Add("/x/two", RandomContent(rng, 8));
  Bytes chunk = b.Finish(TestId(), 0);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  ASSERT_NE(view->FindEntry("/x/two"), nullptr);
  EXPECT_EQ(view->FindEntry("/x/two")->offset, 8u);
  EXPECT_EQ(view->FindEntry("/x/zzz"), nullptr);
}

TEST(ChunkFormatTest, FindEntryIndexedLookupCoversAllNames) {
  // The lazily built name index must agree with a straight linear scan for
  // every file, probed in an order unrelated to insertion order.
  ChunkBuilder b(0);
  Rng rng(11);
  constexpr size_t kFiles = 257;  // odd, not a power of two
  for (size_t i = 0; i < kFiles; ++i) {
    // Names deliberately NOT in lexicographic insert order.
    b.Add("/t/cls" + std::to_string((i * 7) % 10) + "/img" +
              std::to_string((i * 131) % kFiles),
          RandomContent(rng, 16));
  }
  Bytes chunk = b.Finish(TestId(), 1);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  for (const ChunkFileEntry& e : view->entries()) {
    const ChunkFileEntry* hit = view->FindEntry(e.name);
    ASSERT_NE(hit, nullptr) << e.name;
    EXPECT_EQ(hit->offset, e.offset);
    EXPECT_EQ(hit->length, e.length);
    EXPECT_EQ(hit->crc, e.crc);
  }
  EXPECT_EQ(view->FindEntry("/t/cls0/never-written"), nullptr);
  EXPECT_EQ(view->FindEntry(""), nullptr);
}

TEST(ChunkBuilderTest, SerializedHeaderBytesIsExact) {
  ChunkBuilder b(0);
  Rng rng(12);
  b.Add("/a", RandomContent(rng, 5));
  b.Add("/some/longer/name.jpg", RandomContent(rng, 7));
  b.Add("/x", RandomContent(rng, 3));
  uint64_t predicted = b.SerializedHeaderBytes();
  uint64_t payload = b.payload_bytes();
  Bytes chunk = b.Finish(TestId(), 42);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->header_len(), predicted);
  EXPECT_EQ(chunk.size(), predicted + payload);
}

TEST(ChunkFormatTest, EmptyChunkIsValid) {
  ChunkBuilder b(0);
  Bytes chunk = b.Finish(TestId(), 1);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->entries().empty());
}

TEST(ChunkFormatTest, HeaderOnlyParseServesRecovery) {
  ChunkBuilder b(0);
  Rng rng(6);
  b.Add("/r/f1", RandomContent(rng, 1000));
  b.Add("/r/f2", RandomContent(rng, 2000));
  Bytes chunk = b.Finish(TestId(), 77);

  auto hl = ChunkView::PeekHeaderLen({chunk.data(), 12});
  ASSERT_TRUE(hl.ok());
  ASSERT_LT(hl.value(), chunk.size());

  auto view = ChunkView::ParseHeaderOnly({chunk.data(), hl.value()});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->entries().size(), 2u);
  EXPECT_EQ(view->entries()[1].length, 2000u);
  // Payload access must be refused on header-only views.
  EXPECT_EQ(view->ExtractFile(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChunkFormatTest, CorruptMagicRejected) {
  ChunkBuilder b(0);
  Bytes chunk = b.Finish(TestId(), 0);
  chunk[0] ^= 0xFF;
  EXPECT_TRUE(ChunkView::Parse(chunk).status().IsCorruption());
  EXPECT_TRUE(ChunkView::PeekHeaderLen({chunk.data(), 12})
                  .status().IsCorruption());
}

TEST(ChunkFormatTest, CorruptHeaderByteFailsChecksum) {
  ChunkBuilder b(0);
  Rng rng(7);
  b.Add("/c/f", RandomContent(rng, 64));
  Bytes chunk = b.Finish(TestId(), 0);
  // Flip a byte inside the file table (past the fixed prefix).
  chunk[40] ^= 0x01;
  EXPECT_TRUE(ChunkView::Parse(chunk).status().IsCorruption());
}

TEST(ChunkFormatTest, CorruptPayloadCaughtByFileCrc) {
  ChunkBuilder b(0);
  Rng rng(8);
  b.Add("/c/f", RandomContent(rng, 64));
  Bytes chunk = b.Finish(TestId(), 0);
  auto clean = ChunkView::Parse(chunk);
  ASSERT_TRUE(clean.ok());
  chunk[chunk.size() - 1] ^= 0xFF;  // payload byte
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());  // header is intact
  EXPECT_TRUE(view->ExtractFile(0).status().IsCorruption());
}

TEST(ChunkFormatTest, TruncatedChunkRejected) {
  ChunkBuilder b(0);
  Rng rng(9);
  b.Add("/t/f", RandomContent(rng, 256));
  Bytes chunk = b.Finish(TestId(), 0);
  Bytes truncated(chunk.begin(), chunk.begin() + 20);
  EXPECT_FALSE(ChunkView::Parse(truncated).ok());
}

TEST(ChunkFormatTest, ExtractFileIndexOutOfRange) {
  ChunkBuilder b(0);
  Rng rng(10);
  b.Add("/f", RandomContent(rng, 10));
  Bytes chunk = b.Finish(TestId(), 0);
  auto view = ChunkView::Parse(chunk);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->ExtractFile(5).status().code(), StatusCode::kOutOfRange);
}

TEST(CompactChunkTest, DropsDeletedFiles) {
  ChunkBuilder b(0);
  Rng rng(11);
  std::vector<Bytes> contents;
  for (int i = 0; i < 5; ++i) {
    contents.push_back(RandomContent(rng, 50));
    b.Add("/p/f" + std::to_string(i), contents.back());
  }
  Bytes chunk = b.Finish(TestId(), 1);

  std::vector<uint8_t> bitmap{(1 << 1) | (1 << 3)};  // delete f1, f3
  ChunkId new_id = ChunkId::Make(100, 1, 2, 4);
  auto compacted = CompactChunk(chunk, bitmap, new_id, 2);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();

  auto view = ChunkView::Parse(compacted.value());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->entries().size(), 3u);
  EXPECT_EQ(view->entries()[0].name, "/p/f0");
  EXPECT_EQ(view->entries()[1].name, "/p/f2");
  EXPECT_EQ(view->entries()[2].name, "/p/f4");
  EXPECT_EQ(view->ExtractFile(1).value(), contents[2]);
  EXPECT_LT(compacted->size(), chunk.size());
}

TEST(CompactChunkTest, RejectsShortBitmap) {
  ChunkBuilder b(0);
  Rng rng(12);
  for (int i = 0; i < 9; ++i) b.Add("/f" + std::to_string(i),
                                    RandomContent(rng, 10));
  Bytes chunk = b.Finish(TestId(), 0);
  // 9 files need 2 bitmap bytes.
  EXPECT_FALSE(CompactChunk(chunk, {0}, TestId(), 0).ok());
}

}  // namespace
}  // namespace diesel::core
