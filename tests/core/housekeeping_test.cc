#include "core/housekeeping.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::core {
namespace {

class HousekeepingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentOptions opts;
    deployment_ = std::make_unique<Deployment>(opts);

    spec_.name = "hk";
    spec_.num_classes = 2;
    spec_.files_per_class = 20;
    spec_.mean_file_bytes = 1024;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  DieselServer& server() { return deployment_->server(0); }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  sim::VirtualClock clock_;
};

TEST_F(HousekeepingTest, PurgeWithNoDeletionsIsNoop) {
  auto stats = PurgeDataset(clock_, server(), spec_.name);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->chunks_compacted, 0u);
  EXPECT_EQ(stats->bytes_reclaimed, 0u);
}

TEST_F(HousekeepingTest, PurgeReclaimsDeletedFiles) {
  uint64_t bytes_before = deployment_->store().TotalBytes();
  // Delete a handful of files spread across chunks.
  std::vector<size_t> victims{0, 3, 9, 21, 33};
  for (size_t v : victims) {
    ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                    dlt::FilePath(spec_, v)).ok());
  }
  auto stats = PurgeDataset(clock_, server(), spec_.name);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->chunks_compacted, 0u);
  EXPECT_EQ(stats->files_dropped, victims.size());
  EXPECT_GT(stats->bytes_reclaimed, 0u);
  EXPECT_LT(deployment_->store().TotalBytes(), bytes_before);
}

TEST_F(HousekeepingTest, SurvivorsReadableAfterPurge) {
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                  dlt::FilePath(spec_, 5)).ok());
  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  // Deleted file stays gone; neighbours still verify.
  EXPECT_TRUE(server().ReadFile(clock_, 0, spec_.name,
                                dlt::FilePath(spec_, 5)).status().IsNotFound());
  for (size_t i : {size_t{4}, size_t{6}, size_t{30}}) {
    auto content = server().ReadFile(clock_, 0, spec_.name,
                                     dlt::FilePath(spec_, i));
    ASSERT_TRUE(content.ok()) << i << ": " << content.status().ToString();
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << i;
  }
}

TEST_F(HousekeepingTest, PurgedChunksHaveCleanBitmaps) {
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                  dlt::FilePath(spec_, 2)).ok());
  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  auto chunks = server().metadata().ListChunks(clock_, spec_.name);
  ASSERT_TRUE(chunks.ok());
  for (const ChunkId& id : chunks.value()) {
    auto cm = server().metadata().GetChunk(clock_, spec_.name, id);
    ASSERT_TRUE(cm.ok());
    EXPECT_EQ(cm->num_deleted, 0u);
  }
}

TEST_F(HousekeepingTest, SnapshotAfterPurgeIsConsistent) {
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                  dlt::FilePath(spec_, 1)).ok());
  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  auto snap = server().BuildSnapshot(clock_, 0, spec_.name);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), spec_.total_files() - 1);
  EXPECT_EQ(snap->Lookup(dlt::FilePath(spec_, 1)), nullptr);
  // Every surviving snapshot entry points into an existing chunk.
  for (const FileMeta& f : snap->files()) {
    EXPECT_NE(snap->ChunkIndex(f.chunk), static_cast<size_t>(-1))
        << f.full_name;
  }
}

TEST_F(HousekeepingTest, RecoveryAfterPurgeSeesCompactedState) {
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                  dlt::FilePath(spec_, 0)).ok());
  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  // Nuke KV and rebuild from (compacted) chunks.
  for (uint32_t s = 0; s < deployment_->kv().NumShards(); ++s) {
    deployment_->kv().FailShard(s);
    deployment_->kv().RestartShard(s);
  }
  auto stats = server().RecoverMetadata(clock_, spec_.name, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files_recovered, spec_.total_files() - 1);
}

}  // namespace
}  // namespace diesel::core
