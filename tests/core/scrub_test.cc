#include <gtest/gtest.h>

#include "core/deployment.h"
#include "core/housekeeping.h"
#include "dlt/dataset_gen.h"
#include "ostore/mem_store.h"

namespace diesel::core {
namespace {

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>(DeploymentOptions{});
    spec_.name = "scrub";
    spec_.num_classes = 2;
    spec_.files_per_class = 20;
    spec_.mean_file_bytes = 1024;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 8 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  /// Flip one byte of the stored chunk object at `byte_from_end`.
  void CorruptChunk(size_t chunk_index, size_t byte_from_end) {
    sim::VirtualClock clock;
    auto chunks = deployment_->server(0).metadata().ListChunks(clock,
                                                               spec_.name);
    ASSERT_TRUE(chunks.ok());
    ASSERT_LT(chunk_index, chunks->size());
    std::string key = ChunkObjectKey(spec_.name, (*chunks)[chunk_index]);
    auto blob = deployment_->store().Get(clock, 0, key);
    ASSERT_TRUE(blob.ok());
    Bytes mutated = blob.value();
    ASSERT_GE(mutated.size(), byte_from_end + 1);
    mutated[mutated.size() - 1 - byte_from_end] ^= 0xFF;
    ASSERT_TRUE(deployment_->store().Put(clock, 0, key, mutated).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  sim::VirtualClock clock_;
};

TEST_F(ScrubTest, CleanDatasetPasses) {
  auto stats = ScrubDataset(clock_, deployment_->server(0), spec_.name);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->chunks_checked, 0u);
  EXPECT_EQ(stats->files_checked, spec_.total_files());
  EXPECT_EQ(stats->corrupt_chunks, 0u);
  EXPECT_EQ(stats->corrupt_files, 0u);
  EXPECT_TRUE(stats->corrupt_keys.empty());
}

TEST_F(ScrubTest, DetectsPayloadCorruption) {
  CorruptChunk(0, 0);  // last payload byte of chunk 0
  auto stats = ScrubDataset(clock_, deployment_->server(0), spec_.name);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->corrupt_chunks, 0u);  // header intact
  EXPECT_EQ(stats->corrupt_files, 1u);
  EXPECT_EQ(stats->corrupt_keys.size(), 1u);
}

TEST_F(ScrubTest, DetectsHeaderCorruption) {
  // Flip a byte near the front of the chunk (inside the header).
  sim::VirtualClock clock;
  auto chunks = deployment_->server(0).metadata().ListChunks(clock,
                                                             spec_.name);
  ASSERT_TRUE(chunks.ok());
  std::string key = ChunkObjectKey(spec_.name, (*chunks)[1]);
  auto blob = deployment_->store().Get(clock, 0, key);
  ASSERT_TRUE(blob.ok());
  Bytes mutated = blob.value();
  mutated[30] ^= 0x01;
  ASSERT_TRUE(deployment_->store().Put(clock, 0, key, mutated).ok());

  auto stats = ScrubDataset(clock_, deployment_->server(0), spec_.name);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->corrupt_chunks, 1u);
  ASSERT_EQ(stats->corrupt_keys.size(), 1u);
  EXPECT_EQ(stats->corrupt_keys[0], key);
}

TEST_F(ScrubTest, ReadOfCorruptFileAlsoFailsClosed) {
  // The scrub's verdict agrees with the read path: the damaged file errors,
  // neighbours still verify.
  CorruptChunk(0, 0);
  auto stats = ScrubDataset(clock_, deployment_->server(0), spec_.name);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->corrupt_files, 1u);
  size_t bad_reads = 0, good_reads = 0;
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    auto content = deployment_->server(0).ReadFile(clock_, 0, spec_.name,
                                                   dlt::FilePath(spec_, i));
    // The executor's range reads skip per-file CRC checks (cache path does
    // too: corruption detection is scrub's and ChunkView's job). Verify via
    // content comparison instead.
    ASSERT_TRUE(content.ok());
    if (dlt::VerifyContent(spec_, i, content.value())) {
      ++good_reads;
    } else {
      ++bad_reads;
    }
  }
  EXPECT_EQ(bad_reads, 1u);
  EXPECT_EQ(good_reads, spec_.total_files() - 1);
}

}  // namespace
}  // namespace diesel::core
