#include "core/metadata.h"

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "sim/node.h"

namespace diesel::core {
namespace {

TEST(PathHelpersTest, ParentAndBase) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(BaseName("/a"), "a");
}

TEST(CodecTest, FileMetaRoundTrip) {
  FileMeta m;
  m.chunk = ChunkId::Make(9, 8, 7, 6);
  m.offset = 1234;
  m.length = 5678;
  m.crc = 0xDEADBEEF;
  m.index_in_chunk = 42;
  m.full_name = "/ds/train/cls1/img.bin";
  auto back = FileMeta::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->chunk, m.chunk);
  EXPECT_EQ(back->offset, m.offset);
  EXPECT_EQ(back->length, m.length);
  EXPECT_EQ(back->crc, m.crc);
  EXPECT_EQ(back->index_in_chunk, m.index_in_chunk);
  EXPECT_EQ(back->full_name, m.full_name);
}

TEST(CodecTest, ChunkMetaRoundTrip) {
  ChunkMeta m;
  m.update_ts_ns = 111;
  m.size = 4 << 20;
  m.header_len = 512;
  m.num_files = 100;
  m.num_deleted = 3;
  m.deletion_bitmap = {0xFF, 0x01, 0x80};
  auto back = ChunkMeta::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size, m.size);
  EXPECT_EQ(back->header_len, m.header_len);
  EXPECT_EQ(back->num_deleted, 3u);
  EXPECT_EQ(back->deletion_bitmap, m.deletion_bitmap);
}

TEST(CodecTest, DatasetMetaRoundTrip) {
  DatasetMeta m;
  m.update_ts_ns = 5;
  m.num_chunks = 6;
  m.num_files = 7;
  m.total_bytes = 8;
  auto back = DatasetMeta::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_chunks, 6u);
  EXPECT_EQ(back->total_bytes, 8u);
}

TEST(CodecTest, DeserializeGarbageFails) {
  Bytes junk = {1, 2, 3};
  EXPECT_FALSE(FileMeta::Deserialize(junk).ok());
  EXPECT_FALSE(ChunkMeta::Deserialize(junk).ok());
  EXPECT_FALSE(DatasetMeta::Deserialize(junk).ok());
}

TEST(KeySchemaTest, FilesInSameDirShareScanPrefix) {
  std::string k1 = FileKey("ds", "/train/cls0/a.jpg");
  std::string k2 = FileKey("ds", "/train/cls0/b.jpg");
  std::string k3 = FileKey("ds", "/train/cls1/a.jpg");
  std::string prefix = DirFilePrefix("ds", "/train/cls0");
  EXPECT_EQ(k1.compare(0, prefix.size(), prefix), 0);
  EXPECT_EQ(k2.compare(0, prefix.size(), prefix), 0);
  EXPECT_NE(k3.compare(0, prefix.size(), prefix), 0);
}

TEST(KeySchemaTest, DirAndFilePrefixesDisjoint) {
  EXPECT_NE(DirFilePrefix("ds", "/a"), DirSubdirPrefix("ds", "/a"));
}

TEST(KeySchemaTest, ChunkKeysShareDatasetPrefix) {
  ChunkId id = ChunkId::Make(1, 2, 3, 4);
  std::string key = ChunkKey("ds", id);
  std::string prefix = ChunkKeyPrefix("ds");
  EXPECT_EQ(key.compare(0, prefix.size(), prefix), 0);
  EXPECT_EQ(key.substr(prefix.size()), id.Encoded());
}

class MetadataServiceTest : public ::testing::Test {
 protected:
  MetadataServiceTest() : cluster_(4), fabric_(cluster_) {
    kv::KvClusterOptions opts;
    opts.nodes = {1, 2};
    kv_ = std::make_unique<kv::KvCluster>(fabric_, opts);
    meta_ = std::make_unique<MetadataService>(*kv_, 0);
  }

  /// Register a chunk of `n` files under /train/cls<i%2>/.
  ChunkId AddChunk(uint32_t counter, size_t n) {
    ChunkId id = ChunkId::Make(10 + counter, 1, 1, counter);
    ChunkMeta cm;
    cm.size = 1000;
    cm.header_len = 100;
    cm.num_files = static_cast<uint32_t>(n);
    cm.deletion_bitmap.assign((n + 7) / 8, 0);
    std::vector<FileMeta> files;
    for (size_t i = 0; i < n; ++i) {
      FileMeta f;
      f.chunk = id;
      f.offset = i * 10;
      f.length = 10;
      f.index_in_chunk = static_cast<uint32_t>(i);
      f.full_name = "/train/cls" + std::to_string(i % 2) + "/c" +
                    std::to_string(counter) + "f" + std::to_string(i);
      files.push_back(std::move(f));
    }
    EXPECT_TRUE(meta_->AddChunk(clock_, "ds", id, cm, files).ok());
    return id;
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<kv::KvCluster> kv_;
  std::unique_ptr<MetadataService> meta_;
  sim::VirtualClock clock_;
};

TEST_F(MetadataServiceTest, AddChunkRegistersFilesAndDirs) {
  ChunkId id = AddChunk(0, 6);
  auto fm = meta_->GetFile(clock_, "ds", "/train/cls0/c0f0");
  ASSERT_TRUE(fm.ok()) << fm.status().ToString();
  EXPECT_EQ(fm->chunk, id);
  EXPECT_EQ(fm->length, 10u);

  auto root = meta_->ListDir(clock_, "ds", "/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "train");
  EXPECT_TRUE((*root)[0].is_dir);

  auto train = meta_->ListDir(clock_, "ds", "/train");
  ASSERT_TRUE(train.ok());
  EXPECT_EQ(train->size(), 2u);  // cls0, cls1

  auto cls0 = meta_->ListDir(clock_, "ds", "/train/cls0");
  ASSERT_TRUE(cls0.ok());
  EXPECT_EQ(cls0->size(), 3u);  // f0, f2, f4
}

TEST_F(MetadataServiceTest, GetChunkReturnsRecord) {
  ChunkId id = AddChunk(0, 4);
  auto cm = meta_->GetChunk(clock_, "ds", id);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->num_files, 4u);
  EXPECT_EQ(cm->header_len, 100u);
}

TEST_F(MetadataServiceTest, ListChunksInWriteOrder) {
  std::vector<ChunkId> written;
  for (uint32_t i = 0; i < 5; ++i) written.push_back(AddChunk(i, 2));
  auto chunks = meta_->ListChunks(clock_, "ds");
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(chunks.value(), written);
}

TEST_F(MetadataServiceTest, DeleteFileFlipsBitmapAndRemovesKey) {
  ChunkId id = AddChunk(0, 10);
  ASSERT_TRUE(meta_->DeleteFile(clock_, "ds", "/train/cls1/c0f3").ok());
  EXPECT_TRUE(meta_->GetFile(clock_, "ds", "/train/cls1/c0f3")
                  .status().IsNotFound());
  auto cm = meta_->GetChunk(clock_, "ds", id);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->num_deleted, 1u);
  EXPECT_EQ(cm->deletion_bitmap[0], 1 << 3);
  // Double delete fails.
  EXPECT_TRUE(meta_->DeleteFile(clock_, "ds", "/train/cls1/c0f3")
                  .IsNotFound());
}

TEST_F(MetadataServiceTest, DatasetRecordRoundTrip) {
  DatasetMeta dm;
  dm.update_ts_ns = 42;
  dm.num_chunks = 2;
  ASSERT_TRUE(meta_->PutDataset(clock_, "ds", dm).ok());
  auto got = meta_->GetDataset(clock_, "ds");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->update_ts_ns, 42u);
}

TEST_F(MetadataServiceTest, DeleteDatasetPurgesNamespace) {
  AddChunk(0, 4);
  AddChunk(1, 4);
  DatasetMeta dm;
  ASSERT_TRUE(meta_->PutDataset(clock_, "ds", dm).ok());
  auto chunks = meta_->DeleteDataset(clock_, "ds");
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(chunks->size(), 2u);
  EXPECT_EQ(kv_->TotalKeys(), 0u);
}

TEST_F(MetadataServiceTest, DatasetsAreIsolated) {
  AddChunk(0, 2);
  EXPECT_TRUE(meta_->GetFile(clock_, "other", "/train/cls0/c0f0")
                  .status().IsNotFound());
  auto ls = meta_->ListDir(clock_, "other", "/");
  ASSERT_TRUE(ls.ok());
  EXPECT_TRUE(ls->empty());
}

}  // namespace
}  // namespace diesel::core
