#include "core/snapshot.h"

#include <gtest/gtest.h>

namespace diesel::core {
namespace {

MetadataSnapshot MakeSnapshot(size_t num_chunks, size_t files_per_chunk) {
  std::vector<ChunkId> chunks;
  std::vector<FileMeta> files;
  for (size_t c = 0; c < num_chunks; ++c) {
    ChunkId id = ChunkId::Make(100 + static_cast<uint32_t>(c), 1, 1,
                               static_cast<uint32_t>(c));
    chunks.push_back(id);
    for (size_t f = 0; f < files_per_chunk; ++f) {
      FileMeta m;
      m.chunk = id;
      m.offset = f * 100;
      m.length = 100;
      m.crc = static_cast<uint32_t>(c * 1000 + f);
      m.index_in_chunk = static_cast<uint32_t>(f);
      m.full_name = "/ds/train/cls" + std::to_string(f % 3) + "/c" +
                    std::to_string(c) + "f" + std::to_string(f);
      files.push_back(std::move(m));
    }
  }
  return MetadataSnapshot::Create("ds", 777, std::move(chunks),
                                  std::move(files));
}

TEST(SnapshotTest, LookupFindsEveryFile) {
  MetadataSnapshot snap = MakeSnapshot(4, 5);
  EXPECT_EQ(snap.num_files(), 20u);
  for (const FileMeta& f : snap.files()) {
    const FileMeta* found = snap.Lookup(f.full_name);
    ASSERT_NE(found, nullptr) << f.full_name;
    EXPECT_EQ(found->offset, f.offset);
    EXPECT_EQ(found->chunk, f.chunk);
  }
  EXPECT_EQ(snap.Lookup("/ds/absent"), nullptr);
}

TEST(SnapshotTest, HierarchyRebuiltFromFullNames) {
  MetadataSnapshot snap = MakeSnapshot(2, 6);
  auto root = snap.ListDir("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "ds");
  EXPECT_TRUE((*root)[0].is_dir);

  auto train = snap.ListDir("/ds/train");
  ASSERT_TRUE(train.ok());
  EXPECT_EQ(train->size(), 3u);  // cls0..cls2
  EXPECT_TRUE(snap.HasDir("/ds/train/cls1"));
  EXPECT_FALSE(snap.HasDir("/ds/test"));
  EXPECT_TRUE(snap.ListDir("/ds/test").status().IsNotFound());
}

TEST(SnapshotTest, ListingOrderIsDirsFirstSorted) {
  std::vector<ChunkId> chunks{ChunkId::Make(1, 1, 1, 1)};
  std::vector<FileMeta> files;
  for (const char* name : {"/d/z.txt", "/d/a.txt", "/d/sub/x", "/d/b.txt"}) {
    FileMeta m;
    m.chunk = chunks[0];
    m.full_name = name;
    files.push_back(std::move(m));
  }
  auto snap = MetadataSnapshot::Create("d", 1, chunks, files);
  auto ls = snap.ListDir("/d");
  ASSERT_TRUE(ls.ok());
  ASSERT_EQ(ls->size(), 4u);
  EXPECT_EQ((*ls)[0].name, "sub");
  EXPECT_TRUE((*ls)[0].is_dir);
  EXPECT_EQ((*ls)[1].name, "a.txt");
  EXPECT_EQ((*ls)[2].name, "b.txt");
  EXPECT_EQ((*ls)[3].name, "z.txt");
}

TEST(SnapshotTest, SerializeDeserializePreservesEverything) {
  MetadataSnapshot snap = MakeSnapshot(3, 4);
  Bytes data = snap.Serialize();
  auto back = MetadataSnapshot::Deserialize(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->dataset(), "ds");
  EXPECT_EQ(back->update_ts_ns(), 777u);
  EXPECT_EQ(back->chunks(), snap.chunks());
  ASSERT_EQ(back->num_files(), snap.num_files());
  for (const FileMeta& f : snap.files()) {
    const FileMeta* found = back->Lookup(f.full_name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->length, f.length);
    EXPECT_EQ(found->crc, f.crc);
    EXPECT_EQ(found->index_in_chunk, f.index_in_chunk);
  }
}

TEST(SnapshotTest, DeserializeRejectsCorruption) {
  MetadataSnapshot snap = MakeSnapshot(1, 2);
  Bytes data = snap.Serialize();
  Bytes bad_magic = data;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(MetadataSnapshot::Deserialize(bad_magic).ok());
  Bytes truncated(data.begin(), data.begin() + data.size() / 2);
  EXPECT_FALSE(MetadataSnapshot::Deserialize(truncated).ok());
  Bytes trailing = data;
  trailing.push_back(0);
  EXPECT_FALSE(MetadataSnapshot::Deserialize(trailing).ok());
}

TEST(SnapshotTest, StalenessCheck) {
  MetadataSnapshot snap = MakeSnapshot(1, 1);
  DatasetMeta same;
  same.update_ts_ns = 777;
  DatasetMeta newer;
  newer.update_ts_ns = 778;
  EXPECT_TRUE(snap.IsUpToDate(same));
  EXPECT_FALSE(snap.IsUpToDate(newer));
}

TEST(SnapshotTest, ChunkIndexAndFilesOfChunk) {
  MetadataSnapshot snap = MakeSnapshot(3, 4);
  for (size_t c = 0; c < 3; ++c) {
    size_t idx = snap.ChunkIndex(snap.chunks()[c]);
    EXPECT_EQ(idx, c);
    const auto& files = snap.FilesOfChunk(idx);
    EXPECT_EQ(files.size(), 4u);
    // Offset order within the chunk.
    for (size_t i = 1; i < files.size(); ++i) {
      EXPECT_LT(snap.files()[files[i - 1]].offset,
                snap.files()[files[i]].offset);
    }
  }
  EXPECT_EQ(snap.ChunkIndex(ChunkId::Make(9, 9, 9, 9)),
            static_cast<size_t>(-1));
  EXPECT_TRUE(snap.FilesOfChunk(99).empty());
}

TEST(SnapshotTest, SnapshotSizeIsCompact) {
  // The paper stresses small snapshots: < ~64 bytes/file for short names.
  MetadataSnapshot snap = MakeSnapshot(10, 100);
  EXPECT_LT(snap.Serialize().size(), snap.num_files() * 80);
}

TEST(SnapshotTest, EmptySnapshotWorks) {
  auto snap = MetadataSnapshot::Create("empty", 1, {}, {});
  EXPECT_EQ(snap.num_files(), 0u);
  auto back = MetadataSnapshot::Deserialize(snap.Serialize());
  ASSERT_TRUE(back.ok());
  auto ls = back->ListDir("/");
  ASSERT_TRUE(ls.ok());
  EXPECT_TRUE(ls->empty());
}

}  // namespace
}  // namespace diesel::core
