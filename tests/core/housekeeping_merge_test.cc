#include <gtest/gtest.h>

#include "core/deployment.h"
#include "core/housekeeping.h"
#include "dlt/dataset_gen.h"

namespace diesel::core {
namespace {

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>(DeploymentOptions{});
    spec_.name = "merge";
    spec_.num_classes = 2;
    spec_.files_per_class = 30;
    spec_.mean_file_bytes = 1024;
    // Tiny chunk target -> many undersized chunks to coalesce.
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 4 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  DieselServer& server() { return deployment_->server(0); }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  sim::VirtualClock clock_;
};

TEST_F(MergeTest, CoalescesSmallChunks) {
  auto before = server().metadata().ListChunks(clock_, spec_.name);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->size(), 4u);

  auto stats = MergeSmallChunks(clock_, server(), spec_.name,
                                /*min_chunk_bytes=*/32 * 1024);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->chunks_merged, stats->chunks_created);

  auto after = server().metadata().ListChunks(clock_, spec_.name);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->size(), before->size());

  // Every file still reads back bit-exact.
  for (size_t i = 0; i < spec_.total_files(); ++i) {
    auto content = server().ReadFile(clock_, 0, spec_.name,
                                     dlt::FilePath(spec_, i));
    ASSERT_TRUE(content.ok()) << i << ": " << content.status().ToString();
    EXPECT_TRUE(dlt::VerifyContent(spec_, i, content.value())) << i;
  }
  // Dataset accounting matches the new chunk list.
  auto dm = server().metadata().GetDataset(clock_, spec_.name);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->num_chunks, after->size());
}

TEST_F(MergeTest, NoopWhenChunksAreLargeEnough) {
  auto stats = MergeSmallChunks(clock_, server(), spec_.name,
                                /*min_chunk_bytes=*/1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->chunks_merged, 0u);
  EXPECT_EQ(stats->chunks_created, 0u);
}

TEST_F(MergeTest, RefusesChunksWithHoles) {
  ASSERT_TRUE(server().DeleteFile(clock_, 0, spec_.name,
                                  dlt::FilePath(spec_, 0)).ok());
  auto stats = MergeSmallChunks(clock_, server(), spec_.name, 32 * 1024);
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  // Purge first, then merge succeeds.
  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  auto retry = MergeSmallChunks(clock_, server(), spec_.name, 32 * 1024);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(retry->chunks_created, 0u);
}

TEST_F(MergeTest, SnapshotAndRecoveryConsistentAfterMerge) {
  ASSERT_TRUE(MergeSmallChunks(clock_, server(), spec_.name, 32 * 1024).ok());
  auto snap = server().BuildSnapshot(clock_, 0, spec_.name);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), spec_.total_files());
  for (const FileMeta& f : snap->files()) {
    EXPECT_NE(snap->ChunkIndex(f.chunk), static_cast<size_t>(-1));
  }
  // Full KV loss + recovery sees the merged layout.
  for (uint32_t s = 0; s < deployment_->kv().NumShards(); ++s) {
    deployment_->kv().FailShard(s);
    deployment_->kv().RestartShard(s);
  }
  auto rec = server().RecoverMetadata(clock_, spec_.name, 0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->files_recovered, spec_.total_files());
  auto content = server().ReadFile(clock_, 0, spec_.name,
                                   dlt::FilePath(spec_, 17));
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(dlt::VerifyContent(spec_, 17, content.value()));
}

TEST_F(MergeTest, ReplaceThenPurgeThenMergeKeepsLatestVersion) {
  auto client = deployment_->MakeClient(1, 0, spec_.name);
  client->clock().Advance(Seconds(2.0));
  std::string path = dlt::FilePath(spec_, 5);
  std::string new_content = "version-2 payload";
  ASSERT_TRUE(client->Replace(path, AsBytesView(new_content)).ok());

  auto read_back = client->Get(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(ToString(read_back.value()), new_content);

  ASSERT_TRUE(PurgeDataset(clock_, server(), spec_.name).ok());
  ASSERT_TRUE(MergeSmallChunks(clock_, server(), spec_.name, 32 * 1024).ok());
  read_back = client->Get(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(ToString(read_back.value()), new_content);
}

}  // namespace
}  // namespace diesel::core
