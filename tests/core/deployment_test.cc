#include "core/deployment.h"

#include <gtest/gtest.h>

#include "dlt/dataset_gen.h"

namespace diesel::core {
namespace {

TEST(DeploymentTest, NodeLayoutIsDense) {
  DeploymentOptions opts;
  opts.num_client_nodes = 3;
  opts.num_kv_nodes = 2;
  opts.num_servers = 2;
  Deployment dep(opts);
  // clients + storage gateway + kv nodes + servers + etcd.
  EXPECT_EQ(dep.cluster().size(), 3u + 1u + 2u + 2u + 1u);
  EXPECT_EQ(dep.client_node(0), 0u);
  EXPECT_EQ(dep.client_node(2), 2u);
  EXPECT_EQ(dep.storage_node(), 3u);
  EXPECT_EQ(dep.kv_node(0), 4u);
  EXPECT_EQ(dep.kv_node(1), 5u);
  EXPECT_EQ(dep.server_node(0), 6u);
  EXPECT_EQ(dep.server_node(1), 7u);
  EXPECT_EQ(dep.num_servers(), 2u);
  EXPECT_EQ(dep.server(0).node(), 6u);
  EXPECT_EQ(dep.server(1).node(), 7u);
  EXPECT_EQ(dep.etcd_node(), 8u);
}

TEST(DeploymentTest, ServersSelfRegisterAndDiscoveryWorks) {
  DeploymentOptions opts;
  opts.num_servers = 3;
  Deployment dep(opts);
  EXPECT_EQ(dep.config().NumKeys(), 3u);

  sim::VirtualClock clock;
  auto client = dep.MakeClientViaDiscovery(clock, 0, 7, "ds");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT(clock.now(), 0u);  // discovery paid the etcd list RPC
  // The discovered client connects to every registered server.
  EXPECT_EQ(dep.fabric().connections().ConnectionsOf((*client)->endpoint()),
            3u);
}

TEST(DeploymentTest, KvShardsPlacedOnKvNodes) {
  DeploymentOptions opts;
  opts.num_kv_nodes = 3;
  opts.kv_shards_per_node = 2;
  Deployment dep(opts);
  EXPECT_EQ(dep.kv().NumShards(), 6u);
  for (uint32_t s = 0; s < 6; ++s) {
    sim::NodeId node = dep.kv().ShardNode(s);
    EXPECT_GE(node, dep.kv_node(0));
    EXPECT_LE(node, dep.kv_node(2));
  }
}

TEST(DeploymentTest, MakeClientConnectsToAllServers) {
  DeploymentOptions opts;
  opts.num_servers = 3;
  Deployment dep(opts);
  auto client = dep.MakeClient(0, 5, "ds");
  EXPECT_EQ(dep.fabric().connections().ConnectionsOf(client->endpoint()), 3u);
}

TEST(DeploymentTest, TieredStoreRoutesThroughSsdCache) {
  DeploymentOptions opts;
  opts.tiered_store = true;
  opts.ssd_cache_bytes = 0;  // unbounded fast tier
  Deployment dep(opts);

  dlt::DatasetSpec spec;
  spec.name = "tiered";
  spec.num_classes = 2;
  spec.files_per_class = 10;
  spec.mean_file_bytes = 1024;
  auto writer = dep.MakeClient(0, 0, spec.name, 8 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());

  // First read: HDD tier (slow) + promotion; second read: SSD tier (fast).
  auto reader = dep.MakeClient(1, 0, spec.name);
  sim::VirtualClock c1, c2;
  {
    auto r = dep.server(0).ReadFile(c1, 1, spec.name, dlt::FilePath(spec, 0));
    ASSERT_TRUE(r.ok());
  }
  {
    auto r = dep.server(0).ReadFile(c2, 1, spec.name, dlt::FilePath(spec, 0));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_LT(c2.now(), c1.now());
}

TEST(DeploymentTest, DistinctDeploymentsAreIsolated) {
  Deployment a({}), b({});
  auto wa = a.MakeClient(0, 0, "ds");
  ASSERT_TRUE(wa->Put("/ds/f", AsBytesView(std::string("x"))).ok());
  ASSERT_TRUE(wa->Flush().ok());
  auto rb = b.MakeClient(0, 0, "ds");
  EXPECT_TRUE(rb->Get("/ds/f").status().IsNotFound());
}

}  // namespace
}  // namespace diesel::core
