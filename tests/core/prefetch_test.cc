// Server-side background dataset caching (Fig. 4's tiered server cache).
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel::core {
namespace {

class PrefetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentOptions opts;
    opts.tiered_store = true;
    deployment_ = std::make_unique<Deployment>(opts);
    spec_.name = "pf";
    spec_.num_classes = 2;
    spec_.files_per_class = 20;
    spec_.mean_file_bytes = 2048;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  std::unique_ptr<Deployment> deployment_;
  dlt::DatasetSpec spec_;
  sim::VirtualClock clock_;
};

TEST_F(PrefetchTest, WarmsTheFastTier) {
  auto end = deployment_->server(0).PrefetchDataset(clock_, spec_.name);
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_GT(end.value(), clock_.now());

  // After warm-up, reads are fast-tier (cheaper than cold reads).
  sim::VirtualClock warm, cold;
  ASSERT_TRUE(deployment_->server(0)
                  .ReadFile(warm, 0, spec_.name, dlt::FilePath(spec_, 1))
                  .ok());
  // Build a cold comparison: fresh deployment, same dataset, no prefetch.
  DeploymentOptions opts;
  opts.tiered_store = true;
  Deployment fresh(opts);
  auto writer = fresh.MakeClient(0, 0, spec_.name, 16 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());
  ASSERT_TRUE(fresh.server(0)
                  .ReadFile(cold, 0, spec_.name, dlt::FilePath(spec_, 1))
                  .ok());
  EXPECT_LT(warm.now(), cold.now());
}

TEST_F(PrefetchTest, MoreStreamsFinishSooner) {
  sim::VirtualClock c1, c8;
  DeploymentOptions opts;
  opts.tiered_store = true;
  // Two fresh deployments so tier state doesn't leak between runs.
  for (auto [streams, clk] : {std::pair<size_t, sim::VirtualClock*>{1, &c1},
                              {8, &c8}}) {
    Deployment dep(opts);
    auto writer = dep.MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
    auto end = dep.server(0).PrefetchDataset(*clk, spec_.name, streams);
    ASSERT_TRUE(end.ok());
    clk->AdvanceTo(end.value());
  }
  EXPECT_LT(c8.now(), c1.now());
}

TEST_F(PrefetchTest, UnknownDatasetIsTrivialNoop) {
  // No chunks registered -> nothing to warm; completes instantly.
  clock_.Advance(1000);
  auto end = deployment_->server(0).PrefetchDataset(clock_, "nope");
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end.value(), clock_.now());
}

}  // namespace
}  // namespace diesel::core
