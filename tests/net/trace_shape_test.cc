// Trace-shape contract for the fabric: a plain Call emits one "rpc:*" span,
// a CallBatch emits one "batch:*" span whose k coalesced sub-requests
// materialize as contiguous "batch.sub" child spans — the streamed marshal
// windows — so a tail batch resolves to per-sub-request evidence.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "obs/trace.h"

namespace diesel::net {
namespace {

class TraceShapeTest : public ::testing::Test {
 protected:
  TraceShapeTest() : cluster_(3), fabric_(cluster_) {
    fabric_.set_tracer(&tracer_);
  }

  std::vector<obs::Span> SpansNamed(const std::string& name) {
    std::vector<obs::Span> out;
    for (const obs::Span& s : tracer_.spans()) {
      if (s.name == name) out.push_back(s);
    }
    return out;
  }

  sim::Cluster cluster_;
  Fabric fabric_;
  obs::Tracer tracer_;
};

TEST_F(TraceShapeTest, PlainCallEmitsRpcSpanWithoutChildren) {
  sim::VirtualClock clock;
  ASSERT_TRUE(
      fabric_.Call(clock, 0, 1, 64, 64, [](Nanos a) { return a; }).ok());
  auto rpcs = SpansNamed("rpc:node0->node1");
  ASSERT_EQ(rpcs.size(), 1u);
  EXPECT_EQ(rpcs.front().parent, obs::kNoSpan);
  EXPECT_TRUE(SpansNamed("batch.sub").empty());
  EXPECT_TRUE(SpansNamed("batch:node0->node1").empty());
}

TEST_F(TraceShapeTest, BatchEmitsContiguousChildPerSubRequest) {
  sim::VirtualClock clock;
  const size_t k = 4;
  ASSERT_TRUE(fabric_.CallBatch(clock, 0, 1, k, 4096, 4096,
                                [](Nanos a) { return a; })
                  .ok());
  auto batches = SpansNamed("batch:node0->node1");
  ASSERT_EQ(batches.size(), 1u);
  const obs::Span& batch = batches.front();
  ASSERT_FALSE(batch.notes.empty());
  EXPECT_EQ(batch.notes.front().text, "batch k=4");

  auto subs = SpansNamed("batch.sub");
  ASSERT_EQ(subs.size(), k);
  Nanos prev = batch.start;
  for (size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].parent, batch.id);
    EXPECT_EQ(subs[i].start, prev);  // marshal windows chain back-to-back
    EXPECT_GT(subs[i].end, subs[i].start);
    ASSERT_EQ(subs[i].notes.size(), 1u);
    EXPECT_EQ(subs[i].notes.front().text,
              "sub=" + std::to_string(i) + "/" + std::to_string(k));
    prev = subs[i].end;
  }
  EXPECT_LE(prev, batch.end);  // children stay inside the parent window

  // The tree containing any sub-request is rooted at the batch span.
  std::string tree = tracer_.TreeDump(subs.front().id);
  EXPECT_NE(tree.find("batch:node0->node1"), std::string::npos);
  EXPECT_NE(tree.find("batch.sub"), std::string::npos);
}

TEST_F(TraceShapeTest, SingletonBatchDegeneratesToRpc) {
  sim::VirtualClock clock;
  ASSERT_TRUE(fabric_.CallBatch(clock, 0, 1, 1, 64, 64,
                                [](Nanos a) { return a; })
                  .ok());
  EXPECT_EQ(SpansNamed("rpc:node0->node1").size(), 1u);
  EXPECT_TRUE(SpansNamed("batch:node0->node1").empty());
  EXPECT_TRUE(SpansNamed("batch.sub").empty());
}

TEST_F(TraceShapeTest, LoopbackBatchHasNoSubSpans) {
  sim::VirtualClock clock;
  ASSERT_TRUE(fabric_.CallBatch(clock, 0, 0, 3, 300, 300,
                                [](Nanos a) { return a; })
                  .ok());
  // Loopback never touches a NIC, so there are no marshal windows to show.
  ASSERT_EQ(SpansNamed("batch:node0->node0").size(), 1u);
  EXPECT_TRUE(SpansNamed("batch.sub").empty());
}

TEST_F(TraceShapeTest, DetachedTracerRecordsNothing) {
  fabric_.set_tracer(nullptr);
  sim::VirtualClock clock;
  ASSERT_TRUE(fabric_.CallBatch(clock, 0, 1, 2, 128, 128,
                                [](Nanos a) { return a; })
                  .ok());
  EXPECT_EQ(tracer_.size(), 0u);
}

}  // namespace
}  // namespace diesel::net
