#include "net/fault_injector.h"

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "sim/node.h"

namespace diesel::net {
namespace {

sim::Cluster MakeCluster(size_t n) { return sim::Cluster(n); }

TEST(FaultInjectorTest, NodeFlapWindowIsExact) {
  FaultPlan plan;
  plan.node_flaps.push_back({.node = 2, .down_at = Millis(10),
                             .up_at = Millis(20)});
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.NodeDown(2, Millis(9)));
  EXPECT_TRUE(inj.NodeDown(2, Millis(10)));
  EXPECT_TRUE(inj.NodeDown(2, Millis(19)));
  EXPECT_FALSE(inj.NodeDown(2, Millis(20)));  // auto-recovered
  EXPECT_FALSE(inj.NodeDown(1, Millis(15)));  // other nodes unaffected
  EXPECT_EQ(inj.RecoveryTime(2, Millis(15)), Millis(20));
  EXPECT_EQ(inj.RecoveryTime(2, Millis(25)), 0u);
}

TEST(FaultInjectorTest, DropDecisionIsPureFunctionOfSeedAndTime) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rpc_drop_prob = 0.5;
  FaultInjector a(plan), b(plan);
  for (Nanos t = 0; t < Micros(100); t += Micros(1)) {
    EXPECT_EQ(a.ShouldDropRpc(0, 1, t), b.ShouldDropRpc(0, 1, t));
  }
  EXPECT_EQ(a.stats().rpc_drops, b.stats().rpc_drops);
  EXPECT_GT(a.stats().rpc_drops, 20u);  // ~50 of 100 rolls
  EXPECT_LT(a.stats().rpc_drops, 80u);
}

TEST(FaultInjectorTest, DifferentSeedsRollDifferently) {
  FaultPlan pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  pa.rpc_drop_prob = pb.rpc_drop_prob = 0.5;
  FaultInjector a(pa), b(pb);
  int differ = 0;
  for (Nanos t = 0; t < Micros(100); t += Micros(1)) {
    if (a.ShouldDropRpc(0, 1, t) != b.ShouldDropRpc(0, 1, t)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjectorTest, LinkDropRuleOverridesGlobalEitherDirection) {
  FaultPlan plan;
  plan.rpc_drop_prob = 0.0;
  plan.link_drops.push_back({.a = 1, .b = 2, .drop_prob = 1.0});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.ShouldDropRpc(1, 2, Micros(5)));
  EXPECT_TRUE(inj.ShouldDropRpc(2, 1, Micros(5)));
  EXPECT_FALSE(inj.ShouldDropRpc(0, 2, Micros(5)));
}

TEST(FaultInjectorTest, AsymmetricPartitionDropsOneDirectionOnly) {
  FaultPlan plan;
  plan.asym_partitions.push_back(
      {.src = 1, .dst = 2, .start = Millis(5), .end = Millis(15)});
  FaultInjector inj(plan);
  // Inside the window: 1->2 is severed, 2->1 keeps delivering.
  EXPECT_TRUE(inj.ShouldDropRpc(1, 2, Millis(10)));
  EXPECT_FALSE(inj.ShouldDropRpc(2, 1, Millis(10)));
  // Other links are untouched.
  EXPECT_FALSE(inj.ShouldDropRpc(0, 2, Millis(10)));
  EXPECT_FALSE(inj.ShouldDropRpc(1, 0, Millis(10)));
  // Outside the window the link heals.
  EXPECT_FALSE(inj.ShouldDropRpc(1, 2, Millis(4)));
  EXPECT_FALSE(inj.ShouldDropRpc(1, 2, Millis(15)));
  EXPECT_EQ(inj.stats().asym_drops, 1u);
  EXPECT_EQ(inj.stats().rpc_drops, 1u);  // asym drops count as rpc drops too
}

TEST(FaultInjectorTest, AsymmetricPartitionRollsSeededProbability) {
  FaultPlan plan;
  plan.seed = 7;
  plan.asym_partitions.push_back(
      {.src = 0, .dst = 1, .start = 0, .end = ~Nanos{0}, .drop_prob = 0.5});
  FaultInjector a(plan), b(plan);
  uint64_t forward = 0;
  for (Nanos t = 0; t < Micros(200); t += Micros(1)) {
    bool drop = a.ShouldDropRpc(0, 1, t);
    EXPECT_EQ(drop, b.ShouldDropRpc(0, 1, t));  // bit-reproducible
    if (drop) ++forward;
    EXPECT_FALSE(a.ShouldDropRpc(1, 0, t));  // reverse never drops
  }
  EXPECT_GT(forward, 50u);  // ~100 of 200 rolls
  EXPECT_LT(forward, 150u);
  EXPECT_EQ(a.stats().asym_drops, forward);
}

TEST(FaultInjectorTest, LatencySpikesSumOverOverlappingWindows) {
  FaultPlan plan;
  plan.latency_spikes.push_back(
      {.start = Millis(1), .end = Millis(3), .extra = Micros(10)});
  plan.latency_spikes.push_back(
      {.start = Millis(2), .end = Millis(4), .extra = Micros(5)});
  FaultInjector inj(plan);
  EXPECT_EQ(inj.ExtraLatency(0), 0u);
  EXPECT_EQ(inj.ExtraLatency(Millis(1)), Micros(10));
  EXPECT_EQ(inj.ExtraLatency(Millis(2)), Micros(15));
  EXPECT_EQ(inj.ExtraLatency(Millis(3)), Micros(5));
  EXPECT_EQ(inj.ExtraLatency(Millis(4)), 0u);
  EXPECT_EQ(inj.stats().latency_spike_hits, 3u);
}

TEST(FaultInjectorTest, ChunkCorruptionIsOneShotPerEntry) {
  FaultPlan plan;
  plan.corrupt_chunk_fetches = {7, 7, 9};
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.ConsumeChunkCorruption(7));
  EXPECT_TRUE(inj.ConsumeChunkCorruption(7));   // second entry for 7
  EXPECT_FALSE(inj.ConsumeChunkCorruption(7));  // both consumed
  EXPECT_FALSE(inj.ConsumeChunkCorruption(8));
  EXPECT_TRUE(inj.ConsumeChunkCorruption(9));
  EXPECT_EQ(inj.stats().corruptions_injected, 3u);
}

TEST(FaultInjectorTest, CorruptPayloadFlipsExactlyOnePayloadByte) {
  FaultPlan plan;
  FaultInjector inj(plan);
  Bytes blob(256, 0xCC);
  Bytes orig = blob;
  inj.CorruptPayload(blob, /*header_len=*/64, /*chunk_index=*/3);
  size_t diffs = 0, first_diff = 0;
  for (size_t i = 0; i < blob.size(); ++i) {
    if (blob[i] != orig[i]) {
      ++diffs;
      first_diff = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_GE(first_diff, 64u);  // header is never touched
  // Deterministic: the same call flips the same byte again (restoring it).
  inj.CorruptPayload(blob, 64, 3);
  EXPECT_EQ(blob, orig);
}

TEST(FaultInjectorTest, FireFlapsInvokesCallbackOncePerFlap) {
  FaultPlan plan;
  plan.node_flaps.push_back({.node = 1, .down_at = Millis(5),
                             .up_at = Millis(6)});
  plan.node_flaps.push_back({.node = 2, .down_at = Millis(7),
                             .up_at = Millis(9)});
  FaultInjector inj(plan);
  std::vector<sim::NodeId> fired;
  auto record = [&](sim::NodeId n) { fired.push_back(n); };
  inj.FireFlaps(Millis(4), record);
  EXPECT_TRUE(fired.empty());
  inj.FireFlaps(Millis(5), record);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  inj.FireFlaps(Millis(5), record);  // already fired: no repeat
  EXPECT_EQ(fired.size(), 1u);
  inj.FireFlaps(Millis(10), record);  // second flap (even if window passed)
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 2u);
  EXPECT_EQ(inj.stats().flaps_fired, 2u);
}

TEST(FaultInjectorTest, FabricRejectsCallsTouchingFlappedNode) {
  sim::Cluster cluster = MakeCluster(3);
  Fabric fabric(cluster);
  FaultPlan plan;
  plan.node_flaps.push_back({.node = 1, .down_at = Millis(1),
                             .up_at = Millis(10)});
  plan.fault_detect_timeout = Millis(2);
  FaultInjector inj(plan);
  fabric.set_fault_injector(&inj);

  auto noop = [](Nanos arrival) { return arrival; };
  sim::VirtualClock clock;
  // Before the flap: calls pass.
  ASSERT_TRUE(fabric.Call(clock, 0, 1, 64, 64, noop).ok());
  EXPECT_TRUE(fabric.NodeAvailable(1, clock.now()));
  clock.AdvanceTo(Millis(1));
  EXPECT_FALSE(fabric.NodeAvailable(1, clock.now()));
  Nanos before = clock.now();
  Status st = fabric.Call(clock, 0, 1, 64, 64, noop);
  EXPECT_TRUE(st.IsUnavailable());
  // Caller paid the detection timeout in virtual time.
  EXPECT_EQ(clock.now(), before + Millis(2));
  // Source-side flap is rejected too.
  EXPECT_TRUE(fabric.Call(clock, 1, 2, 64, 64, noop).IsUnavailable());
  // After the window the node auto-recovers.
  clock.AdvanceTo(Millis(10));
  EXPECT_TRUE(fabric.NodeAvailable(1, clock.now()));
  EXPECT_TRUE(fabric.Call(clock, 0, 1, 64, 64, noop).ok());
  EXPECT_GE(inj.stats().down_node_rejections, 2u);
}

TEST(FaultInjectorTest, FlapTearsDownNodeConnections) {
  sim::Cluster cluster = MakeCluster(3);
  Fabric fabric(cluster);
  fabric.connections().Connect({0, 0}, {1, 0});
  fabric.connections().Connect({1, 0}, {2, 0});
  fabric.connections().Connect({0, 0}, {2, 0});
  FaultPlan plan;
  plan.node_flaps.push_back({.node = 1, .down_at = Millis(1),
                             .up_at = Millis(2)});
  FaultInjector inj(plan);
  fabric.set_fault_injector(&inj);
  sim::VirtualClock clock(Millis(1));
  auto noop = [](Nanos arrival) { return arrival; };
  (void)fabric.Call(clock, 0, 2, 64, 64, noop);  // fires the due flap
  EXPECT_EQ(fabric.connections().TotalConnections(), 1u);
  EXPECT_TRUE(fabric.connections().Connected({0, 0}, {2, 0}));
}

TEST(FaultInjectorTest, InjectedDropChargesDetectionTimeout) {
  sim::Cluster cluster = MakeCluster(2);
  Fabric fabric(cluster);
  FaultPlan plan;
  plan.rpc_drop_prob = 1.0;
  plan.fault_detect_timeout = Millis(3);
  FaultInjector inj(plan);
  fabric.set_fault_injector(&inj);
  sim::VirtualClock clock;
  auto noop = [](Nanos arrival) { return arrival; };
  EXPECT_TRUE(fabric.Call(clock, 0, 1, 64, 64, noop).IsUnavailable());
  EXPECT_EQ(clock.now(), Millis(3));
  // Loopback is exempt from drops.
  EXPECT_TRUE(fabric.Call(clock, 0, 0, 64, 64, noop).ok());
  EXPECT_EQ(inj.stats().rpc_drops, 1u);
}

TEST(FaultInjectorTest, LatencySpikeSlowsCallsDuringWindowOnly) {
  sim::Cluster cluster = MakeCluster(2);
  Fabric fabric(cluster);
  auto noop = [](Nanos arrival) { return arrival; };
  // Baseline without injector.
  sim::VirtualClock base;
  ASSERT_TRUE(fabric.Call(base, 0, 1, 64, 64, noop).ok());
  Nanos plain_cost = base.now();

  FaultPlan plan;
  plan.latency_spikes.push_back(
      {.start = 0, .end = Millis(1), .extra = Micros(500)});
  FaultInjector inj(plan);
  fabric.set_fault_injector(&inj);
  cluster.ResetDevices();
  sim::VirtualClock spiked;
  ASSERT_TRUE(fabric.Call(spiked, 0, 1, 64, 64, noop).ok());
  // Two wire traversals, each 500us slower.
  EXPECT_EQ(spiked.now(), plain_cost + 2 * Micros(500));

  cluster.ResetDevices();
  sim::VirtualClock after(Millis(2));
  ASSERT_TRUE(fabric.Call(after, 0, 1, 64, 64, noop).ok());
  EXPECT_EQ(after.now() - Millis(2), plain_cost);
}

TEST(FaultInjectorTest, DetachedInjectorRestoresPlainBehavior) {
  sim::Cluster cluster = MakeCluster(2);
  Fabric fabric(cluster);
  auto noop = [](Nanos arrival) { return arrival; };
  sim::VirtualClock base;
  ASSERT_TRUE(fabric.Call(base, 0, 1, 64, 64, noop).ok());

  FaultPlan plan;
  plan.rpc_drop_prob = 1.0;
  FaultInjector inj(plan);
  fabric.set_fault_injector(&inj);
  sim::VirtualClock faulted;
  EXPECT_TRUE(fabric.Call(faulted, 0, 1, 64, 64, noop).IsUnavailable());

  fabric.set_fault_injector(nullptr);
  cluster.ResetDevices();
  sim::VirtualClock restored;
  ASSERT_TRUE(fabric.Call(restored, 0, 1, 64, 64, noop).ok());
  EXPECT_EQ(restored.now(), base.now());
}

}  // namespace
}  // namespace diesel::net
