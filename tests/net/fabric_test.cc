#include "net/fabric.h"

#include <gtest/gtest.h>

namespace diesel::net {
namespace {

TEST(ConnectionTableTest, ConnectIsIdempotentAndUnordered) {
  ConnectionTable table;
  EndpointId a{0, 0}, b{1, 0};
  EXPECT_TRUE(table.Connect(a, b));
  EXPECT_FALSE(table.Connect(a, b));
  EXPECT_FALSE(table.Connect(b, a));  // same edge
  EXPECT_EQ(table.TotalConnections(), 1u);
  EXPECT_TRUE(table.Connected(b, a));
}

TEST(ConnectionTableTest, DisconnectRemoves) {
  ConnectionTable table;
  EndpointId a{0, 0}, b{1, 0};
  table.Connect(a, b);
  EXPECT_TRUE(table.Disconnect(b, a));
  EXPECT_FALSE(table.Disconnect(a, b));
  EXPECT_EQ(table.TotalConnections(), 0u);
}

TEST(ConnectionTableTest, ConnectionsOfCountsIncidentEdges) {
  ConnectionTable table;
  EndpointId hub{0, 0};
  for (uint32_t i = 1; i <= 5; ++i) {
    table.Connect(hub, {i, 0});
  }
  EXPECT_EQ(table.ConnectionsOf(hub), 5u);
  EXPECT_EQ(table.ConnectionsOf({1, 0}), 1u);
  EXPECT_EQ(table.ConnectionsOf({9, 9}), 0u);
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : cluster_(3), fabric_(cluster_) {}
  sim::Cluster cluster_;
  Fabric fabric_;
};

TEST_F(FabricTest, CallRoundTripAdvancesClock) {
  sim::VirtualClock clock;
  Status st = fabric_.Call(clock, 0, 1, 100, 100,
                           [](Nanos arrival) { return arrival + 500; });
  ASSERT_TRUE(st.ok());
  // At least: 2 wire latencies + handler 500ns + NIC/CPU costs.
  EXPECT_GT(clock.now(), 2 * sim::kWireLatency + 500);
}

TEST_F(FabricTest, LoopbackSkipsNics) {
  sim::VirtualClock remote, local;
  ASSERT_TRUE(fabric_.Call(remote, 0, 1, 0, 0,
                           [](Nanos a) { return a; }).ok());
  ASSERT_TRUE(fabric_.Call(local, 0, 0, 0, 0,
                           [](Nanos a) { return a; }).ok());
  EXPECT_LT(local.now(), remote.now());
}

TEST_F(FabricTest, HandlerSeesArrivalAfterRequestLeg) {
  sim::VirtualClock clock;
  clock.AdvanceTo(1000);
  Nanos seen = 0;
  ASSERT_TRUE(fabric_.Call(clock, 0, 1, 64, 0, [&](Nanos arrival) {
                seen = arrival;
                return arrival;
              }).ok());
  EXPECT_GT(seen, 1000u + sim::kWireLatency);
}

TEST_F(FabricTest, CallToDownNodeFailsUnavailable) {
  cluster_.FailNode(1);
  sim::VirtualClock clock;
  Status st = fabric_.Call(clock, 0, 1, 0, 0, [](Nanos a) { return a; });
  EXPECT_TRUE(st.IsUnavailable());
  // Recovery restores service.
  cluster_.RecoverNode(1);
  EXPECT_TRUE(fabric_.Call(clock, 0, 1, 0, 0,
                           [](Nanos a) { return a; }).ok());
}

TEST_F(FabricTest, CallFromDownNodeFails) {
  cluster_.FailNode(0);
  sim::VirtualClock clock;
  EXPECT_TRUE(fabric_.Call(clock, 0, 1, 0, 0,
                           [](Nanos a) { return a; }).IsUnavailable());
}

TEST_F(FabricTest, SendDeliversWithoutBlockingOnHandler) {
  sim::VirtualClock clock;
  Nanos delivered_at = 0;
  ASSERT_TRUE(fabric_.Send(clock, 0, 2, 1 << 20, [&](Nanos t) {
                delivered_at = t;
              }).ok());
  // Sender clock advances only through its NIC, not to delivery time.
  EXPECT_GT(delivered_at, clock.now());
}

TEST_F(FabricTest, RpcCounterIncrements) {
  sim::VirtualClock clock;
  uint64_t before = fabric_.rpcs_issued();
  (void)fabric_.Call(clock, 0, 1, 0, 0, [](Nanos a) { return a; });
  (void)fabric_.Send(clock, 0, 1, 0, [](Nanos) {});
  EXPECT_EQ(fabric_.rpcs_issued(), before + 2);
}

TEST_F(FabricTest, CallBatchEmptyIsInvalidArgument) {
  sim::VirtualClock clock;
  Status st = fabric_.CallBatch(clock, 0, 1, /*k=*/0, 0, 0,
                                [](Nanos a) { return a; });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(clock.now(), 0u);
}

TEST_F(FabricTest, CallBatchOfOneMatchesCall) {
  sim::VirtualClock single, batch;
  ASSERT_TRUE(fabric_.Call(single, 0, 1, 96, 4096,
                           [](Nanos a) { return a + 100; }).ok());
  ASSERT_TRUE(fabric_.CallBatch(batch, 0, 1, /*k=*/1, 96, 4096,
                                [](Nanos a) { return a + 100; }).ok());
  EXPECT_EQ(batch.now(), single.now());
}

TEST_F(FabricTest, CallBatchAmortizesPerRpcOverhead) {
  // k files as one batch must be much cheaper than k singles: the fixed
  // per-RPC CPU overhead is paid once plus a small marginal cost per extra
  // sub-request, instead of k times.
  constexpr size_t kK = 16;
  constexpr uint64_t kResp = 4096;
  sim::VirtualClock singles, batch;
  for (size_t i = 0; i < kK; ++i) {
    ASSERT_TRUE(fabric_.Call(singles, 0, 1, 96, kResp,
                             [](Nanos a) { return a; }).ok());
  }
  ASSERT_TRUE(fabric_.CallBatch(batch, 0, 1, kK, 96 * kK, kResp * kK,
                                [](Nanos a) { return a; }).ok());
  EXPECT_LT(batch.now(), singles.now());
  // Per-file latency must drop too, not just the total.
  EXPECT_LT(batch.now() / kK, singles.now() / kK);
  // The saving is at least the amortized fixed overhead: (k-1) singles'
  // setup minus the batch's marginal sub-request cost, across the NIC
  // serves on the round trip.
  Nanos amortized = (kK - 1) * (sim::kRpcCpuOverhead -
                                sim::kRpcBatchSubRequestCost);
  EXPECT_GE(singles.now() - batch.now(), amortized);
}

TEST_F(FabricTest, CallBatchCountsOneRpcAndBatchMetrics) {
  const obs::Labels link{{"link", "n0->n1"}};
  uint64_t rpcs_before = fabric_.rpcs_issued();
  uint64_t calls_before =
      obs::Metrics().GetCounter("net.batch.calls", link).value();
  uint64_t subs_before =
      obs::Metrics().GetCounter("net.batch.subrequests", link).value();
  sim::VirtualClock clock;
  ASSERT_TRUE(fabric_.CallBatch(clock, 0, 1, /*k=*/8, 96 * 8, 4096 * 8,
                                [](Nanos a) { return a; }).ok());
  EXPECT_EQ(fabric_.rpcs_issued(), rpcs_before + 1);
  EXPECT_EQ(obs::Metrics().GetCounter("net.batch.calls", link).value(),
            calls_before + 1);
  EXPECT_EQ(obs::Metrics().GetCounter("net.batch.subrequests", link).value(),
            subs_before + 8);
}

TEST_F(FabricTest, CallBatchToDownNodeFailsUnavailable) {
  cluster_.FailNode(1);
  sim::VirtualClock clock;
  Status st = fabric_.CallBatch(clock, 0, 1, /*k=*/4, 0, 0,
                                [](Nanos a) { return a; });
  EXPECT_TRUE(st.IsUnavailable());
  cluster_.RecoverNode(1);
}

TEST_F(FabricTest, BigPayloadTakesLongerThanSmall) {
  sim::VirtualClock small, big;
  ASSERT_TRUE(fabric_.Call(small, 0, 1, 64, 64,
                           [](Nanos a) { return a; }).ok());
  ASSERT_TRUE(fabric_.Call(big, 0, 2, 4 << 20, 64,
                           [](Nanos a) { return a; }).ok());
  EXPECT_GT(big.now(), small.now());
}

}  // namespace
}  // namespace diesel::net
