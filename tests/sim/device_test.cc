#include "sim/device.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/clock.h"

namespace diesel::sim {
namespace {

TEST(VirtualClockTest, AdvanceToNeverGoesBack) {
  VirtualClock c;
  c.AdvanceTo(100);
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(50);
  EXPECT_EQ(c.now(), 100u);
  c.Advance(10);
  EXPECT_EQ(c.now(), 110u);
}

TEST(DeviceTest, ServiceTimeIsLatencyPlusTransfer) {
  Device d({.name = "d", .channels = 1, .latency = 1000,
            .bytes_per_sec = 1e9});
  EXPECT_EQ(d.ServiceTime(0), 1000u);
  // 1000 bytes at 1 GB/s = 1000 ns.
  EXPECT_EQ(d.ServiceTime(1000), 2000u);
}

TEST(DeviceTest, ZeroBandwidthMeansNoTransferCost) {
  Device d({.name = "d", .channels = 1, .latency = 500, .bytes_per_sec = 0});
  EXPECT_EQ(d.ServiceTime(1 << 20), 500u);
}

TEST(DeviceTest, SingleChannelSerializesRequests) {
  Device d({.name = "d", .channels = 1, .latency = 100, .bytes_per_sec = 0});
  // Three requests all arriving at t=0 queue behind one another.
  EXPECT_EQ(d.Serve(0, 0), 100u);
  EXPECT_EQ(d.Serve(0, 0), 200u);
  EXPECT_EQ(d.Serve(0, 0), 300u);
}

TEST(DeviceTest, MultiChannelServesInParallel) {
  Device d({.name = "d", .channels = 2, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(0, 0), 100u);
  EXPECT_EQ(d.Serve(0, 0), 100u);   // second channel
  EXPECT_EQ(d.Serve(0, 0), 200u);   // queues behind the earlier of the two
}

TEST(DeviceTest, LateArrivalStartsAtArrival) {
  Device d({.name = "d", .channels = 1, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(1000, 0), 1100u);
}

TEST(DeviceTest, ExtraCostAddsToService) {
  Device d({.name = "d", .channels = 1, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(0, 0, 50), 150u);
}

TEST(DeviceTest, StatsAccumulate) {
  Device d({.name = "d", .channels = 1, .latency = 10, .bytes_per_sec = 1e9});
  d.Serve(0, 500);
  d.Serve(0, 1500);
  EXPECT_EQ(d.ops_served(), 2u);
  EXPECT_EQ(d.bytes_served(), 2000u);
  EXPECT_GT(d.busy_time(), 0u);
  d.Reset();
  EXPECT_EQ(d.ops_served(), 0u);
  EXPECT_EQ(d.Serve(0, 0), 10u);  // queue state cleared
}

TEST(DeviceTest, SaturationThroughputMatchesCapacity) {
  // channels/latency = 4/100ns = 40M ops/s capacity. Feed 1000 requests from
  // each of 8 closed-loop workers and check completion time ~ ops/capacity.
  Device d({.name = "d", .channels = 4, .latency = 100, .bytes_per_sec = 0});
  const int kWorkers = 8, kOps = 1000;
  Nanos latest = 0;
  std::vector<VirtualClock> clocks(kWorkers);
  for (int i = 0; i < kOps; ++i) {
    for (auto& c : clocks) {
      c.AdvanceTo(d.Serve(c.now(), 0));
      latest = std::max(latest, c.now());
    }
  }
  double expected = double(kWorkers) * kOps * 100.0 / 4.0;
  EXPECT_NEAR(static_cast<double>(latest), expected, expected * 0.01);
}

TEST(DeviceTest, BackfillServesEarlyArrivalsInIdleGaps) {
  // A request booked far in the future must not delay an earlier arrival:
  // channels keep busy intervals, and new work backfills idle gaps.
  Device d({.name = "d", .channels = 1, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(10000, 0), 10100u);  // future booking
  EXPECT_EQ(d.Serve(0, 0), 100u);        // backfills [0, 100)
  EXPECT_EQ(d.Serve(0, 0), 200u);        // next gap
  // Gap [200, 10000) has room for plenty more.
  EXPECT_EQ(d.Serve(150, 0), 300u);
}

TEST(DeviceTest, BackfillRespectsGapSize) {
  Device d({.name = "d", .channels = 1, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(0, 0), 100u);
  EXPECT_EQ(d.Serve(150, 0), 250u);
  // A request needing 100ns arriving at 50 does not fit in [100, 150);
  // it must start after 250.
  EXPECT_EQ(d.Serve(50, 0), 350u);
}

TEST(DeviceTest, BackfillPrefersEarliestFeasibleChannel) {
  Device d({.name = "d", .channels = 2, .latency = 100, .bytes_per_sec = 0});
  EXPECT_EQ(d.Serve(0, 0), 100u);    // ch A [0,100]
  EXPECT_EQ(d.Serve(0, 0), 100u);    // ch B [0,100]
  EXPECT_EQ(d.Serve(5000, 0), 5100u);  // ch A [5000,5100]
  // Arrival at 0: both channels busy until 100; earliest start is 100.
  EXPECT_EQ(d.Serve(0, 0), 200u);
}

TEST(DeviceTest, IntervalsMergeSoMemoryStaysBounded) {
  // Back-to-back serves produce one merged interval per channel; the
  // structure must not grow with op count.
  Device d({.name = "d", .channels = 1, .latency = 10, .bytes_per_sec = 0});
  Nanos t = 0;
  for (int i = 0; i < 100000; ++i) t = d.Serve(t, 0);
  EXPECT_EQ(t, 1000000u);
  EXPECT_EQ(d.ops_served(), 100000u);
}

TEST(DeviceTest, ThreadSafeUnderConcurrentServe) {
  Device d({.name = "d", .channels = 3, .latency = 10, .bytes_per_sec = 0});
  constexpr int kThreads = 8, kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) d.Serve(0, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(d.ops_served(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(d.bytes_served(), static_cast<uint64_t>(kThreads) * kOps);
  // Total busy time must equal ops * latency exactly (no lost updates).
  EXPECT_EQ(d.busy_time(), static_cast<Nanos>(kThreads) * kOps * 10);
}

}  // namespace
}  // namespace diesel::sim
