// Queueing semantics of sim::Device: per-request ServeStats accounting,
// backfill and channel-selection behavior of EarliestFit/Serve, busy-time
// bounds, the kMaxIntervals collapse counter, and the registry series a
// BindMetrics()-bound device publishes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sim/clock.h"
#include "sim/device.h"

namespace diesel::sim {
namespace {

TEST(DeviceQueueingTest, ServeStatsReportStartDoneWaitService) {
  Device d({.name = "qstats", .channels = 1, .latency = 100,
            .bytes_per_sec = 1e9});
  ServeStats st;
  Nanos done = d.Serve(50, 1000, 25, &st);  // service = 100 + 1000 + 25
  EXPECT_EQ(st.done, done);
  EXPECT_EQ(st.start, 50u);
  EXPECT_EQ(st.queue_wait, 0u);
  EXPECT_EQ(st.service, 1125u);
  EXPECT_EQ(st.done, st.start + st.service);

  // Second request at the same arrival queues behind the first.
  Nanos done2 = d.Serve(50, 0, 0, &st);
  EXPECT_EQ(st.start, done);
  EXPECT_EQ(st.queue_wait, done - 50);
  EXPECT_EQ(st.done, done2);
}

TEST(DeviceQueueingTest, QueueWaitIsNonNegativeAndZeroWhenBackfilled) {
  Device d({.name = "qbackfill", .channels = 1, .latency = 100,
            .bytes_per_sec = 0});
  // Book far in the future, then arrive early: the early request backfills
  // the idle gap and must report zero queue wait, not a wait until the
  // booked work finishes.
  ServeStats st;
  d.Serve(10000, 0, 0, &st);
  EXPECT_EQ(st.queue_wait, 0u);
  d.Serve(0, 0, 0, &st);
  EXPECT_EQ(st.start, 0u);
  EXPECT_EQ(st.queue_wait, 0u);
  // Gap [200, 10000) still has room: arrival at 150 starts at 200 and the
  // wait is exactly the gap to the feasible start.
  d.Serve(0, 0, 0, &st);
  EXPECT_EQ(st.start, 100u);
  d.Serve(150, 0, 0, &st);
  EXPECT_EQ(st.start, 200u);
  EXPECT_EQ(st.queue_wait, 50u);
}

TEST(DeviceQueueingTest, ChannelSelectionAvoidsQueueingWhenIdleChannelExists) {
  Device d({.name = "qchan", .channels = 2, .latency = 100,
            .bytes_per_sec = 0});
  ServeStats st;
  d.Serve(0, 0, 0, &st);
  EXPECT_EQ(st.queue_wait, 0u);
  d.Serve(0, 0, 0, &st);
  EXPECT_EQ(st.queue_wait, 0u);  // second channel picks up the request
  d.Serve(0, 0, 0, &st);
  EXPECT_EQ(st.start, 100u);  // both busy: queue behind the earlier finisher
  EXPECT_EQ(st.queue_wait, 100u);
}

TEST(DeviceQueueingTest, BusyTimeBoundedByChannelsTimesElapsed) {
  // Closed-loop overload of a 3-channel device: total busy time can never
  // exceed channels x the busy window (channels are physical servers), and
  // under saturation it should be close to that bound.
  Device d({.name = "qbound", .channels = 3, .latency = 50,
            .bytes_per_sec = 0});
  constexpr int kWorkers = 8, kOps = 500;
  std::vector<VirtualClock> clocks(kWorkers);
  Nanos latest = 0;
  for (int i = 0; i < kOps; ++i) {
    for (auto& c : clocks) {
      c.AdvanceTo(d.Serve(c.now(), 0));
      latest = std::max(latest, c.now());
    }
  }
  Nanos cap = static_cast<Nanos>(d.spec().channels) * latest;
  EXPECT_LE(d.busy_time(), cap);
  EXPECT_GE(d.busy_time(), cap * 9 / 10);  // saturated: near the bound
  EXPECT_EQ(d.busy_time(), static_cast<Nanos>(kWorkers) * kOps * 50);
}

TEST(DeviceQueueingTest, IntervalCapCollapseIsCounted) {
  // Widely spaced serves leave disjoint busy intervals; past kMaxIntervals
  // (4096) the oldest gap is collapsed and the device counts it.
  Device d({.name = "qcap", .channels = 1, .latency = 10,
            .bytes_per_sec = 0});
  constexpr int kOps = 5000;
  for (int i = 0; i < kOps; ++i) {
    d.Serve(static_cast<Nanos>(i) * 1000, 0);
  }
  EXPECT_GT(d.intervals_collapsed(), 0u);
  EXPECT_EQ(d.ops_served(), static_cast<uint64_t>(kOps));
  d.Reset();
  EXPECT_EQ(d.intervals_collapsed(), 0u);
}

TEST(DeviceQueueingTest, BoundDevicePublishesRegistrySeries) {
  Device d({.name = "qbound-metrics", .channels = 2, .latency = 100,
            .bytes_per_sec = 0});
  EXPECT_FALSE(d.metrics_bound());
  obs::MetricsSnapshot base = obs::Metrics().Snapshot();
  d.BindMetrics("n7");
  EXPECT_TRUE(d.metrics_bound());
  d.Serve(0, 64);
  d.Serve(0, 64);
  d.Serve(0, 64);  // queues: one non-zero queue-wait observation

  obs::MetricsSnapshot delta = obs::Metrics().Snapshot().DeltaSince(base);
  const std::string labels = "{device=qbound-metrics,node=n7}";
  EXPECT_EQ(delta.counters.at("sim.device.ops" + labels), 3u);
  EXPECT_EQ(delta.counters.at("sim.device.bytes" + labels), 3u * 64);
  EXPECT_EQ(delta.counters.at("sim.device.busy_ns" + labels), d.busy_time());
  EXPECT_EQ(delta.histograms.at("sim.device.queue_wait_ns" + labels).count(),
            3u);
  EXPECT_EQ(delta.histograms.at("sim.device.service_ns" + labels).count(), 3u);
  // Gauges are absolute: read from the current snapshot.
  obs::MetricsSnapshot cur = obs::Metrics().Snapshot();
  EXPECT_EQ(cur.gauges.at("sim.device.channels" + labels), 2.0);
  EXPECT_EQ(cur.gauges.at("sim.device.busy_end_ns" + labels), 200.0);
}

}  // namespace
}  // namespace diesel::sim
