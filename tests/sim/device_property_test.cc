// Property test: the interval-booking Device against a brute-force reference
// that replays the same requests with explicit interval bookkeeping. Checks
// the two core guarantees under random out-of-order arrivals:
//   1. completion >= arrival + service (no time travel),
//   2. per-channel capacity is never exceeded (total busy time within any
//      window fits channels x window).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/device.h"

namespace diesel::sim {
namespace {

struct Op {
  Nanos arrival;
  uint64_t bytes;
  Nanos completion;
};

class DevicePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DevicePropertyTest, CompletionsRespectServiceAndCapacity) {
  Rng rng(GetParam());
  DeviceSpec spec;
  spec.name = "prop";
  spec.channels = 1 + static_cast<uint32_t>(rng.Uniform(4));
  spec.latency = 50 + rng.Uniform(200);
  spec.bytes_per_sec = 1e9;
  Device device(spec);

  std::vector<Op> ops;
  Nanos horizon = 0;
  for (int i = 0; i < 2000; ++i) {
    Op op;
    // Out-of-order arrivals: mostly forward progress, occasional jumps back.
    if (rng.Uniform(4) == 0 && horizon > 10000) {
      op.arrival = horizon - rng.Uniform(10000);
    } else {
      horizon += rng.Uniform(300);
      op.arrival = horizon;
    }
    op.bytes = rng.Uniform(4096);
    op.completion = device.Serve(op.arrival, op.bytes);
    ops.push_back(op);

    // Property 1: no op completes before arrival + its own service time.
    ASSERT_GE(op.completion, op.arrival + device.ServiceTime(op.bytes))
        << "op " << i;
  }

  // Property 2: capacity. Sum of service time of ops completing within
  // [0, T] cannot exceed channels * T (work conservation upper bound).
  Nanos t_max = 0;
  for (const Op& op : ops) t_max = std::max(t_max, op.completion);
  double busy = 0;
  for (const Op& op : ops) busy += static_cast<double>(device.ServiceTime(op.bytes));
  ASSERT_LE(busy, static_cast<double>(spec.channels) *
                      static_cast<double>(t_max) + 1.0);

  // Property 3 (utilization sanity): with a dense closed load the device is
  // reasonably utilized — the interval structure doesn't leak capacity.
  // (Loose bound: at least 10% utilized.)
  EXPECT_GT(busy, 0.1 * static_cast<double>(t_max));

  // Stats coherence.
  EXPECT_EQ(device.ops_served(), ops.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DevicePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

TEST(DeviceReferenceTest, SequentialArrivalsMatchClosedFormQueue) {
  // With nondecreasing arrivals and one channel, the device must behave as
  // the textbook single-server queue: completion_i =
  //   max(arrival_i, completion_{i-1}) + service_i.
  Rng rng(7);
  Device device({.name = "q", .channels = 1, .latency = 100,
                 .bytes_per_sec = 1e9});
  Nanos arrival = 0;
  Nanos expected_prev = 0;
  for (int i = 0; i < 5000; ++i) {
    arrival += rng.Uniform(250);
    uint64_t bytes = rng.Uniform(2000);
    Nanos service = device.ServiceTime(bytes);
    Nanos expected = std::max(arrival, expected_prev) + service;
    Nanos got = device.Serve(arrival, bytes);
    ASSERT_EQ(got, expected) << "op " << i;
    expected_prev = expected;
  }
}

TEST(DeviceReferenceTest, MultiChannelSequentialMatchesKServerQueue) {
  // k-server reference: earliest-free channel, nondecreasing arrivals.
  Rng rng(8);
  constexpr uint32_t kChannels = 3;
  Device device({.name = "q", .channels = kChannels, .latency = 80,
                 .bytes_per_sec = 0});
  std::vector<Nanos> free_at(kChannels, 0);
  Nanos arrival = 0;
  for (int i = 0; i < 5000; ++i) {
    arrival += rng.Uniform(100);
    Nanos got = device.Serve(arrival, 0);
    auto it = std::min_element(free_at.begin(), free_at.end());
    Nanos expected = std::max(arrival, *it) + 80;
    *it = expected;
    ASSERT_EQ(got, expected) << "op " << i;
  }
}

}  // namespace
}  // namespace diesel::sim
