// Real-thread concurrency tests: the library's shared components (devices,
// KV shards, object store, task cache) are exercised from many OS threads
// simultaneously; contents must stay bit-exact and counters coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "common/thread_pool.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

class ParallelClientsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);
    spec_.name = "par";
    spec_.num_classes = 4;
    spec_.files_per_class = 50;
    spec_.mean_file_bytes = 2048;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
};

TEST_F(ParallelClientsTest, ConcurrentServerReadsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = deployment_->MakeClient(t % 4,
                                            static_cast<uint32_t>(10 + t),
                                            spec_.name);
      Rng rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        auto content = client->Get(dlt::FilePath(spec_, f));
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ParallelClientsTest, ConcurrentCachedReadsAreExact) {
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(deployment_->MakeClient(
        t % 4, static_cast<uint32_t>(20 + t), spec_.name));
    registry.Register(clients.back()->endpoint());
  }
  ASSERT_TRUE(clients[0]->FetchSnapshot().ok());
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0),
                         *clients[0]->snapshot(), registry, {});
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      Rng rng(200 + t);
      for (int i = 0; i < 300; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        const core::FileMeta* fm = snap.Lookup(dlt::FilePath(spec_, f));
        if (fm == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        auto content = cache.GetFile(clock, clients[t]->endpoint(), *fm);
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every chunk loaded at most once despite racy misses is NOT guaranteed
  // (two threads may race a miss), but loads must not exceed 2x chunks and
  // the cache must end fully resident.
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
  EXPECT_LE(cache.stats().chunk_loads, 2 * snap.chunks().size());
}

TEST_F(ParallelClientsTest, ConcurrentCapacityBoundedCacheStaysSafe) {
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(deployment_->MakeClient(
        t % 4, static_cast<uint32_t>(40 + t), spec_.name));
    registry.Register(clients.back()->endpoint());
  }
  ASSERT_TRUE(clients[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();
  // Tiny partitions force constant eviction under concurrency.
  cache::TaskCacheOptions copts;
  copts.per_node_capacity_bytes = 48 * 1024;
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0), snap,
                         registry, copts);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      Rng rng(300 + t);
      for (int i = 0; i < 200; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        const core::FileMeta* fm = snap.Lookup(dlt::FilePath(spec_, f));
        auto content = cache.GetFile(clock, clients[t]->endpoint(), *fm);
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// A node's partition is dropped and reloaded while reader threads keep
// hammering GetFile: every read must stay bit-exact (misses refetch, peer
// failures degrade to server reads) and the cache must end fully resident.
TEST_F(ParallelClientsTest, ConcurrentReadsSurviveDropNodeAndReload) {
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(deployment_->MakeClient(
        t % 4, static_cast<uint32_t>(80 + t), spec_.name));
    registry.Register(clients.back()->endpoint());
  }
  ASSERT_TRUE(clients[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();
  cache::TaskCacheOptions copts;
  copts.policy = cache::CachePolicy::kOneshot;
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0), snap,
                         registry, copts);
  ASSERT_TRUE(cache.Preload(0).ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      Rng rng(400 + t);
      for (int i = 0; i < 300; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        const core::FileMeta* fm = snap.Lookup(dlt::FilePath(spec_, f));
        auto content = cache.GetFile(clock, clients[t]->endpoint(), *fm);
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
      stop.store(true);
    });
  }
  // Chaos thread: repeatedly drop one node's partition and reload it while
  // the readers run.
  std::thread chaos([&] {
    int round = 0;
    while (!stop.load()) {
      cache.DropNode(static_cast<sim::NodeId>(round++ % 4));
      ASSERT_TRUE(cache.Reload(0).ok());
    }
  });
  for (auto& t : threads) t.join();
  chaos.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(cache.Reload(0).ok());
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
}

// KV shards on one node fail and recover while client threads keep issuing
// metadata-bearing operations. In-flight ops may surface Unavailable (the
// shard is genuinely down) or NotFound (its keys were lost), but nothing
// may crash, corrupt, or wedge; after recovery every op must succeed.
TEST_F(ParallelClientsTest, ConcurrentKvOpsSurviveShardFailureAndRecovery) {
  kv::KvCluster& kv = deployment_->kv();
  const sim::NodeId victim = deployment_->kv_node(0);
  constexpr int kThreads = 6;
  std::atomic<int> unexpected{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      for (int i = 0; i < 300; ++i) {
        std::string key = "ck" + std::to_string(t) + "_" + std::to_string(i);
        Status put = kv.Put(clock, static_cast<sim::NodeId>(t % 4), key, "v");
        if (!put.ok() && !put.IsUnavailable()) unexpected.fetch_add(1);
        auto got = kv.Get(clock, static_cast<sim::NodeId>(t % 4), key);
        if (got.ok()) {
          if (*got != "v") unexpected.fetch_add(1);
        } else if (!got.status().IsUnavailable() &&
                   !got.status().IsNotFound()) {
          unexpected.fetch_add(1);
        }
      }
      stop.store(true);
    });
  }
  std::thread chaos([&] {
    while (!stop.load()) {
      kv.FailShardsOnNode(victim);
      kv.RestartShardsOnNode(victim);
    }
  });
  for (auto& t : threads) t.join();
  chaos.join();
  EXPECT_EQ(unexpected.load(), 0);
  // Fully recovered: every shard is up and all ops succeed again.
  for (uint32_t s = 0; s < kv.NumShards(); ++s) EXPECT_TRUE(kv.shard(s).up());
  sim::VirtualClock clock;
  for (int i = 0; i < 50; ++i) {
    std::string key = "post" + std::to_string(i);
    ASSERT_TRUE(kv.Put(clock, 0, key, "w").ok());
    EXPECT_EQ(kv.Get(clock, 0, key).value(), "w");
  }
}

TEST_F(ParallelClientsTest, ConcurrentWritersToDistinctDatasets) {
  constexpr int kThreads = 6;
  ThreadPool pool(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      std::string ds = "writer" + std::to_string(t);
      auto client = deployment_->MakeClient(t % 4, 60, ds);
      for (int i = 0; i < 100; ++i) {
        std::string payload = ds + ":" + std::to_string(i);
        if (!client->Put("/" + ds + "/f" + std::to_string(i),
                         AsBytesView(payload)).ok()) {
          failures.fetch_add(1);
        }
      }
      if (!client->Flush().ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  ASSERT_EQ(failures.load(), 0);
  // Read each dataset back, cross-checking isolation.
  for (int t = 0; t < kThreads; ++t) {
    std::string ds = "writer" + std::to_string(t);
    auto reader = deployment_->MakeClient(0, static_cast<uint32_t>(70 + t), ds);
    auto content = reader->Get("/" + ds + "/f42");
    ASSERT_TRUE(content.ok()) << ds;
    EXPECT_EQ(ToString(content.value()), ds + ":42");
  }
}

}  // namespace
}  // namespace diesel
