// Real-thread concurrency tests: the library's shared components (devices,
// KV shards, object store, task cache) are exercised from many OS threads
// simultaneously; contents must stay bit-exact and counters coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "common/thread_pool.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"

namespace diesel {
namespace {

class ParallelClientsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions opts;
    opts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(opts);
    spec_.name = "par";
    spec_.num_classes = 4;
    spec_.files_per_class = 50;
    spec_.mean_file_bytes = 2048;

    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
};

TEST_F(ParallelClientsTest, ConcurrentServerReadsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = deployment_->MakeClient(t % 4,
                                            static_cast<uint32_t>(10 + t),
                                            spec_.name);
      Rng rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        auto content = client->Get(dlt::FilePath(spec_, f));
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ParallelClientsTest, ConcurrentCachedReadsAreExact) {
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(deployment_->MakeClient(
        t % 4, static_cast<uint32_t>(20 + t), spec_.name));
    registry.Register(clients.back()->endpoint());
  }
  ASSERT_TRUE(clients[0]->FetchSnapshot().ok());
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0),
                         *clients[0]->snapshot(), registry, {});
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      Rng rng(200 + t);
      for (int i = 0; i < 300; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        const core::FileMeta* fm = snap.Lookup(dlt::FilePath(spec_, f));
        if (fm == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        auto content = cache.GetFile(clock, clients[t]->endpoint(), *fm);
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every chunk loaded at most once despite racy misses is NOT guaranteed
  // (two threads may race a miss), but loads must not exceed 2x chunks and
  // the cache must end fully resident.
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 1.0);
  EXPECT_LE(cache.stats().chunk_loads, 2 * snap.chunks().size());
}

TEST_F(ParallelClientsTest, ConcurrentCapacityBoundedCacheStaysSafe) {
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<core::DieselClient>> clients;
  cache::TaskRegistry registry;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(deployment_->MakeClient(
        t % 4, static_cast<uint32_t>(40 + t), spec_.name));
    registry.Register(clients.back()->endpoint());
  }
  ASSERT_TRUE(clients[0]->FetchSnapshot().ok());
  const core::MetadataSnapshot& snap = *clients[0]->snapshot();
  // Tiny partitions force constant eviction under concurrency.
  cache::TaskCache cache(deployment_->fabric(), deployment_->server(0), snap,
                         registry, {.per_node_capacity_bytes = 48 * 1024});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock;
      Rng rng(300 + t);
      for (int i = 0; i < 200; ++i) {
        size_t f = rng.Uniform(spec_.total_files());
        const core::FileMeta* fm = snap.Lookup(dlt::FilePath(spec_, f));
        auto content = cache.GetFile(clock, clients[t]->endpoint(), *fm);
        if (!content.ok() || !dlt::VerifyContent(spec_, f, content.value())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(ParallelClientsTest, ConcurrentWritersToDistinctDatasets) {
  constexpr int kThreads = 6;
  ThreadPool pool(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      std::string ds = "writer" + std::to_string(t);
      auto client = deployment_->MakeClient(t % 4, 60, ds);
      for (int i = 0; i < 100; ++i) {
        std::string payload = ds + ":" + std::to_string(i);
        if (!client->Put("/" + ds + "/f" + std::to_string(i),
                         AsBytesView(payload)).ok()) {
          failures.fetch_add(1);
        }
      }
      if (!client->Flush().ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  ASSERT_EQ(failures.load(), 0);
  // Read each dataset back, cross-checking isolation.
  for (int t = 0; t < kThreads; ++t) {
    std::string ds = "writer" + std::to_string(t);
    auto reader = deployment_->MakeClient(0, static_cast<uint32_t>(70 + t), ds);
    auto content = reader->Get("/" + ds + "/f42");
    ASSERT_TRUE(content.ok()) << ds;
    EXPECT_EQ(ToString(content.value()), ds + ":42");
  }
}

}  // namespace
}  // namespace diesel
