// Multi-tenant chaos: three tenants share one dataset through the cache
// fabric while a seeded fault schedule drops RPCs and flaps a provider
// node. Contract: every read on every tenant returns correct bytes (faults
// cost time, never correctness), the dedup invariant holds (aggregate
// backend loads stay ~1x the dataset, bounded by retried fetches), and the
// whole run is bit-for-bit reproducible for the same seed.
// DIESEL_CHAOS_SEED=<n> sweeps the schedule (nightly runs 32 seeds across
// plain/asan/tsan builds); unset, the pinned default keeps local runs
// reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cache/task_cache.h"
#include "common/rng.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"
#include "tenant/fabric.h"

namespace diesel::tenant {
namespace {

constexpr size_t kTenants = 3;

uint64_t ChaosSeed(uint64_t fallback) {
  const char* env = std::getenv("DIESEL_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

dlt::DatasetSpec MakeSpec() {
  dlt::DatasetSpec spec;
  spec.name = "tchaos";
  spec.num_classes = 3;
  spec.files_per_class = 30;
  spec.mean_file_bytes = 2048;
  return spec;
}

struct RunOutput {
  uint64_t backend_loads = 0;  // aggregate across tenants
  uint64_t adopted = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_total = 0;
  uint64_t dataset_chunks = 0;
  std::vector<Nanos> tenant_end;
  std::vector<uint64_t> tenant_adopted;
};

RunOutput RunWorkload(uint64_t seed) {
  RunOutput out;
  dlt::DatasetSpec spec = MakeSpec();
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = kTenants;
  core::Deployment dep(dopts);
  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  EXPECT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  EXPECT_TRUE(writer->Flush().ok());
  dep.ResetDevices();

  net::FaultPlan plan;
  plan.seed = seed;
  plan.rpc_drop_prob = 0.01;
  plan.fault_detect_timeout = Micros(200);
  // Flap the first tenant's node mid-run: its published chunks' home goes
  // down while other tenants are still adopting from it.
  plan.node_flaps.push_back({.node = 0, .down_at = Millis(1),
                             .up_at = Millis(4)});
  net::FaultInjector inj(plan);
  dep.fabric().set_fault_injector(&inj);

  CacheFabric shared(dep.fabric(), {});
  struct Tenant {
    std::unique_ptr<core::DieselClient> client;
    cache::TaskRegistry registry;
    std::unique_ptr<cache::TaskCache> cache;
    TenantBinding* binding = nullptr;
    std::vector<uint32_t> order;
    size_t cursor = 0;
    sim::VirtualClock clock;
  };
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (size_t j = 0; j < kTenants; ++j) {
    auto t = std::make_unique<Tenant>();
    t->client = dep.MakeClient(j, 1, spec.name);
    t->registry.Register(t->client->endpoint());
    EXPECT_TRUE(t->client->FetchSnapshot().ok());
    t->binding =
        shared.RegisterTenant(spec.name, {.name = "t" + std::to_string(j)});
    cache::TaskCacheOptions copts;
    copts.policy = cache::CachePolicy::kOneshot;
    copts.retry.max_attempts = 10;
    copts.retry.initial_backoff = Micros(100);
    copts.breaker.cooldown = Millis(1);
    t->cache = std::make_unique<cache::TaskCache>(
        dep.fabric(), dep.server(0), *t->client->snapshot(), t->registry,
        copts);
    t->cache->AttachSharedTier(t->binding);
    t->order.resize(t->client->snapshot()->num_files());
    for (uint32_t i = 0; i < t->order.size(); ++i) t->order[i] = i;
    Rng rng(seed + j);
    rng.Shuffle(t->order);
    tenants.push_back(std::move(t));
  }

  // Closed-loop interleave by global virtual time.
  for (;;) {
    Tenant* next = nullptr;
    for (auto& t : tenants) {
      if (t->cursor >= t->order.size()) continue;
      if (next == nullptr || t->clock.now() < next->clock.now()) {
        next = t.get();
      }
    }
    if (next == nullptr) break;
    size_t index = next->order[next->cursor++];
    const core::FileMeta* fm =
        next->client->snapshot()->Lookup(dlt::FilePath(spec, index));
    if (fm == nullptr) {
      ADD_FAILURE() << "missing metadata for file " << index;
      continue;
    }
    auto r = next->cache->GetFile(next->clock, next->client->endpoint(), *fm);
    ++out.reads_total;
    if (r.ok() && dlt::VerifyContent(spec, index, r.value())) ++out.reads_ok;
  }

  out.dataset_chunks = tenants[0]->client->snapshot()->chunks().size();
  for (auto& t : tenants) {
    cache::TaskCacheStats cs = t->cache->stats();
    out.backend_loads += cs.chunk_loads;
    out.adopted += cs.adopted_chunks;
    out.tenant_adopted.push_back(cs.adopted_chunks);
    out.tenant_end.push_back(t->clock.now());
    t->cache->Teardown(t->clock.now());
    shared.DeregisterTenant(t->binding);
  }
  dep.fabric().set_fault_injector(nullptr);
  return out;
}

TEST(TenantChaosTest, FaultsCostTimeNeverCorrectnessOrDedup) {
  uint64_t seed = ChaosSeed(7);
  RunOutput out = RunWorkload(seed);
  // Every tenant read every file correctly despite drops and the flap.
  EXPECT_EQ(out.reads_ok, out.reads_total) << "seed " << seed;
  EXPECT_EQ(out.reads_total, kTenants * MakeSpec().total_files());
  // Dedup held: with one shared dataset the aggregate backend load stays
  // near 1x the dataset (degraded reads during the flap may re-fetch a few
  // chunks), strictly below the Nx that disjoint caches would pay.
  EXPECT_GT(out.adopted, 0u) << "seed " << seed;
  EXPECT_GE(out.backend_loads, out.dataset_chunks) << "seed " << seed;
  EXPECT_LT(out.backend_loads, kTenants * out.dataset_chunks)
      << "seed " << seed << ": backend loads " << out.backend_loads
      << " over " << out.dataset_chunks << " chunks";
}

TEST(TenantChaosTest, SameSeedReproducesBitForBit) {
  uint64_t seed = ChaosSeed(7);
  RunOutput a = RunWorkload(seed);
  RunOutput b = RunWorkload(seed);
  EXPECT_EQ(a.backend_loads, b.backend_loads);
  EXPECT_EQ(a.adopted, b.adopted);
  EXPECT_EQ(a.reads_ok, b.reads_ok);
  EXPECT_EQ(a.tenant_end, b.tenant_end);
  EXPECT_EQ(a.tenant_adopted, b.tenant_adopted);
}

}  // namespace
}  // namespace diesel::tenant
