// Corruption lifecycle across the shared tier (REVIEW regression): a chunk
// published to the fabric BEFORE any CRC scan (preload/prefetch paths) may
// be corrupt. The detecting reader must invalidate the shared entry, and a
// later verified re-publish of refetched clean bytes must replace — never
// vouch for — a corrupt resident blob. Contract: no tenant ever reads wrong
// bytes, and once one tenant has paid the refetch, the rest adopt the clean
// verified copy instead of re-detecting the corruption forever.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "net/fault_injector.h"
#include "tenant/fabric.h"

namespace diesel::tenant {
namespace {

dlt::DatasetSpec MakeSpec() {
  dlt::DatasetSpec spec;
  spec.name = "tcorrupt";
  spec.num_classes = 2;
  spec.files_per_class = 12;
  spec.mean_file_bytes = 2048;
  return spec;
}

struct Job {
  std::unique_ptr<core::DieselClient> client;
  cache::TaskRegistry registry;
  std::unique_ptr<cache::TaskCache> cache;
  TenantBinding* binding = nullptr;
  sim::VirtualClock clock;
};

TEST(TenantCorruptionTest, CorruptPublishIsInvalidatedNeverMarkedVerified) {
  dlt::DatasetSpec spec = MakeSpec();
  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 3;
  core::Deployment dep(dopts);
  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  ASSERT_TRUE(dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
                return writer->Put(f.path, f.content);
              }).ok());
  ASSERT_TRUE(writer->Flush().ok());
  dep.ResetDevices();

  // Chunk 0's next fetch returns flipped payload bytes (one-shot): job A's
  // preload publishes that corrupt blob to the fabric with an empty memo.
  net::FaultPlan plan;
  plan.corrupt_chunk_fetches.push_back(0);
  net::FaultInjector inj(plan);
  dep.fabric().set_fault_injector(&inj);

  CacheFabric shared(dep.fabric(), {});
  std::vector<std::unique_ptr<Job>> jobs;
  for (size_t j = 0; j < 3; ++j) {
    auto job = std::make_unique<Job>();
    job->client = dep.MakeClient(j, 1, spec.name);
    job->registry.Register(job->client->endpoint());
    ASSERT_TRUE(job->client->FetchSnapshot().ok());
    job->binding =
        shared.RegisterTenant(spec.name, {.name = "j" + std::to_string(j)});
    ASSERT_NE(job->binding, nullptr);
    job->cache = std::make_unique<cache::TaskCache>(
        dep.fabric(), dep.server(0), *job->client->snapshot(), job->registry,
        cache::TaskCacheOptions{});
    job->cache->AttachSharedTier(job->binding);
    jobs.push_back(std::move(job));
  }
  Job& a = *jobs[0];
  Job& b = *jobs[1];
  Job& c = *jobs[2];

  ASSERT_TRUE(a.cache->Preload(0).ok());
  ASSERT_GT(shared.resident_chunks(), 0u);

  // Every file of chunk 0, read per file by B, then A (the publisher of the
  // corruption, whose local copy is corrupt), then C. The flipped byte sits
  // in ONE file's range, so early files pass their CRC everywhere and both
  // B and C adopt the corrupt blob before anyone can detect it — the
  // detection fires mid-chunk, exercising invalidate + verified re-publish
  // while stale corrupt copies are still resident in other tasks.
  const core::ChunkId chunk0 = a.client->snapshot()->chunks().at(0);
  size_t chunk0_files = 0;
  for (size_t i = 0; i < spec.total_files(); ++i) {
    const core::FileMeta* fm =
        a.client->snapshot()->Lookup(dlt::FilePath(spec, i));
    ASSERT_NE(fm, nullptr);
    if (!(fm->chunk == chunk0)) continue;
    ++chunk0_files;
    for (Job* job : {&b, &a, &c}) {
      auto r = job->cache->GetFile(job->clock, job->client->endpoint(), *fm);
      ASSERT_TRUE(r.ok()) << "file " << i;
      EXPECT_TRUE(dlt::VerifyContent(spec, i, r.value()))
          << "tenant served corrupt bytes for file " << i;
    }
  }
  ASSERT_GT(chunk0_files, 0u);

  // B detected the corruption EXACTLY once: invalidation removed the shared
  // entry, so the post-eviction adopt misses instead of handing the same
  // corrupt blob back for a second detection. One refetch repairs the chunk
  // for the whole cluster.
  EXPECT_EQ(b.cache->stats().corruptions_detected, 1u);
  EXPECT_EQ(b.cache->stats().chunk_loads, 1u);
  // A's resident copy was corrupt too; it detected once, and its stale-blob
  // invalidation must NOT have hit B's clean replacement — it healed via
  // adoption, no backend round-trip.
  EXPECT_EQ(a.cache->stats().corruptions_detected, 1u);
  EXPECT_GE(a.cache->stats().adopted_chunks, 1u);
  // C adopted before detection, so it may detect the bad byte once itself —
  // but never more than once, and it repairs purely by adopting the clean
  // verified copy (zero backend loads). If the verified re-publish had been
  // unioned onto the corrupt blob, C would instead have SERVED corrupt
  // bytes with the CRC skipped (caught by VerifyContent above).
  EXPECT_LE(c.cache->stats().corruptions_detected, 1u);
  EXPECT_EQ(c.cache->stats().chunk_loads, 0u);
  EXPECT_GE(c.cache->stats().adopted_chunks, 1u);

  dep.fabric().set_fault_injector(nullptr);
}

}  // namespace
}  // namespace diesel::tenant
