// Cross-task chunk dedup lifetime: zero-copy slices handed to task A out of
// chunks that task B loaded (and the shared fabric deduplicated) must stay
// byte-stable after B — the last "owner" of the bytes — tears down,
// crashes, or its home node dies. Run under ASan/TSan this is the
// use-after-free proof for the cross-task shared-buffer design; every
// scenario sweeps seeds 1..8 so the adopted subsets vary.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "tenant/fabric.h"

namespace diesel::tenant {
namespace {

constexpr uint64_t kSeedLo = 1;
constexpr uint64_t kSeedHi = 8;

class DedupLifetimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::DeploymentOptions dopts;
    dopts.num_client_nodes = 4;
    deployment_ = std::make_unique<core::Deployment>(dopts);
    spec_.name = "dedup";
    spec_.num_classes = 2;
    spec_.files_per_class = 40;
    spec_.mean_file_bytes = 2048;
    auto writer = deployment_->MakeClient(0, 0, spec_.name, 16 * 1024);
    ASSERT_TRUE(dlt::ForEachFile(spec_, [&](const dlt::GeneratedFile& f) {
                  return writer->Put(f.path, f.content);
                }).ok());
    ASSERT_TRUE(writer->Flush().ok());
  }

  /// One task: a client on `node`, its own registry + cache, attached to
  /// `fabric` under `tenant_name`.
  struct Task {
    std::unique_ptr<core::DieselClient> client;
    cache::TaskRegistry registry;
    std::unique_ptr<cache::TaskCache> cache;
    TenantBinding* binding = nullptr;
    sim::VirtualClock clock;
  };

  std::unique_ptr<Task> MakeTask(CacheFabric& fabric, size_t node,
                                 const std::string& tenant_name) {
    auto t = std::make_unique<Task>();
    t->client = deployment_->MakeClient(node, 1, spec_.name);
    t->registry.Register(t->client->endpoint());
    EXPECT_TRUE(t->client->FetchSnapshot().ok());
    t->binding = fabric.RegisterTenant(spec_.name, {.name = tenant_name});
    t->cache = std::make_unique<cache::TaskCache>(
        deployment_->fabric(), deployment_->server(0), *t->client->snapshot(),
        t->registry, cache::TaskCacheOptions{});
    t->cache->AttachSharedTier(t->binding);
    return t;
  }

  const core::FileMeta& File(const Task& t, size_t index) {
    const core::FileMeta* m =
        t.client->snapshot()->Lookup(dlt::FilePath(spec_, index));
    EXPECT_NE(m, nullptr);
    return *m;
  }

  /// Seed-dependent file subset (every seed hits a different mix).
  std::vector<size_t> Subset(uint64_t seed) {
    std::vector<size_t> out;
    for (size_t i = 0; i < spec_.total_files(); ++i) {
      if ((i * 2654435761u + seed) % 3 != 0) out.push_back(i);
    }
    return out;
  }

  std::unique_ptr<core::Deployment> deployment_;
  dlt::DatasetSpec spec_;
};

TEST_F(DedupLifetimeTest, SlicesSurviveProviderTeardown) {
  for (uint64_t seed = kSeedLo; seed <= kSeedHi; ++seed) {
    CacheFabric fabric(deployment_->fabric(), {});
    auto provider = MakeTask(fabric, 0, "provider");
    auto adopter = MakeTask(fabric, 1, "adopter");

    // Provider loads everything (publishing each chunk into the fabric).
    for (size_t i = 0; i < spec_.total_files(); ++i) {
      ASSERT_TRUE(provider->cache
                      ->GetFile(provider->clock, provider->client->endpoint(),
                                File(*provider, i))
                      .ok());
    }
    // Adopter takes zero-copy slices via the shared tier (no backend reads).
    std::vector<size_t> picks = Subset(seed);
    std::vector<core::FileSlice> held;
    for (size_t i : picks) {
      auto s = adopter->cache->GetFileSlice(
          adopter->clock, adopter->client->endpoint(), File(*adopter, i));
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      held.push_back(std::move(s.value()));
    }
    EXPECT_EQ(adopter->cache->stats().chunk_loads, 0u);
    EXPECT_GT(adopter->cache->stats().adopted_chunks, 0u);

    // Provider ends orderly (demote) and is destroyed entirely; the fabric
    // then loses its copies too. Held slices must not notice.
    provider->cache->Teardown(provider->clock.now());
    fabric.DeregisterTenant(provider->binding);
    provider.reset();
    for (size_t k = 0; k < held.size(); ++k) {
      EXPECT_TRUE(dlt::VerifyContent(spec_, picks[k], held[k].ToBytes()))
          << "seed " << seed << " file " << picks[k];
    }
  }
}

TEST_F(DedupLifetimeTest, SlicesSurviveProviderCrashAndFabricDestruction) {
  for (uint64_t seed = kSeedLo; seed <= kSeedHi; ++seed) {
    std::vector<core::FileSlice> held;
    std::vector<size_t> picks = Subset(seed);
    {
      CacheFabric fabric(deployment_->fabric(), {});
      auto provider = MakeTask(fabric, 0, "crasher");
      auto adopter = MakeTask(fabric, 1, "survivor");
      for (size_t i = 0; i < spec_.total_files(); ++i) {
        ASSERT_TRUE(provider->cache
                        ->GetFile(provider->clock,
                                  provider->client->endpoint(),
                                  File(*provider, i))
                        .ok());
      }
      for (size_t i : picks) {
        auto s = adopter->cache->GetFileSlice(
            adopter->clock, adopter->client->endpoint(), File(*adopter, i));
        ASSERT_TRUE(s.ok());
        held.push_back(std::move(s.value()));
      }
      // Crash semantics: DropAll, no demote — then the adopter tears down
      // and the whole fabric is destroyed while the slices live on.
      provider->cache->DropAll();
      provider.reset();
      adopter->cache->Teardown(adopter->clock.now());
      adopter.reset();
    }
    for (size_t k = 0; k < held.size(); ++k) {
      EXPECT_TRUE(dlt::VerifyContent(spec_, picks[k], held[k].ToBytes()))
          << "seed " << seed << " file " << picks[k];
    }
  }
}

TEST_F(DedupLifetimeTest, AdoptionFromDeadHomeNodeServesLocally) {
  for (uint64_t seed = kSeedLo; seed <= kSeedHi; ++seed) {
    CacheFabric fabric(deployment_->fabric(), {});
    auto provider = MakeTask(fabric, 2, "doomed" + std::to_string(seed));
    for (size_t i = 0; i < spec_.total_files(); ++i) {
      ASSERT_TRUE(provider->cache
                      ->GetFile(provider->clock, provider->client->endpoint(),
                                File(*provider, i))
                      .ok());
    }
    provider->cache->Teardown(provider->clock.now());
    fabric.DeregisterTenant(provider->binding);
    provider.reset();

    // The demoted chunks' home node dies; adoption must fall back to a
    // local serve (re-homing the entries) instead of failing.
    deployment_->cluster().FailNode(deployment_->client_node(2));
    auto adopter = MakeTask(fabric, 3, "adopter" + std::to_string(seed));
    std::vector<size_t> picks = Subset(seed);
    for (size_t i : picks) {
      auto r = adopter->cache->GetFile(
          adopter->clock, adopter->client->endpoint(), File(*adopter, i));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(dlt::VerifyContent(spec_, i, r.value()));
    }
    EXPECT_EQ(adopter->cache->stats().chunk_loads, 0u);
    deployment_->cluster().RecoverNode(deployment_->client_node(2));
  }
}

}  // namespace
}  // namespace diesel::tenant
