// CacheFabric unit tests: directory dedup, demote/adopt accounting,
// per-tenant budgets, weighted fair eviction, departed-residue priority and
// the prefetch budget governor — all against the raw fabric, no deployment.
#include <gtest/gtest.h>

#include "net/fabric.h"
#include "sim/node.h"
#include "tenant/fabric.h"

namespace diesel::tenant {
namespace {

core::ChunkBuffer MakeBuffer(size_t bytes, uint8_t fill) {
  Bytes blob(bytes, fill);
  return core::ChunkBuffer::Wrap(std::move(blob), 0);
}

class FabricTest : public ::testing::Test {
 protected:
  sim::Cluster cluster_{4};
  net::Fabric net_{cluster_};
};

TEST_F(FabricTest, PublishThenAdoptSharesTheSameBytes) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  TenantBinding* b = fabric.RegisterTenant("ds", {.name = "b"});

  core::ChunkBuffer buf = MakeBuffer(1024, 0x5a);
  a->Publish(0, 7, buf, {true, false}, 0);
  EXPECT_EQ(fabric.resident_chunks(), 1u);
  EXPECT_EQ(fabric.resident_bytes(), 1024u);

  sim::VirtualClock clock;
  auto adopted = b->Adopt(clock, 1, 7);
  ASSERT_TRUE(adopted.ok());
  // Refcount share, not a copy: same underlying blob.
  EXPECT_EQ(adopted.value().buffer.shared_blob().get(),
            buf.shared_blob().get());
  // CRC memo travels with the chunk.
  ASSERT_EQ(adopted.value().verified.size(), 2u);
  EXPECT_TRUE(adopted.value().verified[0]);
  // Cross-node adoption charges virtual time.
  EXPECT_GT(clock.now(), 0u);

  auto stats = fabric.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].shared_hits, 1u);   // a's bytes served b
  EXPECT_EQ(stats[1].adopted_chunks, 1u);
}

TEST_F(FabricTest, AdoptMissesAreNotFound) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  sim::VirtualClock clock;
  auto r = a->Adopt(clock, 0, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(FabricTest, TenantsOnDifferentDatasetsNeverShare) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds1", {.name = "a"});
  TenantBinding* b = fabric.RegisterTenant("ds2", {.name = "b"});
  a->Publish(0, 0, MakeBuffer(128, 1), {}, 0);
  sim::VirtualClock clock;
  EXPECT_FALSE(b->Adopt(clock, 1, 0).ok());
}

TEST_F(FabricTest, DemoteRetainsResidencyAndDedups) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  core::ChunkBuffer buf = MakeBuffer(512, 0x11);
  EXPECT_EQ(a->Demote(0, 1, buf, {}, 0), 512u);
  // Demoting (or publishing) an already-shared chunk retains it — no double
  // charge, still one entry.
  EXPECT_EQ(a->Demote(0, 1, buf, {}, 0), 512u);
  EXPECT_EQ(fabric.resident_chunks(), 1u);
  EXPECT_EQ(fabric.resident_bytes(), 512u);
  EXPECT_EQ(fabric.Stats()[0].demoted_chunks, 2u);
}

TEST_F(FabricTest, PerTenantBudgetEvictsOwnOldestFirst) {
  CacheFabric fabric(net_, {});
  TenantBinding* a =
      fabric.RegisterTenant("ds", {.name = "a", .budget_bytes = 1024});
  for (size_t ci = 0; ci < 4; ++ci) {
    a->Publish(0, ci, MakeBuffer(512, static_cast<uint8_t>(ci)), {}, 0);
  }
  // Budget holds 2 x 512; the oldest two were self-evicted.
  EXPECT_EQ(fabric.resident_chunks(), 2u);
  auto stats = fabric.Stats();
  EXPECT_EQ(stats[0].evictions, 2u);
  EXPECT_EQ(stats[0].evicted_by_other, 0u);
  sim::VirtualClock clock;
  EXPECT_FALSE(a->Adopt(clock, 0, 0).ok());  // oldest gone
  EXPECT_TRUE(a->Adopt(clock, 0, 3).ok());   // newest retained
  // A chunk bigger than the whole budget is declined outright.
  EXPECT_EQ(a->Demote(0, 9, MakeBuffer(4096, 0xff), {}, 0), 0u);
}

TEST_F(FabricTest, CapacityEvictsFromHeaviestTenantPerWeight) {
  FabricOptions fopts;
  fopts.capacity_bytes = 4 * 512;
  CacheFabric fabric(net_, fopts);
  TenantBinding* big = fabric.RegisterTenant("ds", {.name = "big"});
  TenantBinding* small = fabric.RegisterTenant("ds2", {.name = "small"});
  for (size_t ci = 0; ci < 4; ++ci) {
    big->Publish(0, ci, MakeBuffer(512, 1), {}, 0);
  }
  // The fabric is full of big's bytes; small's publish must evict from big
  // (highest bytes/weight), and big's loss is attributed to small.
  small->Publish(1, 0, MakeBuffer(512, 2), {}, 0);
  auto stats = fabric.Stats();
  EXPECT_EQ(stats[0].evictions, 1u);
  EXPECT_EQ(stats[0].evicted_by_other, 1u);
  EXPECT_EQ(stats[1].resident_chunks, 1u);
  EXPECT_LE(fabric.resident_bytes(), fopts.capacity_bytes);
}

TEST_F(FabricTest, DepartedResidueIsThePreferredVictim) {
  FabricOptions fopts;
  fopts.capacity_bytes = 4 * 512;
  fopts.departed_weight = 0.25;
  CacheFabric fabric(net_, fopts);
  TenantBinding* gone = fabric.RegisterTenant("ds", {.name = "gone"});
  TenantBinding* live = fabric.RegisterTenant("ds2", {.name = "live"});
  for (size_t ci = 0; ci < 2; ++ci) {
    gone->Demote(0, ci, MakeBuffer(512, 3), {}, 0);
    live->Publish(1, ci, MakeBuffer(512, 4), {}, 0);
  }
  fabric.DeregisterTenant(gone);
  // Equal byte footprints, but the departed tenant's effective weight is
  // quartered — its residue goes first.
  live->Publish(1, 7, MakeBuffer(512, 5), {}, 0);
  auto stats = fabric.Stats();
  EXPECT_FALSE(stats[0].active);
  EXPECT_EQ(stats[0].evictions, 1u);
  EXPECT_EQ(stats[1].evictions, 0u);
  EXPECT_EQ(stats[1].resident_chunks, 3u);
}

TEST_F(FabricTest, DepartedResidueStaysAdoptable) {
  CacheFabric fabric(net_, {});
  TenantBinding* gone = fabric.RegisterTenant("ds", {.name = "gone"});
  gone->Demote(0, 0, MakeBuffer(256, 6), {}, 0);
  fabric.DeregisterTenant(gone);
  TenantBinding* next = fabric.RegisterTenant("ds", {.name = "next"});
  sim::VirtualClock clock;
  EXPECT_TRUE(next->Adopt(clock, 1, 0).ok());
}

TEST_F(FabricTest, VerifiedMemoUnionsOnlyOnIdenticalBytes) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  TenantBinding* b = fabric.RegisterTenant("ds", {.name = "b"});
  // A corrupt blob published before any CRC scan (EnsureLoaded/prefetch
  // publish with an empty memo).
  core::ChunkBuffer corrupt = MakeBuffer(1024, 0xbd);
  a->Publish(0, 7, corrupt, {}, 0);
  // An adopter detects the corruption, refetches clean bytes and publishes
  // them verified. The memo vouches for the NEW bytes only: the fabric must
  // not keep the corrupt blob and mark it verified.
  core::ChunkBuffer clean = MakeBuffer(1024, 0x5a);
  b->Publish(1, 7, clean, {true}, 0);
  sim::VirtualClock clock;
  auto adopted = a->Adopt(clock, 2, 7);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value().buffer.shared_blob().get(),
            clean.shared_blob().get());
  ASSERT_EQ(adopted.value().verified.size(), 1u);
  EXPECT_TRUE(adopted.value().verified[0]);
  // Same blob re-offered: the memo unions in place (no replacement).
  a->Publish(0, 7, clean, {true, true}, 0);
  adopted = a->Adopt(clock, 2, 7);
  ASSERT_TRUE(adopted.ok());
  ASSERT_EQ(adopted.value().verified.size(), 2u);
  EXPECT_TRUE(adopted.value().verified[1]);
  EXPECT_EQ(fabric.resident_chunks(), 1u);
  EXPECT_EQ(fabric.resident_bytes(), 1024u);
}

TEST_F(FabricTest, UnverifiedDistinctOfferKeepsTheVerifiedResident) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  core::ChunkBuffer verified_blob = MakeBuffer(512, 0x01);
  a->Publish(0, 3, verified_blob, {true}, 0);
  // A second task's independent (possibly corrupt) backend load of the same
  // chunk carries no verification — it must not displace the verified copy.
  a->Publish(1, 3, MakeBuffer(512, 0x02), {}, 0);
  sim::VirtualClock clock;
  auto adopted = a->Adopt(clock, 2, 3);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value().buffer.shared_blob().get(),
            verified_blob.shared_blob().get());
  ASSERT_EQ(adopted.value().verified.size(), 1u);
  EXPECT_TRUE(adopted.value().verified[0]);
}

TEST_F(FabricTest, InvalidateDropsOnlyTheMatchingBytes) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  core::ChunkBuffer corrupt = MakeBuffer(256, 0xbd);
  a->Publish(0, 0, corrupt, {}, 0);
  // Mismatched bytes (entry already replaced elsewhere): no-op.
  a->Invalidate(0, MakeBuffer(256, 0x00));
  EXPECT_EQ(fabric.resident_chunks(), 1u);
  // Matching bytes: the corrupt entry and its accounting are gone.
  a->Invalidate(0, corrupt);
  EXPECT_EQ(fabric.resident_chunks(), 0u);
  EXPECT_EQ(fabric.resident_bytes(), 0u);
  sim::VirtualClock clock;
  EXPECT_FALSE(a->Adopt(clock, 1, 0).ok());
  auto stats = fabric.Stats();
  EXPECT_EQ(stats[0].resident_bytes, 0u);
  EXPECT_EQ(stats[0].resident_chunks, 0u);
  // Re-publishing clean bytes after invalidation works (the stale FIFO key
  // is skipped lazily by the victim scan).
  core::ChunkBuffer clean = MakeBuffer(256, 0x5a);
  a->Publish(0, 0, clean, {true}, 0);
  auto adopted = a->Adopt(clock, 1, 0);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value().buffer.shared_blob().get(),
            clean.shared_blob().get());
}

TEST_F(FabricTest, RegisteringAnActiveNameIsRejected) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  ASSERT_NE(a, nullptr);
  // The name is live: a second registration must not alias the binding.
  EXPECT_EQ(fabric.RegisterTenant("ds2", {.name = "a"}), nullptr);
  EXPECT_EQ(a->dataset(), "ds");
  EXPECT_EQ(fabric.Stats().size(), 1u);
  // After deregistration the name revives (and may rebind the dataset).
  fabric.DeregisterTenant(a);
  EXPECT_EQ(fabric.RegisterTenant("ds3", {.name = "a"}), a);
  EXPECT_EQ(a->dataset(), "ds3");
}

TEST_F(FabricTest, ReRegisteringRevivesTheDepartedTenant) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  a->Publish(0, 0, MakeBuffer(256, 7), {}, 0);
  fabric.DeregisterTenant(a);
  TenantBinding* again = fabric.RegisterTenant("ds", {.name = "a"});
  EXPECT_EQ(again, a);  // same binding, same accounting row
  auto stats = fabric.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].active);
  EXPECT_EQ(stats[0].resident_chunks, 1u);
}

TEST_F(FabricTest, PrefetchBudgetIsAWeightedShareOfThePool) {
  FabricOptions fopts;
  fopts.prefetch_pool_bytes_per_node = 4000;
  CacheFabric fabric(net_, fopts);
  TenantBinding* light =
      fabric.RegisterTenant("ds", {.name = "light", .weight = 1.0});
  TenantBinding* heavy =
      fabric.RegisterTenant("ds2", {.name = "heavy", .weight = 3.0});
  EXPECT_EQ(light->PrefetchBudgetBytes(0), 1000u);
  EXPECT_EQ(heavy->PrefetchBudgetBytes(0), 3000u);
  // A configured base still caps the share.
  EXPECT_EQ(heavy->PrefetchBudgetBytes(500), 500u);
  // Departed tenants drop out of the split.
  fabric.DeregisterTenant(heavy);
  EXPECT_EQ(light->PrefetchBudgetBytes(0), 4000u);
}

TEST_F(FabricTest, NoPoolLeavesSchedulerBudgetsUntouched) {
  CacheFabric fabric(net_, {});
  TenantBinding* a = fabric.RegisterTenant("ds", {.name = "a"});
  EXPECT_EQ(a->PrefetchBudgetBytes(0), 0u);
  EXPECT_EQ(a->PrefetchBudgetBytes(12345), 12345u);
}

}  // namespace
}  // namespace diesel::tenant
