#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace diesel::obs {
namespace {

TEST(MetricsRegistryTest, CounterLookupIsStableIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("kv.ops");
  Counter& b = reg.GetCounter("kv.ops");
  EXPECT_EQ(&a, &b);
  a.Inc();
  a.Inc(4);
  EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsRegistryTest, LabelOrderIsCanonicalized) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("net.rpc.calls", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.GetCounter("net.rpc.calls", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(MetricsRegistry::Key("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::Key("m", {}), "m");
}

TEST(MetricsRegistryTest, GaugeSetAddReset) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("cache.bytes_cached");
  g.Set(10.0);
  g.Add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramObserveAndSnapshot) {
  MetricsRegistry reg;
  Histo& h = reg.GetHistogram("net.rpc.latency_ns");
  h.Observe(100.0);
  h.Observe(200.0);
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.sum(), 300.0);
}

TEST(MetricsRegistryTest, SnapshotDeltaSince) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("kv.ops");
  Gauge& g = reg.GetGauge("cache.bytes_cached");
  Histo& h = reg.GetHistogram("lat");
  c.Inc(10);
  g.Set(5.0);
  h.Observe(1.0);
  MetricsSnapshot before = reg.Snapshot();

  c.Inc(7);
  g.Set(3.0);
  h.Observe(2.0);
  h.Observe(4.0);
  reg.GetCounter("kv.retries").Inc(2);  // born after `before`
  MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("kv.ops"), 7u);
  EXPECT_EQ(delta.counters.at("kv.retries"), 2u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("cache.bytes_cached"), -2.0);
  EXPECT_EQ(delta.histograms.at("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("lat").sum(), 6.0);
}

TEST(MetricsRegistryTest, SnapshotMergeAggregates) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("ops").Inc(3);
  b.GetCounter("ops").Inc(4);
  b.GetCounter("only_b").Inc(1);
  a.GetGauge("g").Set(1.5);
  b.GetGauge("g").Set(2.5);
  a.GetHistogram("h").Observe(1.0);
  b.GetHistogram("h").Observe(2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("ops"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 4.0);
  EXPECT_EQ(merged.histograms.at("h").count(), 2u);
}

TEST(MetricsRegistryTest, SumCountersMatchesPrefix) {
  MetricsRegistry reg;
  reg.GetCounter("net.rpc.drops", {{"link", "n0->n1"}}).Inc(2);
  reg.GetCounter("net.rpc.drops", {{"link", "n1->n0"}}).Inc(3);
  reg.GetCounter("net.rpc.calls", {{"link", "n0->n1"}}).Inc(9);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.SumCounters("net.rpc.drops"), 5u);
  EXPECT_EQ(snap.SumCounters("net.rpc."), 14u);
  EXPECT_EQ(snap.SumCounters("kv."), 0u);
}

TEST(MetricsRegistryTest, TextAndJsonAreDeterministic) {
  MetricsRegistry reg;
  reg.GetCounter("b.count").Inc(2);
  reg.GetCounter("a.count").Inc(1);
  reg.GetGauge("z.gauge").Set(1.25);
  reg.GetHistogram("lat").Observe(10.0);

  std::string text = reg.Text();
  // Sorted keys: a.count before b.count.
  EXPECT_LT(text.find("a.count = 1"), text.find("b.count = 2"));
  EXPECT_NE(text.find("z.gauge = 1.25"), std::string::npos);

  std::string json = reg.Json();
  EXPECT_EQ(json, reg.Json());  // byte-stable across exports
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"z.gauge\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("ops");
  Gauge& g = reg.GetGauge("g");
  Histo& h = reg.GetHistogram("h");
  c.Inc(5);
  g.Set(2.0);
  h.Observe(1.0);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.Snapshot().count(), 0u);
  // Cached references still address the live metric.
  c.Inc();
  EXPECT_EQ(reg.GetCounter("ops").value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("ops");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) reg.GetCounter("ops").Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &Metrics());
}

}  // namespace
}  // namespace diesel::obs
