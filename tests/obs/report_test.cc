#include "obs/report.h"

#include <gtest/gtest.h>

namespace diesel::obs {
namespace {

BenchReport MakeReport(const std::string& name, double qps) {
  BenchReport r;
  r.bench = name;
  r.seed = 7;
  r.virtual_ns = 123456789;
  r.params.emplace_back("nodes", "4");
  r.metrics.push_back({"qps", "ops/s", qps, Direction::kHigherIsBetter, 0.01});
  r.metrics.push_back({"lat_ms", "ms", 2.5, Direction::kLowerIsBetter, 0.02});
  r.metrics.push_back({"reads", "count", 1000, Direction::kInfo, 0});
  return r;
}

TEST(BenchReport, RoundTripPreservesEverything) {
  BenchReport r = MakeReport("b1", 5000.25);
  EpochPhases e;
  e.label = "diesel";
  e.epoch = 0;
  e.fetch_ns = 100;
  e.shuffle_ns = 20;
  e.train_ns = 300;
  e.other_ns = 5;
  r.epochs.push_back(e);
  r.registry = JsonValue::MakeObject();
  r.registry.Set("counters", JsonValue::MakeObject());

  auto back = BenchReport::Parse(r.Json());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->bench, "b1");
  EXPECT_EQ(back->seed, 7u);
  EXPECT_EQ(back->virtual_ns, 123456789u);
  ASSERT_EQ(back->params.size(), 1u);
  EXPECT_EQ(back->params[0].first, "nodes");
  EXPECT_EQ(back->params[0].second, "4");
  ASSERT_EQ(back->metrics.size(), 3u);
  EXPECT_EQ(back->metrics[0].name, "qps");
  EXPECT_DOUBLE_EQ(back->metrics[0].value, 5000.25);
  EXPECT_EQ(back->metrics[0].direction, Direction::kHigherIsBetter);
  EXPECT_EQ(back->metrics[1].direction, Direction::kLowerIsBetter);
  EXPECT_DOUBLE_EQ(back->metrics[1].tolerance, 0.02);
  EXPECT_EQ(back->metrics[2].direction, Direction::kInfo);
  ASSERT_EQ(back->epochs.size(), 1u);
  EXPECT_EQ(back->epochs[0].label, "diesel");
  EXPECT_EQ(back->epochs[0].TotalNs(), 425);
  EXPECT_TRUE(back->registry.is_object());
  // Byte-stable: serialize -> parse -> serialize is the identity.
  EXPECT_EQ(r.Json(), back->Json());
}

TEST(BenchReport, RejectsWrongSchema) {
  EXPECT_FALSE(BenchReport::Parse("{\"schema\": \"other/v9\"}").ok());
  EXPECT_FALSE(BenchReport::Parse("[]").ok());
  EXPECT_FALSE(BenchReport::Parse("not json").ok());
}

TEST(BenchReport, FindMetric) {
  BenchReport r = MakeReport("b", 1);
  ASSERT_NE(r.FindMetric("lat_ms"), nullptr);
  EXPECT_EQ(r.FindMetric("nope"), nullptr);
}

TEST(SuiteReport, MergeSortsAndReplaces) {
  SuiteReport suite;
  suite.Merge(MakeReport("zeta", 1));
  suite.Merge(MakeReport("alpha", 2));
  suite.Merge(MakeReport("mid", 3));
  ASSERT_EQ(suite.benches.size(), 3u);
  EXPECT_EQ(suite.benches[0].bench, "alpha");
  EXPECT_EQ(suite.benches[1].bench, "mid");
  EXPECT_EQ(suite.benches[2].bench, "zeta");

  // Re-merging a bench replaces it in place.
  suite.Merge(MakeReport("mid", 99));
  ASSERT_EQ(suite.benches.size(), 3u);
  EXPECT_DOUBLE_EQ(suite.benches[1].metrics[0].value, 99);
}

TEST(SuiteReport, RoundTrip) {
  SuiteReport suite;
  suite.Merge(MakeReport("a", 1));
  suite.Merge(MakeReport("b", 2));
  auto back = SuiteReport::Parse(suite.Json());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->benches.size(), 2u);
  EXPECT_EQ(suite.Json(), back->Json());
}

TEST(SuiteReport, AcceptsSingleBenchReport) {
  // A lone bench report parses as a one-entry suite, so `dlcmd perf diff`
  // can compare individual report files too.
  auto suite = SuiteReport::Parse(MakeReport("solo", 4).Json());
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  ASSERT_EQ(suite->benches.size(), 1u);
  EXPECT_EQ(suite->benches[0].bench, "solo");
}

TEST(SuiteReport, FindBench) {
  SuiteReport suite;
  suite.Merge(MakeReport("a", 1));
  EXPECT_NE(suite.FindBench("a"), nullptr);
  EXPECT_EQ(suite.FindBench("b"), nullptr);
}

}  // namespace
}  // namespace diesel::obs
