#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sim/clock.h"

namespace diesel::obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorderTest, EventRingEvictsOldest) {
  FlightRecorder rec(/*event_capacity=*/4, /*span_capacity=*/2);
  for (int i = 0; i < 6; ++i) {
    rec.Record(FlightEventKind::kFault, i * 10, "ev" + std::to_string(i));
  }
  EXPECT_EQ(rec.events_recorded(), 6u);
  auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 3u);  // the two oldest were evicted
  EXPECT_EQ(events.front().what, "ev2");
  EXPECT_EQ(events.back().seq, 6u);
  EXPECT_EQ(events.back().at, 50);
}

TEST(FlightRecorderTest, SpanRingBounded) {
  FlightRecorder rec(/*event_capacity=*/8, /*span_capacity=*/2);
  Span s;
  for (uint64_t i = 1; i <= 3; ++i) {
    s.id = i;
    s.name = "s" + std::to_string(i);
    rec.RecordSpan(s);
  }
  EXPECT_EQ(rec.spans_recorded(), 3u);
  std::string json = rec.Json();
  EXPECT_EQ(json.find("\"name\": \"s1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"s2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"s3\""), std::string::npos);
}

TEST(FlightRecorderTest, TracerMirrorsCompletedSpans) {
  FlightRecorder rec;
  Tracer tracer;
  tracer.set_flight_recorder(&rec);
  sim::VirtualClock clock;
  {
    ScopedSpan outer(&tracer, "outer", clock, 0);
    clock.Advance(100);
    {
      ScopedSpan inner(&tracer, "inner", clock, 0);
      clock.Advance(50);
    }
    EXPECT_EQ(rec.spans_recorded(), 1u);  // only the closed span is mirrored
  }
  EXPECT_EQ(rec.spans_recorded(), 2u);
  std::string json = rec.Json();
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);

  tracer.set_flight_recorder(nullptr);
  {
    ScopedSpan detached(&tracer, "detached", clock, 0);
    clock.Advance(1);
  }
  EXPECT_EQ(rec.spans_recorded(), 2u);
}

TEST(FlightRecorderTest, AutoDumpFiresOnlyOnArmedKinds) {
  FlightRecorder rec;
  std::string path = ::testing::TempDir() + "flightrec_armed.json";
  std::remove(path.c_str());
  rec.ArmAutoDump(path, {FlightEventKind::kChaos});
  rec.Record(FlightEventKind::kInfo, 1, "benign");
  EXPECT_EQ(ReadAll(path), "");
  rec.Record(FlightEventKind::kChaos, 2, "test failure");
  std::string dump = ReadAll(path);
  EXPECT_NE(dump.find("\"schema\": \"diesel.flightrec/v1\""),
            std::string::npos);
  EXPECT_NE(dump.find("test failure"), std::string::npos);

  // An empty path disarms: further armed-kind events stop writing.
  std::remove(path.c_str());
  rec.ArmAutoDump("", {});
  rec.Record(FlightEventKind::kChaos, 3, "after disarm");
  EXPECT_EQ(ReadAll(path), "");
}

TEST(FlightRecorderTest, ClearResetsSequencesAndPreservesArming) {
  FlightRecorder rec;
  std::string path = ::testing::TempDir() + "flightrec_clear.json";
  std::remove(path.c_str());
  rec.ArmAutoDump(path, {FlightEventKind::kBreaker});
  auto run = [&rec] {
    rec.Record(FlightEventKind::kFault, 10, "drop n0->n1");
    rec.Record(FlightEventKind::kMembership, 20, "crash: n2", 7);
    return rec.Json();
  };
  std::string first = run();
  rec.Clear();
  EXPECT_EQ(rec.events_recorded(), 0u);
  // Identical event sequences dump byte-identically after a Clear.
  std::string second = run();
  EXPECT_EQ(first, second);
  // Arming survived the Clear.
  rec.Record(FlightEventKind::kBreaker, 30, "open");
  EXPECT_NE(ReadAll(path).find("\"kind\": \"breaker\""), std::string::npos);
}

TEST(FlightRecorderTest, JsonRecordsKindNamesAndSpanLinks) {
  FlightRecorder rec;
  rec.Record(FlightEventKind::kMigration, 5, "chunk 3: n0 -> n1", 42);
  std::string json = rec.Json();
  EXPECT_NE(json.find("\"kind\": \"migration\""), std::string::npos);
  EXPECT_NE(json.find("\"span\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"events_recorded\": 1"), std::string::npos);
}

}  // namespace
}  // namespace diesel::obs
