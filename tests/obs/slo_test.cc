#include "obs/slo.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/report.h"

namespace diesel::obs {
namespace {

JsonValue ParseOrDie(const std::string& text) {
  auto parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

std::vector<SloSpec> SpecsOrDie(const std::string& text) {
  auto specs = ParseSloSpecs(ParseOrDie(text));
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  return std::move(specs).value();
}

// A one-bench suite with a gated metric, two epoch arms, and an embedded
// registry carrying a counter and a histogram.
SuiteReport UnitSuite() {
  BenchReport report;
  report.bench = "unit";
  report.seed = 1;
  report.metrics.push_back(
      {.name = "speedup", .unit = "x", .value = 2.0,
       .direction = Direction::kHigherIsBetter});
  report.epochs.push_back({.label = "arm", .epoch = 0, .fetch_ns = 250,
                           .shuffle_ns = 250, .train_ns = 400,
                           .other_ns = 100});
  report.registry = ParseOrDie(
      "{\"counters\": {\"c.ops\": 42}, \"gauges\": {}, "
      "\"histograms\": {\"lat_ns\": {\"count\": 3, \"p50\": 10, "
      "\"p90\": 20, \"p99\": 30}}}");
  SuiteReport suite;
  suite.Merge(std::move(report));
  return suite;
}

TEST(SloSpecTest, ParsesEverySourceKind) {
  std::vector<SloSpec> specs = SpecsOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [
      {"name": "a", "bench": "b", "source": "metric", "key": "m",
       "objective": ">=", "threshold": 1.5},
      {"name": "c", "bench": "b", "source": "histogram_quantile",
       "key": "lat_ns", "quantile": 0.9, "objective": "<=", "threshold": 99},
      {"name": "d", "bench": "b", "source": "timeline_burn", "section": "s",
       "signal": "counter", "key": "errs", "objective": "<=", "threshold": 3,
       "error_budget": 0.5, "window_buckets": 2, "max_burn_rate": 1.0}
    ]})");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].source, SloSource::kMetric);
  EXPECT_FALSE(specs[0].upper_bound);
  EXPECT_EQ(specs[1].source, SloSource::kHistogramQuantile);
  EXPECT_DOUBLE_EQ(specs[1].quantile, 0.9);
  EXPECT_EQ(specs[2].source, SloSource::kTimelineBurn);
  EXPECT_EQ(specs[2].section, "s");
  EXPECT_EQ(specs[2].signal, SloSource::kCounter);
  EXPECT_EQ(specs[2].window_buckets, 2u);
  EXPECT_DOUBLE_EQ(specs[2].error_budget, 0.5);
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  // Wrong schema.
  EXPECT_FALSE(
      ParseSloSpecs(ParseOrDie("{\"schema\": \"nope\", \"slos\": []}")).ok());
  // Empty slos array.
  EXPECT_FALSE(ParseSloSpecs(ParseOrDie(
                   "{\"schema\": \"diesel.slo/v1\", \"slos\": []}"))
                   .ok());
  // Missing threshold.
  EXPECT_FALSE(ParseSloSpecs(ParseOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "a", "bench": "b", "key": "m"}]})"))
                   .ok());
  // Bad objective.
  EXPECT_FALSE(ParseSloSpecs(ParseOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "a", "bench": "b", "key": "m", "objective": "==",
              "threshold": 1}]})"))
                   .ok());
  // timeline_burn without a section.
  EXPECT_FALSE(ParseSloSpecs(ParseOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "a", "bench": "b", "source": "timeline_burn",
              "key": "m", "threshold": 1}]})"))
                   .ok());
  // timeline_burn signal must be counter or histogram_quantile.
  EXPECT_FALSE(ParseSloSpecs(ParseOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "a", "bench": "b", "source": "timeline_burn",
              "section": "s", "signal": "metric", "key": "m",
              "threshold": 1}]})"))
                   .ok());
}

TEST(SloEvalTest, RunLevelSourcesAgainstSuite) {
  SuiteReport suite = UnitSuite();
  std::vector<SloSpec> specs = SpecsOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [
      {"name": "metric_ok", "bench": "unit", "source": "metric",
       "key": "speedup", "objective": ">=", "threshold": 1.5},
      {"name": "metric_breach", "bench": "unit", "source": "metric",
       "key": "speedup", "objective": ">=", "threshold": 3.0},
      {"name": "counter_ok", "bench": "unit", "source": "counter",
       "key": "c.ops", "objective": "<=", "threshold": 50},
      {"name": "hist_p99", "bench": "unit", "source": "histogram_quantile",
       "key": "lat_ns", "quantile": 0.99, "objective": "<=", "threshold": 30},
      {"name": "stall", "bench": "unit", "source": "stall_fraction",
       "key": "arm", "objective": "<=", "threshold": 0.3},
      {"name": "no_bench", "bench": "ghost", "source": "metric",
       "key": "speedup", "objective": ">=", "threshold": 1},
      {"name": "no_key", "bench": "unit", "source": "counter",
       "key": "ghost.ops", "objective": "<=", "threshold": 1}
    ]})");
  SloEval eval = EvaluateSlos(specs, suite, {});
  ASSERT_EQ(eval.results.size(), 7u);
  EXPECT_EQ(eval.passed, 4);
  EXPECT_EQ(eval.failed, 3);
  EXPECT_TRUE(eval.results[0].pass);
  EXPECT_DOUBLE_EQ(eval.results[0].value, 2.0);
  EXPECT_FALSE(eval.results[1].pass);
  EXPECT_TRUE(eval.results[2].pass);
  EXPECT_DOUBLE_EQ(eval.results[2].value, 42.0);
  EXPECT_TRUE(eval.results[3].pass);
  EXPECT_DOUBLE_EQ(eval.results[3].value, 30.0);
  // 250 fetch / 1000 total = 0.25.
  EXPECT_TRUE(eval.results[4].pass);
  EXPECT_DOUBLE_EQ(eval.results[4].value, 0.25);
  // A missing bench or registry key is itself a breach, with evidence.
  EXPECT_FALSE(eval.results[5].pass);
  EXPECT_NE(eval.results[5].detail.find("no report"), std::string::npos);
  EXPECT_FALSE(eval.results[6].pass);
  EXPECT_NE(eval.results[6].detail.find("ghost.ops"), std::string::npos);
  EXPECT_NE(eval.Table().find("BREACH"), std::string::npos);
  EXPECT_EQ(eval.Summary(), "slo: 4 met, 3 breached");
}

TEST(SloEvalTest, TimelineBurnSlidingWindows) {
  // errs per bucket: 5, 1, (absent), 7 against "<= 3": violating pattern
  // T F F T. Window of 2 -> worst window has 1/2 violating buckets.
  JsonValue timeline = ParseOrDie(R"({
    "schema": "diesel.timeline/v1",
    "bench": "unit",
    "sections": [
      {"label": "s", "bucket_ns": 10, "start": 0, "dropped": 0,
       "buckets": [
         {"t": 0, "end": 10, "counters": {"errs": 5}},
         {"t": 10, "end": 20, "counters": {"errs": 1}},
         {"t": 20, "end": 30},
         {"t": 30, "end": 40, "counters": {"errs": 7}}
       ],
       "notes": []}
    ]})");
  std::vector<std::pair<std::string, JsonValue>> timelines;
  timelines.emplace_back("unit", std::move(timeline));

  std::vector<SloSpec> specs = SpecsOrDie(R"({
    "schema": "diesel.slo/v1",
    "slos": [
      {"name": "within_budget", "bench": "unit", "source": "timeline_burn",
       "section": "s", "signal": "counter", "key": "errs",
       "objective": "<=", "threshold": 3,
       "error_budget": 0.5, "window_buckets": 2, "max_burn_rate": 1.0},
      {"name": "over_budget", "bench": "unit", "source": "timeline_burn",
       "section": "s", "signal": "counter", "key": "errs",
       "objective": "<=", "threshold": 3,
       "error_budget": 0.25, "window_buckets": 2, "max_burn_rate": 1.0},
      {"name": "no_section", "bench": "unit", "source": "timeline_burn",
       "section": "ghost", "signal": "counter", "key": "errs",
       "objective": "<=", "threshold": 3},
      {"name": "no_timeline", "bench": "ghost", "source": "timeline_burn",
       "section": "s", "signal": "counter", "key": "errs",
       "objective": "<=", "threshold": 3}
    ]})");
  SloEval eval = EvaluateSlos(specs, SuiteReport{}, timelines);
  ASSERT_EQ(eval.results.size(), 4u);
  // worst fraction 0.5 over budget 0.5 -> burn rate 1.0: exactly at contract.
  EXPECT_TRUE(eval.results[0].pass);
  EXPECT_DOUBLE_EQ(eval.results[0].value, 0.5);
  EXPECT_DOUBLE_EQ(eval.results[0].burn_rate, 1.0);
  EXPECT_NE(eval.results[0].detail.find("1/2 buckets violating over 4 total"),
            std::string::npos);
  // Same signal against a tighter budget burns at 2x: breach.
  EXPECT_FALSE(eval.results[1].pass);
  EXPECT_DOUBLE_EQ(eval.results[1].burn_rate, 2.0);
  // Missing section / timeline are breaches, not skips.
  EXPECT_FALSE(eval.results[2].pass);
  EXPECT_FALSE(eval.results[3].pass);
}

TEST(SloCommandTest, EvaluatesDirectoryAndExitsZeroOrOne) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "slo_cmd_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  BenchReport report;
  report.bench = "unit";
  report.seed = 1;
  report.metrics.push_back({.name = "speedup", .unit = "x", .value = 2.0,
                            .direction = Direction::kHigherIsBetter});
  std::ofstream(dir / "unit.report.json") << report.Json();

  fs::path spec = dir / "spec.json";
  std::ofstream(spec) << R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "speedup_floor", "bench": "unit", "source": "metric",
              "key": "speedup", "objective": ">=", "threshold": 1.5}]})";

  std::ostringstream out, err;
  int rc = SloCommand({dir.string(), "--slo", spec.string()}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("slo: 1 met, 0 breached"), std::string::npos);

  // Tighten the objective past the measured value: deterministic exit 1.
  std::ofstream(spec, std::ios::trunc) << R"({
    "schema": "diesel.slo/v1",
    "slos": [{"name": "speedup_floor", "bench": "unit", "source": "metric",
              "key": "speedup", "objective": ">=", "threshold": 3.0}]})";
  std::ostringstream out2, err2;
  EXPECT_EQ(SloCommand({dir.string(), "--slo", spec.string()}, out2, err2), 1);
  EXPECT_NE(out2.str().find("BREACH"), std::string::npos);

  // Usage / IO errors exit 2, distinct from an SLO breach.
  std::ostringstream out3, err3;
  EXPECT_EQ(SloCommand({}, out3, err3), 2);
  std::ostringstream out4, err4;
  EXPECT_EQ(SloCommand({dir.string(), "--slo",
                        (dir / "missing.json").string()},
                       out4, err4),
            2);
  fs::remove_all(dir);
}

TEST(TimelineCommandTest, PrintsSectionsAndCurves) {
  namespace fs = std::filesystem;
  fs::path path = fs::path(::testing::TempDir()) / "unit.timeline.json";
  std::ofstream(path) << R"({
    "schema": "diesel.timeline/v1",
    "bench": "unit",
    "sections": [
      {"label": "s", "bucket_ns": 1000000, "start": 0, "dropped": 0,
       "buckets": [
         {"t": 0, "end": 1000000, "counters": {"errs": 5}},
         {"t": 1000000, "end": 2000000, "counters": {"errs": 1}}
       ],
       "notes": []}
    ]})";
  std::ostringstream out, err;
  int rc = TimelineCommand({path.string(), "--section", "s", "--key", "errs"},
                           out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("section s: 2 buckets"), std::string::npos);
  EXPECT_NE(out.str().find('#'), std::string::npos);  // bar chart rendered

  // Not a timeline document: usage error.
  std::ofstream(path, std::ios::trunc) << "{\"schema\": \"nope\"}";
  std::ostringstream out2, err2;
  EXPECT_EQ(TimelineCommand({path.string()}, out2, err2), 2);
  fs::remove(path);
}

}  // namespace
}  // namespace diesel::obs
