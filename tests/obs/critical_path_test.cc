// CriticalPath over hand-built span trees: path selection (last-finishing
// child), parent-gap attribution, slack, and the resource attribution
// rollup.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace diesel::obs {
namespace {

TEST(CriticalPathTest, EmptyTracerIsInvalid) {
  Tracer t;
  CriticalPath cp = CriticalPath::Analyze(t);
  EXPECT_FALSE(cp.valid());
  EXPECT_EQ(cp.total(), 0u);
  EXPECT_TRUE(cp.segments().empty());
}

TEST(CriticalPathTest, SingleSpanIsItsOwnPath) {
  Tracer t;
  uint64_t id = t.Begin("read", 100, 0, kNoSpan);
  t.End(id, 400);
  CriticalPath cp = CriticalPath::Analyze(t);
  ASSERT_TRUE(cp.valid());
  EXPECT_EQ(cp.root(), id);
  EXPECT_EQ(cp.total(), 300u);
  ASSERT_EQ(cp.segments().size(), 1u);
  EXPECT_EQ(cp.segments()[0].name, "read");
  EXPECT_EQ(cp.segments()[0].duration(), 300u);
}

TEST(CriticalPathTest, LastFinishingChildIsOnPathGapsChargeParent) {
  // root [0, 1000]
  //   fast [0, 200]            (overlapped by slow from 100: on-path only
  //                             for its head [0, 100])
  //   slow [100, 700]          (last finisher below 1000's tail)
  // The tail [700, 1000] has no child covering it -> parent's own work. The
  // stretch [0, 100) before slow starts is charged to fast, which was
  // running then — a parent-charged gap only appears when no child is
  // active.
  Tracer t;
  uint64_t root = t.Begin("epoch", 0, 0, kNoSpan);
  uint64_t fast = t.Begin("rpc:a->b", 0, 0, root);
  t.End(fast, 200);
  uint64_t slow = t.Begin("device.read", 100, 0, root);
  t.End(slow, 700);
  t.End(root, 1000);

  CriticalPath cp = CriticalPath::Analyze(t);
  ASSERT_TRUE(cp.valid());
  EXPECT_EQ(cp.total(), 1000u);

  // Durations sum to the root's duration.
  Nanos sum = 0;
  for (const auto& s : cp.segments()) sum += s.duration();
  EXPECT_EQ(sum, cp.total());

  // Segments in start order: rpc:a->b [0,100], device.read [100,700],
  // epoch [700,1000].
  ASSERT_EQ(cp.segments().size(), 3u);
  EXPECT_EQ(cp.segments()[0].name, "rpc:a->b");
  EXPECT_EQ(cp.segments()[0].end, 100u);
  EXPECT_EQ(cp.segments()[1].name, "device.read");
  EXPECT_EQ(cp.segments()[1].start, 100u);
  EXPECT_EQ(cp.segments()[1].end, 700u);
  EXPECT_EQ(cp.segments()[2].name, "epoch");
  EXPECT_EQ(cp.segments()[2].start, 700u);

  // Slack: fast could stretch 800ns before moving root; slow is the last
  // finisher but still ends 300 before the root.
  EXPECT_EQ(cp.slack().at(fast), 800u);
  EXPECT_EQ(cp.slack().at(slow), 300u);
}

TEST(CriticalPathTest, RecursesIntoNestedChildren) {
  // root [0, 1000]
  //   outer [0, 1000]
  //     inner [400, 1000]
  // Path: outer's own [0,400], then inner [400,1000].
  Tracer t;
  uint64_t root = t.Begin("epoch", 0, 0, kNoSpan);
  uint64_t outer = t.Begin("cache.get", 0, 0, root);
  uint64_t inner = t.Begin("rpc:n0->n1", 400, 0, outer);
  t.End(inner, 1000);
  t.End(outer, 1000);
  t.End(root, 1000);

  CriticalPath cp = CriticalPath::Analyze(t);
  ASSERT_TRUE(cp.valid());
  Nanos sum = 0;
  bool saw_inner = false;
  for (const auto& s : cp.segments()) {
    sum += s.duration();
    if (s.span_id == inner) {
      saw_inner = true;
      EXPECT_EQ(s.duration(), 600u);
      EXPECT_EQ(s.depth, 2u);
    }
  }
  EXPECT_EQ(sum, cp.total());
  EXPECT_TRUE(saw_inner);
  // Spans ending when their parent ends are on the critical chain: slack 0.
  EXPECT_EQ(cp.slack().at(outer), 0u);
  EXPECT_EQ(cp.slack().at(inner), 0u);
}

TEST(CriticalPathTest, AttributionGroupsByNameLargestFirst) {
  Tracer t;
  uint64_t root = t.Begin("epoch", 0, 0, kNoSpan);
  uint64_t a = t.Begin("rpc:n0->n1", 0, 0, root);
  t.End(a, 300);
  uint64_t b = t.Begin("rpc:n0->n1", 300, 0, root);
  t.End(b, 600);
  uint64_t c = t.Begin("device.read", 600, 0, root);
  t.End(c, 700);
  t.End(root, 700);

  CriticalPath cp = CriticalPath::Analyze(t);
  auto attr = cp.Attribution();
  ASSERT_GE(attr.size(), 2u);
  EXPECT_EQ(attr[0].first, "rpc:n0->n1");
  EXPECT_EQ(attr[0].second, 600u);
  EXPECT_EQ(attr[1].first, "device.read");
  EXPECT_EQ(attr[1].second, 100u);
}

TEST(CriticalPathTest, PicksLongestRootWhenUnspecified) {
  Tracer t;
  uint64_t small = t.Begin("short", 0, 0, kNoSpan);
  t.End(small, 10);
  uint64_t big = t.Begin("long", 0, 0, kNoSpan);
  t.End(big, 500);
  CriticalPath cp = CriticalPath::Analyze(t);
  EXPECT_EQ(cp.root(), big);
  EXPECT_EQ(cp.total(), 500u);
}

TEST(CriticalPathTest, ExplicitRootOverridesSelection) {
  Tracer t;
  uint64_t small = t.Begin("short", 0, 0, kNoSpan);
  t.End(small, 10);
  uint64_t big = t.Begin("long", 0, 0, kNoSpan);
  t.End(big, 500);
  CriticalPath cp = CriticalPath::Analyze(t.spans(), small);
  EXPECT_EQ(cp.root(), small);
  EXPECT_EQ(cp.total(), 10u);
}

}  // namespace
}  // namespace diesel::obs
