#include "obs/perf_diff.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace diesel::obs {
namespace {

BenchReport OneMetric(const std::string& bench, const std::string& metric,
                      double value, Direction dir, double tol = 0.01) {
  BenchReport r;
  r.bench = bench;
  r.metrics.push_back({metric, "u", value, dir, tol});
  return r;
}

SuiteReport Suite(std::vector<BenchReport> reports) {
  SuiteReport s;
  for (auto& r : reports) s.Merge(std::move(r));
  return s;
}

TEST(PerfDiff, IdenticalSuitesAreOk) {
  SuiteReport s = Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  PerfDiffResult d = DiffSuites(s, s);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.regressed, 0);
  EXPECT_EQ(d.improved, 0);
  EXPECT_EQ(d.unchanged, 1);
}

TEST(PerfDiff, HigherIsBetterGatesOnlyDrops) {
  SuiteReport base =
      Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  // 5% drop beyond the 1% tolerance: regression.
  PerfDiffResult drop = DiffSuites(
      base, Suite({OneMetric("b", "qps", 95, Direction::kHigherIsBetter)}));
  EXPECT_FALSE(drop.ok());
  EXPECT_EQ(drop.regressed, 1);
  ASSERT_EQ(drop.rows.size(), 1u);
  EXPECT_EQ(drop.rows[0].verdict, Verdict::kRegressed);
  EXPECT_NEAR(drop.rows[0].rel_delta, -0.05, 1e-12);

  // 5% rise: improvement, still ok.
  PerfDiffResult rise = DiffSuites(
      base, Suite({OneMetric("b", "qps", 105, Direction::kHigherIsBetter)}));
  EXPECT_TRUE(rise.ok());
  EXPECT_EQ(rise.improved, 1);

  // 0.5% drop: inside tolerance.
  PerfDiffResult small = DiffSuites(
      base, Suite({OneMetric("b", "qps", 99.5, Direction::kHigherIsBetter)}));
  EXPECT_TRUE(small.ok());
  EXPECT_EQ(small.unchanged, 1);
}

TEST(PerfDiff, LowerIsBetterGatesOnlyRises) {
  SuiteReport base =
      Suite({OneMetric("b", "lat", 10, Direction::kLowerIsBetter)});
  PerfDiffResult rise = DiffSuites(
      base, Suite({OneMetric("b", "lat", 11, Direction::kLowerIsBetter)}));
  EXPECT_FALSE(rise.ok());
  EXPECT_EQ(rise.rows[0].verdict, Verdict::kRegressed);

  PerfDiffResult drop = DiffSuites(
      base, Suite({OneMetric("b", "lat", 9, Direction::kLowerIsBetter)}));
  EXPECT_TRUE(drop.ok());
  EXPECT_EQ(drop.rows[0].verdict, Verdict::kImproved);
}

TEST(PerfDiff, InfoNeverGates) {
  SuiteReport base = Suite({OneMetric("b", "n", 100, Direction::kInfo)});
  PerfDiffResult d =
      DiffSuites(base, Suite({OneMetric("b", "n", 1, Direction::kInfo)}));
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.regressed, 0);
}

TEST(PerfDiff, MissingMetricGatesByDefault) {
  SuiteReport base =
      Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  SuiteReport cur = Suite({OneMetric("b", "other", 1, Direction::kInfo)});
  PerfDiffResult d = DiffSuites(base, cur);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.missing, 1);
  EXPECT_EQ(d.added, 1);

  PerfDiffResult relaxed = DiffSuites(base, cur, {.fail_on_missing = false});
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.missing, 1);
}

TEST(PerfDiff, ZeroBaselineJudgesAnyMove) {
  // A gated metric that was 0 and became nonzero must gate (tolerance is
  // relative, so it cannot apply; any move counts).
  SuiteReport base =
      Suite({OneMetric("b", "errs", 0, Direction::kLowerIsBetter)});
  PerfDiffResult d = DiffSuites(
      base, Suite({OneMetric("b", "errs", 3, Direction::kLowerIsBetter)}));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.rows[0].verdict, Verdict::kRegressed);

  PerfDiffResult same = DiffSuites(
      base, Suite({OneMetric("b", "errs", 0, Direction::kLowerIsBetter)}));
  EXPECT_TRUE(same.ok());
}

TEST(PerfDiff, ToleranceOverride) {
  SuiteReport base =
      Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  SuiteReport cur =
      Suite({OneMetric("b", "qps", 95, Direction::kHigherIsBetter)});
  EXPECT_FALSE(DiffSuites(base, cur).ok());
  EXPECT_TRUE(DiffSuites(base, cur, {.tolerance_override = 0.10}).ok());
}

TEST(PerfDiff, TableAndSummary) {
  SuiteReport base =
      Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  PerfDiffResult d = DiffSuites(
      base, Suite({OneMetric("b", "qps", 50, Direction::kHigherIsBetter)}));
  std::string table = d.Table();
  EXPECT_NE(table.find("qps"), std::string::npos);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("-50.00%"), std::string::npos);
  EXPECT_NE(d.Summary().find("FAIL"), std::string::npos);

  PerfDiffResult ok = DiffSuites(base, base);
  EXPECT_NE(ok.Summary().find("OK"), std::string::npos);
}

// ---- dlcmd perf command-level golden tests ---------------------------------

class PerfCommandTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& name, const std::string& content) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream f(path);
    f << content;
    return path;
  }
};

TEST_F(PerfCommandTest, DiffIdenticalExitsZero) {
  SuiteReport s = Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  std::string path = WriteFile("base.json", s.Json());
  std::ostringstream out, err;
  EXPECT_EQ(PerfCommand({"diff", path, path}, out, err), 0);
  EXPECT_NE(out.str().find("OK"), std::string::npos);
}

TEST_F(PerfCommandTest, DiffRegressionExitsNonZeroWithGoldenOutput) {
  SuiteReport base =
      Suite({OneMetric("rw", "qps", 200, Direction::kHigherIsBetter)});
  SuiteReport cur =
      Suite({OneMetric("rw", "qps", 100, Direction::kHigherIsBetter)});
  std::string bpath = WriteFile("b.json", base.Json());
  std::string cpath = WriteFile("c.json", cur.Json());
  std::ostringstream out, err;
  EXPECT_EQ(PerfCommand({"diff", bpath, cpath}, out, err), 1);
  const char* golden =
      "bench  metric  baseline  current  delta     verdict\n"
      "rw     qps     200       100      -50.00%   REGRESSED\n"
      "perf diff: 1 regressed, 0 improved, 0 missing, 0 new, "
      "0 within tolerance -> FAIL\n";
  EXPECT_EQ(out.str(), golden);
}

TEST_F(PerfCommandTest, DiffHonorsFlags) {
  SuiteReport base =
      Suite({OneMetric("b", "qps", 100, Direction::kHigherIsBetter)});
  SuiteReport cur =
      Suite({OneMetric("b", "qps", 95, Direction::kHigherIsBetter)});
  std::string bpath = WriteFile("fb.json", base.Json());
  std::string cpath = WriteFile("fc.json", cur.Json());
  std::ostringstream out, err;
  EXPECT_EQ(PerfCommand({"diff", bpath, cpath, "--tol", "0.10"}, out, err), 0);
}

TEST_F(PerfCommandTest, UsageErrors) {
  std::ostringstream out, err;
  EXPECT_EQ(PerfCommand({"diff", "only-one-arg"}, out, err), 2);
  EXPECT_EQ(PerfCommand({"bogus"}, out, err), 2);
  EXPECT_EQ(PerfCommand({"diff", "/nonexistent/a", "/nonexistent/b"}, out, err),
            2);
}

TEST_F(PerfCommandTest, MergeCollectsReports) {
  std::string dir = ::testing::TempDir() + "/merge_dir";
  std::filesystem::create_directories(dir);
  BenchReport a = OneMetric("a", "m", 1, Direction::kInfo);
  a.registry = JsonValue::MakeObject();
  BenchReport b = OneMetric("b", "m", 2, Direction::kInfo);
  {
    std::ofstream(dir + "/a.report.json") << a.Json();
    std::ofstream(dir + "/b.report.json") << b.Json();
    std::ofstream(dir + "/noise.json") << "{}";  // ignored: wrong suffix
  }
  std::string out_path = dir + "/suite.json";
  std::ostringstream out, err;
  ASSERT_EQ(PerfCommand({"merge", dir, "-o", out_path, "--strip-registry"},
                        out, err), 0)
      << err.str();
  std::ifstream f(out_path);
  std::stringstream buf;
  buf << f.rdbuf();
  auto suite = SuiteReport::Parse(buf.str());
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  ASSERT_EQ(suite->benches.size(), 2u);
  EXPECT_EQ(suite->benches[0].bench, "a");
  EXPECT_TRUE(suite->benches[0].registry.is_null());  // stripped
}

}  // namespace
}  // namespace diesel::obs
