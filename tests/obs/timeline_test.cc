#include "obs/timeline.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace diesel::obs {
namespace {

TEST(TimelineTest, ClosesBucketsOnBoundaryCrossings) {
  Counter& ops = Metrics().GetCounter("tltest.ops");
  Timeline::Options opt;
  opt.bucket_ns = 100;
  Timeline tl(opt);
  EXPECT_FALSE(tl.started());
  tl.Start(0);
  EXPECT_TRUE(tl.started());
  ops.Inc(3);
  tl.AdvanceTo(50);  // still inside the first bucket: nothing closes
  EXPECT_EQ(tl.buckets(), 0u);
  tl.AdvanceTo(150);  // crosses t=100: closes [0,100) holding the delta
  EXPECT_EQ(tl.buckets(), 1u);
  ops.Inc(2);
  tl.Finish(180);  // trailing partial bucket [100,180)
  EXPECT_EQ(tl.buckets(), 2u);
  EXPECT_FALSE(tl.started());
  std::string json = tl.SectionJson("unit");
  EXPECT_NE(json.find("\"tltest.ops\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"tltest.ops\": 2"), std::string::npos);
  EXPECT_NE(json.find("{\"t\": 100, \"end\": 180"), std::string::npos);
}

TEST(TimelineTest, MultiBoundaryCrossingChargesFirstBucket) {
  Counter& burst = Metrics().GetCounter("tltest.burst");
  Timeline::Options opt;
  opt.bucket_ns = 100;
  Timeline tl(opt);
  tl.Start(0);
  burst.Inc(7);
  tl.AdvanceTo(350);  // one call crosses three boundaries
  EXPECT_EQ(tl.buckets(), 3u);
  std::string json = tl.SectionJson("burst");
  // The whole delta lands in the first crossed bucket; the later buckets had
  // no sampling opportunity and export empty.
  EXPECT_NE(json.find("{\"t\": 0, \"end\": 100, \"counters\": "
                      "{\"tltest.burst\": 7}}"),
            std::string::npos);
  size_t pos = json.find("\"tltest.burst\"");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(json.find("\"tltest.burst\"", pos + 1), std::string::npos);
}

TEST(TimelineTest, CapacityEvictsOldestAndCountsDropped) {
  Timeline::Options opt;
  opt.bucket_ns = 10;
  opt.capacity = 4;
  Timeline tl(opt);
  tl.Start(0);
  for (Nanos t = 10; t <= 100; t += 10) tl.AdvanceTo(t);
  EXPECT_EQ(tl.buckets(), 4u);
  EXPECT_EQ(tl.dropped(), 6u);
  std::string json = tl.SectionJson("ring");
  EXPECT_EQ(json.find("\"t\": 0,"), std::string::npos);  // oldest evicted
  EXPECT_NE(json.find("\"t\": 90"), std::string::npos);  // newest retained
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos);
}

TEST(TimelineTest, NotesExportAndRestartIsByteStable) {
  Counter& stable = Metrics().GetCounter("tltest.stable");
  auto run = [&stable] {
    Timeline::Options opt;
    opt.bucket_ns = 100;
    Timeline tl(opt);
    tl.Start(0);
    tl.Note(5, "window \"open\"");
    stable.Inc();
    tl.AdvanceTo(120);
    stable.Inc(4);
    tl.Note(130, "recovered");
    tl.Finish(250);
    return tl.SectionJson("stable");
  };
  // Start() rebases on the live registry, so replaying the same virtual-time
  // schedule yields a byte-identical section even though the underlying
  // counters kept their cumulative values.
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"text\": \"window \\\"open\\\"\""), std::string::npos);
  EXPECT_NE(first.find("{\"at\": 130, \"text\": \"recovered\"}"),
            std::string::npos);
}

TEST(TimelineTest, PublishesSamplerActivityCounters) {
  MetricsSnapshot before = Metrics().Snapshot();
  Timeline::Options opt;
  opt.bucket_ns = 10;
  opt.capacity = 2;
  Timeline tl(opt);
  tl.Start(0);
  for (Nanos t = 10; t <= 50; t += 10) tl.AdvanceTo(t);
  tl.Finish(55);
  MetricsSnapshot delta = Metrics().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("timeline.samples"), 5u);
  EXPECT_EQ(delta.counters.at("timeline.buckets"), 6u);  // 5 full + 1 partial
  EXPECT_EQ(delta.counters.at("timeline.dropped"), 4u);
  EXPECT_EQ(tl.dropped(), 4u);
}

TEST(TimelineTest, HistogramDeltasRideBuckets) {
  Histo& h = Metrics().GetHistogram("tltest.lat_ns");
  Timeline::Options opt;
  opt.bucket_ns = 100;
  Timeline tl(opt);
  tl.Start(0);
  h.Observe(500.0);
  h.Observe(700.0);
  tl.AdvanceTo(150);
  std::string json = tl.SectionJson("hist");
  size_t key = json.find("\"tltest.lat_ns\"");
  ASSERT_NE(key, std::string::npos);
  EXPECT_NE(json.find("\"count\": 2", key), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 1200", key), std::string::npos);
}

TEST(TimelineTest, DocumentJsonWrapsSections) {
  Timeline tl;
  tl.Start(0);
  tl.Finish(1);
  std::string doc =
      TimelineDocumentJson("unit_bench", {tl.SectionJson("only")});
  EXPECT_NE(doc.find("\"schema\": \"diesel.timeline/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"only\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');

  std::string empty = TimelineDocumentJson("none", {});
  EXPECT_NE(empty.find("\"sections\": []"), std::string::npos);
}

}  // namespace
}  // namespace diesel::obs
