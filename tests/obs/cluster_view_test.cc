// ClusterView: metric-key parsing, utilization derivation from live
// snapshots and report JSON, per-node rollup + imbalance statistics, gauge
// export, and the Little's-law self-validation of the queueing telemetry
// the view is built from.
#include "obs/cluster_view.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sim/clock.h"
#include "sim/device.h"

namespace diesel::obs {
namespace {

TEST(ParseMetricKeyTest, SplitsNameAndLabels) {
  ParsedKey k = ParseMetricKey("sim.device.busy_ns{device=nic3,node=n3}");
  EXPECT_EQ(k.name, "sim.device.busy_ns");
  EXPECT_EQ(k.labels.at("device"), "nic3");
  EXPECT_EQ(k.labels.at("node"), "n3");

  ParsedKey bare = ParseMetricKey("cluster.imbalance.cv");
  EXPECT_EQ(bare.name, "cluster.imbalance.cv");
  EXPECT_TRUE(bare.labels.empty());
}

/// Drive a freshly bound device in a closed loop and return the view deltaed
/// against `base` over the loop's makespan.
ClusterView DriveAndView(sim::Device& d, const MetricsSnapshot& base,
                         int workers, int ops) {
  std::vector<sim::VirtualClock> clocks(workers);
  Nanos end = 0;
  for (int i = 0; i < ops; ++i) {
    for (auto& c : clocks) {
      c.AdvanceTo(d.Serve(c.now(), 0));
      end = std::max(end, c.now());
    }
  }
  return ClusterView::Compute(Metrics().Snapshot(), &base, end);
}

TEST(ClusterViewTest, SaturatedDeviceUtilNearOneAndClamped) {
  sim::Device d({.name = "cv-sat", .channels = 2, .latency = 100,
                 .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  d.BindMetrics("n1");
  ClusterView view = DriveAndView(d, base, 8, 200);

  const ResourceUtil* r = nullptr;
  for (const auto& res : view.resources()) {
    if (res.name == "cv-sat") r = &res;
  }
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->node, "n1");
  EXPECT_EQ(r->kind, "device");
  EXPECT_EQ(r->channels, 2.0);
  EXPECT_GE(r->util, 0.95);
  EXPECT_LE(r->util, 1.0);
  EXPECT_GT(r->mean_queue_wait_ns, 0.0);  // 8 workers on 2 channels queue
  EXPECT_NEAR(r->mean_service_ns, 100.0, 1e-9);
}

TEST(ClusterViewTest, IdleDeviceUtilNearZero) {
  sim::Device d({.name = "cv-idle", .channels = 4, .latency = 10,
                 .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  d.BindMetrics("n2");
  // One op every 10us on a device with 40ns/op capacity: essentially idle.
  sim::VirtualClock c;
  for (int i = 0; i < 100; ++i) {
    d.Serve(static_cast<Nanos>(i) * 10000, 0);
  }
  ClusterView view =
      ClusterView::Compute(Metrics().Snapshot(), &base, 100 * 10000);
  for (const auto& r : view.resources()) {
    if (r.name != "cv-idle") continue;
    EXPECT_LT(r.util, 0.01);
    EXPECT_EQ(r.mean_queue_wait_ns, 0.0);
    return;
  }
  FAIL() << "cv-idle not found in view";
}

TEST(ClusterViewTest, NodeRollupAndImbalance) {
  // Two nodes: n10 saturated, n11 half loaded. The rollup must pick each
  // node's busiest resource and the skew stats must reflect the tilt.
  sim::Device hot({.name = "cv-hot", .channels = 1, .latency = 100,
                   .bytes_per_sec = 0});
  sim::Device cool({.name = "cv-cool", .channels = 1, .latency = 100,
                    .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  hot.BindMetrics("n10");
  cool.BindMetrics("n11");
  Nanos end = 0;
  for (int i = 0; i < 1000; ++i) end = hot.Serve(end, 0);
  // cool: one op per 200ns window -> ~50% util.
  for (int i = 0; i < 500; ++i) cool.Serve(static_cast<Nanos>(i) * 200, 0);
  ClusterView view = ClusterView::Compute(Metrics().Snapshot(), &base, end);

  ASSERT_EQ(view.nodes().size(), 2u);
  EXPECT_EQ(view.nodes()[0].node, "n10");
  EXPECT_EQ(view.nodes()[0].max_resource, "cv-hot");
  EXPECT_NEAR(view.nodes()[0].util, 1.0, 0.01);
  EXPECT_EQ(view.nodes()[1].node, "n11");
  EXPECT_NEAR(view.nodes()[1].util, 0.5, 0.01);

  const ImbalanceStats& im = view.imbalance();
  EXPECT_EQ(im.nodes, 2u);
  EXPECT_EQ(im.max_node, "n10");
  EXPECT_NEAR(im.max_util, 1.0, 0.01);
  EXPECT_NEAR(im.median_util, 0.75, 0.01);
  EXPECT_NEAR(im.max_over_median, 1.0 / 0.75, 0.02);
  EXPECT_GT(im.cv, 0.0);
}

TEST(ClusterViewTest, ExportGaugesPublishesDerivedSeries) {
  sim::Device d({.name = "cv-export", .channels = 1, .latency = 100,
                 .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  d.BindMetrics("n20");
  Nanos end = 0;
  for (int i = 0; i < 100; ++i) end = d.Serve(end, 0);
  ClusterView view = ClusterView::Compute(Metrics().Snapshot(), &base, end);
  view.ExportGauges();
  MetricsSnapshot cur = Metrics().Snapshot();
  EXPECT_NEAR(cur.gauges.at("sim.device.util{device=cv-export,node=n20}"),
              1.0, 0.01);
  EXPECT_NEAR(cur.gauges.at("cluster.node.util{node=n20}"), 1.0, 0.01);
  EXPECT_GT(cur.gauges.at("cluster.imbalance.max_util"), 0.0);
  EXPECT_GE(cur.gauges.at("cluster.imbalance.nodes"), 1.0);
}

TEST(ClusterViewTest, FromRegistryJsonMatchesLiveDerivation) {
  sim::Device d({.name = "cv-json", .channels = 2, .latency = 50,
                 .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  d.BindMetrics("n30");
  std::vector<sim::VirtualClock> clocks(4);
  Nanos end = 0;
  for (int i = 0; i < 200; ++i) {
    for (auto& c : clocks) {
      c.AdvanceTo(d.Serve(c.now(), 0));
      end = std::max(end, c.now());
    }
  }
  // The JSON frontend reads the full registry (no delta), so compare against
  // a live view computed the same way.
  ClusterView live = ClusterView::Compute(Metrics().Snapshot(), nullptr, end);
  auto doc = JsonValue::Parse(Metrics().Json());
  ASSERT_TRUE(doc.ok());
  auto json = ClusterView::FromRegistryJson(doc.value(), end);
  ASSERT_TRUE(json.ok());

  auto find = [](const ClusterView& v, const std::string& name) {
    for (const auto& r : v.resources()) {
      if (r.name == name) return r;
    }
    return ResourceUtil{};
  };
  ResourceUtil a = find(live, "cv-json");
  ResourceUtil b = find(json.value(), "cv-json");
  ASSERT_FALSE(a.name.empty());
  ASSERT_FALSE(b.name.empty());
  EXPECT_NEAR(a.util, b.util, 1e-9);
  EXPECT_NEAR(a.mean_queue_wait_ns, b.mean_queue_wait_ns, 1e-6);
  EXPECT_NEAR(a.mean_service_ns, b.mean_service_ns, 1e-6);
}

TEST(ClusterViewTest, FromRegistryJsonRejectsNonNumericCounter) {
  auto doc = JsonValue::Parse(
      R"({"counters":{"sim.device.busy_ns{device=x,node=n0}":"oops"}})");
  ASSERT_TRUE(doc.ok());
  auto view = ClusterView::FromRegistryJson(doc.value(), 1000);
  EXPECT_FALSE(view.ok());
}

// Little's-law self-validation: drive an open-loop M/M/1-ish arrival process
// (Poisson arrivals, exponential service via the extra-cost hook) through a
// single-channel device and check the telemetry's mean queue wait against
// Wq = rho / (1 - rho) * S. This validates that queue_wait and service are
// measured consistently — a sign error or off-by-service bias in either
// breaks the identity.
TEST(ClusterViewTest, LittlesLawCrossCheck) {
  constexpr double kMeanServiceNs = 1000.0;
  constexpr double kRho = 0.6;
  const double mean_interarrival = kMeanServiceNs / kRho;
  sim::Device d({.name = "cv-mm1", .channels = 1, .latency = 0,
                 .bytes_per_sec = 0});
  MetricsSnapshot base = Metrics().Snapshot();
  d.BindMetrics("n40");
  Rng rng(2026);
  auto exponential = [&](double mean) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-12;
    return static_cast<Nanos>(std::max(1.0, -std::log(u) * mean));
  };
  double t = 0.0;
  Nanos end = 0;
  constexpr int kOps = 200000;
  for (int i = 0; i < kOps; ++i) {
    t += static_cast<double>(exponential(mean_interarrival));
    end = std::max(end, d.Serve(static_cast<Nanos>(t), 0,
                                exponential(kMeanServiceNs)));
  }
  ClusterView view = ClusterView::Compute(Metrics().Snapshot(), &base, end);
  const ResourceUtil* r = nullptr;
  for (const auto& res : view.resources()) {
    if (res.name == "cv-mm1") r = &res;
  }
  ASSERT_NE(r, nullptr);
  const double rho = r->util;
  EXPECT_NEAR(rho, kRho, 0.05);
  const double expected_wait = rho / (1.0 - rho) * r->mean_service_ns;
  // 10% band: finite-sample noise on 200k arrivals.
  EXPECT_NEAR(r->mean_queue_wait_ns / expected_wait, 1.0, 0.10);
}

}  // namespace
}  // namespace diesel::obs
