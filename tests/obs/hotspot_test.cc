// HotspotReport ranking + Little's-law attribution, and the dlcmd
// util/hotspots command plumbing (report loading, validation, exit codes).
#include "obs/hotspot.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/cluster_view.h"

namespace diesel::obs {
namespace {

// A two-device registry over a 1ms window: "svc" on n5 at 90% on one
// channel (queue wait tracking M/M/1), "nic" on n6 at 10% across 8
// channels. Phase histograms give the read-path split.
constexpr char kRegistry[] = R"({
  "counters": {
    "sim.device.busy_ns{device=svc,node=n5}": 900000,
    "sim.device.ops{device=svc,node=n5}": 900,
    "sim.device.busy_ns{device=nic,node=n6}": 800000,
    "sim.device.ops{device=nic,node=n6}": 800
  },
  "gauges": {
    "sim.device.channels{device=svc,node=n5}": 1,
    "sim.device.channels{device=nic,node=n6}": 8
  },
  "histograms": {
    "sim.device.queue_wait_ns{device=svc,node=n5}":
      {"count": 900, "sum": 8100000, "mean": 9000},
    "sim.device.service_ns{device=svc,node=n5}":
      {"count": 900, "sum": 900000, "mean": 1000},
    "sim.device.queue_wait_ns{device=nic,node=n6}":
      {"count": 800, "sum": 0, "mean": 0},
    "sim.device.service_ns{device=nic,node=n6}":
      {"count": 800, "sum": 800000, "mean": 1000},
    "read.path.total_ns": {"count": 900, "sum": 10000000, "mean": 11111},
    "read.path.owner_wait_ns": {"count": 900, "sum": 2000000, "mean": 2222},
    "read.path.device_ns": {"count": 900, "sum": 5000000, "mean": 5556},
    "read.path.rpc_ns": {"count": 900, "sum": 3000000, "mean": 3333}
  }
})";

constexpr Nanos kWindow = 1000000;

Result<JsonValue> ParseRegistry() { return JsonValue::Parse(kRegistry); }

TEST(HotspotReportTest, RanksByUtilizationWithLittlesLawCrossCheck) {
  auto doc = ParseRegistry();
  ASSERT_TRUE(doc.ok());
  auto view = ClusterView::FromRegistryJson(doc.value(), kWindow);
  ASSERT_TRUE(view.ok());
  auto report = HotspotReport::FromRegistryJson(view.value(), doc.value());
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report.value().top_resource(), "svc");
  const HotspotEntry& top = report.value().entries().front();
  EXPECT_NEAR(top.resource.util, 0.9, 1e-9);
  // M/M/1: Wq = 0.9 / 0.1 * 1000ns = 9000ns — matching the observed mean,
  // so the ratio is 1 (a genuine saturation hotspot).
  EXPECT_NEAR(top.expected_wait_ns, 9000.0, 1e-6);
  EXPECT_NEAR(top.wait_ratio, 1.0, 1e-9);
  EXPECT_NEAR(top.total_queue_wait_ns, 900.0 * 9000.0, 1e-3);

  const PhaseTotals& phases = report.value().phases();
  EXPECT_NEAR(phases.total_ns, 1e7, 1e-3);
  EXPECT_NEAR(phases.device_ns / phases.total_ns, 0.5, 1e-9);

  std::string rendered = report.value().Render();
  EXPECT_NE(rendered.find("svc"), std::string::npos);
  EXPECT_NE(rendered.find("read path:"), std::string::npos);
  EXPECT_NE(rendered.find("imbalance:"), std::string::npos);
}

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(HotspotCommandTest, UtilAndHotspotsSucceedOnValidReport) {
  // Commands accept a full bench report with an embedded registry.
  std::string path = WriteTemp("hotspot_ok.json",
                               std::string("{\"registry\":") + kRegistry + "}");
  std::ostringstream out, err;
  EXPECT_EQ(UtilCommand({path, "--window", std::to_string(kWindow)}, out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("svc"), std::string::npos);
  EXPECT_NE(out.str().find("n5"), std::string::npos);

  std::ostringstream hout, herr;
  EXPECT_EQ(HotspotsCommand({path, "--window", std::to_string(kWindow)}, hout,
                            herr),
            0)
      << herr.str();
  // Ranking: the 90%-utilized service device leads the listing.
  EXPECT_LT(hout.str().find("svc"), hout.str().find("nic"));
}

TEST(HotspotCommandTest, FailsOnMissingFile) {
  std::ostringstream out, err;
  EXPECT_EQ(UtilCommand({"/nonexistent/report.json"}, out, err), 1);
  EXPECT_EQ(HotspotsCommand({"/nonexistent/report.json"}, out, err), 1);
}

TEST(HotspotCommandTest, FailsOnUnparseableJson) {
  std::string path = WriteTemp("hotspot_garbage.json", "not json {");
  std::ostringstream out, err;
  EXPECT_EQ(UtilCommand({path}, out, err), 1);
}

TEST(HotspotCommandTest, FailsWhenNoResourceSeriesPresent) {
  std::string path =
      WriteTemp("hotspot_empty.json", R"({"counters":{},"gauges":{}})");
  std::ostringstream out, err;
  EXPECT_EQ(HotspotsCommand({path}, out, err), 1);
  EXPECT_NE(err.str().find("no sim.device"), std::string::npos);
}

TEST(HotspotCommandTest, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(UtilCommand({}, out, err), 2);
  EXPECT_EQ(UtilCommand({"x.json", "--bogus"}, out, err), 2);
  EXPECT_EQ(HotspotsCommand({"x.json", "--top"}, out, err), 2);
}

}  // namespace
}  // namespace diesel::obs
