#include "obs/trace.h"

#include <mutex>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "net/fabric.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"
#include "sim/clock.h"
#include "sim/node.h"

namespace diesel::obs {
namespace {

TEST(TracerTest, ScopedSpanStampsVirtualTimes) {
  Tracer tracer;
  sim::VirtualClock clock;
  {
    ScopedSpan outer(&tracer, "outer", clock, 0);
    clock.Advance(100);
    outer.Note("midpoint");
    clock.Advance(50);
  }
  ASSERT_EQ(tracer.size(), 1u);
  Span s = tracer.spans()[0];
  EXPECT_EQ(s.name, "outer");
  EXPECT_EQ(s.start, 0u);
  EXPECT_EQ(s.end, 150u);
  ASSERT_EQ(s.notes.size(), 1u);
  EXPECT_EQ(s.notes[0].at, 100u);
  EXPECT_EQ(s.notes[0].text, "midpoint");
}

TEST(TracerTest, NullTracerIsNoOp) {
  sim::VirtualClock clock;
  ScopedSpan span(nullptr, "ignored", clock, 0);
  EXPECT_FALSE(span.active());
  span.Note("dropped");
  ScopedSpan::NoteCurrent(nullptr, 0, "dropped");
}

TEST(TracerTest, NestedScopesFormOneTree) {
  Tracer tracer;
  sim::VirtualClock clock;
  {
    ScopedSpan a(&tracer, "a", clock, 0);
    clock.Advance(10);
    {
      ScopedSpan b(&tracer, "b", clock, 1);
      clock.Advance(10);
      ScopedSpan c(&tracer, "c", clock, 2);
      clock.Advance(10);
    }
    ScopedSpan d(&tracer, "d", clock, 0);
    clock.Advance(10);
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, kNoSpan);        // a
  EXPECT_EQ(spans[1].parent, spans[0].id);    // b under a
  EXPECT_EQ(spans[2].parent, spans[1].id);    // c under b
  EXPECT_EQ(spans[3].parent, spans[0].id);    // d under a (b closed)
}

TEST(TracerTest, IndependentTracersDoNotAdoptEachOther) {
  Tracer t1;
  Tracer t2;
  sim::VirtualClock clock;
  ScopedSpan a(&t1, "a", clock, 0);
  ScopedSpan b(&t2, "b", clock, 0);
  EXPECT_EQ(t1.spans()[0].parent, kNoSpan);
  EXPECT_EQ(t2.spans()[0].parent, kNoSpan);
}

// A three-hop synchronous RPC chain n0 -> n1 -> n2 -> n3 through the fabric
// must come out as one connected span tree whose rpc spans nest in call
// order, with each span's interval containing its child's.
TEST(TracerTest, ThreeHopRpcChainIsOneConnectedTree) {
  sim::Cluster cluster(4);
  net::Fabric fabric(cluster);
  Tracer tracer;
  fabric.set_tracer(&tracer);

  sim::VirtualClock clock;
  {
    ScopedSpan root(&tracer, "workload.op", clock, 0);
    Status st = fabric.Call(clock, 0, 1, 128, 64, [&](Nanos arrival1) {
      sim::VirtualClock c1(arrival1);
      Status inner1 = fabric.Call(c1, 1, 2, 128, 64, [&](Nanos arrival2) {
        sim::VirtualClock c2(arrival2);
        Status inner2 = fabric.Call(c2, 2, 3, 128, 64, [&](Nanos arrival3) {
          return arrival3 + 1000;  // leaf server work
        });
        EXPECT_TRUE(inner2.ok());
        return c2.now();
      });
      EXPECT_TRUE(inner1.ok());
      return c1.now();
    });
    EXPECT_TRUE(st.ok());
  }

  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);  // root + 3 rpc spans
  EXPECT_EQ(spans[0].name, "workload.op");
  EXPECT_EQ(spans[1].name, "rpc:node0->node1");
  EXPECT_EQ(spans[2].name, "rpc:node1->node2");
  EXPECT_EQ(spans[3].name, "rpc:node2->node3");
  // One connected chain: each rpc span is the child of the previous hop.
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[3].parent, spans[2].id);
  // Interval containment along the chain.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start, spans[i - 1].start);
    EXPECT_LE(spans[i].end, spans[i - 1].end)
        << spans[i].name << " must finish within " << spans[i - 1].name;
  }
  fabric.set_tracer(nullptr);
}

std::string RunSeededFaultWorkload(uint64_t seed) {
  sim::Cluster cluster(2);
  net::Fabric fabric(cluster);
  net::FaultPlan plan;
  plan.seed = seed;
  plan.rpc_drop_prob = 0.2;
  net::FaultInjector injector(plan);
  fabric.set_fault_injector(&injector);
  Tracer tracer;
  fabric.set_tracer(&tracer);

  sim::VirtualClock clock;
  for (int i = 0; i < 50; ++i) {
    (void)fabric.Call(clock, 0, 1, 256, 64,
                      [&](Nanos arrival) { return arrival + 500; });
  }
  return tracer.TextDump();
}

TEST(TracerTest, SameSeedProducesByteIdenticalDumpWithFaultAnnotations) {
  std::string first = RunSeededFaultWorkload(7);
  std::string second = RunSeededFaultWorkload(7);
  EXPECT_EQ(first, second);
  // At 20% drop probability over 50 calls, the dump must show drops.
  EXPECT_NE(first.find("fault.drop"), std::string::npos);
  // A different seed lands drops elsewhere.
  EXPECT_NE(first, RunSeededFaultWorkload(8));
}

TEST(TracerTest, TextDumpShowsTreeAndNotes) {
  Tracer tracer;
  sim::VirtualClock clock;
  {
    ScopedSpan a(&tracer, "parent", clock, 0);
    clock.Advance(10);
    {
      ScopedSpan b(&tracer, "child", clock, 1);
      b.Note("hello");
      clock.Advance(5);
    }
  }
  std::string dump = tracer.TextDump();
  EXPECT_NE(dump.find("[0..15ns] parent @n0"), std::string::npos);
  EXPECT_NE(dump.find("  [10..15ns] child @n1"), std::string::npos);
  EXPECT_NE(dump.find("    ! at=10ns hello"), std::string::npos);
}

TEST(TracerTest, JsonDumpListsSpansInIdOrder) {
  Tracer tracer;
  sim::VirtualClock clock;
  {
    ScopedSpan a(&tracer, "a", clock, 0);
    ScopedSpan b(&tracer, "b", clock, 1);
  }
  std::string json = tracer.JsonDump();
  EXPECT_LT(json.find("\"name\": \"a\""), json.find("\"name\": \"b\""));
  EXPECT_NE(json.find("\"id\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"parent\": 1"), std::string::npos);
}

TEST(TracerTest, SpanContextPropagatesAcrossThreadPoolSubmit) {
  // A task submitted while a span is open must run with that span as its
  // ambient parent, even though it executes on a pool worker thread.
  Tracer tracer;
  sim::VirtualClock clock;
  ThreadPool pool(2);
  {
    ScopedSpan parent(&tracer, "submit.parent", clock, 0);
    clock.Advance(5);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&tracer, i] {
        sim::VirtualClock worker_clock(100 + 10 * i);
        ScopedSpan child(&tracer, "pool.task", worker_clock, 1);
        worker_clock.Advance(1);
      });
    }
    pool.Wait();
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "submit.parent");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, "pool.task");
    EXPECT_EQ(spans[i].parent, spans[0].id)
        << "pool task must inherit the submitter's open span";
  }
}

TEST(TracerTest, PoolTaskWithoutAmbientSpanIsARoot) {
  Tracer tracer;
  ThreadPool pool(1);
  pool.Submit([&tracer] {
    sim::VirtualClock clock;
    ScopedSpan s(&tracer, "orphan", clock, 0);
  });
  pool.Wait();
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent, kNoSpan);
}

TEST(TracerTest, NestedSubmitCapturesInnermostSpanAtSubmitTime) {
  // The context captured is the one open at Submit() time, not at run time:
  // the span may already be closed when the task runs, and the edge must
  // still point at it.
  Tracer tracer;
  sim::VirtualClock clock;
  ThreadPool pool(1);
  // Park the worker so the submitted task runs strictly after `inner` closes.
  std::mutex m;
  m.lock();
  pool.Submit([&m] { m.lock(); m.unlock(); });
  {
    ScopedSpan outer(&tracer, "outer", clock, 0);
    {
      ScopedSpan inner(&tracer, "inner", clock, 0);
      pool.Submit([&tracer] {
        sim::VirtualClock wclock(50);
        ScopedSpan task(&tracer, "late.task", wclock, 1);
      });
    }
  }
  m.unlock();
  pool.Wait();
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "late.task");
  EXPECT_EQ(spans[2].parent, spans[1].id);
}

TEST(TracerTest, NoteCurrentAttachesToInnermostOpenSpan) {
  Tracer tracer;
  sim::VirtualClock clock;
  {
    ScopedSpan outer(&tracer, "outer", clock, 0);
    {
      ScopedSpan inner(&tracer, "inner", clock, 0);
      ScopedSpan::NoteCurrent(&tracer, 42, "fault.corrupt chunk=3");
    }
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].notes.empty());
  ASSERT_EQ(spans[1].notes.size(), 1u);
  EXPECT_EQ(spans[1].notes[0].text, "fault.corrupt chunk=3");
  EXPECT_EQ(spans[1].notes[0].at, 42u);
}

}  // namespace
}  // namespace diesel::obs
