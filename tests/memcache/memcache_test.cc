#include "memcache/memcache.h"

#include <gtest/gtest.h>

namespace diesel::memcache {
namespace {

class MemcacheTest : public ::testing::Test {
 protected:
  MemcacheTest() : cluster_(8), fabric_(cluster_) {
    MemcacheOptions opts;
    opts.nodes = {0, 1, 2, 3};
    mc_ = std::make_unique<MemcachedCluster>(fabric_, opts);
  }

  sim::Cluster cluster_;
  net::Fabric fabric_;
  std::unique_ptr<MemcachedCluster> mc_;
  sim::VirtualClock clock_;
};

TEST_F(MemcacheTest, SetGetDelete) {
  ASSERT_TRUE(mc_->Set(clock_, 4, "item", "payload").ok());
  EXPECT_EQ(mc_->Get(clock_, 4, "item").value(), "payload");
  ASSERT_TRUE(mc_->Delete(clock_, 4, "item").ok());
  EXPECT_TRUE(mc_->Get(clock_, 4, "item").status().IsNotFound());
}

TEST_F(MemcacheTest, MissingKeyIsMiss) {
  EXPECT_TRUE(mc_->Get(clock_, 4, "nothing").status().IsNotFound());
}

TEST_F(MemcacheTest, DisabledInstanceTurnsHitsIntoMisses) {
  // Fill enough items that every instance owns some.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mc_->Set(clock_, 4, "f" + std::to_string(i), "v").ok());
  }
  size_t before = mc_->TotalItems();
  EXPECT_EQ(before, 100u);

  // Disable one instance (the Fig. 6 experiment). Keys it owned now miss,
  // keys elsewhere still hit, and the ring does NOT remap.
  mc_->DisableInstance(1);
  size_t hits = 0, misses = 0;
  for (int i = 0; i < 100; ++i) {
    std::string key = "f" + std::to_string(i);
    auto v = mc_->Get(clock_, 4, key);
    if (v.ok()) {
      ++hits;
      EXPECT_NE(mc_->OwnerInstance(key), 1u);
    } else {
      ++misses;
      EXPECT_EQ(mc_->OwnerInstance(key), 1u);
    }
  }
  EXPECT_GT(misses, 0u);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(hits + misses, 100u);
}

TEST_F(MemcacheTest, DisabledInstanceRejectsWrites) {
  std::string victim_key;
  for (int i = 0;; ++i) {
    victim_key = "probe" + std::to_string(i);
    if (mc_->OwnerInstance(victim_key) == 2) break;
  }
  mc_->DisableInstance(2);
  EXPECT_TRUE(mc_->Set(clock_, 4, victim_key, "v").IsUnavailable());
}

TEST_F(MemcacheTest, ReEnabledInstanceStartsEmpty) {
  std::string key;
  for (int i = 0;; ++i) {
    key = "probe" + std::to_string(i);
    if (mc_->OwnerInstance(key) == 0) break;
  }
  ASSERT_TRUE(mc_->Set(clock_, 4, key, "v").ok());
  mc_->DisableInstance(0);
  mc_->EnableInstance(0);
  EXPECT_TRUE(mc_->InstanceEnabled(0));
  EXPECT_TRUE(mc_->Get(clock_, 4, key).status().IsNotFound());
}

TEST_F(MemcacheTest, EveryOpPaysNetworkTime) {
  Nanos t0 = clock_.now();
  ASSERT_TRUE(mc_->Set(clock_, 4, "k", "v").ok());
  Nanos t1 = clock_.now();
  EXPECT_GT(t1, t0);
  ASSERT_TRUE(mc_->Get(clock_, 4, "k").ok());
  EXPECT_GT(clock_.now(), t1);
}

TEST_F(MemcacheTest, DeadInstanceGetPaysFailureDetectionCost) {
  // Fig. 6's collapse mechanism: a get routed to a disabled instance costs
  // connection-failure detection, far more than a live miss.
  std::string dead_key, live_key;
  for (int i = 0;; ++i) {
    std::string k = "probe" + std::to_string(i);
    if (mc_->OwnerInstance(k) == 1 && dead_key.empty()) dead_key = k;
    if (mc_->OwnerInstance(k) == 0 && live_key.empty()) live_key = k;
    if (!dead_key.empty() && !live_key.empty()) break;
  }
  mc_->DisableInstance(1);
  sim::VirtualClock live, dead;
  EXPECT_TRUE(mc_->Get(live, 4, live_key).status().IsNotFound());
  EXPECT_TRUE(mc_->Get(dead, 4, dead_key).status().IsNotFound());
  EXPECT_GT(dead.now(), 50 * live.now());
}

TEST_F(MemcacheTest, NoBatchingMakesNWritesCostNRoundTrips) {
  // 50 writes must cost at least 50x the single-write floor (per-item RPC,
  // §6.2: libMemcached has no batch write mode).
  sim::VirtualClock one;
  ASSERT_TRUE(mc_->Set(one, 4, "single", "v").ok());
  Nanos single_cost = one.now();

  sim::VirtualClock many;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(mc_->Set(many, 5, "m" + std::to_string(i), "v").ok());
  }
  EXPECT_GE(many.now(), 40 * single_cost);  // allow some parallel slack
}

}  // namespace
}  // namespace diesel::memcache
