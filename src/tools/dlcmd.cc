// DLCMD — dataset management command-line tool (§5, "similar to s3cmd").
//
// Operates a single-process DIESEL deployment whose chunk store is backed by
// a real directory, so datasets persist across invocations:
//
//   dlcmd --root DIR put <dataset> <local-file> <diesel-path>
//   dlcmd --root DIR put-tree <dataset> <local-dir> <diesel-prefix>
//   dlcmd --root DIR get <dataset> <diesel-path> <local-file>
//   dlcmd --root DIR ls <dataset> <diesel-dir>
//   dlcmd --root DIR stat <dataset> <diesel-path>
//   dlcmd --root DIR del <dataset> <diesel-path>
//   dlcmd --root DIR purge <dataset>
//   dlcmd --root DIR save-meta <dataset> <local-file>
//   dlcmd --root DIR recover <dataset>
//   dlcmd --root DIR stats <dataset>
//   dlcmd --root DIR trace <dataset> <diesel-path>
//   dlcmd --root DIR tail <dataset>
//   dlcmd --root DIR critpath <dataset>
//   dlcmd --root DIR prefetch <dataset> [group-size] [nodes] [seed]
//   dlcmd perf merge <dir> [-o out.json] [--strip-registry]
//   dlcmd perf diff <baseline.json> <current.json> [--tol X] [--allow-missing]
//   dlcmd slo <report-dir> [--slo spec.json] [--bench name] [-v]
//   dlcmd timeline <file.timeline.json> [--section S] [--key K]
//   dlcmd util <report.json> [--window ns] [--top N]
//   dlcmd hotspots <report.json> [--window ns] [--top N]
//   dlcmd membership <nodes> [target] [chunks] [seed]
//   dlcmd tenants <jobs> [files] [capacity_mb] [seed]
//
// `stats` runs a small metadata workload (recover + list) and prints the
// process-wide metrics registry; `trace` reads one file with the span
// tracer attached and prints the resulting virtual-time span tree; `tail`
// runs a cached read workload with exemplar capture on and resolves the
// worst `read.path.total_ns` tail observations back to their span trees
// (phase-annotated critical path of a p99 GetFile); `prefetch` draws one
// epoch's chunk-wise shuffle plan and prints the clairvoyant access
// schedule the prefetch scheduler would execute. `perf` operates on bench
// report files and needs no --root: `merge` combines per-bench
// `*.report.json` into one suite document, `diff` gates a suite against a
// committed baseline (non-zero exit on regression). `slo` (root-less)
// evaluates the declarative objectives in bench/slo.json against a
// directory of reports + timelines and exits non-zero on breach;
// `timeline` pretty-prints a `diesel.timeline/v1` dump. `util` and
// `hotspots` (root-less) read the registry embedded in a bench report and
// derive per-resource/per-node utilization, skew statistics, and the
// hotspot ranking with Little's-law queueing attribution; `critpath`
// (root-based) runs a cached read workload under the tracer and prints the
// longest resource-attributed path through the slowest GetFile.
// `membership` (also root-less) inspects the elastic-membership ring:
// ownership balance at <nodes> members, the chunk-move fraction of a
// planned rescale to [target] members versus the consistent-hashing ideal,
// and a seeded churn replay with the resulting epoch log. `tenants`
// (root-less) demonstrates the multi-tenant cache fabric: job 0 cold-loads
// a dataset and tears down (demoting residency into the shared tier), then
// <jobs>-1 successor jobs warm-start by adopting the shared chunks; it
// prints the per-tenant accounting table (resident/demoted/adopted bytes,
// shared hits) and each job's backend load count, which should be zero for
// every job after the first.
//
// The KV metadata tier is in-memory per invocation; `recover` rebuilds it
// from the persisted self-contained chunks (which is also what every other
// subcommand does on startup) — a live demonstration of §4.1.2.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "dlt/dataset_gen.h"
#include "tenant/fabric.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/housekeeping.h"
#include "core/server.h"
#include "kv/cluster.h"
#include "membership/churn.h"
#include "membership/membership.h"
#include "net/fabric.h"
#include "obs/critical_path.h"
#include "obs/hotspot.h"
#include "obs/metrics.h"
#include "obs/perf_diff.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "ostore/dir_store.h"
#include "prefetch/access_schedule.h"
#include "shuffle/shuffle.h"

namespace diesel::tools {
namespace {

namespace fs = std::filesystem;

struct Cli {
  sim::Cluster cluster{2};
  net::Fabric fabric{cluster};
  kv::KvCluster kv;
  ostore::DirStore store;
  core::DieselServer server;
  sim::VirtualClock clock;

  explicit Cli(const fs::path& root)
      : kv(fabric, KvOpts()),
        store(root),
        server(fabric, kv, store, {.node = 1}) {}

  static kv::KvClusterOptions KvOpts() {
    kv::KvClusterOptions opts;
    opts.nodes = {1};
    opts.shards_per_node = 4;
    return opts;
  }

  /// Rebuild the (per-invocation, in-memory) metadata from chunk headers.
  Status Bootstrap(const std::string& dataset) {
    auto stats = server.RecoverMetadata(clock, dataset, 0);
    if (!stats.ok()) return stats.status();
    return Status::Ok();
  }
};

Result<Bytes> ReadLocalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  Bytes data(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!in) return Status::IoError("short read: " + path);
  return data;
}

Status WriteLocalFile(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::Ok() : Status::IoError("short write: " + path);
}

int Usage() {
  std::fprintf(stderr,
               "usage: dlcmd --root DIR "
               "{put|put-tree|get|ls|stat|del|purge|save-meta|recover|"
               "stats|trace|tail|critpath|prefetch} ...\n"
               "       dlcmd --root DIR prefetch <dataset> "
               "[group-size] [nodes] [seed]\n"
               "       dlcmd perf {merge|diff} ...\n"
               "       dlcmd slo <report-dir> [--slo spec.json] "
               "[--bench name] [-v]\n"
               "       dlcmd timeline <file.timeline.json> "
               "[--section S] [--key K]\n"
               "       dlcmd util <report.json> [--window ns] [--top N]\n"
               "       dlcmd hotspots <report.json> [--window ns] [--top N]\n"
               "       dlcmd membership <nodes> [target] [chunks] [seed]\n"
               "       dlcmd tenants <jobs> [files] [capacity_mb] [seed]\n"
               "stats prints the process-wide metrics registry; names are\n"
               "prefixed by subsystem: net.* (fabric RPCs), kv.* (metadata\n"
               "tier), core.* (server/client), cache.* (task cache),\n"
               "shuffle.* (chunk-wise shuffle), dlt.* (training pipeline),\n"
               "prefetch.* (clairvoyant prefetch scheduler).\n"
               "hot read path counters: net.batch.calls / .subrequests /\n"
               ".size (per-link coalesced multi-gets and their fan-in),\n"
               "cache.slice.views (zero-copy slice reads), cache.slice.copies\n"
               "(materialized GetFile copies), cache.slice.crc_verified /\n"
               ".crc_skipped (per-residency CRC memoization hit rate).\n"
               "critical-path histograms: read.path.total_ns (end-to-end\n"
               "GetFile) decomposed into read.path.{local,owner_wait,rpc,\n"
               "device,parse,slice,backoff,degraded}_ns plus\n"
               "read.path.retries; tail observations carry span-id exemplars\n"
               "(see `tail`). timeline.samples / .buckets / .dropped count\n"
               "Timeline sampler activity behind *.timeline.json dumps.\n"
               "resource telemetry: sim.device.{queue_wait_ns,service_ns,\n"
               "busy_ns,ops,bytes,intervals_collapsed,util}{device=,node=}\n"
               "per bound queueing device; net.link.{busy_ns,queue_wait_ns,\n"
               "util}{link=,node=} per fabric link; cluster.node.util{node=}\n"
               "and cluster.imbalance.{max_util,median_util,mean_util,cv,\n"
               "max_over_median,nodes} are the obs::ClusterView rollup\n"
               "(see `util` / `hotspots`).\n"
               "multi-tenant fabric counters: tenant.adopted_chunks /\n"
               ".adopted_bytes (misses warm-started from the shared tier),\n"
               "tenant.demoted_chunks / .demoted_bytes (teardown residency\n"
               "retained by the shared tier) vs tenant.discarded_bytes\n"
               "(teardown bytes dropped — nonzero means re-reads later);\n"
               "per-tenant series tenant.{resident_bytes,resident_chunks,\n"
               "shared_hits,evictions,evicted_by_other}{tenant=} and\n"
               "fabric-wide tenant.fabric.{resident_bytes,resident_chunks,\n"
               "tenants_active,declined_chunks,invalidated_chunks}\n"
               "(invalidated = shared entries purged after a reader's CRC\n"
               "detected corruption; see `tenants`).\n");
  return 2;
}

// Ring inspector: balance, rescale move fraction, seeded churn replay.
// Needs no deployment — it exercises the MembershipTable directly.
int MembershipCommand(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 4) return Usage();
  size_t nodes = std::stoul(args[0]);
  size_t target = args.size() > 1 ? std::stoul(args[1]) : nodes;
  size_t chunks = args.size() > 2 ? std::stoul(args[2]) : 4096;
  uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 42;
  if (nodes == 0 || target == 0 || chunks == 0) {
    std::fprintf(stderr, "dlcmd: nodes/target/chunks must be > 0\n");
    return 1;
  }

  membership::MembershipTable table;
  std::vector<sim::NodeId> initial(nodes);
  for (size_t i = 0; i < nodes; ++i) initial[i] = static_cast<sim::NodeId>(i);
  table.Bootstrap(initial, 0);

  auto owners_of = [&](std::vector<sim::NodeId>& out) {
    out.resize(chunks);
    for (size_t ci = 0; ci < chunks; ++ci) {
      auto owner = table.OwnerOfChunk(ci);
      out[ci] = owner.ok() ? owner.value() : sim::kInvalidNode;
    }
  };

  std::vector<sim::NodeId> before;
  owners_of(before);
  double min_frac = 1.0, max_frac = 0.0;
  for (sim::NodeId n : initial) {
    double f = table.OwnedFraction(n);
    min_frac = std::min(min_frac, f);
    max_frac = std::max(max_frac, f);
  }
  std::printf("ring: %zu nodes, %zu chunks; owned fraction min %.4f max %.4f "
              "(ideal %.4f, imbalance %.2fx)\n",
              nodes, chunks, min_frac, max_frac, 1.0 / nodes,
              min_frac > 0 ? max_frac / min_frac : 0.0);

  if (target != nodes) {
    // Planned rescale: join spares or drain the highest ids, then measure
    // how many chunk owners actually changed against the consistent-hash
    // ideal (|target - nodes| / max(nodes, target) of the space).
    Nanos at = Millis(1);
    if (target > nodes) {
      for (size_t n = nodes; n < target; ++n) {
        table.Join(static_cast<sim::NodeId>(n), at);
        at += Millis(1);
      }
    } else {
      for (size_t n = target; n < nodes; ++n) {
        table.StartDrain(static_cast<sim::NodeId>(n), at);
        table.CompleteDrain(static_cast<sim::NodeId>(n), at + Millis(1));
        at += Millis(2);
      }
    }
    std::vector<sim::NodeId> after;
    owners_of(after);
    size_t moved = 0;
    for (size_t ci = 0; ci < chunks; ++ci) {
      if (after[ci] != before[ci]) ++moved;
    }
    double ideal = static_cast<double>(target > nodes ? target - nodes
                                                      : nodes - target) /
                   static_cast<double>(std::max(nodes, target));
    std::printf("rescale %zu -> %zu: moved %zu/%zu chunks (%.4f of the "
                "space; consistent-hash ideal %.4f) across %llu epochs\n",
                nodes, target, moved, chunks,
                static_cast<double>(moved) / chunks, ideal,
                static_cast<unsigned long long>(table.epoch() - 1));
  }

  // Seeded churn replay over the post-rescale set: expand the seed into a
  // schedule, drive the table through it, and dump the epoch log.
  std::vector<sim::NodeId> active = table.ActiveNodes();
  std::vector<sim::NodeId> spares;
  for (size_t i = 0; i < 4; ++i) {
    spares.push_back(static_cast<sim::NodeId>(std::max(nodes, target) + i));
  }
  membership::ChurnScheduleOptions copts;
  copts.seed = seed;
  copts.events = 6;
  copts.min_active = std::max<size_t>(1, active.size() / 2);
  membership::ChurnSchedule schedule =
      membership::ChurnSchedule::Generate(copts, active, spares);
  uint64_t epoch_before = table.epoch();
  membership::ChurnDriver driver(table, schedule);
  driver.AdvanceTo(copts.horizon);
  std::printf("churn(seed %llu): %zu events fired, epoch %llu -> %llu, "
              "%zu nodes active\n",
              static_cast<unsigned long long>(seed), driver.fired(),
              static_cast<unsigned long long>(epoch_before),
              static_cast<unsigned long long>(table.epoch()),
              table.NumActive());
  for (const membership::MembershipChange& c : table.Log()) {
    if (c.epoch <= epoch_before) continue;
    std::printf("  epoch %-4llu %-13s n%-3llu @ %8.1f ms\n",
                static_cast<unsigned long long>(c.epoch),
                membership::ToString(c.kind),
                static_cast<unsigned long long>(c.node),
                static_cast<double>(c.at) / 1e6);
  }
  return 0;
}

// Multi-tenant fabric inspector: run a warm-start relay in-memory — job 0
// cold-loads the dataset, tears down through the demote path, and every
// successor job adopts the shared residency — then print the per-tenant
// accounting table the fabric keeps.
int TenantsCommand(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 4) return Usage();
  size_t jobs = std::stoul(args[0]);
  size_t files = args.size() > 1 ? std::stoul(args[1]) : 80;
  uint64_t capacity_mb = args.size() > 2 ? std::stoull(args[2]) : 0;
  uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 42;
  if (jobs == 0 || files == 0) {
    std::fprintf(stderr, "dlcmd: jobs/files must be > 0\n");
    return 1;
  }

  core::DeploymentOptions dopts;
  dopts.num_client_nodes = 2;
  core::Deployment dep(dopts);
  dlt::DatasetSpec spec;
  spec.name = "tenantdemo";
  spec.num_classes = 4;
  spec.files_per_class = (files + 3) / 4;
  spec.mean_file_bytes = 2048;
  spec.seed = seed;
  auto writer = dep.MakeClient(0, 0, spec.name, 16 * 1024);
  Status ingest = dlt::ForEachFile(spec, [&](const dlt::GeneratedFile& f) {
    return writer->Put(f.path, f.content);
  });
  if (!ingest.ok() || !writer->Flush().ok()) {
    std::fprintf(stderr, "dlcmd: dataset ingest failed\n");
    return 1;
  }

  tenant::FabricOptions fopts;
  fopts.capacity_bytes = capacity_mb * 1024 * 1024;
  tenant::CacheFabric shared(dep.fabric(), fopts);

  sim::VirtualClock clock;
  std::printf("%-8s %8s %8s %8s %8s %8s %8s\n", "job", "backend", "adopted",
              "demoted", "shared", "resident", "discard");
  for (size_t j = 0; j < jobs; ++j) {
    std::string name = "job" + std::to_string(j);
    tenant::TenantBinding* binding = shared.RegisterTenant(spec.name, {name});
    auto client = dep.MakeClient(j % dopts.num_client_nodes, 1, spec.name);
    cache::TaskRegistry registry;
    registry.Register(client->endpoint());
    if (!client->FetchSnapshot().ok()) {
      std::fprintf(stderr, "dlcmd: snapshot fetch failed\n");
      return 1;
    }
    cache::TaskCache cache(dep.fabric(), dep.server(0), *client->snapshot(),
                           registry, {});
    cache.AttachSharedTier(binding);
    for (size_t i = 0; i < spec.total_files(); ++i) {
      const core::FileMeta* meta =
          client->snapshot()->Lookup(dlt::FilePath(spec, i));
      if (meta == nullptr) continue;
      auto r = cache.GetFile(clock, client->endpoint(), *meta);
      if (!r.ok()) {
        std::fprintf(stderr, "dlcmd: read failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    cache::TaskCacheStats cs = cache.stats();
    cache.Teardown(clock.now());
    cache::TaskCacheStats after = cache.stats();
    shared.DeregisterTenant(binding);
    std::printf("%-8s %8llu %8llu %8llu %8s %8s %8llu\n", name.c_str(),
                static_cast<unsigned long long>(cs.chunk_loads),
                static_cast<unsigned long long>(cs.adopted_chunks),
                static_cast<unsigned long long>(after.demoted_chunks), "-",
                "-", static_cast<unsigned long long>(after.discarded_bytes));
  }

  std::printf("\nfabric: %llu chunks / %llu bytes resident\n",
              static_cast<unsigned long long>(shared.resident_chunks()),
              static_cast<unsigned long long>(shared.resident_bytes()));
  std::printf("%-8s %6s %8s %8s %8s %8s %8s %8s\n", "tenant", "active",
              "resident", "pub", "demoted", "adopted", "shared", "evicted");
  for (const tenant::TenantStats& t : shared.Stats()) {
    std::printf("%-8s %6s %8llu %8llu %8llu %8llu %8llu %8llu\n",
                t.name.c_str(), t.active ? "yes" : "no",
                static_cast<unsigned long long>(t.resident_chunks),
                static_cast<unsigned long long>(t.published_chunks),
                static_cast<unsigned long long>(t.demoted_chunks),
                static_cast<unsigned long long>(t.adopted_chunks),
                static_cast<unsigned long long>(t.shared_hits),
                static_cast<unsigned long long>(t.evictions));
  }
  return 0;
}

core::DieselClient MakeClient(Cli& cli, const std::string& dataset) {
  core::ClientOptions copts;
  copts.dataset = dataset;
  copts.node = 0;
  return core::DieselClient(cli.fabric, {&cli.server}, copts);
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // `perf` operates on report files only — no deployment, no --root.
  if (!args.empty() && args[0] == "perf") {
    return obs::PerfCommand({args.begin() + 1, args.end()}, std::cout,
                            std::cerr);
  }
  // `membership` inspects the elastic-membership ring — no deployment either.
  if (!args.empty() && args[0] == "membership") {
    return MembershipCommand({args.begin() + 1, args.end()});
  }
  // `tenants` runs the multi-tenant warm-start relay in-memory.
  if (!args.empty() && args[0] == "tenants") {
    return TenantsCommand({args.begin() + 1, args.end()});
  }
  // `slo` gates report/timeline artifacts; `timeline` pretty-prints one.
  if (!args.empty() && args[0] == "slo") {
    return obs::SloCommand({args.begin() + 1, args.end()}, std::cout,
                           std::cerr);
  }
  if (!args.empty() && args[0] == "timeline") {
    return obs::TimelineCommand({args.begin() + 1, args.end()}, std::cout,
                                std::cerr);
  }
  // `util` / `hotspots` analyze the registry embedded in a bench report.
  if (!args.empty() && args[0] == "util") {
    return obs::UtilCommand({args.begin() + 1, args.end()}, std::cout,
                            std::cerr);
  }
  if (!args.empty() && args[0] == "hotspots") {
    return obs::HotspotsCommand({args.begin() + 1, args.end()}, std::cout,
                                std::cerr);
  }
  if (args.size() < 3 || args[0] != "--root") return Usage();
  fs::path root = args[1];
  std::string cmd = args[2];
  args.erase(args.begin(), args.begin() + 3);

  Cli cli(root);
  auto fail = [](const Status& st) {
    std::fprintf(stderr, "dlcmd: %s\n", st.ToString().c_str());
    return 1;
  };

  if (cmd == "put" && args.size() == 3) {
    const auto& [dataset, local, remote] = std::tie(args[0], args[1], args[2]);
    if (Status st = cli.Bootstrap(dataset); !st.ok()) return fail(st);
    auto data = ReadLocalFile(local);
    if (!data.ok()) return fail(data.status());
    core::DieselClient client = MakeClient(cli, dataset);
    // Avoid chunk-id collisions with previous invocations: stamp the clock
    // past the newest existing chunk.
    auto dm = cli.server.GetDatasetMeta(cli.clock, 0, dataset);
    if (dm.ok()) client.clock().AdvanceTo(dm->update_ts_ns + Seconds(1.0));
    if (Status st = client.Put(remote, data.value()); !st.ok())
      return fail(st);
    if (Status st = client.Flush(); !st.ok()) return fail(st);
    std::printf("put %s -> %s (%zu bytes)\n", local.c_str(), remote.c_str(),
                data->size());
    return 0;
  }

  if (cmd == "put-tree" && args.size() == 3) {
    const auto& [dataset, local_dir, prefix] =
        std::tie(args[0], args[1], args[2]);
    if (Status st = cli.Bootstrap(dataset); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, dataset);
    auto dm = cli.server.GetDatasetMeta(cli.clock, 0, dataset);
    if (dm.ok()) client.clock().AdvanceTo(dm->update_ts_ns + Seconds(1.0));
    size_t count = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(local_dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      auto data = ReadLocalFile(it->path().string());
      if (!data.ok()) return fail(data.status());
      std::string rel =
          fs::relative(it->path(), local_dir).generic_string();
      if (Status st = client.Put(prefix + "/" + rel, data.value()); !st.ok())
        return fail(st);
      ++count;
    }
    if (Status st = client.Flush(); !st.ok()) return fail(st);
    std::printf("put-tree: %zu files under %s (%llu chunks)\n", count,
                prefix.c_str(),
                static_cast<unsigned long long>(
                    client.stats().chunks_flushed));
    return 0;
  }

  if (cmd == "get" && args.size() == 3) {
    const auto& [dataset, remote, local] = std::tie(args[0], args[1], args[2]);
    if (Status st = cli.Bootstrap(dataset); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, dataset);
    auto data = client.Get(remote);
    if (!data.ok()) return fail(data.status());
    if (Status st = WriteLocalFile(local, data.value()); !st.ok())
      return fail(st);
    std::printf("get %s -> %s (%zu bytes)\n", remote.c_str(), local.c_str(),
                data->size());
    return 0;
  }

  if (cmd == "ls" && (args.size() == 1 || args.size() == 2)) {
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    auto entries = client.List(args.size() == 2 ? args[1] : "/");
    if (!entries.ok()) return fail(entries.status());
    for (const auto& e : entries.value()) {
      std::printf("%s%s\n", e.name.c_str(), e.is_dir ? "/" : "");
    }
    return 0;
  }

  if (cmd == "stat" && args.size() == 2) {
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    auto meta = client.Stat(args[1]);
    if (!meta.ok()) return fail(meta.status());
    std::printf("%s: %llu bytes, chunk %s @%llu, crc %08x\n", args[1].c_str(),
                static_cast<unsigned long long>(meta->length),
                meta->chunk.Encoded().c_str(),
                static_cast<unsigned long long>(meta->offset), meta->crc);
    return 0;
  }

  if (cmd == "del" && args.size() == 2) {
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    if (Status st = client.Delete(args[1]); !st.ok()) return fail(st);
    // Persist the tombstone by compacting immediately (the in-memory KV
    // dies with this process, the chunks do not).
    auto purged = core::PurgeDataset(cli.clock, cli.server, args[0]);
    if (!purged.ok()) return fail(purged.status());
    std::printf("deleted %s (compacted %zu chunks)\n", args[1].c_str(),
                purged->chunks_compacted);
    return 0;
  }

  if (cmd == "purge" && args.size() == 1) {
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    auto stats = core::PurgeDataset(cli.clock, cli.server, args[0]);
    if (!stats.ok()) return fail(stats.status());
    std::printf("purge: %zu chunks compacted, %zu files dropped, %llu bytes "
                "reclaimed\n", stats->chunks_compacted, stats->files_dropped,
                static_cast<unsigned long long>(stats->bytes_reclaimed));
    return 0;
  }

  if (cmd == "save-meta" && args.size() == 2) {
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    if (Status st = client.FetchSnapshot(); !st.ok()) return fail(st);
    Bytes blob = client.snapshot()->Serialize();
    if (Status st = WriteLocalFile(args[1], blob); !st.ok()) return fail(st);
    std::printf("snapshot: %zu files, %zu bytes -> %s\n",
                client.snapshot()->num_files(), blob.size(), args[1].c_str());
    return 0;
  }

  if (cmd == "stats" && args.size() == 1) {
    // Run a representative metadata workload (header-scan recovery, snapshot
    // fetch, a root listing) and show what the registry collected.
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    if (Status st = client.FetchSnapshot(); !st.ok()) return fail(st);
    auto entries = client.List("/");
    if (!entries.ok()) return fail(entries.status());
    std::printf("%s", obs::Metrics().Text().c_str());
    return 0;
  }

  if (cmd == "trace" && args.size() == 2) {
    obs::Tracer tracer;
    cli.fabric.set_tracer(&tracer);
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    auto data = client.Get(args[1]);
    if (!data.ok()) return fail(data.status());
    std::printf("%s", tracer.TextDump().c_str());
    std::printf("%zu spans, %zu bytes read\n", tracer.size(), data->size());
    cli.fabric.set_tracer(nullptr);
    return 0;
  }

  if (cmd == "tail" && args.size() == 1) {
    // Tail-latency attribution demo: run a cached read workload over the
    // persisted dataset with the span tracer attached (exemplar capture
    // needs live span ids), then resolve the worst read.path.total_ns
    // observations back to their phase-annotated span trees.
    obs::Tracer tracer;
    cli.fabric.set_tracer(&tracer);
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::ClientOptions copts;
    copts.dataset = args[0];
    copts.node = 0;
    core::DieselClient c0(cli.fabric, {&cli.server}, copts);
    copts.client_index = 1;
    core::DieselClient c1(cli.fabric, {&cli.server}, copts);
    if (Status st = c0.FetchSnapshot(); !st.ok()) return fail(st);
    const core::MetadataSnapshot& snap = *c0.snapshot();
    if (snap.num_files() == 0)
      return fail(Status::NotFound("dataset has no files"));

    cache::TaskRegistry registry;
    registry.Register(c0.endpoint());
    registry.Register(c1.endpoint());
    cache::TaskCacheOptions tcopts;
    tcopts.policy = cache::CachePolicy::kOneshot;
    cache::TaskCache cache(cli.fabric, cli.server, snap, registry, tcopts);
    cache.EstablishConnections();

    sim::VirtualClock clk0, clk1;
    for (uint32_t i = 0; i < snap.num_files(); ++i) {
      const core::FileMeta& fm = snap.files()[i];
      bool even = (i % 2) == 0;
      auto r = cache.GetFile(even ? clk0 : clk1,
                             even ? c0.endpoint() : c1.endpoint(), fm);
      if (!r.ok()) return fail(r.status());
    }
    cli.fabric.set_tracer(nullptr);

    obs::MetricsSnapshot snap_m = obs::Metrics().Snapshot();
    auto it = snap_m.histograms.find("read.path.total_ns");
    if (it == snap_m.histograms.end() || it->second.count() == 0)
      return fail(Status::Internal("no read.path.total_ns observations"));
    const Histogram& h = it->second;
    std::printf("read.path.total_ns: %llu reads, p50 %.0f ns, p99 %.0f ns\n",
                static_cast<unsigned long long>(h.count()), h.Quantile(0.5),
                h.Quantile(0.99));
    const auto& exemplars = h.exemplars();
    if (exemplars.empty())
      return fail(Status::Internal("no tail exemplars captured"));
    std::printf("%zu tail exemplars above the q=%.2f threshold:\n",
                exemplars.size(), h.exemplar_quantile());
    for (const auto& ex : exemplars) {
      std::printf("  %.0f ns @ %.0f ns span %llu\n", ex.value, ex.at,
                  static_cast<unsigned long long>(ex.trace_id));
    }
    std::printf("\nworst read (span %llu):\n",
                static_cast<unsigned long long>(exemplars.front().trace_id));
    std::printf("%s", tracer.TreeDump(exemplars.front().trace_id).c_str());
    return 0;
  }

  if (cmd == "critpath" && args.size() == 1) {
    // Critical-path demo: run a cached read workload over the persisted
    // dataset with the span tracer attached, then compute the longest
    // resource-attributed path through the slowest GetFile — which spans
    // actually determined its completion time, with per-resource totals.
    obs::Tracer tracer;
    cli.fabric.set_tracer(&tracer);
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::ClientOptions copts;
    copts.dataset = args[0];
    copts.node = 0;
    core::DieselClient c0(cli.fabric, {&cli.server}, copts);
    copts.client_index = 1;
    core::DieselClient c1(cli.fabric, {&cli.server}, copts);
    if (Status st = c0.FetchSnapshot(); !st.ok()) return fail(st);
    const core::MetadataSnapshot& snap = *c0.snapshot();
    if (snap.num_files() == 0)
      return fail(Status::NotFound("dataset has no files"));

    cache::TaskRegistry registry;
    registry.Register(c0.endpoint());
    registry.Register(c1.endpoint());
    cache::TaskCacheOptions tcopts;
    tcopts.policy = cache::CachePolicy::kOneshot;
    cache::TaskCache cache(cli.fabric, cli.server, snap, registry, tcopts);
    cache.EstablishConnections();

    sim::VirtualClock clk0, clk1;
    for (uint32_t i = 0; i < snap.num_files(); ++i) {
      const core::FileMeta& fm = snap.files()[i];
      bool even = (i % 2) == 0;
      auto r = cache.GetFile(even ? clk0 : clk1,
                             even ? c0.endpoint() : c1.endpoint(), fm);
      if (!r.ok()) return fail(r.status());
    }
    cli.fabric.set_tracer(nullptr);

    obs::CriticalPath cp = obs::CriticalPath::Analyze(tracer);
    if (!cp.valid())
      return fail(Status::Internal("no completed root span to analyze"));
    std::printf("%s", cp.Render(30).c_str());
    size_t zero_slack = 0;
    for (const auto& [id, slack] : cp.slack()) {
      if (slack == 0) ++zero_slack;
    }
    std::printf("slack: %zu of %zu child spans are on their parent's "
                "critical chain (slack 0)\n", zero_slack, cp.slack().size());
    return 0;
  }

  if (cmd == "prefetch" && args.size() >= 1 && args.size() <= 4) {
    // Inspector: draw one epoch's chunk-wise shuffle plan and print the
    // clairvoyant access schedule derived from it — fill order, per-chunk
    // access counts and the Belady reuse distances eviction would use.
    if (Status st = cli.Bootstrap(args[0]); !st.ok()) return fail(st);
    core::DieselClient client = MakeClient(cli, args[0]);
    if (Status st = client.FetchSnapshot(); !st.ok()) return fail(st);
    const core::MetadataSnapshot& snap = *client.snapshot();
    size_t group_size = args.size() > 1 ? std::stoul(args[1]) : 4;
    size_t nodes = args.size() > 2 ? std::stoul(args[2]) : 4;
    uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 42;
    if (group_size == 0 || nodes == 0)
      return fail(Status::InvalidArgument("group-size/nodes must be > 0"));
    Rng rng(seed);
    shuffle::ShufflePlan plan =
        shuffle::ChunkWiseShuffle(snap, {.group_size = group_size}, rng);
    prefetch::AccessSchedule sched =
        prefetch::AccessSchedule::Build(plan, snap);
    std::printf("plan: %zu files in %zu groups, %zu/%zu chunks touched "
                "(seed %llu, group-size %zu, %zu owner nodes)\n",
                plan.file_order.size(), plan.num_groups(),
                sched.chunks_by_first_access().size(), snap.chunks().size(),
                static_cast<unsigned long long>(seed), group_size, nodes);
    std::printf("%-6s %-5s %-7s %-8s %-8s %-8s\n", "chunk", "node", "reads",
                "first", "last", "reuse");
    constexpr size_t kHead = 20;
    size_t shown = 0;
    uint64_t reuse_sum = 0, reuse_n = 0;
    for (size_t ci : sched.chunks_by_first_access()) {
      const auto& a = sched.AccessesOf(ci);
      for (size_t i = 1; i < a.size(); ++i) {
        reuse_sum += a[i] - a[i - 1];
        ++reuse_n;
      }
      if (shown < kHead) {
        std::printf("%-6zu %-5zu %-7zu %-8llu %-8llu %-8llu\n", ci, ci % nodes,
                    a.size(), static_cast<unsigned long long>(a.front()),
                    static_cast<unsigned long long>(a.back()),
                    static_cast<unsigned long long>(
                        a.size() > 1 ? a[1] - a[0] : 0));
      }
      ++shown;
    }
    if (shown > kHead) std::printf("... (%zu more chunks)\n", shown - kHead);
    std::printf("mean reuse distance: %.1f positions over %llu re-reads\n",
                reuse_n ? static_cast<double>(reuse_sum) / reuse_n : 0.0,
                static_cast<unsigned long long>(reuse_n));
    return 0;
  }

  if (cmd == "recover" && args.size() == 1) {
    auto stats = cli.server.RecoverMetadata(cli.clock, args[0], 0);
    if (!stats.ok()) return fail(stats.status());
    std::printf("recover: %zu chunks scanned, %zu files, %llu header bytes "
                "read\n", stats->chunks_scanned, stats->files_recovered,
                static_cast<unsigned long long>(stats->header_bytes_read));
    return 0;
  }

  return Usage();
}

}  // namespace
}  // namespace diesel::tools

int main(int argc, char** argv) { return diesel::tools::Main(argc, argv); }
