#include "core/server.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/chunk_format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calibration.h"

namespace diesel::core {
namespace {

constexpr uint64_t kRpcOverheadBytes = 96;

sim::DeviceSpec ServerServiceSpec(sim::NodeId node) {
  // Bounded per-server capacity: 8 executor threads, ~30us per request.
  // One server therefore caps near ~267k metadata QPS; the Fig. 10a curves
  // (1/3/5 servers) come from this ceiling and the KV tier's ~1M ceiling.
  return {.name = "diesel-server" + std::to_string(node) + "/svc",
          .channels = 8, .latency = Micros(30), .bytes_per_sec = 6.0e9};
}

}  // namespace

std::string ChunkObjectKey(std::string_view dataset, const ChunkId& id) {
  return ChunkObjectPrefix(dataset) + id.Encoded();
}

std::string ChunkObjectPrefix(std::string_view dataset) {
  return "O/" + std::string(dataset) + "/";
}

DieselServer::DieselServer(net::Fabric& fabric, kv::KvCluster& kvstore,
                           ostore::ObjectStore& store, ServerOptions options)
    : fabric_(fabric), meta_(kvstore, options.node), store_(store),
      options_(options), service_(ServerServiceSpec(options.node)) {
  service_.BindMetrics("n" + std::to_string(options_.node));
}

Nanos DieselServer::IngestChunkAt(Nanos arrival, const std::string& dataset,
                                  BytesView chunk, Status& out_status) {
  static obs::Counter& ingests =
      obs::Metrics().GetCounter("core.chunk.ingests");
  static obs::Counter& ingest_bytes =
      obs::Metrics().GetCounter("core.chunk.ingest_bytes");
  static obs::Counter& parse_failures =
      obs::Metrics().GetCounter("core.chunk.parse_failures");
  sim::VirtualClock srv(service_.Serve(arrival, chunk.size()));
  obs::ScopedSpan span(fabric_.tracer(), "server.ingest_chunk", srv,
                       options_.node);

  Result<ChunkView> view = ChunkView::Parse(chunk);
  if (!view.ok()) {
    parse_failures.Inc();
    span.Note("chunk.parse_failed: " + view.status().message());
    out_status = view.status();
    return srv.now();
  }
  ingests.Inc();
  ingest_bytes.Inc(chunk.size());

  // Blob to object storage.
  std::string key = ChunkObjectKey(dataset, view->id());
  out_status = store_.Put(srv, options_.node, key, chunk);
  if (!out_status.ok()) return srv.now();

  // Header -> key-value records.
  std::vector<FileMeta> files;
  files.reserve(view->entries().size());
  uint32_t index = 0;
  for (const ChunkFileEntry& e : view->entries()) {
    FileMeta fm;
    fm.chunk = view->id();
    fm.offset = e.offset;
    fm.length = e.length;
    fm.crc = e.crc;
    fm.index_in_chunk = index++;
    fm.full_name = e.name;
    files.push_back(std::move(fm));
  }
  ChunkMeta cm;
  cm.update_ts_ns = view->create_ts_ns();
  cm.size = chunk.size();
  cm.header_len = view->header_len();
  cm.num_files = static_cast<uint32_t>(view->entries().size());
  cm.num_deleted = 0;
  cm.deletion_bitmap.assign((view->entries().size() + 7) / 8, 0);
  out_status = meta_.AddChunk(srv, dataset, view->id(), cm, files);
  if (!out_status.ok()) return srv.now();

  // Dataset record read-modify-write, serialized across concurrent ingests.
  {
    std::lock_guard<std::mutex> lock(dataset_meta_mutex_);
    DatasetMeta dm;
    Result<DatasetMeta> cur = meta_.GetDataset(srv, dataset);
    if (cur.ok()) dm = cur.value();
    dm.update_ts_ns = std::max(dm.update_ts_ns, view->create_ts_ns());
    dm.num_chunks += 1;
    dm.num_files += files.size();
    dm.total_bytes += chunk.size();
    out_status = meta_.PutDataset(srv, dataset, dm);
  }
  return srv.now();
}

Status DieselServer::IngestChunk(sim::VirtualClock& clock, sim::NodeId client,
                                 const std::string& dataset, BytesView chunk) {
  Status op_status;
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, chunk.size() + kRpcOverheadBytes,
      kRpcOverheadBytes, [&](Nanos arrival) {
        return IngestChunkAt(arrival, dataset, chunk, op_status);
      }));
  return op_status;
}

Result<Nanos> DieselServer::IngestChunkAsync(sim::VirtualClock& clock,
                                             sim::NodeId client,
                                             const std::string& dataset,
                                             BytesView chunk) {
  Status op_status;
  Nanos durable_at = 0;
  DIESEL_RETURN_IF_ERROR(fabric_.Send(
      clock, client, options_.node, chunk.size() + kRpcOverheadBytes,
      [&](Nanos delivered) {
        durable_at = IngestChunkAt(delivered, dataset, chunk, op_status);
      }));
  DIESEL_RETURN_IF_ERROR(op_status);
  return durable_at;
}

Result<Bytes> DieselServer::ReadFile(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& dataset,
                                     const std::string& path) {
  std::vector<std::string> one{path};
  DIESEL_ASSIGN_OR_RETURN(std::vector<Bytes> r,
                          ReadFiles(clock, client, dataset, one));
  return std::move(r.front());
}

Result<std::vector<Bytes>> DieselServer::ReadFiles(
    sim::VirtualClock& clock, sim::NodeId client, const std::string& dataset,
    std::span<const std::string> paths) {
  static obs::Counter& file_reads =
      obs::Metrics().GetCounter("core.file.reads");
  static obs::Counter& file_read_bytes =
      obs::Metrics().GetCounter("core.file.read_bytes");
  Result<std::vector<Bytes>> result = Status::Internal("unset");
  uint64_t req_bytes = kRpcOverheadBytes;
  for (const auto& p : paths) req_bytes += p.size();

  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, req_bytes, kRpcOverheadBytes,
      [&](Nanos arrival) {
        sim::VirtualClock srv(
            service_.Serve(arrival, 0,
                           sim::kServerExecutorCost * paths.size()));
        obs::ScopedSpan span(fabric_.tracer(), "server.read_files", srv,
                             options_.node);
        span.Note("files=" + std::to_string(paths.size()));

        // 1. Metadata lookups, batched per KV shard (pipelined MGET).
        std::vector<std::string> keys;
        keys.reserve(paths.size());
        for (const std::string& p : paths) keys.push_back(FileKey(dataset, p));
        Result<std::vector<std::optional<std::string>>> raw =
            meta_.kvstore().MGet(srv, options_.node, keys);
        if (!raw.ok()) {
          result = raw.status();
          return srv.now();
        }
        std::vector<FileMeta> metas(paths.size());
        for (size_t i = 0; i < paths.size(); ++i) {
          if (!(*raw)[i].has_value()) {
            result = Status::NotFound("no such file: " + paths[i]);
            return srv.now();
          }
          Result<FileMeta> fm =
              FileMeta::Deserialize(AsBytesView((*raw)[i].value()));
          if (!fm.ok()) {
            result = fm.status();
            return srv.now();
          }
          metas[i] = std::move(fm).value();
        }

        // 2. Sort request indices by (chunk, offset) and merge adjacent
        //    ranges into chunk-wise reads.
        std::vector<size_t> order(paths.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          if (metas[a].chunk != metas[b].chunk)
            return metas[a].chunk < metas[b].chunk;
          return metas[a].offset < metas[b].offset;
        });

        std::vector<Bytes> contents(paths.size());
        size_t i = 0;
        while (i < order.size()) {
          // Grow a merged range [lo, hi) within one chunk.
          const ChunkId& chunk = metas[order[i]].chunk;
          uint64_t lo = metas[order[i]].offset;
          uint64_t hi = lo + metas[order[i]].length;
          size_t j = i + 1;
          while (j < order.size() && metas[order[j]].chunk == chunk) {
            uint64_t b = metas[order[j]].offset;
            uint64_t e = b + metas[order[j]].length;
            if (b > hi + options_.merge_gap_bytes) break;
            hi = std::max(hi, e);
            ++j;
          }
          // File offsets are payload-relative; shift by the header length
          // from the chunk record to address the stored object.
          Result<ChunkMeta> cm = meta_.GetChunk(srv, dataset, chunk);
          if (!cm.ok()) {
            result = cm.status();
            return srv.now();
          }
          Result<Bytes> range =
              store_.GetRange(srv, options_.node,
                              ChunkObjectKey(dataset, chunk),
                              cm.value().header_len + lo, hi - lo);
          if (!range.ok()) {
            result = range.status();
            return srv.now();
          }
          for (size_t k = i; k < j; ++k) {
            const FileMeta& fm = metas[order[k]];
            contents[order[k]].assign(
                range.value().begin() +
                    static_cast<ptrdiff_t>(fm.offset - lo),
                range.value().begin() +
                    static_cast<ptrdiff_t>(fm.offset - lo + fm.length));
          }
          i = j;
        }
        file_reads.Inc(paths.size());
        uint64_t total = 0;
        for (const Bytes& b : contents) total += b.size();
        file_read_bytes.Inc(total);
        result = std::move(contents);
        return srv.now();
      }));
  // Response payload (file bytes) crosses the client NIC.
  if (result.ok()) {
    uint64_t resp = 0;
    for (const Bytes& b : result.value()) resp += b.size();
    if (resp > 0) {
      Nanos t = fabric_.cluster().node(client).nic().Serve(clock.now(), resp);
      clock.AdvanceTo(t);
    }
  }
  return result;
}

Result<Bytes> DieselServer::ReadChunk(sim::VirtualClock& clock,
                                      sim::NodeId client,
                                      const std::string& dataset,
                                      const ChunkId& id) {
  static obs::Counter& chunk_reads =
      obs::Metrics().GetCounter("core.chunk.reads");
  static obs::Counter& chunk_read_bytes =
      obs::Metrics().GetCounter("core.chunk.read_bytes");
  Result<Bytes> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, kRpcOverheadBytes, kRpcOverheadBytes,
      [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        obs::ScopedSpan span(fabric_.tracer(), "server.read_chunk", srv,
                             options_.node);
        result = store_.Get(srv, options_.node, ChunkObjectKey(dataset, id));
        if (result.ok()) {
          chunk_reads.Inc();
          chunk_read_bytes.Inc(result.value().size());
          // Response chunk crosses both NICs; approximate with a charge on
          // the server NIC here; the client-side charge happens in Call's
          // response leg via resp_bytes=0 (kept small) so add it explicitly.
        }
        return srv.now();
      }));
  if (result.ok() && !result.value().empty()) {
    Nanos t = fabric_.cluster().node(client).nic().Serve(
        clock.now(), result.value().size());
    clock.AdvanceTo(t);
  }
  return result;
}

Result<std::vector<Bytes>> DieselServer::ReadChunks(
    sim::VirtualClock& clock, sim::NodeId client, const std::string& dataset,
    std::span<const ChunkId> ids, size_t fetch_streams) {
  static obs::Counter& chunk_reads =
      obs::Metrics().GetCounter("core.chunk.reads");
  static obs::Counter& chunk_read_bytes =
      obs::Metrics().GetCounter("core.chunk.read_bytes");
  if (ids.empty()) return std::vector<Bytes>{};
  std::vector<Result<Bytes>> blobs(ids.size(), Status::Internal("unset"));
  std::vector<Nanos> ready(ids.size(), Nanos{0});
  DIESEL_RETURN_IF_ERROR(fabric_.CallBatch(
      clock, client, options_.node, ids.size(),
      kRpcOverheadBytes * ids.size(), kRpcOverheadBytes, [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        obs::ScopedSpan span(fabric_.tracer(), "server.read_chunks", srv,
                             options_.node);
        span.Note("k=" + std::to_string(ids.size()));
        // Pull the blobs on parallel store streams: the earliest-finishing
        // stream picks up the next chunk, so backend parallelism matches the
        // same number of unbatched calls from that many client streams.
        const size_t streams = std::max<size_t>(1, fetch_streams);
        std::vector<sim::VirtualClock> clocks(std::min(streams, ids.size()),
                                              sim::VirtualClock(srv.now()));
        for (size_t i = 0; i < ids.size(); ++i) {
          size_t s = 0;
          for (size_t k = 1; k < clocks.size(); ++k) {
            if (clocks[k].now() < clocks[s].now()) s = k;
          }
          blobs[i] = store_.Get(clocks[s], options_.node,
                                ChunkObjectKey(dataset, ids[i]));
          ready[i] = clocks[s].now();
          if (blobs[i].ok()) {
            chunk_reads.Inc();
            chunk_read_bytes.Inc(blobs[i].value().size());
          }
        }
        Nanos done = arrival;
        for (const auto& c : clocks) done = std::max(done, c.now());
        return done;
      }));
  // The response is streamed: chunk i's bytes start crossing the client NIC
  // as soon as its store read finishes rather than after the whole batch is
  // assembled, so disk reads and transfers pipeline exactly as they would
  // from the same number of unbatched per-chunk calls. The NIC device
  // serializes overlapping serves on its own timeline.
  std::vector<Bytes> out;
  out.reserve(ids.size());
  Nanos t = clock.now();
  for (size_t i = 0; i < blobs.size(); ++i) {
    Result<Bytes>& b = blobs[i];
    DIESEL_RETURN_IF_ERROR(b.status());
    if (!b.value().empty()) {
      t = std::max(t, fabric_.cluster().node(client).nic().Serve(
                          ready[i], b.value().size()));
    }
    out.push_back(std::move(b.value()));
  }
  clock.AdvanceTo(t);
  return out;
}

Result<FileMeta> DieselServer::StatFile(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& dataset,
                                        const std::string& path) {
  Result<FileMeta> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, path.size() + kRpcOverheadBytes,
      kRpcOverheadBytes, [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        result = meta_.GetFile(srv, dataset, path);
        return srv.now();
      }));
  return result;
}

Result<std::vector<DirEntry>> DieselServer::ListDir(sim::VirtualClock& clock,
                                                    sim::NodeId client,
                                                    const std::string& dataset,
                                                    const std::string& dir) {
  Result<std::vector<DirEntry>> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, dir.size() + kRpcOverheadBytes,
      kRpcOverheadBytes, [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        result = meta_.ListDir(srv, dataset, dir);
        return srv.now();
      }));
  return result;
}

Result<DatasetMeta> DieselServer::GetDatasetMeta(sim::VirtualClock& clock,
                                                 sim::NodeId client,
                                                 const std::string& dataset) {
  Result<DatasetMeta> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, kRpcOverheadBytes, kRpcOverheadBytes,
      [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        result = meta_.GetDataset(srv, dataset);
        return srv.now();
      }));
  return result;
}

Result<MetadataSnapshot> DieselServer::BuildSnapshot(
    sim::VirtualClock& clock, sim::NodeId client, const std::string& dataset) {
  Result<MetadataSnapshot> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, kRpcOverheadBytes, kRpcOverheadBytes,
      [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        Result<DatasetMeta> dm = meta_.GetDataset(srv, dataset);
        if (!dm.ok()) {
          result = dm.status();
          return srv.now();
        }
        Result<std::vector<ChunkId>> chunks = meta_.ListChunks(srv, dataset);
        if (!chunks.ok()) {
          result = chunks.status();
          return srv.now();
        }
        // All file records of the dataset.
        Result<std::vector<kv::ScanEntry>> entries = meta_.kvstore().PScan(
            srv, options_.node, "F/" + dataset + "/");
        if (!entries.ok()) {
          result = entries.status();
          return srv.now();
        }
        std::vector<FileMeta> files;
        files.reserve(entries.value().size());
        for (const auto& e : entries.value()) {
          if (e.value.empty()) continue;  // directory marker
          Result<FileMeta> fm = FileMeta::Deserialize(AsBytesView(e.value));
          if (!fm.ok()) {
            result = fm.status();
            return srv.now();
          }
          files.push_back(std::move(fm).value());
        }
        result = MetadataSnapshot::Create(dataset, dm.value().update_ts_ns,
                                          std::move(chunks).value(),
                                          std::move(files));
        return srv.now();
      }));
  if (result.ok()) {
    // Snapshot bytes stream back to the client.
    Nanos t = fabric_.cluster().node(client).nic().Serve(
        clock.now(), result.value().num_files() * 48);
    clock.AdvanceTo(t);
  }
  return result;
}

Status DieselServer::DeleteFile(sim::VirtualClock& clock, sim::NodeId client,
                                const std::string& dataset,
                                const std::string& path) {
  Status op_status;
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, path.size() + kRpcOverheadBytes,
      kRpcOverheadBytes, [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        op_status = meta_.DeleteFile(srv, dataset, path);
        return srv.now();
      }));
  return op_status;
}

Status DieselServer::DeleteDataset(sim::VirtualClock& clock,
                                   sim::NodeId client,
                                   const std::string& dataset) {
  Status op_status;
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.node, kRpcOverheadBytes, kRpcOverheadBytes,
      [&](Nanos arrival) {
        sim::VirtualClock srv(service_.Serve(arrival, 0));
        Result<std::vector<ChunkId>> chunks =
            meta_.DeleteDataset(srv, dataset);
        if (!chunks.ok()) {
          op_status = chunks.status();
          return srv.now();
        }
        for (const ChunkId& id : chunks.value()) {
          (void)store_.Delete(srv, options_.node,
                              ChunkObjectKey(dataset, id));
        }
        op_status = Status::Ok();
        return srv.now();
      }));
  return op_status;
}

Result<Nanos> DieselServer::PrefetchDataset(sim::VirtualClock& clock,
                                            const std::string& dataset,
                                            size_t streams) {
  DIESEL_ASSIGN_OR_RETURN(std::vector<ChunkId> chunks,
                          meta_.ListChunks(clock, dataset));
  streams = std::max<size_t>(1, streams);
  std::vector<sim::VirtualClock> clocks(streams,
                                        sim::VirtualClock(clock.now()));
  for (const ChunkId& id : chunks) {
    size_t s = 0;
    for (size_t k = 1; k < streams; ++k) {
      if (clocks[k].now() < clocks[s].now()) s = k;
    }
    // A whole-object read promotes the chunk into the fast tier when the
    // store is tiered; on a flat store this is a no-op warm read.
    DIESEL_ASSIGN_OR_RETURN(
        Bytes blob,
        store_.Get(clocks[s], options_.node, ChunkObjectKey(dataset, id)));
    (void)blob;
  }
  Nanos end = clock.now();
  for (const auto& c : clocks) end = std::max(end, c.now());
  return end;
}

Result<RecoveryStats> DieselServer::RecoverMetadata(sim::VirtualClock& clock,
                                                    const std::string& dataset,
                                                    uint32_t from_ts_sec) {
  RecoveryStats stats;
  const RetryPolicy& rp = options_.recovery_retry;
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<std::string> keys,
      rp.RunResult<std::vector<std::string>>(clock, [&] {
        return store_.List(clock, options_.node, ChunkObjectPrefix(dataset));
      }));
  // Keys are lexicographically sorted == chunk write order (base64lex).
  DatasetMeta dm;
  size_t prefix = ChunkObjectPrefix(dataset).size();
  for (const std::string& key : keys) {
    DIESEL_ASSIGN_OR_RETURN(ChunkId id,
                            ChunkId::FromEncoded(key.substr(prefix)));
    if (from_ts_sec != 0 && id.timestamp_sec() < from_ts_sec) continue;
    // Header-only read: peek the header length, then fetch just the header.
    DIESEL_ASSIGN_OR_RETURN(Bytes first12,
                            rp.RunResult<Bytes>(clock, [&] {
                              return store_.GetRange(clock, options_.node,
                                                     key, 0, 12);
                            }));
    DIESEL_ASSIGN_OR_RETURN(uint32_t header_len,
                            ChunkView::PeekHeaderLen(first12));
    DIESEL_ASSIGN_OR_RETURN(Bytes header,
                            rp.RunResult<Bytes>(clock, [&] {
                              return store_.GetRange(clock, options_.node,
                                                     key, 0, header_len);
                            }));
    stats.header_bytes_read += header_len + 12;
    DIESEL_ASSIGN_OR_RETURN(ChunkView view, ChunkView::ParseHeaderOnly(header));

    std::vector<FileMeta> files;
    files.reserve(view.entries().size());
    uint32_t index = 0;
    for (const ChunkFileEntry& e : view.entries()) {
      if (view.IsDeleted(index)) {
        ++index;
        continue;
      }
      FileMeta fm;
      fm.chunk = view.id();
      fm.offset = e.offset;
      fm.length = e.length;
      fm.crc = e.crc;
      fm.index_in_chunk = index++;
      fm.full_name = e.name;
      files.push_back(std::move(fm));
    }
    ChunkMeta cm;
    cm.update_ts_ns = view.create_ts_ns();
    DIESEL_ASSIGN_OR_RETURN(uint64_t blob_size,
                            rp.RunResult<uint64_t>(clock, [&] {
                              return store_.Size(clock, options_.node, key);
                            }));
    cm.size = blob_size;
    cm.header_len = view.header_len();
    cm.num_files = static_cast<uint32_t>(view.entries().size());
    cm.num_deleted = view.num_deleted();
    cm.deletion_bitmap = view.deletion_bitmap();
    DIESEL_RETURN_IF_ERROR(meta_.AddChunk(clock, dataset, view.id(), cm, files));

    dm.update_ts_ns = std::max(dm.update_ts_ns, view.create_ts_ns());
    dm.num_chunks += 1;
    dm.num_files += files.size();
    dm.total_bytes += blob_size;
    stats.chunks_scanned += 1;
    stats.files_recovered += files.size();
  }
  if (from_ts_sec == 0) {
    DIESEL_RETURN_IF_ERROR(meta_.PutDataset(clock, dataset, dm));
  } else {
    // Partial recovery: merge counters into the existing record if any.
    std::lock_guard<std::mutex> lock(dataset_meta_mutex_);
    Result<DatasetMeta> cur = meta_.GetDataset(clock, dataset);
    DatasetMeta merged = cur.ok() ? cur.value() : DatasetMeta{};
    merged.update_ts_ns = std::max(merged.update_ts_ns, dm.update_ts_ns);
    // Recovered chunks may or may not already be counted; recompute from
    // the authoritative chunk list to stay exact.
    Result<std::vector<ChunkId>> all = meta_.ListChunks(clock, dataset);
    if (all.ok()) merged.num_chunks = all.value().size();
    DIESEL_RETURN_IF_ERROR(meta_.PutDataset(clock, dataset, merged));
  }
  return stats;
}

}  // namespace diesel::core
