#include "core/chunk_format.h"

#include <algorithm>

#include "common/crc32.h"

namespace diesel::core {

uint64_t ChunkBuilder::Add(std::string name, BytesView content) {
  uint64_t offset = payload_.size();
  // Reserve the whole chunk target (or a doubling past it) the first time
  // capacity runs out, so filling a 4MB chunk file-by-file never re-copies
  // the accumulated payload.
  size_t needed = payload_.size() + content.size();
  if (payload_.capacity() < needed) {
    payload_.reserve(std::max({needed, static_cast<size_t>(target_),
                               payload_.capacity() * 2}));
  }
  name_bytes_ += name.size();
  entries_.push_back({std::move(name), offset, content.size(),
                      Crc32c(content)});
  payload_.insert(payload_.end(), content.begin(), content.end());
  return offset;
}

uint64_t ChunkBuilder::SerializedHeaderBytes() const {
  // magic + version + header_len (12) | chunk id (16) | create_ts (8) |
  // num_files + num_deleted (8) | bitmap | per entry: u32 name length +
  // name + offset/length/crc (20) | header crc (4).
  return 48 + (entries_.size() + 7) / 8 + name_bytes_ + 24 * entries_.size();
}

Bytes ChunkBuilder::Finish(const ChunkId& id, uint64_t create_ts_ns) {
  // Exact output size from the running totals: one allocation, no growth.
  BinaryWriter w(SerializedHeaderBytes() + payload_.size());
  w.PutU32(kChunkMagic);
  w.PutU32(kChunkVersion);
  size_t header_len_pos = w.size();
  w.PutU32(0);  // header_len, patched below
  w.PutRaw(id.bytes().data(), ChunkId::kSize);
  w.PutU64(create_ts_ns);
  w.PutU32(static_cast<uint32_t>(entries_.size()));
  w.PutU32(0);  // num_deleted: fresh chunks have no deletions
  size_t bitmap_bytes = (entries_.size() + 7) / 8;
  for (size_t i = 0; i < bitmap_bytes; ++i) w.PutU8(0);
  for (const ChunkFileEntry& e : entries_) {
    w.PutString(e.name);
    w.PutU64(e.offset);
    w.PutU64(e.length);
    w.PutU32(e.crc);
  }
  // Header CRC covers everything before it.
  uint32_t crc = Crc32c({w.data().data(), w.size()});
  w.PutU32(crc);
  uint32_t header_len = static_cast<uint32_t>(w.size());
  w.PatchU32(header_len_pos, header_len);
  // Note: header_crc was computed before header_len was patched; the parser
  // re-zeroes the field identically, so verification stays consistent.
  w.PutRaw(payload_.data(), payload_.size());

  entries_.clear();
  payload_.clear();
  payload_.shrink_to_fit();  // don't pin a chunk-sized buffer on idle builders
  name_bytes_ = 0;
  return std::move(w).Take();
}

namespace {

// The header CRC is computed with the header_len field zeroed (the builder
// patches it afterwards); mirror that when verifying.
uint32_t HeaderCrcOf(BytesView header_sans_crc) {
  constexpr size_t kHeaderLenOffset = 8;
  uint32_t crc = Crc32c(header_sans_crc.subspan(0, kHeaderLenOffset));
  const uint8_t zeros[4] = {0, 0, 0, 0};
  crc = Crc32c({zeros, 4}, crc);
  crc = Crc32c(header_sans_crc.subspan(kHeaderLenOffset + 4), crc);
  return crc;
}

}  // namespace

Result<ChunkView> ChunkView::ParseInternal(BytesView data,
                                           bool require_payload) {
  BinaryReader r(data);
  DIESEL_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kChunkMagic) return Status::Corruption("chunk: bad magic");
  DIESEL_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kChunkVersion)
    return Status::Corruption("chunk: unsupported version");
  DIESEL_ASSIGN_OR_RETURN(uint32_t header_len, r.ReadU32());
  if (header_len < 12 || header_len > data.size())
    return Status::Corruption("chunk: header length out of bounds");

  ChunkView view;
  view.chunk_ = data;
  view.has_payload_ = require_payload;
  view.header_len_ = header_len;

  DIESEL_ASSIGN_OR_RETURN(BytesView id_bytes, r.ReadRaw(ChunkId::kSize));
  std::copy(id_bytes.begin(), id_bytes.end(),
            view.id_.mutable_bytes().begin());
  DIESEL_ASSIGN_OR_RETURN(view.create_ts_ns_, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(uint32_t num_files, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(view.num_deleted_, r.ReadU32());
  size_t bitmap_bytes = (static_cast<size_t>(num_files) + 7) / 8;
  DIESEL_ASSIGN_OR_RETURN(BytesView bitmap, r.ReadRaw(bitmap_bytes));
  view.bitmap_.assign(bitmap.begin(), bitmap.end());

  view.entries_.reserve(num_files);
  for (uint32_t i = 0; i < num_files; ++i) {
    ChunkFileEntry e;
    DIESEL_ASSIGN_OR_RETURN(e.name, r.ReadString());
    DIESEL_ASSIGN_OR_RETURN(e.offset, r.ReadU64());
    DIESEL_ASSIGN_OR_RETURN(e.length, r.ReadU64());
    DIESEL_ASSIGN_OR_RETURN(e.crc, r.ReadU32());
    view.entries_.push_back(std::move(e));
  }
  DIESEL_ASSIGN_OR_RETURN(uint32_t stored_crc, r.ReadU32());
  if (r.pos() != header_len)
    return Status::Corruption("chunk: header length mismatch");
  uint32_t computed = HeaderCrcOf(data.subspan(0, header_len - 4));
  if (computed != stored_crc)
    return Status::Corruption("chunk: header checksum mismatch");

  if (require_payload) {
    uint64_t payload_size = data.size() - header_len;
    for (const auto& e : view.entries_) {
      if (e.offset + e.length > payload_size)
        return Status::Corruption("chunk: file range past payload end");
    }
  }
  return view;
}

Result<ChunkView> ChunkView::Parse(BytesView chunk) {
  return ParseInternal(chunk, /*require_payload=*/true);
}

Result<ChunkView> ChunkView::ParseHeaderOnly(BytesView header_prefix) {
  return ParseInternal(header_prefix, /*require_payload=*/false);
}

Result<uint32_t> ChunkView::PeekHeaderLen(BytesView first12) {
  BinaryReader r(first12);
  DIESEL_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kChunkMagic) return Status::Corruption("chunk: bad magic");
  DIESEL_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kChunkVersion)
    return Status::Corruption("chunk: unsupported version");
  return r.ReadU32();
}

bool ChunkView::IsDeleted(size_t file_index) const {
  if (file_index >= entries_.size()) return false;
  return (bitmap_[file_index / 8] >> (file_index % 8)) & 1;
}

Result<Bytes> ChunkView::ExtractFile(size_t index) const {
  if (!has_payload_)
    return Status::FailedPrecondition("chunk: header-only view has no payload");
  if (index >= entries_.size())
    return Status::OutOfRange("chunk: file index out of range");
  const ChunkFileEntry& e = entries_[index];
  BytesView payload = chunk_.subspan(header_len_);
  BytesView content = payload.subspan(e.offset, e.length);
  if (Crc32c(content) != e.crc)
    return Status::Corruption("chunk: file content checksum mismatch: " +
                              e.name);
  return Bytes(content.begin(), content.end());
}

const ChunkFileEntry* ChunkView::FindEntry(std::string_view name) const {
  // Lazily build a name-sorted index on the first lookup: parsing stays
  // index-free (recovery scans parse thousands of headers and never call
  // FindEntry), while repeated lookups pay O(log n) instead of a linear
  // scan over the file table. Lazy init is not synchronized — a ChunkView
  // is a value type; don't share one instance across threads.
  if (name_index_.size() != entries_.size()) {
    name_index_.resize(entries_.size());
    for (uint32_t i = 0; i < name_index_.size(); ++i) name_index_[i] = i;
    std::sort(name_index_.begin(), name_index_.end(),
              [this](uint32_t a, uint32_t b) {
                return entries_[a].name < entries_[b].name;
              });
  }
  auto it = std::lower_bound(
      name_index_.begin(), name_index_.end(), name,
      [this](uint32_t idx, std::string_view key) {
        return entries_[idx].name < key;
      });
  if (it == name_index_.end() || entries_[*it].name != name) return nullptr;
  return &entries_[*it];
}

Result<Bytes> CompactChunk(BytesView chunk, const std::vector<uint8_t>& bitmap,
                           const ChunkId& new_id, uint64_t create_ts_ns) {
  DIESEL_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Parse(chunk));
  if (bitmap.size() < (view.entries().size() + 7) / 8)
    return Status::InvalidArgument("compact: bitmap too small");
  ChunkBuilder builder(/*target=*/0);
  for (size_t i = 0; i < view.entries().size(); ++i) {
    bool deleted = (bitmap[i / 8] >> (i % 8)) & 1;
    if (deleted) continue;
    DIESEL_ASSIGN_OR_RETURN(Bytes content, view.ExtractFile(i));
    builder.Add(view.entries()[i].name, content);
  }
  return builder.Finish(new_id, create_ts_ns);
}

}  // namespace diesel::core
