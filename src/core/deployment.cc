#include "core/deployment.h"

#include "sim/calibration.h"

namespace diesel::core {

Deployment::Deployment(DeploymentOptions options) : options_(options) {
  size_t total_nodes = options_.num_client_nodes + 1 + options_.num_kv_nodes +
                       options_.num_servers + 1;  // +1: etcd node
  cluster_ = std::make_unique<sim::Cluster>(total_nodes);
  fabric_ = std::make_unique<net::Fabric>(*cluster_);
  // Per-node NIC/membus telemetry is cheap at bench scale but would mint
  // thousands of series on a 512-node rescale fleet; cap it. Service devices
  // (servers, KV shards, stores) are few and always bound.
  if (total_nodes <= kMaxNodesForDeviceMetrics) cluster_->BindDeviceMetrics();

  kv::KvClusterOptions kv_opts;
  for (size_t i = 0; i < options_.num_kv_nodes; ++i) {
    kv_opts.nodes.push_back(kv_node(i));
  }
  kv_opts.shards_per_node = options_.kv_shards_per_node;
  kv_ = std::make_unique<kv::KvCluster>(*fabric_, kv_opts);

  backing_ = std::make_unique<ostore::MemStore>();
  ssd_ = std::make_unique<ostore::ModeledStore>(
      *fabric_, storage_node(), sim::SsdClusterSpec(),
      sim::SsdClusterWriteSpec(), backing_.get());
  if (options_.tiered_store) {
    hdd_backing_ = std::make_unique<ostore::MemStore>();
    hdd_ = std::make_unique<ostore::ModeledStore>(
        *fabric_, storage_node(), sim::HddClusterSpec(), hdd_backing_.get());
    tiered_ = std::make_unique<ostore::TieredStore>(ssd_.get(), hdd_.get(),
                                                    options_.ssd_cache_bytes);
    store_ = tiered_.get();
  } else {
    store_ = ssd_.get();
  }

  for (size_t i = 0; i < options_.num_servers; ++i) {
    ServerOptions so;
    so.node = server_node(i);
    servers_.push_back(
        std::make_unique<DieselServer>(*fabric_, *kv_, *store_, so));
  }

  // Config service: every server advertises itself (Fig. 2 control plane).
  config_ = std::make_unique<etcd::ConfigStore>(*fabric_, etcd_node());
  sim::VirtualClock boot;
  for (size_t i = 0; i < options_.num_servers; ++i) {
    auto rev = config_->Put(
        boot, server_node(i), etcd::ServerKey(static_cast<uint32_t>(i)),
        etcd::ServerValue(server_node(i), "diesel-server"));
    if (!rev.ok()) std::abort();  // boot-time registration cannot fail
  }
}

Result<std::unique_ptr<DieselClient>> Deployment::MakeClientViaDiscovery(
    sim::VirtualClock& clock, size_t node_index, uint32_t client_index,
    const std::string& dataset) {
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<etcd::ConfigEntry> entries,
      config_->List(clock, client_node(node_index), "/diesel/servers/"));
  if (entries.empty())
    return Status::Unavailable("no DIESEL servers registered");
  std::vector<DieselServer*> discovered;
  for (const etcd::ConfigEntry& e : entries) {
    DIESEL_ASSIGN_OR_RETURN(sim::NodeId node,
                            etcd::ParseServerNode(e.value));
    for (auto& s : servers_) {
      if (s->node() == node) discovered.push_back(s.get());
    }
  }
  if (discovered.empty())
    return Status::Unavailable("registered servers not reachable");
  ClientOptions co;
  co.dataset = dataset;
  co.node = client_node(node_index);
  co.client_index = client_index;
  return std::make_unique<DieselClient>(*fabric_, std::move(discovered), co);
}

void Deployment::ResetDevices() {
  cluster_->ResetDevices();
  kv_->ResetDevices();
  ssd_->device().Reset();
  ssd_->write_device().Reset();
  if (hdd_) {
    hdd_->device().Reset();
    hdd_->write_device().Reset();
  }
  for (auto& s : servers_) s->service().Reset();
}

std::vector<DieselServer*> Deployment::server_ptrs() {
  std::vector<DieselServer*> out;
  out.reserve(servers_.size());
  for (auto& s : servers_) out.push_back(s.get());
  return out;
}

std::unique_ptr<DieselClient> Deployment::MakeClient(size_t node_index,
                                                     uint32_t client_index,
                                                     const std::string& dataset,
                                                     uint64_t chunk_bytes) {
  ClientOptions co;
  co.dataset = dataset;
  co.node = client_node(node_index);
  co.client_index = client_index;
  co.chunk_target_bytes = chunk_bytes;
  return std::make_unique<DieselClient>(*fabric_, server_ptrs(), co);
}

}  // namespace diesel::core
