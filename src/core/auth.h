// Connect-time authentication and dataset access control.
//
// Table 3's DL_connect takes (user, key, dataset, server address). This
// module implements the control-plane side: credentials and per-dataset
// grants live in the ETCD-like config service, and servers validate a
// connect request before a client session is established. Secrets are never
// stored raw — only salted FNV-based digests (good enough for a simulation;
// a production build would use a real KDF).
#pragma once

#include <string>

#include "common/status.h"
#include "etcd/config_store.h"

namespace diesel::core {

class AuthRegistry {
 public:
  /// `config` must outlive the registry; `admin_node` issues the RPCs.
  AuthRegistry(etcd::ConfigStore& config, sim::NodeId admin_node)
      : config_(config), admin_node_(admin_node) {}

  /// Register a user with a secret access key. AlreadyExists on duplicates.
  Status CreateUser(sim::VirtualClock& clock, const std::string& user,
                    const std::string& access_key);

  /// Grant `user` access to `dataset`.
  Status GrantDataset(sim::VirtualClock& clock, const std::string& user,
                      const std::string& dataset);

  Status RevokeDataset(sim::VirtualClock& clock, const std::string& user,
                       const std::string& dataset);

  /// DL_connect check: credentials valid AND the dataset is granted.
  /// NotFound for unknown users, FailedPrecondition for bad keys or
  /// missing grants (indistinguishable errors would be kinder to attackers;
  /// a simulation prefers debuggability).
  Status Authenticate(sim::VirtualClock& clock, sim::NodeId client,
                      const std::string& user, const std::string& access_key,
                      const std::string& dataset);

 private:
  static std::string KeyDigest(const std::string& user,
                               const std::string& access_key);
  static std::string UserKey(const std::string& user);
  static std::string GrantKey(const std::string& user,
                              const std::string& dataset);

  etcd::ConfigStore& config_;
  sim::NodeId admin_node_;
};

}  // namespace diesel::core
