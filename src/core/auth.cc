#include "core/auth.h"

#include <cstdio>

#include "common/hash.h"

namespace diesel::core {

std::string AuthRegistry::KeyDigest(const std::string& user,
                                    const std::string& access_key) {
  // Salted digest: the user name is the salt, mixed twice.
  uint64_t h = Fnv1a64(access_key, Fnv1a64(user));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Mix64(h)));
  return buf;
}

std::string AuthRegistry::UserKey(const std::string& user) {
  return "/diesel/users/" + user;
}

std::string AuthRegistry::GrantKey(const std::string& user,
                                   const std::string& dataset) {
  return "/diesel/acl/" + dataset + "/" + user;
}

Status AuthRegistry::CreateUser(sim::VirtualClock& clock,
                                const std::string& user,
                                const std::string& access_key) {
  if (user.empty() || access_key.empty())
    return Status::InvalidArgument("user and access key must be non-empty");
  // CAS-create so two admins can't race the same name.
  auto rev = config_.CompareAndSwap(clock, admin_node_, UserKey(user),
                                    KeyDigest(user, access_key),
                                    /*expected_revision=*/0);
  if (!rev.ok() && rev.status().code() == StatusCode::kFailedPrecondition)
    return Status::AlreadyExists("user exists: " + user);
  return rev.status();
}

Status AuthRegistry::GrantDataset(sim::VirtualClock& clock,
                                  const std::string& user,
                                  const std::string& dataset) {
  auto existing = config_.Get(clock, admin_node_, UserKey(user));
  if (!existing.ok()) return Status::NotFound("no such user: " + user);
  return config_.Put(clock, admin_node_, GrantKey(user, dataset), "rw")
      .status();
}

Status AuthRegistry::RevokeDataset(sim::VirtualClock& clock,
                                   const std::string& user,
                                   const std::string& dataset) {
  return config_.Delete(clock, admin_node_, GrantKey(user, dataset)).status();
}

Status AuthRegistry::Authenticate(sim::VirtualClock& clock, sim::NodeId client,
                                  const std::string& user,
                                  const std::string& access_key,
                                  const std::string& dataset) {
  auto stored = config_.Get(clock, client, UserKey(user));
  if (!stored.ok()) return Status::NotFound("no such user: " + user);
  if (stored->value != KeyDigest(user, access_key))
    return Status::FailedPrecondition("bad access key for user " + user);
  auto grant = config_.Get(clock, client, GrantKey(user, dataset));
  if (!grant.ok())
    return Status::FailedPrecondition("user " + user +
                                      " has no grant on dataset " + dataset);
  return Status::Ok();
}

}  // namespace diesel::core
