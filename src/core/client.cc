#include "core/client.h"

#include <cassert>

#include "obs/metrics.h"
#include "sim/calibration.h"

namespace diesel::core {

DieselClient::DieselClient(net::Fabric& fabric,
                           std::vector<DieselServer*> servers,
                           ClientOptions options)
    : fabric_(fabric), servers_(std::move(servers)),
      options_(std::move(options)),
      builder_(options_.chunk_target_bytes),
      // Machine identity = simulated node, process id = client index; both
      // offset by one so the very first chunk ID is never all-zero.
      id_gen_(options_.node + 1, options_.client_index + 1) {
  assert(!servers_.empty());
  // Register a connection to each server endpoint (DL_connect).
  for (DieselServer* s : servers_) {
    fabric_.connections().Connect(endpoint(), {s->node(), 0});
  }
}

DieselServer* DieselClient::PickServer() {
  // Round-robin over servers whose node is currently reachable; when every
  // server looks up this degenerates to the plain rotation. If all look
  // down, return the next in rotation anyway and let the RPC fail (the
  // retry policy may ride out a flap).
  const size_t n = servers_.size();
  for (size_t i = 0; i < n; ++i) {
    DieselServer* s = servers_[(next_server_ + i) % n];
    if (fabric_.NodeAvailable(s->node(), clock_.now())) {
      if (i > 0) {
        static obs::Counter& failovers =
            obs::Metrics().GetCounter("core.client.failovers");
        failovers.Inc();
        ++stats_.server_failovers;
      }
      next_server_ += i + 1;
      return s;
    }
  }
  DieselServer* s = servers_[next_server_ % n];
  ++next_server_;
  return s;
}

Status DieselClient::Put(const std::string& path, BytesView content) {
  builder_.Add(path, content);
  ++stats_.files_written;
  if (builder_.Full()) return Flush();
  return Status::Ok();
}

Status DieselClient::Replace(const std::string& path, BytesView content) {
  Status st = WithServerRetryStatus([&](DieselServer& s) {
    return s.DeleteFile(clock_, options_.node, options_.dataset, path);
  });
  if (!st.ok() && !st.IsNotFound()) return st;
  if (st.ok() && snapshot_) snapshot_.reset();  // dataset moved on
  DIESEL_RETURN_IF_ERROR(Put(path, content));
  // The old version is gone from metadata immediately; make the new one
  // visible too rather than leaving it buffered indefinitely.
  return Flush();
}

Status DieselClient::Flush() {
  if (builder_.Empty()) return Status::Ok();
  uint32_t ts_sec = static_cast<uint32_t>(clock_.now() / 1000000000ULL);
  ChunkId id = id_gen_.Next(ts_sec);
  Bytes chunk = builder_.Finish(id, clock_.now());
  ++stats_.chunks_flushed;
  // Write-behind: DL_flush returns once the local buffer is on the wire;
  // durability time is tracked for callers that need the write makespan.
  DIESEL_ASSIGN_OR_RETURN(
      Nanos durable, WithServerRetry<Nanos>([&](DieselServer& s) {
        return s.IngestChunkAsync(clock_, options_.node, options_.dataset,
                                  chunk);
      }));
  stats_.last_ingest_durable_ns =
      std::max(stats_.last_ingest_durable_ns, durable);
  return Status::Ok();
}

Result<FileMeta> DieselClient::ResolveMeta(const std::string& path) {
  if (snapshot_) {
    clock_.Advance(sim::kSnapshotLookupCost);
    ++stats_.local_metadata_hits;
    const FileMeta* fm = snapshot_->Lookup(path);
    if (fm == nullptr) return Status::NotFound("no such file: " + path);
    return *fm;
  }
  ++stats_.server_metadata_ops;
  return WithServerRetry<FileMeta>([&](DieselServer& s) {
    return s.StatFile(clock_, options_.node, options_.dataset, path);
  });
}

Result<Bytes> DieselClient::Get(const std::string& path) {
  if (cache_ != nullptr) {
    DIESEL_ASSIGN_OR_RETURN(FileMeta meta, ResolveMeta(path));
    DIESEL_ASSIGN_OR_RETURN(Bytes content, cache_->GetFile(clock_, meta));
    ++stats_.files_read;
    stats_.bytes_read += content.size();
    return content;
  }
  DIESEL_ASSIGN_OR_RETURN(Bytes content,
                          WithServerRetry<Bytes>([&](DieselServer& s) {
                            return s.ReadFile(clock_, options_.node,
                                              options_.dataset, path);
                          }));
  ++stats_.files_read;
  stats_.bytes_read += content.size();
  return content;
}

Result<std::vector<Bytes>> DatasetCacheInterface::GetFiles(
    sim::VirtualClock& clock, std::span<const FileMeta> metas) {
  std::vector<Bytes> out;
  out.reserve(metas.size());
  for (const FileMeta& meta : metas) {
    DIESEL_ASSIGN_OR_RETURN(Bytes b, GetFile(clock, meta));
    out.push_back(std::move(b));
  }
  return out;
}

Result<std::vector<Bytes>> DieselClient::GetBatch(
    std::span<const std::string> paths) {
  if (cache_ != nullptr) {
    // Resolve every path locally first, then hand the cache the whole batch
    // so it can coalesce per-owner multi-gets into single RPCs.
    std::vector<FileMeta> metas;
    metas.reserve(paths.size());
    for (const std::string& p : paths) {
      DIESEL_ASSIGN_OR_RETURN(FileMeta meta, ResolveMeta(p));
      metas.push_back(std::move(meta));
    }
    DIESEL_ASSIGN_OR_RETURN(std::vector<Bytes> out,
                            cache_->GetFiles(clock_, metas));
    for (const Bytes& b : out) {
      ++stats_.files_read;
      stats_.bytes_read += b.size();
    }
    return out;
  }
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<Bytes> out,
      WithServerRetry<std::vector<Bytes>>([&](DieselServer& s) {
        return s.ReadFiles(clock_, options_.node, options_.dataset, paths);
      }));
  for (const Bytes& b : out) {
    ++stats_.files_read;
    stats_.bytes_read += b.size();
  }
  return out;
}

Result<FileMeta> DieselClient::Stat(const std::string& path) {
  return ResolveMeta(path);
}

Result<std::vector<DirEntry>> DieselClient::List(const std::string& dir_path) {
  if (snapshot_) {
    clock_.Advance(sim::kSnapshotLookupCost);
    ++stats_.local_metadata_hits;
    return snapshot_->ListDir(dir_path);
  }
  ++stats_.server_metadata_ops;
  return WithServerRetry<std::vector<DirEntry>>([&](DieselServer& s) {
    return s.ListDir(clock_, options_.node, options_.dataset, dir_path);
  });
}

Status DieselClient::Delete(const std::string& path) {
  // Deletion invalidates any loaded snapshot (dataset timestamp moves).
  Status st = WithServerRetryStatus([&](DieselServer& s) {
    return s.DeleteFile(clock_, options_.node, options_.dataset, path);
  });
  if (st.ok() && snapshot_) snapshot_.reset();
  return st;
}

Status DieselClient::FetchSnapshot() {
  DIESEL_ASSIGN_OR_RETURN(
      MetadataSnapshot snap,
      WithServerRetry<MetadataSnapshot>([&](DieselServer& s) {
        return s.BuildSnapshot(clock_, options_.node, options_.dataset);
      }));
  snapshot_ = std::move(snap);
  return Status::Ok();
}

Status DieselClient::SaveMeta(ostore::ObjectStore& local_disk,
                              const std::string& key) {
  if (!snapshot_)
    return Status::FailedPrecondition("no snapshot installed; FetchSnapshot first");
  Bytes data = snapshot_->Serialize();
  return local_disk.Put(clock_, options_.node, key, data);
}

Status DieselClient::LoadMeta(ostore::ObjectStore& local_disk,
                              const std::string& key) {
  DIESEL_ASSIGN_OR_RETURN(Bytes data,
                          local_disk.Get(clock_, options_.node, key));
  DIESEL_ASSIGN_OR_RETURN(MetadataSnapshot snap,
                          MetadataSnapshot::Deserialize(data));
  if (snap.dataset() != options_.dataset)
    return Status::InvalidArgument("snapshot is for dataset '" +
                                   snap.dataset() + "'");
  // Freshness check against the KV record (§4.1.3).
  DIESEL_ASSIGN_OR_RETURN(
      DatasetMeta current,
      WithServerRetry<DatasetMeta>([&](DieselServer& s) {
        return s.GetDatasetMeta(clock_, options_.node, options_.dataset);
      }));
  if (!snap.IsUpToDate(current))
    return Status::Stale("snapshot timestamp does not match dataset; "
                         "download a new snapshot");
  snapshot_ = std::move(snap);
  return Status::Ok();
}

void DieselClient::Close() {
  snapshot_.reset();
  cache_ = nullptr;
  for (DieselServer* s : servers_) {
    fabric_.connections().Disconnect(endpoint(), {s->node(), 0});
  }
}

}  // namespace diesel::core
