// Per-dataset metadata snapshot (§4.1.3).
//
// A compact, immutable materialization of one dataset's metadata: the
// dataset update timestamp, the chunk ID list, and per-file records
// (chunk, offset, length, full name). Clients download it once, load it
// into an in-memory open-addressing hash map, and serve every subsequent
// metadata operation locally in O(1) — bypassing the metadata servers
// entirely, which is what makes metadata QPS scale linearly with client
// count (Fig. 10b). The filesystem hierarchy is reconstructed from the full
// file names at load time.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/flat_hash_map.h"
#include "common/status.h"
#include "core/metadata.h"

namespace diesel::core {

class MetadataSnapshot {
 public:
  MetadataSnapshot() = default;

  /// Build from in-memory records (server side). `files` keep their
  /// index_in_chunk; chunk list must be in write (ID) order.
  static MetadataSnapshot Create(std::string dataset, uint64_t update_ts_ns,
                                 std::vector<ChunkId> chunks,
                                 std::vector<FileMeta> files);

  Bytes Serialize() const;
  static Result<MetadataSnapshot> Deserialize(BytesView data);

  const std::string& dataset() const { return dataset_; }
  uint64_t update_ts_ns() const { return update_ts_ns_; }
  const std::vector<ChunkId>& chunks() const { return chunks_; }
  size_t num_files() const { return files_.size(); }
  const std::vector<FileMeta>& files() const { return files_; }

  /// True when this snapshot matches the dataset's current KV record;
  /// a stale snapshot must be re-downloaded (§4.1.3).
  bool IsUpToDate(const DatasetMeta& current) const {
    return update_ts_ns_ == current.update_ts_ns;
  }

  /// O(1) point lookup by full path; nullptr when absent.
  const FileMeta* Lookup(std::string_view path) const;

  /// readdir from the reconstructed hierarchy.
  Result<std::vector<DirEntry>> ListDir(std::string_view dir_path) const;
  bool HasDir(std::string_view dir_path) const;

  /// Index of a chunk ID within chunks(); SIZE_MAX if unknown.
  size_t ChunkIndex(const ChunkId& id) const;

  /// File indices (into files()) stored in the given chunk, offset order.
  const std::vector<uint32_t>& FilesOfChunk(size_t chunk_index) const;

 private:
  void BuildIndexes();

  std::string dataset_;
  uint64_t update_ts_ns_ = 0;
  std::vector<ChunkId> chunks_;
  std::vector<FileMeta> files_;

  // Derived (rebuilt on load, not serialized):
  FlatHashMap<std::string, uint32_t> path_index_;
  FlatHashMap<std::string, uint32_t> chunk_index_;   // encoded id -> index
  std::vector<std::vector<uint32_t>> files_by_chunk_;
  std::map<std::string, std::vector<DirEntry>> tree_;  // dir -> children
};

}  // namespace diesel::core
