#include "core/snapshot.h"

#include <algorithm>
#include <set>

namespace diesel::core {
namespace {

constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

MetadataSnapshot MetadataSnapshot::Create(std::string dataset,
                                          uint64_t update_ts_ns,
                                          std::vector<ChunkId> chunks,
                                          std::vector<FileMeta> files) {
  MetadataSnapshot snap;
  snap.dataset_ = std::move(dataset);
  snap.update_ts_ns_ = update_ts_ns;
  snap.chunks_ = std::move(chunks);
  snap.files_ = std::move(files);
  snap.BuildIndexes();
  return snap;
}

Bytes MetadataSnapshot::Serialize() const {
  BinaryWriter w(64 + chunks_.size() * ChunkId::kSize + files_.size() * 64);
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutString(dataset_);
  w.PutU64(update_ts_ns_);
  w.PutU32(static_cast<uint32_t>(chunks_.size()));
  for (const ChunkId& id : chunks_) {
    w.PutRaw(id.bytes().data(), ChunkId::kSize);
  }
  w.PutU32(static_cast<uint32_t>(files_.size()));
  for (const FileMeta& f : files_) {
    // Reference chunks by index (4 bytes instead of 16) to keep snapshots
    // small — the paper stresses small snapshot size for fast download.
    size_t ci = ChunkIndex(f.chunk);
    w.PutU32(static_cast<uint32_t>(ci));
    w.PutU64(f.offset);
    w.PutU64(f.length);
    w.PutU32(f.crc);
    w.PutU32(f.index_in_chunk);
    w.PutString(f.full_name);
  }
  return std::move(w).Take();
}

Result<MetadataSnapshot> MetadataSnapshot::Deserialize(BytesView data) {
  BinaryReader r(data);
  DIESEL_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kSnapshotMagic) return Status::Corruption("snapshot: bad magic");
  DIESEL_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kSnapshotVersion)
    return Status::Corruption("snapshot: unsupported version");

  MetadataSnapshot snap;
  DIESEL_ASSIGN_OR_RETURN(snap.dataset_, r.ReadString());
  DIESEL_ASSIGN_OR_RETURN(snap.update_ts_ns_, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(uint32_t num_chunks, r.ReadU32());
  snap.chunks_.resize(num_chunks);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    DIESEL_ASSIGN_OR_RETURN(BytesView idb, r.ReadRaw(ChunkId::kSize));
    std::copy(idb.begin(), idb.end(), snap.chunks_[i].mutable_bytes().begin());
  }
  DIESEL_ASSIGN_OR_RETURN(uint32_t num_files, r.ReadU32());
  snap.files_.reserve(num_files);
  for (uint32_t i = 0; i < num_files; ++i) {
    FileMeta f;
    DIESEL_ASSIGN_OR_RETURN(uint32_t ci, r.ReadU32());
    if (ci >= snap.chunks_.size())
      return Status::Corruption("snapshot: chunk index out of range");
    f.chunk = snap.chunks_[ci];
    DIESEL_ASSIGN_OR_RETURN(f.offset, r.ReadU64());
    DIESEL_ASSIGN_OR_RETURN(f.length, r.ReadU64());
    DIESEL_ASSIGN_OR_RETURN(f.crc, r.ReadU32());
    DIESEL_ASSIGN_OR_RETURN(f.index_in_chunk, r.ReadU32());
    DIESEL_ASSIGN_OR_RETURN(f.full_name, r.ReadString());
    snap.files_.push_back(std::move(f));
  }
  if (!r.AtEnd()) return Status::Corruption("snapshot: trailing bytes");
  snap.BuildIndexes();
  return snap;
}

void MetadataSnapshot::BuildIndexes() {
  path_index_.clear();
  chunk_index_.clear();
  files_by_chunk_.assign(chunks_.size(), {});
  tree_.clear();

  path_index_.reserve(files_.size());
  chunk_index_.reserve(chunks_.size());
  for (uint32_t i = 0; i < chunks_.size(); ++i) {
    chunk_index_.InsertOrAssign(chunks_[i].Encoded(), i);
  }

  std::set<std::string> dirs_seen;
  for (uint32_t i = 0; i < files_.size(); ++i) {
    const FileMeta& f = files_[i];
    path_index_.InsertOrAssign(f.full_name, i);
    size_t ci = ChunkIndex(f.chunk);
    if (ci != static_cast<size_t>(-1)) files_by_chunk_[ci].push_back(i);
    // Hierarchy: register the file and each new ancestor directory.
    tree_[ParentPath(f.full_name)].push_back({BaseName(f.full_name), false});
    for (std::string dir = ParentPath(f.full_name); dir != "/";
         dir = ParentPath(dir)) {
      if (!dirs_seen.insert(dir).second) break;
      tree_[ParentPath(dir)].push_back({BaseName(dir), true});
    }
  }
  // Deterministic listing order: directories first, then files, each sorted.
  for (auto& [dir, children] : tree_) {
    std::sort(children.begin(), children.end(),
              [](const DirEntry& a, const DirEntry& b) {
                if (a.is_dir != b.is_dir) return a.is_dir;
                return a.name < b.name;
              });
  }
  // Files within a chunk in offset order (chunk-group shuffle depends on it).
  for (auto& list : files_by_chunk_) {
    std::sort(list.begin(), list.end(), [this](uint32_t a, uint32_t b) {
      return files_[a].offset < files_[b].offset;
    });
  }
}

const FileMeta* MetadataSnapshot::Lookup(std::string_view path) const {
  const uint32_t* idx = path_index_.Find(std::string(path));
  return idx ? &files_[*idx] : nullptr;
}

Result<std::vector<DirEntry>> MetadataSnapshot::ListDir(
    std::string_view dir_path) const {
  auto it = tree_.find(std::string(dir_path));
  if (it == tree_.end()) {
    if (dir_path == "/") return std::vector<DirEntry>{};
    return Status::NotFound("no such directory: " + std::string(dir_path));
  }
  return it->second;
}

bool MetadataSnapshot::HasDir(std::string_view dir_path) const {
  return dir_path == "/" || tree_.count(std::string(dir_path)) > 0;
}

size_t MetadataSnapshot::ChunkIndex(const ChunkId& id) const {
  const uint32_t* idx = chunk_index_.Find(id.Encoded());
  return idx ? *idx : static_cast<size_t>(-1);
}

const std::vector<uint32_t>& MetadataSnapshot::FilesOfChunk(
    size_t chunk_index) const {
  static const std::vector<uint32_t> kEmpty;
  if (chunk_index >= files_by_chunk_.size()) return kEmpty;
  return files_by_chunk_[chunk_index];
}

}  // namespace diesel::core
