// DIESEL server (Fig. 2, Fig. 3, Fig. 4).
//
// Sits between clients and the underlying systems: it hides the key-value
// metadata tier and the chunk object-store behind one interface, extracts
// metadata from self-contained chunk headers on ingest, executes read
// requests by sorting/merging small file requests into chunk-wise range
// reads, materializes metadata snapshots, and rebuilds the KV tier from
// chunk headers after metadata loss (§4.1.2 scenarios a and b).
//
// Each server instance runs on one simulated node with a bounded service
// capacity — deploying more servers scales the metadata plane until the KV
// tier's ceiling is reached (Fig. 10a).
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "core/metadata.h"
#include "core/snapshot.h"
#include "kv/cluster.h"
#include "net/fabric.h"
#include "ostore/object_store.h"
#include "sim/device.h"

namespace diesel::core {

struct ServerOptions {
  sim::NodeId node = 0;
  /// Merge adjacent file ranges within a chunk when the gap is at most this
  /// many bytes (request executor).
  uint64_t merge_gap_bytes = 64 * 1024;
  /// Retry for the object-store reads RecoverMetadata drives (List /
  /// GetRange / Size). Recovery typically runs while the cluster is still
  /// unhealthy, so a transient drop must not abort the whole redrive.
  RetryPolicy recovery_retry;
};

struct RecoveryStats {
  size_t chunks_scanned = 0;
  size_t files_recovered = 0;
  uint64_t header_bytes_read = 0;
};

/// Object-store key of a chunk blob.
std::string ChunkObjectKey(std::string_view dataset, const ChunkId& id);
std::string ChunkObjectPrefix(std::string_view dataset);

class DieselServer {
 public:
  DieselServer(net::Fabric& fabric, kv::KvCluster& kvstore,
               ostore::ObjectStore& store, ServerOptions options);

  sim::NodeId node() const { return options_.node; }
  net::Fabric& fabric() { return fabric_; }
  MetadataService& metadata() { return meta_; }
  ostore::ObjectStore& store() { return store_; }
  sim::Device& service() { return service_; }

  // All client-facing calls pay: client->server RPC + server service time +
  // whatever backend work the op needs, and advance the caller's clock.

  /// Store one serialized chunk under `dataset` (write flow, Fig. 3):
  /// blob to object storage, header-extracted key-value pairs to the KV tier.
  /// Synchronous: the caller's clock advances to full durability.
  Status IngestChunk(sim::VirtualClock& clock, sim::NodeId client,
                     const std::string& dataset, BytesView chunk);

  /// Write-behind ingest (DL_flush semantics: "flush local buffer"): the
  /// caller's clock advances only past the network send; server-side work is
  /// charged to the shared devices and the returned value is the virtual
  /// time at which the chunk became fully durable.
  Result<Nanos> IngestChunkAsync(sim::VirtualClock& clock, sim::NodeId client,
                                 const std::string& dataset, BytesView chunk);

  /// Read one file (metadata lookup + chunk range read).
  Result<Bytes> ReadFile(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& dataset, const std::string& path);

  /// Request executor: read a batch of files, sorted and merged into
  /// chunk-wise range reads (§4 "sorts and merges small file requests").
  /// Results are returned in input order.
  Result<std::vector<Bytes>> ReadFiles(sim::VirtualClock& clock,
                                       sim::NodeId client,
                                       const std::string& dataset,
                                       std::span<const std::string> paths);

  /// Fetch one whole chunk (task-grained cache loading path).
  Result<Bytes> ReadChunk(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& dataset, const ChunkId& id);

  /// Fetch several whole chunks in ONE coalesced RPC (shuffle group windows,
  /// preload bursts). The request goes out as a Fabric::CallBatch — the
  /// per-RPC overhead is paid once for the batch — and the server pulls the
  /// blobs from the store on `fetch_streams` parallel service streams, so
  /// the backend parallelism matches `ids.size()` unbatched calls issued
  /// from that many client streams. Results are in input order; a missing
  /// chunk fails the whole call, like the per-chunk path would.
  Result<std::vector<Bytes>> ReadChunks(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& dataset,
                                        std::span<const ChunkId> ids,
                                        size_t fetch_streams = 8);

  Result<FileMeta> StatFile(sim::VirtualClock& clock, sim::NodeId client,
                            const std::string& dataset,
                            const std::string& path);

  Result<std::vector<DirEntry>> ListDir(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& dataset,
                                        const std::string& dir_path);

  Result<DatasetMeta> GetDatasetMeta(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& dataset);

  /// Materialize the dataset's metadata snapshot (download path, Fig. 2).
  Result<MetadataSnapshot> BuildSnapshot(sim::VirtualClock& clock,
                                         sim::NodeId client,
                                         const std::string& dataset);

  Status DeleteFile(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& dataset, const std::string& path);

  Status DeleteDataset(sim::VirtualClock& clock, sim::NodeId client,
                       const std::string& dataset);

  /// Server cache warming (Fig. 4): "if a cache miss occurs on the
  /// server-side, the server will start to cache the dataset in the
  /// background" — pull every chunk of `dataset` through the (tiered) store
  /// with `streams` parallel fetches so subsequent reads hit the fast tier.
  /// Returns the virtual time the warm-up finished. Runs server-side.
  Result<Nanos> PrefetchDataset(sim::VirtualClock& clock,
                                const std::string& dataset,
                                size_t streams = 8);

  /// Rebuild KV metadata by scanning chunk headers from object storage in
  /// write order. `from_ts_sec == 0` scans everything (scenario b: total KV
  /// loss); otherwise only chunks stamped at or after the watermark
  /// (scenario a: recent keys lost). Runs on the server, not via client RPC.
  Result<RecoveryStats> RecoverMetadata(sim::VirtualClock& clock,
                                        const std::string& dataset,
                                        uint32_t from_ts_sec);

 private:
  /// Server-side ingest work; runs at `arrival`, returns completion time.
  Nanos IngestChunkAt(Nanos arrival, const std::string& dataset,
                      BytesView chunk, Status& out_status);

  net::Fabric& fabric_;
  MetadataService meta_;
  ostore::ObjectStore& store_;
  ServerOptions options_;
  sim::Device service_;
  std::mutex dataset_meta_mutex_;  // serialize read-modify-write of D/<ds>
};

}  // namespace diesel::core
