#include "core/chunk_id.h"

#include "common/base64lex.h"

namespace diesel::core {
namespace {

// Big-endian field packing/unpacking helpers.
void PackBE(uint8_t* dst, uint64_t value, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<uint8_t>(value >> (8 * (n - 1 - i)));
  }
}

uint64_t UnpackBE(const uint8_t* src, size_t n) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) v = (v << 8) | src[i];
  return v;
}

}  // namespace

ChunkId ChunkId::Make(uint32_t timestamp_sec, uint64_t machine, uint32_t pid,
                      uint32_t counter) {
  ChunkId id;
  PackBE(id.bytes_.data() + 0, timestamp_sec, 4);
  PackBE(id.bytes_.data() + 4, machine & 0xFFFFFFFFFFFFULL, 6);
  PackBE(id.bytes_.data() + 10, pid & 0xFFFFFFu, 3);
  PackBE(id.bytes_.data() + 13, counter & 0xFFFFFFu, 3);
  return id;
}

uint32_t ChunkId::timestamp_sec() const {
  return static_cast<uint32_t>(UnpackBE(bytes_.data(), 4));
}
uint64_t ChunkId::machine() const { return UnpackBE(bytes_.data() + 4, 6); }
uint32_t ChunkId::process_id() const {
  return static_cast<uint32_t>(UnpackBE(bytes_.data() + 10, 3));
}
uint32_t ChunkId::counter() const {
  return static_cast<uint32_t>(UnpackBE(bytes_.data() + 13, 3));
}

std::string ChunkId::Encoded() const {
  return Base64LexEncode({bytes_.data(), bytes_.size()});
}

Result<ChunkId> ChunkId::FromEncoded(std::string_view text) {
  if (text.size() != kEncodedSize)
    return Status::InvalidArgument("chunk id: wrong encoded length");
  DIESEL_ASSIGN_OR_RETURN(Bytes raw, Base64LexDecode(text));
  if (raw.size() != kSize)
    return Status::InvalidArgument("chunk id: wrong decoded length");
  ChunkId id;
  std::copy(raw.begin(), raw.end(), id.bytes_.begin());
  return id;
}

bool ChunkId::IsZero() const {
  for (uint8_t b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace diesel::core
