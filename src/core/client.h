// libDIESEL client (paper Table 3, §5).
//
// One DieselClient corresponds to one I/O process of a training task. It
// implements the write path (client-side aggregation of small files into
// >= 4MB chunks, Fig. 3), the read path (Fig. 4: task-grained cache ->
// server -> storage), and the metadata path (local snapshot, O(1) lookups).
//
// API mapping to Table 3:
//   DL_connect    -> constructor
//   DL_put        -> Put()            DL_flush   -> Flush()
//   DL_get        -> Get()            DL_stat    -> Stat()
//   DL_delete     -> Delete()         DL_ls      -> List()
//   DL_save_meta  -> SaveMeta()       DL_load_meta -> LoadMeta()
//   DL_shuffle    -> handled by shuffle::ShufflePlan over snapshot();
//                    EnableShuffle() wires the plan's group cache in
//   DL_close      -> Close()
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "core/chunk_format.h"
#include "core/server.h"
#include "core/snapshot.h"
#include "net/fabric.h"
#include "ostore/object_store.h"

namespace diesel::core {

/// Read-side delegate: the task-grained distributed cache (cache module)
/// implements this; when attached, Get() routes through it (Fig. 4).
class DatasetCacheInterface {
 public:
  virtual ~DatasetCacheInterface() = default;
  virtual Result<Bytes> GetFile(sim::VirtualClock& clock,
                                const FileMeta& meta) = 0;
  /// Batched read. The default loops GetFile; the task cache overrides it to
  /// coalesce the files into one multi-get RPC per owner node, amortizing
  /// the per-RPC overhead across the batch. Results are in input order.
  virtual Result<std::vector<Bytes>> GetFiles(sim::VirtualClock& clock,
                                              std::span<const FileMeta> metas);
};

struct ClientOptions {
  std::string user = "anon";
  std::string access_key;
  std::string dataset;
  sim::NodeId node = 0;
  uint32_t client_index = 0;  // endpoint index on the node (rank tiebreak)
  uint64_t chunk_target_bytes = kDefaultChunkTarget;
  /// Retry policy for server RPCs; every attempt re-picks a server, so a
  /// flapped server fails over to its peers instead of failing the op.
  RetryPolicy retry;
};

struct ClientStats {
  uint64_t local_metadata_hits = 0;   // served from the loaded snapshot
  uint64_t server_metadata_ops = 0;
  uint64_t files_written = 0;
  uint64_t chunks_flushed = 0;
  uint64_t files_read = 0;
  uint64_t bytes_read = 0;
  /// Requests steered away from a server whose node looked down.
  uint64_t server_failovers = 0;
  /// Virtual time at which the last flushed chunk became durable server-side
  /// (write-behind: the client clock does not wait for this).
  Nanos last_ingest_durable_ns = 0;
};

class DieselClient {
 public:
  /// DL_connect. `servers` must be non-empty and outlive the client;
  /// requests round-robin across them.
  DieselClient(net::Fabric& fabric, std::vector<DieselServer*> servers,
               ClientOptions options);

  sim::VirtualClock& clock() { return clock_; }
  const ClientOptions& options() const { return options_; }
  const ClientStats& stats() const { return stats_; }
  net::EndpointId endpoint() const {
    return {options_.node, options_.client_index};
  }
  const std::string& dataset() const { return options_.dataset; }

  // ---- write path ----------------------------------------------------------

  /// DL_put: append a file to the current in-flight chunk; flushes
  /// automatically when the chunk reaches the target size.
  ///
  /// Write-phase semantics: Put assumes `path` is fresh. To modify an
  /// existing file use Replace() — per §4.1.1 DIESEL modifies "by first
  /// deleting the old file and then writing a new file"; a bare Put over an
  /// existing path would leave the old copy unaccounted in its chunk.
  Status Put(const std::string& path, BytesView content);

  /// Modify an existing file: tombstone the old version (so purge can
  /// reclaim it) and write the new content. Works for fresh paths too.
  Status Replace(const std::string& path, BytesView content);

  /// DL_flush: push any partially-filled chunk to a server.
  Status Flush();

  // ---- read path -----------------------------------------------------------

  /// DL_get. Resolution order (Fig. 4): metadata via snapshot if loaded;
  /// content via attached task cache, else via server.
  Result<Bytes> Get(const std::string& path);

  /// Batched get (the FUSE layer and DLT loaders read mini-batches).
  Result<std::vector<Bytes>> GetBatch(std::span<const std::string> paths);

  // ---- metadata path -------------------------------------------------------

  /// DL_stat.
  Result<FileMeta> Stat(const std::string& path);

  /// DL_ls.
  Result<std::vector<DirEntry>> List(const std::string& dir_path);

  /// DL_delete.
  Status Delete(const std::string& path);

  /// Download + install the dataset snapshot straight from a server.
  Status FetchSnapshot();

  /// DL_save_meta: persist the installed snapshot to `local_disk`.
  Status SaveMeta(ostore::ObjectStore& local_disk, const std::string& key);

  /// DL_load_meta: load a snapshot from `local_disk`; verifies dataset name
  /// and update timestamp against the KV record and fails Stale on mismatch
  /// (§4.1.3 "users need to download a new metadata snapshot").
  Status LoadMeta(ostore::ObjectStore& local_disk, const std::string& key);

  const MetadataSnapshot* snapshot() const {
    return snapshot_ ? &*snapshot_ : nullptr;
  }

  /// Attach/detach the task-grained distributed cache (cache module).
  void AttachCache(DatasetCacheInterface* cache) { cache_ = cache; }
  DatasetCacheInterface* cache() { return cache_; }

  /// DL_close: drop snapshot and cache attachment.
  void Close();

  DieselServer* PickServer();

 private:
  Result<FileMeta> ResolveMeta(const std::string& path);

  /// Drive `fn(server)` under the retry policy, re-picking the server on
  /// every attempt so transient faults fail over across the server set.
  template <typename T, typename Fn>
  Result<T> WithServerRetry(Fn&& fn) {
    return options_.retry.RunResult<T>(
        clock_, [&]() -> Result<T> { return fn(*PickServer()); });
  }
  template <typename Fn>
  Status WithServerRetryStatus(Fn&& fn) {
    return options_.retry.Run(clock_,
                              [&]() -> Status { return fn(*PickServer()); });
  }

  net::Fabric& fabric_;
  std::vector<DieselServer*> servers_;
  ClientOptions options_;
  sim::VirtualClock clock_;
  ClientStats stats_;

  ChunkBuilder builder_;
  ChunkIdGenerator id_gen_;

  std::optional<MetadataSnapshot> snapshot_;
  DatasetCacheInterface* cache_ = nullptr;
  size_t next_server_ = 0;
};

}  // namespace diesel::core
