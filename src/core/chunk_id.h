// Chunk identifiers (paper Table 1).
//
// 16 bytes: | timestamp (4, seconds) | machine id (6, MAC) | process id (3) |
//           | counter (3) |
// Fields are big-endian so raw byte order equals write order; the printable
// form uses order-preserving base64 (base64lex), so sorting encoded IDs in an
// object store also yields write order — the property the metadata recovery
// scan relies on (§4.1.2). Each process can mint 2^24 ≈ 16.7M IDs per second.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace diesel::core {

class ChunkId {
 public:
  static constexpr size_t kSize = 16;
  static constexpr size_t kEncodedSize = 22;  // ceil(16 * 4 / 3)

  ChunkId() = default;

  /// Assemble from fields. machine uses its low 48 bits, pid and counter
  /// their low 24 bits.
  static ChunkId Make(uint32_t timestamp_sec, uint64_t machine, uint32_t pid,
                      uint32_t counter);

  uint32_t timestamp_sec() const;
  uint64_t machine() const;
  uint32_t process_id() const;
  uint32_t counter() const;

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  std::array<uint8_t, kSize>& mutable_bytes() { return bytes_; }

  /// Printable, order-preserving form (22 chars).
  std::string Encoded() const;
  static Result<ChunkId> FromEncoded(std::string_view text);

  bool IsZero() const;

  friend auto operator<=>(const ChunkId&, const ChunkId&) = default;

 private:
  std::array<uint8_t, kSize> bytes_{};
};

/// Mints monotonically increasing chunk IDs for one (machine, process).
/// Thread-compatible: callers on multiple threads must hold their own
/// generator (mirrors the per-process counter in the paper).
class ChunkIdGenerator {
 public:
  ChunkIdGenerator(uint64_t machine, uint32_t pid)
      : machine_(machine), pid_(pid) {}

  /// Next ID stamped with `timestamp_sec`. The counter increments across
  /// calls and wraps at 2^24.
  ChunkId Next(uint32_t timestamp_sec) {
    return ChunkId::Make(timestamp_sec, machine_, pid_, counter_++);
  }

 private:
  uint64_t machine_;
  uint32_t pid_;
  uint32_t counter_ = 0;
};

}  // namespace diesel::core
