// Housekeeping functions (§4.1.1, §5): merge/compact chunks with holes left
// by file modification and deletion (DL_purge).
#pragma once

#include <string>

#include "common/status.h"
#include "core/server.h"

namespace diesel::core {

struct PurgeStats {
  size_t chunks_compacted = 0;
  size_t files_dropped = 0;
  uint64_t bytes_reclaimed = 0;
};

/// Rewrite every chunk of `dataset` that has deleted files: surviving files
/// are packed into a fresh chunk (new ID), file records are repointed, the
/// old chunk record and blob are removed, and the dataset record updated.
/// Runs on the server (admin operation).
Result<PurgeStats> PurgeDataset(sim::VirtualClock& clock, DieselServer& server,
                                const std::string& dataset);

struct MergeStats {
  size_t chunks_merged = 0;     // input chunks consumed
  size_t chunks_created = 0;    // output chunks written
  uint64_t bytes_rewritten = 0;
};

/// Coalesce undersized chunks (payload below `min_chunk_bytes`, e.g. after
/// purge or trickle writes) into fresh >= min-sized chunks so reads keep
/// their large-block efficiency (§4.1.1 "house-keeping functions to merge
/// chunks"). Chunks at or above the threshold are untouched.
Result<MergeStats> MergeSmallChunks(sim::VirtualClock& clock,
                                    DieselServer& server,
                                    const std::string& dataset,
                                    uint64_t min_chunk_bytes);

struct ScrubStats {
  size_t chunks_checked = 0;
  size_t files_checked = 0;
  size_t corrupt_chunks = 0;   // header damage (magic/CRC/bounds)
  size_t corrupt_files = 0;    // payload CRC mismatches
  std::vector<std::string> corrupt_keys;  // object keys needing repair
};

/// Integrity scrub: re-read every chunk of `dataset`, verify the header
/// checksum and every file's payload CRC32C, and report what is damaged.
/// Read-only — repair is the operator's decision (re-ingest or restore).
Result<ScrubStats> ScrubDataset(sim::VirtualClock& clock, DieselServer& server,
                                const std::string& dataset);

}  // namespace diesel::core
