#include "core/metadata.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/hash.h"

namespace diesel::core {

// ---- codecs ----------------------------------------------------------------

Bytes FileMeta::Serialize() const {
  BinaryWriter w(48 + full_name.size());
  w.PutRaw(chunk.bytes().data(), ChunkId::kSize);
  w.PutU64(offset);
  w.PutU64(length);
  w.PutU32(crc);
  w.PutU32(index_in_chunk);
  w.PutString(full_name);
  return std::move(w).Take();
}

Result<FileMeta> FileMeta::Deserialize(BytesView data) {
  BinaryReader r(data);
  FileMeta m;
  DIESEL_ASSIGN_OR_RETURN(BytesView idb, r.ReadRaw(ChunkId::kSize));
  std::copy(idb.begin(), idb.end(), m.chunk.mutable_bytes().begin());
  DIESEL_ASSIGN_OR_RETURN(m.offset, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.length, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.crc, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(m.index_in_chunk, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(m.full_name, r.ReadString());
  return m;
}

Bytes ChunkMeta::Serialize() const {
  BinaryWriter w(32 + deletion_bitmap.size());
  w.PutU64(update_ts_ns);
  w.PutU64(size);
  w.PutU32(header_len);
  w.PutU32(num_files);
  w.PutU32(num_deleted);
  w.PutBytes(deletion_bitmap);
  return std::move(w).Take();
}

Result<ChunkMeta> ChunkMeta::Deserialize(BytesView data) {
  BinaryReader r(data);
  ChunkMeta m;
  DIESEL_ASSIGN_OR_RETURN(m.update_ts_ns, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.size, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.header_len, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(m.num_files, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(m.num_deleted, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(BytesView bm, r.ReadBytes());
  m.deletion_bitmap.assign(bm.begin(), bm.end());
  return m;
}

Bytes DatasetMeta::Serialize() const {
  BinaryWriter w(32);
  w.PutU64(update_ts_ns);
  w.PutU64(num_chunks);
  w.PutU64(num_files);
  w.PutU64(total_bytes);
  return std::move(w).Take();
}

Result<DatasetMeta> DatasetMeta::Deserialize(BytesView data) {
  BinaryReader r(data);
  DatasetMeta m;
  DIESEL_ASSIGN_OR_RETURN(m.update_ts_ns, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.num_chunks, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.num_files, r.ReadU64());
  DIESEL_ASSIGN_OR_RETURN(m.total_bytes, r.ReadU64());
  return m;
}

// ---- path helpers ----------------------------------------------------------

std::string ParentPath(std::string_view path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string BaseName(std::string_view path) {
  size_t pos = path.find_last_of('/');
  return std::string(pos == std::string_view::npos ? path
                                                   : path.substr(pos + 1));
}

// ---- keys -------------------------------------------------------------------

namespace {

std::string HashHex(std::string_view path) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(PathHash(path)));
  return buf;
}

}  // namespace

std::string DatasetKey(std::string_view dataset) {
  return "D/" + std::string(dataset);
}

std::string ChunkKey(std::string_view dataset, const ChunkId& id) {
  return ChunkKeyPrefix(dataset) + id.Encoded();
}

std::string ChunkKeyPrefix(std::string_view dataset) {
  return "C/" + std::string(dataset) + "/";
}

std::string FileKey(std::string_view dataset, std::string_view full_path) {
  return DirFilePrefix(dataset, ParentPath(full_path)) + BaseName(full_path);
}

std::string DirMarkerKey(std::string_view dataset, std::string_view dir_path) {
  return DirSubdirPrefix(dataset, ParentPath(dir_path)) + BaseName(dir_path);
}

std::string DirFilePrefix(std::string_view dataset, std::string_view dir_path) {
  return "F/" + std::string(dataset) + "/" + HashHex(dir_path) + "/f/";
}

std::string DirSubdirPrefix(std::string_view dataset,
                            std::string_view dir_path) {
  return "F/" + std::string(dataset) + "/" + HashHex(dir_path) + "/d/";
}

// ---- MetadataService --------------------------------------------------------

Status MetadataService::AddChunk(sim::VirtualClock& clock,
                                 std::string_view dataset, const ChunkId& id,
                                 const ChunkMeta& chunk_meta,
                                 const std::vector<FileMeta>& files) {
  std::vector<std::pair<std::string, std::string>> batch;
  batch.reserve(files.size() * 2 + 1);
  batch.emplace_back(ChunkKey(dataset, id), ToString(chunk_meta.Serialize()));
  std::set<std::string> dirs_added;
  for (const FileMeta& f : files) {
    batch.emplace_back(FileKey(dataset, f.full_name),
                       ToString(f.Serialize()));
    // Ancestor directory markers so readdir discovers the hierarchy.
    for (std::string dir = ParentPath(f.full_name); dir != "/";
         dir = ParentPath(dir)) {
      if (!dirs_added.insert(dir).second) break;  // ancestors already queued
      batch.emplace_back(DirMarkerKey(dataset, dir), "");
    }
  }
  return kv_.BatchPut(clock, node_, std::move(batch));
}

Result<FileMeta> MetadataService::GetFile(sim::VirtualClock& clock,
                                          std::string_view dataset,
                                          std::string_view path) {
  DIESEL_ASSIGN_OR_RETURN(std::string raw,
                          kv_.Get(clock, node_, FileKey(dataset, path)));
  return FileMeta::Deserialize(AsBytesView(raw));
}

Result<ChunkMeta> MetadataService::GetChunk(sim::VirtualClock& clock,
                                            std::string_view dataset,
                                            const ChunkId& id) {
  DIESEL_ASSIGN_OR_RETURN(std::string raw,
                          kv_.Get(clock, node_, ChunkKey(dataset, id)));
  return ChunkMeta::Deserialize(AsBytesView(raw));
}

Result<std::vector<DirEntry>> MetadataService::ListDir(
    sim::VirtualClock& clock, std::string_view dataset,
    std::string_view dir_path) {
  // pscan hash(dir)/d  union  pscan hash(dir)/f (paper §4.1.1).
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<kv::ScanEntry> subdirs,
      kv_.PScan(clock, node_, DirSubdirPrefix(dataset, dir_path)));
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<kv::ScanEntry> files,
      kv_.PScan(clock, node_, DirFilePrefix(dataset, dir_path)));
  std::vector<DirEntry> out;
  out.reserve(subdirs.size() + files.size());
  size_t prefix_len = DirSubdirPrefix(dataset, dir_path).size();
  for (const auto& e : subdirs) {
    out.push_back({e.key.substr(prefix_len), /*is_dir=*/true});
  }
  prefix_len = DirFilePrefix(dataset, dir_path).size();
  for (const auto& e : files) {
    out.push_back({e.key.substr(prefix_len), /*is_dir=*/false});
  }
  return out;
}

Result<std::vector<ChunkId>> MetadataService::ListChunks(
    sim::VirtualClock& clock, std::string_view dataset) {
  DIESEL_ASSIGN_OR_RETURN(std::vector<kv::ScanEntry> entries,
                          kv_.PScan(clock, node_, ChunkKeyPrefix(dataset)));
  std::vector<ChunkId> out;
  out.reserve(entries.size());
  size_t prefix_len = ChunkKeyPrefix(dataset).size();
  for (const auto& e : entries) {
    DIESEL_ASSIGN_OR_RETURN(ChunkId id,
                            ChunkId::FromEncoded(e.key.substr(prefix_len)));
    out.push_back(id);
  }
  // pscan merges shard results in key order; encoded order == write order.
  return out;
}

Result<DatasetMeta> MetadataService::GetDataset(sim::VirtualClock& clock,
                                                std::string_view dataset) {
  DIESEL_ASSIGN_OR_RETURN(std::string raw,
                          kv_.Get(clock, node_, DatasetKey(dataset)));
  return DatasetMeta::Deserialize(AsBytesView(raw));
}

Status MetadataService::PutDataset(sim::VirtualClock& clock,
                                   std::string_view dataset,
                                   const DatasetMeta& meta) {
  return kv_.Put(clock, node_, DatasetKey(dataset),
                 ToString(meta.Serialize()));
}

Status MetadataService::DeleteFile(sim::VirtualClock& clock,
                                   std::string_view dataset,
                                   std::string_view path) {
  DIESEL_ASSIGN_OR_RETURN(FileMeta fm, GetFile(clock, dataset, path));
  DIESEL_ASSIGN_OR_RETURN(ChunkMeta cm, GetChunk(clock, dataset, fm.chunk));
  size_t byte_index = fm.index_in_chunk / 8;
  if (byte_index >= cm.deletion_bitmap.size())
    return Status::Corruption("deletion bitmap shorter than file index");
  uint8_t mask = static_cast<uint8_t>(1u << (fm.index_in_chunk % 8));
  if (cm.deletion_bitmap[byte_index] & mask)
    return Status::NotFound("file already deleted: " + std::string(path));
  cm.deletion_bitmap[byte_index] |= mask;
  cm.num_deleted += 1;
  cm.update_ts_ns = clock.now();
  DIESEL_RETURN_IF_ERROR(kv_.Put(clock, node_, ChunkKey(dataset, fm.chunk),
                                 ToString(cm.Serialize())));
  return kv_.Delete(clock, node_, FileKey(dataset, path));
}

Result<std::vector<ChunkId>> MetadataService::DeleteDataset(
    sim::VirtualClock& clock, std::string_view dataset) {
  DIESEL_ASSIGN_OR_RETURN(std::vector<ChunkId> chunks,
                          ListChunks(clock, dataset));
  for (const ChunkId& id : chunks) {
    DIESEL_RETURN_IF_ERROR(kv_.Delete(clock, node_, ChunkKey(dataset, id)));
  }
  // File and directory keys: scan the dataset's file namespace.
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<kv::ScanEntry> file_keys,
      kv_.PScan(clock, node_, "F/" + std::string(dataset) + "/"));
  for (const auto& e : file_keys) {
    DIESEL_RETURN_IF_ERROR(kv_.Delete(clock, node_, e.key));
  }
  (void)kv_.Delete(clock, node_, DatasetKey(dataset));
  return chunks;
}

}  // namespace diesel::core
