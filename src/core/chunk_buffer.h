// Shared, immutable chunk blobs and zero-copy file slices (hot read path).
//
// The task-grained cache used to hand every read a freshly copied Bytes cut
// out of the cached chunk. On the hot path (cache hit, CRC already checked)
// that memcpy dominates wall-clock cost. ChunkBuffer puts the chunk blob
// behind a shared_ptr<const Bytes>; FileSlice is a view into that blob which
// holds a reference, so an evicted or migrated chunk's bytes stay alive for
// exactly as long as any outstanding slice needs them — no copy, no
// use-after-free.
//
// Virtual-time neutrality: slicing is a host-side memory operation; the
// simulated cost of a read (NIC/membus/device serves) is charged by the
// cache/fabric exactly as before, so switching callers from Bytes to
// FileSlice changes no simulated timing.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"

namespace diesel::core {

/// One parsed chunk blob (header + payload) behind shared ownership.
/// Copying a ChunkBuffer bumps a refcount; the bytes are immutable for the
/// buffer's whole life.
class ChunkBuffer {
 public:
  ChunkBuffer() = default;

  /// Take ownership of a freshly fetched blob. `header_len` is the parsed
  /// header length (payload starts there).
  static ChunkBuffer Wrap(Bytes blob, uint32_t header_len) {
    ChunkBuffer b;
    b.blob_ = std::make_shared<const Bytes>(std::move(blob));
    b.header_len_ = header_len;
    return b;
  }

  bool valid() const { return blob_ != nullptr; }
  explicit operator bool() const { return valid(); }

  const Bytes& blob() const { return *blob_; }
  const std::shared_ptr<const Bytes>& shared_blob() const { return blob_; }
  uint32_t header_len() const { return header_len_; }
  uint64_t size() const { return blob_ ? blob_->size() : 0; }

  /// Number of owners (buffer copies + live slices). A cache entry whose
  /// count is 1 can be dropped without stranding any reader.
  long use_count() const { return blob_ ? blob_.use_count() : 0; }

  void reset() {
    blob_.reset();
    header_len_ = 0;
  }

 private:
  std::shared_ptr<const Bytes> blob_;
  uint32_t header_len_ = 0;
};

/// Zero-copy view of one file's content inside a shared blob. The slice
/// keeps the underlying blob alive, so it stays valid after the cache entry
/// it came from is evicted or migrated away.
class FileSlice {
 public:
  FileSlice() = default;

  /// View [begin, begin + length) of `buf`'s blob. Caller has bounds-checked.
  static FileSlice FromBuffer(const ChunkBuffer& buf, uint64_t begin,
                              uint64_t length) {
    FileSlice s;
    s.owner_ = buf.shared_blob();
    s.offset_ = begin;
    s.length_ = length;
    return s;
  }

  /// Adopt an owned buffer whole (degraded reads and server paths that
  /// already materialized the content return these).
  static FileSlice Own(Bytes content) {
    FileSlice s;
    s.length_ = content.size();
    s.owner_ = std::make_shared<const Bytes>(std::move(content));
    return s;
  }

  bool valid() const { return owner_ != nullptr; }
  explicit operator bool() const { return valid(); }

  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  const uint8_t* data() const {
    return owner_ ? owner_->data() + offset_ : nullptr;
  }

  BytesView view() const {
    return owner_ ? BytesView(owner_->data() + offset_, length_) : BytesView();
  }

  /// Materialize an owned copy (compatibility with Bytes-returning APIs).
  Bytes ToBytes() const {
    return owner_ ? Bytes(owner_->begin() + static_cast<ptrdiff_t>(offset_),
                          owner_->begin() +
                              static_cast<ptrdiff_t>(offset_ + length_))
                  : Bytes();
  }

  const std::shared_ptr<const Bytes>& shared_owner() const { return owner_; }

 private:
  std::shared_ptr<const Bytes> owner_;
  uint64_t offset_ = 0;
  uint64_t length_ = 0;
};

}  // namespace diesel::core
