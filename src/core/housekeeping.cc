#include "core/housekeeping.h"

#include "core/chunk_format.h"

namespace diesel::core {

Result<PurgeStats> PurgeDataset(sim::VirtualClock& clock, DieselServer& server,
                                const std::string& dataset) {
  PurgeStats stats;
  MetadataService& meta = server.metadata();
  sim::NodeId node = server.node();

  DIESEL_ASSIGN_OR_RETURN(std::vector<ChunkId> chunks,
                          meta.ListChunks(clock, dataset));
  DatasetMeta dm;
  {
    Result<DatasetMeta> cur = meta.GetDataset(clock, dataset);
    if (cur.ok()) dm = cur.value();
  }

  for (const ChunkId& old_id : chunks) {
    DIESEL_ASSIGN_OR_RETURN(ChunkMeta cm, meta.GetChunk(clock, dataset, old_id));
    if (cm.num_deleted == 0) continue;

    std::string old_key = ChunkObjectKey(dataset, old_id);
    DIESEL_ASSIGN_OR_RETURN(Bytes old_blob,
                            server.store().Get(clock, node, old_key));

    // Compact: drop files flagged in the KV-side deletion bitmap. The new
    // chunk keeps the original creation timestamp in its ID's time field but
    // gets a fresh identity so readers never see a half-written blob.
    ChunkIdGenerator gen(node, 0xFFFFFF);  // housekeeping process id
    ChunkId new_id = gen.Next(old_id.timestamp_sec());
    DIESEL_ASSIGN_OR_RETURN(
        Bytes new_blob,
        CompactChunk(old_blob, cm.deletion_bitmap, new_id, clock.now()));
    DIESEL_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Parse(new_blob));

    DIESEL_RETURN_IF_ERROR(server.store().Put(
        clock, node, ChunkObjectKey(dataset, new_id), new_blob));

    // Re-register surviving files under the new chunk.
    std::vector<FileMeta> files;
    files.reserve(view.entries().size());
    uint32_t index = 0;
    for (const ChunkFileEntry& e : view.entries()) {
      FileMeta fm;
      fm.chunk = new_id;
      fm.offset = e.offset;
      fm.length = e.length;
      fm.crc = e.crc;
      fm.index_in_chunk = index++;
      fm.full_name = e.name;
      files.push_back(std::move(fm));
    }
    ChunkMeta new_cm;
    new_cm.update_ts_ns = clock.now();
    new_cm.size = new_blob.size();
    new_cm.header_len = view.header_len();
    new_cm.num_files = static_cast<uint32_t>(files.size());
    new_cm.num_deleted = 0;
    new_cm.deletion_bitmap.assign((files.size() + 7) / 8, 0);
    DIESEL_RETURN_IF_ERROR(meta.AddChunk(clock, dataset, new_id, new_cm, files));

    // Drop the old chunk record and blob.
    DIESEL_RETURN_IF_ERROR(
        meta.kvstore().Delete(clock, node, ChunkKey(dataset, old_id)));
    DIESEL_RETURN_IF_ERROR(server.store().Delete(clock, node, old_key));

    stats.chunks_compacted += 1;
    stats.files_dropped += cm.num_deleted;
    stats.bytes_reclaimed += old_blob.size() - new_blob.size();
    dm.num_files -= cm.num_deleted;
    dm.total_bytes -= old_blob.size() - new_blob.size();
    dm.update_ts_ns = clock.now();
  }

  if (stats.chunks_compacted > 0) {
    DIESEL_RETURN_IF_ERROR(meta.PutDataset(clock, dataset, dm));
  }
  return stats;
}

Result<MergeStats> MergeSmallChunks(sim::VirtualClock& clock,
                                    DieselServer& server,
                                    const std::string& dataset,
                                    uint64_t min_chunk_bytes) {
  MergeStats stats;
  MetadataService& meta = server.metadata();
  sim::NodeId node = server.node();

  DIESEL_ASSIGN_OR_RETURN(std::vector<ChunkId> chunks,
                          meta.ListChunks(clock, dataset));
  // Collect undersized chunks (by live payload) in write order.
  std::vector<ChunkId> small;
  for (const ChunkId& id : chunks) {
    DIESEL_ASSIGN_OR_RETURN(ChunkMeta cm, meta.GetChunk(clock, dataset, id));
    if (cm.num_deleted > 0)
      return Status::FailedPrecondition(
          "merge requires a purge first (chunk has deletion holes)");
    if (cm.size < min_chunk_bytes) small.push_back(id);
  }
  if (small.size() < 2) return stats;  // nothing to coalesce

  ChunkIdGenerator gen(node, 0xFFFFFE);  // housekeeping-merge process id
  ChunkBuilder builder(min_chunk_bytes);
  std::vector<ChunkId> consumed;

  auto flush = [&](uint32_t ts_sec) -> Status {
    if (builder.Empty()) return Status::Ok();
    ChunkId new_id = gen.Next(ts_sec);
    Bytes blob = builder.Finish(new_id, clock.now());
    DIESEL_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Parse(blob));
    DIESEL_RETURN_IF_ERROR(server.store().Put(
        clock, node, ChunkObjectKey(dataset, new_id), blob));
    std::vector<FileMeta> files;
    uint32_t index = 0;
    for (const ChunkFileEntry& e : view.entries()) {
      FileMeta fm;
      fm.chunk = new_id;
      fm.offset = e.offset;
      fm.length = e.length;
      fm.crc = e.crc;
      fm.index_in_chunk = index++;
      fm.full_name = e.name;
      files.push_back(std::move(fm));
    }
    ChunkMeta cm;
    cm.update_ts_ns = clock.now();
    cm.size = blob.size();
    cm.header_len = view.header_len();
    cm.num_files = static_cast<uint32_t>(files.size());
    cm.deletion_bitmap.assign((files.size() + 7) / 8, 0);
    DIESEL_RETURN_IF_ERROR(meta.AddChunk(clock, dataset, new_id, cm, files));
    stats.bytes_rewritten += blob.size();
    stats.chunks_created += 1;
    return Status::Ok();
  };

  for (const ChunkId& id : small) {
    DIESEL_ASSIGN_OR_RETURN(
        Bytes blob, server.store().Get(clock, node, ChunkObjectKey(dataset, id)));
    DIESEL_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Parse(blob));
    for (size_t i = 0; i < view.entries().size(); ++i) {
      DIESEL_ASSIGN_OR_RETURN(Bytes content, view.ExtractFile(i));
      builder.Add(view.entries()[i].name, content);
      if (builder.Full()) {
        DIESEL_RETURN_IF_ERROR(flush(id.timestamp_sec()));
      }
    }
    consumed.push_back(id);
    stats.chunks_merged += 1;
  }
  if (!consumed.empty()) {
    DIESEL_RETURN_IF_ERROR(flush(consumed.back().timestamp_sec()));
  }

  // Drop the consumed chunks' records and blobs; file keys were repointed by
  // the AddChunk overwrites above.
  for (const ChunkId& id : consumed) {
    DIESEL_RETURN_IF_ERROR(
        meta.kvstore().Delete(clock, node, ChunkKey(dataset, id)));
    DIESEL_RETURN_IF_ERROR(
        server.store().Delete(clock, node, ChunkObjectKey(dataset, id)));
  }

  // Refresh dataset accounting from the authoritative chunk list.
  DIESEL_ASSIGN_OR_RETURN(std::vector<ChunkId> remaining,
                          meta.ListChunks(clock, dataset));
  DatasetMeta dm;
  Result<DatasetMeta> cur = meta.GetDataset(clock, dataset);
  if (cur.ok()) dm = cur.value();
  dm.num_chunks = remaining.size();
  dm.update_ts_ns = clock.now();
  DIESEL_RETURN_IF_ERROR(meta.PutDataset(clock, dataset, dm));
  return stats;
}

Result<ScrubStats> ScrubDataset(sim::VirtualClock& clock, DieselServer& server,
                                const std::string& dataset) {
  ScrubStats stats;
  sim::NodeId node = server.node();
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<std::string> keys,
      server.store().List(clock, node, ChunkObjectPrefix(dataset)));
  for (const std::string& key : keys) {
    DIESEL_ASSIGN_OR_RETURN(Bytes blob, server.store().Get(clock, node, key));
    ++stats.chunks_checked;
    Result<ChunkView> view = ChunkView::Parse(blob);
    if (!view.ok()) {
      ++stats.corrupt_chunks;
      stats.corrupt_keys.push_back(key);
      continue;
    }
    bool chunk_bad = false;
    for (size_t i = 0; i < view->entries().size(); ++i) {
      if (view->IsDeleted(i)) continue;
      ++stats.files_checked;
      if (!view->ExtractFile(i).ok()) {
        ++stats.corrupt_files;
        chunk_bad = true;
      }
    }
    if (chunk_bad) stats.corrupt_keys.push_back(key);
  }
  return stats;
}

}  // namespace diesel::core
