// Self-contained data chunk format (paper Fig. 5a).
//
// Small files are packed into chunks of >= 4 MB whose header embeds all the
// metadata needed to rebuild the key-value records: the DIESEL server — or a
// recovery scan — can reconstruct every file entry from the chunk alone.
//
// Layout (little-endian):
//   magic "DSL1" u32 | format version u32 | header_len u32 |
//   chunk_id (16B)   | create_ts_ns u64   | num_files u32  |
//   num_deleted u32  | deletion bitmap (ceil(num_files/8) bytes) |
//   file table: num_files x { name str | offset u64 | length u64 | crc u32 } |
//   header_crc u32   | payload bytes
//
// File offsets are relative to the payload start (== header_len).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/chunk_id.h"

namespace diesel::core {

constexpr uint32_t kChunkMagic = 0x314C5344;  // "DSL1"
constexpr uint32_t kChunkVersion = 1;
constexpr uint64_t kDefaultChunkTarget = 4 * 1024 * 1024;  // >= 4MB (paper)

/// One file's entry in a chunk header.
struct ChunkFileEntry {
  std::string name;    // full path within the dataset, e.g. "/train/cls0/x.jpg"
  uint64_t offset = 0; // payload-relative
  uint64_t length = 0;
  uint32_t crc = 0;    // CRC32C of the file content
};

/// Accumulates files and serializes a finished chunk.
class ChunkBuilder {
 public:
  explicit ChunkBuilder(uint64_t target_payload_bytes = kDefaultChunkTarget)
      : target_(target_payload_bytes) {}

  /// Append a file. Returns its payload offset.
  uint64_t Add(std::string name, BytesView content);

  /// True once the payload has reached the target size.
  bool Full() const { return payload_.size() >= target_; }
  bool Empty() const { return entries_.empty(); }
  size_t num_files() const { return entries_.size(); }
  uint64_t payload_bytes() const { return payload_.size(); }

  /// Serialize into a self-contained chunk and reset the builder.
  Bytes Finish(const ChunkId& id, uint64_t create_ts_ns);

  /// Exact serialized header size for the current entries (running totals;
  /// lets Finish size its output buffer in one allocation).
  uint64_t SerializedHeaderBytes() const;

 private:
  uint64_t target_;
  std::vector<ChunkFileEntry> entries_;
  Bytes payload_;
  uint64_t name_bytes_ = 0;  // running total of entry name lengths
};

/// Parsed, validated view over a serialized chunk. Owns nothing; the caller
/// keeps the chunk bytes alive.
class ChunkView {
 public:
  /// Parse and verify the header (magic, version, bounds, header CRC).
  static Result<ChunkView> Parse(BytesView chunk);

  /// Parse only the header given a prefix of the chunk (metadata recovery
  /// reads headers without fetching payloads). The prefix must contain the
  /// full header; use PeekHeaderLen() to size the read.
  static Result<ChunkView> ParseHeaderOnly(BytesView header_prefix);

  /// Header length from the first 12 bytes (magic | version | header_len).
  static Result<uint32_t> PeekHeaderLen(BytesView first12);

  const ChunkId& id() const { return id_; }
  uint64_t create_ts_ns() const { return create_ts_ns_; }
  uint32_t header_len() const { return header_len_; }
  const std::vector<ChunkFileEntry>& entries() const { return entries_; }
  uint32_t num_deleted() const { return num_deleted_; }
  const std::vector<uint8_t>& deletion_bitmap() const { return bitmap_; }
  bool IsDeleted(size_t file_index) const;

  /// Extract one file's content by table index, verifying its CRC.
  /// Fails FailedPrecondition when constructed header-only.
  Result<Bytes> ExtractFile(size_t index) const;

  /// Find a file entry by exact name; nullptr if absent. O(log n) via a
  /// name-sorted index built lazily on the first lookup (parse stays
  /// index-free). Not safe to call concurrently on one shared instance.
  const ChunkFileEntry* FindEntry(std::string_view name) const;

  /// Total serialized size (header + payload) when payload present.
  uint64_t chunk_bytes() const { return chunk_.size(); }

 private:
  static Result<ChunkView> ParseInternal(BytesView data, bool require_payload);

  BytesView chunk_;     // full chunk, or header-only prefix
  bool has_payload_ = false;
  ChunkId id_;
  uint64_t create_ts_ns_ = 0;
  uint32_t header_len_ = 0;
  uint32_t num_deleted_ = 0;
  std::vector<uint8_t> bitmap_;
  std::vector<ChunkFileEntry> entries_;
  /// Entry indices sorted by name; built lazily by FindEntry.
  mutable std::vector<uint32_t> name_index_;
};

/// Rewrite a chunk dropping the files marked deleted in `bitmap` (house-
/// keeping/purge, §4.1.1). Entries and payload are compacted; the new chunk
/// reuses `new_id` and `create_ts_ns`.
Result<Bytes> CompactChunk(BytesView chunk, const std::vector<uint8_t>& bitmap,
                           const ChunkId& new_id, uint64_t create_ts_ns);

}  // namespace diesel::core
