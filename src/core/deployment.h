// Test/bench deployment harness: assembles a complete simulated DIESEL
// installation (cluster, network fabric, KV metadata tier, object storage,
// DIESEL servers) with the paper's reference layout (Table 4): client nodes,
// storage gateway, KV nodes, server nodes.
//
// Node layout (dense ids):
//   [0, num_client_nodes)                      training/client machines
//   [C, C + 1)                                 storage gateway
//   [C+1, C+1+num_kv_nodes)                    KV (Redis-like) machines
//   [.., .. + num_servers)                     DIESEL server machines
#pragma once

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "etcd/config_store.h"
#include "kv/cluster.h"
#include "net/fabric.h"
#include "ostore/mem_store.h"
#include "ostore/modeled_store.h"
#include "ostore/tiered_store.h"
#include "sim/node.h"

namespace diesel::core {

struct DeploymentOptions {
  size_t num_client_nodes = 4;
  size_t num_kv_nodes = 4;
  uint32_t kv_shards_per_node = 4;
  size_t num_servers = 1;
  /// Use the HDD backend with an SSD server cache (Fig. 4's two-tier path)
  /// instead of the plain SSD-class store.
  bool tiered_store = false;
  uint64_t ssd_cache_bytes = 0;  // 0 = unbounded fast tier
};

class Deployment {
 public:
  /// Fleets at or below this size get per-node NIC/membus metrics bound
  /// automatically; larger fleets keep only service-device telemetry so the
  /// registry and timeline dumps stay bounded.
  static constexpr size_t kMaxNodesForDeviceMetrics = 64;

  explicit Deployment(DeploymentOptions options);

  sim::Cluster& cluster() { return *cluster_; }
  net::Fabric& fabric() { return *fabric_; }
  kv::KvCluster& kv() { return *kv_; }
  ostore::ObjectStore& store() { return *store_; }
  ostore::ModeledStore& ssd_store() { return *ssd_; }

  size_t num_servers() const { return servers_.size(); }
  DieselServer& server(size_t i) { return *servers_.at(i); }
  std::vector<DieselServer*> server_ptrs();

  sim::NodeId client_node(size_t i) const { return static_cast<sim::NodeId>(i); }
  size_t num_client_nodes() const { return options_.num_client_nodes; }
  sim::NodeId storage_node() const {
    return static_cast<sim::NodeId>(options_.num_client_nodes);
  }
  sim::NodeId kv_node(size_t i) const {
    return static_cast<sim::NodeId>(options_.num_client_nodes + 1 + i);
  }
  sim::NodeId server_node(size_t i) const {
    return static_cast<sim::NodeId>(options_.num_client_nodes + 1 +
                                    options_.num_kv_nodes + i);
  }
  sim::NodeId etcd_node() const {
    return static_cast<sim::NodeId>(options_.num_client_nodes + 1 +
                                    options_.num_kv_nodes +
                                    options_.num_servers);
  }

  /// The configuration service (Fig. 2's ETCD). Servers self-register under
  /// /diesel/servers/ at deployment construction.
  etcd::ConfigStore& config() { return *config_; }

  /// Discover the registered DIESEL servers through the config service
  /// (charges `clock` for the etcd list RPC), then build a client wired to
  /// the discovered set — the production connect path; MakeClient() is the
  /// direct-wiring shortcut for tests.
  Result<std::unique_ptr<DieselClient>> MakeClientViaDiscovery(
      sim::VirtualClock& clock, size_t node_index, uint32_t client_index,
      const std::string& dataset);

  /// Construct a client on `client_node(node_index)` with local index
  /// `client_index`, connected to all servers.
  std::unique_ptr<DieselClient> MakeClient(size_t node_index,
                                           uint32_t client_index,
                                           const std::string& dataset,
                                           uint64_t chunk_bytes =
                                               kDefaultChunkTarget);

  const DeploymentOptions& options() const { return options_; }

  /// Clear every device's queue state (NICs, storage, KV shards, server
  /// service loops). Benchmarks call this between sweep points so virtual
  /// time restarts at zero without re-ingesting the dataset.
  void ResetDevices();

 private:
  DeploymentOptions options_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<kv::KvCluster> kv_;
  std::unique_ptr<ostore::MemStore> backing_;
  std::unique_ptr<ostore::ModeledStore> ssd_;
  std::unique_ptr<ostore::MemStore> hdd_backing_;
  std::unique_ptr<ostore::ModeledStore> hdd_;
  std::unique_ptr<ostore::TieredStore> tiered_;
  ostore::ObjectStore* store_ = nullptr;
  std::vector<std::unique_ptr<DieselServer>> servers_;
  std::unique_ptr<etcd::ConfigStore> config_;
};

}  // namespace diesel::core
