// Metadata schema and FS-op -> KV-op translation (paper Fig. 5b, §4.1.1).
//
// Key layout in the key-value database (one namespace per dataset):
//   "D/<dataset>"                         -> DatasetMeta
//   "C/<dataset>/<chunk_id_b64>"          -> ChunkMeta
//   "F/<dataset>/<hex(hash(parent))>/d/<name>" -> "" (directory marker)
//   "F/<dataset>/<hex(hash(parent))>/f/<name>" -> FileMeta
//
// readdir(/folderA) == pscan(prefix "F/<ds>/<hash(/folderA)>/d/") union
//                      pscan(prefix "F/<ds>/<hash(/folderA)>/f/")
// exactly as described in the paper; stat/get of one file is a single KV get.
// (De)serialization happens here — in DIESEL server code — never inside the
// KV store (decoupling of metadata storage from metadata processing).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/chunk_id.h"
#include "kv/cluster.h"

namespace diesel::core {

struct FileMeta {
  ChunkId chunk;
  uint64_t offset = 0;        // payload-relative within the chunk
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t index_in_chunk = 0;  // position in the chunk's file table
  std::string full_name;

  Bytes Serialize() const;
  static Result<FileMeta> Deserialize(BytesView data);
};

struct ChunkMeta {
  uint64_t update_ts_ns = 0;
  uint64_t size = 0;          // serialized chunk bytes (header + payload)
  uint32_t header_len = 0;    // payload starts at this byte offset
  uint32_t num_files = 0;
  uint32_t num_deleted = 0;
  std::vector<uint8_t> deletion_bitmap;

  Bytes Serialize() const;
  static Result<ChunkMeta> Deserialize(BytesView data);
};

struct DatasetMeta {
  uint64_t update_ts_ns = 0;
  uint64_t num_chunks = 0;
  uint64_t num_files = 0;
  uint64_t total_bytes = 0;

  Bytes Serialize() const;
  static Result<DatasetMeta> Deserialize(BytesView data);
};

/// A directory listing entry.
struct DirEntry {
  std::string name;
  bool is_dir = false;
};

// ---- path helpers ----------------------------------------------------------

/// Normalized parent of an absolute path ("/a/b/c" -> "/a/b"; "/x" -> "/").
std::string ParentPath(std::string_view path);
/// Final component ("/a/b/c" -> "c").
std::string BaseName(std::string_view path);

// ---- key construction ------------------------------------------------------

std::string DatasetKey(std::string_view dataset);
std::string ChunkKey(std::string_view dataset, const ChunkId& id);
std::string ChunkKeyPrefix(std::string_view dataset);
std::string FileKey(std::string_view dataset, std::string_view full_path);
std::string DirMarkerKey(std::string_view dataset, std::string_view dir_path);
/// pscan prefixes for one directory's files / subdirectories.
std::string DirFilePrefix(std::string_view dataset, std::string_view dir_path);
std::string DirSubdirPrefix(std::string_view dataset, std::string_view dir_path);

/// Translates filesystem-flavoured metadata operations into KV operations
/// against the metadata tier, on behalf of a DIESEL server node.
class MetadataService {
 public:
  MetadataService(kv::KvCluster& kvstore, sim::NodeId server_node)
      : kv_(kvstore), node_(server_node) {}

  /// Register a batch of files plus their chunk record, and every ancestor
  /// directory marker (pipelined batch put).
  Status AddChunk(sim::VirtualClock& clock, std::string_view dataset,
                  const ChunkId& id, const ChunkMeta& chunk_meta,
                  const std::vector<FileMeta>& files);

  Result<FileMeta> GetFile(sim::VirtualClock& clock, std::string_view dataset,
                           std::string_view path);

  Result<ChunkMeta> GetChunk(sim::VirtualClock& clock, std::string_view dataset,
                             const ChunkId& id);

  /// readdir: subdirectories then files, each name-sorted.
  Result<std::vector<DirEntry>> ListDir(sim::VirtualClock& clock,
                                        std::string_view dataset,
                                        std::string_view dir_path);

  /// All chunk IDs of a dataset in write (ID) order.
  Result<std::vector<ChunkId>> ListChunks(sim::VirtualClock& clock,
                                          std::string_view dataset);

  Result<DatasetMeta> GetDataset(sim::VirtualClock& clock,
                                 std::string_view dataset);
  Status PutDataset(sim::VirtualClock& clock, std::string_view dataset,
                    const DatasetMeta& meta);

  /// Tombstone one file: remove its file key and flip its bit in the owning
  /// chunk's deletion bitmap (the chunk blob itself is untouched until
  /// housekeeping compacts it).
  Status DeleteFile(sim::VirtualClock& clock, std::string_view dataset,
                    std::string_view path);

  /// Remove every key of the dataset (DL_delete_dataset); returns the chunk
  /// IDs that were registered so the caller can delete the blobs.
  Result<std::vector<ChunkId>> DeleteDataset(sim::VirtualClock& clock,
                                             std::string_view dataset);

  kv::KvCluster& kvstore() { return kv_; }
  sim::NodeId node() const { return node_; }

 private:
  kv::KvCluster& kv_;
  sim::NodeId node_;
};

}  // namespace diesel::core
