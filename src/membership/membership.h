// Elastic task membership: versioned node set + consistent-hash ownership.
//
// Generalizes the failure-recovery machinery (circuit breaker + chunk-
// granular re-own) into first-class churn: nodes join and leave the task
// on purpose (planned rescale) or by crashing, and every change bumps a
// monotonically versioned membership *epoch*. Ownership of chunks follows a
// consistent-hash ring over the active nodes (kv::HashRing), so one
// join/leave moves only ~1/N of the chunks instead of reshuffling the whole
// round-robin partition — the property FanStore-scale elasticity depends on.
//
// State machine per node:
//
//   planned drain:  kActive --StartDrain--> kDraining --CompleteDrain--> gone
//                   (announce: ownership moves off the node while it KEEPS
//                    serving its old partition; migrate: the cache streams
//                    resident chunks to the new owners; depart: the drained
//                    partition is dropped — no reader ever misses)
//
//   crash:          kActive --Crash--> kDown --Recover--> kActive
//                   (the partition is lost with the node; moved chunks are
//                    re-owned from the backend by their new owners)
//
// Listeners (the task cache, the prefetch scheduler) subscribe and are
// notified synchronously inside the mutating call, in subscription order —
// deterministic, so churn replays are bit-reproducible. Subscribe the cache
// before the scheduler: schedule recomputation reads the post-migration
// ownership.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "kv/ring.h"
#include "sim/node.h"

namespace diesel::membership {

enum class NodeState { kActive, kDraining, kDown };

enum class ChangeKind {
  kBootstrap,      // initial node set installed (epoch 1)
  kJoin,           // new node owns its ring share from now on
  kDrainStart,     // planned leave announced: ownership moves, node serves
  kDrainComplete,  // drained node departs; its partition may be dropped
  kCrash,          // unplanned loss: ownership moves AND the partition is gone
  kRecover,        // crashed node rejoins (ownership moves back)
};

const char* ToString(ChangeKind kind);
const char* ToString(NodeState state);

struct MembershipChange {
  uint64_t epoch = 0;
  ChangeKind kind = ChangeKind::kBootstrap;
  sim::NodeId node = sim::kInvalidNode;
  Nanos at = 0;
};

class MembershipListener {
 public:
  virtual ~MembershipListener() = default;
  virtual void OnMembershipChange(const MembershipChange& change) = 0;
};

struct MembershipOptions {
  /// Virtual nodes per member on the ownership ring. More vnodes = tighter
  /// balance (stddev ~ 1/sqrt(vnodes)) at O(log) lookup cost.
  uint32_t vnodes_per_member = 128;
};

/// The authoritative, versioned view of which nodes belong to the task and
/// which chunks they own. Thread-safe; mutations are serialized and each
/// bumps `epoch()` exactly once.
class MembershipTable {
 public:
  explicit MembershipTable(MembershipOptions options = {});

  /// Install the initial node set (epoch 1). Must be called exactly once,
  /// before any other mutation.
  void Bootstrap(const std::vector<sim::NodeId>& nodes, Nanos at);

  // Each mutation returns the new epoch. Invalid transitions (joining a
  // present node, draining an absent one, ...) are no-ops returning the
  // current epoch — churn schedules may race a crash against a drain and
  // the table must stay consistent.
  uint64_t Join(sim::NodeId node, Nanos at);
  uint64_t StartDrain(sim::NodeId node, Nanos at);
  uint64_t CompleteDrain(sim::NodeId node, Nanos at);
  uint64_t Crash(sim::NodeId node, Nanos at);
  uint64_t Recover(sim::NodeId node, Nanos at);

  uint64_t epoch() const;
  size_t NumActive() const;
  /// kDown for nodes the table has never seen.
  NodeState StateOf(sim::NodeId node) const;
  /// Active nodes (ring members), ascending id.
  std::vector<sim::NodeId> ActiveNodes() const;
  /// Every membership change since Bootstrap, in epoch order.
  std::vector<MembershipChange> Log() const;

  /// Ring owner of `chunk_index` among the active nodes. Draining nodes are
  /// NOT owners (ownership moved at StartDrain); down nodes are not owners.
  Result<sim::NodeId> OwnerOfChunk(size_t chunk_index) const;

  /// Fraction of the hash space owned by `node` (balance inspection).
  double OwnedFraction(sim::NodeId node) const;

  /// Listeners are notified synchronously, in subscription order, after the
  /// table reflects the change. Must outlive the table.
  void Subscribe(MembershipListener* listener);

 private:
  uint64_t ApplyLocked(ChangeKind kind, sim::NodeId node, Nanos at,
                       std::unique_lock<std::mutex>& lock);

  MembershipOptions options_;
  mutable std::mutex mutex_;
  uint64_t epoch_ = 0;
  kv::HashRing ring_;
  std::map<sim::NodeId, NodeState> states_;
  std::vector<MembershipChange> log_;
  std::vector<MembershipListener*> listeners_;
};

}  // namespace diesel::membership
