#include "membership/churn.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace diesel::membership {

const char* ToString(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::Kind::kJoin: return "join";
    case ChurnEvent::Kind::kDrainStart: return "drain_start";
    case ChurnEvent::Kind::kDrainComplete: return "drain_complete";
    case ChurnEvent::Kind::kCrash: return "crash";
    case ChurnEvent::Kind::kRecover: return "recover";
  }
  return "?";
}

ChurnSchedule ChurnSchedule::Generate(
    const ChurnScheduleOptions& options,
    const std::vector<sim::NodeId>& initial_nodes,
    const std::vector<sim::NodeId>& spare_nodes) {
  ChurnSchedule sched;
  Rng rng(options.seed);
  // Simulated sets (std::set: deterministic pick-by-index order).
  std::set<sim::NodeId> active(initial_nodes.begin(), initial_nodes.end());
  std::set<sim::NodeId> spare(spare_nodes.begin(), spare_nodes.end());
  // Nodes already scheduled to leave/return later; excluded from further
  // draws so expansion events never contradict a primary one.
  std::set<sim::NodeId> busy;

  auto pick = [&rng](const std::set<sim::NodeId>& pool,
                     const std::set<sim::NodeId>& exclude,
                     sim::NodeId* out) {
    std::vector<sim::NodeId> eligible;
    for (sim::NodeId n : pool) {
      if (exclude.count(n) == 0) eligible.push_back(n);
    }
    if (eligible.empty()) return false;
    *out = eligible[rng.Uniform(eligible.size())];
    return true;
  };

  const uint32_t total_weight =
      options.join_weight + options.drain_weight + options.crash_weight;
  for (size_t i = 0; i < options.events && total_weight > 0; ++i) {
    Nanos at = options.horizon == 0 ? 0 : rng.Uniform(options.horizon);
    uint64_t w = rng.Uniform(total_weight);
    sim::NodeId node = sim::kInvalidNode;
    if (w < options.join_weight) {
      if (!pick(spare, busy, &node)) continue;
      spare.erase(node);
      active.insert(node);
      sched.events_.push_back({ChurnEvent::Kind::kJoin, node, at});
    } else if (w < options.join_weight + options.drain_weight) {
      if (active.size() <= options.min_active) continue;
      if (!pick(active, busy, &node)) continue;
      busy.insert(node);  // leaves at at+grace; don't re-draw meanwhile
      active.erase(node);
      sched.events_.push_back({ChurnEvent::Kind::kDrainStart, node, at});
      sched.events_.push_back(
          {ChurnEvent::Kind::kDrainComplete, node, at + options.drain_grace});
    } else {
      if (active.size() <= options.min_active) continue;
      if (!pick(active, busy, &node)) continue;
      sched.events_.push_back({ChurnEvent::Kind::kCrash, node, at});
      if (options.crash_outage > 0) {
        busy.insert(node);  // down until recovery fires
        sched.events_.push_back(
            {ChurnEvent::Kind::kRecover, node, at + options.crash_outage});
      } else {
        active.erase(node);
      }
    }
  }
  // Stable: ties (same timestamp) keep draw order, so the expansion is a
  // pure function of the seed.
  std::stable_sort(sched.events_.begin(), sched.events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return sched;
}

net::FaultPlan ChurnSchedule::ToFaultPlan(net::FaultPlan base) const {
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].kind != ChurnEvent::Kind::kCrash) continue;
    Nanos up = ~Nanos{0};  // never recovers unless a recovery follows
    for (size_t j = i + 1; j < events_.size(); ++j) {
      if (events_[j].kind == ChurnEvent::Kind::kRecover &&
          events_[j].node == events_[i].node) {
        up = events_[j].at;
        break;
      }
    }
    base.node_flaps.push_back(net::NodeFlap{events_[i].node, events_[i].at,
                                            up});
  }
  return base;
}

size_t ChurnDriver::AdvanceTo(Nanos now) {
  size_t fired = 0;
  const std::vector<ChurnEvent>& events = schedule_.events();
  while (next_ < events.size() && events[next_].at <= now) {
    const ChurnEvent& e = events[next_];
    switch (e.kind) {
      case ChurnEvent::Kind::kJoin:
        table_.Join(e.node, e.at);
        break;
      case ChurnEvent::Kind::kDrainStart:
        table_.StartDrain(e.node, e.at);
        break;
      case ChurnEvent::Kind::kDrainComplete:
        table_.CompleteDrain(e.node, e.at);
        break;
      case ChurnEvent::Kind::kCrash:
        table_.Crash(e.node, e.at);
        break;
      case ChurnEvent::Kind::kRecover:
        table_.Recover(e.node, e.at);
        break;
    }
    ++next_;
    ++fired;
  }
  return fired;
}

}  // namespace diesel::membership
