#include "membership/membership.h"

#include <algorithm>

#include "common/hash.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace diesel::membership {
namespace {

struct MemCounters {
  obs::Counter& changes = obs::Metrics().GetCounter("membership.changes");
  obs::Counter& joins = obs::Metrics().GetCounter("membership.joins");
  obs::Counter& drains = obs::Metrics().GetCounter("membership.drains");
  obs::Counter& crashes = obs::Metrics().GetCounter("membership.crashes");
  obs::Gauge& epoch = obs::Metrics().GetGauge("membership.epoch");
  obs::Gauge& active = obs::Metrics().GetGauge("membership.active_nodes");
};

MemCounters& Counters() {
  static MemCounters c;
  return c;
}

/// Chunk indices are small dense integers; mix them so consecutive chunks
/// land on independent ring points (the salt keeps chunk hashes disjoint
/// from the ring's member-point hashes).
uint64_t ChunkHash(size_t chunk_index) {
  return Mix64(static_cast<uint64_t>(chunk_index) ^ 0xD1E5E1C0FFEE5EEDULL);
}

}  // namespace

const char* ToString(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kBootstrap: return "bootstrap";
    case ChangeKind::kJoin: return "join";
    case ChangeKind::kDrainStart: return "drain_start";
    case ChangeKind::kDrainComplete: return "drain_complete";
    case ChangeKind::kCrash: return "crash";
    case ChangeKind::kRecover: return "recover";
  }
  return "?";
}

const char* ToString(NodeState state) {
  switch (state) {
    case NodeState::kActive: return "active";
    case NodeState::kDraining: return "draining";
    case NodeState::kDown: return "down";
  }
  return "?";
}

MembershipTable::MembershipTable(MembershipOptions options)
    : options_(options), ring_(options.vnodes_per_member) {}

void MembershipTable::Bootstrap(const std::vector<sim::NodeId>& nodes,
                                Nanos at) {
  std::vector<MembershipListener*> listeners;
  MembershipChange change;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_ != 0) return;  // already bootstrapped
    for (sim::NodeId n : nodes) {
      ring_.AddMember(n);
      states_[n] = NodeState::kActive;
    }
    epoch_ = 1;
    change = MembershipChange{epoch_, ChangeKind::kBootstrap,
                              sim::kInvalidNode, at};
    log_.push_back(change);
    Counters().changes.Inc();
    Counters().epoch.Set(static_cast<double>(epoch_));
    Counters().active.Set(static_cast<double>(ring_.NumMembers()));
    obs::Flight().Record(obs::FlightEventKind::kMembership, at,
                         "bootstrap " + std::to_string(ring_.NumMembers()) +
                             " nodes epoch=" + std::to_string(epoch_));
    listeners = listeners_;
  }
  for (MembershipListener* l : listeners) l->OnMembershipChange(change);
}

uint64_t MembershipTable::ApplyLocked(ChangeKind kind, sim::NodeId node,
                                      Nanos at,
                                      std::unique_lock<std::mutex>& lock) {
  ++epoch_;
  MembershipChange change{epoch_, kind, node, at};
  log_.push_back(change);
  Counters().changes.Inc();
  Counters().epoch.Set(static_cast<double>(epoch_));
  Counters().active.Set(static_cast<double>(ring_.NumMembers()));
  obs::Flight().Record(obs::FlightEventKind::kMembership, at,
                       std::string(ToString(kind)) + " n" +
                           std::to_string(node) + " epoch=" +
                           std::to_string(epoch_));
  std::vector<MembershipListener*> listeners = listeners_;
  uint64_t epoch = epoch_;
  // Notify outside the table lock: listeners (cache migration, prefetch
  // recompute) read ownership back through OwnerOfChunk. Mutations are
  // driven by one churn driver at a time, so notification order stays the
  // epoch order.
  lock.unlock();
  for (MembershipListener* l : listeners) l->OnMembershipChange(change);
  return epoch;
}

uint64_t MembershipTable::Join(sim::NodeId node, Nanos at) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  if (it != states_.end() && it->second != NodeState::kDown) return epoch_;
  states_[node] = NodeState::kActive;
  ring_.AddMember(node);
  Counters().joins.Inc();
  return ApplyLocked(ChangeKind::kJoin, node, at, lock);
}

uint64_t MembershipTable::StartDrain(sim::NodeId node, Nanos at) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  if (it == states_.end() || it->second != NodeState::kActive) return epoch_;
  if (ring_.NumMembers() <= 1) return epoch_;  // never drain the last owner
  it->second = NodeState::kDraining;
  ring_.RemoveMember(node);
  Counters().drains.Inc();
  return ApplyLocked(ChangeKind::kDrainStart, node, at, lock);
}

uint64_t MembershipTable::CompleteDrain(sim::NodeId node, Nanos at) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  if (it == states_.end() || it->second != NodeState::kDraining) return epoch_;
  states_.erase(it);
  return ApplyLocked(ChangeKind::kDrainComplete, node, at, lock);
}

uint64_t MembershipTable::Crash(sim::NodeId node, Nanos at) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  if (it == states_.end() || it->second == NodeState::kDown) return epoch_;
  if (it->second == NodeState::kActive && ring_.NumMembers() <= 1)
    return epoch_;  // the last owner crashing would orphan every chunk
  ring_.RemoveMember(node);  // no-op for a draining node (already off-ring)
  it->second = NodeState::kDown;
  Counters().crashes.Inc();
  return ApplyLocked(ChangeKind::kCrash, node, at, lock);
}

uint64_t MembershipTable::Recover(sim::NodeId node, Nanos at) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  if (it == states_.end() || it->second != NodeState::kDown) return epoch_;
  it->second = NodeState::kActive;
  ring_.AddMember(node);
  return ApplyLocked(ChangeKind::kRecover, node, at, lock);
}

uint64_t MembershipTable::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

size_t MembershipTable::NumActive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.NumMembers();
}

NodeState MembershipTable::StateOf(sim::NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(node);
  return it == states_.end() ? NodeState::kDown : it->second;
}

std::vector<sim::NodeId> MembershipTable::ActiveNodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<sim::NodeId> out;
  for (const auto& [node, state] : states_) {
    if (state == NodeState::kActive) out.push_back(node);
  }
  return out;  // std::map iterates ascending
}

std::vector<MembershipChange> MembershipTable::Log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

Result<sim::NodeId> MembershipTable::OwnerOfChunk(size_t chunk_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.NumMembers() == 0)
    return Status::FailedPrecondition("membership: no active nodes");
  return static_cast<sim::NodeId>(ring_.OwnerOfHash(ChunkHash(chunk_index)));
}

double MembershipTable::OwnedFraction(sim::NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.OwnedFraction(node);
}

void MembershipTable::Subscribe(MembershipListener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(listener);
}

}  // namespace diesel::membership
