// Seeded, bit-reproducible churn schedules.
//
// A ChurnSchedule expands a seed into a virtual-time sequence of membership
// events — planned drains (announce -> migrate -> depart), crashes (lose the
// partition -> re-own) with optional recovery, and joins — over a pool of
// candidate nodes. Generation simulates the active set so every event is
// legal when it fires (never drain the last node, never crash an absent
// one), and the same seed always yields the same event list.
//
// Crashes double as network faults: ToFaultPlan() materializes each crash
// window as a net::NodeFlap so the same schedule replays through the
// existing FaultInjector — RPCs to a crashed node fail with the plan's
// detect timeout exactly like PR 1's flap machinery.
//
// A ChurnDriver applies due events to a MembershipTable as virtual time
// advances; the training loop (or a bench) calls AdvanceTo(now) from its
// batch hook.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "membership/membership.h"
#include "net/fault_injector.h"
#include "sim/node.h"

namespace diesel::membership {

struct ChurnEvent {
  enum class Kind { kJoin, kDrainStart, kDrainComplete, kCrash, kRecover };
  Kind kind = Kind::kJoin;
  sim::NodeId node = sim::kInvalidNode;
  Nanos at = 0;
};

const char* ToString(ChurnEvent::Kind kind);

struct ChurnScheduleOptions {
  uint64_t seed = 1;
  /// Number of *primary* events (join / drain / crash) to draw. Drains also
  /// emit their completion and crashes their recovery, so the expanded
  /// event list is longer.
  size_t events = 4;
  /// Primary events are drawn uniformly in [0, horizon).
  Nanos horizon = Seconds(10.0);
  /// A planned drain departs this long after its announcement (fixed, so
  /// drain windows are deterministic).
  Nanos drain_grace = Millis(200);
  /// A crashed node recovers (rejoins) after this outage; 0 = stays down.
  Nanos crash_outage = Millis(500);
  /// Relative weights for drawing each primary event kind.
  uint32_t join_weight = 1;
  uint32_t drain_weight = 1;
  uint32_t crash_weight = 1;
  /// The active set is never drained/crashed below this size.
  size_t min_active = 1;
};

class ChurnSchedule {
 public:
  /// Expand `options.seed` into an event list. `initial_nodes` are active at
  /// t=0 (the table's Bootstrap set); `spare_nodes` is the join pool.
  static ChurnSchedule Generate(const ChurnScheduleOptions& options,
                                const std::vector<sim::NodeId>& initial_nodes,
                                const std::vector<sim::NodeId>& spare_nodes);

  /// Expanded events, sorted by (time, draw order) — deterministic.
  const std::vector<ChurnEvent>& events() const { return events_; }

  /// Crash windows as node flaps (plus the given base-plan fields), so the
  /// schedule's unplanned churn replays through the FaultInjector.
  net::FaultPlan ToFaultPlan(net::FaultPlan base = {}) const;

 private:
  std::vector<ChurnEvent> events_;
};

/// Applies a schedule's due events to a table as virtual time advances.
class ChurnDriver {
 public:
  ChurnDriver(MembershipTable& table, const ChurnSchedule& schedule)
      : table_(table), schedule_(schedule) {}

  /// Fire every event with at <= now that has not fired yet, in order.
  /// Returns the number fired.
  size_t AdvanceTo(Nanos now);

  /// Events already fired.
  size_t fired() const { return next_; }
  bool Done() const { return next_ >= schedule_.events().size(); }

 private:
  MembershipTable& table_;
  const ChurnSchedule& schedule_;
  size_t next_ = 0;
};

}  // namespace diesel::membership
