// Shuffle strategies (§4.3, Fig. 8).
//
// Chunk-wise shuffle generates a per-epoch random file order that converts
// to large chunk reads:
//   1. shuffle the dataset's chunk IDs;
//   2. split the shuffled chunk list into groups of `group_size` chunks;
//   3. within each group, collect the files of those chunks and shuffle them;
//   4. concatenate the per-group file lists.
// Reads then proceed group by group: a group's chunks are fetched as whole
// chunks (exploiting sequential bandwidth, Table 2), files are served from
// the in-memory group window, and the window is freed when the group ends —
// memory footprint is ~group_size chunks instead of the whole dataset.
//
// The baseline `ShuffleDataset` is the conventional full-dataset file-level
// shuffle (Fig. 1), which produces uniformly random order but chunk-random
// I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/snapshot.h"

namespace diesel::shuffle {

/// Conventional shuffle-over-dataset: a uniformly random permutation of all
/// file indices (into snapshot.files()).
std::vector<uint32_t> ShuffleDataset(const core::MetadataSnapshot& snapshot,
                                     Rng& rng);

struct ChunkShuffleOptions {
  /// Chunks per group (paper: 100/500 for ImageNet-1K, 15/30 for CIFAR-10).
  size_t group_size = 100;
};

/// A generated epoch plan: the file order plus the group structure needed to
/// prefetch chunk windows.
struct ShufflePlan {
  /// File indices into snapshot.files(), concatenated across groups.
  std::vector<uint32_t> file_order;
  /// group g spans file_order[group_begin[g] .. group_begin[g+1]);
  /// group_begin.back() == file_order.size().
  std::vector<size_t> group_begin;
  /// Chunk indices (into snapshot.chunks()) belonging to each group.
  std::vector<std::vector<uint32_t>> group_chunks;

  size_t num_groups() const {
    return group_begin.empty() ? 0 : group_begin.size() - 1;
  }
  /// Group containing position `pos` of file_order.
  size_t GroupOf(size_t pos) const;
};

/// Generate one epoch's chunk-wise shuffle plan.
ShufflePlan ChunkWiseShuffle(const core::MetadataSnapshot& snapshot,
                             const ChunkShuffleOptions& options, Rng& rng);

/// Restrict a plan to the groups assigned to worker `part` of `num_parts`
/// (round-robin by group), for multi-node training where each node reads a
/// disjoint portion of the epoch.
ShufflePlan PartitionPlan(const ShufflePlan& plan, size_t part,
                          size_t num_parts);

/// Statistical distance diagnostics used by tests: fraction of adjacent
/// file pairs in the order that share a chunk (high for chunk-wise within a
/// group vs ~0 for dataset shuffle across a big dataset).
double AdjacentSameChunkFraction(const core::MetadataSnapshot& snapshot,
                                 const std::vector<uint32_t>& order);

}  // namespace diesel::shuffle
