#include "shuffle/group_reader.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace diesel::shuffle {
namespace {

/// Registry mirrors of GroupReaderStats, resolved once.
struct ShuffleCounters {
  obs::Counter& epochs;
  obs::Counter& groups_entered;
  obs::Counter& chunk_fetches;
  obs::Counter& chunk_bytes;
  obs::Counter& files_read;
  obs::Counter& bytes_read;
};

ShuffleCounters& Counters() {
  static ShuffleCounters c{
      obs::Metrics().GetCounter("shuffle.epochs"),
      obs::Metrics().GetCounter("shuffle.groups_entered"),
      obs::Metrics().GetCounter("shuffle.chunk_fetches"),
      obs::Metrics().GetCounter("shuffle.chunk_bytes"),
      obs::Metrics().GetCounter("shuffle.files_read"),
      obs::Metrics().GetCounter("shuffle.bytes_read"),
  };
  return c;
}

}  // namespace

GroupWindowReader::GroupWindowReader(core::DieselServer& server,
                                     const core::MetadataSnapshot& snapshot,
                                     sim::NodeId node, size_t fetch_streams)
    : server_(server), snapshot_(snapshot), node_(node),
      fetch_streams_(std::max<size_t>(1, fetch_streams)) {}

void GroupWindowReader::StartEpoch(ShufflePlan plan) {
  Counters().epochs.Inc();
  plan_ = std::move(plan);
  pos_ = 0;
  current_group_ = static_cast<size_t>(-1);
  prefetched_.clear();
  prefetch_group_ = static_cast<size_t>(-1);
  prefetch_done_ = 0;
  FreeWindow();
}

void GroupWindowReader::FreeWindow() {
  window_.clear();
  window_bytes_ = 0;
}

Result<Nanos> GroupWindowReader::FetchGroup(Nanos start, size_t group,
                                            Window& out) {
  // The whole group goes out as ONE coalesced multi-chunk RPC: the per-RPC
  // overhead is paid once per group instead of once per chunk, while the
  // server still pulls the blobs on `fetch_streams_` parallel store streams.
  const std::vector<uint32_t>& chunk_list = plan_.group_chunks.at(group);
  if (chunk_list.empty()) return start;
  std::vector<core::ChunkId> ids;
  ids.reserve(chunk_list.size());
  for (uint32_t ci : chunk_list) ids.push_back(snapshot_.chunks().at(ci));
  sim::VirtualClock clock(start);
  DIESEL_ASSIGN_OR_RETURN(
      std::vector<Bytes> blobs,
      server_.ReadChunks(clock, node_, snapshot_.dataset(), ids,
                         fetch_streams_));
  for (size_t i = 0; i < chunk_list.size(); ++i) {
    Bytes& blob = blobs[i];
    DIESEL_ASSIGN_OR_RETURN(core::ChunkView view, core::ChunkView::Parse(blob));
    Counters().chunk_fetches.Inc();
    Counters().chunk_bytes.Inc(blob.size());
    stats_.chunk_bytes_fetched += blob.size();
    ++stats_.chunk_fetches;
    out.emplace(chunk_list[i],
                WindowChunk{core::ChunkBuffer::Wrap(std::move(blob),
                                                    view.header_len())});
  }
  return clock.now();
}

Status GroupWindowReader::LoadGroup(sim::VirtualClock& clock, size_t group) {
  obs::ScopedSpan span(server_.fabric().tracer(), "shuffle.load_group", clock,
                       node_);
  span.Note("group=" + std::to_string(group) + " chunks=" +
            std::to_string(plan_.group_chunks.at(group).size()));
  FreeWindow();
  if (prefetch_next_ && group == prefetch_group_) {
    // The background fetch started when the previous group was entered;
    // entering this group only waits for its completion.
    window_ = std::move(prefetched_);
    prefetched_.clear();
    prefetch_group_ = static_cast<size_t>(-1);
    clock.AdvanceTo(prefetch_done_);
  } else {
    DIESEL_ASSIGN_OR_RETURN(Nanos done, FetchGroup(clock.now(), group,
                                                   window_));
    clock.AdvanceTo(done);
  }
  window_bytes_ = 0;
  for (const auto& [ci, wc] : window_) window_bytes_ += wc.buffer.size();

  // Kick off the next group's background fetch.
  if (prefetch_next_ && group + 1 < plan_.num_groups()) {
    prefetched_.clear();
    DIESEL_ASSIGN_OR_RETURN(prefetch_done_,
                            FetchGroup(clock.now(), group + 1, prefetched_));
    prefetch_group_ = group + 1;
    uint64_t prefetched_bytes = 0;
    for (const auto& [ci, wc] : prefetched_) {
      prefetched_bytes += wc.buffer.size();
    }
    stats_.peak_window_bytes = std::max(
        stats_.peak_window_bytes, window_bytes_ + prefetched_bytes);
  }
  stats_.peak_window_bytes = std::max(stats_.peak_window_bytes, window_bytes_);
  Counters().groups_entered.Inc();
  ++stats_.groups_entered;
  current_group_ = group;
  return Status::Ok();
}

Result<uint32_t> GroupWindowReader::PeekIndex() const {
  if (Done()) return Status::OutOfRange("epoch exhausted");
  return plan_.file_order[pos_];
}

Result<Bytes> GroupWindowReader::Next(sim::VirtualClock& clock) {
  DIESEL_ASSIGN_OR_RETURN(core::FileSlice slice, NextSlice(clock));
  return slice.ToBytes();
}

Result<core::FileSlice> GroupWindowReader::NextSlice(sim::VirtualClock& clock) {
  if (Done()) return Status::OutOfRange("epoch exhausted");
  size_t group = plan_.GroupOf(pos_);
  if (group != current_group_) {
    DIESEL_RETURN_IF_ERROR(LoadGroup(clock, group));
  }
  const core::FileMeta& meta = snapshot_.files()[plan_.file_order[pos_]];
  size_t ci = snapshot_.ChunkIndex(meta.chunk);
  auto it = window_.find(static_cast<uint32_t>(ci));
  if (it == window_.end())
    return Status::Internal("file's chunk missing from group window: " +
                            meta.full_name);
  const WindowChunk& wc = it->second;
  uint64_t begin = wc.buffer.header_len() + meta.offset;
  if (begin + meta.length > wc.buffer.size())
    return Status::Corruption("file range past chunk end: " + meta.full_name);
  ++pos_;
  Counters().files_read.Inc();
  Counters().bytes_read.Inc(meta.length);
  ++stats_.files_read;
  stats_.bytes_read += meta.length;
  return core::FileSlice::FromBuffer(wc.buffer, begin, meta.length);
}

}  // namespace diesel::shuffle
