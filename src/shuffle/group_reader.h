// GroupWindowReader: executes a chunk-wise shuffle plan with a bounded
// chunk window (§4.3).
//
// Entering a group fetches that group's chunks from the DIESEL server as
// whole-chunk reads; every file read inside the group is then a memory copy
// from the window; leaving a group frees its chunks. Peak memory is
// ~group_size x chunk_size regardless of dataset size — the property that
// lets DIESEL keep near-cached read speed in memory-constrained scenarios
// (paper: 2 GB window for a 150 GB ImageNet epoch, >= 88% of fully-cached
// speed).
#pragma once

#include <unordered_map>

#include "common/bytes.h"
#include "core/chunk_buffer.h"
#include "core/chunk_format.h"
#include "core/server.h"
#include "core/snapshot.h"
#include "shuffle/shuffle.h"

namespace diesel::shuffle {

struct GroupReaderStats {
  uint64_t files_read = 0;
  uint64_t bytes_read = 0;
  uint64_t chunk_fetches = 0;
  uint64_t chunk_bytes_fetched = 0;
  uint64_t peak_window_bytes = 0;
  size_t groups_entered = 0;
};

class GroupWindowReader {
 public:
  /// `server` supplies chunks; `snapshot` maps files; the reader runs on
  /// behalf of `node`. All must outlive the reader. `fetch_streams` is the
  /// number of concurrent chunk fetches used when a group window loads (the
  /// FUSE daemon runs multiple DIESEL clients, §5).
  GroupWindowReader(core::DieselServer& server,
                    const core::MetadataSnapshot& snapshot, sim::NodeId node,
                    size_t fetch_streams = 4);

  /// Overlap mode: while group g is being consumed, group g+1's chunks are
  /// fetched in the background, so entering g+1 only waits for whatever of
  /// its load hasn't finished yet ("after the first few mini-batch reads,
  /// subsequent file reads can be performed directly from [the] cache",
  /// §4.3). Doubles the peak window (two groups resident).
  void set_prefetch_next_group(bool on) { prefetch_next_ = on; }

  /// Install a (possibly partitioned) epoch plan and rewind.
  void StartEpoch(ShufflePlan plan);

  bool Done() const { return pos_ >= plan_.file_order.size(); }
  size_t position() const { return pos_; }
  size_t num_files() const { return plan_.file_order.size(); }

  /// Read the next file in plan order. Loads the group window on group
  /// entry (charging `clock` with the chunk-wise reads).
  Result<Bytes> Next(sim::VirtualClock& clock);

  /// Zero-copy variant of Next(): the returned slice shares the window
  /// chunk's blob and stays valid after the window rotates past it.
  Result<core::FileSlice> NextSlice(sim::VirtualClock& clock);

  /// Index (into snapshot.files()) of the file Next() will return.
  Result<uint32_t> PeekIndex() const;

  const GroupReaderStats& stats() const { return stats_; }

 private:
  struct WindowChunk {
    core::ChunkBuffer buffer;  // shared blob + header length
  };
  using Window = std::unordered_map<uint32_t, WindowChunk>;

  Status LoadGroup(sim::VirtualClock& clock, size_t group);
  /// Fetch `group`'s chunks into `out` starting at virtual time `start`;
  /// returns the load completion time.
  Result<Nanos> FetchGroup(Nanos start, size_t group, Window& out);
  void FreeWindow();

  core::DieselServer& server_;
  const core::MetadataSnapshot& snapshot_;
  sim::NodeId node_;
  size_t fetch_streams_;
  bool prefetch_next_ = false;
  ShufflePlan plan_;
  size_t pos_ = 0;
  size_t current_group_ = static_cast<size_t>(-1);

  Window window_;
  uint64_t window_bytes_ = 0;
  // Background prefetch of the next group (valid when prefetch_group_ !=
  // SIZE_MAX): contents plus the virtual time the fetch finishes.
  Window prefetched_;
  size_t prefetch_group_ = static_cast<size_t>(-1);
  Nanos prefetch_done_ = 0;
  GroupReaderStats stats_;
};

}  // namespace diesel::shuffle
