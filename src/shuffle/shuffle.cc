#include "shuffle/shuffle.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace diesel::shuffle {

std::vector<uint32_t> ShuffleDataset(const core::MetadataSnapshot& snapshot,
                                     Rng& rng) {
  std::vector<uint32_t> order(snapshot.num_files());
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  return order;
}

size_t ShufflePlan::GroupOf(size_t pos) const {
  assert(!group_begin.empty() && pos < group_begin.back());
  // group_begin is sorted; find the last boundary <= pos.
  auto it = std::upper_bound(group_begin.begin(), group_begin.end(), pos);
  return static_cast<size_t>(it - group_begin.begin()) - 1;
}

ShufflePlan ChunkWiseShuffle(const core::MetadataSnapshot& snapshot,
                             const ChunkShuffleOptions& options, Rng& rng) {
  assert(options.group_size > 0);
  ShufflePlan plan;
  const size_t num_chunks = snapshot.chunks().size();

  // Step 1: shuffle chunk IDs.
  std::vector<uint32_t> chunk_order(num_chunks);
  std::iota(chunk_order.begin(), chunk_order.end(), 0u);
  rng.Shuffle(chunk_order);

  // Steps 2+3: split into groups; shuffle the files inside each group.
  plan.group_begin.push_back(0);
  for (size_t g = 0; g * options.group_size < num_chunks; ++g) {
    size_t lo = g * options.group_size;
    size_t hi = std::min(lo + options.group_size, num_chunks);
    std::vector<uint32_t> chunks(chunk_order.begin() + lo,
                                 chunk_order.begin() + hi);
    std::vector<uint32_t> files;
    for (uint32_t ci : chunks) {
      const std::vector<uint32_t>& in_chunk = snapshot.FilesOfChunk(ci);
      files.insert(files.end(), in_chunk.begin(), in_chunk.end());
    }
    rng.Shuffle(files);
    plan.file_order.insert(plan.file_order.end(), files.begin(), files.end());
    plan.group_begin.push_back(plan.file_order.size());
    plan.group_chunks.push_back(std::move(chunks));
  }
  return plan;
}

ShufflePlan PartitionPlan(const ShufflePlan& plan, size_t part,
                          size_t num_parts) {
  assert(num_parts > 0 && part < num_parts);
  ShufflePlan out;
  out.group_begin.push_back(0);
  for (size_t g = 0; g < plan.num_groups(); ++g) {
    if (g % num_parts != part) continue;
    out.file_order.insert(out.file_order.end(),
                          plan.file_order.begin() +
                              static_cast<ptrdiff_t>(plan.group_begin[g]),
                          plan.file_order.begin() +
                              static_cast<ptrdiff_t>(plan.group_begin[g + 1]));
    out.group_begin.push_back(out.file_order.size());
    out.group_chunks.push_back(plan.group_chunks[g]);
  }
  return out;
}

double AdjacentSameChunkFraction(const core::MetadataSnapshot& snapshot,
                                 const std::vector<uint32_t>& order) {
  if (order.size() < 2) return 0.0;
  size_t same = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const auto& a = snapshot.files()[order[i - 1]];
    const auto& b = snapshot.files()[order[i]];
    if (a.chunk == b.chunk) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(order.size() - 1);
}

}  // namespace diesel::shuffle
