// Size and time unit helpers shared by the library and the device models.
#pragma once

#include <cstdint>

namespace diesel {

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

// Virtual time is expressed in nanoseconds throughout the sim layer.
using Nanos = uint64_t;

constexpr Nanos Micros(uint64_t n) { return n * 1000ULL; }
constexpr Nanos Millis(uint64_t n) { return n * 1000000ULL; }
constexpr Nanos Seconds(double s) {
  return static_cast<Nanos>(s * 1e9);
}

constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / 1e9; }
constexpr double ToMillis(Nanos ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace diesel
