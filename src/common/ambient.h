// Thread-ambient context: a per-thread stack of (domain, value) frames that
// higher layers use to carry implicit context — e.g. the tracer's open-span
// stack — without plumbing it through every call signature.
//
// Living in `common` (below every other layer) lets `ThreadPool::Submit`
// capture the submitting thread's frames and restore them inside the worker,
// so work handed to a pool keeps its logical parent context even though it
// runs on a different OS thread. Domains are opaque pointers (typically the
// address of the owning object), so independent facilities never collide.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace diesel {

class Ambient {
 public:
  using Frame = std::pair<const void*, uint64_t>;
  using Frames = std::vector<Frame>;

  /// Push a frame onto the calling thread's stack.
  static void Push(const void* domain, uint64_t value);

  /// Pop the innermost frame matching (domain, value). Tolerates (skips
  /// over) out-of-order frames rather than corrupting the stack.
  static void Pop(const void* domain, uint64_t value);

  /// Innermost value for `domain`, or `fallback` when none is open.
  static uint64_t Top(const void* domain, uint64_t fallback);

  /// Snapshot of the calling thread's full stack (all domains).
  static Frames Capture();

  /// RAII: installs a captured stack on the current thread for the scope's
  /// lifetime and restores the previous stack on destruction. Used by
  /// ThreadPool workers to run each task under its submitter's context.
  class Scope {
   public:
    explicit Scope(Frames frames);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Frames saved_;
  };
};

}  // namespace diesel
