#include "common/status.h"

namespace diesel {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kStale: return "Stale";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace diesel
