// Minimal deterministic JSON document model for the perf-trajectory layer.
//
// The observability plane emits JSON (metrics snapshots, bench reports) as
// strings; the baseline/diff engine must read those artifacts back. This is
// a small recursive-descent parser plus a canonical writer: objects keep
// their insertion/parse order, numbers re-emit either their original source
// text (parse -> dump is byte-identical) or the shortest printf form that
// round-trips through strtod, so the same document always serializes to the
// same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace diesel {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double v);
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(int64_t v);
  JsonValue(uint64_t v);
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  /// Parse a complete document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }

  /// Object field lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed convenience lookups with defaults for optional schema fields.
  double GetNumber(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;

  /// Builders (no-ops with an assert-like fallback on wrong type: Append on
  /// a null value first turns it into an array, Set into an object).
  void Append(JsonValue v);
  void Set(std::string key, JsonValue v);

  /// Canonical serialization: 2-space indent per depth, fields in stored
  /// order, parsed numbers re-emitted verbatim. Deterministic.
  std::string Dump() const;

  /// Parser-internal: attach the source text a parsed number came from so
  /// Dump() re-emits it verbatim (byte-stable round trip).
  void SetRawNumber(std::string raw) { number_raw_ = std::move(raw); }

 private:
  void DumpTo(std::string& out, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string number_raw_;  // source text when parsed; canonical otherwise
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string JsonEscapeString(std::string_view s);

/// Shortest printf form of `v` that parses back to exactly `v`.
std::string JsonNumberToString(double v);

}  // namespace diesel
