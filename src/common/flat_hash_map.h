// Open-addressing hash map with linear probing and backward-shift deletion.
//
// Stand-in for the parallel-hashmap dependency the paper's client uses for
// the in-memory metadata snapshot (§5 "we use parallel-hashmap to replace the
// standard hashmap in the STL"). Compared to std::unordered_map it stores
// slots contiguously (no per-node allocation), which is what makes snapshot
// lookups O(1) with small constants.
//
// Requirements: Key is hashable via Hash and equality-comparable; Value is
// movable. Not thread-safe; callers synchronize externally (the snapshot is
// read-only after load, so concurrent readers need no locking).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace diesel {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, Value>;

  FlatHashMap() = default;
  explicit FlatHashMap(size_t expected) { reserve(expected); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(size_t n) {
    size_t needed = NextPow2(n * 4 / 3 + 1);
    if (needed > slots_.size()) Rehash(needed);
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Insert or overwrite. Returns true if a new key was inserted.
  bool InsertOrAssign(Key key, Value value) {
    MaybeGrow();
    size_t mask = slots_.size() - 1;
    size_t idx = Hash{}(key)&mask;
    for (;;) {
      Slot& s = slots_[idx];
      if (!s.used) {
        s.used = true;
        s.kv.first = std::move(key);
        s.kv.second = std::move(value);
        ++size_;
        return true;
      }
      if (Eq{}(s.kv.first, key)) {
        s.kv.second = std::move(value);
        return false;
      }
      idx = (idx + 1) & mask;
    }
  }

  Value* Find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }

  const Value* Find(const Key& key) const {
    if (slots_.empty()) return nullptr;
    size_t mask = slots_.size() - 1;
    size_t idx = Hash{}(key)&mask;
    for (;;) {
      const Slot& s = slots_[idx];
      if (!s.used) return nullptr;
      if (Eq{}(s.kv.first, key)) return &s.kv.second;
      idx = (idx + 1) & mask;
    }
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Erase with backward-shift so probe chains stay contiguous.
  bool Erase(const Key& key) {
    if (slots_.empty()) return false;
    size_t mask = slots_.size() - 1;
    size_t idx = Hash{}(key)&mask;
    for (;;) {
      Slot& s = slots_[idx];
      if (!s.used) return false;
      if (Eq{}(s.kv.first, key)) break;
      idx = (idx + 1) & mask;
    }
    // Backward shift: pull successors whose home slot precedes the hole.
    size_t hole = idx;
    size_t next = (hole + 1) & mask;
    while (slots_[next].used) {
      size_t home = Hash{}(slots_[next].kv.first) & mask;
      // Move back unless the element already sits at or after its home
      // within the cyclic range (hole, next].
      bool movable = ((next - home) & mask) >= ((next - hole) & mask);
      if (movable) {
        slots_[hole].kv = std::move(slots_[next].kv);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole].used = false;
    slots_[hole].kv = value_type{};
    --size_;
    return true;
  }

  /// Visit every entry: fn(const Key&, Value&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }

 private:
  struct Slot {
    bool used = false;
    value_type kv;
  };

  static size_t NextPow2(size_t n) {
    size_t p = 16;
    while (p < n) p <<= 1;
    return p;
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 4 >= slots_.size() * 3) {  // load factor 0.75
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && "capacity must be a power of two");
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) InsertOrAssign(std::move(s.kv.first), std::move(s.kv.second));
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace diesel
