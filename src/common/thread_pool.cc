#include "common/thread_pool.h"

#include <atomic>
#include <cassert>

#include "common/ambient.h"

namespace diesel {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Capture the submitter's ambient context (e.g. the tracer's open-span
  // stack) so the task runs under its logical parent even though it
  // executes on a worker thread.
  auto wrapped = [frames = Ambient::Capture(), task = std::move(task)]() mutable {
    Ambient::Scope scope(std::move(frames));
    task();
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!stop_);
    queue_.push_back(std::move(wrapped));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  size_t shards = std::min(n, workers_.size());
  for (size_t w = 0; w < shards; ++w) {
    Submit([&next, n, &fn] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace diesel
