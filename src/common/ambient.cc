#include "common/ambient.h"

namespace diesel {
namespace {

thread_local Ambient::Frames t_frames;

}  // namespace

void Ambient::Push(const void* domain, uint64_t value) {
  t_frames.emplace_back(domain, value);
}

void Ambient::Pop(const void* domain, uint64_t value) {
  for (auto it = t_frames.rbegin(); it != t_frames.rend(); ++it) {
    if (it->first == domain && it->second == value) {
      t_frames.erase(std::next(it).base());
      return;
    }
  }
}

uint64_t Ambient::Top(const void* domain, uint64_t fallback) {
  for (auto it = t_frames.rbegin(); it != t_frames.rend(); ++it) {
    if (it->first == domain) return it->second;
  }
  return fallback;
}

Ambient::Frames Ambient::Capture() { return t_frames; }

Ambient::Scope::Scope(Frames frames) : saved_(std::move(t_frames)) {
  t_frames = std::move(frames);
}

Ambient::Scope::~Scope() { t_frames = std::move(saved_); }

}  // namespace diesel
