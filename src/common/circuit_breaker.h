// Per-target circuit breaker over virtual time.
//
// Wraps calls to one remote target (a peer master node, a server): after
// `failure_threshold` consecutive failures the breaker opens and callers
// fail over immediately instead of paying the fault-detection timeout on
// every request. After `cooldown` of virtual time one half-open probe is let
// through; its outcome closes the breaker (target recovered) or re-opens it
// for another cooldown. All timing is virtual — state changes are driven by
// the timestamps callers pass in, never by wall-clock.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/units.h"

namespace diesel {

struct CircuitBreakerConfig {
  /// Consecutive failures that open the breaker.
  uint32_t failure_threshold = 3;
  /// Virtual time the breaker stays open before allowing a half-open probe.
  Nanos cooldown = Millis(50);
};

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  /// State-change reported back to the caller so it can run side effects
  /// (drop a lost partition on kOpened, trigger reload on kRecovered).
  enum class Transition : uint8_t { kNone, kOpened, kRecovered };

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  /// May a request be sent at virtual time `now`? Closed: always. Open:
  /// only once the cooldown has elapsed, and then exactly one caller wins
  /// the half-open probe slot until its outcome is reported.
  bool AllowRequest(Nanos now);

  Transition OnSuccess(Nanos now);
  Transition OnFailure(Nanos now);

  State state() const;
  uint64_t times_opened() const;

 private:
  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  Nanos open_until_ = 0;
  bool probe_in_flight_ = false;
  uint64_t times_opened_ = 0;
};

}  // namespace diesel
