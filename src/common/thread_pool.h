// Fixed-size thread pool used by real-time components (chunk building,
// parallel ingest, test drivers). Simulation workers do not use this pool;
// they run as plain logical workers with virtual clocks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diesel {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; tasks run FIFO across workers.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace diesel
