// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Logging is off by default at DEBUG level so benchmarks stay quiet; tests
// may raise verbosity. Use DIESEL_LOG(INFO) << ... streaming syntax.
//
// The initial level can be set through the DIESEL_LOG_LEVEL environment
// variable ("debug"/"info"/"warn"/"error" or 0..3); SetLogLevel overrides
// it. When a virtual-time source is registered (SetLogTimeSource), each
// line carries the current virtual timestamp ("@1234ns") so log output can
// be lined up against trace dumps.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string_view>

#include "common/units.h"

namespace diesel {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Re-read DIESEL_LOG_LEVEL and apply it. Returns false (leaving the level
/// unchanged) when the variable is unset or unparsable. Called implicitly
/// before the first message; exposed for tests and long-lived tools.
bool InitLogLevelFromEnv();

/// Register a virtual-time source (e.g. [&clock] { return clock.now(); }).
/// Pass nullptr to detach. The source is read outside the write lock, so it
/// must be safe to call from any logging thread.
void SetLogTimeSource(std::function<Nanos()> source);

/// Redirect formatted lines (without trailing newline) to `sink` instead of
/// stderr; nullptr restores stderr. For tests capturing log output.
void SetLogSink(std::function<void(const std::string&)> sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace diesel

#define DIESEL_LOG(severity)                                        \
  ::diesel::internal::LogMessage(::diesel::LogLevel::k##severity,   \
                                 __FILE__, __LINE__)
