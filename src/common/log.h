// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Logging is off by default at DEBUG level so benchmarks stay quiet; tests
// may raise verbosity. Use DIESEL_LOG(INFO) << ... streaming syntax.
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace diesel {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace diesel

#define DIESEL_LOG(severity)                                        \
  ::diesel::internal::LogMessage(::diesel::LogLevel::k##severity,   \
                                 __FILE__, __LINE__)
