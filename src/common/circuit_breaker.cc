#include "common/circuit_breaker.h"

#include <algorithm>

namespace diesel {

bool CircuitBreaker::AllowRequest(Nanos now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

CircuitBreaker::Transition CircuitBreaker::OnSuccess(Nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (state_ == State::kClosed) return Transition::kNone;
  state_ = State::kClosed;
  return Transition::kRecovered;
}

CircuitBreaker::Transition CircuitBreaker::OnFailure(Nanos now) {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open for another cooldown.
    state_ = State::kOpen;
    open_until_ = now + config_.cooldown;
    return Transition::kNone;
  }
  if (state_ == State::kOpen) return Transition::kNone;
  ++consecutive_failures_;
  if (consecutive_failures_ < std::max<uint32_t>(1, config_.failure_threshold))
    return Transition::kNone;
  state_ = State::kOpen;
  open_until_ = now + config_.cooldown;
  ++times_opened_;
  return Transition::kOpened;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_opened_;
}

}  // namespace diesel
