#include "common/retry.h"

#include "common/hash.h"

namespace diesel {

Nanos RetryPolicy::BackoffBefore(uint32_t attempt) const {
  double base = static_cast<double>(initial_backoff);
  for (uint32_t i = 1; i < attempt; ++i) {
    base *= backoff_multiplier;
    if (base >= static_cast<double>(max_backoff)) break;
  }
  base = std::min(base, static_cast<double>(max_backoff));
  // Deterministic jitter in [1 - jitter_frac, 1 + jitter_frac].
  uint64_t h = Mix64(jitter_seed ^ (0x517CC1B727220A95ULL * (attempt + 1)));
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  double factor = 1.0 + jitter_frac * (2.0 * unit - 1.0);
  return static_cast<Nanos>(base * factor);
}

}  // namespace diesel
