// Order-preserving base64 for chunk IDs.
//
// The paper stores chunk IDs as printable characters and relies on the
// lexicographic order of the encoded form matching write order (§4.1.2).
// Standard base64's alphabet is not ASCII-ordered, so we use the
// ASCII-sorted alphabet "-0..9A..Z_a..z": for equal-length inputs,
// memcmp(encode(a), encode(b)) == memcmp(a, b).
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace diesel {

/// Encode bytes with the lexicographic base64 alphabet (no padding).
std::string Base64LexEncode(BytesView data);

/// Decode; rejects characters outside the alphabet and impossible lengths.
Result<Bytes> Base64LexDecode(std::string_view text);

}  // namespace diesel
