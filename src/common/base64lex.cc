#include "common/base64lex.h"

#include <array>

namespace diesel {
namespace {

// ASCII-sorted 64-character alphabet: '-' < '0'-'9' < 'A'-'Z' < '_' < 'a'-'z'.
constexpr std::string_view kAlphabet =
    "-0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ_abcdefghijklmnopqrstuvwxyz";
static_assert(kAlphabet.size() == 64);

constexpr std::array<int8_t, 256> MakeInverse() {
  std::array<int8_t, 256> inv{};
  for (auto& v : inv) v = -1;
  for (size_t i = 0; i < kAlphabet.size(); ++i) {
    inv[static_cast<uint8_t>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return inv;
}

constexpr auto kInverse = MakeInverse();

}  // namespace

std::string Base64LexEncode(BytesView data) {
  std::string out;
  out.reserve((data.size() * 4 + 2) / 3);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (uint32_t{data[i]} << 16) | (uint32_t{data[i + 1]} << 8) |
                 uint32_t{data[i + 2]};
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += kAlphabet[v & 63];
    i += 3;
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = uint32_t{data[i]} << 16;
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
  } else if (rem == 2) {
    uint32_t v = (uint32_t{data[i]} << 16) | (uint32_t{data[i + 1]} << 8);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
  }
  return out;
}

Result<Bytes> Base64LexDecode(std::string_view text) {
  size_t rem = text.size() % 4;
  if (rem == 1) return Status::InvalidArgument("base64lex: impossible length");
  Bytes out;
  out.reserve(text.size() * 3 / 4);
  uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    int8_t v = kInverse[static_cast<uint8_t>(c)];
    if (v < 0) return Status::InvalidArgument("base64lex: invalid character");
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace diesel
