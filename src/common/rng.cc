#include "common/rng.h"

#include <cmath>

namespace diesel {

double Rng::NextGaussian() {
  // Box–Muller; consumes exactly two uniforms per pair, caching nothing so
  // forked streams stay independent of call parity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace diesel
