// Deterministic RNG used everywhere (workloads, shuffles, shard placement).
//
// xoshiro256** seeded via SplitMix64. Every stochastic component takes an
// explicit seed so experiments are reproducible run-to-run; no component
// reads entropy from the environment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace diesel {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 stream fills the xoshiro state; avoids all-zero state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      s = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Debiased via rejection.
  uint64_t Uniform(uint64_t bound) {
    // Lemire-style bounded generation with rejection on the biased zone.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (polar form avoided for determinism).
  double NextGaussian();

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-worker RNGs).
  Rng Fork() { return Rng(Mix64(Next())); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace diesel
