// Streaming histogram for latency/throughput reporting in the bench harness.
//
// Log-bucketed (base-2 with 16 sub-buckets per octave) so it covers ns..hours
// with bounded memory and ~3% relative quantile error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diesel {

class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile; linear interpolation inside the winning bucket. `q` is
  /// clamped into [0,1] (NaN counts as 0), never used to index out of range.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }

  /// One-line summary "count=.. mean=.. p50=.. p99=.. max=..".
  std::string Summary() const;

  /// JSON object {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  /// "p50":..,"p90":..,"p99":..} with deterministic %.6g doubles.
  std::string SummaryJson() const;

  /// Interval view: the histogram of values added after `earlier` was
  /// captured, assuming `earlier` is a prefix of this stream (bucket counts
  /// subtract; mismatches clamp to zero). min/max of the interval are
  /// approximated from the surviving buckets' bounds.
  Histogram DeltaSince(const Histogram& earlier) const;

 private:
  static size_t BucketFor(double v);
  static double BucketLow(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace diesel
