// Streaming histogram for latency/throughput reporting in the bench harness.
//
// Log-bucketed (base-2 with 16 sub-buckets per octave) so it covers ns..hours
// with bounded memory and ~3% relative quantile error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diesel {

class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile in [0,1]; linear interpolation inside the winning bucket.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }

  /// One-line summary "count=.. mean=.. p50=.. p99=.. max=..".
  std::string Summary() const;

 private:
  static size_t BucketFor(double v);
  static double BucketLow(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace diesel
