// Streaming histogram for latency/throughput reporting in the bench harness.
//
// Log-bucketed (base-2 with 16 sub-buckets per octave) so it covers ns..hours
// with bounded memory and ~3% relative quantile error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diesel {

/// A tail observation annotated with the trace span that produced it, so a
/// p99 in a histogram can be resolved back to the request's span tree.
struct HistogramExemplar {
  double value = 0.0;
  uint64_t trace_id = 0;  // span id; 0 = no active trace
  double at = 0.0;        // virtual-time timestamp of the observation (ns)
};

class Histogram {
 public:
  Histogram();

  void Add(double value);
  /// Add, and if `trace_id` is non-zero and `value` lands above the exemplar
  /// threshold quantile, retain {value, trace_id, at} as a tail exemplar.
  /// Keeps the `kMaxExemplars` largest observations (deterministic ordering:
  /// value desc, then at asc, then trace_id asc).
  void AddWithExemplar(double value, uint64_t trace_id, double at);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile; geometric (log-space) interpolation inside the winning log
  /// bucket, matching the multiplicative bucket layout. `q` is clamped into
  /// [0,1] (NaN counts as 0), never used to index out of range.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }

  /// Quantile above which AddWithExemplar retains observations. Default 0.99.
  void SetExemplarQuantile(double q) { exemplar_quantile_ = q; }
  double exemplar_quantile() const { return exemplar_quantile_; }
  /// Retained tail exemplars, largest value first.
  const std::vector<HistogramExemplar>& exemplars() const { return exemplars_; }

  static constexpr size_t kMaxExemplars = 8;

  /// One-line summary "count=.. mean=.. p50=.. p99=.. max=..".
  std::string Summary() const;

  /// JSON object {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  /// "p50":..,"p90":..,"p99":..} with deterministic %.6g doubles. When tail
  /// exemplars were captured, an "exemplars" array of {"v","trace","at"}
  /// objects is appended (absent otherwise, keeping pre-exemplar output
  /// byte-identical).
  std::string SummaryJson() const;

  /// Interval view: the histogram of values added after `earlier` was
  /// captured, assuming `earlier` is a prefix of this stream (bucket counts
  /// subtract; mismatches clamp to zero). min/max of the interval are
  /// approximated from the surviving buckets' bounds. Exemplars present in
  /// `earlier` are dropped from the delta.
  Histogram DeltaSince(const Histogram& earlier) const;

 private:
  static size_t BucketFor(double v);
  static double BucketLow(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double exemplar_quantile_ = 0.99;
  std::vector<HistogramExemplar> exemplars_;
};

}  // namespace diesel
