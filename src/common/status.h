// Status / Result error-handling primitives for the DIESEL library.
//
// All fallible public APIs return Status (no payload) or Result<T>
// (payload-or-error). Exceptions are reserved for programmer errors
// (precondition violations) and never cross module boundaries.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace diesel {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kUnavailable,      // transient: node down, shard lost
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kStale,            // snapshot/metadata out of date
  kInternal,
};

/// Human-readable name of a status code ("NotFound", "Corruption", ...).
std::string_view StatusCodeName(StatusCode code);

/// Error-or-success descriptor. Cheap to copy when OK (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status Corruption(std::string m) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status IoError(std::string m) {
    return {StatusCode::kIoError, std::move(m)};
  }
  static Status OutOfRange(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Stale(std::string m) {
    return {StatusCode::kStale, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsStale() const { return code_ == StatusCode::kStale; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. Non-OK Result never holds a value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {     // NOLINT(implicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> data_;
};

// Propagate a non-OK Status out of the enclosing function.
#define DIESEL_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::diesel::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define DIESEL_CONCAT_INNER(a, b) a##b
#define DIESEL_CONCAT(a, b) DIESEL_CONCAT_INNER(a, b)

// Evaluate a Result expression; on error return its Status, else bind `lhs`.
#define DIESEL_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto DIESEL_CONCAT(_res_, __LINE__) = (expr);                  \
  if (!DIESEL_CONCAT(_res_, __LINE__).ok())                      \
    return DIESEL_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(DIESEL_CONCAT(_res_, __LINE__)).value()

}  // namespace diesel
