#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace diesel {
namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    JsonValue v;
    Status st = ParseValue(v, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(s);
        if (!st.ok()) return st;
        out = JsonValue(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          out = JsonValue(true);
          return Status::Ok();
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          out = JsonValue(false);
          return Status::Ok();
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          out = JsonValue();
          return Status::Ok();
        }
        return Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      std::string key;
      Status st = ParseString(key);
      if (!st.ok()) return st;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      st = ParseValue(v, depth + 1);
      if (!st.ok()) return st;
      out.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue v;
      Status st = ParseValue(v, depth + 1);
      if (!st.ok()) return st;
      out.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) return Fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs re-emit as two escapes
          // is not needed for our identifier-only strings).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return Fail("expected value");
    std::string raw(text_.substr(start, pos_ - start));
    out = JsonValue(std::strtod(raw.c_str(), nullptr));
    out.SetRawNumber(std::move(raw));
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue::JsonValue(double v) : type_(Type::kNumber), number_(v) {}

JsonValue::JsonValue(int64_t v)
    : type_(Type::kNumber), number_(static_cast<double>(v)) {
  number_raw_ = std::to_string(v);
}

JsonValue::JsonValue(uint64_t v)
    : type_(Type::kNumber), number_(static_cast<double>(v)) {
  number_raw_ = std::to_string(v);
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

void JsonValue::Append(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  assert(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  assert(type_ == Type::kObject);
  object_.emplace_back(std::move(key), std::move(v));
}

std::string JsonEscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumberToString(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";  // JSON has no inf/nan
  // Integers print exactly (covers counters up to 2^53 losslessly).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest %g form that round-trips.
  for (int prec = 9; prec <= 17; ++prec) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return "0";  // unreachable: %.17g always round-trips
}

void JsonValue::DumpTo(std::string& out, int depth) const {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<size_t>(depth + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber:
      out += number_raw_.empty() ? JsonNumberToString(number_) : number_raw_;
      break;
    case Type::kString:
      out += '"';
      out += JsonEscapeString(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        out += inner;
        array_[i].DumpTo(out, depth + 1);
        out += i + 1 < array_.size() ? ",\n" : "\n";
      }
      out += indent + "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        out += inner + "\"" + JsonEscapeString(object_[i].first) + "\": ";
        object_[i].second.DumpTo(out, depth + 1);
        out += i + 1 < object_.size() ? ",\n" : "\n";
      }
      out += indent + "}";
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += "\n";
  return out;
}

}  // namespace diesel
