// CRC32C (Castagnoli) for chunk payload and header integrity checks.
#pragma once

#include <cstdint>
#include <span>

namespace diesel {

/// CRC32C of `data`, continuing from `crc` (pass 0 to start).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t crc = 0);

}  // namespace diesel
