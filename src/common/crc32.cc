#include "common/crc32.h"

#include <array>

namespace diesel {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t crc) {
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace diesel
