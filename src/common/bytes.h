// Bounds-checked binary serialization helpers.
//
// All on-disk / on-wire DIESEL structures (chunk headers, KV metadata values,
// snapshots) are encoded little-endian through BinaryWriter and decoded
// through BinaryReader. BinaryReader never reads past the end: every
// accessor reports kCorruption instead.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace diesel {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

inline BytesView AsBytesView(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}
inline BytesView AsBytesView(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}
inline std::string ToString(BytesView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Append-only little-endian encoder.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }

  /// Raw bytes, no length prefix.
  void PutRaw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// u32 length prefix + bytes.
  void PutBytes(BytesView data) {
    PutU32(static_cast<uint32_t>(data.size()));
    PutRaw(data);
  }
  void PutString(std::string_view s) { PutBytes(AsBytesView(s)); }

  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

  /// Overwrite 4 bytes at `offset` (for back-patching lengths/checksums).
  void PatchU32(size_t offset, uint32_t v) {
    assert(offset + 4 <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, 4);
  }

 private:
  template <typename T>
  void PutLE(T v) {
    // Little-endian hosts only (asserted in bytes.cc); memcpy keeps it UB-free.
    uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  Bytes buf_;
};

/// Bounds-checked little-endian decoder over a non-owning view.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  Result<uint8_t> ReadU8() { return ReadLE<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadLE<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadLE<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLE<uint64_t>(); }
  Result<int64_t> ReadI64() {
    DIESEL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    return static_cast<int64_t>(bits);
  }
  Result<double> ReadDouble() {
    DIESEL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<BytesView> ReadRaw(size_t n) {
    if (remaining() < n)
      return Status::Corruption("BinaryReader: truncated raw read");
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Result<BytesView> ReadBytes() {
    DIESEL_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    return ReadRaw(n);
  }
  Result<std::string> ReadString() {
    DIESEL_ASSIGN_OR_RETURN(BytesView b, ReadBytes());
    return ToString(b);
  }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size())
        return Status::Corruption("BinaryReader: truncated varint");
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return Status::Corruption("BinaryReader: varint too long");
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Status::Corruption("BinaryReader: skip past end");
    pos_ += n;
    return Status::Ok();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> ReadLE() {
    if (remaining() < sizeof(T))
      return Status::Corruption("BinaryReader: truncated fixed read");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace diesel
