// Retry with capped exponential backoff over virtual time.
//
// Transient faults (node flaps, injected RPC drops, briefly-down KV shards)
// surface as Status::Unavailable. RetryPolicy re-drives the operation with
// exponential backoff and deterministic jitter, charging every wait to the
// caller's VirtualClock — never a wall-clock sleep — so fault runs stay
// bit-reproducible. Only kUnavailable is retried: every other code (NotFound,
// Corruption, Stale, ...) is a semantic answer, not a transient fault.
//
// The paper's own stack behaves this way: §5.1 notes libMemcached's
// timeout/retry/backoff on connection failure (modeled as a latency constant
// in sim/calibration.h); DIESEL's Thrift clients get the equivalent here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "sim/clock.h"

namespace diesel {

struct RetryPolicy {
  /// Total tries including the first. <= 1 disables retrying.
  uint32_t max_attempts = 4;
  Nanos initial_backoff = Micros(500);
  double backoff_multiplier = 2.0;
  Nanos max_backoff = Millis(50);
  /// Virtual-time budget for the whole operation (waits included), measured
  /// from the first attempt. 0 = unlimited. A retry whose backoff would
  /// exceed the budget is not attempted.
  Nanos deadline_budget = Millis(500);
  /// Deterministic jitter: each backoff is scaled by a factor drawn from
  /// [1 - jitter_frac, 1 + jitter_frac] via a hash of (jitter_seed, attempt).
  double jitter_frac = 0.25;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;

  /// Backoff charged before retry number `attempt` (1 = first retry).
  Nanos BackoffBefore(uint32_t attempt) const;

  /// Drive `fn` (returning Status) until it succeeds, fails with a
  /// non-transient code, or the policy is exhausted. Backoff waits advance
  /// `clock`; the last Status is returned.
  template <typename Fn>
  Status Run(sim::VirtualClock& clock, Fn&& fn) const {
    const Nanos start = clock.now();
    for (uint32_t attempt = 1;; ++attempt) {
      Status st = fn();
      if (!st.IsUnavailable()) return st;
      if (attempt >= std::max<uint32_t>(1, max_attempts)) return st;
      Nanos wait = BackoffBefore(attempt);
      if (deadline_budget != 0 &&
          clock.now() - start + wait > deadline_budget) {
        return st;
      }
      clock.Advance(wait);
    }
  }

  /// Result<T> flavour of Run().
  template <typename T, typename Fn>
  Result<T> RunResult(sim::VirtualClock& clock, Fn&& fn) const {
    const Nanos start = clock.now();
    for (uint32_t attempt = 1;; ++attempt) {
      Result<T> r = fn();
      if (!r.status().IsUnavailable()) return r;
      if (attempt >= std::max<uint32_t>(1, max_attempts)) return r;
      Nanos wait = BackoffBefore(attempt);
      if (deadline_budget != 0 &&
          clock.now() - start + wait > deadline_budget) {
        return r;
      }
      clock.Advance(wait);
    }
  }
};

}  // namespace diesel
