// Hash functions used across DIESEL.
//
// - Fnv1a64: streaming-friendly path/namespace hashing (metadata keys).
// - Mix64: finalizer-quality integer mixing (shard placement, RNG seeding).
// - HashCombine: aggregate hashing for composite keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace diesel {

/// FNV-1a 64-bit over an arbitrary byte string.
constexpr uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash of a filesystem path's parent directory, used as the metadata-key
/// prefix so one directory's entries share a contiguous pscan range.
inline uint64_t PathHash(std::string_view path) { return Fnv1a64(path); }

}  // namespace diesel
