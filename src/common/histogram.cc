#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace diesel {
namespace {

constexpr int kSubBuckets = 16;       // per power of two
constexpr int kOctaves = 64;          // covers [1, 2^64)
constexpr size_t kNumBuckets = kSubBuckets * kOctaves + 1;  // +1 for v < 1

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double v) {
  if (v < 1.0) return 0;
  int exp;
  double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kNumBuckets - 1;
  int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);  // [0,16)
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
}

double Histogram::BucketLow(size_t index) {
  if (index == 0) return 0.0;
  size_t i = index - 1;
  size_t octave = i / kSubBuckets;
  size_t sub = i % kSubBuckets;
  double base = std::ldexp(1.0, static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  // Hand-rolled clamp: std::clamp(NaN, ...) is unspecified, and an
  // unclamped q would index past the bucket array below.
  if (!(q >= 0.0)) q = 0.0;  // negative or NaN
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > target) {
      double lo = std::max(BucketLow(i), min_);
      double hi = std::min(i + 1 < buckets_.size() ? BucketLow(i + 1) : max_, max_);
      if (hi < lo) hi = lo;
      double within = buckets_[i] > 1
          ? static_cast<double>(target - seen) / static_cast<double>(buckets_[i] - 1)
          : 0.0;
      return lo + (hi - lo) * within;
    }
    seen += buckets_[i];
  }
  return max_;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  if (earlier.count_ == 0) return *this;
  Histogram delta;
  if (count_ <= earlier.count_) return delta;  // empty interval
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  size_t first = buckets_.size(), last = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t base = std::min(buckets_[i], earlier.buckets_[i]);
    delta.buckets_[i] = buckets_[i] - base;
    if (delta.buckets_[i] > 0) {
      first = std::min(first, i);
      last = i;
    }
  }
  // Exact min/max of the interval are gone; bound them by the surviving
  // buckets, tightened by the lifetime extremes.
  delta.min_ = std::max(BucketLow(first), min_);
  delta.max_ = last + 1 < buckets_.size() ? std::min(BucketLow(last + 1), max_)
                                          : max_;
  if (delta.max_ < delta.min_) delta.max_ = delta.min_;
  return delta;
}

std::string Histogram::SummaryJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"sum\": %.6g, \"min\": %.6g, "
                "\"max\": %.6g, \"mean\": %.6g, \"p50\": %.6g, "
                "\"p90\": %.6g, \"p99\": %.6g}",
                static_cast<unsigned long long>(count_), sum_, min(), max(),
                Mean(), Median(), Quantile(0.9), P99());
  return buf;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), Mean(), Median(),
                P99(), min(), max());
  return buf;
}

}  // namespace diesel
