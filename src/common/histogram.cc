#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace diesel {
namespace {

constexpr int kSubBuckets = 16;       // per power of two
constexpr int kOctaves = 64;          // covers [1, 2^64)
constexpr size_t kNumBuckets = kSubBuckets * kOctaves + 1;  // +1 for v < 1

/// Deterministic exemplar ordering: largest value first; ties broken by
/// earliest timestamp, then smallest span id.
bool ExemplarBefore(const HistogramExemplar& a, const HistogramExemplar& b) {
  if (a.value != b.value) return a.value > b.value;
  if (a.at != b.at) return a.at < b.at;
  return a.trace_id < b.trace_id;
}

bool ExemplarEqual(const HistogramExemplar& a, const HistogramExemplar& b) {
  return a.value == b.value && a.trace_id == b.trace_id && a.at == b.at;
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double v) {
  if (v < 1.0) return 0;
  int exp;
  double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kNumBuckets - 1;
  int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);  // [0,16)
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
}

double Histogram::BucketLow(size_t index) {
  if (index == 0) return 0.0;
  size_t i = index - 1;
  size_t octave = i / kSubBuckets;
  size_t sub = i % kSubBuckets;
  double base = std::ldexp(1.0, static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::AddWithExemplar(double value, uint64_t trace_id, double at) {
  Add(value);
  if (trace_id == 0) return;
  // Only tail observations become exemplars: at or above the threshold
  // quantile of everything seen so far (the new value included).
  if (count_ > 1 && value < Quantile(exemplar_quantile_)) return;
  HistogramExemplar ex{value, trace_id, at};
  auto pos = std::lower_bound(exemplars_.begin(), exemplars_.end(), ex,
                              ExemplarBefore);
  if (pos != exemplars_.end() && ExemplarEqual(*pos, ex)) return;
  exemplars_.insert(pos, ex);
  if (exemplars_.size() > kMaxExemplars) exemplars_.pop_back();
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (!other.exemplars_.empty()) {
    exemplars_.insert(exemplars_.end(), other.exemplars_.begin(),
                      other.exemplars_.end());
    std::sort(exemplars_.begin(), exemplars_.end(), ExemplarBefore);
    exemplars_.erase(std::unique(exemplars_.begin(), exemplars_.end(),
                                 ExemplarEqual),
                     exemplars_.end());
    if (exemplars_.size() > kMaxExemplars) exemplars_.resize(kMaxExemplars);
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  exemplars_.clear();
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  // Hand-rolled clamp: std::clamp(NaN, ...) is unspecified, and an
  // unclamped q would index past the bucket array below.
  if (!(q >= 0.0)) q = 0.0;  // negative or NaN
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > target) {
      double lo = std::max(BucketLow(i), min_);
      double hi = std::min(i + 1 < buckets_.size() ? BucketLow(i + 1) : max_, max_);
      if (hi < lo) hi = lo;
      double within = buckets_[i] > 1
          ? static_cast<double>(target - seen) / static_cast<double>(buckets_[i] - 1)
          : 0.0;
      // Buckets are multiplicative, so interpolate in log space: the
      // geometric path from lo to hi matches the bucket layout and lands on
      // the geometric midpoint at within=0.5. Bucket 0 reaches down to zero
      // where log space degenerates; fall back to linear there.
      if (lo > 0.0 && hi > lo) return lo * std::pow(hi / lo, within);
      return lo + (hi - lo) * within;
    }
    seen += buckets_[i];
  }
  return max_;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  if (earlier.count_ == 0) return *this;
  Histogram delta;
  if (count_ <= earlier.count_) return delta;  // empty interval
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  size_t first = buckets_.size(), last = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t base = std::min(buckets_[i], earlier.buckets_[i]);
    delta.buckets_[i] = buckets_[i] - base;
    if (delta.buckets_[i] > 0) {
      first = std::min(first, i);
      last = i;
    }
  }
  // Exact min/max of the interval are gone; bound them by the surviving
  // buckets, tightened by the lifetime extremes.
  delta.min_ = std::max(BucketLow(first), min_);
  delta.max_ = last + 1 < buckets_.size() ? std::min(BucketLow(last + 1), max_)
                                          : max_;
  if (delta.max_ < delta.min_) delta.max_ = delta.min_;
  delta.exemplar_quantile_ = exemplar_quantile_;
  // Exemplars the earlier snapshot already held belong to the prefix, not
  // the interval.
  for (const HistogramExemplar& ex : exemplars_) {
    bool in_earlier = false;
    for (const HistogramExemplar& old : earlier.exemplars_) {
      if (ExemplarEqual(ex, old)) {
        in_earlier = true;
        break;
      }
    }
    if (!in_earlier) delta.exemplars_.push_back(ex);
  }
  return delta;
}

std::string Histogram::SummaryJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"sum\": %.6g, \"min\": %.6g, "
                "\"max\": %.6g, \"mean\": %.6g, \"p50\": %.6g, "
                "\"p90\": %.6g, \"p99\": %.6g",
                static_cast<unsigned long long>(count_), sum_, min(), max(),
                Mean(), Median(), Quantile(0.9), P99());
  std::string out(buf);
  if (!exemplars_.empty()) {
    out += ", \"exemplars\": [";
    for (size_t i = 0; i < exemplars_.size(); ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf),
                    "{\"v\": %.6g, \"trace\": %llu, \"at\": %.6g}",
                    exemplars_[i].value,
                    static_cast<unsigned long long>(exemplars_[i].trace_id),
                    exemplars_[i].at);
      out += buf;
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), Mean(), Median(),
                P99(), min(), max());
  return buf;
}

}  // namespace diesel
