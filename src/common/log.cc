#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace diesel {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::string msg = stream_.str();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace diesel
